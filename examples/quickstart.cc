// Quickstart: spin up a 5-node Achilles cluster (f = 2) on a simulated LAN, feed it client
// transactions, and print what it committed.
//
//   $ ./build/examples/quickstart
//   $ ./build/examples/quickstart --trace-out=trace.json   # + span trace for Perfetto
#include <cstdio>
#include <cstring>

#include "src/harness/cluster.h"

int main(int argc, char** argv) {
  using namespace achilles;

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_path = argv[i] + 12;
    }
  }

  // 1. Describe the deployment: protocol, fault threshold, workload, network.
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 2;                       // n = 2f+1 = 5 replicas.
  config.batch_size = 200;            // Transactions per block.
  config.payload_size = 256;          // Bytes per transaction.
  config.net = NetworkConfig::Lan();  // RTT 0.1 ms; try NetworkConfig::Wan() for 40 ms.
  config.seed = 2024;                 // Every run with this seed is bit-identical.
  if (!trace_path.empty()) {
    // Tracing is memory-only: the printed stats below are bit-identical with it on or off.
    config.tracing = true;
    config.trace_capacity = 4096;  // Keep the exported file small (last ~4k events).
  }

  // 2. Build and run. The saturating client keeps the mempool full.
  Cluster cluster(config);
  cluster.Start();
  cluster.tracker().StartMeasurement(0);
  cluster.sim().RunFor(Sec(2));
  cluster.tracker().EndMeasurement(cluster.sim().Now());

  // 3. Inspect the outcome.
  const CommitTracker& tracker = cluster.tracker();
  std::printf("Achilles quickstart (n=%u, f=%u, simulated LAN)\n", cluster.num_replicas(),
              config.f);
  std::printf("  committed blocks:        %llu\n",
              static_cast<unsigned long long>(tracker.total_committed_blocks()));
  std::printf("  committed transactions:  %llu\n",
              static_cast<unsigned long long>(tracker.total_committed_txs()));
  std::printf("  throughput:              %.1f K tx/s\n", tracker.ThroughputTps() / 1000.0);
  std::printf("  commit latency (mean):   %.2f ms\n", tracker.commit_latency().MeanMs());
  std::printf("  commit latency (p99):    %.2f ms\n",
              tracker.commit_latency().PercentileMs(99));
  std::printf("  end-to-end latency:      %.2f ms\n", tracker.e2e_latency().MeanMs());
  std::printf("  persistent counter writes: %llu (Achilles never uses one)\n",
              static_cast<unsigned long long>(cluster.TotalCounterWrites()));
  std::printf("  safety: %s\n", tracker.safety_violated() ? "VIOLATED" : "ok");

  // 4. Optionally export the span trace — open it in https://ui.perfetto.dev.
  if (!trace_path.empty()) {
    if (cluster.tracer().WriteChromeTrace(trace_path)) {
      std::printf("  trace written to %s (load it in Perfetto)\n", trace_path.c_str());
    } else {
      std::printf("  FAILED to write trace to %s\n", trace_path.c_str());
      return 1;
    }
  }
  return tracker.safety_violated() ? 1 : 0;
}
