// A replicated key-value store on top of Achilles: every replica applies the agreed block
// sequence to its own KV map; at the end all copies must be identical — state machine
// replication in action, including across a crash + rollback-attacked reboot.
//
//   $ ./build/examples/replicated_kv
#include <cstdio>
#include <map>
#include <vector>

#include "src/harness/cluster.h"

namespace {

using namespace achilles;

// The application: a tiny KV store. Each transaction id deterministically encodes a
// `PUT key value` operation, so any two replicas applying the same block sequence agree.
struct KvStore {
  std::map<uint64_t, uint64_t> data;
  uint64_t applied_txs = 0;

  void Apply(const Transaction& tx) {
    const uint64_t key = tx.id % 997;         // Hot-key distribution.
    const uint64_t value = tx.id * 0x9e3779b97f4a7c15ULL;
    data[key] = value;
    ++applied_txs;
  }

  bool operator==(const KvStore& o) const { return data == o.data; }
};

}  // namespace

int main() {
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 2;
  config.batch_size = 100;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(100);
  config.seed = 7;

  Cluster cluster(config);

  // One KV store per replica, fed by the commit stream. A replica that rejoins through the
  // recovery protocol adopts a certified checkpoint instead of replaying history; the
  // application mirrors that with snapshot installation (exactly what production SMR
  // systems do), keyed by the canonical committed sequence.
  std::vector<KvStore> stores(cluster.num_replicas());
  std::vector<Height> applied_height(cluster.num_replicas(), 0);
  std::map<Height, KvStore> snapshots;  // Canonical state after each committed height.
  KvStore canonical;
  Height canonical_height = 0;
  cluster.tracker().SetCommitListener(
      [&](NodeId replica, const BlockPtr& block, SimTime /*now*/) {
        // Maintain the canonical sequence (first commit of each height defines it).
        if (block->height == canonical_height + 1) {
          for (const Transaction& tx : block->txs) {
            canonical.Apply(tx);
          }
          canonical_height = block->height;
          snapshots[canonical_height] = canonical;
          while (snapshots.size() > 256) {
            snapshots.erase(snapshots.begin());
          }
        }
        if (block->height <= applied_height[replica]) {
          return;
        }
        if (block->height > applied_height[replica] + 1) {
          // Checkpoint adoption: install the snapshot below this block (state transfer).
          auto snap = snapshots.find(block->height - 1);
          if (snap == snapshots.end()) {
            return;  // Snapshot pruned; the replica catches up on a later commit.
          }
          stores[replica] = snap->second;
        }
        applied_height[replica] = block->height;
        for (const Transaction& tx : block->txs) {
          stores[replica].Apply(tx);
        }
      });

  cluster.Start();
  cluster.sim().RunFor(Sec(1));

  // Crash replica 3, let the adversary roll its storage back, and reboot it: the recovery
  // protocol plus checkpoint adoption bring its KV store back in sync.
  std::printf("crashing replica 3 and serving it stale storage at reboot...\n");
  cluster.CrashReplica(3);
  cluster.platform(3).storage().SetRollbackMode(RollbackMode::kOldest);
  cluster.RebootReplica(3);
  cluster.sim().RunFor(Sec(2));

  std::printf("\nreplicated KV after %llu committed blocks:\n",
              static_cast<unsigned long long>(cluster.tracker().total_committed_blocks()));
  bool all_equal = true;
  size_t max_keys = 0;
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    max_keys = std::max(max_keys, stores[i].data.size());
  }
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    // A replica that state-transferred may lag by in-flight blocks; compare prefixes by
    // checking its map is a sub-state of the most advanced replica.
    std::printf("  replica %u: %zu keys, %llu txs applied, height %llu\n", i,
                stores[i].data.size(),
                static_cast<unsigned long long>(stores[i].applied_txs),
                static_cast<unsigned long long>(applied_height[i]));
  }
  // Convergence check among replicas that reached the same height.
  const Height target = *std::max_element(applied_height.begin(), applied_height.end());
  const KvStore* reference = nullptr;
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    if (applied_height[i] == target) {
      if (reference == nullptr) {
        reference = &stores[i];
      } else if (!(stores[i] == *reference)) {
        all_equal = false;
      }
    }
  }
  std::printf("\nKV state agreement at height %llu: %s\n",
              static_cast<unsigned long long>(target), all_equal ? "IDENTICAL" : "DIVERGED");
  std::printf("safety: %s\n",
              cluster.tracker().safety_violated() ? "VIOLATED" : "ok");
  return (all_equal && !cluster.tracker().safety_violated()) ? 0 : 1;
}
