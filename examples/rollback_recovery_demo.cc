// Rollback-attack walkthrough: the same crash + stale-storage reboot against three designs:
//   1. Achilles      — rollback-resilient recovery: ignores local state, rejoins in ms;
//   2. Damysus-R     — counter detects the rollback, node crash-stops (safe but dead, and
//                      it paid 20 ms per counter write the whole time);
//   3. plain Damysus — silently accepts the stale trusted state: the no-equivocation
//                      guarantee is re-armed, which is exactly the §2.1 vulnerability.
//
//   $ ./build/examples/rollback_recovery_demo
#include <cstdio>

#include "src/achilles/replica.h"
#include "src/damysus/replica.h"
#include "src/harness/cluster.h"

namespace {

using namespace achilles;

ClusterConfig MakeConfig(Protocol protocol) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = 1;
  config.batch_size = 100;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(100);
  config.seed = 99;
  return config;
}

void RunScenario(Protocol protocol) {
  std::printf("\n=== %s under a rollback attack ===\n", ProtocolName(protocol));
  Cluster cluster(MakeConfig(protocol));
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  const Height height_before = cluster.tracker().committed_height(2);
  std::printf("t=1.0s   replica 2 is at committed height %llu; crashing it\n",
              static_cast<unsigned long long>(height_before));

  cluster.CrashReplica(2);
  std::printf("         adversary pins its sealed storage to the OLDEST version\n");
  cluster.platform(2).storage().SetRollbackMode(RollbackMode::kOldest);
  cluster.RebootReplica(2);
  cluster.sim().RunFor(Sec(2));

  if (protocol == Protocol::kAchilles) {
    auto* replica = dynamic_cast<AchillesReplica*>(cluster.replica(2));
    if (replica != nullptr && !replica->recovering()) {
      std::printf("t=3.0s   recovery COMPLETE: trusted view %llu, committed height %llu\n",
                  static_cast<unsigned long long>(replica->checker().vi()),
                  static_cast<unsigned long long>(cluster.tracker().committed_height(2)));
      std::printf("         (recovered from f+1 peers, zero persistent-counter writes)\n");
    } else {
      std::printf("t=3.0s   still recovering (unexpected)\n");
    }
  } else {
    auto* replica = dynamic_cast<DamysusReplica*>(cluster.replica(2));
    if (replica == nullptr) {
      std::printf("t=3.0s   replica object missing (unexpected)\n");
    } else if (replica->halted()) {
      std::printf("t=3.0s   node HALTED: sealed state version != persistent counter\n");
      std::printf("         (rollback detected -> crash-stop; the cluster lost a replica)\n");
    } else {
      std::printf("t=3.0s   node RESUMED from the stale seal without noticing the rollback\n");
      std::printf("         (its trusted view restarted below the crash point and it simply\n");
      std::printf("         rejoined; certificates it issued before the crash were re-armed\n");
      std::printf("         in the meantime -> unsafe design; see DamysusTest.Plain* tests).\n");
    }
  }
  std::printf("         cluster safety audit: %s; counter writes so far: %llu\n",
              cluster.tracker().safety_violated() ? "VIOLATED" : "ok",
              static_cast<unsigned long long>(cluster.TotalCounterWrites()));
}

}  // namespace

int main() {
  std::printf("Rollback attacks vs three designs (crash replica 2, serve stale seals)\n");
  RunScenario(Protocol::kAchilles);
  RunScenario(Protocol::kDamysusR);
  RunScenario(Protocol::kDamysus);
  std::printf("\nSummary: Achilles gets rollback resistance with zero counter writes by\n");
  std::printf("recovering trusted state from f+1 peers (Algorithm 3); Damysus-R pays a\n");
  std::printf("persistent counter on every checker update just to turn the attack into a\n");
  std::printf("crash; plain Damysus is silently rolled back.\n");
  return 0;
}
