// Byzantine playground: what the trusted components let an adversary do — and not do.
//   1. A Byzantine leader tries to equivocate (two blocks, one view) by invoking its own
//      CHECKER with arbitrary inputs: the TEE refuses the second certificate.
//   2. A replayed accumulator from an old view is rejected.
//   3. f silent (crashed/Byzantine) replicas: the cluster keeps committing.
//   4. A recovering node is fed replies whose freshest view does not come from that view's
//      leader (the paper's §4.5 attack): TEErecover refuses.
//
//   $ ./build/examples/byzantine_playground
#include <cstdio>

#include "src/achilles/checker.h"
#include "src/harness/cluster.h"

namespace {

using namespace achilles;

void DemoEquivocationBlocked() {
  std::printf("\n--- 1. Equivocation attempt through the CHECKER ---\n");
  Simulation sim(1);
  CryptoSuite suite(SignatureScheme::kFastHmac, 5, 42);
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<std::unique_ptr<NodePlatform>> platforms;
  std::vector<std::unique_ptr<EnclaveRuntime>> enclaves;
  std::vector<std::unique_ptr<AchillesChecker>> checkers;
  for (uint32_t i = 0; i < 5; ++i) {
    hosts.push_back(std::make_unique<Host>(&sim, i));
    platforms.push_back(std::make_unique<NodePlatform>(hosts.back().get(), &suite,
                                                       CostModel::Default(), TeeConfig{}, 1));
    enclaves.push_back(std::make_unique<EnclaveRuntime>(platforms.back().get()));
    checkers.push_back(std::make_unique<AchillesChecker>(enclaves.back().get(), 5, 2, true));
  }
  // All nodes enter view 1; node 1 is its leader.
  std::vector<SignedCert> view_certs;
  for (auto& checker : checkers) {
    view_certs.push_back(*checker->TeeView(1));
  }
  auto acc = checkers[1]->TeeAccum(view_certs);
  const BlockPtr block_a = Block::Create(1, Block::Genesis(), {}, 0);
  const BlockPtr block_b =
      Block::Create(1, Block::Genesis(), {Transaction{1, 0, 8}}, 0);
  const auto cert_a = checkers[1]->TeePrepare(*block_a, *acc);
  const auto cert_b = checkers[1]->TeePrepare(*block_b, *acc);
  std::printf("first proposal certified:  %s\n", cert_a ? "yes" : "no");
  std::printf("second proposal (same view, same accumulator, different block): %s\n",
              cert_b ? "CERTIFIED (BUG!)" : "refused by the TEE");

  std::printf("\n--- 2. Replaying a stale accumulator in a later view ---\n");
  checkers[1]->TeeView(6);  // Leader moves on; the old accumulator references view 1.
  const BlockPtr block_c = Block::Create(6, Block::Genesis(), {}, 0);
  const auto cert_c = checkers[1]->TeePrepare(*block_c, *acc);
  std::printf("proposal justified by the view-1 accumulator at view 6: %s\n",
              cert_c ? "CERTIFIED (BUG!)" : "refused by the TEE");

  std::printf("\n--- 4. Recovery replies whose freshest view skips its leader (Sec. 4.5) ---\n");
  // Node 3 runs ahead to view 9 (leader(9) = node 4, not node 3).
  checkers[2]->TeeView(7);
  checkers[3]->TeeView(9);
  checkers[4]->TeeView(7);
  enclaves[0] = std::make_unique<EnclaveRuntime>(platforms[0].get());
  checkers[0] = std::make_unique<AchillesChecker>(enclaves[0].get(), 5, 2, false);
  const auto request = checkers[0]->TeeRequest();
  std::vector<SignedCert> replies;
  for (uint32_t r : {2u, 3u, 4u}) {
    replies.push_back(*checkers[r]->TeeReply(*request, 0));
  }
  const SignedCert& freshest = replies[1];  // Node 3's reply, view 9.
  const auto recovered = checkers[0]->TeeRecover(freshest, replies);
  std::printf("TEErecover with max-view reply from a non-leader: %s\n",
              recovered ? "ACCEPTED (BUG!)" : "refused — leader-of-view rule enforced");
}

void DemoSilentByzantineMinority() {
  std::printf("\n--- 3. f Byzantine-silent replicas out of 2f+1 ---\n");
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 2;
  config.batch_size = 100;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(100);
  config.seed = 5;
  Cluster cluster(config);
  cluster.Start();
  // Silence = the strongest crash-style Byzantine behaviour against liveness: two replicas
  // never speak (they also never answer recovery or sync requests).
  cluster.tracker().MarkByzantine(3);
  cluster.tracker().MarkByzantine(4);
  cluster.CrashReplica(3);
  cluster.CrashReplica(4);
  cluster.sim().RunFor(Sec(3));
  std::printf("committed height with 2 of 5 replicas silent: %llu (safety: %s)\n",
              static_cast<unsigned long long>(cluster.tracker().max_committed_height()),
              cluster.tracker().safety_violated() ? "VIOLATED" : "ok");
  std::printf("(views led by silent replicas time out; the pacemaker rotates past them)\n");
}

}  // namespace

int main() {
  std::printf("Byzantine playground — the TEE interface under adversarial use\n");
  DemoEquivocationBlocked();
  DemoSilentByzantineMinority();
  return 0;
}
