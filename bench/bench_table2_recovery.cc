// Reproduces Table 2: breakdown of Achilles' recovery overhead in LAN with varying cluster
// sizes. "Initialization" covers enclave relaunch + per-peer reconnection; "Recovery" is
// Algorithm 3 (request -> f+1 replies -> TEErecover -> rejoin).
#include "src/achilles/replica.h"
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

int Main() {
  std::printf("# Table 2 reproduction — recovery overhead in LAN (ms)\n\n");
  TablePrinter table({"nodes", "initialization (ms)", "recovery (ms)", "total (ms)"});
  for (uint32_t n : {3u, 5u, 9u, 21u, 41u, 61u}) {
    const uint32_t f = (n - 1) / 2;
    ClusterConfig config;
    config.protocol = Protocol::kAchilles;
    config.f = f;
    config.batch_size = 400;
    config.payload_size = 256;
    config.net = NetworkConfig::Lan();
    config.base_timeout = Ms(200);
    config.seed = 0x7ab1e200 + n;

    Cluster cluster(config);
    cluster.Start();
    cluster.sim().RunFor(Ms(400));
    const uint32_t victim = cluster.num_replicas() - 1;
    // Common-case measurement: crash just after the victim's leadership passed. (If the
    // victim crashes while leading, recovery must additionally wait for the next leader to
    // be elected — §4.5 — which measures the pacemaker timeout, not the recovery protocol.)
    auto* probe = dynamic_cast<AchillesReplica*>(cluster.replica(0));
    for (int i = 0; i < 1000 && LeaderOfView(probe->current_view(), n) != (victim + 1) % n;
         ++i) {
      cluster.sim().RunFor(Us(200));
    }
    const SimTime crash_time = cluster.sim().Now();
    cluster.CrashReplica(victim);
    cluster.RebootReplica(victim);
    const SimDuration init = cluster.ReplicaInitDelay();
    cluster.sim().RunFor(Sec(5));

    auto* replica = dynamic_cast<AchillesReplica*>(cluster.replica(victim));
    if (replica == nullptr || replica->recovering() ||
        replica->recovery_completed_at() < 0) {
      table.AddRow({std::to_string(n), TablePrinter::Num(ToMs(init)), "DID NOT RECOVER",
                    "-"});
      continue;
    }
    const SimTime boot_done = crash_time + init;
    const double recovery_ms = ToMs(replica->recovery_completed_at() - boot_done);
    table.AddRow({std::to_string(n), TablePrinter::Num(ToMs(init)),
                  TablePrinter::Num(recovery_ms),
                  TablePrinter::Num(ToMs(init) + recovery_ms)});
    std::fprintf(stderr, "  done n=%u\n", n);
  }
  table.Print();
  std::printf("\nPaper's Table 2: init 11.5 -> 17.3 ms, recovery 3.64 -> 6.85 ms over\n");
  std::printf("3 -> 61 nodes (both growing mildly with n).\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("table2_recovery", &argc, argv);
  return io.Finish(achilles::Main());
}
