// Beyond the paper's own baselines: the TEE-BFT lineage in one table. HotStuff (no TEE,
// 3f+1, 8 steps) -> MinBFT (USIG counter per message, 2f+1, O(n²)) -> Damysus(-R)
// (chained, 6 steps) -> OneShot(-R) (4/6 steps) -> Achilles (4 steps, no counter).
// Quantifies what each generation of trusted-hardware support buys.
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

int Main() {
  std::printf("# TEE-BFT lineage (LAN, f=2, batch 400, 256 B; 20 ms counters where used)\n\n");
  const Protocol protocols[] = {Protocol::kHotStuff, Protocol::kMinBft, Protocol::kDamysusR,
                                Protocol::kOneShotR, Protocol::kFlexiBft,
                                Protocol::kAchilles};
  TablePrinter table({"protocol", "n", "trusted component", "throughput (KTPS)",
                      "commit latency (ms)", "counter writes/block"});
  const char* components[] = {"none",
                              "USIG (counter per message)",
                              "checker+accumulator (+counter)",
                              "checker (+counter, fast path)",
                              "leader sequencer (+counter)",
                              "checker+accumulator (recovery)"};
  for (size_t i = 0; i < std::size(protocols); ++i) {
    ClusterConfig config;
    config.protocol = protocols[i];
    config.f = 2;
    config.batch_size = 400;
    config.payload_size = 256;
    config.net = NetworkConfig::Lan();
    config.counter = CounterSpec::PaperDefault();
    config.seed = 0xc0417e87 + i;
    const RunStats stats = MeasureOnce(config, Ms(500), Sec(3));
    const double writes_per_block =
        stats.committed_blocks > 0 ? static_cast<double>(stats.counter_writes) /
                                         static_cast<double>(stats.committed_blocks)
                                   : 0.0;
    table.AddRow({ProtocolName(protocols[i]),
                  std::to_string(ReplicasFor(protocols[i], config.f)), components[i],
                  TablePrinter::Num(stats.throughput_tps / 1000.0),
                  TablePrinter::Num(stats.commit_latency_ms),
                  TablePrinter::Num(writes_per_block, 1)});
    std::fprintf(stderr, "  done %s\n", ProtocolName(protocols[i]));
  }
  table.Print();
  std::printf("\nReading guide: HotStuff needs no counter but pays 3f+1 replicas and two\n");
  std::printf("extra phases; MinBFT gets 2f+1 but writes the counter on every message;\n");
  std::printf("Damysus-R/OneShot-R cut phases yet still stall on counters; Achilles keeps\n");
  std::printf("2f+1 and four steps with zero persistent writes (recovery instead).\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("context_protocols", &argc, argv);
  return io.Finish(achilles::Main());
}
