// Reproduces Table 4 (counter write/read latencies) against this repo's counter devices,
// and micro-benchmarks the from-scratch crypto (real secp256k1 Schnorr, SHA-256, HMAC) on
// the build machine — the numbers used to sanity-check the simulator's CostModel.
#include <chrono>

#include "src/crypto/schnorr.h"
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"
#include "src/tee/narrator.h"

namespace achilles {
namespace {

double MeasureCounter(CounterKind kind, bool write) {
  Simulation sim(1);
  Host host(&sim, 0);
  MonotonicCounter counter(&host, CounterSpec::For(kind));
  const SimTime before = host.cpu_time_used();
  for (int i = 0; i < 10; ++i) {
    if (write) {
      counter.IncrementBlocking();
    } else {
      counter.ReadBlocking();
    }
  }
  return ToMs(host.cpu_time_used() - before) / 10.0;
}

template <typename Fn>
double WallMicros(int iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    fn(i);
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() / iters;
}

int Main() {
  std::printf("# Table 4 reproduction — trusted counter latencies (ms)\n\n");
  TablePrinter table({"counter", "write (ms)", "read (ms)"});
  const struct {
    CounterKind kind;
    const char* name;
  } kinds[] = {
      {CounterKind::kTpm, "TPM"},
      {CounterKind::kSgx, "SGX"},
      {CounterKind::kNarratorLan, "Narrator (LAN)"},
      {CounterKind::kNarratorWan, "Narrator (WAN)"},
  };
  for (const auto& kind : kinds) {
    table.AddRow({kind.name, TablePrinter::Num(MeasureCounter(kind.kind, true)),
                  TablePrinter::Num(MeasureCounter(kind.kind, false))});
  }
  table.Print();
  std::printf("\nPaper's Table 4: TPM 97/35, SGX 160/61, Narrator-LAN 8-10/4-5,\n");
  std::printf("Narrator-WAN 40-50/25. Experiments use a 20 ms write (default sweep Fig. 5).\n");

  std::printf("\n# Emergent Narrator latency — measured against the simulated 10-monitor\n");
  std::printf("# service (src/tee/narrator), not a configured constant\n\n");
  TablePrinter narrator({"deployment", "write (ms)", "read (ms)", "paper"});
  const NarratorResult lan =
      MeasureNarrator(NetworkConfig::Lan(), NarratorParams{}, /*ops=*/100, /*seed=*/11);
  const NarratorResult wan =
      MeasureNarrator(NetworkConfig::Wan(), NarratorParams{}, /*ops=*/50, /*seed=*/12);
  narrator.AddRow({"Narrator LAN (emergent)", TablePrinter::Num(lan.write_ms),
                   TablePrinter::Num(lan.read_ms), "8-10 / 4-5"});
  narrator.AddRow({"Narrator WAN (emergent)", TablePrinter::Num(wan.write_ms),
                   TablePrinter::Num(wan.read_ms), "40-50 / 25"});
  narrator.Print();

  std::printf("\n# CostModel calibration — this repo's real crypto on this machine\n\n");
  const SchnorrKeyPair key = SchnorrKeyFromSeed(AsBytes("bench-key"));
  Bytes msg(256, 0xab);
  const Bytes sig = SchnorrSign(key, ByteView(msg.data(), msg.size()));
  const double sign_us = WallMicros(50, [&](int i) {
    msg[0] = static_cast<uint8_t>(i);
    SchnorrSign(key, ByteView(msg.data(), msg.size()));
  });
  msg[0] = 0xab;
  const double verify_us = WallMicros(50, [&](int) {
    SchnorrVerify(key.pub, ByteView(msg.data(), msg.size()), ByteView(sig.data(), sig.size()));
  });
  Bytes big(1 << 20, 0x5c);
  const double hash_mb_us = WallMicros(20, [&](int) {
    Sha256Digest(ByteView(big.data(), big.size()));
  });
  TablePrinter crypto({"operation", "measured", "CostModel default"});
  crypto.AddRow({"Schnorr sign (secp256k1)", TablePrinter::Num(sign_us, 1) + " us",
                 TablePrinter::Num(ToUs(CostModel::Default().sign), 1) + " us (OpenSSL-class)"});
  crypto.AddRow({"Schnorr verify", TablePrinter::Num(verify_us, 1) + " us",
                 TablePrinter::Num(ToUs(CostModel::Default().verify), 1) + " us"});
  crypto.AddRow({"SHA-256 (ns/byte)", TablePrinter::Num(hash_mb_us * 1000.0 / (1 << 20), 2),
                 TablePrinter::Num(CostModel::Default().hash_ns_per_byte, 2)});
  crypto.Print();
  std::printf("\nNote: the simulator charges CostModel values (calibrated to the paper's\n");
  std::printf("OpenSSL-P256 testbed), not this unoptimized reference implementation.\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("table4_counters", &argc, argv);
  return io.Finish(achilles::Main());
}
