// Reproduces Figure 5: throughput and latency of the counter-dependent protocols
// (Damysus-R, FlexiBFT, OneShot-R) as the counter write latency sweeps 0..80 ms (LAN,
// f=10). 0 ms corresponds to running without rollback prevention.
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

int Main() {
  std::printf("# Figure 5 reproduction — impact of counter write latency (LAN, f=10)\n\n");
  const Protocol protocols[] = {Protocol::kDamysusR, Protocol::kFlexiBft, Protocol::kOneShotR};
  TablePrinter table({"protocol", "counter write (ms)", "throughput (KTPS)",
                      "commit latency (ms)"});
  for (Protocol protocol : protocols) {
    for (int64_t write_ms : {0, 10, 20, 40, 80}) {
      ClusterConfig config;
      config.protocol = protocol;
      config.f = 10;
      config.batch_size = 400;
      config.payload_size = 256;
      config.net = NetworkConfig::Lan();
      config.counter = CounterSpec::Custom(Ms(write_ms), Ms(write_ms) / 4);
      config.seed = 0xf16'5000 + static_cast<uint64_t>(write_ms);
      const RunStats stats = MeasureOnce(config, Ms(500), Sec(3));
      table.AddRow({ProtocolName(protocol), std::to_string(write_ms),
                    TablePrinter::Num(stats.throughput_tps / 1000.0),
                    TablePrinter::Num(stats.commit_latency_ms)});
      std::fprintf(stderr, "  done %s %lldms\n", ProtocolName(protocol),
                   static_cast<long long>(write_ms));
    }
  }
  table.Print();
  std::printf("\nShape check: throughput falls sharply 0 -> 10 ms and roughly\n");
  std::printf("proportionally beyond; at 0 ms the protocols run at no-prevention speed.\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("fig5_counter_sweep", &argc, argv);
  return io.Finish(achilles::Main());
}
