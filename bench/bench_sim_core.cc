// Simulator-core microbenchmark: raw event-queue throughput of the two engines
// (reference binary heap vs production calendar queue) on adversarial time
// distributions, plus the allocation counters that show the slab pool and raw-callback
// paths doing their job (DESIGN.md §2.21). No cluster, no protocols — this isolates the
// scheduling hot path that dominates bench_fig4_saturation's wall clock.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"
#include "src/sim/simulation.h"

namespace achilles {
namespace {

struct Profile {
  const char* name;
  // Returns the delay for the i-th scheduled event given a random draw.
  SimDuration (*delay)(Rng& rng);
};

SimDuration UniformShort(Rng& rng) { return static_cast<SimDuration>(rng.UniformU64(Us(200))); }

SimDuration Bursty(Rng& rng) {
  // 90% of events land on one of 16 hot ticks, the rest spread wide: stresses intra-bucket
  // FIFO chains and the calendar's width estimate at once.
  if (rng.UniformU64(10) != 0) {
    return static_cast<SimDuration>(Us(50) * rng.UniformU64(16));
  }
  return static_cast<SimDuration>(rng.UniformU64(Ms(50)));
}

SimDuration FarFuture(Rng& rng) {
  // Mostly near-term traffic with a tail of far-out timers (protocol timeout shape):
  // stresses the cursor's year sweep and the direct-scan fallback.
  if (rng.UniformU64(20) == 0) {
    return Ms(100) + static_cast<SimDuration>(rng.UniformU64(Sec(2)));
  }
  return static_cast<SimDuration>(rng.UniformU64(Us(100)));
}

constexpr Profile kProfiles[] = {
    {"uniform-short", &UniformShort},
    {"bursty", &Bursty},
    {"far-future", &FarFuture},
};

struct EngineResult {
  double ops_per_sec = 0.0;
  uint64_t executed = 0;
  size_t pool_slabs = 0;
  size_t pool_capacity = 0;
  size_t peak_pending = 0;
  uint64_t boxed_events = 0;
};

// Self-scheduling raw event: each firing schedules `fanout` successors until the budget
// runs dry, with a seeded cancel mix (roughly 1 in 8 scheduled events is cancelled).
template <class Queue>
struct Driver {
  SimulationT<Queue>* sim;
  const Profile* profile;
  uint64_t remaining;
  EventId pending_cancel{};

  static void Fire(void* self, uint64_t, uint64_t) {
    auto* d = static_cast<Driver*>(self);
    if (d->remaining == 0) {
      return;
    }
    const int fanout = 1 + static_cast<int>(d->sim->rng().UniformU64(2));
    for (int i = 0; i < fanout && d->remaining > 0; ++i, --d->remaining) {
      const EventId id = d->sim->ScheduleRawAfter(d->profile->delay(d->sim->rng()),
                                                  &Driver::Fire, d);
      if (d->sim->rng().UniformU64(8) == 0) {
        // Cancel a previously remembered event and remember this one instead.
        d->sim->Cancel(d->pending_cancel);
        d->pending_cancel = id;
      }
    }
  }
};

template <class Queue>
EngineResult RunEngine(SimEngine engine, const Profile& profile, uint64_t budget,
                       uint64_t seed) {
  SimulationT<Queue> sim(seed, engine);
  Driver<Queue> driver{&sim, &profile, budget, kInvalidEvent};
  // Seed a handful of initial chains so the queue carries realistic parallelism.
  for (int i = 0; i < 64 && driver.remaining > 0; ++i, --driver.remaining) {
    sim.ScheduleRawAfter(profile.delay(sim.rng()), &Driver<Queue>::Fire, &driver);
  }
  const auto start = std::chrono::steady_clock::now();
  sim.RunUntilIdle();
  const auto stop = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(stop - start).count();

  EngineResult r;
  r.executed = sim.executed_events();
  r.ops_per_sec = secs > 0.0 ? static_cast<double>(r.executed) / secs : 0.0;
  r.pool_slabs = sim.pool().slabs();
  r.pool_capacity = sim.pool().capacity();
  r.peak_pending = sim.peak_pending_events();
  r.boxed_events = sim.boxed_events();
  return r;
}

int Main() {
  const uint64_t budget =
      static_cast<uint64_t>(2'000'000 * BenchScale()) < 100'000
          ? 100'000
          : static_cast<uint64_t>(2'000'000 * BenchScale());
  std::printf("# Simulator core — event-queue engines head-to-head (%llu events/profile)\n\n",
              static_cast<unsigned long long>(budget));
  TablePrinter table({"profile", "engine", "events/sec", "peak pending", "pool slabs",
                      "pool capacity", "boxed events"});
  for (const Profile& profile : kProfiles) {
    for (int e = 0; e < 2; ++e) {
      const bool calendar = e == 1;
      EngineResult r =
          calendar ? RunEngine<CalendarQueue>(SimEngine::kCalendar, profile, budget, 42)
                   : RunEngine<HeapQueue>(SimEngine::kHeap, profile, budget, 42);
      table.AddRow({profile.name, calendar ? "calendar" : "heap",
                    TablePrinter::Num(r.ops_per_sec / 1e6, 3) + "M",
                    std::to_string(r.peak_pending), std::to_string(r.pool_slabs),
                    std::to_string(r.pool_capacity), std::to_string(r.boxed_events)});
      std::fprintf(stderr, "  done %s/%s\n", profile.name, calendar ? "calendar" : "heap");
    }
  }
  table.Print();
  std::printf("\nSteady-state protocol traffic schedules through the raw path: boxed\n");
  std::printf("events stay at zero and the pool's slab count bounds total allocation.\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("sim_core", &argc, argv);
  return io.Finish(achilles::Main());
}
