// Replicated KV application bench: runs the versioned KV state machine (src/app) behind
// every protocol with the closed-loop KV client population and reports the client-observed
// op mix and latency split — lease-served reads vs ordered reads vs writes. The app.*
// counters and latency histograms land in BENCH_app_kv.json via the per-run metric
// snapshot, so BENCH_summary.json carries the application-level view next to the
// consensus-level one.
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

int Main() {
  std::printf("# Replicated KV app — client-observed ops per protocol (LAN, f=1)\n\n");
  TablePrinter table({"protocol", "kv ops", "lease reads", "lease share",
                      "read p50 (ms)", "write p50 (ms)", "fallbacks", "stale cand."});
  for (int p = 0; p < kNumProtocols; ++p) {
    const Protocol protocol = static_cast<Protocol>(p);
    ClusterConfig config;
    config.protocol = protocol;
    config.f = 1;
    config.batch_size = 100;
    config.payload_size = 64;
    config.net = NetworkConfig::Lan();
    config.base_timeout = Ms(250);
    config.client_rate_tps = 1000.0;  // Background load keeps blocks flowing.
    config.seed = 0xa991c0de + static_cast<uint64_t>(p);
    config.app_kv = true;

    Cluster cluster(config);
    const RunStats stats = cluster.RunMeasured(Ms(500), Sec(3));
    obs::MetricsRegistry& m = cluster.metrics();
    const uint64_t ops = m.GetCounter("app.ops_completed")->value();
    const uint64_t reads = m.GetCounter("app.reads")->value();
    const uint64_t lease = m.GetCounter("app.reads_lease")->value();
    const uint64_t fallbacks = m.GetCounter("app.lease_fallbacks")->value();
    const uint64_t stale = m.GetCounter("app.stale_read_candidates")->value();
    const double read_p50 = m.GetHistogram("app.read_latency_ns")->Percentile(50) / 1e6;
    const double write_p50 = m.GetHistogram("app.write_latency_ns")->Percentile(50) / 1e6;
    table.AddRow({ProtocolName(protocol), std::to_string(ops), std::to_string(lease),
                  TablePrinter::Num(reads == 0 ? 0.0 : 100.0 * lease / reads, 1) + "%",
                  TablePrinter::Num(read_p50), TablePrinter::Num(write_p50),
                  std::to_string(fallbacks), std::to_string(stale)});
    BenchReport::Instance().RecordRun(config, stats, cluster);
    std::fprintf(stderr, "  done %s\n", ProtocolName(protocol));
  }
  table.Print();
  std::printf(
      "\nLease-served reads skip the log entirely (one client->leader round trip), so the\n"
      "read p50 tracks the network RTT while the write p50 tracks commit latency. The\n"
      "stale-candidate column must stay 0: it counts lease reads whose served version\n"
      "lagged the canonical state at serve time (the linearizability oracle's raw signal).\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("app_kv", &argc, argv);
  return io.Finish(achilles::Main());
}
