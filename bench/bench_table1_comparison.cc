// Regenerates Table 1 empirically: tolerance threshold, rollback resistance, persistent
// counter writes on the critical path, message complexity class, and end-to-end
// communication steps — measured, not asserted.
//
// Steps are measured by running each protocol on a zero-CPU-cost network with an exact
// 10 ms one-way delay and no jitter: the end-to-end latency of a transaction divided by
// 10 ms is the number of communication steps on its path.
#include <cmath>

#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

struct ProtocolRow {
  Protocol protocol;
  const char* threshold;
  const char* rollback_resistant;
};

const ProtocolRow kRows[] = {
    {Protocol::kDamysusR, "2f+1", "yes (counter)"},
    {Protocol::kFlexiBft, "3f+1", "yes (3f+1 quorums)"},
    {Protocol::kOneShotR, "2f+1", "yes (counter)"},
    {Protocol::kAchilles, "2f+1", "yes (recovery)"},
};

ClusterConfig StepConfig(Protocol protocol) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = 2;
  config.batch_size = 50;
  config.payload_size = 16;
  // Exact-step network: 10 ms one-way, no jitter, infinite bandwidth, zero CPU costs, no
  // counter latency (the counter writes still *count*, they just cost nothing here).
  config.net.one_way_base = Ms(10);
  config.net.one_way_jitter = 0;
  config.net.bandwidth_bps = 1e15;
  config.net.loopback_delay = 0;
  config.costs = CostModel::Zero();
  config.counter = CounterSpec::Custom(0, 0);
  config.client_rate_tps = 400;  // Gentle open loop so queueing never adds steps.
  config.base_timeout = Sec(1);
  config.seed = 0x7ab1e001;
  return config;
}

double MeasureSteps(Protocol protocol) {
  const RunStats stats = MeasureOnce(StepConfig(protocol), Sec(2), Sec(4));
  // Commit latency (propose -> first commit) has no mempool queueing in it; each hop is
  // exactly 10 ms. End-to-end adds one step for the client submission and one for the
  // reply — the paper's accounting.
  return stats.commit_latency_ms / 10.0 + 2.0;
}

struct Complexity {
  double msgs_small;
  double msgs_large;
  double growth;  // msgs/block growth for ~3x more nodes.
};

Complexity MeasureComplexity(Protocol protocol) {
  auto per_block = [&](uint32_t f) {
    ClusterConfig config;
    config.protocol = protocol;
    config.f = f;
    config.batch_size = 100;
    config.payload_size = 32;
    config.net = NetworkConfig::Lan();
    config.counter = CounterSpec::Custom(Ms(1), 0);  // Fast counter: count, don't stall.
    config.seed = 0x7ab1e002 + f;
    const RunStats stats = MeasureOnce(config, Ms(500), Sec(2));
    return stats.committed_blocks > 0 ? static_cast<double>(stats.messages) /
                                            static_cast<double>(stats.committed_blocks)
                                      : 0.0;
  };
  Complexity c{};
  c.msgs_small = per_block(1);   // n = 3 (or 4 for FlexiBFT).
  c.msgs_large = per_block(4);   // n = 9 (or 13).
  c.growth = c.msgs_small > 0 ? c.msgs_large / c.msgs_small : 0;
  return c;
}

double CounterWritesPerBlock(Protocol protocol) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = 2;
  config.batch_size = 100;
  config.payload_size = 32;
  config.net = NetworkConfig::Lan();
  config.counter = CounterSpec::Custom(Ms(1), 0);
  config.seed = 0x7ab1e003;
  const RunStats stats = MeasureOnce(config, Ms(500), Sec(2));
  return stats.committed_blocks > 0 ? static_cast<double>(stats.counter_writes) /
                                          static_cast<double>(stats.committed_blocks)
                                    : 0.0;
}

int Main() {
  std::printf("# Table 1 reproduction — measured protocol properties\n");
  std::printf("# ('counter writes/block' sums all nodes; the paper's column counts the\n");
  std::printf("#  leader+backup pair on the critical path: Damysus-R 4, OneShot-R 2, \n");
  std::printf("#  FlexiBFT 1, Achilles 0.)\n\n");
  TablePrinter table({"protocol", "threshold", "rollback res.", "counter writes/block",
                      "msgs/block n~5", "msgs/block n~9..13", "growth", "complexity",
                      "e2e steps"});
  for (const ProtocolRow& row : kRows) {
    const double steps = MeasureSteps(row.protocol);
    const Complexity complexity = MeasureComplexity(row.protocol);
    const double writes = CounterWritesPerBlock(row.protocol);
    // Linear protocols roughly track the ~3x node growth; quadratic ones grow much faster.
    const char* complexity_class = complexity.growth > 4.5 ? "O(n^2)" : "O(n)";
    table.AddRow({ProtocolName(row.protocol), row.threshold, row.rollback_resistant,
                  TablePrinter::Num(writes, 1), TablePrinter::Num(complexity.msgs_small, 1),
                  TablePrinter::Num(complexity.msgs_large, 1),
                  TablePrinter::Num(complexity.growth, 2), complexity_class,
                  TablePrinter::Num(steps, 1)});
    std::fprintf(stderr, "  done %s\n", ProtocolName(row.protocol));
  }
  table.Print();
  std::printf("\nPaper's Table 1: Damysus-R 2f+1/O(n)/6 steps, FlexiBFT 3f+1/O(n^2)/4,\n");
  std::printf("OneShot-R 2f+1/O(n)/4-or-6, Achilles 2f+1/O(n)/4 with 0 counters.\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("table1_comparison", &argc, argv);
  return io.Finish(achilles::Main());
}
