// Checkpoint subsystem bench (src/checkpoint): what protocol-aware checkpointing costs
// and what it buys. Three measurements:
//   1. Checkpoint tax — steady-state throughput/latency with checkpointing off vs on,
//      per protocol. The tax is the vote/assemble crypto plus the truncation fsyncs.
//   2. Retention footprint — max per-replica log bytes over time. Without compaction the
//      WAL + block store grow linearly with committed height; with stable checkpoints the
//      retained suffix stays bounded near interval * catchup_intervals heights.
//   3. Rejoin latency — a replica crashes, the cluster runs ahead, it reboots: time until
//      its committed prefix reaches the frontier it missed, via full block backfill
//      (checkpointing off) vs snapshot state transfer (on).
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

ClusterConfig BaseConfig(Protocol protocol, uint64_t seed_salt) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = 1;
  config.batch_size = 100;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(250);
  config.client_rate_tps = 2000.0;
  config.seed = 0xc4e11904 + seed_salt;
  return config;
}

double MaxGauge(obs::MetricsRegistry& m, const char* name, uint32_t n) {
  double best = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    const obs::MetricsRegistry::Labels labels{{"node", std::to_string(i)}};
    best = std::max(best, m.GetGauge(name, labels)->value());
  }
  return best;
}

void BenchTax() {
  std::printf("# Checkpoint tax — steady state, LAN, f=1, interval 32\n\n");
  TablePrinter table({"protocol", "tps off", "tps on", "tax", "p50 off (ms)", "p50 on (ms)",
                      "stable ckpts", "log MB off", "log MB on"});
  for (const Protocol protocol :
       {Protocol::kAchilles, Protocol::kDamysusR, Protocol::kFlexiBft, Protocol::kRaft,
        Protocol::kMinBft}) {
    RunStats off_stats, on_stats;
    double off_bytes = 0.0, on_bytes = 0.0;
    uint64_t stable = 0;
    for (const bool enabled : {false, true}) {
      ClusterConfig config = BaseConfig(protocol, enabled ? 1 : 0);
      config.ckpt.enabled = enabled;
      config.ckpt.interval = 32;
      Cluster cluster(config);
      const RunStats stats = cluster.RunMeasured(Ms(500), Sec(3));
      const double bytes =
          MaxGauge(cluster.metrics(), "log.bytes_retained", cluster.num_replicas());
      if (enabled) {
        on_stats = stats;
        on_bytes = bytes;
        stable = cluster.checkpoint_manager()->checkpoints_assembled();
      } else {
        off_stats = stats;
        off_bytes = bytes;
      }
      BenchReport::Instance().RecordRun(config, stats, cluster);
    }
    const double tax = off_stats.throughput_tps <= 0.0
                           ? 0.0
                           : 100.0 * (off_stats.throughput_tps - on_stats.throughput_tps) /
                                 off_stats.throughput_tps;
    table.AddRow({ProtocolName(protocol), TablePrinter::Num(off_stats.throughput_tps, 0),
                  TablePrinter::Num(on_stats.throughput_tps, 0),
                  TablePrinter::Num(tax, 1) + "%", TablePrinter::Num(off_stats.commit_p50_ms),
                  TablePrinter::Num(on_stats.commit_p50_ms), std::to_string(stable),
                  TablePrinter::Num(off_bytes / 1e6), TablePrinter::Num(on_bytes / 1e6)});
    std::fprintf(stderr, "  tax done %s\n", ProtocolName(protocol));
  }
  table.Print();
  std::printf(
      "\nThe tax column is the throughput cost of voting, assembling, and truncating; the\n"
      "log MB columns already show compaction working (on << off at equal height).\n\n");
}

void BenchFootprint() {
  std::printf("# Retention footprint — max per-replica log bytes over time (Achilles)\n\n");
  TablePrinter table({"t (ms)", "bytes off", "bytes on", "entries off", "entries on",
                      "stable seq"});
  ClusterConfig off_config = BaseConfig(Protocol::kAchilles, 2);
  ClusterConfig on_config = BaseConfig(Protocol::kAchilles, 2);
  on_config.ckpt.enabled = true;
  on_config.ckpt.interval = 16;
  Cluster off_cluster(off_config);
  Cluster on_cluster(on_config);
  off_cluster.Start();
  on_cluster.Start();
  for (int step = 1; step <= 8; ++step) {
    off_cluster.sim().RunFor(Ms(500));
    on_cluster.sim().RunFor(Ms(500));
    off_cluster.RefreshFootprintGauges();
    on_cluster.RefreshFootprintGauges();
    const uint32_t n = off_cluster.num_replicas();
    table.AddRow({std::to_string(step * 500),
                  TablePrinter::Num(MaxGauge(off_cluster.metrics(), "log.bytes_retained", n), 0),
                  TablePrinter::Num(MaxGauge(on_cluster.metrics(), "log.bytes_retained", n), 0),
                  TablePrinter::Num(MaxGauge(off_cluster.metrics(), "log.entries_retained", n), 0),
                  TablePrinter::Num(MaxGauge(on_cluster.metrics(), "log.entries_retained", n), 0),
                  TablePrinter::Num(
                      MaxGauge(on_cluster.metrics(), "ckpt.last_stable_seq", n), 0)});
  }
  table.Print();
  std::printf(
      "\nWithout compaction the retained bytes grow linearly with committed height; with\n"
      "stable checkpoints every 16 heights they plateau at the retained suffix (the floor\n"
      "slack is interval * catchup_intervals = 32 heights of blocks).\n\n");
  std::fprintf(stderr, "  footprint done\n");
}

void BenchRejoin() {
  std::printf("# Rejoin latency — crash at 500 ms, reboot at 2000 ms (BRaft)\n\n");
  TablePrinter table({"transfer", "frontier h", "catch-up (ms)", "cluster MB",
                      "snapshot adopts"});
  for (const bool enabled : {false, true}) {
    ClusterConfig config = BaseConfig(Protocol::kRaft, 3);
    config.ckpt.enabled = enabled;
    config.ckpt.interval = 16;
    Cluster cluster(config);
    cluster.Start();
    cluster.sim().RunFor(Ms(500));
    const uint32_t victim = cluster.num_replicas() - 1;
    cluster.CrashReplica(victim);
    cluster.sim().RunFor(Ms(1500));
    const Height target = cluster.replica(0)->last_committed_height();
    cluster.net().ResetStats();
    const SimTime reboot_at = cluster.sim().Now();
    cluster.RebootReplica(victim);
    SimTime caught_up = -1;
    for (int i = 0; i < 2000; ++i) {
      cluster.sim().RunFor(Ms(5));
      const ReplicaBase* rep = cluster.replica(victim);
      if (rep != nullptr && rep->last_committed_height() >= target) {
        caught_up = cluster.sim().Now();
        break;
      }
    }
    const uint64_t adopts =
        enabled ? cluster.checkpoint_manager()->snapshot_adopts() : 0;
    table.AddRow({enabled ? "snapshot" : "backfill", std::to_string(target),
                  caught_up < 0 ? "DID NOT CATCH UP"
                                : TablePrinter::Num(ToMs(caught_up - reboot_at)),
                  TablePrinter::Num(static_cast<double>(cluster.net().bytes_sent()) / 1e6),
                  std::to_string(adopts)});
    std::fprintf(stderr, "  rejoin done (%s)\n", enabled ? "snapshot" : "backfill");
  }
  table.Print();
  std::printf(
      "\nBackfill replays the missed suffix block by block through normal replication;\n"
      "snapshot transfer ships one certified boundary state and resumes from there, so\n"
      "catch-up time and bytes stop scaling with the length of the outage.\n");
}

int Main() {
  BenchTax();
  BenchFootprint();
  BenchRejoin();
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("checkpoint", &argc, argv);
  return io.Finish(achilles::Main());
}
