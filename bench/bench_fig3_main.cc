// Reproduces Figure 3 (a–l): throughput and commit latency of Achilles, Damysus-R,
// FlexiBFT and OneShot-R in WAN and LAN, sweeping the fault threshold f, the transaction
// payload, and the batch size.
//
// Usage: bench_fig3_main [--net lan|wan|all] [--sweep faults|payload|batch|all] [--quick]
//   --quick caps the fault sweep at f=10 and shortens windows (CI-friendly).
#include <cstring>
#include <string>

#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

const Protocol kProtocols[] = {Protocol::kAchilles, Protocol::kDamysusR, Protocol::kFlexiBft,
                               Protocol::kOneShotR};

ClusterConfig BaseConfig(Protocol protocol, uint32_t f, const NetworkConfig& net) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = f;
  config.batch_size = 400;
  config.payload_size = 256;
  config.net = net;
  config.counter = CounterSpec::PaperDefault();  // 20 ms writes, §5.1.
  config.base_timeout = net.one_way_base >= Ms(5) ? Sec(2) : Ms(500);
  config.seed = 0xf16'3000 + f;
  return config;
}

struct Windows {
  SimDuration warmup;
  SimDuration measure;
};

Windows WindowsFor(const NetworkConfig& net, bool quick) {
  Windows w{DefaultWarmup(net), DefaultMeasure(net)};
  if (quick) {
    w.warmup /= 2;
    w.measure /= 2;
  }
  return w;
}

void SweepFaults(const NetworkConfig& net, const char* net_name, bool quick) {
  std::printf("\n== Fig. 3 %s: varying faults f (batch 400, payload 256 B) ==\n",
              net_name);
  TablePrinter table({"protocol", "f", "n", "throughput (KTPS)", "commit latency (ms)",
                      "p99 (ms)"});
  const Windows w = WindowsFor(net, quick);
  for (Protocol protocol : kProtocols) {
    for (uint32_t f : {1u, 2u, 4u, 10u, 20u, 30u}) {
      if (quick && f > 10) {
        continue;
      }
      ClusterConfig config = BaseConfig(protocol, f, net);
      const RunStats stats = MeasureOnce(config, w.warmup, w.measure);
      table.AddRow({ProtocolName(protocol), std::to_string(f),
                    std::to_string(ReplicasFor(protocol, f)),
                    TablePrinter::Num(stats.throughput_tps / 1000.0),
                    TablePrinter::Num(stats.commit_latency_ms),
                    TablePrinter::Num(stats.commit_p99_ms)});
      std::fprintf(stderr, "  done %s f=%u\n", ProtocolName(protocol), f);
    }
  }
  table.Print();
}

void SweepPayload(const NetworkConfig& net, const char* net_name, bool quick) {
  std::printf("\n== Fig. 3 %s: varying payload (f=10, batch 400) ==\n", net_name);
  TablePrinter table({"protocol", "payload (B)", "throughput (KTPS)", "commit latency (ms)"});
  const Windows w = WindowsFor(net, quick);
  for (Protocol protocol : kProtocols) {
    for (uint32_t payload : {0u, 256u, 512u}) {
      ClusterConfig config = BaseConfig(protocol, 10, net);
      config.payload_size = payload;
      const RunStats stats = MeasureOnce(config, w.warmup, w.measure);
      table.AddRow({ProtocolName(protocol), std::to_string(payload),
                    TablePrinter::Num(stats.throughput_tps / 1000.0),
                    TablePrinter::Num(stats.commit_latency_ms)});
      std::fprintf(stderr, "  done %s payload=%u\n", ProtocolName(protocol), payload);
    }
  }
  table.Print();
}

void SweepBatch(const NetworkConfig& net, const char* net_name, bool quick) {
  std::printf("\n== Fig. 3 %s: varying batch size (f=10, payload 256 B) ==\n", net_name);
  TablePrinter table({"protocol", "batch", "throughput (KTPS)", "commit latency (ms)"});
  const Windows w = WindowsFor(net, quick);
  for (Protocol protocol : kProtocols) {
    for (size_t batch : {200u, 400u, 600u}) {
      ClusterConfig config = BaseConfig(protocol, 10, net);
      config.batch_size = batch;
      const RunStats stats = MeasureOnce(config, w.warmup, w.measure);
      table.AddRow({ProtocolName(protocol), std::to_string(batch),
                    TablePrinter::Num(stats.throughput_tps / 1000.0),
                    TablePrinter::Num(stats.commit_latency_ms)});
      std::fprintf(stderr, "  done %s batch=%zu\n", ProtocolName(protocol), batch);
    }
  }
  table.Print();
}

int Main(int argc, char** argv) {
  std::string net_arg = "all";
  std::string sweep_arg = "all";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--net") == 0 && i + 1 < argc) {
      net_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  std::printf("# Figure 3 reproduction — throughput & commit latency\n");
  struct Net {
    NetworkConfig config;
    const char* name;
  };
  std::vector<Net> nets;
  if (net_arg == "wan" || net_arg == "all") {
    nets.push_back({NetworkConfig::Wan(), "WAN (3a/3b, 3e/3f, 3i/3j)"});
  }
  if (net_arg == "lan" || net_arg == "all") {
    nets.push_back({NetworkConfig::Lan(), "LAN (3c/3d, 3g/3h, 3k/3l)"});
  }
  for (const Net& net : nets) {
    if (sweep_arg == "faults" || sweep_arg == "all") {
      SweepFaults(net.config, net.name, quick);
    }
    if (sweep_arg == "payload" || sweep_arg == "all") {
      SweepPayload(net.config, net.name, quick);
    }
    if (sweep_arg == "batch" || sweep_arg == "all") {
      SweepBatch(net.config, net.name, quick);
    }
  }
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("fig3_main", &argc, argv);
  return io.Finish(achilles::Main(argc, argv));
}
