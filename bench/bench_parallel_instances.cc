// Future-work extension (§6.1): concurrent consensus instances. k independent Achilles
// instances share the same n machines (one replica each per machine, contending on the
// machine NIC); clients stripe transactions across instances. Throughput scales with k
// until the shared NIC saturates.
//
// --jobs=N runs the k-sweep points on up to N host threads. Each point owns a private
// Simulation (virtual time, seeded RNG), so results are bit-identical to a sequential
// run; they land in a slot indexed by sweep position and the table always prints in
// ascending-k order.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"
#include "src/harness/parallel.h"

namespace achilles {
namespace {

int g_jobs = 1;

int Main() {
  std::printf("# Concurrent consensus instances (LAN, f=2, batch 400, 256 B)\n\n");
  const std::vector<uint32_t> ks = {1u, 2u, 3u, 4u, 6u};
  std::vector<ParallelStats> results(ks.size());

  auto run_point = [&ks, &results](size_t i) {
    ParallelConfig config;
    config.f = 2;
    config.instances = ks[i];
    config.seed = 0xc0ffee00 + ks[i];
    results[i] = RunParallelAchilles(config, Ms(500), Sec(2));
    std::fprintf(stderr, "  done k=%u\n", ks[i]);
  };

  if (g_jobs <= 1) {
    for (size_t i = 0; i < ks.size(); ++i) {
      run_point(i);
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    const size_t width = std::min<size_t>(static_cast<size_t>(g_jobs), ks.size());
    pool.reserve(width);
    for (size_t t = 0; t < width; ++t) {
      pool.emplace_back([&next, &ks, &run_point] {
        for (size_t i = next.fetch_add(1); i < ks.size(); i = next.fetch_add(1)) {
          run_point(i);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  TablePrinter table({"instances k", "total throughput (KTPS)", "scaling", "latency (ms)",
                      "safety"});
  const double base = results[0].total_throughput_tps;
  for (size_t i = 0; i < ks.size(); ++i) {
    const ParallelStats& stats = results[i];
    table.AddRow({std::to_string(ks[i]),
                  TablePrinter::Num(stats.total_throughput_tps / 1000.0),
                  TablePrinter::Num(stats.total_throughput_tps / base, 2) + "x",
                  TablePrinter::Num(stats.commit_latency_ms),
                  stats.safety_ok ? "ok" : "VIOLATED"});
  }
  table.Print();
  std::printf("\nScaling is sub-linear because instances share each machine's NIC — the\n");
  std::printf("same wall the single-instance LAN payload sweep (Fig. 3g) runs into.\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      achilles::g_jobs = std::atoi(argv[i] + 7);
      if (achilles::g_jobs < 1) {
        std::fprintf(stderr, "bench_parallel_instances: --jobs wants a positive integer\n");
        return 2;
      }
    }
  }
  achilles::BenchIo io("parallel_instances", &argc, argv);
  return io.Finish(achilles::Main());
}
