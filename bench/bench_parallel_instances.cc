// Future-work extension (§6.1): concurrent consensus instances. k independent Achilles
// instances share the same n machines (one replica each per machine, contending on the
// machine NIC); clients stripe transactions across instances. Throughput scales with k
// until the shared NIC saturates.
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"
#include "src/harness/parallel.h"

namespace achilles {
namespace {

int Main() {
  std::printf("# Concurrent consensus instances (LAN, f=2, batch 400, 256 B)\n\n");
  TablePrinter table({"instances k", "total throughput (KTPS)", "scaling", "latency (ms)",
                      "safety"});
  double base = 0.0;
  for (uint32_t k : {1u, 2u, 3u, 4u, 6u}) {
    ParallelConfig config;
    config.f = 2;
    config.instances = k;
    config.seed = 0xc0ffee00 + k;
    const ParallelStats stats = RunParallelAchilles(config, Ms(500), Sec(2));
    if (k == 1) {
      base = stats.total_throughput_tps;
    }
    table.AddRow({std::to_string(k),
                  TablePrinter::Num(stats.total_throughput_tps / 1000.0),
                  TablePrinter::Num(stats.total_throughput_tps / base, 2) + "x",
                  TablePrinter::Num(stats.commit_latency_ms),
                  stats.safety_ok ? "ok" : "VIOLATED"});
    std::fprintf(stderr, "  done k=%u\n", k);
  }
  table.Print();
  std::printf("\nScaling is sub-linear because instances share each machine's NIC — the\n");
  std::printf("same wall the single-instance LAN payload sweep (Fig. 3g) runs into.\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("parallel_instances", argc, argv);
  return io.Finish(achilles::Main());
}
