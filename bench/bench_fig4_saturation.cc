// Reproduces Figure 4: end-to-end latency vs throughput in LAN (f=10, batch 400, payload
// 256 B), sweeping offered load per protocol until saturation.
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

ClusterConfig BaseConfig(Protocol protocol, double rate_tps) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = 10;
  config.batch_size = 400;
  config.payload_size = 256;
  config.net = NetworkConfig::Lan();
  config.counter = CounterSpec::PaperDefault();
  config.client_rate_tps = rate_tps;
  config.seed = 0xf16'4000;
  return config;
}

int Main() {
  std::printf("# Figure 4 reproduction — latency vs throughput to saturation (LAN, f=10)\n");
  const Protocol protocols[] = {Protocol::kAchilles, Protocol::kDamysusR, Protocol::kFlexiBft,
                                Protocol::kOneShotR};
  for (Protocol protocol : protocols) {
    // First find the saturation throughput with a saturating client...
    const RunStats max_stats = MeasureOnce(BaseConfig(protocol, 0.0), Ms(500), Sec(3));
    const double max_tput = max_stats.throughput_tps;
    std::printf("\n== %s (saturation ~ %.2f KTPS) ==\n", ProtocolName(protocol),
                max_tput / 1000.0);
    TablePrinter table({"offered (KTPS)", "achieved (KTPS)", "e2e latency (ms)",
                        "e2e p99 (ms)"});
    // ...then sweep offered load up to just past it.
    for (double frac : {0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
      const double rate = frac * max_tput;
      const RunStats stats = MeasureOnce(BaseConfig(protocol, rate), Sec(1), Sec(3));
      table.AddRow({TablePrinter::Num(rate / 1000.0),
                    TablePrinter::Num(stats.throughput_tps / 1000.0),
                    TablePrinter::Num(stats.e2e_latency_ms),
                    TablePrinter::Num(stats.e2e_p99_ms)});
      std::fprintf(stderr, "  done %s %.0f%%\n", ProtocolName(protocol), frac * 100);
    }
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("fig4_saturation", &argc, argv);
  return io.Finish(achilles::Main());
}
