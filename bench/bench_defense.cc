// bench_defense: races the pluggable rollback-defense backends (src/storage/defense.h)
// against each other across the TEE protocols that persist trusted state through the
// defense seam. Two questions, two tables:
//
//   steady-state tax   what does each defense cost on the commit critical path when
//                      nothing goes wrong? Per (protocol x defense): throughput, commit
//                      p50, defense writes (counter increments under local, quorum
//                      replications/certifications otherwise), and the throughput tax
//                      vs the same protocol under --defense local. Each defended run
//                      publishes the tax as the `defense.tax_pct` metrics gauge, which
//                      bench_trend tracks as defense.tax_pct_max.
//
//   post-reboot recovery   how fast is a crashed replica useful again, and what happens
//                      when the adversary serves it rolled-back sealed state at reboot?
//                      Per (protocol x defense) x {clean, rollback}: virtual ms from
//                      reboot until the victim's committed prefix catches back up to the
//                      cluster's height at the crash, or "halt" when the replica
//                      (correctly) crash-stops instead — the local/healer answer to a
//                      detected rollback, vs rollbaccine's peer repair and Achilles'
//                      counter-free network recovery, which rejoin through the attack.
//
// The quorum is modeled as always reachable within the charged latency (DESIGN.md §2.23),
// which is the assumption most favorable to the competing designs — the tax reported here
// is their floor, not their ceiling.
#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/achilles/replica.h"
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"
#include "src/storage/defense.h"

namespace achilles {
namespace {

constexpr Protocol kProtocols[] = {Protocol::kAchilles, Protocol::kDamysusR,
                                   Protocol::kOneShotR};
constexpr persist::DefenseKind kDefenses[] = {persist::DefenseKind::kLocal,
                                              persist::DefenseKind::kRollbaccine,
                                              persist::DefenseKind::kHealer};

ClusterConfig BaseConfig(Protocol protocol, persist::DefenseKind defense) {
  ClusterConfig config;
  config.protocol = protocol;
  config.defense = defense;
  config.f = 1;
  config.batch_size = 100;
  config.payload_size = 256;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(200);
  config.seed = 0xdefe45e0 + static_cast<uint64_t>(protocol) * 16 +
                static_cast<uint64_t>(defense);
  return config;
}

// Total externalized anti-rollback writes the run performed: counter increments under
// local, peer replications + certifications under the quorum backends.
uint64_t DefenseWrites(Cluster& cluster, const RunStats& stats,
                       persist::DefenseKind defense) {
  if (defense == persist::DefenseKind::kLocal) {
    return stats.counter_writes;
  }
  persist::DefenseService* service = cluster.defense_service();
  return service == nullptr ? 0 : service->replications() + service->certifications();
}

// MeasureOnce with the defense gauge: the tax vs `local_tps` (<= 0 on the baseline run
// itself) is published into the run's metrics snapshot before it is recorded, so the
// JSON report carries it per defended run.
RunStats MeasureSteady(const ClusterConfig& config, double local_tps,
                       uint64_t* defense_writes) {
  SimDuration warmup = DefaultWarmup(config.net);
  SimDuration measure = DefaultMeasure(config.net);
  const double scale = BenchScale();
  if (scale < 1.0) {
    warmup = std::max<SimDuration>(Ms(200), static_cast<SimDuration>(warmup * scale));
    measure = std::max<SimDuration>(Ms(500), static_cast<SimDuration>(measure * scale));
  }
  Cluster cluster(config);
  const RunStats stats = cluster.RunMeasured(warmup, measure);
  if (!stats.safety_ok) {
    std::fprintf(stderr, "FATAL: safety violated (%s, defense=%s)\n",
                 ProtocolName(config.protocol), persist::DefenseKindName(config.defense));
    std::abort();
  }
  *defense_writes = DefenseWrites(cluster, stats, config.defense);
  if (local_tps > 0.0) {
    const double tax = 100.0 * (1.0 - stats.throughput_tps / local_tps);
    cluster.metrics().GetGauge("defense.tax_pct")->Set(tax);
  }
  BenchReport::Instance().RecordRun(config, stats, cluster);
  return stats;
}

struct RecoveryOutcome {
  bool halted = false;     // Victim crash-stopped (rollback detected and refused).
  bool recovered = false;  // Victim's committed prefix caught back up to the crash height.
  double ms = 0.0;         // Virtual reboot -> caught-up latency when recovered.
};

// Crashes the last replica, optionally rolls its sealed storage back to the oldest
// version (the full-reset rollback attack), reboots it, and measures virtual time until
// its committed prefix regains the cluster's committed height at the crash.
RecoveryOutcome MeasureRecovery(Protocol protocol, persist::DefenseKind defense,
                                bool rollback) {
  ClusterConfig config = BaseConfig(protocol, defense);
  config.seed += rollback ? 0x9000 : 0x1000;
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Ms(400));
  const uint32_t victim = cluster.num_replicas() - 1;
  Height target = 0;
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    target = std::max(target, cluster.replica(i)->Invariants().committed_height);
  }
  cluster.CrashReplica(victim);
  cluster.sim().RunFor(Ms(120));  // Let the survivors absorb the crash first.
  SealedStorage& storage = cluster.platform(victim).storage();
  if (rollback) {
    storage.SetRollbackMode(RollbackMode::kOldest);
  }
  cluster.RebootReplica(victim);
  storage.SetRollbackMode(RollbackMode::kLatest);
  const SimTime reboot_at = cluster.sim().Now();
  RecoveryOutcome outcome;
  const SimTime deadline = reboot_at + Sec(12);
  while (cluster.sim().Now() < deadline) {
    cluster.sim().RunFor(Ms(10));
    const InvariantSnapshot snap = cluster.replica(victim)->Invariants();
    if (snap.halted) {
      outcome.halted = true;
      return outcome;
    }
    if (snap.committed_height >= target && !snap.recovering) {
      outcome.recovered = true;
      outcome.ms = ToMs(cluster.sim().Now() - reboot_at);
      return outcome;
    }
  }
  return outcome;  // Neither caught up nor halted inside the budget.
}

std::string RecoveryCell(const RecoveryOutcome& outcome) {
  if (outcome.halted) {
    return "halt";
  }
  if (!outcome.recovered) {
    return "DID NOT RECOVER";
  }
  return TablePrinter::Num(outcome.ms);
}

int Main() {
  std::printf("# Rollback-defense backends: steady-state tax and post-reboot recovery\n");
  std::printf("# (quorum reachable within charged latency; tax is the defenses' floor)\n\n");

  TablePrinter steady({"protocol", "defense", "tps", "commit p50 (ms)", "defense writes",
                       "tax vs local (%)"});
  for (Protocol protocol : kProtocols) {
    double local_tps = 0.0;
    for (persist::DefenseKind defense : kDefenses) {
      ClusterConfig config = BaseConfig(protocol, defense);
      uint64_t writes = 0;
      const RunStats stats = MeasureSteady(config, local_tps, &writes);
      const bool is_local = defense == persist::DefenseKind::kLocal;
      const double tax = is_local ? 0.0 : 100.0 * (1.0 - stats.throughput_tps / local_tps);
      steady.AddRow({ProtocolName(protocol), persist::DefenseKindName(defense),
                     TablePrinter::Num(stats.throughput_tps, 0),
                     TablePrinter::Num(stats.commit_p50_ms),
                     std::to_string(writes),
                     is_local ? "-" : TablePrinter::Num(tax, 1)});
      if (is_local) {
        local_tps = stats.throughput_tps;
      }
      std::fprintf(stderr, "  steady %s/%s done\n", ProtocolName(protocol),
                   persist::DefenseKindName(defense));
    }
  }
  steady.Print();

  std::printf("\n## Post-reboot recovery (virtual ms, reboot -> committed prefix regains\n");
  std::printf("## the crash-time cluster height; 'halt' = rollback detected, replica\n");
  std::printf("## crash-stops by design)\n\n");
  TablePrinter recovery({"protocol", "defense", "clean reboot (ms)",
                         "rolled-back reboot"});
  for (Protocol protocol : kProtocols) {
    for (persist::DefenseKind defense : kDefenses) {
      const RecoveryOutcome clean = MeasureRecovery(protocol, defense, /*rollback=*/false);
      const RecoveryOutcome attacked = MeasureRecovery(protocol, defense,
                                                       /*rollback=*/true);
      recovery.AddRow({ProtocolName(protocol), persist::DefenseKindName(defense),
                       RecoveryCell(clean), RecoveryCell(attacked)});
      std::fprintf(stderr, "  recovery %s/%s done\n", ProtocolName(protocol),
                   persist::DefenseKindName(defense));
    }
  }
  recovery.Print();

  std::printf(
      "\nReading: local detects rollback only with a counter (the -R variants halt);\n"
      "rollbaccine repairs it from peer copies and rejoins; healer refuses it (halt)\n"
      "unless the protocol — Achilles — can re-derive trusted state from the network.\n");
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  // --smoke mirrors bench_all's CI plumbing mode for standalone invocations.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      setenv("ACHILLES_BENCH_SCALE", "0.05", /*overwrite=*/0);
    }
  }
  achilles::BenchIo io("defense", &argc, argv);
  return io.Finish(achilles::Main());
}
