// Reproduces Table 3: SGX overhead profiling — Achilles vs Achilles-C (trusted components
// outside the enclave) vs BRaft (CFT ceiling), max throughput and latency in LAN.
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

int Main() {
  std::printf("# Table 3 reproduction — overhead profiling in LAN (batch 400, 256 B)\n\n");
  const Protocol protocols[] = {Protocol::kAchilles, Protocol::kAchillesC, Protocol::kRaft};
  TablePrinter tput({"protocol", "f=2 (KTPS)", "f=4 (KTPS)", "f=10 (KTPS)"});
  TablePrinter lat({"protocol", "f=2 (ms)", "f=4 (ms)", "f=10 (ms)"});
  double achilles_f10 = 0;
  double achilles_c_f10 = 0;
  double raft_f10 = 0;
  for (Protocol protocol : protocols) {
    std::vector<std::string> tput_row = {ProtocolName(protocol)};
    std::vector<std::string> lat_row = {ProtocolName(protocol)};
    for (uint32_t f : {2u, 4u, 10u}) {
      ClusterConfig config;
      config.protocol = protocol;
      config.f = f;
      config.batch_size = 400;
      config.payload_size = 256;
      config.net = NetworkConfig::Lan();
      config.seed = 0x7ab1e300 + f;
      const RunStats stats = MeasureOnce(config, Ms(500), Sec(3));
      tput_row.push_back(TablePrinter::Num(stats.throughput_tps / 1000.0, 1));
      lat_row.push_back(TablePrinter::Num(stats.commit_latency_ms, 1));
      if (f == 10) {
        if (protocol == Protocol::kAchilles) {
          achilles_f10 = stats.throughput_tps;
        } else if (protocol == Protocol::kAchillesC) {
          achilles_c_f10 = stats.throughput_tps;
        } else {
          raft_f10 = stats.throughput_tps;
        }
      }
      std::fprintf(stderr, "  done %s f=%u\n", ProtocolName(protocol), f);
    }
    tput.AddRow(tput_row);
    lat.AddRow(lat_row);
  }
  std::printf("Throughput:\n");
  tput.Print();
  std::printf("\nLatency:\n");
  lat.Print();
  if (achilles_c_f10 > 0 && raft_f10 > 0) {
    std::printf("\nAchilles/Achilles-C at f=10: %.1f%% (paper: 76.3%%)\n",
                100.0 * achilles_f10 / achilles_c_f10);
    std::printf("Achilles/BRaft at f=10:      %.1f%% (paper: 97.3%%)\n",
                100.0 * achilles_f10 / raft_f10);
  }
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("table3_profiling", argc, argv);
  return io.Finish(achilles::Main());
}
