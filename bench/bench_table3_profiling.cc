// Reproduces Table 3: SGX overhead profiling — Achilles vs Achilles-C (trusted components
// outside the enclave) vs BRaft (CFT ceiling), max throughput and latency in LAN. Runs with
// the causal critical-path profiler always on (zero virtual cost), so the causal table
// attributes each cell's commit latency to on-path components and prints what-if
// predictions for the two knobs Table 3 is about: ECALL overhead and crypto cost.
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"
#include "src/obs/critpath.h"

namespace achilles {
namespace {

int Main() {
  std::printf("# Table 3 reproduction — overhead profiling in LAN (batch 400, 256 B)\n\n");
  const Protocol protocols[] = {Protocol::kAchilles, Protocol::kAchillesC, Protocol::kRaft};
  TablePrinter tput({"protocol", "f=2 (KTPS)", "f=4 (KTPS)", "f=10 (KTPS)"});
  TablePrinter lat({"protocol", "f=2 (ms)", "f=4 (ms)", "f=10 (ms)"});
  TablePrinter causal({"protocol", "f", "crit net (ms)", "crit crypto (ms)",
                       "crit ecall (ms)", "crit wait (ms)", "what-if -ecall (ms)",
                       "what-if -crypto (ms)"});
  double achilles_f10 = 0;
  double achilles_c_f10 = 0;
  double raft_f10 = 0;
  for (Protocol protocol : protocols) {
    std::vector<std::string> tput_row = {ProtocolName(protocol)};
    std::vector<std::string> lat_row = {ProtocolName(protocol)};
    for (uint32_t f : {2u, 4u, 10u}) {
      ClusterConfig config;
      config.protocol = protocol;
      config.f = f;
      config.batch_size = 400;
      config.payload_size = 256;
      config.net = NetworkConfig::Lan();
      config.seed = 0x7ab1e300 + f;
      config.critpath = true;
      const RunStats stats = MeasureOnce(config, Ms(500), Sec(3));
      tput_row.push_back(TablePrinter::Num(stats.throughput_tps / 1000.0, 1));
      lat_row.push_back(TablePrinter::Num(stats.commit_latency_ms, 1));
      const obs::CritSummary& cp = stats.critpath;
      const double net_ms =
          cp.crit_ms[static_cast<size_t>(obs::Component::kNetPropagation)] +
          cp.crit_ms[static_cast<size_t>(obs::Component::kNicSerialization)];
      causal.AddRow({ProtocolName(protocol), std::to_string(f),
                     TablePrinter::Num(net_ms, 2),
                     TablePrinter::Num(
                         cp.crit_ms[static_cast<size_t>(obs::Component::kCrypto)], 2),
                     TablePrinter::Num(
                         cp.crit_ms[static_cast<size_t>(obs::Component::kEcall)], 2),
                     TablePrinter::Num(cp.wait_ms, 2),
                     TablePrinter::Num(cp.zero_ecall_ms, 2),
                     TablePrinter::Num(cp.zero_crypto_ms, 2)});
      if (f == 10) {
        if (protocol == Protocol::kAchilles) {
          achilles_f10 = stats.throughput_tps;
        } else if (protocol == Protocol::kAchillesC) {
          achilles_c_f10 = stats.throughput_tps;
        } else {
          raft_f10 = stats.throughput_tps;
        }
      }
      std::fprintf(stderr, "  done %s f=%u\n", ProtocolName(protocol), f);
    }
    tput.AddRow(tput_row);
    lat.AddRow(lat_row);
  }
  std::printf("Throughput:\n");
  tput.Print();
  std::printf("\nLatency:\n");
  lat.Print();
  std::printf("\nCausal critical path (per-tx on-path means; what-if = predicted commit "
              "latency with the component free):\n");
  causal.Print();
  if (achilles_c_f10 > 0 && raft_f10 > 0) {
    std::printf("\nAchilles/Achilles-C at f=10: %.1f%% (paper: 76.3%%)\n",
                100.0 * achilles_f10 / achilles_c_f10);
    std::printf("Achilles/BRaft at f=10:      %.1f%% (paper: 97.3%%)\n",
                100.0 * achilles_f10 / raft_f10);
  }
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("table3_profiling", &argc, argv);
  return io.Finish(achilles::Main());
}
