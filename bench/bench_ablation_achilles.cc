// Ablations for the design choices called out in DESIGN.md:
//   (a) one-phase chained commit vs two-phase (Achilles vs Damysus, both counter-free);
//   (b) the NEW-VIEW optimization on/off;
//   (c) ECALL-cost sweep: what Table 3's SGX gap is made of;
//   (d) real Schnorr vs fast-HMAC signature backend (results must be identical: the
//       simulator charges modeled costs either way).
#include "src/harness/bench_report.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

ClusterConfig Base(Protocol protocol, uint64_t seed) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = 4;
  config.batch_size = 400;
  config.payload_size = 256;
  config.net = NetworkConfig::Lan();
  config.counter = CounterSpec::None();
  config.seed = seed;
  return config;
}

int Main() {
  std::printf("# Achilles ablations (LAN, f=4, batch 400, 256 B)\n");

  {
    std::printf("\n== (a) one-phase vs two-phase commit (no counters anywhere) ==\n");
    TablePrinter table({"variant", "throughput (KTPS)", "commit latency (ms)"});
    const RunStats one_phase = MeasureOnce(Base(Protocol::kAchilles, 1), Ms(500), Sec(3));
    const RunStats two_phase = MeasureOnce(Base(Protocol::kDamysus, 1), Ms(500), Sec(3));
    table.AddRow({"Achilles (1-phase)", TablePrinter::Num(one_phase.throughput_tps / 1e3),
                  TablePrinter::Num(one_phase.commit_latency_ms)});
    table.AddRow({"Damysus (2-phase)", TablePrinter::Num(two_phase.throughput_tps / 1e3),
                  TablePrinter::Num(two_phase.commit_latency_ms)});
    table.Print();
  }

  {
    std::printf("\n== (b) NEW-VIEW optimization (commit fast path) ==\n");
    TablePrinter table({"fast path", "throughput (KTPS)", "commit latency (ms)"});
    for (bool fast : {true, false}) {
      ClusterConfig config = Base(Protocol::kAchilles, 2);
      config.commit_fast_path = fast;
      const RunStats stats = MeasureOnce(config, Ms(500), Sec(3));
      table.AddRow({fast ? "on" : "off", TablePrinter::Num(stats.throughput_tps / 1e3),
                    TablePrinter::Num(stats.commit_latency_ms)});
    }
    table.Print();
  }

  {
    std::printf("\n== (c) ECALL round-trip cost sweep ==\n");
    TablePrinter table({"ecall cost (us)", "throughput (KTPS)", "commit latency (ms)"});
    for (int64_t us : {0, 8, 25, 50, 100}) {
      ClusterConfig config = Base(Protocol::kAchilles, 3);
      config.costs.ecall_round_trip = Us(us);
      const RunStats stats = MeasureOnce(config, Ms(500), Sec(3));
      table.AddRow({std::to_string(us), TablePrinter::Num(stats.throughput_tps / 1e3),
                    TablePrinter::Num(stats.commit_latency_ms)});
    }
    table.Print();
  }

  {
    std::printf("\n== (d) signature backend: fast-HMAC vs real Schnorr ==\n");
    std::printf("(identical charged costs => identical virtual-time results)\n");
    TablePrinter table({"backend", "throughput (KTPS)", "commit latency (ms)", "blocks"});
    for (SignatureScheme scheme : {SignatureScheme::kFastHmac, SignatureScheme::kSchnorr}) {
      ClusterConfig config = Base(Protocol::kAchilles, 4);
      config.scheme = scheme;
      config.f = 1;               // Keep the real-crypto run cheap in wall-clock.
      config.batch_size = 100;
      const RunStats stats = MeasureOnce(config, Ms(200), Ms(800));
      table.AddRow({scheme == SignatureScheme::kSchnorr ? "secp256k1 Schnorr" : "HMAC",
                    TablePrinter::Num(stats.throughput_tps / 1e3),
                    TablePrinter::Num(stats.commit_latency_ms),
                    std::to_string(stats.committed_blocks)});
    }
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) {
  achilles::BenchIo io("ablation_achilles", &argc, argv);
  return io.Finish(achilles::Main());
}
