# Empty compiler generated dependencies file for bench_fig5_counter_sweep.
# This may be replaced when dependencies are built.
