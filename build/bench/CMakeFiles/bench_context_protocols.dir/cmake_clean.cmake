file(REMOVE_RECURSE
  "CMakeFiles/bench_context_protocols.dir/bench_context_protocols.cc.o"
  "CMakeFiles/bench_context_protocols.dir/bench_context_protocols.cc.o.d"
  "bench_context_protocols"
  "bench_context_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_context_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
