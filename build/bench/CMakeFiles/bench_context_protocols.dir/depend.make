# Empty dependencies file for bench_context_protocols.
# This may be replaced when dependencies are built.
