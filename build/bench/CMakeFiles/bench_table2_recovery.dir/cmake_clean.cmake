file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_recovery.dir/bench_table2_recovery.cc.o"
  "CMakeFiles/bench_table2_recovery.dir/bench_table2_recovery.cc.o.d"
  "bench_table2_recovery"
  "bench_table2_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
