file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_achilles.dir/bench_ablation_achilles.cc.o"
  "CMakeFiles/bench_ablation_achilles.dir/bench_ablation_achilles.cc.o.d"
  "bench_ablation_achilles"
  "bench_ablation_achilles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_achilles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
