# Empty compiler generated dependencies file for bench_ablation_achilles.
# This may be replaced when dependencies are built.
