# Empty dependencies file for bench_table4_counters.
# This may be replaced when dependencies are built.
