file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_counters.dir/bench_table4_counters.cc.o"
  "CMakeFiles/bench_table4_counters.dir/bench_table4_counters.cc.o.d"
  "bench_table4_counters"
  "bench_table4_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
