file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_instances.dir/bench_parallel_instances.cc.o"
  "CMakeFiles/bench_parallel_instances.dir/bench_parallel_instances.cc.o.d"
  "bench_parallel_instances"
  "bench_parallel_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
