# Empty dependencies file for bench_parallel_instances.
# This may be replaced when dependencies are built.
