# Empty dependencies file for rollback_recovery_demo.
# This may be replaced when dependencies are built.
