file(REMOVE_RECURSE
  "CMakeFiles/rollback_recovery_demo.dir/rollback_recovery_demo.cc.o"
  "CMakeFiles/rollback_recovery_demo.dir/rollback_recovery_demo.cc.o.d"
  "rollback_recovery_demo"
  "rollback_recovery_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_recovery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
