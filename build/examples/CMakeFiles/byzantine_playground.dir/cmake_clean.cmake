file(REMOVE_RECURSE
  "CMakeFiles/byzantine_playground.dir/byzantine_playground.cc.o"
  "CMakeFiles/byzantine_playground.dir/byzantine_playground.cc.o.d"
  "byzantine_playground"
  "byzantine_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
