# Empty compiler generated dependencies file for byzantine_playground.
# This may be replaced when dependencies are built.
