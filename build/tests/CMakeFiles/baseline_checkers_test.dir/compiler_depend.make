# Empty compiler generated dependencies file for baseline_checkers_test.
# This may be replaced when dependencies are built.
