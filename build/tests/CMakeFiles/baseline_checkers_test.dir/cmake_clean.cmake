file(REMOVE_RECURSE
  "CMakeFiles/baseline_checkers_test.dir/baseline_checkers_test.cc.o"
  "CMakeFiles/baseline_checkers_test.dir/baseline_checkers_test.cc.o.d"
  "baseline_checkers_test"
  "baseline_checkers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_checkers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
