file(REMOVE_RECURSE
  "CMakeFiles/client_harness_test.dir/client_harness_test.cc.o"
  "CMakeFiles/client_harness_test.dir/client_harness_test.cc.o.d"
  "client_harness_test"
  "client_harness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
