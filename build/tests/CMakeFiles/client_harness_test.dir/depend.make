# Empty dependencies file for client_harness_test.
# This may be replaced when dependencies are built.
