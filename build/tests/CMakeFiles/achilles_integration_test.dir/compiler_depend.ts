# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for achilles_integration_test.
