file(REMOVE_RECURSE
  "CMakeFiles/achilles_integration_test.dir/achilles_integration_test.cc.o"
  "CMakeFiles/achilles_integration_test.dir/achilles_integration_test.cc.o.d"
  "achilles_integration_test"
  "achilles_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
