# Empty dependencies file for achilles_integration_test.
# This may be replaced when dependencies are built.
