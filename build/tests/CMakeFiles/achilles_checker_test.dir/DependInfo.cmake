
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/achilles_checker_test.cc" "tests/CMakeFiles/achilles_checker_test.dir/achilles_checker_test.cc.o" "gcc" "tests/CMakeFiles/achilles_checker_test.dir/achilles_checker_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/achilles_achilles.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_damysus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_oneshot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_flexibft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_minbft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_hotstuff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
