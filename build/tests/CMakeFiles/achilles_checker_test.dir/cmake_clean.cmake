file(REMOVE_RECURSE
  "CMakeFiles/achilles_checker_test.dir/achilles_checker_test.cc.o"
  "CMakeFiles/achilles_checker_test.dir/achilles_checker_test.cc.o.d"
  "achilles_checker_test"
  "achilles_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
