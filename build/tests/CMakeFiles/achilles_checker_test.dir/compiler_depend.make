# Empty compiler generated dependencies file for achilles_checker_test.
# This may be replaced when dependencies are built.
