file(REMOVE_RECURSE
  "CMakeFiles/context_protocols_test.dir/context_protocols_test.cc.o"
  "CMakeFiles/context_protocols_test.dir/context_protocols_test.cc.o.d"
  "context_protocols_test"
  "context_protocols_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
