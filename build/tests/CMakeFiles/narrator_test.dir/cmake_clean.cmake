file(REMOVE_RECURSE
  "CMakeFiles/narrator_test.dir/narrator_test.cc.o"
  "CMakeFiles/narrator_test.dir/narrator_test.cc.o.d"
  "narrator_test"
  "narrator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
