# Empty dependencies file for narrator_test.
# This may be replaced when dependencies are built.
