file(REMOVE_RECURSE
  "CMakeFiles/achilles_flexibft.dir/flexibft/replica.cc.o"
  "CMakeFiles/achilles_flexibft.dir/flexibft/replica.cc.o.d"
  "libachilles_flexibft.a"
  "libachilles_flexibft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_flexibft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
