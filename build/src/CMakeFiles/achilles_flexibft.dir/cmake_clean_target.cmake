file(REMOVE_RECURSE
  "libachilles_flexibft.a"
)
