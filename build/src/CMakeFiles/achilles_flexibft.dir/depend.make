# Empty dependencies file for achilles_flexibft.
# This may be replaced when dependencies are built.
