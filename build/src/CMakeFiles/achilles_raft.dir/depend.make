# Empty dependencies file for achilles_raft.
# This may be replaced when dependencies are built.
