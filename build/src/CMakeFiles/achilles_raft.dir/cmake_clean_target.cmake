file(REMOVE_RECURSE
  "libachilles_raft.a"
)
