file(REMOVE_RECURSE
  "CMakeFiles/achilles_raft.dir/raft/replica.cc.o"
  "CMakeFiles/achilles_raft.dir/raft/replica.cc.o.d"
  "libachilles_raft.a"
  "libachilles_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
