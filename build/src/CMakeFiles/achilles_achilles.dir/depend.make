# Empty dependencies file for achilles_achilles.
# This may be replaced when dependencies are built.
