file(REMOVE_RECURSE
  "libachilles_achilles.a"
)
