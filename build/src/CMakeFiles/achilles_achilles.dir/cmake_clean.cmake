file(REMOVE_RECURSE
  "CMakeFiles/achilles_achilles.dir/achilles/checker.cc.o"
  "CMakeFiles/achilles_achilles.dir/achilles/checker.cc.o.d"
  "CMakeFiles/achilles_achilles.dir/achilles/replica.cc.o"
  "CMakeFiles/achilles_achilles.dir/achilles/replica.cc.o.d"
  "libachilles_achilles.a"
  "libachilles_achilles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_achilles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
