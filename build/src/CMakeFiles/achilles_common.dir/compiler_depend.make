# Empty compiler generated dependencies file for achilles_common.
# This may be replaced when dependencies are built.
