file(REMOVE_RECURSE
  "CMakeFiles/achilles_common.dir/common/bytes.cc.o"
  "CMakeFiles/achilles_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/achilles_common.dir/common/log.cc.o"
  "CMakeFiles/achilles_common.dir/common/log.cc.o.d"
  "CMakeFiles/achilles_common.dir/common/rng.cc.o"
  "CMakeFiles/achilles_common.dir/common/rng.cc.o.d"
  "CMakeFiles/achilles_common.dir/common/serde.cc.o"
  "CMakeFiles/achilles_common.dir/common/serde.cc.o.d"
  "libachilles_common.a"
  "libachilles_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
