file(REMOVE_RECURSE
  "libachilles_common.a"
)
