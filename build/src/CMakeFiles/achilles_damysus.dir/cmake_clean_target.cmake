file(REMOVE_RECURSE
  "libachilles_damysus.a"
)
