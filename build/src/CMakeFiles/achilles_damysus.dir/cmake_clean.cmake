file(REMOVE_RECURSE
  "CMakeFiles/achilles_damysus.dir/damysus/checker.cc.o"
  "CMakeFiles/achilles_damysus.dir/damysus/checker.cc.o.d"
  "CMakeFiles/achilles_damysus.dir/damysus/replica.cc.o"
  "CMakeFiles/achilles_damysus.dir/damysus/replica.cc.o.d"
  "libachilles_damysus.a"
  "libachilles_damysus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_damysus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
