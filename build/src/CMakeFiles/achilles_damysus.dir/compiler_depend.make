# Empty compiler generated dependencies file for achilles_damysus.
# This may be replaced when dependencies are built.
