file(REMOVE_RECURSE
  "libachilles_consensus.a"
)
