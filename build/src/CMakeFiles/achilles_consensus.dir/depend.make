# Empty dependencies file for achilles_consensus.
# This may be replaced when dependencies are built.
