file(REMOVE_RECURSE
  "CMakeFiles/achilles_consensus.dir/consensus/block.cc.o"
  "CMakeFiles/achilles_consensus.dir/consensus/block.cc.o.d"
  "CMakeFiles/achilles_consensus.dir/consensus/certificates.cc.o"
  "CMakeFiles/achilles_consensus.dir/consensus/certificates.cc.o.d"
  "CMakeFiles/achilles_consensus.dir/consensus/commit_tracker.cc.o"
  "CMakeFiles/achilles_consensus.dir/consensus/commit_tracker.cc.o.d"
  "CMakeFiles/achilles_consensus.dir/consensus/mempool.cc.o"
  "CMakeFiles/achilles_consensus.dir/consensus/mempool.cc.o.d"
  "CMakeFiles/achilles_consensus.dir/consensus/metrics.cc.o"
  "CMakeFiles/achilles_consensus.dir/consensus/metrics.cc.o.d"
  "CMakeFiles/achilles_consensus.dir/consensus/replica_base.cc.o"
  "CMakeFiles/achilles_consensus.dir/consensus/replica_base.cc.o.d"
  "CMakeFiles/achilles_consensus.dir/consensus/transaction.cc.o"
  "CMakeFiles/achilles_consensus.dir/consensus/transaction.cc.o.d"
  "libachilles_consensus.a"
  "libachilles_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
