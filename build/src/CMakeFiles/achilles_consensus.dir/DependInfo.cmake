
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/block.cc" "src/CMakeFiles/achilles_consensus.dir/consensus/block.cc.o" "gcc" "src/CMakeFiles/achilles_consensus.dir/consensus/block.cc.o.d"
  "/root/repo/src/consensus/certificates.cc" "src/CMakeFiles/achilles_consensus.dir/consensus/certificates.cc.o" "gcc" "src/CMakeFiles/achilles_consensus.dir/consensus/certificates.cc.o.d"
  "/root/repo/src/consensus/commit_tracker.cc" "src/CMakeFiles/achilles_consensus.dir/consensus/commit_tracker.cc.o" "gcc" "src/CMakeFiles/achilles_consensus.dir/consensus/commit_tracker.cc.o.d"
  "/root/repo/src/consensus/mempool.cc" "src/CMakeFiles/achilles_consensus.dir/consensus/mempool.cc.o" "gcc" "src/CMakeFiles/achilles_consensus.dir/consensus/mempool.cc.o.d"
  "/root/repo/src/consensus/metrics.cc" "src/CMakeFiles/achilles_consensus.dir/consensus/metrics.cc.o" "gcc" "src/CMakeFiles/achilles_consensus.dir/consensus/metrics.cc.o.d"
  "/root/repo/src/consensus/replica_base.cc" "src/CMakeFiles/achilles_consensus.dir/consensus/replica_base.cc.o" "gcc" "src/CMakeFiles/achilles_consensus.dir/consensus/replica_base.cc.o.d"
  "/root/repo/src/consensus/transaction.cc" "src/CMakeFiles/achilles_consensus.dir/consensus/transaction.cc.o" "gcc" "src/CMakeFiles/achilles_consensus.dir/consensus/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/achilles_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_tee.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
