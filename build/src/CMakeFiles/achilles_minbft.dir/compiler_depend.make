# Empty compiler generated dependencies file for achilles_minbft.
# This may be replaced when dependencies are built.
