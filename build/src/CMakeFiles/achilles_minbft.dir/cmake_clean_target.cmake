file(REMOVE_RECURSE
  "libachilles_minbft.a"
)
