file(REMOVE_RECURSE
  "CMakeFiles/achilles_minbft.dir/minbft/replica.cc.o"
  "CMakeFiles/achilles_minbft.dir/minbft/replica.cc.o.d"
  "CMakeFiles/achilles_minbft.dir/minbft/usig.cc.o"
  "CMakeFiles/achilles_minbft.dir/minbft/usig.cc.o.d"
  "libachilles_minbft.a"
  "libachilles_minbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_minbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
