file(REMOVE_RECURSE
  "libachilles_hotstuff.a"
)
