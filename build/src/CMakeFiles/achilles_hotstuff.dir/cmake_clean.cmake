file(REMOVE_RECURSE
  "CMakeFiles/achilles_hotstuff.dir/hotstuff/replica.cc.o"
  "CMakeFiles/achilles_hotstuff.dir/hotstuff/replica.cc.o.d"
  "libachilles_hotstuff.a"
  "libachilles_hotstuff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_hotstuff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
