# Empty dependencies file for achilles_hotstuff.
# This may be replaced when dependencies are built.
