
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/achilles_crypto.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/achilles_crypto.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/schnorr.cc" "src/CMakeFiles/achilles_crypto.dir/crypto/schnorr.cc.o" "gcc" "src/CMakeFiles/achilles_crypto.dir/crypto/schnorr.cc.o.d"
  "/root/repo/src/crypto/secp256k1.cc" "src/CMakeFiles/achilles_crypto.dir/crypto/secp256k1.cc.o" "gcc" "src/CMakeFiles/achilles_crypto.dir/crypto/secp256k1.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/achilles_crypto.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/achilles_crypto.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/signer.cc" "src/CMakeFiles/achilles_crypto.dir/crypto/signer.cc.o" "gcc" "src/CMakeFiles/achilles_crypto.dir/crypto/signer.cc.o.d"
  "/root/repo/src/crypto/uint256.cc" "src/CMakeFiles/achilles_crypto.dir/crypto/uint256.cc.o" "gcc" "src/CMakeFiles/achilles_crypto.dir/crypto/uint256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/achilles_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
