file(REMOVE_RECURSE
  "libachilles_crypto.a"
)
