file(REMOVE_RECURSE
  "CMakeFiles/achilles_crypto.dir/crypto/hmac.cc.o"
  "CMakeFiles/achilles_crypto.dir/crypto/hmac.cc.o.d"
  "CMakeFiles/achilles_crypto.dir/crypto/schnorr.cc.o"
  "CMakeFiles/achilles_crypto.dir/crypto/schnorr.cc.o.d"
  "CMakeFiles/achilles_crypto.dir/crypto/secp256k1.cc.o"
  "CMakeFiles/achilles_crypto.dir/crypto/secp256k1.cc.o.d"
  "CMakeFiles/achilles_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/achilles_crypto.dir/crypto/sha256.cc.o.d"
  "CMakeFiles/achilles_crypto.dir/crypto/signer.cc.o"
  "CMakeFiles/achilles_crypto.dir/crypto/signer.cc.o.d"
  "CMakeFiles/achilles_crypto.dir/crypto/uint256.cc.o"
  "CMakeFiles/achilles_crypto.dir/crypto/uint256.cc.o.d"
  "libachilles_crypto.a"
  "libachilles_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
