# Empty compiler generated dependencies file for achilles_crypto.
# This may be replaced when dependencies are built.
