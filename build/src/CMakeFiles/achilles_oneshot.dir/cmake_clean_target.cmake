file(REMOVE_RECURSE
  "libachilles_oneshot.a"
)
