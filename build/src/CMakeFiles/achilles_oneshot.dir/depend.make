# Empty dependencies file for achilles_oneshot.
# This may be replaced when dependencies are built.
