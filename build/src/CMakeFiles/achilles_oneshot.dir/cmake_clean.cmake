file(REMOVE_RECURSE
  "CMakeFiles/achilles_oneshot.dir/oneshot/checker.cc.o"
  "CMakeFiles/achilles_oneshot.dir/oneshot/checker.cc.o.d"
  "CMakeFiles/achilles_oneshot.dir/oneshot/replica.cc.o"
  "CMakeFiles/achilles_oneshot.dir/oneshot/replica.cc.o.d"
  "libachilles_oneshot.a"
  "libachilles_oneshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_oneshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
