file(REMOVE_RECURSE
  "libachilles_harness.a"
)
