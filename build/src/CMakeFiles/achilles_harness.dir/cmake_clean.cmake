file(REMOVE_RECURSE
  "CMakeFiles/achilles_harness.dir/harness/byzantine.cc.o"
  "CMakeFiles/achilles_harness.dir/harness/byzantine.cc.o.d"
  "CMakeFiles/achilles_harness.dir/harness/cluster.cc.o"
  "CMakeFiles/achilles_harness.dir/harness/cluster.cc.o.d"
  "CMakeFiles/achilles_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/achilles_harness.dir/harness/experiment.cc.o.d"
  "CMakeFiles/achilles_harness.dir/harness/parallel.cc.o"
  "CMakeFiles/achilles_harness.dir/harness/parallel.cc.o.d"
  "libachilles_harness.a"
  "libachilles_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
