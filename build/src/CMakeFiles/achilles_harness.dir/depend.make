# Empty dependencies file for achilles_harness.
# This may be replaced when dependencies are built.
