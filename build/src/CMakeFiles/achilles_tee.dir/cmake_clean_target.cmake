file(REMOVE_RECURSE
  "libachilles_tee.a"
)
