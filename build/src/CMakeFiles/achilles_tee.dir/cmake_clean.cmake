file(REMOVE_RECURSE
  "CMakeFiles/achilles_tee.dir/tee/enclave.cc.o"
  "CMakeFiles/achilles_tee.dir/tee/enclave.cc.o.d"
  "CMakeFiles/achilles_tee.dir/tee/monotonic_counter.cc.o"
  "CMakeFiles/achilles_tee.dir/tee/monotonic_counter.cc.o.d"
  "CMakeFiles/achilles_tee.dir/tee/narrator.cc.o"
  "CMakeFiles/achilles_tee.dir/tee/narrator.cc.o.d"
  "CMakeFiles/achilles_tee.dir/tee/platform.cc.o"
  "CMakeFiles/achilles_tee.dir/tee/platform.cc.o.d"
  "CMakeFiles/achilles_tee.dir/tee/sealed_storage.cc.o"
  "CMakeFiles/achilles_tee.dir/tee/sealed_storage.cc.o.d"
  "libachilles_tee.a"
  "libachilles_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
