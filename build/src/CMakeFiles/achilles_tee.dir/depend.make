# Empty dependencies file for achilles_tee.
# This may be replaced when dependencies are built.
