
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/enclave.cc" "src/CMakeFiles/achilles_tee.dir/tee/enclave.cc.o" "gcc" "src/CMakeFiles/achilles_tee.dir/tee/enclave.cc.o.d"
  "/root/repo/src/tee/monotonic_counter.cc" "src/CMakeFiles/achilles_tee.dir/tee/monotonic_counter.cc.o" "gcc" "src/CMakeFiles/achilles_tee.dir/tee/monotonic_counter.cc.o.d"
  "/root/repo/src/tee/narrator.cc" "src/CMakeFiles/achilles_tee.dir/tee/narrator.cc.o" "gcc" "src/CMakeFiles/achilles_tee.dir/tee/narrator.cc.o.d"
  "/root/repo/src/tee/platform.cc" "src/CMakeFiles/achilles_tee.dir/tee/platform.cc.o" "gcc" "src/CMakeFiles/achilles_tee.dir/tee/platform.cc.o.d"
  "/root/repo/src/tee/sealed_storage.cc" "src/CMakeFiles/achilles_tee.dir/tee/sealed_storage.cc.o" "gcc" "src/CMakeFiles/achilles_tee.dir/tee/sealed_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/achilles_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/achilles_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
