file(REMOVE_RECURSE
  "CMakeFiles/achilles_client.dir/client/client.cc.o"
  "CMakeFiles/achilles_client.dir/client/client.cc.o.d"
  "libachilles_client.a"
  "libachilles_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
