# Empty compiler generated dependencies file for achilles_client.
# This may be replaced when dependencies are built.
