file(REMOVE_RECURSE
  "libachilles_client.a"
)
