file(REMOVE_RECURSE
  "libachilles_sim.a"
)
