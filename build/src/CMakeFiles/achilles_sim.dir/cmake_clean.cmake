file(REMOVE_RECURSE
  "CMakeFiles/achilles_sim.dir/sim/host.cc.o"
  "CMakeFiles/achilles_sim.dir/sim/host.cc.o.d"
  "CMakeFiles/achilles_sim.dir/sim/network.cc.o"
  "CMakeFiles/achilles_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/achilles_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/achilles_sim.dir/sim/simulation.cc.o.d"
  "libachilles_sim.a"
  "libachilles_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/achilles_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
