# Empty compiler generated dependencies file for achilles_sim.
# This may be replaced when dependencies are built.
