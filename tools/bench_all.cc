// bench_all: runs every bench binary with --json-out and merges the per-bench reports
// into one BENCH_summary.json for CI artifacts and cross-commit comparison.
//
// Usage: bench_all [--smoke] [--scale=F] [--bin-dir=DIR] [--out=PATH] [--only=SUBSTR]
//
//   --smoke        CI plumbing mode: exports ACHILLES_BENCH_SCALE=0.05 to the child
//                  benches, which shrinks every measured window (src/harness/experiment.cc
//                  applies the factor with floors). Numbers at smoke scale are for
//                  checking that the pipeline works, not for quoting.
//   --scale=F      Like --smoke with an explicit fraction in (0, 1).
//   --bin-dir=DIR  Directory holding the bench_* binaries (default: auto-detected from
//                  argv[0], assuming the CMake layout build/tools + build/bench).
//   --out=PATH     Summary path (default BENCH_summary.json in the working directory).
//   --only=SUBSTR  Run only benches whose name contains SUBSTR.
//
// The summary embeds, per bench: exit code, headline stats of the best-throughput run
// (TPS, commit p50/p99, e2e p99, latency breakdown), the simulator self-profiling gauges
// of that run, and the full per-bench report re-serialized verbatim. Plus one block of
// run metadata: git commit/branch/dirty and the default CostModel the benches simulate.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/tee/cost_model.h"

namespace achilles {
namespace {

const char* const kBenches[] = {
    "bench_fig3_main",        "bench_fig4_saturation",  "bench_fig5_counter_sweep",
    "bench_table1_comparison", "bench_table2_recovery", "bench_table3_profiling",
    "bench_table4_counters",  "bench_ablation_achilles", "bench_context_protocols",
    "bench_parallel_instances", "bench_app_kv",  "bench_checkpoint",
};

std::string Dirname(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

// Locates the bench binary: explicit --bin-dir wins, otherwise the sibling bench/
// directory of this binary's location (CMake layout), then the working directory.
std::string FindBinary(const std::string& bin_dir, const std::string& argv0_dir,
                       const char* name) {
  std::vector<std::string> candidates;
  if (!bin_dir.empty()) {
    candidates.push_back(bin_dir + "/" + name);
  } else {
    candidates.push_back(argv0_dir + "/../bench/" + name);
    candidates.push_back(argv0_dir + "/" + name);
    candidates.push_back(std::string("bench/") + name);
    candidates.push_back(std::string("./") + name);
  }
  for (const std::string& candidate : candidates) {
    if (access(candidate.c_str(), X_OK) == 0) {
      return candidate;
    }
  }
  return "";
}

std::string RunCommandLine(const std::string& cmd) {
  std::string out;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return out;
  }
  char buf[256];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    out += buf;
  }
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

std::string ReadFile(const std::string& path) {
  std::string out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return out;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

// Re-serializes a parsed value through the writer (numbers round-trip as doubles, which
// is how the bench reports emit them in the first place).
void WriteValue(obs::JsonWriter& w, const obs::JsonValue& v) {
  using Kind = obs::JsonValue::Kind;
  switch (v.kind) {
    case Kind::kNull:
      w.Null();
      break;
    case Kind::kBool:
      w.Bool(v.boolean);
      break;
    case Kind::kNumber:
      w.Double(v.number);
      break;
    case Kind::kString:
      w.String(v.string);
      break;
    case Kind::kArray:
      w.BeginArray();
      for (const obs::JsonValue& elem : v.array) {
        WriteValue(w, elem);
      }
      w.EndArray();
      break;
    case Kind::kObject:
      w.BeginObject();
      for (const auto& [key, value] : v.object) {
        w.Key(key);
        WriteValue(w, value);
      }
      w.EndObject();
      break;
  }
}

double NumberOr(const obs::JsonValue* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

void WriteCostModel(obs::JsonWriter& w) {
  const CostModel m = CostModel::Default();
  w.KeyBeginObject("cost_model_default")
      .Field("sign_ns", static_cast<int64_t>(m.sign))
      .Field("verify_ns", static_cast<int64_t>(m.verify))
      .Field("hash_ns_per_byte", m.hash_ns_per_byte)
      .Field("hash_fixed_ns", static_cast<int64_t>(m.hash_fixed))
      .Field("ecall_round_trip_ns", static_cast<int64_t>(m.ecall_round_trip))
      .Field("enclave_crypto_factor", m.enclave_crypto_factor)
      .Field("per_tx_execute_ns", static_cast<int64_t>(m.per_tx_execute))
      .Field("per_tx_client_ns", static_cast<int64_t>(m.per_tx_client))
      .Field("per_msg_handling_ns", static_cast<int64_t>(m.per_msg_handling))
      .Field("seal_op_ns", static_cast<int64_t>(m.seal_op))
      .Field("log_fsync_ns", static_cast<int64_t>(m.log_fsync))
      .EndObject();
}

void WriteGitMetadata(obs::JsonWriter& w) {
  const std::string commit = RunCommandLine("git rev-parse HEAD 2>/dev/null");
  const std::string branch = RunCommandLine("git rev-parse --abbrev-ref HEAD 2>/dev/null");
  const std::string dirty = RunCommandLine("git status --porcelain 2>/dev/null");
  w.KeyBeginObject("git")
      .Field("commit", commit.empty() ? "unknown" : commit)
      .Field("branch", branch.empty() ? "unknown" : branch)
      .Field("dirty", !dirty.empty())
      .EndObject();
}

// Picks the run with the highest throughput and emits its headline stats, latency
// breakdown, and the simulator self-profiling gauges recorded alongside it.
void WriteHeadline(obs::JsonWriter& w, const obs::JsonValue& report) {
  const obs::JsonValue* runs = report.Get("runs");
  const size_t num_runs = (runs != nullptr && runs->is_array()) ? runs->array.size() : 0;
  w.Field("runs", static_cast<uint64_t>(num_runs));
  const obs::JsonValue* best = nullptr;
  double best_tps = -1.0;
  for (size_t i = 0; i < num_runs; ++i) {
    const obs::JsonValue* stats = runs->array[i].Get("stats");
    if (stats == nullptr) {
      continue;
    }
    const double tps = NumberOr(stats->Get("throughput_tps"), -1.0);
    if (tps > best_tps) {
      best_tps = tps;
      best = &runs->array[i];
    }
  }
  if (best == nullptr) {
    // Table-only bench (drives clusters manually); its results live in "report".
    w.Key("peak").Null();
    return;
  }
  const obs::JsonValue* stats = best->Get("stats");
  w.KeyBeginObject("peak")
      .Field("throughput_tps", NumberOr(stats->Get("throughput_tps"), 0.0))
      .Field("commit_p50_ms", NumberOr(stats->Get("commit_p50_ms"), 0.0))
      .Field("commit_p99_ms", NumberOr(stats->Get("commit_p99_ms"), 0.0))
      .Field("e2e_latency_ms", NumberOr(stats->Get("e2e_latency_ms"), 0.0))
      .Field("e2e_p99_ms", NumberOr(stats->Get("e2e_p99_ms"), 0.0));
  if (const obs::JsonValue* breakdown = stats->Get("breakdown_ms")) {
    w.Key("breakdown_ms");
    WriteValue(w, *breakdown);
  }
  const obs::JsonValue* metrics = best->Get("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    w.KeyBeginObject("sim");
    for (const auto& [key, value] : metrics->object) {
      if (key.rfind("sim.", 0) == 0) {
        w.Key(key);
        WriteValue(w, value);
      }
    }
    w.EndObject();
    // Retention footprint of the peak run (per-node labeled gauges); present in every
    // export — smoke included — since RunMeasured refreshes them unconditionally.
    w.KeyBeginObject("footprint");
    for (const auto& [key, value] : metrics->object) {
      if (key.rfind("log.", 0) == 0 || key.rfind("ckpt.", 0) == 0) {
        w.Key(key);
        WriteValue(w, value);
      }
    }
    w.EndObject();
  }
  w.EndObject();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  double scale = 0.0;
  std::string bin_dir;
  std::string out_path = "BENCH_summary.json";
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      scale = 0.05;
    } else if (arg.rfind("--scale=", 0) == 0) {
      smoke = true;
      scale = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--bin-dir=", 0) == 0) {
      bin_dir = arg.substr(10);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--only=", 0) == 0) {
      only = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: bench_all [--smoke] [--scale=F] [--bin-dir=DIR] [--out=PATH] "
                   "[--only=SUBSTR]\n");
      return 2;
    }
  }
  if (smoke) {
    char scale_buf[32];
    std::snprintf(scale_buf, sizeof(scale_buf), "%g", scale);
    setenv("ACHILLES_BENCH_SCALE", scale_buf, /*overwrite=*/1);
    std::printf("bench_all: smoke mode, ACHILLES_BENCH_SCALE=%s\n", scale_buf);
  }
  const std::string argv0_dir = Dirname(argv[0]);

  obs::JsonWriter w;
  w.BeginObject().Field("generated_by", "bench_all").Field("smoke", smoke);
  if (smoke) {
    w.Field("scale", scale);
  }
  WriteGitMetadata(w);
  WriteCostModel(w);
  w.KeyBeginArray("benches");

  int failures = 0;
  int ran = 0;
  for (const char* name : kBenches) {
    if (!only.empty() && std::strstr(name, only.c_str()) == nullptr) {
      continue;
    }
    // BenchIo would default to BENCH_<name-without-prefix>.json; pass the path explicitly
    // so the merge step does not depend on that convention.
    const std::string json_path = std::string("BENCH_") + (name + std::strlen("bench_")) +
                                  ".json";
    w.BeginObject().Field("binary", name).Field("json_path", json_path);
    const std::string binary = FindBinary(bin_dir, argv0_dir, name);
    if (binary.empty()) {
      std::fprintf(stderr, "bench_all: %s not found (use --bin-dir)\n", name);
      w.Field("exit_code", static_cast<int64_t>(-1)).Field("error", "binary not found");
      w.EndObject();
      ++failures;
      continue;
    }
    std::printf("=== bench_all: running %s ===\n", binary.c_str());
    std::fflush(stdout);
    const std::string cmd = binary + " --json-out=" + json_path;
    const int rc = std::system(cmd.c_str());
    w.Field("exit_code", static_cast<int64_t>(rc));
    ++ran;
    if (rc != 0) {
      std::fprintf(stderr, "bench_all: %s exited with %d\n", name, rc);
      w.EndObject();
      ++failures;
      continue;
    }
    const std::string text = ReadFile(json_path);
    const std::optional<obs::JsonValue> report = obs::ParseJson(text);
    if (!report.has_value() || !report->is_object()) {
      std::fprintf(stderr, "bench_all: %s produced unparseable JSON at %s\n", name,
                   json_path.c_str());
      w.Field("error", "unparseable json").EndObject();
      ++failures;
      continue;
    }
    if (const obs::JsonValue* bench_name = report->Get("bench")) {
      if (bench_name->is_string()) {
        w.Field("bench", bench_name->string);
      }
    }
    WriteHeadline(w, *report);
    w.Key("report");
    WriteValue(w, *report);
    w.EndObject();
  }
  w.EndArray()
      .Field("benches_run", static_cast<int64_t>(ran))
      .Field("benches_failed", static_cast<int64_t>(failures))
      .EndObject();

  FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_all: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("bench_all: wrote %s (%d bench(es), %d failure(s))\n", out_path.c_str(), ran,
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) { return achilles::Main(argc, argv); }
