// bench_all: runs every bench binary with --json-out and merges the per-bench reports
// into one BENCH_summary.json for CI artifacts and cross-commit comparison.
//
// Usage: bench_all [--smoke] [--scale=F] [--jobs=N] [--bin-dir=DIR] [--out=PATH]
//                  [--only=SUBSTR] [--guard-baseline=PATH] [--defense=NAME]
//
//   --smoke        CI plumbing mode: exports ACHILLES_BENCH_SCALE=0.05 to the child
//                  benches, which shrinks every measured window (src/harness/experiment.cc
//                  applies the factor with floors). Numbers at smoke scale are for
//                  checking that the pipeline works, not for quoting.
//   --scale=F      Like --smoke with an explicit fraction in (0, 1).
//   --jobs=N       Run up to N bench binaries concurrently. Each child's stdout/stderr is
//                  buffered to BENCH_<name>.log and replayed in the fixed kBenches order
//                  once everything finishes, and reports merge in that same order — the
//                  summary is byte-comparable with a --jobs=1 run (modulo the wall-clock
//                  metrics themselves). Concurrent children share the machine, so their
//                  events-per-wall-second gauges dip; use --jobs=1 for quotable numbers.
//   --bin-dir=DIR  Directory holding the bench_* binaries (default: auto-detected from
//                  argv[0], assuming the CMake layout build/tools + build/bench).
//   --out=PATH     Summary path (default BENCH_summary.json in the working directory).
//   --only=SUBSTR  Run only benches whose name contains SUBSTR.
//   --defense=NAME Forward --defense=NAME (local|rollbaccine|healer) to every child bench
//                  except bench_defense (which sweeps all backends itself), so a whole
//                  summary can be generated under one rollback-defense backend.
//   --guard-baseline=PATH
//                  Perf-regression guard: compares this run's fig4 peak
//                  sim.events_per_wall_sec against the committed baseline summary at PATH
//                  and fails (exit 1) when the current number drops below 80% of the
//                  baseline. The ratio is scale-insensitive enough to run at smoke scale,
//                  which is how CI wires it (see ci.yml bench-smoke).
//
// The summary embeds, per bench: exit code, headline stats of the best-throughput run
// (TPS, commit p50/p99, e2e p99, latency breakdown), the simulator self-profiling gauges
// of that run, and the full per-bench report re-serialized verbatim. Plus one block of
// run metadata: git commit/branch/dirty and the default CostModel the benches simulate.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/flags.h"
#include "src/obs/json.h"
#include "src/tee/cost_model.h"

namespace achilles {
namespace {

const char* const kBenches[] = {
    "bench_fig3_main",        "bench_fig4_saturation",  "bench_fig5_counter_sweep",
    "bench_table1_comparison", "bench_table2_recovery", "bench_table3_profiling",
    "bench_table4_counters",  "bench_ablation_achilles", "bench_context_protocols",
    "bench_parallel_instances", "bench_app_kv",  "bench_checkpoint",
    "bench_sim_core",         "bench_defense",
};

std::string Dirname(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

// Locates the bench binary: explicit --bin-dir wins, otherwise the sibling bench/
// directory of this binary's location (CMake layout), then the working directory.
std::string FindBinary(const std::string& bin_dir, const std::string& argv0_dir,
                       const char* name) {
  std::vector<std::string> candidates;
  if (!bin_dir.empty()) {
    candidates.push_back(bin_dir + "/" + name);
  } else {
    candidates.push_back(argv0_dir + "/../bench/" + name);
    candidates.push_back(argv0_dir + "/" + name);
    candidates.push_back(std::string("bench/") + name);
    candidates.push_back(std::string("./") + name);
  }
  for (const std::string& candidate : candidates) {
    if (access(candidate.c_str(), X_OK) == 0) {
      return candidate;
    }
  }
  return "";
}

std::string RunCommandLine(const std::string& cmd) {
  std::string out;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return out;
  }
  char buf[256];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    out += buf;
  }
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

std::string ReadFile(const std::string& path) {
  std::string out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return out;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

// Re-serializes a parsed value through the writer (numbers round-trip as doubles, which
// is how the bench reports emit them in the first place).
void WriteValue(obs::JsonWriter& w, const obs::JsonValue& v) {
  using Kind = obs::JsonValue::Kind;
  switch (v.kind) {
    case Kind::kNull:
      w.Null();
      break;
    case Kind::kBool:
      w.Bool(v.boolean);
      break;
    case Kind::kNumber:
      w.Double(v.number);
      break;
    case Kind::kString:
      w.String(v.string);
      break;
    case Kind::kArray:
      w.BeginArray();
      for (const obs::JsonValue& elem : v.array) {
        WriteValue(w, elem);
      }
      w.EndArray();
      break;
    case Kind::kObject:
      w.BeginObject();
      for (const auto& [key, value] : v.object) {
        w.Key(key);
        WriteValue(w, value);
      }
      w.EndObject();
      break;
  }
}

double NumberOr(const obs::JsonValue* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

void WriteCostModel(obs::JsonWriter& w) {
  const CostModel m = CostModel::Default();
  w.KeyBeginObject("cost_model_default")
      .Field("sign_ns", static_cast<int64_t>(m.sign))
      .Field("verify_ns", static_cast<int64_t>(m.verify))
      .Field("verify_batch_fixed_ns", static_cast<int64_t>(m.verify_batch_fixed))
      .Field("verify_batch_per_sig_ns", static_cast<int64_t>(m.verify_batch_per_sig))
      .Field("hash_ns_per_byte", m.hash_ns_per_byte)
      .Field("hash_fixed_ns", static_cast<int64_t>(m.hash_fixed))
      .Field("ecall_round_trip_ns", static_cast<int64_t>(m.ecall_round_trip))
      .Field("enclave_crypto_factor", m.enclave_crypto_factor)
      .Field("per_tx_execute_ns", static_cast<int64_t>(m.per_tx_execute))
      .Field("per_tx_client_ns", static_cast<int64_t>(m.per_tx_client))
      .Field("per_msg_handling_ns", static_cast<int64_t>(m.per_msg_handling))
      .Field("seal_op_ns", static_cast<int64_t>(m.seal_op))
      .Field("log_fsync_ns", static_cast<int64_t>(m.log_fsync))
      .EndObject();
}

void WriteGitMetadata(obs::JsonWriter& w) {
  const std::string commit = RunCommandLine("git rev-parse HEAD 2>/dev/null");
  const std::string branch = RunCommandLine("git rev-parse --abbrev-ref HEAD 2>/dev/null");
  const std::string dirty = RunCommandLine("git status --porcelain 2>/dev/null");
  w.KeyBeginObject("git")
      .Field("commit", commit.empty() ? "unknown" : commit)
      .Field("branch", branch.empty() ? "unknown" : branch)
      .Field("dirty", !dirty.empty())
      .EndObject();
}

// Picks the run with the highest throughput and emits its headline stats, latency
// breakdown, and the simulator self-profiling gauges recorded alongside it.
void WriteHeadline(obs::JsonWriter& w, const obs::JsonValue& report) {
  const obs::JsonValue* runs = report.Get("runs");
  const size_t num_runs = (runs != nullptr && runs->is_array()) ? runs->array.size() : 0;
  w.Field("runs", static_cast<uint64_t>(num_runs));
  const obs::JsonValue* best = nullptr;
  double best_tps = -1.0;
  for (size_t i = 0; i < num_runs; ++i) {
    const obs::JsonValue* stats = runs->array[i].Get("stats");
    if (stats == nullptr) {
      continue;
    }
    const double tps = NumberOr(stats->Get("throughput_tps"), -1.0);
    if (tps > best_tps) {
      best_tps = tps;
      best = &runs->array[i];
    }
  }
  if (best == nullptr) {
    // Table-only bench (drives clusters manually); its results live in "report".
    w.Key("peak").Null();
    return;
  }
  const obs::JsonValue* stats = best->Get("stats");
  w.KeyBeginObject("peak")
      .Field("throughput_tps", NumberOr(stats->Get("throughput_tps"), 0.0))
      .Field("commit_p50_ms", NumberOr(stats->Get("commit_p50_ms"), 0.0))
      .Field("commit_p99_ms", NumberOr(stats->Get("commit_p99_ms"), 0.0))
      .Field("e2e_latency_ms", NumberOr(stats->Get("e2e_latency_ms"), 0.0))
      .Field("e2e_p99_ms", NumberOr(stats->Get("e2e_p99_ms"), 0.0));
  if (const obs::JsonValue* breakdown = stats->Get("breakdown_ms")) {
    w.Key("breakdown_ms");
    WriteValue(w, *breakdown);
  }
  // Causal critical-path summary of the peak run, when the bench profiled one.
  if (const obs::JsonValue* critpath = stats->Get("critpath")) {
    const obs::JsonValue* enabled = critpath->Get("enabled");
    if (enabled != nullptr && enabled->boolean) {
      w.Key("critpath");
      WriteValue(w, *critpath);
    }
  }
  const obs::JsonValue* metrics = best->Get("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    w.KeyBeginObject("sim");
    for (const auto& [key, value] : metrics->object) {
      if (key.rfind("sim.", 0) == 0) {
        w.Key(key);
        WriteValue(w, value);
      }
    }
    w.EndObject();
    // Retention footprint of the peak run (per-node labeled gauges); present in every
    // export — smoke included — since RunMeasured refreshes them unconditionally.
    w.KeyBeginObject("footprint");
    for (const auto& [key, value] : metrics->object) {
      if (key.rfind("log.", 0) == 0 || key.rfind("ckpt.", 0) == 0) {
        w.Key(key);
        WriteValue(w, value);
      }
    }
    w.EndObject();
  }
  w.EndObject();
}

// Extracts fig4's best sim.events_per_wall_sec from a merged summary, or -1 when absent
// (bench skipped by --only, failed, or a pre-guard summary format). The MAX over the
// bench's runs is the guard metric: it is the sweep point where the simulator itself is
// the bottleneck, and it is reproducible to well under 1% on an idle machine — unlike
// the best-TPS run's gauge, which lands on a crypto-bound config and swings tens of
// percent run to run.
double Fig4EventsPerWallSec(const obs::JsonValue& summary) {
  const obs::JsonValue* benches = summary.Get("benches");
  if (benches == nullptr || !benches->is_array()) {
    return -1.0;
  }
  for (const obs::JsonValue& bench : benches->array) {
    const obs::JsonValue* binary = bench.Get("binary");
    if (binary == nullptr || !binary->is_string() ||
        binary->string != "bench_fig4_saturation") {
      continue;
    }
    const obs::JsonValue* report = bench.Get("report");
    const obs::JsonValue* runs = report != nullptr ? report->Get("runs") : nullptr;
    if (runs == nullptr || !runs->is_array()) {
      return -1.0;
    }
    double best = -1.0;
    for (const obs::JsonValue& run : runs->array) {
      const obs::JsonValue* metrics = run.Get("metrics");
      if (metrics != nullptr) {
        best = std::max(best, NumberOr(metrics->Get("sim.events_per_wall_sec"), -1.0));
      }
    }
    return best;
  }
  return -1.0;
}

// The perf-regression guard behind --guard-baseline. Compares the freshly-merged summary
// against the committed baseline and fails on a >20% events-per-wall-second drop.
// Returns 0 on pass, 1 on regression or unusable inputs (a silently-skipped guard would
// defeat its purpose, so a baseline that no longer parses is also a failure).
int RunGuard(const std::string& baseline_path, const obs::JsonValue& current) {
  const std::optional<obs::JsonValue> baseline = obs::ParseJson(ReadFile(baseline_path));
  if (!baseline.has_value() || !baseline->is_object()) {
    std::fprintf(stderr, "bench_all: guard baseline %s missing or unparseable\n",
                 baseline_path.c_str());
    return 1;
  }
  const double base = Fig4EventsPerWallSec(*baseline);
  const double now = Fig4EventsPerWallSec(current);
  if (base <= 0.0) {
    std::fprintf(stderr, "bench_all: guard baseline %s has no fig4 events/wall-sec\n",
                 baseline_path.c_str());
    return 1;
  }
  if (now <= 0.0) {
    std::fprintf(stderr,
                 "bench_all: guard: current run has no fig4 events/wall-sec (did --only "
                 "exclude bench_fig4_saturation?)\n");
    return 1;
  }
  const double ratio = now / base;
  std::printf("bench_all: perf guard: fig4 events/wall-sec %.0f vs baseline %.0f (%.2fx)\n",
              now, base, ratio);
  if (ratio < 0.8) {
    std::fprintf(stderr,
                 "bench_all: PERF REGRESSION: fig4 sim.events_per_wall_sec dropped to "
                 "%.0f%% of the committed baseline (threshold 80%%).\n"
                 "If the slowdown is intentional, regenerate the baseline:\n"
                 "  build/tools/bench_all --smoke --only=fig4_saturation "
                 "--out=BENCH_summary.json\n",
                 ratio * 100.0);
    return 1;
  }
  return 0;
}

// One bench child scheduled by the --jobs pool.
struct BenchTask {
  const char* name = nullptr;
  std::string binary;         // Empty when the binary was not found.
  std::string json_path;      // Per-bench report the child writes.
  std::string log_path;       // Child stdout+stderr when running concurrently.
  std::string critpath_path;  // Non-empty: pass --critpath-out=<path> to the child.
  std::string defense;        // Non-empty: pass --defense=<name> to the child.
  int exit_code = 0;
};

std::string TaskCommand(const BenchTask& task) {
  std::string cmd = task.binary + " --json-out=" + task.json_path;
  if (!task.critpath_path.empty()) {
    cmd += " --critpath-out=" + task.critpath_path;
  }
  if (!task.defense.empty()) {
    cmd += " --defense=" + task.defense;
  }
  return cmd;
}

// Runs `tasks` with up to `jobs` concurrent children. Sequential runs stream child output
// directly; concurrent runs buffer it per-child (the shell redirect) and replay the logs
// in task order afterwards, so interleaving never scrambles the tables a human reads.
void RunTasks(std::vector<BenchTask>& tasks, int jobs) {
  if (jobs <= 1) {
    for (BenchTask& task : tasks) {
      if (task.binary.empty()) {
        continue;
      }
      std::printf("=== bench_all: running %s ===\n", task.binary.c_str());
      std::fflush(stdout);
      const std::string cmd = TaskCommand(task);
      task.exit_code = std::system(cmd.c_str());
    }
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&tasks, &next] {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= tasks.size()) {
        return;
      }
      BenchTask& task = tasks[i];
      if (task.binary.empty()) {
        continue;
      }
      const std::string cmd = TaskCommand(task) + " > " + task.log_path + " 2>&1";
      task.exit_code = std::system(cmd.c_str());
    }
  };
  std::vector<std::thread> pool;
  const size_t width = std::min<size_t>(static_cast<size_t>(jobs), tasks.size());
  pool.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  for (const BenchTask& task : tasks) {
    if (task.binary.empty()) {
      continue;
    }
    std::printf("=== bench_all: %s (exit %d) ===\n", task.binary.c_str(), task.exit_code);
    const std::string log = ReadFile(task.log_path);
    std::fwrite(log.data(), 1, log.size(), stdout);
    std::fflush(stdout);
  }
}

int Main(int argc, char** argv) {
  // Shared flag family: --defense=NAME here is forwarded verbatim to every child bench
  // (bench_defense ignores it — it sweeps all backends by design). The out-path flags are
  // consumed but unused; bench_all's own --out= controls the summary path.
  harness::FlagSet shared("bench_all");
  if (!shared.Parse(&argc, argv)) {
    return 2;
  }
  bool smoke = false;
  double scale = 0.0;
  int jobs = 1;
  std::string bin_dir;
  std::string out_path = "BENCH_summary.json";
  std::string only;
  std::string guard_baseline;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      scale = 0.05;
    } else if (arg.rfind("--scale=", 0) == 0) {
      smoke = true;
      scale = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
      if (jobs < 1) {
        std::fprintf(stderr, "bench_all: --jobs wants a positive integer\n");
        return 2;
      }
    } else if (arg.rfind("--bin-dir=", 0) == 0) {
      bin_dir = arg.substr(10);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--only=", 0) == 0) {
      only = arg.substr(7);
    } else if (arg.rfind("--guard-baseline=", 0) == 0) {
      guard_baseline = arg.substr(17);
    } else {
      std::fprintf(stderr,
                   "usage: bench_all [--smoke] [--scale=F] [--jobs=N] [--bin-dir=DIR] "
                   "[--out=PATH] [--only=SUBSTR] [--guard-baseline=PATH] "
                   "[--defense=NAME]\n");
      return 2;
    }
  }
  if (smoke) {
    char scale_buf[32];
    std::snprintf(scale_buf, sizeof(scale_buf), "%g", scale);
    setenv("ACHILLES_BENCH_SCALE", scale_buf, /*overwrite=*/1);
    std::printf("bench_all: smoke mode, ACHILLES_BENCH_SCALE=%s\n", scale_buf);
  }
  const std::string argv0_dir = Dirname(argv[0]);

  // Build the filtered task list up front: execution (possibly out of order across a
  // thread pool) is separated from merging, which always walks tasks in kBenches order.
  std::vector<BenchTask> tasks;
  for (const char* name : kBenches) {
    if (!only.empty() && std::strstr(name, only.c_str()) == nullptr) {
      continue;
    }
    BenchTask task;
    task.name = name;
    // BenchIo would default to BENCH_<name-without-prefix>.json; pass the path explicitly
    // so the merge step does not depend on that convention.
    task.json_path = std::string("BENCH_") + (name + std::strlen("bench_")) + ".json";
    task.log_path = std::string("BENCH_") + (name + std::strlen("bench_")) + ".log";
    // Table 3 carries the causal profiler always-on; export its profile + flamegraph
    // artifacts alongside the summary (CI uploads BENCH_*.json and *.folded).
    if (std::strcmp(name, "bench_table3_profiling") == 0) {
      task.critpath_path =
          std::string("BENCH_") + (name + std::strlen("bench_")) + ".critpath.json";
    }
    // --defense fans out to every child except bench_defense, whose whole point is the
    // cross-backend sweep (it would reject a pin as a silently-narrowed comparison).
    if (shared.defense_set() && std::strcmp(name, "bench_defense") != 0) {
      task.defense = persist::DefenseKindName(shared.defense());
    }
    task.binary = FindBinary(bin_dir, argv0_dir, name);
    if (task.binary.empty()) {
      std::fprintf(stderr, "bench_all: %s not found (use --bin-dir)\n", name);
    }
    tasks.push_back(std::move(task));
  }
  if (jobs > 1) {
    std::printf("bench_all: running %zu bench(es) with %d concurrent job(s)\n",
                tasks.size(), jobs);
  }
  RunTasks(tasks, jobs);

  obs::JsonWriter w;
  w.BeginObject().Field("generated_by", "bench_all").Field("smoke", smoke);
  if (smoke) {
    w.Field("scale", scale);
  }
  if (shared.defense_set()) {
    w.Field("defense", persist::DefenseKindName(shared.defense()));
  }
  w.Field("jobs", static_cast<int64_t>(jobs));
  WriteGitMetadata(w);
  WriteCostModel(w);
  w.KeyBeginArray("benches");

  int failures = 0;
  int ran = 0;
  // Summary-level causal headline: the profiled run (across all benches) with the most
  // commits — i.e. the statistically strongest critical-path sample of the whole sweep.
  std::optional<obs::JsonValue> critpath_headline;
  std::string critpath_headline_bench;
  double critpath_headline_commits = -1.0;
  for (const BenchTask& task : tasks) {
    w.BeginObject().Field("binary", task.name).Field("json_path", task.json_path);
    if (task.binary.empty()) {
      w.Field("exit_code", static_cast<int64_t>(-1)).Field("error", "binary not found");
      w.EndObject();
      ++failures;
      continue;
    }
    w.Field("exit_code", static_cast<int64_t>(task.exit_code));
    ++ran;
    if (task.exit_code != 0) {
      std::fprintf(stderr, "bench_all: %s exited with %d\n", task.name, task.exit_code);
      w.EndObject();
      ++failures;
      continue;
    }
    const std::string text = ReadFile(task.json_path);
    const std::optional<obs::JsonValue> report = obs::ParseJson(text);
    if (!report.has_value() || !report->is_object()) {
      std::fprintf(stderr, "bench_all: %s produced unparseable JSON at %s\n", task.name,
                   task.json_path.c_str());
      w.Field("error", "unparseable json").EndObject();
      ++failures;
      continue;
    }
    if (const obs::JsonValue* bench_name = report->Get("bench")) {
      if (bench_name->is_string()) {
        w.Field("bench", bench_name->string);
      }
    }
    WriteHeadline(w, *report);
    const obs::JsonValue* runs = report->Get("runs");
    if (runs != nullptr && runs->is_array()) {
      for (const obs::JsonValue& run : runs->array) {
        const obs::JsonValue* stats = run.Get("stats");
        const obs::JsonValue* critpath = stats != nullptr ? stats->Get("critpath") : nullptr;
        if (critpath == nullptr) {
          continue;
        }
        const obs::JsonValue* enabled = critpath->Get("enabled");
        const double commits = NumberOr(critpath->Get("commits"), 0.0);
        if (enabled != nullptr && enabled->boolean && commits > critpath_headline_commits) {
          critpath_headline_commits = commits;
          critpath_headline = *critpath;
          critpath_headline_bench = task.name;
        }
      }
    }
    w.Key("report");
    WriteValue(w, *report);
    w.EndObject();
  }
  w.EndArray();
  if (critpath_headline.has_value()) {
    w.KeyBeginObject("critpath").Field("bench", critpath_headline_bench);
    w.Key("summary");
    WriteValue(w, *critpath_headline);
    w.EndObject();
  }
  w.Field("benches_run", static_cast<int64_t>(ran))
      .Field("benches_failed", static_cast<int64_t>(failures))
      .EndObject();

  FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_all: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("bench_all: wrote %s (%d bench(es), %d failure(s))\n", out_path.c_str(), ran,
              failures);

  if (!guard_baseline.empty()) {
    const std::optional<obs::JsonValue> current = obs::ParseJson(w.str());
    if (!current.has_value() || RunGuard(guard_baseline, *current) != 0) {
      return 1;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) { return achilles::Main(argc, argv); }
