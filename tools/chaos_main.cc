// Chaos swarm CLI (ISSUE 3): drives thousands of short seeded adversarial runs against a
// protocol (or all of them), checks the global oracles, and on failure writes a replayable
// script artifact plus the run's event log, then delta-minimizes the script.
//
//   chaos_main --protocol all --seeds 1000            # the standard swarm sweep
//   chaos_main --protocol Achilles --seeds 250 --shard 2/4
//   chaos_main --app kv --seeds 200                   # + replicated KV app and the
//                                                     # client-observed linearizability
//                                                     # oracle on every seed
//   chaos_main --broken recovery-nonce --seeds 200    # oracle self-test: MUST flag
//   chaos_main --broken stale-read-lease --seeds 1 --explain
//                                                     # plant the lease bug; the
//                                                     # linearizability oracle must name
//                                                     # the stale read
//   chaos_main --replay 1234                          # re-run one seed, print the log,
//                                                     # verify bit-identical re-execution
//   chaos_main --replay-file chaos_seed_1234.script.txt
//   chaos_main --minimize 1234
//   chaos_main --broken recovery-nonce --seeds 1 --explain
//                                                     # flight recorder + forensics: print
//                                                     # the incident report for the caught
//                                                     # violation
//
// --defense NAME runs every seed under a rollback-defense backend (local|rollbaccine|
// healer; src/storage/defense.h). Quorum defenses swap the -R counters for peer-quorum
// freshness, add peer-rollback reboot fates to the sampler, and arm the defense
// version-monotonic oracle. Script artifacts pin the defense they ran under, and replay
// honors the artifact over the command line.
//
// --reboot-weight P sets the sampler's probability that a script carries crash+reboot
// cycles (default 0.65); CI shards raise it to weight schedules toward reboot coverage.
// --ckpt-weight P weights schedules toward checkpoint coverage: snapshot-surface attacks
// at reboot and long-lag rejoins that exercise snapshot state transfer (default 0.35).
//
// --journal enables the deterministic flight recorder (journal dumped next to the other
// failure artifacts; its digest is an independent replay fingerprint). --explain implies
// --journal and additionally runs the forensics analyzer, printing a causal incident
// report and exporting the journal as Perfetto instants.
//
// Every sweep ends with a fault-space coverage report: how many sampled schedules hit
// each fault kind, each reboot storage-fate surface (WAL x sealed x snapshot), and each
// Byzantine mode — the evidence that the sampler actually explored the space the oracles
// are supposed to police. --coverage-out PATH additionally writes it as JSON (CI uploads
// one per chaos shard).
//
// Exit status: honest sweeps fail (1) on any oracle violation; --broken sweeps invert —
// they fail unless a violation IS found (the planted bug must be caught).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/minimize.h"
#include "src/chaos/runner.h"
#include "src/checkpoint/manager.h"
#include "src/harness/byzantine.h"
#include "src/harness/fault_script.h"
#include "src/harness/flags.h"
#include "src/obs/json.h"
#include "src/storage/defense.h"
#include "src/storage/host_storage.h"

namespace achilles::chaos {
namespace {

struct CliArgs {
  ChaosOptions options;
  uint64_t seeds = 1000;
  uint64_t seed_base = 1;
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  long long replay_seed = -1;
  long long minimize_seed = -1;
  std::string replay_file;
  std::string out_dir = ".";
  std::string coverage_out;  // Sweep coverage report JSON (empty = print only).
  bool verbose = false;
  bool explain = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: chaos_main [--protocol NAME|all] [--seeds N] [--seed-base N]\n"
               "                  [--shard I/K] [--app kv] [--defense "
               "local|rollbaccine|healer]\n"
               "                  [--broken none|recovery-nonce|counter-compare|"
               "stale-read-lease|stale-snapshot-accept|quorum-restore-skip|"
               "cert-floor-skip]\n"
               "                  [--replay SEED] [--replay-file PATH] [--minimize SEED]\n"
               "                  [--reboot-weight P] [--ckpt-weight P] [--out-dir DIR]\n"
               "                  [--engine heap|calendar] [--journal] [--explain]\n"
               "                  [--coverage-out PATH] [--verbose]\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "chaos_main: %s needs a value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--protocol") {
      const char* value = next();
      if (value == nullptr) return false;
      if (std::string(value) == "all") {
        args->options.protocol_all = true;
      } else if (ProtocolFromName(value, &args->options.protocol)) {
        args->options.protocol_all = false;
      } else {
        std::fprintf(stderr, "chaos_main: unknown protocol '%s'\n", value);
        return false;
      }
    } else if (flag == "--seeds") {
      const char* value = next();
      if (value == nullptr) return false;
      args->seeds = std::strtoull(value, nullptr, 10);
    } else if (flag == "--seed-base") {
      const char* value = next();
      if (value == nullptr) return false;
      args->seed_base = std::strtoull(value, nullptr, 10);
    } else if (flag == "--shard") {
      const char* value = next();
      if (value == nullptr) return false;
      unsigned index = 0, count = 0;
      if (std::sscanf(value, "%u/%u", &index, &count) != 2 || count == 0 ||
          index >= count) {
        std::fprintf(stderr, "chaos_main: --shard wants I/K with I<K, got '%s'\n", value);
        return false;
      }
      args->shard_index = index;
      args->shard_count = count;
    } else if (flag == "--app") {
      const char* value = next();
      if (value == nullptr) return false;
      if (std::string(value) != "kv") {
        std::fprintf(stderr, "chaos_main: unknown app '%s' (only 'kv')\n", value);
        return false;
      }
      args->options.app_kv = true;
    } else if (flag == "--broken") {
      const char* value = next();
      if (value == nullptr) return false;
      if (!BrokenVariantFromName(value, &args->options.broken)) {
        std::fprintf(stderr, "chaos_main: unknown broken variant '%s'\n", value);
        return false;
      }
    } else if (flag == "--replay") {
      const char* value = next();
      if (value == nullptr) return false;
      args->replay_seed = std::strtoll(value, nullptr, 10);
    } else if (flag == "--replay-file") {
      const char* value = next();
      if (value == nullptr) return false;
      args->replay_file = value;
    } else if (flag == "--minimize") {
      const char* value = next();
      if (value == nullptr) return false;
      args->minimize_seed = std::strtoll(value, nullptr, 10);
    } else if (flag == "--reboot-weight") {
      const char* value = next();
      if (value == nullptr) return false;
      const double weight = std::strtod(value, nullptr);
      if (weight < 0.0 || weight > 1.0) {
        std::fprintf(stderr, "chaos_main: --reboot-weight wants [0,1], got '%s'\n", value);
        return false;
      }
      args->options.reboot_prob = weight;
    } else if (flag == "--ckpt-weight") {
      const char* value = next();
      if (value == nullptr) return false;
      const double weight = std::strtod(value, nullptr);
      if (weight < 0.0 || weight > 1.0) {
        std::fprintf(stderr, "chaos_main: --ckpt-weight wants [0,1], got '%s'\n", value);
        return false;
      }
      args->options.ckpt_prob = weight;
    } else if (flag == "--out-dir") {
      const char* value = next();
      if (value == nullptr) return false;
      args->out_dir = value;
    } else if (flag == "--coverage-out") {
      const char* value = next();
      if (value == nullptr) return false;
      args->coverage_out = value;
    } else if (flag == "--engine") {
      const char* value = next();
      if (value == nullptr) return false;
      if (!SimEngineFromName(value, &args->options.engine)) {
        std::fprintf(stderr, "chaos_main: unknown engine '%s' (heap|calendar)\n", value);
        return false;
      }
    } else if (flag == "--journal") {
      args->options.journal = true;
    } else if (flag == "--explain") {
      args->options.journal = true;
      args->explain = true;
    } else if (flag == "--verbose") {
      args->verbose = true;
    } else {
      std::fprintf(stderr, "chaos_main: unknown flag '%s'\n", flag.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "chaos_main: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

void DumpFailure(const CliArgs& args, const ChaosResult& result) {
  const std::string stem =
      args.out_dir + "/chaos_seed_" + std::to_string(result.seed);
  WriteFile(stem + ".script.txt", result.Artifact().ToText());
  WriteFile(stem + ".log.txt", result.LogText());
  std::printf("  artifacts: %s.script.txt, %s.log.txt\n", stem.c_str(), stem.c_str());
  if (!result.journal_text.empty()) {
    WriteFile(stem + ".journal.txt", result.journal_text);
    std::printf("  journal: %s.journal.txt (digest %s)\n", stem.c_str(),
                result.journal_digest_hex.c_str());
  }
  if (!result.incident_report.empty()) {
    WriteFile(stem + ".incident.txt", result.incident_report);
    std::printf("  incident report: %s.incident.txt\n", stem.c_str());
  }
  if (!result.history_text.empty()) {
    WriteFile(stem + ".history.txt", result.history_text);
    std::printf("  kv history: %s.history.txt (digest %s)\n", stem.c_str(),
                result.history_digest_hex.c_str());
  }
  if (!result.journal_trace_json.empty()) {
    WriteFile(stem + ".journal.trace.json", result.journal_trace_json);
    std::printf("  journal trace: %s.journal.trace.json (open in Perfetto)\n",
                stem.c_str());
  }
}

void MinimizeAndDump(const CliArgs& args, const ChaosResult& failure) {
  std::printf("minimizing seed %llu (%zu events)...\n",
              static_cast<unsigned long long>(failure.seed),
              failure.script.events.size());
  const MinimizeResult minimized = MinimizeScript(args.options, failure.seed,
                                                  failure.protocol, failure.f,
                                                  failure.script);
  std::printf("  %zu -> %zu events, %u -> %u byzantine (%d reruns)\n",
              minimized.original_events, minimized.minimized_events,
              minimized.original_byzantine, minimized.minimized_byzantine,
              minimized.runs);
  if (!minimized.reproduced) {
    std::printf("  (original failure did not reproduce; keeping full script)\n");
    return;
  }
  ScriptArtifact artifact;
  artifact.protocol = ProtocolName(failure.protocol);
  artifact.f = failure.f;
  artifact.seed = failure.seed;
  artifact.defense = persist::DefenseKindName(failure.defense);
  artifact.script = minimized.script;
  const std::string path = args.out_dir + "/chaos_seed_" +
                           std::to_string(failure.seed) + ".min.script.txt";
  WriteFile(path, artifact.ToText());
  std::printf("  minimized violation: %s\n  minimized artifact: %s\n",
              minimized.violation.c_str(), path.c_str());
}

void PrintResult(const ChaosResult& result, bool with_log) {
  // The defense tag only appears on defended runs, so local sweeps print byte-identically
  // to the pre-backend harness.
  std::string defense_tag;
  if (result.defense != persist::DefenseKind::kLocal) {
    defense_tag = std::string(" defense=") + persist::DefenseKindName(result.defense);
  }
  std::printf("seed %llu protocol=%s%s f=%u events=%zu byz=%u -> %s\n",
              static_cast<unsigned long long>(result.seed),
              ProtocolName(result.protocol), defense_tag.c_str(), result.f,
              result.script.events.size(), result.script.ByzantineCount(),
              result.ok ? "ok" : result.violation.c_str());
  std::printf("  final height %llu, log digest %s\n",
              static_cast<unsigned long long>(result.final_height),
              result.log_digest_hex.c_str());
  if (!result.journal_digest_hex.empty()) {
    std::printf("  journal digest %s\n", result.journal_digest_hex.c_str());
  }
  if (with_log) {
    std::fputs(result.LogText().c_str(), stdout);
  }
}

void MaybeExplain(const CliArgs& args, const ChaosResult& result) {
  if (args.explain && !result.incident_report.empty()) {
    std::fputs(result.incident_report.c_str(), stdout);
  }
}

int ReplaySeed(const CliArgs& args, uint64_t seed) {
  ChaosResult first = RunChaosSeed(args.options, seed);
  PrintResult(first, args.verbose);
  // Replay determinism check: a second execution must produce a bit-identical event log.
  ChaosResult second = RunChaosSeed(args.options, seed);
  if (first.log_digest_hex != second.log_digest_hex) {
    std::printf("REPLAY MISMATCH: %s vs %s — the harness is nondeterministic\n",
                first.log_digest_hex.c_str(), second.log_digest_hex.c_str());
    return 1;
  }
  std::printf("replay digest matches (%s)\n", first.log_digest_hex.c_str());
  if (args.options.journal) {
    if (first.journal_digest_hex != second.journal_digest_hex) {
      std::printf("JOURNAL MISMATCH: %s vs %s — the flight recorder is nondeterministic\n",
                  first.journal_digest_hex.c_str(), second.journal_digest_hex.c_str());
      return 1;
    }
    std::printf("journal digest matches (%s)\n", first.journal_digest_hex.c_str());
  }
  if (args.options.app_kv || args.options.broken == BrokenVariant::kStaleReadLease) {
    if (first.history_digest_hex != second.history_digest_hex) {
      std::printf("HISTORY MISMATCH: %s vs %s — the KV app is nondeterministic\n",
                  first.history_digest_hex.c_str(), second.history_digest_hex.c_str());
      return 1;
    }
    std::printf("kv history digest matches (%s)\n", first.history_digest_hex.c_str());
  }
  if (!first.ok) {
    DumpFailure(args, first);
    MaybeExplain(args, first);
    return 1;
  }
  return 0;
}

int ReplayFile(const CliArgs& args) {
  std::ifstream in(args.replay_file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "chaos_main: cannot read %s\n", args.replay_file.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ScriptArtifact artifact;
  if (!ScriptArtifact::FromText(buffer.str(), &artifact)) {
    std::fprintf(stderr, "chaos_main: %s is not a valid chaos script\n",
                 args.replay_file.c_str());
    return 2;
  }
  Protocol protocol;
  if (!ProtocolFromName(artifact.protocol, &protocol)) {
    return 2;
  }
  // The artifact pins the defense backend the failing run used (chaos-script v4 header);
  // replaying under a different one would change RNG draws and charge profiles, so the
  // artifact wins over any --defense on the replay command line.
  ChaosOptions options = args.options;
  if (!persist::DefenseKindFromName(artifact.defense, &options.defense)) {
    std::fprintf(stderr, "chaos_main: %s names unknown defense '%s'\n",
                 args.replay_file.c_str(), artifact.defense.c_str());
    return 2;
  }
  ChaosResult result = RunChaosScript(options, artifact.seed, protocol, artifact.f,
                                      artifact.script);
  PrintResult(result, args.verbose);
  if (!result.ok) {
    DumpFailure(args, result);
  }
  MaybeExplain(args, result);
  return result.ok ? 0 : 1;
}

int MinimizeSeed(const CliArgs& args, uint64_t seed) {
  ChaosResult result = RunChaosSeed(args.options, seed);
  PrintResult(result, false);
  if (result.ok) {
    std::printf("seed %llu passes; nothing to minimize\n",
                static_cast<unsigned long long>(seed));
    return 0;
  }
  DumpFailure(args, result);
  MaybeExplain(args, result);
  MinimizeAndDump(args, result);
  return 1;
}

// Fault-space coverage accumulated over one sweep: how many sampled schedules exercised
// each fault kind, each reboot storage-fate surface, and each Byzantine mode. Ordered maps
// so the report (and its JSON artifact) is deterministic across runs.
struct CoverageReport {
  uint64_t runs = 0;
  uint64_t runs_with_reboot = 0;
  uint64_t runs_with_byzantine = 0;
  std::map<std::string, uint64_t> protocols;
  std::map<std::string, uint64_t> fault_kinds;
  // "wal=<fate> sealed=<fate> snapshot=<fate>" -> reboots carrying that surface combo.
  std::map<std::string, uint64_t> reboot_surfaces;
  std::map<std::string, uint64_t> byzantine_modes;
};

void AccumulateCoverage(CoverageReport* cov, const ChaosResult& result) {
  ++cov->runs;
  ++cov->protocols[ProtocolName(result.protocol)];
  bool rebooted = false;
  for (const FaultEvent& event : result.script.events) {
    ++cov->fault_kinds[FaultKindName(event.kind)];
    if (event.kind == FaultKind::kReboot) {
      rebooted = true;
      const StorageFate fate = DecodeStorageFate(event.arg);
      std::string key = std::string("wal=") + storage::WalFateName(fate.wal) +
                        " sealed=" + SealedFateName(fate.sealed) +
                        " snapshot=" + checkpoint::SnapshotFateName(fate.snapshot) +
                        " defense=" + persist::DefenseFateName(fate.defense);
      ++cov->reboot_surfaces[key];
    }
  }
  bool byzantine = false;
  for (ByzantineMode mode : result.script.byzantine) {
    if (mode != ByzantineMode::kNone) {
      byzantine = true;
      ++cov->byzantine_modes[ByzantineModeName(mode)];
    }
  }
  cov->runs_with_reboot += rebooted ? 1 : 0;
  cov->runs_with_byzantine += byzantine ? 1 : 0;
}

void PrintCoverageSection(const char* title, const std::map<std::string, uint64_t>& cells) {
  std::printf("  %s:\n", title);
  if (cells.empty()) {
    std::printf("    (none)\n");
    return;
  }
  for (const auto& [key, count] : cells) {
    std::printf("    %-52s %llu\n", key.c_str(), static_cast<unsigned long long>(count));
  }
}

void PrintCoverage(const CoverageReport& cov) {
  std::printf("\nfault-space coverage: %llu run(s), %llu with reboots, %llu with "
              "byzantine replicas\n",
              static_cast<unsigned long long>(cov.runs),
              static_cast<unsigned long long>(cov.runs_with_reboot),
              static_cast<unsigned long long>(cov.runs_with_byzantine));
  PrintCoverageSection("protocols", cov.protocols);
  PrintCoverageSection("fault kinds (events)", cov.fault_kinds);
  PrintCoverageSection("reboot storage-fate surfaces", cov.reboot_surfaces);
  PrintCoverageSection("byzantine modes (replicas)", cov.byzantine_modes);
}

void CoverageSectionJson(obs::JsonWriter& w, const char* key,
                         const std::map<std::string, uint64_t>& cells) {
  w.KeyBeginObject(key);
  for (const auto& [cell, count] : cells) {
    w.Field(cell, count);
  }
  w.EndObject();
}

std::string CoverageJson(const CliArgs& args, const CoverageReport& cov) {
  obs::JsonWriter w;
  w.BeginObject()
      .Field("runs", cov.runs)
      .Field("runs_with_reboot", cov.runs_with_reboot)
      .Field("runs_with_byzantine", cov.runs_with_byzantine)
      .Field("shard_index", args.shard_index)
      .Field("shard_count", args.shard_count)
      .Field("seed_base", args.seed_base);
  CoverageSectionJson(w, "protocols", cov.protocols);
  CoverageSectionJson(w, "fault_kinds", cov.fault_kinds);
  CoverageSectionJson(w, "reboot_surfaces", cov.reboot_surfaces);
  CoverageSectionJson(w, "byzantine_modes", cov.byzantine_modes);
  w.EndObject();
  std::string out = w.Take();
  out += '\n';
  return out;
}

int FinishSweep(const CliArgs& args, const CoverageReport& cov, int code) {
  PrintCoverage(cov);
  if (!args.coverage_out.empty() && WriteFile(args.coverage_out, CoverageJson(args, cov))) {
    std::printf("coverage artifact: %s\n", args.coverage_out.c_str());
  }
  return code;
}

int Sweep(const CliArgs& args) {
  const bool expect_violation = args.options.broken != BrokenVariant::kNone;
  uint64_t ran = 0;
  CoverageReport cov;
  std::vector<ChaosResult> failures;
  for (uint64_t i = 0; i < args.seeds; ++i) {
    if (i % args.shard_count != args.shard_index) {
      continue;
    }
    const uint64_t seed = args.seed_base + i;
    ChaosResult result = RunChaosSeed(args.options, seed);
    ++ran;
    AccumulateCoverage(&cov, result);
    if (args.verbose || !result.ok) {
      PrintResult(result, false);
    }
    if (!result.ok) {
      if (expect_violation) {
        std::printf("broken variant '%s' flagged after %llu run(s) (seed %llu)\n",
                    BrokenVariantName(args.options.broken),
                    static_cast<unsigned long long>(ran),
                    static_cast<unsigned long long>(seed));
        MaybeExplain(args, result);
        return FinishSweep(args, cov, 0);
      }
      DumpFailure(args, result);
      MaybeExplain(args, result);
      failures.push_back(std::move(result));
      if (failures.size() >= 3) {
        std::printf("stopping after %zu failures\n", failures.size());
        break;
      }
    } else if (ran % 100 == 0) {
      std::printf("...%llu runs, 0 violations\n", static_cast<unsigned long long>(ran));
      std::fflush(stdout);
    }
  }
  if (expect_violation) {
    std::printf("broken variant '%s' was NOT flagged in %llu run(s) — oracle gap!\n",
                BrokenVariantName(args.options.broken),
                static_cast<unsigned long long>(ran));
    return FinishSweep(args, cov, 1);
  }
  if (failures.empty()) {
    std::printf("swarm clean: %llu run(s), 0 violations\n",
                static_cast<unsigned long long>(ran));
    return FinishSweep(args, cov, 0);
  }
  MinimizeAndDump(args, failures.front());
  std::printf("swarm FAILED: %zu violation(s) in %llu run(s)\n", failures.size(),
              static_cast<unsigned long long>(ran));
  return FinishSweep(args, cov, 1);
}

int Main(int argc, char** argv) {
  // The shared flag family first (src/harness/flags.h): --defense is spelled exactly as on
  // the bench binaries; the out-path flags are accepted for uniformity and unused here.
  harness::FlagSet shared("chaos_main");
  if (!shared.Parse(&argc, argv)) {
    return 2;
  }
  CliArgs args;
  args.options.defense = shared.defense();
  if (!ParseArgs(argc, argv, &args)) {
    return 2;
  }
  if (!args.replay_file.empty()) {
    return ReplayFile(args);
  }
  if (args.replay_seed >= 0) {
    return ReplaySeed(args, static_cast<uint64_t>(args.replay_seed));
  }
  if (args.minimize_seed >= 0) {
    return MinimizeSeed(args, static_cast<uint64_t>(args.minimize_seed));
  }
  return Sweep(args);
}

}  // namespace
}  // namespace achilles::chaos

int main(int argc, char** argv) {
  return achilles::chaos::Main(argc, argv);
}
