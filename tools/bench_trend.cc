// bench_trend: merges historical BENCH_summary.json files (tools/bench_all output) into a
// trend report, and generalizes the CI perf guard from one gauge to a panel.
//
// Usage:
//   bench_trend FILE...                       chronological trend table, one row per
//                                             summary, one column per tracked gauge,
//                                             with deltas against the first file
//   bench_trend --guard --baseline=PATH --current=PATH [--ratio=F]
//                                             multi-gauge regression guard: fails (exit 1)
//                                             when any gauge regresses past the ratio,
//                                             direction-aware (throughput-like gauges must
//                                             stay >= ratio * baseline, latency/footprint
//                                             gauges must stay <= baseline / ratio).
//                                             Default ratio 0.8.
//
// Tracked gauges (all extracted from one summary, no extra bench runs needed):
//   fig4.events_per_wall_sec   simulator hot-path throughput: MAX over fig4's runs of
//                              sim.events_per_wall_sec (the sweep point where the
//                              simulator itself is the bottleneck; see bench_all docs).
//                              Higher is better. The only wall-clock-sensitive gauge.
//   fig4.commit_p50_ms         protocol-level commit latency at fig4's peak-TPS run.
//                              Virtual-time deterministic. Lower is better.
//   log.bytes_retained_max     worst per-node retention footprint across every bench's
//                              peak run (WAL + block store; PR 7's bounded-retention
//                              claim). Virtual-time deterministic. Lower is better.
//   defense.tax_pct_max        worst steady-state throughput tax any quorum rollback-
//                              defense backend charged vs the same-protocol local baseline
//                              (bench_defense publishes the per-run gauge). Virtual-time
//                              deterministic. Lower is better.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/harness/flags.h"
#include "src/obs/json.h"

namespace achilles {
namespace {

std::string ReadFile(const std::string& path) {
  std::string out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return out;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

double NumberOr(const obs::JsonValue* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

const obs::JsonValue* FindBench(const obs::JsonValue& summary, const char* binary) {
  const obs::JsonValue* benches = summary.Get("benches");
  if (benches == nullptr || !benches->is_array()) {
    return nullptr;
  }
  for (const obs::JsonValue& bench : benches->array) {
    const obs::JsonValue* name = bench.Get("binary");
    if (name != nullptr && name->is_string() && name->string == binary) {
      return &bench;
    }
  }
  return nullptr;
}

double Fig4EventsPerWallSec(const obs::JsonValue& summary) {
  const obs::JsonValue* bench = FindBench(summary, "bench_fig4_saturation");
  const obs::JsonValue* report = bench != nullptr ? bench->Get("report") : nullptr;
  const obs::JsonValue* runs = report != nullptr ? report->Get("runs") : nullptr;
  if (runs == nullptr || !runs->is_array()) {
    return -1.0;
  }
  double best = -1.0;
  for (const obs::JsonValue& run : runs->array) {
    const obs::JsonValue* metrics = run.Get("metrics");
    if (metrics != nullptr) {
      best = std::max(best, NumberOr(metrics->Get("sim.events_per_wall_sec"), -1.0));
    }
  }
  return best;
}

double Fig4CommitP50Ms(const obs::JsonValue& summary) {
  const obs::JsonValue* bench = FindBench(summary, "bench_fig4_saturation");
  const obs::JsonValue* peak = bench != nullptr ? bench->Get("peak") : nullptr;
  return peak != nullptr ? NumberOr(peak->Get("commit_p50_ms"), -1.0) : -1.0;
}

double MaxBytesRetained(const obs::JsonValue& summary) {
  const obs::JsonValue* benches = summary.Get("benches");
  if (benches == nullptr || !benches->is_array()) {
    return -1.0;
  }
  double best = -1.0;
  for (const obs::JsonValue& bench : benches->array) {
    const obs::JsonValue* peak = bench.Get("peak");
    const obs::JsonValue* footprint = peak != nullptr ? peak->Get("footprint") : nullptr;
    if (footprint == nullptr || !footprint->is_object()) {
      continue;
    }
    for (const auto& [key, value] : footprint->object) {
      if (key.rfind("log.bytes_retained", 0) == 0 && value.is_number()) {
        best = std::max(best, value.number);
      }
    }
  }
  return best;
}

// Worst steady-state throughput tax any quorum rollback-defense backend charged, across
// every run of every bench in the summary (bench_defense publishes the gauge per defended
// run; see bench/bench_defense.cc). Virtual-time deterministic. Lower is better — a jump
// means a defense backend's critical-path cost grew relative to the local baseline.
double DefenseTaxPctMax(const obs::JsonValue& summary) {
  const obs::JsonValue* benches = summary.Get("benches");
  if (benches == nullptr || !benches->is_array()) {
    return -1.0;
  }
  double best = -1.0;
  for (const obs::JsonValue& bench : benches->array) {
    const obs::JsonValue* report = bench.Get("report");
    const obs::JsonValue* runs = report != nullptr ? report->Get("runs") : nullptr;
    if (runs == nullptr || !runs->is_array()) {
      continue;
    }
    for (const obs::JsonValue& run : runs->array) {
      const obs::JsonValue* metrics = run.Get("metrics");
      const obs::JsonValue* tax = metrics != nullptr ? metrics->Get("defense.tax_pct") : nullptr;
      if (tax != nullptr && tax->is_number()) {
        // A defended run can beat its local baseline (the quorum wait replaces the counter
        // device); clamp at 0 so the absent-gauge sentinel (-1) stays unambiguous.
        best = std::max(best, std::max(0.0, tax->number));
      }
    }
  }
  return best;
}

struct Gauge {
  const char* name;
  bool higher_is_better;
  double (*extract)(const obs::JsonValue&);
};

constexpr Gauge kGauges[] = {
    {"fig4.events_per_wall_sec", true, Fig4EventsPerWallSec},
    {"fig4.commit_p50_ms", false, Fig4CommitP50Ms},
    {"log.bytes_retained_max", false, MaxBytesRetained},
    {"defense.tax_pct_max", false, DefenseTaxPctMax},
};
constexpr size_t kNumGauges = sizeof(kGauges) / sizeof(kGauges[0]);

std::string ShortCommit(const obs::JsonValue& summary) {
  const obs::JsonValue* git = summary.Get("git");
  const obs::JsonValue* commit = git != nullptr ? git->Get("commit") : nullptr;
  if (commit == nullptr || !commit->is_string()) {
    return "unknown";
  }
  std::string out = commit->string.substr(0, 9);
  const obs::JsonValue* dirty = git != nullptr ? git->Get("dirty") : nullptr;
  if (dirty != nullptr && dirty->boolean) {
    out += '*';
  }
  return out;
}

std::string FmtValue(double v) {
  if (v < 0.0) {
    return "-";
  }
  char buf[32];
  if (v >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

int Trend(const std::vector<std::string>& paths) {
  struct Row {
    std::string file;
    std::string commit;
    double values[kNumGauges];
  };
  std::vector<Row> rows;
  for (const std::string& path : paths) {
    const std::optional<obs::JsonValue> summary = obs::ParseJson(ReadFile(path));
    if (!summary.has_value() || !summary->is_object()) {
      std::fprintf(stderr, "bench_trend: %s missing or unparseable\n", path.c_str());
      return 1;
    }
    Row row;
    const size_t slash = path.find_last_of('/');
    row.file = slash == std::string::npos ? path : path.substr(slash + 1);
    row.commit = ShortCommit(*summary);
    for (size_t g = 0; g < kNumGauges; ++g) {
      row.values[g] = kGauges[g].extract(*summary);
    }
    rows.push_back(std::move(row));
  }
  std::printf("%-28s %-10s", "summary", "commit");
  for (const Gauge& gauge : kGauges) {
    std::printf(" %24s", gauge.name);
  }
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-28s %-10s", row.file.c_str(), row.commit.c_str());
    for (size_t g = 0; g < kNumGauges; ++g) {
      std::string cell = FmtValue(row.values[g]);
      // Delta vs the first (oldest) summary, signed so regressions read directly.
      if (&row != &rows.front() && row.values[g] >= 0.0 && rows.front().values[g] > 0.0) {
        char delta[32];
        std::snprintf(delta, sizeof(delta), " (%+.1f%%)",
                      100.0 * (row.values[g] / rows.front().values[g] - 1.0));
        cell += delta;
      }
      std::printf(" %24s", cell.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int Guard(const std::string& baseline_path, const std::string& current_path, double ratio) {
  const std::optional<obs::JsonValue> baseline = obs::ParseJson(ReadFile(baseline_path));
  const std::optional<obs::JsonValue> current = obs::ParseJson(ReadFile(current_path));
  if (!baseline.has_value() || !baseline->is_object()) {
    std::fprintf(stderr, "bench_trend: baseline %s missing or unparseable\n",
                 baseline_path.c_str());
    return 1;
  }
  if (!current.has_value() || !current->is_object()) {
    std::fprintf(stderr, "bench_trend: current %s missing or unparseable\n",
                 current_path.c_str());
    return 1;
  }
  int failures = 0;
  for (const Gauge& gauge : kGauges) {
    const double base = gauge.extract(*baseline);
    const double now = gauge.extract(*current);
    if (base <= 0.0) {
      // Not in the baseline yet (older summary format / bench skipped): nothing to hold
      // the current run to. Noted, not fatal — regenerating the baseline picks it up.
      std::printf("bench_trend: guard %-26s skipped (no baseline value)\n", gauge.name);
      continue;
    }
    if (now < 0.0) {
      // Present in the baseline but gone from the current run: that is a regression in
      // coverage, and silently skipping would defeat the guard.
      std::fprintf(stderr, "bench_trend: guard %-26s FAIL (gauge missing from current)\n",
                   gauge.name);
      ++failures;
      continue;
    }
    // Direction-aware bound: throughput-like gauges must not drop below ratio * base;
    // latency/footprint-like gauges must not grow past base / ratio.
    const bool ok = gauge.higher_is_better ? now >= ratio * base : now <= base / ratio;
    std::printf("bench_trend: guard %-26s %s vs %s (%.2fx, %s)\n", gauge.name,
                FmtValue(now).c_str(), FmtValue(base).c_str(), now / base,
                ok ? "ok" : "FAIL");
    if (!ok) {
      std::fprintf(stderr,
                   "bench_trend: REGRESSION: %s is %.2fx the committed baseline "
                   "(allowed: %s %.2fx).\n"
                   "If intentional, regenerate the baseline summary (see ci.yml "
                   "bench-smoke).\n",
                   gauge.name, now / base, gauge.higher_is_better ? ">=" : "<=",
                   gauge.higher_is_better ? ratio : 1.0 / ratio);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  // Accept the shared flag family silently (CI invokes every tool with a uniform tail);
  // bench_trend reads summaries, so the values are unused.
  harness::FlagSet shared("bench_trend");
  if (!shared.Parse(&argc, argv)) {
    return 2;
  }
  bool guard = false;
  double ratio = 0.8;
  std::string baseline;
  std::string current;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--guard") {
      guard = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline = arg.substr(11);
    } else if (arg.rfind("--current=", 0) == 0) {
      current = arg.substr(10);
    } else if (arg.rfind("--ratio=", 0) == 0) {
      ratio = std::atof(arg.c_str() + 8);
      if (ratio <= 0.0 || ratio > 1.0) {
        std::fprintf(stderr, "bench_trend: --ratio wants a fraction in (0, 1]\n");
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: bench_trend FILE... | bench_trend --guard --baseline=PATH "
                   "--current=PATH [--ratio=F]\n");
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (guard) {
    if (baseline.empty() || current.empty()) {
      std::fprintf(stderr, "bench_trend: --guard needs --baseline= and --current=\n");
      return 2;
    }
    return Guard(baseline, current, ratio);
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: bench_trend FILE... | bench_trend --guard --baseline=PATH "
                 "--current=PATH [--ratio=F]\n");
    return 2;
  }
  return Trend(files);
}

}  // namespace
}  // namespace achilles

int main(int argc, char** argv) { return achilles::Main(argc, argv); }
