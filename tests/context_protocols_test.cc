// Tests for the historical-context protocols: MinBFT (USIG) and HotStuff, plus the
// lineage ordering HotStuff -> Damysus -> Achilles that motivates the paper.
#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/minbft/usig.h"

namespace achilles {
namespace {

ClusterConfig Config(Protocol protocol, uint32_t f = 1, uint64_t seed = 61) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = f;
  config.batch_size = 100;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(200);
  config.seed = seed;
  return config;
}

// --- USIG unit tests ---

struct UsigFixture {
  UsigFixture()
      : sim(1), host(&sim, 0), suite(SignatureScheme::kFastHmac, 3, 9) {
    TeeConfig tee;
    tee.counter = CounterSpec::Custom(Ms(20), Ms(5));
    platform = std::make_unique<NodePlatform>(&host, &suite, CostModel::Default(), tee, 4);
    enclave = std::make_unique<EnclaveRuntime>(platform.get());
  }
  Simulation sim;
  Host host;
  CryptoSuite suite;
  std::unique_ptr<NodePlatform> platform;
  std::unique_ptr<EnclaveRuntime> enclave;
};

TEST(UsigTest, CountersAreSequentialAndSigned) {
  UsigFixture f;
  Usig usig(f.enclave.get());
  const Hash256 d1 = Sha256Digest(AsBytes("m1"));
  const Hash256 d2 = Sha256Digest(AsBytes("m2"));
  const UniqueIdentifier u1 = usig.CreateUi(d1);
  const UniqueIdentifier u2 = usig.CreateUi(d2);
  EXPECT_EQ(u1.counter, 1u);
  EXPECT_EQ(u2.counter, 2u);
  EXPECT_TRUE(usig.VerifyUi(u1, d1));
  EXPECT_FALSE(usig.VerifyUi(u1, d2));  // Digest mismatch.
}

TEST(UsigTest, EveryUiWritesThePersistentCounter) {
  UsigFixture f;
  Usig usig(f.enclave.get());
  usig.CreateUi(Sha256Digest(AsBytes("a")));
  usig.CreateUi(Sha256Digest(AsBytes("b")));
  EXPECT_EQ(f.platform->counter().writes(), 2u);
  EXPECT_EQ(f.host.cpu_time_used() >= Ms(40), true);  // Two 20 ms stalls.
}

TEST(UsigTest, VerifierRejectsReplayAndRegression) {
  UsigFixture f;
  Usig usig(f.enclave.get());
  UsigVerifier verifier(3);
  const UniqueIdentifier u1 = usig.CreateUi(Sha256Digest(AsBytes("a")));
  const UniqueIdentifier u2 = usig.CreateUi(Sha256Digest(AsBytes("b")));
  EXPECT_TRUE(verifier.AcceptNext(0, u1));
  EXPECT_FALSE(verifier.AcceptNext(0, u1));  // Replay.
  EXPECT_TRUE(verifier.AcceptNext(0, u2));
  // Monotonic mode: skipping is fine, going backwards is not.
  UsigVerifier mono(3);
  EXPECT_TRUE(mono.AcceptMonotonic(1, u2));
  EXPECT_FALSE(mono.AcceptMonotonic(1, u1));
}

TEST(UsigTest, GaplessModeRejectsSkips) {
  UsigFixture f;
  Usig usig(f.enclave.get());
  UsigVerifier verifier(3);
  usig.CreateUi(Sha256Digest(AsBytes("skipped")));
  const UniqueIdentifier u2 = usig.CreateUi(Sha256Digest(AsBytes("b")));
  EXPECT_FALSE(verifier.AcceptNext(0, u2));  // Counter 2 before 1.
}

// --- MinBFT / HotStuff cluster behaviour ---

TEST(MinBftTest, CommitsAndStaysSafe) {
  Cluster cluster(Config(Protocol::kMinBft));
  cluster.Start();
  cluster.sim().RunFor(Sec(3));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 5u);
}

TEST(MinBftTest, EveryNodePaysCounterWritesPerBlock) {
  Cluster cluster(Config(Protocol::kMinBft));
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  const uint64_t blocks = cluster.tracker().total_committed_blocks();
  ASSERT_GT(blocks, 2u);
  // Leader: 1 PREPARE UI + 1 COMMIT UI; backups: 1 COMMIT UI each => n+1 writes per block.
  const double writes_per_block =
      static_cast<double>(cluster.TotalCounterWrites()) / static_cast<double>(blocks);
  EXPECT_NEAR(writes_per_block, static_cast<double>(cluster.num_replicas() + 1), 1.0);
}

TEST(MinBftTest, SurvivesLeaderCrash) {
  Cluster cluster(Config(Protocol::kMinBft, 1, 62));
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  const Height before = cluster.tracker().max_committed_height();
  ASSERT_GT(before, 0u);
  cluster.CrashReplica(0);
  cluster.sim().RunFor(Sec(4));
  EXPECT_GT(cluster.tracker().max_committed_height(), before);
  EXPECT_FALSE(cluster.tracker().safety_violated());
}

TEST(HotStuffTest, CommitsAndStaysSafe) {
  Cluster cluster(Config(Protocol::kHotStuff));
  cluster.Start();
  cluster.sim().RunFor(Sec(3));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 5u);
}

TEST(HotStuffTest, UsesThreeFPlusOneAndNoCounters) {
  Cluster cluster(Config(Protocol::kHotStuff, 2));
  EXPECT_EQ(cluster.num_replicas(), 7u);
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  EXPECT_EQ(cluster.TotalCounterWrites(), 0u);
}

TEST(HotStuffTest, SurvivesCrashedMinority) {
  Cluster cluster(Config(Protocol::kHotStuff, 1, 63));  // n = 4, tolerate 1.
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  const Height before = cluster.tracker().max_committed_height();
  cluster.CrashReplica(3);
  cluster.sim().RunFor(Sec(4));
  EXPECT_GT(cluster.tracker().max_committed_height(), before);
  EXPECT_FALSE(cluster.tracker().safety_violated());
}

TEST(LineageTest, LatencyOrderingHotStuffDamysusAchilles) {
  // The lineage claim: each TEE refinement removes communication steps. Measured on the
  // zero-cost exact-step network (10 ms hops), commit latency must strictly improve.
  auto commit_steps = [](Protocol protocol) {
    ClusterConfig config;
    config.protocol = protocol;
    config.f = 1;
    config.batch_size = 50;
    config.payload_size = 16;
    config.net.one_way_base = Ms(10);
    config.net.one_way_jitter = 0;
    config.net.bandwidth_bps = 1e15;
    config.net.loopback_delay = 0;
    config.costs = CostModel::Zero();
    config.counter = CounterSpec::Custom(0, 0);
    config.client_rate_tps = 300;
    config.base_timeout = Sec(1);
    config.seed = 64;
    Cluster cluster(config);
    const RunStats stats = cluster.RunMeasured(Sec(2), Sec(4));
    return stats.commit_latency_ms / 10.0;
  };
  const double hotstuff = commit_steps(Protocol::kHotStuff);
  const double damysus = commit_steps(Protocol::kDamysus);
  const double achilles = commit_steps(Protocol::kAchilles);
  EXPECT_NEAR(hotstuff, 6.0, 0.3);  // 8 e2e steps = 6 commit steps + submit + reply.
  EXPECT_NEAR(damysus, 4.0, 0.3);   // 6 e2e steps.
  EXPECT_NEAR(achilles, 2.0, 0.3);  // 4 e2e steps.
}

}  // namespace
}  // namespace achilles
