#include <gtest/gtest.h>

#include <memory>

#include "src/damysus/checker.h"
#include "src/tee/enclave.h"
#include "src/tee/monotonic_counter.h"
#include "src/tee/platform.h"
#include "src/tee/sealed_storage.h"

namespace achilles {
namespace {

struct TeeFixture {
  TeeFixture(bool in_tee = true, CounterSpec counter = CounterSpec::None())
      : sim(11), host(&sim, 0), suite(SignatureScheme::kFastHmac, 4, 99) {
    TeeConfig tee;
    tee.components_in_tee = in_tee;
    tee.counter = counter;
    platform = std::make_unique<NodePlatform>(&host, &suite, CostModel::Default(), tee, 7);
  }
  Simulation sim;
  Host host;
  CryptoSuite suite;
  std::unique_ptr<NodePlatform> platform;
};

// --- SealedStorage (raw, no crypto) ---

TEST(SealedStorageTest, HonestModeServesLatest) {
  SealedStorage s;
  s.Put("k", Bytes{1});
  s.Put("k", Bytes{2});
  s.Put("k", Bytes{3});
  EXPECT_EQ(s.Get("k").value(), Bytes{3});
  EXPECT_EQ(s.NumVersions("k"), 3u);
}

TEST(SealedStorageTest, OldestModeRollsBack) {
  SealedStorage s;
  s.Put("k", Bytes{1});
  s.Put("k", Bytes{2});
  s.SetRollbackMode(RollbackMode::kOldest);
  EXPECT_EQ(s.Get("k").value(), Bytes{1});
}

TEST(SealedStorageTest, PinnedModeServesChosenVersion) {
  SealedStorage s;
  s.Put("k", Bytes{1});
  s.Put("k", Bytes{2});
  s.Put("k", Bytes{3});
  s.SetRollbackMode(RollbackMode::kPinned);
  s.PinServedVersion("k", 1);
  EXPECT_EQ(s.Get("k").value(), Bytes{2});
}

TEST(SealedStorageTest, EraseModeHidesEverything) {
  SealedStorage s;
  s.Put("k", Bytes{1});
  s.SetRollbackMode(RollbackMode::kErase);
  EXPECT_FALSE(s.Get("k").has_value());
}

TEST(SealedStorageTest, MissingKeyIsEmpty) {
  SealedStorage s;
  EXPECT_FALSE(s.Get("nope").has_value());
  EXPECT_EQ(s.NumVersions("nope"), 0u);
}

// --- MonotonicCounter ---

TEST(MonotonicCounterTest, IncrementChargesWriteLatency) {
  TeeFixture f(true, CounterSpec::Custom(Ms(20), Ms(5)));
  MonotonicCounter& counter = f.platform->counter();
  EXPECT_EQ(counter.IncrementBlocking(), 1u);
  EXPECT_EQ(counter.IncrementBlocking(), 2u);
  EXPECT_EQ(f.host.cpu_time_used(), Ms(40));
  EXPECT_EQ(counter.writes(), 2u);
}

TEST(MonotonicCounterTest, ReadChargesReadLatency) {
  TeeFixture f(true, CounterSpec::Custom(Ms(20), Ms(5)));
  MonotonicCounter& counter = f.platform->counter();
  counter.IncrementBlocking();
  EXPECT_EQ(counter.ReadBlocking(), 1u);
  EXPECT_EQ(f.host.cpu_time_used(), Ms(25));
}

TEST(MonotonicCounterTest, DisabledCounterIsFree) {
  TeeFixture f(true, CounterSpec::None());
  f.platform->counter().IncrementBlocking();
  EXPECT_EQ(f.host.cpu_time_used(), 0);
}

TEST(MonotonicCounterTest, SpecPresetsMatchTable4) {
  EXPECT_EQ(CounterSpec::For(CounterKind::kTpm).write_latency, Ms(97));
  EXPECT_EQ(CounterSpec::For(CounterKind::kTpm).read_latency, Ms(35));
  EXPECT_EQ(CounterSpec::For(CounterKind::kSgx).write_latency, Ms(160));
  EXPECT_EQ(CounterSpec::For(CounterKind::kNarratorLan).write_latency, FromMs(9.0));
  EXPECT_EQ(CounterSpec::For(CounterKind::kNarratorWan).write_latency, Ms(45));
  EXPECT_FALSE(CounterSpec::None().enabled());
}

// --- EnclaveRuntime: sealing ---

TEST(EnclaveTest, SealUnsealRoundTrip) {
  TeeFixture f;
  EnclaveRuntime enclave(f.platform.get());
  const Bytes state = {9, 8, 7, 6, 5};
  enclave.sealed_store().Put("checker", ByteView(state.data(), state.size()));
  EXPECT_EQ(enclave.sealed_store().Get("checker").value(), state);
}

TEST(EnclaveTest, SealedBlobIsEncrypted) {
  TeeFixture f;
  EnclaveRuntime enclave(f.platform.get());
  const Bytes state = {'s', 'e', 'c', 'r', 'e', 't'};
  enclave.sealed_store().Put("slot", ByteView(state.data(), state.size()));
  const Bytes blob = f.platform->storage().Get("slot").value();
  // The plaintext must not appear in the stored blob.
  const std::string blob_str(blob.begin(), blob.end());
  EXPECT_EQ(blob_str.find("secret"), std::string::npos);
}

TEST(EnclaveTest, TamperedBlobRejected) {
  TeeFixture f;
  EnclaveRuntime enclave(f.platform.get());
  const Bytes state = {1, 2, 3};
  enclave.sealed_store().Put("slot", ByteView(state.data(), state.size()));
  Bytes blob = f.platform->storage().Get("slot").value();
  blob[blob.size() / 2] ^= 0xff;
  f.platform->storage().Put("slot", blob);  // Adversary writes a forged version.
  EXPECT_FALSE(enclave.sealed_store().Get("slot").has_value());
}

TEST(EnclaveTest, RollbackServesStaleButAuthenticState) {
  // The essence of the rollback attack: the old blob still unseals fine.
  TeeFixture f;
  EnclaveRuntime enclave(f.platform.get());
  const Bytes v1 = {1};
  const Bytes v2 = {2};
  enclave.sealed_store().Put("slot", ByteView(v1.data(), v1.size()));
  enclave.sealed_store().Put("slot", ByteView(v2.data(), v2.size()));
  f.platform->storage().SetRollbackMode(RollbackMode::kOldest);
  EXPECT_EQ(enclave.sealed_store().Get("slot").value(), v1);  // Stale state accepted!
}

TEST(EnclaveTest, BlobBoundToSlotName) {
  TeeFixture f;
  EnclaveRuntime enclave(f.platform.get());
  const Bytes state = {1, 2, 3};
  enclave.sealed_store().Put("slot-a", ByteView(state.data(), state.size()));
  // Adversary copies slot-a's blob into slot-b.
  f.platform->storage().Put("slot-b", f.platform->storage().Get("slot-a").value());
  EXPECT_FALSE(enclave.sealed_store().Get("slot-b").has_value());
}

TEST(EnclaveTest, UnsealSurvivesEnclaveRestart) {
  // A fresh enclave incarnation on the same platform derives the same sealing key.
  TeeFixture f;
  {
    EnclaveRuntime first(f.platform.get());
    const Bytes state = {4, 2};
    first.sealed_store().Put("slot", ByteView(state.data(), state.size()));
  }
  EnclaveRuntime second(f.platform.get());
  EXPECT_EQ(second.sealed_store().Get("slot").value(), (Bytes{4, 2}));
}

// --- EnclaveRuntime: cost accounting ---

TEST(EnclaveTest, EcallChargedOnlyInsideTee) {
  TeeFixture inside(true);
  EnclaveRuntime e1(inside.platform.get());
  e1.ChargeEcall();
  EXPECT_EQ(inside.host.cpu_time_used(), CostModel::Default().ecall_round_trip);
  EXPECT_EQ(e1.ecalls(), 1u);

  TeeFixture outside(false);
  EnclaveRuntime e2(outside.platform.get());
  e2.ChargeEcall();
  EXPECT_EQ(outside.host.cpu_time_used(), 0);
  EXPECT_EQ(e2.ecalls(), 0u);
}

TEST(EnclaveTest, InEnclaveCryptoCostsMore) {
  TeeFixture inside(true);
  EnclaveRuntime e1(inside.platform.get());
  e1.ChargeSign();
  const SimDuration in_cost = inside.host.cpu_time_used();

  TeeFixture outside(false);
  EnclaveRuntime e2(outside.platform.get());
  e2.ChargeSign();
  const SimDuration out_cost = outside.host.cpu_time_used();
  EXPECT_GT(in_cost, out_cost);
  EXPECT_EQ(out_cost, CostModel::Default().sign);
}

TEST(EnclaveTest, SignVerifyUsesNodeKey) {
  TeeFixture f;
  EnclaveRuntime enclave(f.platform.get());
  const Signature sig = enclave.Sign(AsBytes("digest"));
  EXPECT_EQ(sig.signer, 0u);
  EXPECT_TRUE(enclave.Verify(sig, AsBytes("digest")));
  EXPECT_FALSE(enclave.Verify(sig, AsBytes("other")));
}

TEST(EnclaveTest, FreshNoncesAreUnique) {
  TeeFixture f;
  EnclaveRuntime enclave(f.platform.get());
  const uint64_t a = enclave.FreshNonce();
  const uint64_t b = enclave.FreshNonce();
  EXPECT_NE(a, b);
}

// --- Rollback attack: every historical sealed blob, replayed at reboot ---

// Drives a counter-bound Damysus-R checker through several persisted mutations, then
// reboots it against *each* historical sealed blob in turn (kPinned serves version i).
// Every stale blob must be refused; only the latest one restores.
TEST(RollbackSweepTest, DamysusRRejectsEveryHistoricalBlob) {
  TeeFixture f(true, CounterSpec::Custom(Ms(1), Ms(1)));
  auto enclave = std::make_unique<EnclaveRuntime>(f.platform.get());
  {
    DamysusChecker checker(enclave.get(), 4, 1);
    for (View v = 1; v <= 4; ++v) {
      ASSERT_TRUE(checker.TdNewView(v).has_value());  // One sealed version per mutation.
    }
  }
  SealedStorage& storage = f.platform->storage();
  const size_t versions = storage.NumVersions("damysus-checker");
  ASSERT_GE(versions, 5u);  // Genesis seal + 4 NEW-VIEW mutations.
  storage.SetRollbackMode(RollbackMode::kPinned);
  for (size_t i = 0; i + 1 < versions; ++i) {
    storage.PinServedVersion("damysus-checker", i);
    enclave = std::make_unique<EnclaveRuntime>(f.platform.get());
    EXPECT_EQ(DamysusChecker::Restore(enclave.get(), 4, 1), nullptr)
        << "stale sealed blob #" << i << " was accepted";
  }
  // The genuine latest blob still restores (the counter matches its bound version).
  storage.PinServedVersion("damysus-checker", versions - 1);
  enclave = std::make_unique<EnclaveRuntime>(f.platform.get());
  auto restored = DamysusChecker::Restore(enclave.get(), 4, 1);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->vi(), 4u);
}

// The deliberately-broken variant (counter compare skipped) accepts the same stale blobs
// silently — the exact gap the chaos harness's counter-lockstep oracle exists to catch.
TEST(RollbackSweepTest, BrokenCounterCompareAcceptsStaleBlob) {
  TeeFixture f(true, CounterSpec::Custom(Ms(1), Ms(1)));
  auto enclave = std::make_unique<EnclaveRuntime>(f.platform.get());
  {
    DamysusChecker checker(enclave.get(), 4, 1);
    for (View v = 1; v <= 3; ++v) {
      ASSERT_TRUE(checker.TdNewView(v).has_value());
    }
  }
  SealedStorage& storage = f.platform->storage();
  storage.SetRollbackMode(RollbackMode::kOldest);
  enclave = std::make_unique<EnclaveRuntime>(f.platform.get());
  ASSERT_EQ(DamysusChecker::Restore(enclave.get(), 4, 1), nullptr);  // -R refuses...
  auto broken = DamysusChecker::Restore(enclave.get(), 4, 1,
                                        /*break_counter_compare=*/true);
  ASSERT_NE(broken, nullptr);  // ...the broken build runs on rolled-back state.
  const uint64_t counter = f.platform->counter().ReadBlocking();
  EXPECT_LT(broken->version(), counter);  // Divergence the lockstep oracle flags.
}

}  // namespace
}  // namespace achilles
