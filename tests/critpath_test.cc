// Causal critical-path profiler tests (ISSUE 9): hand-built-DAG extraction and what-if
// frontier math, slack accounting, truncation bookkeeping, cluster-level reconciliation
// with the PR 1 breakdown identity, zero-perturbation and digest determinism across
// engines, and the what-if engine validated against actual re-runs with modified costs.
#include <gtest/gtest.h>

#include <string>

#include "src/harness/cluster.h"
#include "src/obs/breakdown.h"
#include "src/obs/critpath.h"
#include "src/obs/json.h"

namespace achilles {
namespace {

using obs::Component;
using obs::CritPathCollector;
using obs::CritScales;
using obs::CritScalesOnes;
using obs::CritSummary;

size_t Idx(Component c) { return static_cast<size_t>(c); }

double SumCritMs(const CritSummary& s) {
  double total = 0;
  for (size_t i = 0; i < obs::kNumComponents; ++i) {
    total += s.crit_ms[i];
  }
  return total;
}

// --- Hand-built DAG: extraction ---------------------------------------------------------

// origin(n0) --trigger--> transit(n0->n1) --trigger--> handler(n1) --confirm.
// Every segment is hand-placed, so the per-component sums are checked exactly.
TEST(CritPathTest, HandBuiltChainExtraction) {
  CritPathCollector cp;
  cp.set_enabled(true);
  // Proposal at t=1000; 2000 ns of block building booked at the origin.
  const uint32_t o = cp.BeginOrigin(0, 1000, 3000);
  ASSERT_NE(o, 0u);
  cp.AddService(o, Component::kCrypto, 500);  // Frontier 3500.
  // Wire: departs at the frontier, serializes 1000 ns, propagates 2000 ns.
  const uint32_t t = cp.BeginTransit(0, 1, "vote", o, 3500, 3500, 4500, 6500,
                                     /*nic=*/0, /*holds_nic=*/true);
  ASSERT_NE(t, 0u);
  // Receiver dequeues immediately at arrival: 300 ns CPU + 700 ns crypto, confirm 7500.
  const uint32_t h = cp.BeginHandler(1, "vote", t, 6500, 6500);
  ASSERT_NE(h, 0u);
  cp.AddService(h, Component::kCpu, 300);
  cp.AddService(h, Component::kCrypto, 700);
  cp.OnConfirm(h, 1000, 1, 7500, 0, 10);

  const CritSummary s = cp.Summarize();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.truncated, 0u);
  EXPECT_EQ(s.unanchored, 0u);
  const double ns = 1e-6;  // ns -> ms.
  EXPECT_DOUBLE_EQ(s.mean_ms, 6500 * ns);
  EXPECT_DOUBLE_EQ(s.crit_ms[Idx(Component::kCpu)], 2300 * ns);  // 2000 origin + 300.
  EXPECT_DOUBLE_EQ(s.crit_ms[Idx(Component::kCrypto)], 1200 * ns);
  EXPECT_DOUBLE_EQ(s.crit_ms[Idx(Component::kNicSerialization)], 1000 * ns);
  EXPECT_DOUBLE_EQ(s.crit_ms[Idx(Component::kNetPropagation)], 2000 * ns);
  EXPECT_DOUBLE_EQ(SumCritMs(s), s.mean_ms);  // Reconciliation identity, exactly.
  EXPECT_DOUBLE_EQ(s.wait_ms, 0.0);
  // Scale-1 evaluation reproduces the recorded confirm exactly.
  EXPECT_DOUBLE_EQ(s.baseline_ms, s.mean_ms);
  // Zero net: the transit vanishes, leaving 2000 + 500 + 300 + 700 = 3500 ns.
  EXPECT_DOUBLE_EQ(s.zero_net_ms, 3500 * ns);
  // Zero crypto: 2000 (origin) + 3000 (wire) + 300 (cpu) = 5300 ns.
  EXPECT_DOUBLE_EQ(s.zero_crypto_ms, 5300 * ns);
  // Doubling crypto stretches both crypto segments: 6500 + 1200.
  CritScales scales = CritScalesOnes();
  scales[Idx(Component::kCrypto)] = 2.0;
  EXPECT_DOUBLE_EQ(cp.WhatIfMeanMs(scales), 7700 * ns);

  // Blame profile covers every on-path segment, hottest first.
  const auto blame = cp.BlameProfile();
  ASSERT_FALSE(blame.empty());
  int64_t blame_ns = 0;
  for (const auto& cell : blame) {
    blame_ns += cell.ns;
  }
  EXPECT_EQ(blame_ns, 6500);
  EXPECT_GE(blame.front().ns, blame.back().ns);
  // The folded flamegraph carries the same totals in "where;phase;component value" lines.
  const std::string folded = cp.FoldedStacks();
  EXPECT_NE(folded.find("n0->n1;vote;net_propagation 2000"), std::string::npos);
}

// Run-queue wait is only honoured by the what-if engine when a recorded CPU predecessor
// explains it; the busy core then hides wins that only shorten the waiting chain.
TEST(CritPathTest, WaitAttributedToCpuPredecessor) {
  CritPathCollector cp;
  cp.set_enabled(true);
  // An unrelated 2000 ns task occupies n1's core from t=5000 to t=7000.
  const uint32_t prior = cp.BeginHandler(1, "prior", 0, 5000, 5000);
  cp.AddService(prior, Component::kCpu, 2000);
  // Same chain as above, but the handler must queue behind `prior` until t=7000.
  const uint32_t o = cp.BeginOrigin(0, 1000, 3000);
  cp.AddService(o, Component::kCrypto, 500);
  const uint32_t t = cp.BeginTransit(0, 1, "vote", o, 3500, 3500, 4500, 6500,
                                     /*nic=*/0, /*holds_nic=*/true);
  const uint32_t h = cp.BeginHandler(1, "vote", t, 6500, 7000);
  cp.AddService(h, Component::kCpu, 300);
  cp.AddService(h, Component::kCrypto, 700);
  cp.OnConfirm(h, 1000, 1, 8000, 0, 10);

  const CritSummary s = cp.Summarize();
  const double ns = 1e-6;
  EXPECT_DOUBLE_EQ(s.mean_ms, 7000 * ns);
  EXPECT_DOUBLE_EQ(s.wait_ms, 500 * ns);
  EXPECT_DOUBLE_EQ(SumCritMs(s), s.mean_ms);
  // Scale-1: the resource edge to `prior` reproduces the 500 ns wait exactly.
  EXPECT_DOUBLE_EQ(s.baseline_ms, s.mean_ms);
  // Zero net: arrival jumps to 3500, but the core is busy until 7000 — no win at all.
  EXPECT_DOUBLE_EQ(s.zero_net_ms, 7000 * ns);
  // Zero CPU: `prior` releases at 5000, the chain arrives at 4500, crypto still costs
  // 500 + 700: start 5000 + 700 = 5700, latency 4700 ns.
  CritScales scales = CritScalesOnes();
  scales[Idx(Component::kCpu)] = 0.0;
  EXPECT_DOUBLE_EQ(cp.WhatIfMeanMs(scales), 4700 * ns);
  // The wait shows up in the flamegraph as its own ";wait" frame.
  EXPECT_NE(cp.FoldedStacks().find(";wait 500"), std::string::npos);
}

// --- Hand-built DAG: quorum joins and slack ---------------------------------------------

// Two vote inputs noted off-path; the joiner is triggered by the later vote's transit.
// Checks slack accounting and that the what-if engine respects join dependencies.
TEST(CritPathTest, JoinSlackAndWhatIfDependencies) {
  CritPathCollector cp;
  cp.set_enabled(true);
  const uint64_t key = 77;
  const uint32_t o = cp.BeginOrigin(2, 0, 100);
  // Input A (node 0): 400 ns of crypto, noted at its frontier.
  const uint32_t a = cp.BeginHandler(0, "voteA", 0, 0, 0);
  cp.AddService(a, Component::kCrypto, 400);
  cp.NoteInput(key, a, 400);
  // Input B (node 1): 800 ns of crypto, noted, then its vote rides to node 2.
  const uint32_t b = cp.BeginHandler(1, "voteB", 0, 0, 0);
  cp.AddService(b, Component::kCrypto, 800);
  cp.NoteInput(key, b, 800);
  const uint32_t tb = cp.BeginTransit(1, 2, "voteB", b, 800, 800, 850, 900,
                                      /*nic=*/0, /*holds_nic=*/false);
  // The joiner completes the quorum when B's vote arrives.
  const uint32_t j = cp.BeginHandler(2, "decide", tb, 900, 900);
  cp.JoinInputs(key, j, 900);
  cp.AddService(j, Component::kCpu, 100);
  cp.OnConfirm(j, 0, 1, 1000, 0, 1);

  const CritSummary s = cp.Summarize();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_DOUBLE_EQ(s.mean_ms, 1000 * 1e-6);
  EXPECT_DOUBLE_EQ(s.baseline_ms, s.mean_ms);  // Join inputs never push past the trigger.
  // Slack: how much earlier than the join each input landed.
  const auto slack = cp.SlackProfile();
  ASSERT_EQ(slack.size(), 2u);
  EXPECT_EQ(slack[0].where, "n0");
  EXPECT_EQ(slack[0].phase, "voteA");
  EXPECT_EQ(slack[0].total_ns, 500);
  EXPECT_EQ(slack[1].where, "n1");
  EXPECT_EQ(slack[1].total_ns, 100);
  // Zero crypto: both inputs and the trigger chain collapse; the joiner still waits for
  // the origin's CPU release (frontier 100) before its own 100 ns of work.
  CritScales scales = CritScalesOnes();
  scales[Idx(Component::kCrypto)] = 0.0;
  EXPECT_DOUBLE_EQ(cp.WhatIfMeanMs(scales), 200 * 1e-6);
  (void)o;
}

// --- Hand-built DAG: pool caps and truncation -------------------------------------------

TEST(CritPathTest, PoolOverflowCountsTruncatedCommits) {
  CritPathCollector::Options options;
  options.max_activities = 2;
  CritPathCollector cp(options);
  cp.set_enabled(true);
  const uint32_t o = cp.BeginOrigin(0, 0, 10);
  const uint32_t t = cp.BeginTransit(0, 1, "m", o, 10, 10, 20, 30, 0, true);
  EXPECT_NE(t, 0u);
  // Pool cap reached: the handler is dropped, not corrupted.
  const uint32_t h = cp.BeginHandler(1, "m", t, 30, 30);
  EXPECT_EQ(h, 0u);
  EXPECT_EQ(cp.dropped_activities(), 1u);
  cp.AddService(h, Component::kCpu, 100);  // No-op on the null activity.
  cp.OnConfirm(h, 0, 1, 130, 0, 1);
  const CritSummary s = cp.Summarize();
  EXPECT_EQ(s.commits, 0u);
  EXPECT_EQ(s.truncated, 1u);
  // The window can be reset without touching the pools.
  cp.ResetWindow();
  EXPECT_EQ(cp.commits(), 0u);
  EXPECT_EQ(cp.activities(), 2u);
}

// --- Cluster-level -----------------------------------------------------------------------

ClusterConfig CritConfig(Protocol protocol, uint64_t seed) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = 1;
  config.batch_size = 50;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.seed = seed;
  config.critpath = true;
  return config;
}

TEST(CritPathClusterTest, ReconcilesWithBreakdownIdentity) {
  Cluster cluster(CritConfig(Protocol::kAchilles, 42));
  const RunStats stats = cluster.RunMeasured(Ms(200), Sec(1));
  ASSERT_TRUE(stats.safety_ok);
  const CritSummary& s = stats.critpath;
  ASSERT_TRUE(s.enabled);
  ASSERT_GT(s.commits, 10u);
  EXPECT_EQ(s.truncated, 0u);
  EXPECT_EQ(s.unanchored, 0u);
  EXPECT_EQ(s.dropped_activities, 0u);
  EXPECT_EQ(s.dropped_segments, 0u);
  // The on-path component sums tile origin->confirm exactly (PR 1 identity, applied to
  // the extracted path instead of the whole e2e window).
  EXPECT_GT(s.mean_ms, 0.0);
  EXPECT_NEAR(SumCritMs(s), s.mean_ms, s.mean_ms * 1e-6);
  // Scale-1 what-if reproduces the recorded schedule exactly (frontier self-check).
  EXPECT_NEAR(s.baseline_ms, s.mean_ms, s.mean_ms * 1e-6);
  // The commit path can't be longer than the client-observed e2e mean.
  EXPECT_LE(s.mean_ms, stats.e2e_latency_ms * 1.001);
  EXPECT_LE(s.wait_ms, s.mean_ms);
  // Achilles commits ride crypto + network; both must show up on-path.
  EXPECT_GT(s.crit_ms[Idx(Component::kCrypto)], 0.0);
  EXPECT_GT(s.crit_ms[Idx(Component::kNetPropagation)], 0.0);
  // Removing costs can only shorten the predicted path; adding can only stretch it.
  EXPECT_LE(s.zero_crypto_ms, s.baseline_ms);
  EXPECT_LE(s.zero_net_ms, s.baseline_ms);
  EXPECT_LE(s.zero_ecall_ms, s.baseline_ms);
  EXPECT_LE(s.zero_fsync_ms, s.baseline_ms);
  EXPECT_GE(s.double_crypto_ms, s.baseline_ms);
}

TEST(CritPathClusterTest, ProfilerIsZeroPerturbation) {
  RunStats off, on;
  std::string journal_off, journal_on;
  {
    ClusterConfig config = CritConfig(Protocol::kAchilles, 7);
    config.critpath = false;
    config.journaling = true;
    Cluster cluster(config);
    off = cluster.RunMeasured(Ms(200), Sec(1));
    journal_off = cluster.journal().DigestHex();
  }
  {
    ClusterConfig config = CritConfig(Protocol::kAchilles, 7);
    config.journaling = true;
    Cluster cluster(config);
    on = cluster.RunMeasured(Ms(200), Sec(1));
    journal_on = cluster.journal().DigestHex();
    EXPECT_GT(cluster.critpath().activities(), 0u);
  }
  // Bit-identical virtual-time outcomes: the profiler must never perturb the schedule.
  EXPECT_EQ(off.throughput_tps, on.throughput_tps);
  EXPECT_EQ(off.commit_latency_ms, on.commit_latency_ms);
  EXPECT_EQ(off.commit_p50_ms, on.commit_p50_ms);
  EXPECT_EQ(off.commit_p99_ms, on.commit_p99_ms);
  EXPECT_EQ(off.e2e_latency_ms, on.e2e_latency_ms);
  EXPECT_EQ(off.committed_blocks, on.committed_blocks);
  EXPECT_EQ(off.messages, on.messages);
  EXPECT_EQ(off.bytes, on.bytes);
  EXPECT_EQ(off.counter_writes, on.counter_writes);
  for (size_t i = 0; i < obs::kNumComponents; ++i) {
    EXPECT_EQ(off.breakdown.parts[i], on.breakdown.parts[i]);
  }
  // The flight recorder sees the same event stream bit for bit.
  EXPECT_EQ(journal_off, journal_on);
}

TEST(CritPathClusterTest, DigestStableAcrossReplayAndEngines) {
  std::string digests[3];
  const SimEngine engines[3] = {SimEngine::kCalendar, SimEngine::kCalendar,
                                SimEngine::kHeap};
  for (int i = 0; i < 3; ++i) {
    ClusterConfig config = CritConfig(Protocol::kAchilles, 1234);
    config.engine = engines[i];
    Cluster cluster(config);
    const RunStats stats = cluster.RunMeasured(Ms(200), Ms(800));
    ASSERT_TRUE(stats.safety_ok);
    ASSERT_GT(stats.critpath.commits, 0u);
    digests[i] = stats.critpath.digest_hex;
    EXPECT_EQ(digests[i].size(), 64u);
  }
  EXPECT_EQ(digests[0], digests[1]);  // Replay determinism.
  EXPECT_EQ(digests[0], digests[2]);  // Engine equivalence.
}

TEST(CritPathClusterTest, TruncationGaugesAlwaysExported) {
  Cluster cluster(CritConfig(Protocol::kAchilles, 5));
  cluster.RunMeasured(Ms(100), Ms(400));
  obs::JsonWriter w;
  cluster.metrics().ToJson(&w);
  const std::string json = w.Take();
  EXPECT_NE(json.find("trace.dropped_spans"), std::string::npos);
  EXPECT_NE(json.find("journal.events_recorded"), std::string::npos);
  EXPECT_NE(json.find("journal.events_evicted"), std::string::npos);
  EXPECT_NE(json.find("critpath.activities"), std::string::npos);
}

TEST(CritPathClusterTest, ExportsParseAndCarryTheProfile) {
  Cluster cluster(CritConfig(Protocol::kAchilles, 9));
  const RunStats stats = cluster.RunMeasured(Ms(200), Ms(600));
  ASSERT_GT(stats.critpath.commits, 0u);
  const auto profile = obs::ParseJson(cluster.critpath().ProfileJson());
  ASSERT_TRUE(profile.has_value());
  ASSERT_TRUE(profile->is_object());
  const obs::JsonValue* summary = profile->Get("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_NE(summary->Get("what_if_ms"), nullptr);
  const obs::JsonValue* blame = profile->Get("blame");
  ASSERT_NE(blame, nullptr);
  EXPECT_TRUE(blame->is_array());
  EXPECT_FALSE(blame->array.empty());
  ASSERT_NE(profile->Get("slack"), nullptr);
  // The folded flamegraph has one "stack count" pair per line.
  const std::string folded = cluster.critpath().FoldedStacks();
  ASSERT_FALSE(folded.empty());
  const size_t eol = folded.find('\n');
  const std::string first = folded.substr(0, eol);
  EXPECT_NE(first.find(';'), std::string::npos);
  EXPECT_NE(first.rfind(' '), std::string::npos);
  // Perfetto annotation export is valid trace JSON with critpath slices.
  const auto perfetto = obs::ParseJson(cluster.critpath().PerfettoJson(4));
  ASSERT_TRUE(perfetto.has_value());
  const obs::JsonValue* events = perfetto->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_FALSE(events->array.empty());
}

// --- What-if validation against actual re-runs ------------------------------------------

// Runs `base` (profiled), takes the engine's prediction for a scenario, then actually
// re-runs with the CostModel modified to match and compares measured commit latency.
// A fixed-rate client keeps the DAG shape comparable across the two runs.
double MeasuredMeanMs(const ClusterConfig& config) {
  Cluster cluster(config);
  const RunStats stats = cluster.RunMeasured(Ms(300), Sec(2));
  EXPECT_TRUE(stats.safety_ok);
  EXPECT_GT(stats.critpath.commits, 0u);
  return stats.critpath.mean_ms;
}

ClusterConfig PacedConfig(Protocol protocol, uint64_t seed) {
  ClusterConfig config = CritConfig(protocol, seed);
  config.client_rate_tps = 2000.0;
  return config;
}

TEST(CritPathWhatIfValidation, ZeroFsyncMatchesRerun) {
  // Raft acks ride an fsynced WAL append; zeroing log_fsync is the scenario's ground
  // truth re-run. Raft's fsync-bound latency (~2 ms) forces a slower client than the
  // other scenarios: what-if pins proposal times, which is only sound open-loop (the
  // inter-proposal gap must dominate the commit latency — see DESIGN.md §2.22).
  ClusterConfig base = PacedConfig(Protocol::kRaft, 21);
  base.batch_size = 1;
  base.client_rate_tps = 200.0;
  Cluster cluster(base);
  const RunStats stats = cluster.RunMeasured(Ms(300), Sec(2));
  ASSERT_TRUE(stats.safety_ok);
  ASSERT_GT(stats.critpath.commits, 0u);
  const double predicted = stats.critpath.zero_fsync_ms;
  // Fsync must actually sit on Raft's critical path for this scenario to mean anything.
  ASSERT_GT(stats.critpath.crit_ms[Idx(Component::kFsync)], 0.0);
  EXPECT_LT(predicted, stats.critpath.baseline_ms);
  ClusterConfig modified = base;
  modified.costs.log_fsync = 0;
  const double actual = MeasuredMeanMs(modified);
  EXPECT_NEAR(predicted, actual, actual * 0.10);
}

TEST(CritPathWhatIfValidation, ZeroEcallMatchesRerun) {
  // MinBFT crosses the enclave boundary for every USIG sign/verify.
  const ClusterConfig base = PacedConfig(Protocol::kMinBft, 22);
  Cluster cluster(base);
  const RunStats stats = cluster.RunMeasured(Ms(300), Sec(2));
  ASSERT_TRUE(stats.safety_ok);
  ASSERT_GT(stats.critpath.commits, 0u);
  const double predicted = stats.critpath.zero_ecall_ms;
  ASSERT_GT(stats.critpath.crit_ms[Idx(Component::kEcall)], 0.0);
  ClusterConfig modified = base;
  modified.costs.ecall_round_trip = 0;
  const double actual = MeasuredMeanMs(modified);
  EXPECT_NEAR(predicted, actual, actual * 0.10);
}

TEST(CritPathWhatIfValidation, DoubleCryptoMatchesRerun) {
  const ClusterConfig base = PacedConfig(Protocol::kMinBft, 23);
  Cluster cluster(base);
  const RunStats stats = cluster.RunMeasured(Ms(300), Sec(2));
  ASSERT_TRUE(stats.safety_ok);
  ASSERT_GT(stats.critpath.commits, 0u);
  const double predicted = stats.critpath.double_crypto_ms;
  EXPECT_GT(predicted, stats.critpath.baseline_ms);
  // Ground truth: double every member of the crypto cost family.
  ClusterConfig modified = base;
  modified.costs.sign *= 2;
  modified.costs.verify *= 2;
  modified.costs.verify_batch_fixed *= 2;
  modified.costs.verify_batch_per_sig *= 2;
  modified.costs.hash_ns_per_byte *= 2;
  modified.costs.hash_fixed *= 2;
  modified.costs.seal_op *= 2;
  const double actual = MeasuredMeanMs(modified);
  EXPECT_NEAR(predicted, actual, actual * 0.10);
}

}  // namespace
}  // namespace achilles
