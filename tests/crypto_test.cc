#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/crypto/hmac.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/secp256k1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/signer.h"
#include "src/crypto/uint256.h"

namespace achilles {
namespace {

// --- SHA-256 known-answer tests (FIPS 180-4 / NIST vectors) ---

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashToHex(Sha256Digest(ByteView())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashToHex(Sha256Digest(AsBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashToHex(Sha256Digest(
                AsBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(AsBytes(chunk));
  }
  EXPECT_EQ(HashToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(3);
  Bytes data;
  rng.Fill(data, 300);
  Sha256 h;
  h.Update(ByteView(data.data(), 100));
  h.Update(ByteView(data.data() + 100, 1));
  h.Update(ByteView(data.data() + 101, 199));
  EXPECT_EQ(h.Finish(), Sha256Digest(ByteView(data.data(), data.size())));
}

TEST(Sha256Test, ReusableAfterFinish) {
  Sha256 h;
  h.Update(AsBytes("abc"));
  const Hash256 first = h.Finish();
  h.Update(AsBytes("abc"));
  EXPECT_EQ(h.Finish(), first);
}

// --- HMAC-SHA-256 (RFC 4231) ---

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Hash256 tag = HmacSha256(ByteView(key.data(), key.size()), AsBytes("Hi There"));
  EXPECT_EQ(HashToHex(tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Hash256 tag =
      HmacSha256(AsBytes("Jefe"), AsBytes("what do ya want for nothing?"));
  EXPECT_EQ(HashToHex(tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3LongKeyHashing) {
  // Key longer than the block size must be hashed first (case 6 of RFC 4231).
  const Bytes key(131, 0xaa);
  const Hash256 tag = HmacSha256(ByteView(key.data(), key.size()),
                                 AsBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(HashToHex(tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DeriveKeyDomainSeparation) {
  const Hash256 a = DeriveKey(AsBytes("seed"), "label-a", ByteView());
  const Hash256 b = DeriveKey(AsBytes("seed"), "label-b", ByteView());
  EXPECT_NE(a, b);
}

// --- UInt256 ---

TEST(UInt256Test, BytesRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    UInt256 v;
    for (auto& limb : v.limbs) {
      limb = rng.NextU64();
    }
    const Bytes be = v.ToBytesBE();
    EXPECT_EQ(UInt256::FromBytesBE(ByteView(be.data(), be.size())), v);
  }
}

TEST(UInt256Test, HexRoundTrip) {
  const UInt256 v = UInt256::FromHexStr("00000000000000000000000000000000000000000000000000000000deadbeef");
  EXPECT_EQ(v.limbs[0], 0xdeadbeefULL);
  EXPECT_EQ(v.ToHexStr(),
            "00000000000000000000000000000000000000000000000000000000deadbeef");
}

TEST(UInt256Test, AddSubInverse) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    UInt256 a, b;
    for (auto& limb : a.limbs) {
      limb = rng.NextU64();
    }
    for (auto& limb : b.limbs) {
      limb = rng.NextU64();
    }
    UInt256 sum, back;
    const uint64_t carry = AddWithCarry(a, b, sum);
    const uint64_t borrow = SubWithBorrow(sum, b, back);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // Wrap on add implies wrap on sub.
  }
}

TEST(UInt256Test, CmpOrdering) {
  const UInt256 one = UInt256::FromU64(1);
  const UInt256 two = UInt256::FromU64(2);
  UInt256 big;
  big.limbs[3] = 1;
  EXPECT_EQ(Cmp(one, two), -1);
  EXPECT_EQ(Cmp(two, one), 1);
  EXPECT_EQ(Cmp(one, one), 0);
  EXPECT_EQ(Cmp(big, two), 1);
}

TEST(UInt256Test, MulModSmallValues) {
  const UInt256 m = UInt256::FromU64(1000000007ULL);
  const UInt256 a = UInt256::FromU64(123456789ULL);
  const UInt256 b = UInt256::FromU64(987654321ULL);
  // 123456789 * 987654321 mod 1000000007 = 259106859963578712 mod 1e9+7.
  const uint64_t expected =
      static_cast<uint64_t>((static_cast<unsigned __int128>(123456789ULL) * 987654321ULL) %
                            1000000007ULL);
  EXPECT_EQ(MulMod(a, b, m).limbs[0], expected);
}

TEST(UInt256Test, Mod512MatchesModularIdentity) {
  // (a * m + r) mod m == r for r < m.
  Rng rng(9);
  const UInt256 m = Secp256k1N();
  for (int i = 0; i < 20; ++i) {
    UInt256 r = UInt256::FromU64(rng.NextU64());
    const UInt256 a = UInt256::FromU64(rng.NextU64() % 1000);
    UInt512 prod = Mul256(a, m);
    // prod += r.
    unsigned __int128 carry = 0;
    for (int limb = 0; limb < 4; ++limb) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(prod[static_cast<size_t>(limb)]) + r.limbs[static_cast<size_t>(limb)] + carry;
      prod[static_cast<size_t>(limb)] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    for (int limb = 4; limb < 8 && carry; ++limb) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(prod[static_cast<size_t>(limb)]) + carry;
      prod[static_cast<size_t>(limb)] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    EXPECT_EQ(Mod512(prod, m), r);
  }
}

TEST(UInt256Test, BitLength) {
  EXPECT_EQ(UInt256{}.BitLength(), 0);
  EXPECT_EQ(UInt256::FromU64(1).BitLength(), 1);
  EXPECT_EQ(UInt256::FromU64(0x80).BitLength(), 8);
  UInt256 top;
  top.limbs[3] = 0x8000000000000000ULL;
  EXPECT_EQ(top.BitLength(), 256);
}

// --- secp256k1 ---

TEST(Secp256k1Test, GeneratorOnCurve) { EXPECT_TRUE(IsOnCurve(Secp256k1G())); }

TEST(Secp256k1Test, KnownDoubleG) {
  const AffinePoint two_g = ScalarMul(UInt256::FromU64(2), Secp256k1G());
  EXPECT_EQ(two_g.x.ToHexStr(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_TRUE(IsOnCurve(two_g));
}

TEST(Secp256k1Test, DoubleMatchesAdd) {
  const JacobianPoint g = JacobianPoint::FromAffine(Secp256k1G());
  const AffinePoint doubled = ToAffine(PointDouble(g));
  const AffinePoint added = ToAffine(PointAdd(g, g));
  EXPECT_EQ(doubled, added);
}

TEST(Secp256k1Test, OrderTimesGIsInfinity) {
  EXPECT_TRUE(ScalarMul(Secp256k1N(), Secp256k1G()).infinity);
}

TEST(Secp256k1Test, OrderMinusOneIsNegation) {
  UInt256 n_minus_1;
  SubWithBorrow(Secp256k1N(), UInt256::FromU64(1), n_minus_1);
  const AffinePoint p = ScalarMul(n_minus_1, Secp256k1G());
  EXPECT_EQ(p.x, Secp256k1G().x);
  EXPECT_EQ(p.y, FieldNeg(Secp256k1G().y));
}

TEST(Secp256k1Test, ScalarMulDistributive) {
  Rng rng(21);
  for (int i = 0; i < 4; ++i) {
    const UInt256 a = UInt256::FromU64(rng.NextU64());
    const UInt256 b = UInt256::FromU64(rng.NextU64());
    const UInt256 sum = AddMod(a, b, Secp256k1N());
    const AffinePoint lhs = ScalarMulBase(sum);
    const JacobianPoint rhs_j =
        PointAddMixed(JacobianPoint::FromAffine(ScalarMulBase(a)), ScalarMulBase(b));
    EXPECT_EQ(lhs, ToAffine(rhs_j));
  }
}

TEST(Secp256k1Test, FieldInverse) {
  Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    UInt256 a = UInt256::FromU64(rng.NextU64() | 1);
    a.limbs[2] = rng.NextU64();
    const UInt256 inv = FieldInv(a);
    EXPECT_EQ(FieldMul(a, inv), UInt256::FromU64(1));
  }
}

TEST(Secp256k1Test, PointEncodeDecodeRoundTrip) {
  const AffinePoint p = ScalarMulBase(UInt256::FromU64(777));
  const Bytes enc = EncodePoint(p);
  AffinePoint out;
  ASSERT_TRUE(DecodePoint(ByteView(enc.data(), enc.size()), out));
  EXPECT_EQ(out, p);
}

TEST(Secp256k1Test, DecodeRejectsOffCurve) {
  Bytes enc(64, 0);
  enc[0] = 1;  // x=2^248-ish, y=0: not on curve.
  AffinePoint out;
  EXPECT_FALSE(DecodePoint(ByteView(enc.data(), enc.size()), out));
}

TEST(Secp256k1Test, InfinityEncoding) {
  AffinePoint inf;
  const Bytes enc = EncodePoint(inf);
  AffinePoint out;
  ASSERT_TRUE(DecodePoint(ByteView(enc.data(), enc.size()), out));
  EXPECT_TRUE(out.infinity);
}

// --- Schnorr ---

TEST(SchnorrTest, SignVerifyRoundTrip) {
  const SchnorrKeyPair key = SchnorrKeyFromSeed(AsBytes("seed-material-0001"));
  const Bytes sig = SchnorrSign(key, AsBytes("the quick brown fox"));
  EXPECT_TRUE(SchnorrVerify(key.pub, AsBytes("the quick brown fox"),
                            ByteView(sig.data(), sig.size())));
}

TEST(SchnorrTest, RejectsWrongMessage) {
  const SchnorrKeyPair key = SchnorrKeyFromSeed(AsBytes("seed-material-0002"));
  const Bytes sig = SchnorrSign(key, AsBytes("message A"));
  EXPECT_FALSE(SchnorrVerify(key.pub, AsBytes("message B"), ByteView(sig.data(), sig.size())));
}

TEST(SchnorrTest, RejectsWrongKey) {
  const SchnorrKeyPair key1 = SchnorrKeyFromSeed(AsBytes("seed-material-0003"));
  const SchnorrKeyPair key2 = SchnorrKeyFromSeed(AsBytes("seed-material-0004"));
  const Bytes sig = SchnorrSign(key1, AsBytes("msg"));
  EXPECT_FALSE(SchnorrVerify(key2.pub, AsBytes("msg"), ByteView(sig.data(), sig.size())));
}

TEST(SchnorrTest, RejectsTamperedSignature) {
  const SchnorrKeyPair key = SchnorrKeyFromSeed(AsBytes("seed-material-0005"));
  Bytes sig = SchnorrSign(key, AsBytes("msg"));
  for (size_t pos : {0u, 63u, 64u, 95u}) {
    Bytes bad = sig;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(SchnorrVerify(key.pub, AsBytes("msg"), ByteView(bad.data(), bad.size())))
        << "tampered byte " << pos;
  }
}

TEST(SchnorrTest, RejectsTruncatedSignature) {
  const SchnorrKeyPair key = SchnorrKeyFromSeed(AsBytes("seed-material-0006"));
  const Bytes sig = SchnorrSign(key, AsBytes("msg"));
  EXPECT_FALSE(SchnorrVerify(key.pub, AsBytes("msg"), ByteView(sig.data(), sig.size() - 1)));
}

TEST(SchnorrTest, DeterministicSignature) {
  const SchnorrKeyPair key = SchnorrKeyFromSeed(AsBytes("seed-material-0007"));
  EXPECT_EQ(SchnorrSign(key, AsBytes("m")), SchnorrSign(key, AsBytes("m")));
}

// --- CryptoSuite ---

class CryptoSuiteTest : public ::testing::TestWithParam<SignatureScheme> {};

TEST_P(CryptoSuiteTest, SignVerify) {
  CryptoSuite suite(GetParam(), 5, 1234);
  for (uint32_t i = 0; i < 5; ++i) {
    const Signature sig = suite.Sign(i, AsBytes("payload"));
    EXPECT_EQ(sig.signer, i);
    EXPECT_TRUE(suite.Verify(sig, AsBytes("payload")));
    EXPECT_FALSE(suite.Verify(sig, AsBytes("other")));
  }
}

TEST_P(CryptoSuiteTest, RejectsForgedSignerId) {
  CryptoSuite suite(GetParam(), 5, 1234);
  Signature sig = suite.Sign(0, AsBytes("payload"));
  sig.signer = 1;  // Claim a different identity with node 0's blob.
  EXPECT_FALSE(suite.Verify(sig, AsBytes("payload")));
}

TEST_P(CryptoSuiteTest, RejectsOutOfRangeSigner) {
  CryptoSuite suite(GetParam(), 3, 1);
  Signature sig = suite.Sign(0, AsBytes("x"));
  sig.signer = 99;
  EXPECT_FALSE(suite.Verify(sig, AsBytes("x")));
}

TEST_P(CryptoSuiteTest, QuorumVerification) {
  CryptoSuite suite(GetParam(), 5, 77);
  std::vector<Signature> sigs;
  for (uint32_t i = 0; i < 3; ++i) {
    sigs.push_back(suite.Sign(i, AsBytes("q")));
  }
  EXPECT_TRUE(suite.VerifyQuorum(sigs, AsBytes("q"), 3));
  EXPECT_FALSE(suite.VerifyQuorum(sigs, AsBytes("q"), 4));  // Too few.

  std::vector<Signature> dup = sigs;
  dup[2] = dup[0];  // Duplicate signer must not count twice.
  EXPECT_FALSE(suite.VerifyQuorum(dup, AsBytes("q"), 3));
}

TEST_P(CryptoSuiteTest, SignatureWireSizeIsStable) {
  CryptoSuite suite(GetParam(), 2, 5);
  const Signature a = suite.Sign(0, AsBytes("a"));
  const Signature b = suite.Sign(1, AsBytes("some longer message body"));
  EXPECT_EQ(a.WireSize(), b.WireSize());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CryptoSuiteTest,
                         ::testing::Values(SignatureScheme::kSchnorr,
                                           SignatureScheme::kFastHmac));

// --- Hardware SHA-256 vs portable differential ---

TEST(Sha256HardwareTest, HardwareMatchesPortableOnRandomInputs) {
  // When the CPU has SHA-NI the default path uses it; the portable compressor is always
  // available. Both must agree byte-for-byte on every length (empty, sub-block, block
  // boundary, multi-block, and ragged tails).
  Rng rng(0xd1f);
  for (size_t len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 1000u, 4096u, 10000u}) {
    Bytes data(len);
    for (uint8_t& byte : data) {
      byte = static_cast<uint8_t>(rng.UniformU64(256));
    }
    const ByteView view(data.data(), data.size());
    EXPECT_EQ(HashToHex(Sha256Digest(view)), HashToHex(Sha256DigestPortable(view)))
        << "len " << len << " hw=" << Sha256UsesHardware();
  }
}

TEST(Sha256HardwareTest, IncrementalChunkingAgreesAcrossImplementations) {
  Rng rng(0xfeed);
  Bytes data(3000);
  for (uint8_t& byte : data) {
    byte = static_cast<uint8_t>(rng.UniformU64(256));
  }
  Sha256 fast;
  Sha256 slow;
  slow.ForcePortable();
  size_t off = 0;
  while (off < data.size()) {  // Ragged chunk sizes stress the buffered-tail logic.
    const size_t chunk = std::min<size_t>(1 + rng.UniformU64(200), data.size() - off);
    fast.Update(ByteView(data.data() + off, chunk));
    slow.Update(ByteView(data.data() + off, chunk));
    off += chunk;
  }
  EXPECT_EQ(HashToHex(fast.Finish()), HashToHex(slow.Finish()));
}

// --- HMAC key-schedule caching ---

TEST(HmacTest, HmacKeyMatchesOneShotHmac) {
  const Bytes key = {0x0b, 0x0b, 0x0b, 0x0b, 0x0b, 0x0b, 0x0b, 0x0b};
  const HmacKey sched(ByteView(key.data(), key.size()));
  for (const char* msg : {"", "Hi There", "a longer message spanning more than one block "
                              "of the underlying compression function, padded out"}) {
    EXPECT_EQ(HashToHex(sched.Mac(AsBytes(msg))),
              HashToHex(HmacSha256(ByteView(key.data(), key.size()), AsBytes(msg))));
  }
}

TEST(HmacTest, HmacKeyReusableAcrossMessages) {
  const HmacKey sched(AsBytes("shared-session-key"));
  const Hash256 first = sched.Mac(AsBytes("message 1"));
  (void)sched.Mac(AsBytes("message 2"));  // Interleaved use must not corrupt the schedule.
  EXPECT_EQ(HashToHex(first), HashToHex(sched.Mac(AsBytes("message 1"))));
}

// --- Multi-scalar multiplication (Pippenger) ---

TEST(Secp256k1Test, MultiScalarMulMatchesNaiveSum) {
  Rng rng(99);
  std::vector<UInt256> scalars;
  std::vector<AffinePoint> points;
  JacobianPoint naive = JacobianPoint::Infinity();
  for (int i = 0; i < 8; ++i) {
    uint8_t seed[32] = {};
    for (auto& byte : seed) {
      byte = static_cast<uint8_t>(rng.UniformU64(256));
    }
    const SchnorrKeyPair key = SchnorrKeyFromSeed(ByteView(seed, sizeof(seed)));
    UInt256 k = UInt256::FromU64(rng.UniformU64(UINT64_MAX));
    scalars.push_back(k);
    points.push_back(key.pub);
    naive = PointAddMixed(naive, ScalarMul(k, key.pub));
  }
  const AffinePoint expect = ToAffine(naive);
  const AffinePoint got = ToAffine(MultiScalarMul(scalars, points));
  EXPECT_TRUE(expect == got);
}

TEST(Secp256k1Test, MultiScalarMulHandlesZeroScalarsAndInfinity) {
  std::vector<UInt256> scalars = {UInt256::FromU64(0), UInt256::FromU64(5)};
  std::vector<AffinePoint> points = {Secp256k1G(), AffinePoint{}};
  const AffinePoint got = ToAffine(MultiScalarMul(scalars, points));
  EXPECT_TRUE(got.infinity);  // 0*G + 5*infinity = infinity.
}

// --- Schnorr batch verification ---

std::vector<SchnorrKeyPair> BatchKeys(size_t count) {
  std::vector<SchnorrKeyPair> keys;
  for (size_t i = 0; i < count; ++i) {
    const std::string seed = "batch-seed-" + std::to_string(i);
    keys.push_back(SchnorrKeyFromSeed(AsBytes(seed)));
  }
  return keys;
}

TEST(SchnorrBatchTest, AllValidBatchAccepts) {
  const auto keys = BatchKeys(7);
  std::vector<Bytes> sigs;
  std::vector<std::string> msgs;
  std::vector<SchnorrBatchInput> batch;
  for (size_t i = 0; i < keys.size(); ++i) {
    msgs.push_back("batch message " + std::to_string(i));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    sigs.push_back(SchnorrSign(keys[i], AsBytes(msgs[i])));
    batch.push_back({&keys[i].pub, AsBytes(msgs[i]), ByteView(sigs[i].data(), sigs[i].size())});
  }
  const SchnorrBatchResult result = SchnorrBatchVerify(batch);
  EXPECT_TRUE(result.all_valid);
  EXPECT_EQ(result.first_bad, -1);
}

TEST(SchnorrBatchTest, EmptyAndSingletonBatches) {
  EXPECT_TRUE(SchnorrBatchVerify({}).all_valid);

  const auto keys = BatchKeys(1);
  const Bytes sig = SchnorrSign(keys[0], AsBytes("solo"));
  std::vector<SchnorrBatchInput> batch = {
      {&keys[0].pub, AsBytes("solo"), ByteView(sig.data(), sig.size())}};
  EXPECT_TRUE(SchnorrBatchVerify(batch).all_valid);
}

TEST(SchnorrBatchTest, OneBadSignatureIsRejectedAndIdentified) {
  const auto keys = BatchKeys(6);
  std::vector<Bytes> sigs;
  std::vector<std::string> msgs;
  for (size_t i = 0; i < keys.size(); ++i) {
    msgs.push_back("victim message " + std::to_string(i));
    sigs.push_back(SchnorrSign(keys[i], AsBytes(msgs[i])));
  }
  sigs[3][95] ^= 0x01;  // Corrupt one byte of s in the fourth signature.
  std::vector<SchnorrBatchInput> batch;
  for (size_t i = 0; i < keys.size(); ++i) {
    batch.push_back({&keys[i].pub, AsBytes(msgs[i]), ByteView(sigs[i].data(), sigs[i].size())});
  }
  const SchnorrBatchResult result = SchnorrBatchVerify(batch);
  EXPECT_FALSE(result.all_valid);
  EXPECT_EQ(result.first_bad, 3);  // The scalar fallback pinpoints the culprit.
}

TEST(SchnorrBatchTest, WrongMessageInBatchRejects) {
  const auto keys = BatchKeys(4);
  std::vector<Bytes> sigs;
  for (size_t i = 0; i < keys.size(); ++i) {
    sigs.push_back(SchnorrSign(keys[i], AsBytes("honest message")));
  }
  std::vector<SchnorrBatchInput> batch;
  const std::string forged = "forged message";
  for (size_t i = 0; i < keys.size(); ++i) {
    batch.push_back({&keys[i].pub, i == 1 ? AsBytes(forged) : AsBytes("honest message"),
                     ByteView(sigs[i].data(), sigs[i].size())});
  }
  const SchnorrBatchResult result = SchnorrBatchVerify(batch);
  EXPECT_FALSE(result.all_valid);
  EXPECT_EQ(result.first_bad, 1);
}

TEST(SchnorrBatchTest, SwappedSignaturesDoNotCancel) {
  // Two individually valid signatures attached to each other's slots: the deterministic
  // per-item weights make the linear combination reject the swap.
  const auto keys = BatchKeys(2);
  const Bytes sig_a = SchnorrSign(keys[0], AsBytes("message A"));
  const Bytes sig_b = SchnorrSign(keys[1], AsBytes("message B"));
  std::vector<SchnorrBatchInput> batch = {
      {&keys[0].pub, AsBytes("message A"), ByteView(sig_b.data(), sig_b.size())},
      {&keys[1].pub, AsBytes("message B"), ByteView(sig_a.data(), sig_a.size())},
  };
  const SchnorrBatchResult result = SchnorrBatchVerify(batch);
  EXPECT_FALSE(result.all_valid);
  EXPECT_EQ(result.first_bad, 0);
}

TEST(SchnorrBatchTest, StructurallyInvalidSignatureFallsBack) {
  const auto keys = BatchKeys(3);
  std::vector<Bytes> sigs;
  for (size_t i = 0; i < keys.size(); ++i) {
    sigs.push_back(SchnorrSign(keys[i], AsBytes("m")));
  }
  sigs[2].resize(10);  // Truncated blob cannot even parse.
  std::vector<SchnorrBatchInput> batch;
  for (size_t i = 0; i < keys.size(); ++i) {
    batch.push_back({&keys[i].pub, AsBytes("m"), ByteView(sigs[i].data(), sigs[i].size())});
  }
  const SchnorrBatchResult result = SchnorrBatchVerify(batch);
  EXPECT_FALSE(result.all_valid);
  EXPECT_EQ(result.first_bad, 2);
}

TEST(SchnorrBatchTest, BatchAgreesWithScalarVerifyOnRandomBatches) {
  Rng rng(0xbadc0de);
  for (int round = 0; round < 10; ++round) {
    const size_t m = 2 + rng.UniformU64(6);
    const auto keys = BatchKeys(m);
    std::vector<Bytes> sigs;
    std::vector<std::string> msgs;
    bool expect_valid = true;
    for (size_t i = 0; i < m; ++i) {
      msgs.push_back("round " + std::to_string(round) + " msg " + std::to_string(i));
      sigs.push_back(SchnorrSign(keys[i], AsBytes(msgs[i])));
    }
    if (rng.UniformU64(2) == 0) {  // Half the rounds corrupt one random signature.
      sigs[rng.UniformU64(m)][32 + rng.UniformU64(64)] ^= 0x80;
      expect_valid = false;
    }
    std::vector<SchnorrBatchInput> batch;
    for (size_t i = 0; i < m; ++i) {
      batch.push_back({&keys[i].pub, AsBytes(msgs[i]), ByteView(sigs[i].data(), sigs[i].size())});
    }
    bool scalar_valid = true;
    for (size_t i = 0; i < m; ++i) {
      scalar_valid = scalar_valid &&
                     SchnorrVerify(keys[i].pub, AsBytes(msgs[i]),
                                   ByteView(sigs[i].data(), sigs[i].size()));
    }
    EXPECT_EQ(scalar_valid, expect_valid) << "round " << round;
    EXPECT_EQ(SchnorrBatchVerify(batch).all_valid, scalar_valid) << "round " << round;
  }
}

}  // namespace
}  // namespace achilles
