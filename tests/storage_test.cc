// Tests for the host stable-storage subsystem (src/storage): WAL + record-store crash
// semantics, the unified persist::Store durability classes, the per-surface StorageFate
// reboot encoding, and full reboot-recovery through the cluster for every protocol.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/chaos/runner.h"
#include "src/harness/cluster.h"
#include "src/harness/fault_script.h"
#include "src/storage/host_storage.h"
#include "src/storage/persist.h"
#include "src/tee/enclave.h"
#include "src/tee/monotonic_counter.h"
#include "src/tee/platform.h"

namespace achilles {
namespace {

ByteView View(const char* s) {
  return ByteView(reinterpret_cast<const uint8_t*>(s), std::strlen(s));
}

// --- WriteAheadLog + sync domain ---

struct DiskFixture {
  DiskFixture() : sim(3), host(&sim, 0), disk(&host, Ms(1)) {}
  Simulation sim;
  Host host;
  storage::HostStableStorage disk;
};

TEST(WalTest, AsyncAppendIsNotDurableUntilSync) {
  DiskFixture f;
  storage::WriteAheadLog& wal = f.disk.Wal("log");
  wal.Append(View("a"), storage::SyncMode::kAsync);
  wal.Append(View("b"), storage::SyncMode::kAsync);
  EXPECT_EQ(wal.NumRecords(), 2u);
  EXPECT_EQ(wal.DurableRecords(), 0u);
  EXPECT_EQ(f.disk.fsyncs(), 0u);
  wal.Sync();
  EXPECT_EQ(wal.DurableRecords(), 2u);
  EXPECT_EQ(f.disk.fsyncs(), 1u);
  EXPECT_EQ(f.host.cpu_time_used(), Ms(1));  // One barrier, one kFsync charge.
}

TEST(WalTest, SyncAppendIsDurableOnReturn) {
  DiskFixture f;
  storage::WriteAheadLog& wal = f.disk.Wal("log");
  wal.Append(View("a"), storage::SyncMode::kSync);
  EXPECT_EQ(wal.DurableRecords(), 1u);
  EXPECT_EQ(f.disk.fsyncs(), 1u);
}

TEST(WalTest, CleanBarrierIsFree) {
  DiskFixture f;
  storage::WriteAheadLog& wal = f.disk.Wal("log");
  wal.Append(View("a"), storage::SyncMode::kSync);
  const SimDuration spent = f.host.cpu_time_used();
  wal.Sync();  // Nothing dirty: no fsync, no charge.
  f.disk.SyncAll();
  EXPECT_EQ(f.disk.fsyncs(), 1u);
  EXPECT_EQ(f.host.cpu_time_used(), spent);
}

TEST(WalTest, OneSyncDomainCoversAllSurfaces) {
  // A sync on any surface is a device-wide barrier: one fsync makes the other log's
  // appends and the record store's puts durable too (one disk, one flush).
  DiskFixture f;
  f.disk.Wal("a").Append(View("x"), storage::SyncMode::kAsync);
  f.disk.Wal("b").Append(View("y"), storage::SyncMode::kAsync);
  f.disk.records().Put("k", View("v"), storage::SyncMode::kAsync);
  f.disk.Wal("a").Sync();
  EXPECT_EQ(f.disk.fsyncs(), 1u);
  EXPECT_EQ(f.disk.Wal("a").DurableRecords(), 1u);
  EXPECT_EQ(f.disk.Wal("b").DurableRecords(), 1u);
  f.disk.ApplyCrashFate(storage::WalFate::kLostUnsynced);
  EXPECT_EQ(f.disk.records().Get("k").value(), Bytes{'v'});
}

TEST(WalTest, LostUnsyncedDropsEverythingPastTheDurableFrontier) {
  DiskFixture f;
  storage::WriteAheadLog& wal = f.disk.Wal("log");
  wal.Append(View("a"), storage::SyncMode::kAsync);
  wal.Append(View("b"), storage::SyncMode::kSync);
  wal.Append(View("c"), storage::SyncMode::kAsync);
  wal.Append(View("d"), storage::SyncMode::kAsync);
  f.disk.ApplyCrashFate(storage::WalFate::kLostUnsynced);
  ASSERT_EQ(wal.NumRecords(), 2u);
  EXPECT_EQ(wal.records()[0], Bytes{'a'});
  EXPECT_EQ(wal.records()[1], Bytes{'b'});
  EXPECT_EQ(wal.DurableRecords(), 2u);  // Everything surviving is durable.
}

TEST(WalTest, TornTailDropsOnlyTheLastUnsyncedRecord) {
  DiskFixture f;
  storage::WriteAheadLog& wal = f.disk.Wal("log");
  wal.Append(View("a"), storage::SyncMode::kSync);
  wal.Append(View("b"), storage::SyncMode::kAsync);
  wal.Append(View("c"), storage::SyncMode::kAsync);
  f.disk.ApplyCrashFate(storage::WalFate::kTornTail);
  ASSERT_EQ(wal.NumRecords(), 2u);  // The in-flight tail write ("c") tore; "b" flushed.
  EXPECT_EQ(wal.records()[1], Bytes{'b'});
  EXPECT_EQ(wal.DurableRecords(), 2u);
}

TEST(WalTest, IntactKeepsEverythingIncludingUnsynced) {
  DiskFixture f;
  storage::WriteAheadLog& wal = f.disk.Wal("log");
  wal.Append(View("a"), storage::SyncMode::kAsync);
  f.disk.ApplyCrashFate(storage::WalFate::kIntact);
  EXPECT_EQ(wal.NumRecords(), 1u);
  EXPECT_EQ(wal.DurableRecords(), 1u);
}

// --- TruncateFront (log compaction barrier) ---

TEST(WalTest, TruncateFrontDropsThePrefixAtomically) {
  DiskFixture f;
  storage::WriteAheadLog& wal = f.disk.Wal("log");
  wal.Append(View("a"), storage::SyncMode::kAsync);
  wal.Append(View("b"), storage::SyncMode::kAsync);
  wal.Append(View("c"), storage::SyncMode::kAsync);
  wal.TruncateFront(2);
  // Barrier 1 flushed the dirty domain, barrier 2 committed the new log head: the
  // truncated image is fully durable the moment TruncateFront returns.
  EXPECT_EQ(f.disk.fsyncs(), 2u);
  EXPECT_EQ(f.host.cpu_time_used(), Ms(2));
  ASSERT_EQ(wal.NumRecords(), 1u);
  EXPECT_EQ(wal.records()[0], Bytes{'c'});
  EXPECT_EQ(wal.DurableRecords(), 1u);
  EXPECT_EQ(wal.TotalBytes(), 1u);
}

TEST(WalTest, TruncateFrontOnCleanDomainChargesOneBarrier) {
  DiskFixture f;
  storage::WriteAheadLog& wal = f.disk.Wal("log");
  wal.Append(View("a"), storage::SyncMode::kSync);
  wal.Append(View("b"), storage::SyncMode::kSync);
  const uint64_t before = f.disk.fsyncs();
  wal.TruncateFront(1);
  // Barrier 1 was clean (free); only the metadata commit is charged.
  EXPECT_EQ(f.disk.fsyncs(), before + 1);
  wal.TruncateFront(0);  // No-op: neither barrier runs.
  EXPECT_EQ(f.disk.fsyncs(), before + 1);
}

TEST(WalTest, CrashFatesAfterTruncationReplayOverTheCompactedImage) {
  for (const storage::WalFate fate :
       {storage::WalFate::kLostUnsynced, storage::WalFate::kTornTail}) {
    DiskFixture f;
    storage::WriteAheadLog& wal = f.disk.Wal("log");
    wal.Append(View("a"), storage::SyncMode::kAsync);
    wal.Append(View("b"), storage::SyncMode::kAsync);
    wal.TruncateFront(1);
    wal.Append(View("c"), storage::SyncMode::kAsync);  // Unsynced tail past the barrier.
    f.disk.ApplyCrashFate(fate);
    // Either fate may eat the unsynced "c", but never resurrects the dropped "a" and
    // never touches the truncated durable image ("b").
    ASSERT_EQ(wal.NumRecords(), 1u) << storage::WalFateName(fate);
    EXPECT_EQ(wal.records()[0], Bytes{'b'}) << storage::WalFateName(fate);
    EXPECT_EQ(wal.DurableRecords(), 1u);
  }
}

TEST(WalTest, SyncedButNotTruncatedPrefixSurvivesEveryFate) {
  for (const storage::WalFate fate :
       {storage::WalFate::kIntact, storage::WalFate::kLostUnsynced,
        storage::WalFate::kTornTail}) {
    DiskFixture f;
    storage::WriteAheadLog& wal = f.disk.Wal("log");
    wal.Append(View("a"), storage::SyncMode::kSync);
    wal.Append(View("b"), storage::SyncMode::kSync);
    wal.TruncateFront(1);  // Drops "a"; "b" stays synced but untruncated.
    f.disk.ApplyCrashFate(fate);
    ASSERT_GE(wal.NumRecords(), 1u) << storage::WalFateName(fate);
    EXPECT_EQ(wal.records()[0], Bytes{'b'}) << storage::WalFateName(fate);
  }
}

TEST(WalTest, TruncateFrontClampsToTheLogSize) {
  DiskFixture f;
  storage::WriteAheadLog& wal = f.disk.Wal("log");
  wal.Append(View("a"), storage::SyncMode::kSync);
  wal.TruncateFront(100);
  EXPECT_EQ(wal.NumRecords(), 0u);
  EXPECT_EQ(wal.TotalBytes(), 0u);
  f.disk.ApplyCrashFate(storage::WalFate::kTornTail);  // Empty log: fates are no-ops.
  EXPECT_EQ(wal.NumRecords(), 0u);
}

TEST(RecordStoreTest, CrashFallsBackToTheDurableValueNeverATornOne) {
  DiskFixture f;
  storage::RecordStore& records = f.disk.records();
  records.Put("k", View("v1"), storage::SyncMode::kSync);
  records.Put("k", View("v2"), storage::SyncMode::kAsync);
  f.disk.ApplyCrashFate(storage::WalFate::kLostUnsynced);
  // The unsynced overwrite is gone, but the record is whole — the previous value, not a
  // torn mix of the two.
  EXPECT_EQ(records.Get("k").value(), (Bytes{'v', '1'}));
}

TEST(RecordStoreTest, TornTailRevertsOnlyTheLastUnsyncedPut) {
  DiskFixture f;
  storage::RecordStore& records = f.disk.records();
  records.Put("a", View("old"), storage::SyncMode::kSync);
  records.Put("a", View("new"), storage::SyncMode::kAsync);
  records.Put("b", View("fresh"), storage::SyncMode::kAsync);  // The in-flight tail put.
  f.disk.ApplyCrashFate(storage::WalFate::kTornTail);
  EXPECT_EQ(records.Get("a").value(), (Bytes{'n', 'e', 'w'}));
  EXPECT_FALSE(records.Get("b").has_value());
}

// --- persist::Store durability classes ---

TEST(PersistTest, VolatileStoreRoundTrips) {
  persist::VolatileStore store;
  EXPECT_EQ(store.durability(), persist::Durability::kVolatile);
  EXPECT_TRUE(store.available());
  store.Put("k", View("v"));
  EXPECT_EQ(store.Get("k").value(), Bytes{'v'});
  EXPECT_FALSE(store.Get("missing").has_value());
  EXPECT_EQ(store.Increment(), 0u);  // Record-only store: the counter facet is inert.
}

TEST(PersistTest, HostDurableStorePutIsDurableOnReturn) {
  DiskFixture f;
  persist::Store& store = f.disk.record_store();
  EXPECT_EQ(store.durability(), persist::Durability::kHostDurable);
  store.Put("k", View("v"));
  EXPECT_EQ(f.disk.fsyncs(), 1u);  // The interface contract: Put syncs before returning.
  f.disk.ApplyCrashFate(storage::WalFate::kLostUnsynced);
  EXPECT_EQ(store.Get("k").value(), Bytes{'v'});
}

struct TeeFixture {
  explicit TeeFixture(CounterSpec counter = CounterSpec::None())
      : sim(11), host(&sim, 0), suite(SignatureScheme::kFastHmac, 4, 99) {
    TeeConfig tee;
    tee.counter = counter;
    platform = std::make_unique<NodePlatform>(&host, &suite, CostModel::Default(), tee, 7);
    enclave = std::make_unique<EnclaveRuntime>(platform.get());
  }
  Simulation sim;
  Host host;
  CryptoSuite suite;
  std::unique_ptr<NodePlatform> platform;
  std::unique_ptr<EnclaveRuntime> enclave;
};

TEST(PersistTest, SealedStoreIsTheRollbackProneSurface) {
  TeeFixture f;
  persist::Store& store = f.enclave->sealed_store();
  EXPECT_EQ(store.durability(), persist::Durability::kTeeSealed);
  store.Put("k", View("v1"));
  store.Put("k", View("v2"));
  EXPECT_EQ(store.Get("k").value(), (Bytes{'v', '2'}));
  // The adversarial OS replays the old blob — exactly what kHostDurable can never do.
  f.platform->storage().SetRollbackMode(RollbackMode::kOldest);
  EXPECT_EQ(store.Get("k").value(), (Bytes{'v', '1'}));
}

TEST(PersistTest, CounterStoreDrivesTheTrustedCounter) {
  TeeFixture f(CounterSpec::Custom(Ms(20), Ms(5)));
  persist::Store& store = f.enclave->counter_store();
  EXPECT_EQ(store.durability(), persist::Durability::kTeeCounter);
  ASSERT_TRUE(store.available());
  EXPECT_EQ(store.Increment(), 1u);
  EXPECT_EQ(store.Increment(), 2u);
  EXPECT_EQ(store.Read(), 2u);
  EXPECT_EQ(f.host.cpu_time_used(), Ms(45));  // Device latency is charged, as ever.
  EXPECT_FALSE(store.Get("anything").has_value());  // Record facet is inert.
}

TEST(PersistTest, CounterStoreUnavailableWithoutADevice) {
  TeeFixture f(CounterSpec::None());
  EXPECT_FALSE(f.enclave->counter_store().available());
  EXPECT_EQ(f.enclave->counter_store().Increment(), 0u);
}

// --- StorageFate encoding + protocol traits ---

TEST(StorageFateTest, EncodeDecodeRoundTripsAllCombinations) {
  for (const storage::WalFate wal :
       {storage::WalFate::kIntact, storage::WalFate::kLostUnsynced,
        storage::WalFate::kTornTail}) {
    for (const SealedFate sealed :
         {SealedFate::kFresh, SealedFate::kStale, SealedFate::kErased}) {
      for (const checkpoint::SnapshotFate snapshot :
           {checkpoint::SnapshotFate::kIntact, checkpoint::SnapshotFate::kStale,
            checkpoint::SnapshotFate::kErased, checkpoint::SnapshotFate::kCorrupt}) {
        const StorageFate fate{wal, sealed, snapshot};
        const StorageFate back = DecodeStorageFate(EncodeStorageFate(fate));
        EXPECT_EQ(back.wal, wal);
        EXPECT_EQ(back.sealed, sealed);
        EXPECT_EQ(back.snapshot, snapshot);
      }
    }
  }
  // The honest fate encodes to 0 == v1's RollbackMode::kLatest, keeping old scripts
  // meaning-compatible (v2 fates likewise leave bits 16+ zero == snapshot kIntact).
  EXPECT_EQ(EncodeStorageFate(StorageFate{}), 0u);
}

TEST(StorageFateTest, V1ScriptsUpgradeRollbackModesToFates) {
  const std::string v1_text =
      "chaos-script v1\n"
      "protocol Damysus-R\n"
      "f 1\n"
      "seed 7\n"
      "event 100 reboot 1 0 0\n"   // kLatest  -> {intact, fresh}
      "event 200 reboot 1 0 1\n"   // kOldest  -> {intact, stale}
      "event 300 reboot 1 0 2\n"   // kPinned  -> {intact, stale}
      "event 400 reboot 1 0 3\n"   // kErase   -> {intact, erased}
      "heal 1000\n"
      "horizon 2000\n";
  ScriptArtifact artifact;
  ASSERT_TRUE(ScriptArtifact::FromText(v1_text, &artifact));
  ASSERT_EQ(artifact.script.events.size(), 4u);
  const SealedFate expected[] = {SealedFate::kFresh, SealedFate::kStale, SealedFate::kStale,
                                 SealedFate::kErased};
  for (size_t i = 0; i < 4; ++i) {
    const StorageFate fate = DecodeStorageFate(artifact.script.events[i].arg);
    EXPECT_EQ(fate.wal, storage::WalFate::kIntact);
    EXPECT_EQ(fate.sealed, expected[i]) << "event " << i;
  }
}

TEST(StorageFateTest, V2ScriptsParseWithSnapshotFateIntact) {
  // A v2 artifact knows nothing of the snapshot byte: its reboot args stop at bit 15.
  // Parsing must accept the old header and upgrade every fate to snapshot kIntact.
  StorageFate v2_fate;
  v2_fate.wal = storage::WalFate::kTornTail;
  v2_fate.sealed = SealedFate::kStale;
  const std::string v2_text =
      "chaos-script v2\n"
      "protocol BRaft\n"
      "f 1\n"
      "seed 9\n"
      "event 100 reboot 1 0 " + std::to_string(EncodeStorageFate(v2_fate)) + "\n"
      "heal 1000\n"
      "horizon 2000\n";
  ScriptArtifact artifact;
  ASSERT_TRUE(ScriptArtifact::FromText(v2_text, &artifact));
  ASSERT_EQ(artifact.script.events.size(), 1u);
  const StorageFate fate = DecodeStorageFate(artifact.script.events[0].arg);
  EXPECT_EQ(fate.wal, storage::WalFate::kTornTail);
  EXPECT_EQ(fate.sealed, SealedFate::kStale);
  EXPECT_EQ(fate.snapshot, checkpoint::SnapshotFate::kIntact);
  // Re-serializing writes the current (v4) header with the arg unchanged.
  const std::string text = artifact.ToText();
  EXPECT_EQ(text.compare(0, 15, "chaos-script v4"), 0);
  ScriptArtifact round;
  ASSERT_TRUE(ScriptArtifact::FromText(text, &round));
  EXPECT_EQ(round.script.events[0].arg, artifact.script.events[0].arg);
}

TEST(StorageFateTest, V3ScriptsRoundTripSnapshotFates) {
  StorageFate fate;
  fate.wal = storage::WalFate::kLostUnsynced;
  fate.sealed = SealedFate::kErased;
  fate.snapshot = checkpoint::SnapshotFate::kStale;
  ScriptArtifact artifact;
  artifact.protocol = "BRaft";
  artifact.f = 1;
  artifact.seed = 4;
  artifact.script.events.push_back(
      {Ms(1), FaultKind::kCrash, 2, 0, 0});
  artifact.script.events.push_back(
      {Ms(2), FaultKind::kReboot, 2, 0, EncodeStorageFate(fate)});
  artifact.script.heal_at = Ms(10);
  artifact.script.horizon = Ms(20);
  const std::string text = artifact.ToText();
  ScriptArtifact parsed;
  ASSERT_TRUE(ScriptArtifact::FromText(text, &parsed));
  ASSERT_EQ(parsed.script.events.size(), 2u);
  const StorageFate back = DecodeStorageFate(parsed.script.events[1].arg);
  EXPECT_EQ(back.wal, fate.wal);
  EXPECT_EQ(back.sealed, fate.sealed);
  EXPECT_EQ(back.snapshot, fate.snapshot);
  EXPECT_EQ(parsed.ToText(), text);  // v3 canonical form is a fixed point.
}

TEST(StorageFateTest, EveryProtocolSupportsReboot) {
  for (int i = 0; i < kNumProtocols; ++i) {
    EXPECT_TRUE(ProtocolSupportsReboot(static_cast<Protocol>(i)))
        << ProtocolName(static_cast<Protocol>(i));
  }
}

TEST(StorageFateTest, HostStorageTraitMatchesThePaperAssignments) {
  // BRaft, MinBFT, HotStuff and FlexiBFT persist replica state on the host disk per their
  // papers; the TEE protocols keep durable state in sealed storage / the counter only.
  for (int i = 0; i < kNumProtocols; ++i) {
    const Protocol protocol = static_cast<Protocol>(i);
    const bool expected = protocol == Protocol::kRaft || protocol == Protocol::kMinBft ||
                          protocol == Protocol::kHotStuff ||
                          protocol == Protocol::kFlexiBft;
    EXPECT_EQ(ProtocolUsesHostStorage(protocol), expected) << ProtocolName(protocol);
  }
}

// --- Reboot recovery through the cluster ---

ClusterConfig Config(Protocol protocol, uint64_t seed = 21) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = 1;
  config.batch_size = 100;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(200);
  config.seed = seed;
  return config;
}

class RebootRecovery : public ::testing::TestWithParam<Protocol> {};

// Every protocol survives a full crash+reboot of one replica: the cluster keeps (or
// regains) liveness and no safety violation surfaces — the restored state never lets the
// node equivocate against its pre-crash self.
TEST_P(RebootRecovery, CrashedReplicaRejoinsAndClusterStaysSafe) {
  Cluster cluster(Config(GetParam()));
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  const Height before = cluster.tracker().max_committed_height();
  ASSERT_GT(before, 5u);
  cluster.CrashReplica(2);
  cluster.sim().RunFor(Ms(300));
  cluster.RebootReplica(2);
  cluster.sim().RunFor(Sec(4));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), before + 5)
      << "no progress after reboot";
  EXPECT_NE(cluster.replica(2), nullptr);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RebootRecovery,
                         ::testing::Values(Protocol::kAchilles, Protocol::kAchillesC,
                                           Protocol::kDamysus, Protocol::kDamysusR,
                                           Protocol::kOneShot, Protocol::kOneShotR,
                                           Protocol::kFlexiBft, Protocol::kRaft,
                                           Protocol::kMinBft, Protocol::kHotStuff),
                         [](const auto& param_info) {
                           std::string name = ProtocolName(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(RebootRecoveryTest, HostDiskUsageMatchesTheTrait) {
  for (int i = 0; i < kNumProtocols; ++i) {
    const Protocol protocol = static_cast<Protocol>(i);
    Cluster cluster(Config(protocol));
    cluster.Start();
    cluster.sim().RunFor(Sec(1));
    // Node 0 leads at genesis in every leader-based protocol here, so it writes whenever
    // the protocol uses the host disk at all.
    EXPECT_EQ(cluster.platform(0).host_storage().ever_written(),
              ProtocolUsesHostStorage(protocol))
        << ProtocolName(protocol);
  }
}

TEST(RebootRecoveryTest, HotStuffRestoresItsViewFromDisk) {
  Cluster cluster(Config(Protocol::kHotStuff));
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  const uint64_t view_before = cluster.replica(2)->Invariants().view;
  ASSERT_GT(view_before, 5u);
  cluster.CrashReplica(2);
  // Isolate the victim so the restored view is observable before live traffic
  // fast-forwards it again.
  cluster.net().Partition({{2}, {0, 1, 3}});
  cluster.RebootReplica(2);
  cluster.sim().RunFor(Ms(400));
  ASSERT_NE(cluster.replica(2), nullptr);
  // Persisted view survived (a volatile restart would re-enter view 1 and, isolated,
  // only reach low single digits on timeouts).
  EXPECT_GE(cluster.replica(2)->Invariants().view, view_before);
}

TEST(RebootRecoveryTest, FlexiBftLeaderRebootDoesNotReissueSequenceNumbers) {
  // The sequencer frontier is the one FlexiBFT state that must survive: a rebooted leader
  // that reissued an (epoch, seq) for a different block would fork the backups.
  Cluster cluster(Config(Protocol::kFlexiBft));
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  const Height before = cluster.tracker().max_committed_height();
  ASSERT_GT(before, 5u);
  cluster.CrashReplica(0);  // The epoch-0 leader.
  cluster.sim().RunFor(Ms(300));
  cluster.RebootReplica(0);
  cluster.sim().RunFor(Sec(4));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), before);
}

TEST(RebootRecoveryTest, FsyncShowsInTheBreakdownOnlyForStableStorageProtocols) {
  Cluster raft(Config(Protocol::kRaft));
  const RunStats raft_stats = raft.RunMeasured(Ms(500), Sec(2));
  EXPECT_GT(raft_stats.breakdown.part(obs::Component::kFsync), 0.0);

  Cluster achilles(Config(Protocol::kAchilles));
  const RunStats ach_stats = achilles.RunMeasured(Ms(500), Sec(2));
  EXPECT_EQ(ach_stats.breakdown.part(obs::Component::kFsync), 0.0);
  EXPECT_FALSE(achilles.platform(0).host_storage().ever_written());
}

// --- Honest chaos sweep with reboots everywhere ---

TEST(RebootChaosTest, HonestSweepWithForcedRebootsStaysClean) {
  chaos::ChaosOptions options;
  options.reboot_prob = 1.0;  // Every sampled script carries crash+reboot cycles.
  for (uint64_t seed = 100; seed < 120; ++seed) {  // Two full protocol round-robins.
    const chaos::ChaosResult result = chaos::RunChaosSeed(options, seed);
    EXPECT_TRUE(result.ok) << "seed " << seed << " (" << ProtocolName(result.protocol)
                           << "): " << result.violation;
  }
}

}  // namespace
}  // namespace achilles
