// Tests for the baseline protocols: Damysus(-R), OneShot(-R), FlexiBFT, Raft — plus the
// cross-protocol ordering the paper's evaluation depends on.
#include <gtest/gtest.h>

#include "src/damysus/replica.h"
#include "src/harness/cluster.h"
#include "src/oneshot/replica.h"
#include "src/raft/replica.h"

namespace achilles {
namespace {

ClusterConfig Config(Protocol protocol, uint32_t f = 1, uint64_t seed = 21) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = f;
  config.batch_size = 100;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(200);
  config.seed = seed;
  return config;
}

class ProtocolLiveness : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolLiveness, CommitsAndStaysSafe) {
  Cluster cluster(Config(GetParam()));
  cluster.Start();
  cluster.sim().RunFor(Sec(3));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 5u);
  EXPECT_GT(cluster.tracker().total_committed_txs(), 400u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolLiveness,
                         ::testing::Values(Protocol::kAchilles, Protocol::kAchillesC,
                                           Protocol::kDamysus, Protocol::kDamysusR,
                                           Protocol::kOneShot, Protocol::kOneShotR,
                                           Protocol::kFlexiBft, Protocol::kRaft),
                         [](const auto& param_info) {
                           std::string name = ProtocolName(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(DamysusTest, CounterWritesOnlyInRVariant) {
  Cluster plain(Config(Protocol::kDamysus));
  plain.Start();
  plain.sim().RunFor(Sec(1));
  EXPECT_EQ(plain.TotalCounterWrites(), 0u);

  Cluster with_r(Config(Protocol::kDamysusR));
  with_r.Start();
  with_r.sim().RunFor(Sec(1));
  EXPECT_GT(with_r.TotalCounterWrites(), 10u);
}

TEST(DamysusTest, DamysusRCounterMakesItSlow) {
  // The 20 ms counter write dominates the LAN view time: Damysus-R commits far fewer
  // blocks than plain Damysus in the same interval.
  Cluster plain(Config(Protocol::kDamysus, 1, 3));
  const RunStats fast = plain.RunMeasured(Ms(500), Sec(3));
  Cluster with_r(Config(Protocol::kDamysusR, 1, 3));
  const RunStats slow = with_r.RunMeasured(Ms(500), Sec(3));
  EXPECT_GT(fast.throughput_tps, 4.0 * slow.throughput_tps);
  EXPECT_GT(slow.commit_latency_ms, 40.0);  // >= 2 serialized counter writes.
}

TEST(DamysusTest, RollbackDetectedByCounterHaltsNode) {
  // Damysus-R: adversary serves a stale seal at reboot; the version/counter mismatch is
  // detected and the node crash-stops instead of equivocating.
  Cluster cluster(Config(Protocol::kDamysusR));
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  cluster.CrashReplica(2);
  cluster.platform(2).storage().SetRollbackMode(RollbackMode::kOldest);
  cluster.RebootReplica(2);
  cluster.sim().RunFor(Sec(1));
  auto* rebooted = dynamic_cast<DamysusReplica*>(cluster.replica(2));
  ASSERT_NE(rebooted, nullptr);
  EXPECT_TRUE(rebooted->halted());
  EXPECT_FALSE(cluster.tracker().safety_violated());
}

TEST(DamysusTest, HonestRebootRestoresFromSeal) {
  Cluster cluster(Config(Protocol::kDamysusR));
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  cluster.CrashReplica(2);
  cluster.RebootReplica(2);  // Honest OS: latest seal matches the counter.
  cluster.sim().RunFor(Sec(2));
  auto* rebooted = dynamic_cast<DamysusReplica*>(cluster.replica(2));
  ASSERT_NE(rebooted, nullptr);
  EXPECT_FALSE(rebooted->halted());
  EXPECT_GT(rebooted->current_view(), 0u);
  EXPECT_FALSE(cluster.tracker().safety_violated());
}

TEST(DamysusTest, PlainDamysusAcceptsRolledBackState) {
  // Without the counter, the rolled-back seal restores silently — the unprotected node
  // resumes from a stale trusted view. This is the §2.1 vulnerability Achilles avoids
  // without paying for a counter.
  Cluster cluster(Config(Protocol::kDamysus));
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  auto* before = dynamic_cast<DamysusReplica*>(cluster.replica(2));
  ASSERT_NE(before, nullptr);
  const View view_before_crash = before->checker()->vi();
  ASSERT_GT(view_before_crash, 4u);
  cluster.CrashReplica(2);
  cluster.platform(2).storage().SetRollbackMode(RollbackMode::kOldest);
  // Isolate the victim so we can observe the restored state before live traffic fast-
  // forwards its (untrusted-view-driven) checker again.
  cluster.net().Partition({{2}, {0, 1}});
  cluster.RebootReplica(2);
  cluster.sim().RunFor(Ms(500));
  auto* rebooted = dynamic_cast<DamysusReplica*>(cluster.replica(2));
  ASSERT_NE(rebooted, nullptr);
  ASSERT_FALSE(rebooted->halted());
  // The stale state was accepted: the trusted view regressed far below the crash view,
  // re-arming certificates the node may already have issued.
  EXPECT_LT(rebooted->checker()->vi(), view_before_crash);
}

TEST(OneShotTest, SteadyStateUsesFastPath) {
  Cluster cluster(Config(Protocol::kOneShot));
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  uint64_t fast = 0;
  uint64_t slow = 0;
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    auto* replica = dynamic_cast<OneShotReplica*>(cluster.replica(i));
    ASSERT_NE(replica, nullptr);
    fast += replica->fast_views();
    slow += replica->slow_views();
  }
  EXPECT_GT(fast, 10u);
  EXPECT_LT(slow, fast / 5 + 2);  // The slow path only bootstraps / recovers from timeouts.
}

TEST(OneShotTest, OneShotRFasterThanDamysusR) {
  // One counter write per node per view (fast path) vs two.
  Cluster oneshot(Config(Protocol::kOneShotR, 1, 4));
  const RunStats os = oneshot.RunMeasured(Ms(500), Sec(3));
  Cluster damysus(Config(Protocol::kDamysusR, 1, 4));
  const RunStats dam = damysus.RunMeasured(Ms(500), Sec(3));
  EXPECT_GT(os.throughput_tps, dam.throughput_tps);
  EXPECT_LT(os.commit_latency_ms, dam.commit_latency_ms);
}

TEST(FlexiBftTest, UsesThreeFPlusOneReplicas) {
  Cluster cluster(Config(Protocol::kFlexiBft, /*f=*/2));
  EXPECT_EQ(cluster.num_replicas(), 7u);
}

TEST(FlexiBftTest, QuadraticMessageComplexity) {
  // Messages per committed block grow ~quadratically for FlexiBFT, linearly for Achilles.
  auto msgs_per_block = [](Protocol protocol, uint32_t f) {
    Cluster cluster(Config(protocol, f, 6));
    RunStats stats = cluster.RunMeasured(Ms(500), Sec(2));
    return stats.committed_blocks > 0
               ? static_cast<double>(stats.messages) / static_cast<double>(stats.committed_blocks)
               : 0.0;
  };
  const double flexi_small = msgs_per_block(Protocol::kFlexiBft, 1);   // n = 4.
  const double flexi_large = msgs_per_block(Protocol::kFlexiBft, 3);   // n = 10.
  const double ach_small = msgs_per_block(Protocol::kAchilles, 1);     // n = 3.
  const double ach_large = msgs_per_block(Protocol::kAchilles, 4);     // n = 9 (3x).
  ASSERT_GT(flexi_small, 0.0);
  ASSERT_GT(ach_small, 0.0);
  // 2.5x nodes: vote traffic alone grows ~6.25x for FlexiBFT; Achilles stays linear.
  EXPECT_GT(flexi_large / flexi_small, 3.0);
  EXPECT_LT(ach_large / ach_small, 4.5);
}

TEST(FlexiBftTest, LeaderOnlyCounterAccess) {
  Cluster cluster(Config(Protocol::kFlexiBft, 1, 8));
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  // All counter writes happen on the (stable) leader, node 0.
  EXPECT_GT(cluster.platform(0).counter().writes(), 5u);
  for (uint32_t i = 1; i < cluster.num_replicas(); ++i) {
    EXPECT_EQ(cluster.platform(i).counter().writes(), 0u) << "node " << i;
  }
}

TEST(FlexiBftTest, SurvivesLeaderCrash) {
  Cluster cluster(Config(Protocol::kFlexiBft, 1, 9));
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  const Height before = cluster.tracker().max_committed_height();
  ASSERT_GT(before, 0u);
  cluster.CrashReplica(0);  // The stable leader.
  cluster.sim().RunFor(Sec(4));
  EXPECT_GT(cluster.tracker().max_committed_height(), before);
  EXPECT_FALSE(cluster.tracker().safety_violated());
}

TEST(RaftTest, LeaderElectionAfterCrash) {
  Cluster cluster(Config(Protocol::kRaft, 1, 10));
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  const Height before = cluster.tracker().max_committed_height();
  ASSERT_GT(before, 0u);
  cluster.CrashReplica(0);  // Initial leader.
  cluster.sim().RunFor(Sec(4));
  EXPECT_GT(cluster.tracker().max_committed_height(), before + 5);
  // Exactly one of the survivors is leader.
  int leaders = 0;
  for (uint32_t i = 1; i < cluster.num_replicas(); ++i) {
    auto* replica = dynamic_cast<RaftReplica*>(cluster.replica(i));
    ASSERT_NE(replica, nullptr);
    if (replica->role() == RaftReplica::Role::kLeader) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);
}

TEST(RaftTest, NoCryptoNoCounters) {
  Cluster cluster(Config(Protocol::kRaft));
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  EXPECT_EQ(cluster.TotalCounterWrites(), 0u);
}

TEST(CrossProtocolTest, LanThroughputOrderingMatchesPaper) {
  // Fig. 3c's ordering: Achilles >> FlexiBFT > OneShot-R > Damysus-R in LAN with the
  // paper's 20 ms counter.
  auto tput = [](Protocol protocol) {
    Cluster cluster(Config(protocol, 1, 12));
    return cluster.RunMeasured(Ms(500), Sec(3)).throughput_tps;
  };
  const double achilles = tput(Protocol::kAchilles);
  const double flexi = tput(Protocol::kFlexiBft);
  const double oneshot = tput(Protocol::kOneShotR);
  const double damysus = tput(Protocol::kDamysusR);
  EXPECT_GT(achilles, flexi);
  EXPECT_GT(flexi, oneshot);
  EXPECT_GT(oneshot, damysus);
  EXPECT_GT(achilles, 5.0 * damysus);
}

}  // namespace
}  // namespace achilles
