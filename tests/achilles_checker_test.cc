// Unit tests for the Achilles trusted components (Algorithms 2 and 3), including the
// equivocation loopholes and the §4.5 recovery attack.
#include <gtest/gtest.h>

#include <memory>

#include "src/achilles/checker.h"
#include "src/harness/cluster.h"

namespace achilles {
namespace {

// A small cluster of checkers sharing one suite, each on its own host/platform.
class CheckerFixture : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 5;
  static constexpr uint32_t kF = 2;

  CheckerFixture() : sim_(3), suite_(SignatureScheme::kFastHmac, kN, 17) {
    for (uint32_t i = 0; i < kN; ++i) {
      hosts_.push_back(std::make_unique<Host>(&sim_, i));
      platforms_.push_back(std::make_unique<NodePlatform>(
          hosts_.back().get(), &suite_, CostModel::Default(), TeeConfig{}, 5));
      enclaves_.push_back(std::make_unique<EnclaveRuntime>(platforms_.back().get()));
      checkers_.push_back(
          std::make_unique<AchillesChecker>(enclaves_.back().get(), kN, kF, true));
    }
  }

  // Brings every checker into view `v` and returns their NEW-VIEW certs for it.
  std::vector<SignedCert> EnterView(View v) {
    std::vector<SignedCert> certs;
    for (auto& checker : checkers_) {
      auto cert = checker->TeeView(v);
      if (cert) {
        certs.push_back(*cert);
      }
    }
    return certs;
  }

  BlockPtr MakeChild(const BlockPtr& parent, View v) {
    return Block::Create(v, parent, {}, 0);
  }

  Simulation sim_;
  CryptoSuite suite_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<NodePlatform>> platforms_;
  std::vector<std::unique_ptr<EnclaveRuntime>> enclaves_;
  std::vector<std::unique_ptr<AchillesChecker>> checkers_;
};

TEST_F(CheckerFixture, InitialStateIsGenesisView0) {
  EXPECT_EQ(checkers_[0]->vi(), 0u);
  EXPECT_EQ(checkers_[0]->prepv(), 0u);
  EXPECT_EQ(checkers_[0]->preph(), Block::Genesis()->hash);
  EXPECT_FALSE(checkers_[0]->recovering());
}

TEST_F(CheckerFixture, TeeViewAdvancesAndRefusesBackward) {
  auto cert = checkers_[0]->TeeView(3);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(checkers_[0]->vi(), 3u);
  EXPECT_EQ(cert->aux, 3u);                           // Target view.
  EXPECT_EQ(cert->hash, Block::Genesis()->hash);      // preph.
  EXPECT_FALSE(checkers_[0]->TeeView(3).has_value()); // Not strictly greater.
  EXPECT_FALSE(checkers_[0]->TeeView(2).has_value());
}

TEST_F(CheckerFixture, AccumulatorPicksHighestView) {
  // Leader of view 1 is node 1.
  auto certs = EnterView(1);
  auto acc = checkers_[1]->TeeAccum(certs);
  ASSERT_TRUE(acc.has_value());
  EXPECT_EQ(acc->hash, Block::Genesis()->hash);
  EXPECT_EQ(acc->block_view, 0u);
  EXPECT_EQ(acc->current_view, 1u);
  EXPECT_EQ(acc->ids.size(), kN);
}

TEST_F(CheckerFixture, AccumulatorRejectsWrongViewAndDuplicates) {
  auto certs = EnterView(1);
  // Node 2 stays at view 1, certs claim view 1 but accumulator at view 2 must reject.
  checkers_[1]->TeeView(2);
  EXPECT_FALSE(checkers_[1]->TeeAccum(certs).has_value());

  // Fresh round at view 2 for everyone.
  std::vector<SignedCert> certs2;
  for (uint32_t i = 0; i != kN; ++i) {
    if (i == 1) {
      continue;  // Node 1 already advanced.
    }
    certs2.push_back(*checkers_[i]->TeeView(2));
  }
  // Leader of view 2 is node 2... use node 2's checker after advancing it.
  // Duplicate signers must be rejected.
  std::vector<SignedCert> dup = {certs2[0], certs2[0], certs2[1]};
  EXPECT_FALSE(checkers_[2]->TeeAccum(dup).has_value());
  // Too few certificates.
  std::vector<SignedCert> tiny = {certs2[0], certs2[1]};
  EXPECT_FALSE(checkers_[2]->TeeAccum(tiny).has_value());
  // A proper set works.
  EXPECT_TRUE(checkers_[2]->TeeAccum(certs2).has_value());
}

TEST_F(CheckerFixture, PrepareOncePerViewViaFlag) {
  auto certs = EnterView(1);
  auto acc = checkers_[1]->TeeAccum(certs);
  ASSERT_TRUE(acc.has_value());
  const BlockPtr b1 = MakeChild(Block::Genesis(), 1);
  const BlockPtr b2 = Block::Create(1, Block::Genesis(),
                                    {Transaction{Transaction::MakeId(1, 1), 0, 8}}, 0);
  ASSERT_TRUE(checkers_[1]->TeePrepare(*b1, *acc).has_value());
  // Equivocation attempt: second block in the same view, even with the same accumulator.
  EXPECT_FALSE(checkers_[1]->TeePrepare(*b2, *acc).has_value());
}

TEST_F(CheckerFixture, ProposeStoreProposeLoopholeClosed) {
  // A leader that proposes, stores its own block, and tries to propose again in the same
  // view must be refused: TeeStore at the same view must not reset the flag.
  auto certs = EnterView(1);
  auto acc = checkers_[1]->TeeAccum(certs);
  const BlockPtr b1 = MakeChild(Block::Genesis(), 1);
  auto prop = checkers_[1]->TeePrepare(*b1, *acc);
  ASSERT_TRUE(prop.has_value());
  ASSERT_TRUE(checkers_[1]->TeeStore(*prop).has_value());
  const BlockPtr b2 = Block::Create(1, Block::Genesis(),
                                    {Transaction{Transaction::MakeId(7, 7), 0, 8}}, 0);
  EXPECT_FALSE(checkers_[1]->TeePrepare(*b2, *acc).has_value());
}

TEST_F(CheckerFixture, PrepareRejectsForeignOrStaleAccumulator) {
  auto certs = EnterView(1);
  auto acc = checkers_[1]->TeeAccum(certs);
  ASSERT_TRUE(acc.has_value());
  const BlockPtr b = MakeChild(Block::Genesis(), 1);
  // Accumulator produced by node 1 cannot be used by node 2's checker.
  checkers_[2]->TeeView(1);  // Hmm: node 2 is already at view 1 from EnterView.
  EXPECT_FALSE(checkers_[2]->TeePrepare(*b, *acc).has_value());
  // Stale accumulator: leader advanced a view.
  checkers_[1]->TeeView(5);
  EXPECT_FALSE(checkers_[1]->TeePrepare(*b, *acc).has_value());
}

TEST_F(CheckerFixture, PrepareRejectsWrongParent) {
  auto certs = EnterView(1);
  auto acc = checkers_[1]->TeeAccum(certs);
  const BlockPtr stranger = MakeChild(Block::Genesis(), 1);
  const BlockPtr child_of_stranger = MakeChild(stranger, 1);
  EXPECT_FALSE(checkers_[1]->TeePrepare(*child_of_stranger, *acc).has_value());
}

TEST_F(CheckerFixture, StoreValidatesLeaderAndFreshness) {
  auto certs = EnterView(1);
  auto acc = checkers_[1]->TeeAccum(certs);
  const BlockPtr b = MakeChild(Block::Genesis(), 1);
  auto prop = checkers_[1]->TeePrepare(*b, *acc);
  ASSERT_TRUE(prop.has_value());

  // Correct backup stores it and reports the new (prepv, preph).
  auto store = checkers_[0]->TeeStore(*prop);
  ASSERT_TRUE(store.has_value());
  EXPECT_EQ(checkers_[0]->prepv(), 1u);
  EXPECT_EQ(checkers_[0]->preph(), b->hash);
  EXPECT_EQ(store->view, 1u);

  // A certificate whose signer is not the leader of its view is rejected: node 2 at view 2.
  SignedCert forged = *prop;
  forged.view = 2;  // Signature no longer matches; also signer 1 != leader(2).
  EXPECT_FALSE(checkers_[0]->TeeStore(forged).has_value());

  // Stale: checker moved past the certificate's view.
  checkers_[0]->TeeView(9);
  EXPECT_FALSE(checkers_[0]->TeeStore(*prop).has_value());
}

TEST_F(CheckerFixture, StoreAdvancingViewResetsProposalFlag) {
  auto certs = EnterView(1);
  auto acc = checkers_[1]->TeeAccum(certs);
  const BlockPtr b = MakeChild(Block::Genesis(), 1);
  auto prop = checkers_[1]->TeePrepare(*b, *acc);
  ASSERT_TRUE(prop.has_value());
  ASSERT_TRUE(checkers_[0]->TeeStore(*prop).has_value());
  EXPECT_EQ(checkers_[0]->vi(), 1u);
  EXPECT_FALSE(checkers_[0]->proposed_flag());
}

TEST_F(CheckerFixture, CommitPathPrepareAdvancesView) {
  // Build a commitment certificate for view 1 from store certs.
  auto certs = EnterView(1);
  auto acc = checkers_[1]->TeeAccum(certs);
  const BlockPtr b = MakeChild(Block::Genesis(), 1);
  auto prop = checkers_[1]->TeePrepare(*b, *acc);
  QuorumCert commit;
  commit.hash = b->hash;
  commit.view = 1;
  for (uint32_t i = 0; i < kF + 1; ++i) {
    auto store = checkers_[i]->TeeStore(*prop);
    ASSERT_TRUE(store.has_value());
    commit.sigs.push_back(store->sig);
  }
  // Leader of view 2 (node 2) proposes directly from the commitment certificate.
  const BlockPtr b2 = MakeChild(b, 2);
  auto prop2 = checkers_[2]->TeePrepare(*b2, commit);
  ASSERT_TRUE(prop2.has_value());
  EXPECT_EQ(checkers_[2]->vi(), 2u);
  EXPECT_EQ(prop2->view, 2u);
  // And cannot propose twice in view 2.
  const BlockPtr b2x = Block::Create(2, b, {Transaction{1, 0, 1}}, 0);
  EXPECT_FALSE(checkers_[2]->TeePrepare(*b2x, commit).has_value());
}

TEST_F(CheckerFixture, CommitPathRejectsBadQuorum) {
  auto certs = EnterView(1);
  auto acc = checkers_[1]->TeeAccum(certs);
  const BlockPtr b = MakeChild(Block::Genesis(), 1);
  auto prop = checkers_[1]->TeePrepare(*b, *acc);
  QuorumCert commit;
  commit.hash = b->hash;
  commit.view = 1;
  auto store = checkers_[0]->TeeStore(*prop);
  commit.sigs.push_back(store->sig);  // Only one signature: below quorum.
  const BlockPtr b2 = MakeChild(b, 2);
  EXPECT_FALSE(checkers_[2]->TeePrepare(*b2, commit).has_value());
}

// --- Recovery (Algorithm 3) ---

class RecoveryFixture : public CheckerFixture {
 protected:
  // Rebuilds checker `i` as a rebooted (recovering) instance.
  void Reboot(uint32_t i) {
    enclaves_[i] = std::make_unique<EnclaveRuntime>(platforms_[i].get());
    checkers_[i] = std::make_unique<AchillesChecker>(enclaves_[i].get(), kN, kF, false);
  }

  std::vector<SignedCert> GatherReplies(const SignedCert& request, uint32_t requester,
                                        const std::vector<uint32_t>& responders) {
    std::vector<SignedCert> replies;
    for (uint32_t r : responders) {
      auto reply = checkers_[r]->TeeReply(request, requester);
      if (reply) {
        replies.push_back(*reply);
      }
    }
    return replies;
  }
};

TEST_F(RecoveryFixture, RecoveringCheckerRefusesEverything) {
  Reboot(0);
  EXPECT_TRUE(checkers_[0]->recovering());
  EXPECT_FALSE(checkers_[0]->TeeView(1).has_value());
  auto req = checkers_[1]->TeeRequest();
  EXPECT_FALSE(req.has_value());  // Active checker cannot create recovery requests...
  auto req0 = checkers_[0]->TeeRequest();
  ASSERT_TRUE(req0.has_value());  // ...but the recovering one can.
  // And the recovering checker must not answer others' requests.
  Reboot(2);
  auto req2 = checkers_[2]->TeeRequest();
  ASSERT_TRUE(req2.has_value());
  EXPECT_FALSE(checkers_[0]->TeeReply(*req2, 2).has_value());
}

TEST_F(RecoveryFixture, SuccessfulRecoveryJumpsTwoViews) {
  // Everyone reaches view 6 (leader of view 6 on 5 nodes is node 1).
  EnterView(6);
  Reboot(0);
  auto req = checkers_[0]->TeeRequest();
  ASSERT_TRUE(req.has_value());
  auto replies = GatherReplies(*req, 0, {1, 2, 3});
  ASSERT_EQ(replies.size(), 3u);
  // Highest-view reply (all are view 6) must be from leader(6) = node 1 -> replies[0].
  auto view_cert = checkers_[0]->TeeRecover(replies[0], replies);
  ASSERT_TRUE(view_cert.has_value());
  EXPECT_FALSE(checkers_[0]->recovering());
  EXPECT_EQ(checkers_[0]->vi(), 8u);  // v' + 2.
  EXPECT_EQ(view_cert->aux, 8u);
}

TEST_F(RecoveryFixture, HighestViewMustComeFromItsLeader) {
  // The §4.5 attack shape: the freshest reply does NOT come from the leader of its view.
  // Views: node 2,3,4 at view 7 (leader(7) = node 2), node 3 individually at view 9
  // (leader(9) = node 4, not node 3!). The set whose max view comes from node 3 must fail.
  checkers_[2]->TeeView(7);
  checkers_[3]->TeeView(9);
  checkers_[4]->TeeView(7);
  Reboot(0);
  auto req = checkers_[0]->TeeRequest();
  auto replies = GatherReplies(*req, 0, {2, 3, 4});
  ASSERT_EQ(replies.size(), 3u);
  const SignedCert& highest = replies[1];  // Node 3's reply, view 9.
  ASSERT_EQ(highest.aux, 9u);
  EXPECT_FALSE(checkers_[0]->TeeRecover(highest, replies).has_value());
  // Choosing a lower reply as "leader reply" must also fail (not the max).
  EXPECT_FALSE(checkers_[0]->TeeRecover(replies[0], replies).has_value());
}

TEST_F(RecoveryFixture, NonceProtectsAgainstReplayedReplies) {
  EnterView(6);
  Reboot(0);
  auto req1 = checkers_[0]->TeeRequest();
  auto stale = GatherReplies(*req1, 0, {1, 2, 3});
  // A second request supersedes the first; old replies must be rejected.
  auto req2 = checkers_[0]->TeeRequest();
  ASSERT_NE(req1->aux, req2->aux);
  EXPECT_FALSE(checkers_[0]->TeeRecover(stale[0], stale).has_value());
  auto fresh = GatherReplies(*req2, 0, {1, 2, 3});
  EXPECT_TRUE(checkers_[0]->TeeRecover(fresh[0], fresh).has_value());
}

TEST_F(RecoveryFixture, RepliesBoundToRequester) {
  EnterView(6);
  Reboot(0);
  Reboot(4);
  auto req0 = checkers_[0]->TeeRequest();
  auto req4 = checkers_[4]->TeeRequest();
  // Node 4 must not be able to use replies addressed to node 0 (domain binding).
  auto replies_for_0 = GatherReplies(*req0, 0, {1, 2, 3});
  EXPECT_FALSE(checkers_[4]->TeeRecover(replies_for_0[0], replies_for_0).has_value());
  (void)req4;
}

TEST_F(RecoveryFixture, QuorumRequired) {
  EnterView(6);
  Reboot(0);
  auto req = checkers_[0]->TeeRequest();
  auto replies = GatherReplies(*req, 0, {1, 2});
  ASSERT_EQ(replies.size(), 2u);  // f+1 = 3 needed.
  EXPECT_FALSE(checkers_[0]->TeeRecover(replies[0], replies).has_value());
}

TEST_F(RecoveryFixture, NoEquivocationAfterRecovery) {
  // A node that stored/voted in view 6 then crashed must never vote in view 6 again.
  EnterView(6);
  // Node 1 is leader of view 6: propose and let node 0 store (vote).
  auto certs = EnterView(7);  // Move everyone to 7... simpler: drive a proposal at view 7.
  auto acc = checkers_[2]->TeeAccum(certs);  // leader(7) = node 2.
  ASSERT_TRUE(acc.has_value());
  const BlockPtr b = MakeChild(Block::Genesis(), 7);
  auto prop = checkers_[2]->TeePrepare(*b, *acc);
  ASSERT_TRUE(prop.has_value());
  ASSERT_TRUE(checkers_[0]->TeeStore(*prop).has_value());  // Node 0 votes in view 7.
  Reboot(0);
  auto req = checkers_[0]->TeeRequest();
  auto replies = GatherReplies(*req, 0, {2, 3, 4});
  // Highest view among replies is 7 from node 2 = leader(7). Recovery succeeds...
  auto view_cert = checkers_[0]->TeeRecover(replies[0], replies);
  ASSERT_TRUE(view_cert.has_value());
  // ...and the node lands past view 7, so a replayed proposal for view 7 is unstorable.
  EXPECT_GE(checkers_[0]->vi(), 8u);
  EXPECT_FALSE(checkers_[0]->TeeStore(*prop).has_value());
}

}  // namespace
}  // namespace achilles
