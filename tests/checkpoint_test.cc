// Tests for the checkpoint subsystem (src/checkpoint): certificate primitives and codecs,
// stable-checkpoint formation + log compaction through a live cluster, snapshot-based
// state transfer for lagging rejoiners, and the sealed-certificate rollback floor across
// adversarial snapshot fates.
#include <gtest/gtest.h>

#include "src/checkpoint/checkpoint.h"
#include "src/checkpoint/manager.h"
#include "src/harness/cluster.h"
#include "src/obs/journal.h"

namespace achilles {
namespace {

using checkpoint::CheckpointCert;
using checkpoint::CheckpointDigest;
using checkpoint::SnapshotFate;

BlockPtr MakeChain(Height height) {
  BlockPtr block = Block::Genesis();
  for (Height h = 1; h <= height; ++h) {
    block = Block::Create(1, block, {Transaction{h, 0, 16, 0}}, 0);
  }
  return block;
}

CheckpointCert MakeCert(const CryptoSuite& suite, const BlockPtr& block, size_t signers) {
  CheckpointCert cert;
  cert.height = block->height;
  cert.block_hash = block->hash;
  cert.digest = CheckpointDigest(*block);
  const Bytes msg = cert.SigningDigest();
  for (uint32_t i = 0; i < signers; ++i) {
    cert.sigs.push_back(suite.Sign(i, ByteView(msg.data(), msg.size())));
  }
  return cert;
}

// --- Certificate primitives ---

TEST(CheckpointCertTest, DigestIsDeterministicAndSensitive) {
  const BlockPtr a = MakeChain(4);
  EXPECT_EQ(CheckpointDigest(*a), CheckpointDigest(*a));
  const BlockPtr b = MakeChain(5);
  EXPECT_NE(CheckpointDigest(*a), CheckpointDigest(*b));
}

TEST(CheckpointCertTest, VerifyNeedsAQuorumOfDistinctValidSigners) {
  const CryptoSuite suite(SignatureScheme::kFastHmac, 5, 42);
  const BlockPtr block = MakeChain(8);
  const CheckpointCert cert = MakeCert(suite, block, 3);
  EXPECT_TRUE(cert.Verify(suite, 3));
  EXPECT_FALSE(cert.Verify(suite, 4));  // Quorum short by one.
  CheckpointCert dup = cert;
  dup.sigs[2] = dup.sigs[0];  // Duplicate signer: still only 2 distinct.
  EXPECT_FALSE(dup.Verify(suite, 3));
  CheckpointCert forged = cert;
  forged.height += 1;  // Signatures no longer cover the claimed height.
  EXPECT_FALSE(forged.Verify(suite, 3));
}

TEST(CheckpointCertTest, EncodeDecodeRoundTrips) {
  const CryptoSuite suite(SignatureScheme::kFastHmac, 5, 42);
  const CheckpointCert cert = MakeCert(suite, MakeChain(16), 3);
  const Bytes wire = cert.Encode();
  const std::optional<CheckpointCert> back =
      CheckpointCert::Decode(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->height, cert.height);
  EXPECT_EQ(back->block_hash, cert.block_hash);
  EXPECT_EQ(back->digest, cert.digest);
  ASSERT_EQ(back->sigs.size(), cert.sigs.size());
  EXPECT_TRUE(back->Verify(suite, 3));
  EXPECT_FALSE(CheckpointCert::Decode(ByteView(wire.data(), wire.size() / 2)).has_value());
}

TEST(CheckpointCertTest, SnapshotRecordRoundTripsAndRejectsCorruption) {
  const CryptoSuite suite(SignatureScheme::kFastHmac, 5, 42);
  const BlockPtr block = MakeChain(8);
  const CheckpointCert cert = MakeCert(suite, block, 3);
  const Bytes record = checkpoint::EncodeSnapshotRecord(cert, *block);
  CheckpointCert back_cert;
  BlockPtr back_block;
  ASSERT_TRUE(checkpoint::DecodeSnapshotRecord(ByteView(record.data(), record.size()),
                                               &back_cert, &back_block));
  ASSERT_NE(back_block, nullptr);
  EXPECT_EQ(back_block->hash, block->hash);
  EXPECT_EQ(back_cert.height, cert.height);
  EXPECT_EQ(CheckpointDigest(*back_block), back_cert.digest);
  // Flip one byte anywhere in the record: the full acceptance predicate (codec, digest
  // binding, and quorum verification) must reject it — no matter whether the flip landed
  // in the cert header, a signature, or the block body.
  for (const size_t pos : {size_t{4}, record.size() / 2, record.size() - 4}) {
    Bytes mangled = record;
    mangled[pos] ^= 0x5a;
    const bool decoded = checkpoint::DecodeSnapshotRecord(
        ByteView(mangled.data(), mangled.size()), &back_cert, &back_block);
    const bool accepted = decoded && back_block != nullptr &&
                          back_block->hash == back_cert.block_hash &&
                          CheckpointDigest(*back_block) == back_cert.digest &&
                          back_cert.Verify(suite, 3);
    EXPECT_FALSE(accepted) << "flip at byte " << pos << " survived every check";
  }
}

// --- Cluster integration ---

ClusterConfig CkptConfig(Protocol protocol, Height interval, uint64_t seed) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = 1;
  config.batch_size = 100;
  config.payload_size = 32;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(250);
  config.client_rate_tps = 2000.0;
  config.seed = seed;
  config.ckpt.enabled = true;
  config.ckpt.interval = interval;
  return config;
}

TEST(CheckpointClusterTest, ManagerIsNullUnlessEnabled) {
  ClusterConfig config;
  config.protocol = Protocol::kRaft;
  Cluster cluster(config);
  EXPECT_EQ(cluster.checkpoint_manager(), nullptr);
}

TEST(CheckpointClusterTest, StableCheckpointsFormAndCompactTheLog) {
  // Twin runs, same seed: checkpointing must bound the retained log well below the
  // no-compaction baseline at the same virtual time.
  uint64_t retained_on = 0;
  uint64_t retained_off = 0;
  for (const bool enabled : {false, true}) {
    ClusterConfig config = CkptConfig(Protocol::kRaft, 8, 77);
    config.ckpt.enabled = enabled;
    Cluster cluster(config);
    cluster.RunMeasured(Ms(500), Sec(2));
    uint64_t retained = 0;
    for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
      retained += cluster.platform(i).host_storage().TotalWalRecords();
    }
    if (enabled) {
      retained_on = retained;
      checkpoint::CheckpointManager* mgr = cluster.checkpoint_manager();
      ASSERT_NE(mgr, nullptr);
      EXPECT_GT(mgr->checkpoints_assembled(), 0u);
      EXPECT_GT(mgr->votes_cast(), 0u);
      EXPECT_GT(mgr->latest_stable(), 0u);
      for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
        EXPECT_GT(mgr->last_stable(i), 0u) << "replica " << i << " never went stable";
      }
    } else {
      retained_off = retained;
    }
  }
  EXPECT_LT(retained_on, retained_off / 2)
      << "compaction retained " << retained_on << " records vs " << retained_off
      << " without";
}

TEST(CheckpointClusterTest, LaggardRejoinsViaSnapshotTransfer) {
  ClusterConfig config = CkptConfig(Protocol::kRaft, 8, 78);
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Ms(500));
  const uint32_t victim = cluster.num_replicas() - 1;
  cluster.CrashReplica(victim);
  cluster.sim().RunFor(Ms(1500));  // Far past catchup_intervals * interval = 16 heights.
  const Height frontier = cluster.replica(0)->last_committed_height();
  ASSERT_GT(frontier, 16u);
  cluster.RebootReplica(victim);
  cluster.sim().RunFor(Sec(2));
  EXPECT_GE(cluster.checkpoint_manager()->snapshot_adopts(), 1u);
  const ReplicaBase* rep = cluster.replica(victim);
  ASSERT_NE(rep, nullptr);
  EXPECT_GE(rep->last_committed_height(), frontier);
  EXPECT_GT(rep->checkpoint_floor(), 0u);  // The adopted cert raised the rollback floor.
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
}

TEST(CheckpointClusterTest, CorruptSnapshotIsRejectedOnReboot) {
  // MinBFT keeps trusted components in a TEE, so the certificate is sealed and the
  // corrupted host snapshot must be detected and dropped (network transfer instead).
  ClusterConfig config = CkptConfig(Protocol::kMinBft, 8, 79);
  config.journaling = true;
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  const uint32_t victim = cluster.num_replicas() - 1;
  ASSERT_GT(cluster.checkpoint_manager()->last_stable(victim), 0u);
  cluster.CrashReplica(victim);
  cluster.checkpoint_manager()->ApplySnapshotFate(victim, SnapshotFate::kCorrupt);
  cluster.RebootReplica(victim);
  cluster.sim().RunFor(Sec(2));
  bool rejected = false;
  for (const obs::JournalRecord& r : cluster.journal().NodeEvents(victim)) {
    if (r.kind == obs::JournalKind::kRollbackReject && r.detail == "ckpt/corrupt-snapshot") {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected) << "corrupt snapshot was not rejected";
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
}

TEST(CheckpointClusterTest, StaleSnapshotUnderASealedCertIsRejected) {
  ClusterConfig config = CkptConfig(Protocol::kMinBft, 8, 80);
  config.journaling = true;
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Sec(3));  // Long enough to retain several boundary snapshots.
  const uint32_t victim = cluster.num_replicas() - 1;
  ASSERT_GT(cluster.checkpoint_manager()->last_stable(victim), 8u);
  cluster.CrashReplica(victim);
  // The adversarial host resurrects the oldest retained snapshot; the sealed certificate
  // still names the newer one, so the replica must refuse the rollback.
  cluster.checkpoint_manager()->ApplySnapshotFate(victim, SnapshotFate::kStale);
  cluster.RebootReplica(victim);
  cluster.sim().RunFor(Sec(2));
  bool rejected = false;
  for (const obs::JournalRecord& r : cluster.journal().NodeEvents(victim)) {
    if (r.kind == obs::JournalKind::kRollbackReject && r.detail == "ckpt/stale-snapshot") {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected) << "stale snapshot was accepted under a fresher sealed cert";
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
}

TEST(CheckpointClusterTest, ErasedSnapshotFallsBackToNetworkTransfer) {
  ClusterConfig config = CkptConfig(Protocol::kRaft, 8, 81);
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  const uint32_t victim = cluster.num_replicas() - 1;
  cluster.CrashReplica(victim);
  cluster.sim().RunFor(Ms(1500));
  const Height frontier = cluster.replica(0)->last_committed_height();
  cluster.checkpoint_manager()->ApplySnapshotFate(victim, SnapshotFate::kErased);
  cluster.RebootReplica(victim);
  cluster.sim().RunFor(Sec(2));
  const ReplicaBase* rep = cluster.replica(victim);
  ASSERT_NE(rep, nullptr);
  EXPECT_GE(rep->last_committed_height(), frontier);
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
}

}  // namespace
}  // namespace achilles
