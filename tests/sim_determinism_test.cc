// Dual-engine digest-equivalence suite (DESIGN.md §2.21).
//
// The event-queue engines (calendar vs reference heap) promise the exact same dequeue
// order — (time, seq) — so a whole chaos run must be bit-identical under either engine:
// same event log, same flight-recorder journal, same client-observed KV history, digest
// for digest. This suite sweeps >= 100 seeds through full adversarial chaos runs (crash,
// reboot, partition, rollback attacks, checkpoint/snapshot fates; seeds round-robin over
// all ten protocols) under both engines and compares every digest, then re-runs a sample
// of seeds to pin replay stability (same seed + same engine => same digests).
//
// This is the lock on the simulator hot path: any engine divergence — a mis-ordered
// bucket, a dropped tie-break, a cancel that resurrects — shows up here as a digest
// mismatch long before anyone reads a benchmark number.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/chaos/runner.h"
#include "src/harness/cluster.h"

namespace achilles {
namespace {

// Reboot/checkpoint-weighted options: the recovery paths (WAL replay, snapshot state
// transfer, sealed-state restore) schedule the gnarliest event patterns — far-future
// timeouts, cancelled retransmits, reboot closures — which is exactly where engine
// divergence would hide.
chaos::ChaosOptions SweepOptions(SimEngine engine, bool app_kv) {
  chaos::ChaosOptions options;
  options.engine = engine;
  options.journal = true;       // The journal digest fingerprints replica internals.
  options.reboot_prob = 0.85;
  options.ckpt_prob = 0.5;
  options.app_kv = app_kv;
  return options;
}

void ExpectSameRun(const chaos::ChaosResult& a, const chaos::ChaosResult& b,
                   uint64_t seed) {
  ASSERT_EQ(a.ok, b.ok) << "seed " << seed;
  ASSERT_EQ(a.violation, b.violation) << "seed " << seed;
  ASSERT_EQ(a.final_height, b.final_height) << "seed " << seed;
  ASSERT_EQ(a.log_digest_hex, b.log_digest_hex)
      << "seed " << seed << " (" << ProtocolName(a.protocol) << ", f=" << a.f
      << "): event-log digest diverged between engines";
  ASSERT_EQ(a.journal_digest_hex, b.journal_digest_hex)
      << "seed " << seed << ": journal digest diverged";
  ASSERT_EQ(a.history_digest_hex, b.history_digest_hex)
      << "seed " << seed << ": KV history digest diverged";
}

TEST(SimDeterminismTest, HundredSeedDualEngineSweepIsDigestIdentical) {
  // 100 seeds round-robin over all ten protocols: every protocol sees ten distinct
  // adversarial schedules under both engines.
  for (uint64_t seed = 0; seed < 100; ++seed) {
    const chaos::ChaosResult cal =
        chaos::RunChaosSeed(SweepOptions(SimEngine::kCalendar, /*app_kv=*/false), seed);
    const chaos::ChaosResult heap =
        chaos::RunChaosSeed(SweepOptions(SimEngine::kHeap, /*app_kv=*/false), seed);
    ExpectSameRun(cal, heap, seed);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST(SimDeterminismTest, KvAppDualEngineSweepIsDigestIdentical) {
  // With the replicated KV app on, the client-observed history digest joins the compare:
  // engine divergence that only shifts app-level interleavings is still caught.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const chaos::ChaosResult cal =
        chaos::RunChaosSeed(SweepOptions(SimEngine::kCalendar, /*app_kv=*/true), seed);
    const chaos::ChaosResult heap =
        chaos::RunChaosSeed(SweepOptions(SimEngine::kHeap, /*app_kv=*/true), seed);
    ASSERT_FALSE(cal.history_digest_hex.empty()) << "seed " << seed;
    ExpectSameRun(cal, heap, seed);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST(SimDeterminismTest, ReplayIsDigestStableOnBothEngines) {
  // Same seed + same engine twice => bit-identical run. This is the --replay property
  // chaos_main checks; here it pins both engines, not just the production one.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    for (const SimEngine engine : {SimEngine::kCalendar, SimEngine::kHeap}) {
      const chaos::ChaosOptions options = SweepOptions(engine, /*app_kv=*/false);
      const chaos::ChaosResult first = chaos::RunChaosSeed(options, seed);
      const chaos::ChaosResult second = chaos::RunChaosSeed(options, seed);
      ExpectSameRun(first, second, seed);
      if (HasFatalFailure()) {
        return;
      }
    }
  }
}

TEST(SimDeterminismTest, ScriptReplayMatchesSeedRunAcrossEngines) {
  // Replaying the *artifact* (explicit script) under the opposite engine still lands on
  // the original digests — the reproducer a failing CI run uploads is engine-agnostic.
  const chaos::ChaosOptions cal_options = SweepOptions(SimEngine::kCalendar, false);
  for (uint64_t seed = 3; seed < 23; seed += 5) {
    const chaos::ChaosResult original = chaos::RunChaosSeed(cal_options, seed);
    chaos::ChaosOptions heap_options = SweepOptions(SimEngine::kHeap, false);
    const chaos::ChaosResult replay = chaos::RunChaosScript(
        heap_options, seed, original.protocol, original.f, original.script);
    ExpectSameRun(original, replay, seed);
    if (HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace achilles
