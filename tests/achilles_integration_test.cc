// End-to-end protocol tests for Achilles on the simulated cluster: normal-case progress,
// view changes under crashes, rollback-resilient recovery, and determinism.
#include <gtest/gtest.h>

#include "src/achilles/replica.h"
#include "src/harness/cluster.h"

namespace achilles {
namespace {

ClusterConfig BaseConfig(uint32_t f = 1, uint64_t seed = 42) {
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = f;
  config.batch_size = 100;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(100);
  config.seed = seed;
  return config;
}

AchillesReplica* AsAchilles(ReplicaBase* replica) {
  return dynamic_cast<AchillesReplica*>(replica);
}

TEST(AchillesIntegrationTest, HappyPathCommitsTransactions) {
  Cluster cluster(BaseConfig());
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 20u);
  EXPECT_GT(cluster.tracker().total_committed_txs(), 1000u);
}

TEST(AchillesIntegrationTest, AllReplicasConverge) {
  Cluster cluster(BaseConfig());
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  const Height max_height = cluster.tracker().max_committed_height();
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    EXPECT_GE(cluster.tracker().committed_height(i) + 5, max_height) << "replica " << i;
  }
}

TEST(AchillesIntegrationTest, ZeroCounterWrites) {
  // The headline property: Achilles never touches a persistent counter.
  Cluster cluster(BaseConfig());
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  EXPECT_EQ(cluster.TotalCounterWrites(), 0u);
}

TEST(AchillesIntegrationTest, CommitLatencyTracksWanRtt) {
  ClusterConfig config = BaseConfig();
  config.net = NetworkConfig::Wan();
  config.base_timeout = Ms(500);
  Cluster cluster(config);
  const RunStats stats = cluster.RunMeasured(Sec(2), Sec(4));
  EXPECT_TRUE(stats.safety_ok);
  EXPECT_GT(stats.throughput_tps, 100.0);
  // One-phase commit: proposal + vote ~= 1 RTT = 40 ms; decide delivery adds ~a half RTT.
  EXPECT_GT(stats.commit_latency_ms, 35.0);
  EXPECT_LT(stats.commit_latency_ms, 150.0);
}

TEST(AchillesIntegrationTest, ProgressDespiteCrashedMinority) {
  // With n = 2f+1 = 5 and f = 2 crashed replicas, the remaining f+1 = 3 keep committing.
  Cluster cluster(BaseConfig(/*f=*/2));
  cluster.Start();
  cluster.sim().RunFor(Ms(500));
  cluster.CrashReplica(3);
  cluster.CrashReplica(4);
  const Height height_at_crash = cluster.tracker().max_committed_height();
  cluster.sim().RunFor(Sec(3));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), height_at_crash + 10);
}

TEST(AchillesIntegrationTest, NoProgressBeyondThreshold) {
  // Crashing f+1 of 2f+1 removes the quorum: liveness is lost (expected; §6.3).
  Cluster cluster(BaseConfig(/*f=*/1));
  cluster.Start();
  cluster.sim().RunFor(Ms(500));
  cluster.CrashReplica(1);
  cluster.CrashReplica(2);
  cluster.sim().RunFor(Ms(200));  // Drain in-flight decides.
  const Height stalled = cluster.tracker().max_committed_height();
  cluster.sim().RunFor(Sec(2));
  EXPECT_LE(cluster.tracker().max_committed_height(), stalled + 1);
  EXPECT_FALSE(cluster.tracker().safety_violated());
}

TEST(AchillesIntegrationTest, RebootedReplicaRecoversAndRejoins) {
  Cluster cluster(BaseConfig(/*f=*/1));
  cluster.Start();
  cluster.sim().RunFor(Ms(500));
  cluster.CrashReplica(2);
  cluster.sim().RunFor(Ms(300));
  cluster.RebootReplica(2);
  cluster.sim().RunFor(Sec(3));

  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  AchillesReplica* rejoined = AsAchilles(cluster.replica(2));
  ASSERT_NE(rejoined, nullptr);
  EXPECT_FALSE(rejoined->recovering());
  EXPECT_GE(rejoined->recovery_completed_at(), 0);
  // The rejoined replica catches up with the cluster.
  EXPECT_GE(cluster.tracker().committed_height(2) + 10,
            cluster.tracker().max_committed_height());
}

TEST(AchillesIntegrationTest, RecoveryJumpsPastCrashView) {
  // No-equivocation across reboot: the recovered trusted view must be strictly beyond any
  // view the node could have voted in before crashing.
  Cluster cluster(BaseConfig(/*f=*/1));
  cluster.Start();
  cluster.sim().RunFor(Ms(500));
  AchillesReplica* before = AsAchilles(cluster.replica(2));
  ASSERT_NE(before, nullptr);
  const View crash_view = before->checker().vi();
  cluster.CrashReplica(2);
  cluster.RebootReplica(2);
  cluster.sim().RunFor(Sec(2));
  AchillesReplica* after = AsAchilles(cluster.replica(2));
  ASSERT_NE(after, nullptr);
  ASSERT_FALSE(after->recovering());
  EXPECT_GT(after->checker().vi(), crash_view);
}

TEST(AchillesIntegrationTest, RecoveryDefeatsRollbackAttack) {
  // The adversary serves the oldest sealed blobs at reboot. Achilles ignores local state
  // entirely during recovery, so this changes nothing: no equivocation, no safety loss.
  Cluster cluster(BaseConfig(/*f=*/1, /*seed=*/7));
  cluster.Start();
  cluster.sim().RunFor(Ms(800));
  cluster.CrashReplica(1);
  cluster.platform(1).storage().SetRollbackMode(RollbackMode::kOldest);
  cluster.RebootReplica(1);
  cluster.sim().RunFor(Sec(3));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  AchillesReplica* rejoined = AsAchilles(cluster.replica(1));
  ASSERT_NE(rejoined, nullptr);
  EXPECT_FALSE(rejoined->recovering());
  EXPECT_GE(cluster.tracker().committed_height(1) + 10,
            cluster.tracker().max_committed_height());
}

TEST(AchillesIntegrationTest, RecoveryWithErasedStorage) {
  // Full state erasure (reset attack) is just another rollback flavour.
  Cluster cluster(BaseConfig(/*f=*/1, /*seed=*/9));
  cluster.Start();
  cluster.sim().RunFor(Ms(800));
  cluster.CrashReplica(2);
  cluster.platform(2).storage().SetRollbackMode(RollbackMode::kErase);
  cluster.RebootReplica(2);
  cluster.sim().RunFor(Sec(3));
  EXPECT_FALSE(cluster.tracker().safety_violated());
  AchillesReplica* rejoined = AsAchilles(cluster.replica(2));
  ASSERT_NE(rejoined, nullptr);
  EXPECT_FALSE(rejoined->recovering());
}

TEST(AchillesIntegrationTest, SequentialRebootsOfDifferentReplicas) {
  Cluster cluster(BaseConfig(/*f=*/2, /*seed=*/11));
  cluster.Start();
  cluster.sim().RunFor(Ms(500));
  for (uint32_t victim : {1u, 3u}) {
    cluster.CrashReplica(victim);
    cluster.sim().RunFor(Ms(200));
    cluster.RebootReplica(victim);
    cluster.sim().RunFor(Sec(2));
    AchillesReplica* r = AsAchilles(cluster.replica(victim));
    ASSERT_NE(r, nullptr);
    EXPECT_FALSE(r->recovering()) << "victim " << victim;
  }
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
}

TEST(AchillesIntegrationTest, DeterministicRuns) {
  auto run = [](uint64_t seed) {
    Cluster cluster(BaseConfig(1, seed));
    cluster.Start();
    cluster.sim().RunFor(Sec(1));
    return std::make_pair(cluster.tracker().max_committed_height(),
                          cluster.tracker().total_committed_txs());
  };
  EXPECT_EQ(run(123), run(123));
}

TEST(AchillesIntegrationTest, AchillesCVariantAlsoCommits) {
  ClusterConfig config = BaseConfig();
  config.protocol = Protocol::kAchillesC;
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  EXPECT_FALSE(cluster.tracker().safety_violated());
  EXPECT_GT(cluster.tracker().max_committed_height(), 20u);
}

TEST(AchillesIntegrationTest, AchillesCIsFasterThanAchilles) {
  // The SGX overhead (ECALLs + in-enclave crypto) must be visible (Table 3's gap).
  ClusterConfig in_tee = BaseConfig(1, 5);
  ClusterConfig outside = BaseConfig(1, 5);
  outside.protocol = Protocol::kAchillesC;
  Cluster a(in_tee);
  Cluster c(outside);
  const RunStats sa = a.RunMeasured(Ms(500), Sec(2));
  const RunStats sc = c.RunMeasured(Ms(500), Sec(2));
  EXPECT_GT(sc.throughput_tps, sa.throughput_tps);
}

TEST(AchillesIntegrationTest, EndToEndLatencyMeasured) {
  ClusterConfig config = BaseConfig();
  config.client_rate_tps = 2000;  // Open loop, below saturation.
  Cluster cluster(config);
  const RunStats stats = cluster.RunMeasured(Ms(500), Sec(2));
  EXPECT_GT(stats.e2e_latency_ms, 0.0);
  EXPECT_GT(stats.throughput_tps, 1500.0);
}

}  // namespace
}  // namespace achilles
