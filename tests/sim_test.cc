#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/host.h"
#include "src/sim/network.h"
#include "src/sim/simulation.h"

namespace achilles {
namespace {

struct TestMsg : SimMessage {
  explicit TestMsg(size_t size, int tag = 0) : size_(size), tag_(tag) {}
  size_t WireSize() const override { return size_; }
  size_t size_;
  int tag_;
};

MessageRef MakeMsg(size_t size, int tag = 0) { return std::make_shared<TestMsg>(size, tag); }

// --- Simulation core ---

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim(1);
  std::vector<int> order;
  sim.ScheduleAt(Ms(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Ms(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Ms(20), [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Ms(30));
}

TEST(SimulationTest, EqualTimesAreFifo) {
  Simulation sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Ms(5), [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim(1);
  bool ran = false;
  const EventId id = sim.ScheduleAt(Ms(1), [&] { ran = true; });
  sim.Cancel(id);
  sim.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, RunUntilStopsAtBoundary) {
  Simulation sim(1);
  int count = 0;
  sim.ScheduleAt(Ms(1), [&] { ++count; });
  sim.ScheduleAt(Ms(2), [&] { ++count; });
  sim.ScheduleAt(Ms(5), [&] { ++count; });
  sim.RunUntil(Ms(2));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), Ms(2));
  sim.RunUntilIdle();
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim(1);
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) {
      sim.ScheduleAfter(Ms(1), hop);
    }
  };
  sim.ScheduleAfter(Ms(1), hop);
  sim.RunUntilIdle();
  EXPECT_EQ(hops, 5);
  EXPECT_EQ(sim.Now(), Ms(5));
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    std::vector<uint64_t> vals;
    for (int i = 0; i < 5; ++i) {
      sim.ScheduleAfter(Ms(i), [&] { vals.push_back(sim.rng().NextU64()); });
    }
    sim.RunUntilIdle();
    return vals;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// --- Host CPU model ---

class RecordingProcess : public IProcess {
 public:
  RecordingProcess(Host* host, SimDuration charge_per_msg, std::vector<SimTime>* times)
      : host_(host), charge_(charge_per_msg), times_(times) {}

  void OnMessage(uint32_t /*from*/, const MessageRef& /*msg*/) override {
    times_->push_back(host_->sim().Now());
    host_->ChargeCpu(charge_);
  }

 private:
  Host* host_;
  SimDuration charge_;
  std::vector<SimTime>* times_;
};

TEST(HostTest, CpuSerializesWork) {
  Simulation sim(1);
  Host host(&sim, 0);
  std::vector<SimTime> starts;
  host.BindProcess(std::make_unique<RecordingProcess>(&host, Ms(10), &starts));
  // Two messages arrive at the same instant; the second must wait for the first's charge.
  host.DeliverAt(Ms(1), 1, MakeMsg(10));
  host.DeliverAt(Ms(1), 1, MakeMsg(10));
  sim.RunUntilIdle();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], Ms(1));
  EXPECT_EQ(starts[1], Ms(11));
}

TEST(HostTest, LocalNowReflectsCharges) {
  Simulation sim(1);
  Host host(&sim, 0);
  struct Probe : IProcess {
    explicit Probe(Host* h) : host(h) {}
    void OnMessage(uint32_t, const MessageRef&) override {
      start_local = host->LocalNow();
      host->ChargeCpu(Us(500));
      after_local = host->LocalNow();
    }
    Host* host;
    SimTime start_local = -1;
    SimTime after_local = -1;
  };
  auto probe = std::make_unique<Probe>(&host);
  Probe* p = probe.get();
  host.BindProcess(std::move(probe));
  host.DeliverAt(Ms(2), 1, MakeMsg(1));
  sim.RunUntilIdle();
  EXPECT_EQ(p->start_local, Ms(2));
  EXPECT_EQ(p->after_local, Ms(2) + Us(500));
}

TEST(HostTest, TimerFiresAndCancels) {
  Simulation sim(1);
  Host host(&sim, 0);
  std::vector<SimTime> unused;
  host.BindProcess(std::make_unique<RecordingProcess>(&host, 0, &unused));
  int fired = 0;
  host.SetTimer(Ms(5), [&] { ++fired; });
  const uint64_t cancelled = host.SetTimer(Ms(6), [&] { ++fired; });
  host.CancelTimer(cancelled);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
}

TEST(HostTest, CrashDropsQueuedWorkAndTimers) {
  Simulation sim(1);
  Host host(&sim, 0);
  std::vector<SimTime> starts;
  host.BindProcess(std::make_unique<RecordingProcess>(&host, Ms(10), &starts));
  int timer_fired = 0;
  host.SetTimer(Ms(100), [&] { ++timer_fired; });
  host.DeliverAt(Ms(1), 1, MakeMsg(1));  // Will start at 1ms, occupy CPU until 11ms.
  host.DeliverAt(Ms(2), 1, MakeMsg(1));  // Queued behind; host crashes first.
  sim.ScheduleAt(Ms(5), [&] { host.Crash(); });
  sim.RunUntilIdle();
  EXPECT_EQ(starts.size(), 1u);
  EXPECT_EQ(timer_fired, 0);
  EXPECT_FALSE(host.IsUp());
}

TEST(HostTest, DeliveryToCrashedHostIsDropped) {
  Simulation sim(1);
  Host host(&sim, 0);
  std::vector<SimTime> starts;
  host.BindProcess(std::make_unique<RecordingProcess>(&host, 0, &starts));
  host.DeliverAt(Ms(10), 1, MakeMsg(1));
  sim.ScheduleAt(Ms(5), [&] { host.Crash(); });
  sim.RunUntilIdle();
  EXPECT_TRUE(starts.empty());
}

TEST(HostTest, RebootBindsFreshProcessAfterDelay) {
  Simulation sim(1);
  Host host(&sim, 0);
  std::vector<SimTime> first_starts;
  host.BindProcess(std::make_unique<RecordingProcess>(&host, 0, &first_starts));
  sim.ScheduleAt(Ms(5), [&] { host.Crash(); });
  std::vector<SimTime> second_starts;
  sim.ScheduleAt(Ms(6), [&] {
    host.Reboot(std::make_unique<RecordingProcess>(&host, 0, &second_starts), Ms(10));
  });
  // Message arriving while down (at 8 ms) must vanish; message at 20 ms reaches incarnation 2.
  host.DeliverAt(Ms(8), 1, MakeMsg(1));
  host.DeliverAt(Ms(20), 1, MakeMsg(1));
  sim.RunUntilIdle();
  EXPECT_TRUE(first_starts.empty());
  ASSERT_EQ(second_starts.size(), 1u);
  EXPECT_EQ(second_starts[0], Ms(20));
}

// --- Network ---

struct NetFixture {
  explicit NetFixture(NetworkConfig config, size_t n = 3, uint64_t seed = 7)
      : sim(seed), net(&sim, config) {
    for (size_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<Host>(&sim, static_cast<uint32_t>(i)));
      net.AddHost(hosts.back().get());
      auto proc = std::make_unique<RecordingProcess>(hosts.back().get(), 0, &arrivals[i]);
      hosts.back()->BindProcess(std::move(proc));
    }
  }
  Simulation sim;
  Network net;
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<SimTime> arrivals[8];
};

TEST(NetworkTest, LatencyWithinExpectedRange) {
  NetworkConfig config;
  config.one_way_base = Ms(20);
  config.one_way_jitter = Us(100);
  NetFixture f(config);
  for (int i = 0; i < 100; ++i) {
    f.net.Send(0, 1, MakeMsg(100));
  }
  f.sim.RunUntilIdle();
  ASSERT_EQ(f.arrivals[1].size(), 100u);
  for (SimTime t : f.arrivals[1]) {
    EXPECT_GT(t, Ms(19));
    EXPECT_LT(t, Ms(21));
  }
}

TEST(NetworkTest, BandwidthDelaysLargeMessages) {
  NetworkConfig config;
  config.one_way_base = Ms(1);
  config.one_way_jitter = 0;
  config.bandwidth_bps = 1e9;  // 1 Gbps -> 1 MB takes 8 ms.
  NetFixture f(config);
  f.net.Send(0, 1, MakeMsg(1'000'000));
  f.sim.RunUntilIdle();
  ASSERT_EQ(f.arrivals[1].size(), 1u);
  EXPECT_NEAR(static_cast<double>(f.arrivals[1][0]), static_cast<double>(Ms(9)),
              static_cast<double>(Us(10)));
}

TEST(NetworkTest, LoopbackUsesLoopbackDelay) {
  NetFixture f(NetworkConfig::Lan());
  f.net.Send(0, 0, MakeMsg(100));
  f.sim.RunUntilIdle();
  ASSERT_EQ(f.arrivals[0].size(), 1u);
  EXPECT_EQ(f.arrivals[0][0], Us(1));
}

TEST(NetworkTest, PartitionBlocksAcrossGroups) {
  NetFixture f(NetworkConfig::Lan());
  f.net.Partition({{0}, {1, 2}});
  f.net.Send(0, 1, MakeMsg(10));
  f.net.Send(1, 2, MakeMsg(10));
  f.sim.RunUntilIdle();
  EXPECT_TRUE(f.arrivals[1].empty());
  EXPECT_EQ(f.arrivals[2].size(), 1u);
  f.net.ClearPartition();
  f.net.Send(0, 1, MakeMsg(10));
  f.sim.RunUntilIdle();
  EXPECT_EQ(f.arrivals[1].size(), 1u);
}

TEST(NetworkTest, BlockedLinkIsDirectional) {
  NetFixture f(NetworkConfig::Lan());
  f.net.SetLinkBlocked(0, 1, true);
  f.net.Send(0, 1, MakeMsg(10));
  f.net.Send(1, 0, MakeMsg(10));
  f.sim.RunUntilIdle();
  EXPECT_TRUE(f.arrivals[1].empty());
  EXPECT_EQ(f.arrivals[0].size(), 1u);
}

TEST(NetworkTest, DropRateLosesRoughlyThatFraction) {
  NetworkConfig config = NetworkConfig::Lan();
  config.drop_rate = 0.5;
  NetFixture f(config);
  for (int i = 0; i < 1000; ++i) {
    f.net.Send(0, 1, MakeMsg(10));
  }
  f.sim.RunUntilIdle();
  EXPECT_GT(f.arrivals[1].size(), 400u);
  EXPECT_LT(f.arrivals[1].size(), 600u);
}

TEST(NetworkTest, MulticastReachesAllListed) {
  NetFixture f(NetworkConfig::Lan());
  f.net.Multicast(0, {1, 2}, MakeMsg(10));
  f.sim.RunUntilIdle();
  EXPECT_EQ(f.arrivals[1].size(), 1u);
  EXPECT_EQ(f.arrivals[2].size(), 1u);
  EXPECT_TRUE(f.arrivals[0].empty());
}

TEST(NetworkTest, StatsCountMessagesAndBytes) {
  NetFixture f(NetworkConfig::Lan());
  f.net.Send(0, 1, MakeMsg(100));
  f.net.Send(0, 2, MakeMsg(50));
  EXPECT_EQ(f.net.messages_sent(), 2u);
  EXPECT_EQ(f.net.bytes_sent(), 150u);
  f.net.ResetStats();
  EXPECT_EQ(f.net.messages_sent(), 0u);
}

TEST(NetworkTest, SenderCpuChargeDelaysDeparture) {
  // A process that charges CPU then sends: the send departs after the charge.
  Simulation sim(3);
  NetworkConfig config;
  config.one_way_base = Ms(1);
  config.one_way_jitter = 0;
  Network net(&sim, config);
  Host h0(&sim, 0);
  Host h1(&sim, 1);
  net.AddHost(&h0);
  net.AddHost(&h1);

  struct Sender : IProcess {
    Sender(Host* h, Network* n) : host(h), net(n) {}
    void OnMessage(uint32_t, const MessageRef&) override {
      host->ChargeCpu(Ms(7));
      net->Send(0, 1, MakeMsg(10));
    }
    Host* host;
    Network* net;
  };
  std::vector<SimTime> arrivals;
  h0.BindProcess(std::make_unique<Sender>(&h0, &net));
  h1.BindProcess(std::make_unique<RecordingProcess>(&h1, 0, &arrivals));
  h0.DeliverAt(Ms(1), 1, MakeMsg(1));
  sim.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 1u);
  // 1 ms arrival + 7 ms CPU charge + 1 ms propagation (plus nanoseconds of serialization).
  EXPECT_NEAR(static_cast<double>(arrivals[0]), static_cast<double>(Ms(9)),
              static_cast<double>(Us(1)));
}

}  // namespace
}  // namespace achilles
