// Tests for the Narrator software-counter service (emergent Table 4 latencies).
#include <gtest/gtest.h>

#include <memory>

#include "src/damysus/checker.h"
#include "src/tee/enclave.h"
#include "src/tee/narrator.h"
#include "src/tee/platform.h"

namespace achilles {
namespace {

TEST(NarratorTest, LanLatenciesMatchTable4) {
  const NarratorResult result =
      MeasureNarrator(NetworkConfig::Lan(), NarratorParams{}, /*ops=*/50, /*seed=*/3);
  EXPECT_EQ(result.increments, 50u);
  // Paper's Table 4: Narrator-LAN write 8-10 ms, read 4-5 ms.
  EXPECT_GT(result.write_ms, 7.0);
  EXPECT_LT(result.write_ms, 11.0);
  EXPECT_GT(result.read_ms, 3.0);
  EXPECT_LT(result.read_ms, 6.0);
}

TEST(NarratorTest, WanLatencyIsRttDominated) {
  const NarratorResult result =
      MeasureNarrator(NetworkConfig::Wan(), NarratorParams{}, /*ops=*/20, /*seed=*/4);
  // Paper's Table 4: Narrator-WAN write 40-50 ms (one broadcast round trip + processing).
  EXPECT_GT(result.write_ms, 40.0);
  EXPECT_LT(result.write_ms, 55.0);
  // The paper's 25 ms WAN read is below one 40 ms RTT — impossible for a quorum read in
  // this deployment (their number comes from Narrator's own, lower-RTT WAN); ours pays the
  // full round trip.
  EXPECT_GT(result.read_ms, 40.0);
}

TEST(NarratorTest, QuorumToleratesSlowMinority) {
  // Completion needs only a majority of monitors: doubling the processing cost on the
  // slowest (simulated by raising global processing) raises latency proportionally.
  NarratorParams slow;
  slow.write_processing = FromMs(16.0);
  const NarratorResult fast =
      MeasureNarrator(NetworkConfig::Lan(), NarratorParams{}, 20, 5);
  const NarratorResult slower = MeasureNarrator(NetworkConfig::Lan(), slow, 20, 5);
  EXPECT_GT(slower.write_ms, fast.write_ms + 3.0);
}

TEST(NarratorTest, MonitorCountChangesQuorumDepth) {
  NarratorParams small;
  small.num_monitors = 4;
  const NarratorResult result = MeasureNarrator(NetworkConfig::Lan(), small, 20, 6);
  EXPECT_GT(result.write_ms, 0.0);
  EXPECT_EQ(result.increments, 20u);
}

// A Narrator-backed persistent counter is a drop-in rollback detector: a checker bound to
// it refuses any rolled-back sealed blob at reboot, exactly like a hardware counter —
// just with the software service's (higher) write latency charged per mutation.
TEST(NarratorTest, NarratorCounterDetectsSealRollback) {
  Simulation sim(31);
  Host host(&sim, 0);
  CryptoSuite suite(SignatureScheme::kFastHmac, 4, 17);
  TeeConfig tee;
  tee.components_in_tee = true;
  tee.counter = CounterSpec::For(CounterKind::kNarratorLan);
  NodePlatform platform(&host, &suite, CostModel::Default(), tee, 9);
  auto enclave = std::make_unique<EnclaveRuntime>(&platform);
  {
    DamysusChecker checker(enclave.get(), 4, 1);
    ASSERT_TRUE(checker.TdNewView(1).has_value());
    ASSERT_TRUE(checker.TdNewView(2).has_value());
  }
  // Each persisted mutation paid the Narrator write path on the host clock.
  EXPECT_GE(host.cpu_time_used(), 2 * tee.counter.write_latency);
  // Reboot against the oldest sealed blob: version < counter, the checker refuses to run.
  platform.storage().SetRollbackMode(RollbackMode::kOldest);
  enclave = std::make_unique<EnclaveRuntime>(&platform);
  EXPECT_EQ(DamysusChecker::Restore(enclave.get(), 4, 1), nullptr);
  // The honest latest blob restores.
  platform.storage().SetRollbackMode(RollbackMode::kLatest);
  enclave = std::make_unique<EnclaveRuntime>(&platform);
  auto restored = DamysusChecker::Restore(enclave.get(), 4, 1);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->vi(), 2u);
}

TEST(NarratorTest, Deterministic) {
  const NarratorResult a = MeasureNarrator(NetworkConfig::Lan(), NarratorParams{}, 10, 7);
  const NarratorResult b = MeasureNarrator(NetworkConfig::Lan(), NarratorParams{}, 10, 7);
  EXPECT_DOUBLE_EQ(a.write_ms, b.write_ms);
  EXPECT_DOUBLE_EQ(a.read_ms, b.read_ms);
}

}  // namespace
}  // namespace achilles
