// Tests for the client population, the cluster harness, and message-forgery rejection at
// the protocol boundary.
#include <gtest/gtest.h>

#include "src/achilles/messages.h"
#include "src/achilles/replica.h"
#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace achilles {
namespace {

// --- ClientProcess ---

TEST(ClientTest, OpenLoopRateIsAccurate) {
  Simulation sim(1);
  Network net(&sim, NetworkConfig::Lan());
  Host replica_host(&sim, 0);
  net.AddHost(&replica_host);
  Host client_host(&sim, 1);
  net.AddHost(&client_host);
  CommitTracker tracker(1);

  struct Counter : IProcess {
    void OnMessage(uint32_t, const MessageRef& msg) override {
      if (auto submit = std::dynamic_pointer_cast<const ClientSubmitMsg>(msg)) {
        txs += submit->txs.size();
      }
    }
    uint64_t txs = 0;
  };
  auto counter = std::make_unique<Counter>();
  Counter* counter_ptr = counter.get();
  replica_host.BindProcess(std::move(counter));

  ClientConfig config;
  config.rate_tps = 5000;
  config.num_replicas = 1;
  client_host.BindProcess(
      std::make_unique<ClientProcess>(&client_host, &net, &tracker, config));
  sim.RunUntil(Sec(2));
  EXPECT_NEAR(static_cast<double>(counter_ptr->txs), 10000.0, 500.0);
}

TEST(ClientTest, SaturatingModeRespectsOutstandingCap) {
  Simulation sim(1);
  Network net(&sim, NetworkConfig::Lan());
  Host sink_host(&sim, 0);
  net.AddHost(&sink_host);
  Host client_host(&sim, 1);
  net.AddHost(&client_host);
  CommitTracker tracker(1);  // Nothing ever commits -> submissions must stop at the cap.

  struct Sink : IProcess {
    void OnMessage(uint32_t, const MessageRef&) override {}
  };
  sink_host.BindProcess(std::make_unique<Sink>());
  ClientConfig config;
  config.rate_tps = 0;
  config.max_outstanding = 1000;
  config.num_replicas = 1;
  auto client = std::make_unique<ClientProcess>(&client_host, &net, &tracker, config);
  ClientProcess* client_ptr = client.get();
  client_host.BindProcess(std::move(client));
  sim.RunUntil(Sec(1));
  EXPECT_EQ(client_ptr->submitted(), 1000u);
}

TEST(ClientTest, UniqueTransactionIds) {
  Simulation sim(1);
  Network net(&sim, NetworkConfig::Lan());
  Host replica_host(&sim, 0);
  net.AddHost(&replica_host);
  Host client_host(&sim, 1);
  net.AddHost(&client_host);
  CommitTracker tracker(1);
  struct Collector : IProcess {
    void OnMessage(uint32_t, const MessageRef& msg) override {
      if (auto submit = std::dynamic_pointer_cast<const ClientSubmitMsg>(msg)) {
        for (const Transaction& tx : submit->txs) {
          EXPECT_TRUE(ids.insert(tx.id).second) << "duplicate id";
        }
      }
    }
    std::set<uint64_t> ids;
  };
  replica_host.BindProcess(std::make_unique<Collector>());
  ClientConfig config;
  config.rate_tps = 2000;
  config.num_replicas = 1;
  client_host.BindProcess(
      std::make_unique<ClientProcess>(&client_host, &net, &tracker, config));
  sim.RunUntil(Ms(500));
}

// --- KV client (src/client/kv_client.h) ---

TEST(KvClientTest, CompletesOpsAndServesLeaseReads) {
  ClusterConfig config;
  config.protocol = Protocol::kRaft;
  config.f = 1;
  config.batch_size = 20;
  config.payload_size = 16;
  config.base_timeout = Ms(100);
  config.client_rate_tps = 300;
  config.seed = 21;
  config.app_kv = true;
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Sec(2));
  // All four closed-loop sessions make progress, and the stable leader ends up serving
  // reads off its lease (no log round trip).
  EXPECT_GT(cluster.kv_client()->completed_ops(), 50u);
  EXPECT_GT(cluster.kv_service()->lease_reads_served(), 0u);
  // No lease read was ever served a version behind the canonical committed state.
  EXPECT_EQ(cluster.metrics().GetCounter("app.stale_read_candidates")->value(), 0u);
}

// Leader change: the sticky lease-read target dies; reads must retry on other replicas,
// fall back to ordered GETs through the log, and resume completing under the new leader.
TEST(KvClientTest, RetriesAndFailsOverOnLeaderChange) {
  ClusterConfig config;
  config.protocol = Protocol::kRaft;  // Node 0 bootstraps as leader and leaseholder.
  config.f = 1;
  config.batch_size = 20;
  config.payload_size = 16;
  config.base_timeout = Ms(100);
  config.client_rate_tps = 300;
  config.seed = 22;
  config.app_kv = true;
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  const uint64_t before = cluster.kv_client()->completed_ops();
  ASSERT_GT(before, 0u);
  const SimTime crash_time = cluster.sim().Now();
  cluster.CrashReplica(0);
  cluster.sim().RunFor(Sec(3));
  // Progress resumed: a healthy margin of new completions after the leader died.
  EXPECT_GT(cluster.kv_client()->completed_ops(), before + 20);
  // The fast path failed over: reads against the dead/declining targets fell back to
  // ordered GETs at least once.
  EXPECT_GT(cluster.metrics().GetCounter("app.lease_fallbacks")->value(), 0u);
  // And post-crash operations were served/proposed by a surviving replica, not replica 0.
  bool post_crash_from_survivor = false;
  for (const app::KvOpRecord& op : cluster.kv_client()->ops()) {
    if (op.complete() && op.invoke > crash_time && op.server != kNoNode &&
        op.server != 0) {
      post_crash_from_survivor = true;
      break;
    }
  }
  EXPECT_TRUE(post_crash_from_survivor);
}

// --- Cluster harness ---

TEST(ClusterTest, ReplicaCountsPerProtocol) {
  EXPECT_EQ(ReplicasFor(Protocol::kAchilles, 3), 7u);
  EXPECT_EQ(ReplicasFor(Protocol::kDamysusR, 10), 21u);
  EXPECT_EQ(ReplicasFor(Protocol::kFlexiBft, 3), 10u);
  EXPECT_EQ(ReplicasFor(Protocol::kRaft, 2), 5u);
}

TEST(ClusterTest, CounterDefaultsPerProtocol) {
  EXPECT_FALSE(DefaultCounterEnabled(Protocol::kAchilles));
  EXPECT_FALSE(DefaultCounterEnabled(Protocol::kDamysus));
  EXPECT_TRUE(DefaultCounterEnabled(Protocol::kDamysusR));
  EXPECT_TRUE(DefaultCounterEnabled(Protocol::kOneShotR));
  EXPECT_TRUE(DefaultCounterEnabled(Protocol::kFlexiBft));
  EXPECT_FALSE(DefaultCounterEnabled(Protocol::kRaft));
}

TEST(ClusterTest, InitDelayGrowsWithClusterSize) {
  ClusterConfig small;
  small.f = 1;
  ClusterConfig large;
  large.f = 30;
  Cluster a(small);
  Cluster b(large);
  EXPECT_GT(b.ReplicaInitDelay(), a.ReplicaInitDelay());
  EXPECT_GT(a.ReplicaInitDelay(), Ms(5));
}

TEST(ClusterTest, RunMeasuredWindowsAreRespected) {
  ClusterConfig config;
  config.f = 1;
  config.batch_size = 50;
  config.payload_size = 16;
  config.base_timeout = Ms(100);
  config.seed = 3;
  Cluster cluster(config);
  const RunStats stats = cluster.RunMeasured(Ms(200), Sec(1));
  EXPECT_EQ(cluster.sim().Now(), Ms(200) + Sec(1));
  EXPECT_GT(stats.throughput_tps, 0.0);
  EXPECT_TRUE(stats.safety_ok);
  EXPECT_GT(stats.messages, 0u);
  EXPECT_GT(stats.bytes, stats.messages);  // Messages have nonzero size.
}

TEST(ClusterTest, TablePrinterNumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(10.0, 0), "10");
}

// --- Forged-message rejection at the protocol boundary ---

// A saboteur host (re-using the client's id space) injects syntactically valid but
// unsigned/forged protocol messages; the cluster must ignore them all.
TEST(ForgeryTest, ForgedProposalsAndDecidesAreIgnored) {
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 1;
  config.batch_size = 50;
  config.payload_size = 16;
  config.base_timeout = Ms(100);
  config.seed = 17;
  config.with_client = false;  // We drive the cluster's traffic manually.
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Ms(300));
  const Height before = cluster.tracker().max_committed_height();

  // Forged proposal: block with a garbage certificate "signed" by the current leader id.
  auto propose = std::make_shared<AchProposeMsg>();
  propose->block = Block::Create(/*view=*/999, Block::Genesis(),
                                 {Transaction{Transaction::MakeId(9, 1), 0, 8}}, 0);
  propose->block_cert.hash = propose->block->hash;
  propose->block_cert.view = 999;
  propose->block_cert.sig.signer = LeaderOfView(999, cluster.num_replicas());
  propose->block_cert.sig.blob.assign(64, 0xab);  // Not a valid signature.

  // Forged decide: quorum certificate with fabricated signatures.
  auto decide = std::make_shared<AchDecideMsg>();
  decide->commit_cert.hash = propose->block->hash;
  decide->commit_cert.view = 999;
  for (uint32_t i = 0; i < 2; ++i) {
    Signature sig;
    sig.signer = i;
    sig.blob.assign(64, static_cast<uint8_t>(i));
    decide->commit_cert.sigs.push_back(sig);
  }

  for (uint32_t target = 0; target < cluster.num_replicas(); ++target) {
    // Inject straight into the hosts (models a compromised network peer).
    cluster.net().host(target).DeliverAt(cluster.sim().Now() + Us(10), /*from=*/2, propose);
    cluster.net().host(target).DeliverAt(cluster.sim().Now() + Us(20), /*from=*/2, decide);
  }
  cluster.sim().RunFor(Sec(1));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  // The forged block must never have been committed by any correct replica.
  EXPECT_NE(cluster.tracker().committed_hash_at(1), propose->block->hash);
  EXPECT_GE(cluster.tracker().max_committed_height(), before);
}

TEST(ForgeryTest, ReplayedOldDecideIsHarmless) {
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 1;
  config.batch_size = 50;
  config.payload_size = 16;
  config.base_timeout = Ms(100);
  config.seed = 18;
  Cluster cluster(config);
  cluster.Start();

  // Capture a genuine decide... the simplest capture point is the commit listener plus a
  // re-broadcast of the same certificate much later.
  std::shared_ptr<AchDecideMsg> replay;
  cluster.sim().RunFor(Sec(1));
  // Build the replay from tracked state: reuse block at height 1's hash with no sigs is
  // already covered by ForgedProposals; here we verify that committing twice via duplicate
  // valid decides (normal operation already floods duplicates) kept counts single.
  const uint64_t blocks = cluster.tracker().total_committed_blocks();
  const Height height = cluster.tracker().max_committed_height();
  EXPECT_LE(blocks, height + 1);  // No double counting despite n duplicate decides each.
  (void)replay;
}

// --- Experiment helpers ---

TEST(ExperimentTest, DefaultWindowsScaleWithNetwork) {
  EXPECT_GT(DefaultMeasure(NetworkConfig::Wan()), DefaultMeasure(NetworkConfig::Lan()));
  EXPECT_GT(DefaultWarmup(NetworkConfig::Wan()), DefaultWarmup(NetworkConfig::Lan()));
}

}  // namespace
}  // namespace achilles
