// Conformance suite for the pluggable rollback-defense backends (src/storage/defense.h).
// Every backend is driven through the same persistence lifecycle a checker sees —
// Persist during steady state, Open at the next incarnation's boot — under the storage
// fates the chaos harness plants (rollback to oldest, erase, peer-holder attacks), and
// must produce exactly the verdicts its capability matrix advertises:
//
//   local        detects rollback iff a counter device is present; never repairs.
//   rollbaccine  repairs rollback AND erasure from peer copies (FreshnessClass::kRecover).
//   healer       detects both from the certified floor but cannot repair (kDetect).
//
// The suite is parameterized over DefenseKind so every shared contract (version
// monotonicity, reboot round trips, the `verify=false` broken-variant hooks, version
// resumption past the freshness floor) is asserted once and run against all three.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/storage/defense.h"
#include "src/tee/enclave.h"
#include "src/tee/monotonic_counter.h"
#include "src/tee/platform.h"
#include "src/tee/sealed_storage.h"

namespace achilles {
namespace {

using persist::BackendCaps;
using persist::DefenseCosts;
using persist::DefenseFate;
using persist::DefenseKind;
using persist::DefenseService;
using persist::FreshnessClass;
using persist::OpenResult;
using persist::OpenStatus;

Bytes B(std::initializer_list<uint8_t> bytes) { return Bytes(bytes); }

// One node's platform plus the cluster-owned DefenseService (n = 3 holders), with
// reboot = tear down the EnclaveRuntime and build a fresh one over the same platform —
// the same incarnation model the Cluster uses.
struct BackendFixture {
  explicit BackendFixture(DefenseKind kind,
                          CounterSpec counter = CounterSpec::Custom(Ms(1), Ms(1)),
                          DefenseCosts costs = DefenseCosts{})
      : sim(11), host(&sim, 0), suite(SignatureScheme::kFastHmac, 4, 99),
        service(3, costs) {
    TeeConfig tee;
    tee.components_in_tee = true;
    tee.counter = counter;
    platform = std::make_unique<NodePlatform>(&host, &suite, CostModel::Default(), tee,
                                              /*seed=*/7, /*node_id=*/0);
    platform->ConfigureDefense(kind, &service);
    Reboot();
  }

  void Reboot() {
    enclave.reset();
    enclave = std::make_unique<EnclaveRuntime>(platform.get());
  }

  persist::Backend& backend() { return enclave->defense(); }
  SealedStorage& device() { return platform->storage(); }

  Simulation sim;
  Host host;
  CryptoSuite suite;
  DefenseService service;
  std::unique_ptr<NodePlatform> platform;
  std::unique_ptr<EnclaveRuntime> enclave;
};

class DefenseBackendTest : public ::testing::TestWithParam<DefenseKind> {};

// --- Capability matrix (DESIGN.md §2.23) ---

TEST_P(DefenseBackendTest, CapsMatchAdvertisedMatrix) {
  BackendFixture f(GetParam());
  const BackendCaps caps = f.backend().caps();
  EXPECT_EQ(caps.kind, GetParam());
  switch (GetParam()) {
    case DefenseKind::kLocal:
      EXPECT_TRUE(caps.rollback_detection);  // Counter device present in this fixture.
      EXPECT_FALSE(caps.rollback_prevention);
      EXPECT_EQ(caps.freshness, FreshnessClass::kDetect);
      EXPECT_FALSE(caps.quorum_dependent);
      break;
    case DefenseKind::kRollbaccine:
      EXPECT_TRUE(caps.rollback_detection);
      EXPECT_TRUE(caps.rollback_prevention);
      EXPECT_EQ(caps.freshness, FreshnessClass::kRecover);
      EXPECT_TRUE(caps.quorum_dependent);
      break;
    case DefenseKind::kHealer:
      EXPECT_TRUE(caps.rollback_detection);
      EXPECT_FALSE(caps.rollback_prevention);
      EXPECT_EQ(caps.freshness, FreshnessClass::kDetect);
      EXPECT_TRUE(caps.quorum_dependent);
      break;
  }
}

TEST(DefenseBackendCapsTest, LocalWithoutCounterCannotDetect) {
  BackendFixture f(DefenseKind::kLocal, CounterSpec::None());
  const BackendCaps caps = f.backend().caps();
  EXPECT_FALSE(caps.rollback_detection);
  EXPECT_EQ(caps.freshness, FreshnessClass::kNone);
}

// --- Durability semantics: versioned round trips across incarnations ---

TEST_P(DefenseBackendTest, PersistAssignsMonotoneVersions) {
  BackendFixture f(GetParam());
  EXPECT_EQ(f.backend().Persist("ck", ByteView(B({1}))), 1u);
  EXPECT_EQ(f.backend().Persist("ck", ByteView(B({2}))), 2u);
  EXPECT_EQ(f.backend().Persist("ck", ByteView(B({3}))), 3u);
}

TEST_P(DefenseBackendTest, OpenAfterRebootServesLatestRecord) {
  BackendFixture f(GetParam());
  f.backend().Persist("ck", ByteView(B({10})));
  f.backend().Persist("ck", ByteView(B({20})));
  f.Reboot();
  const OpenResult r = f.backend().Open("ck", /*verify=*/true);
  EXPECT_EQ(r.status, OpenStatus::kFresh);
  ASSERT_TRUE(r.record.has_value());
  EXPECT_EQ(*r.record, B({20}));
  EXPECT_EQ(r.version, 2u);
  EXPECT_FALSE(r.repaired);  // Nothing was attacked; the local blob is the freshest.
}

TEST_P(DefenseBackendTest, OpenUnknownKeyIsEmpty) {
  BackendFixture f(GetParam());
  const OpenResult r = f.backend().Open("never-written", /*verify=*/true);
  EXPECT_EQ(r.status, OpenStatus::kEmpty);
  EXPECT_FALSE(r.record.has_value());
  EXPECT_EQ(r.version, 0u);
}

// --- The rollback attack (StorageFate wal=kOldest): detection vs repair ---

TEST_P(DefenseBackendTest, RolledBackDeviceVerdictMatchesCaps) {
  BackendFixture f(GetParam());
  f.backend().Persist("ck", ByteView(B({1})));
  f.backend().Persist("ck", ByteView(B({2})));
  f.Reboot();
  f.device().SetRollbackMode(RollbackMode::kOldest);  // Adversary serves version 1.
  const OpenResult r = f.backend().Open("ck", /*verify=*/true);
  f.device().SetRollbackMode(RollbackMode::kLatest);
  EXPECT_EQ(r.expected_version, 2u);  // Every backend proves the real freshness floor.
  switch (GetParam()) {
    case DefenseKind::kLocal:
    case DefenseKind::kHealer:
      // Detection without repair: refuse the stale record but surface it (a
      // network-recovering caller wants the version numbers, not the bytes).
      EXPECT_EQ(r.status, OpenStatus::kRolledBack);
      ASSERT_TRUE(r.record.has_value());
      EXPECT_EQ(*r.record, B({1}));
      EXPECT_EQ(r.version, 1u);
      EXPECT_FALSE(r.repaired);
      break;
    case DefenseKind::kRollbaccine:
      // Herd immunity: the freshest peer copy replaces the stale blob.
      EXPECT_EQ(r.status, OpenStatus::kFresh);
      ASSERT_TRUE(r.record.has_value());
      EXPECT_EQ(*r.record, B({2}));
      EXPECT_EQ(r.version, 2u);
      EXPECT_TRUE(r.repaired);
      break;
  }
}

// --- The erase attack (StorageFate wal=kErase): the gap local cannot see ---

TEST_P(DefenseBackendTest, ErasedDeviceVerdictMatchesCaps) {
  BackendFixture f(GetParam());
  f.backend().Persist("ck", ByteView(B({1})));
  f.backend().Persist("ck", ByteView(B({2})));
  f.Reboot();
  f.device().SetRollbackMode(RollbackMode::kErase);  // Adversary hides every version.
  const OpenResult r = f.backend().Open("ck", /*verify=*/true);
  f.device().SetRollbackMode(RollbackMode::kLatest);
  switch (GetParam()) {
    case DefenseKind::kLocal:
      // The documented local gap: an erased blob is indistinguishable from first boot
      // (the counter compare never runs without a blob). README threat-model row.
      EXPECT_EQ(r.status, OpenStatus::kEmpty);
      EXPECT_FALSE(r.record.has_value());
      break;
    case DefenseKind::kRollbaccine:
      EXPECT_EQ(r.status, OpenStatus::kFresh);
      ASSERT_TRUE(r.record.has_value());
      EXPECT_EQ(*r.record, B({2}));
      EXPECT_EQ(r.version, 2u);
      EXPECT_TRUE(r.repaired);
      break;
    case DefenseKind::kHealer:
      // Certificates prove state existed (floor 2) but cannot resurrect the bytes.
      EXPECT_EQ(r.status, OpenStatus::kRolledBack);
      EXPECT_FALSE(r.record.has_value());
      EXPECT_EQ(r.expected_version, 2u);
      break;
  }
}

// --- verify=false is the broken-variant hook: detection must NOT fire ---

TEST_P(DefenseBackendTest, UnverifiedOpenInstallsStaleState) {
  BackendFixture f(GetParam());
  f.backend().Persist("ck", ByteView(B({1})));
  f.backend().Persist("ck", ByteView(B({2})));
  f.Reboot();
  f.device().SetRollbackMode(RollbackMode::kOldest);
  const OpenResult r = f.backend().Open("ck", /*verify=*/false);
  f.device().SetRollbackMode(RollbackMode::kLatest);
  // All three skip their freshness check and serve the rolled-back record as fresh —
  // exactly the silent stale install the chaos version-monotonic oracle exists to catch
  // (BrokenVariant kQuorumRestoreSkip / kCertFloorSkip in src/chaos/runner.h).
  EXPECT_EQ(r.status, OpenStatus::kFresh);
  ASSERT_TRUE(r.record.has_value());
  EXPECT_EQ(*r.record, B({1}));
  EXPECT_EQ(r.version, 1u);
  EXPECT_EQ(r.expected_version, 0u);  // No freshness claim was even computed.
}

// --- Version resumption: a post-attack Persist must clear the proven floor ---

TEST_P(DefenseBackendTest, PersistAfterAttackResumesPastFreshnessFloor) {
  BackendFixture f(GetParam());
  f.backend().Persist("ck", ByteView(B({1})));
  f.backend().Persist("ck", ByteView(B({2})));
  f.Reboot();
  f.device().SetRollbackMode(RollbackMode::kOldest);
  (void)f.backend().Open("ck", /*verify=*/true);
  f.device().SetRollbackMode(RollbackMode::kLatest);
  // Whether the open detected (local/healer) or repaired (rollbaccine), the incarnation
  // learned the floor is 2 — re-persisting must not mint a version the defense already
  // certified for different bytes.
  EXPECT_EQ(f.backend().Persist("ck", ByteView(B({3}))), 3u);
  f.Reboot();
  const OpenResult r = f.backend().Open("ck", /*verify=*/true);
  EXPECT_EQ(r.status, OpenStatus::kFresh);
  EXPECT_EQ(r.version, 3u);
}

// --- Keys are independent surfaces ---

TEST_P(DefenseBackendTest, KeysVersionIndependently) {
  // Local's counter binds to a single persistence stream, so this contract is asserted
  // only for the quorum backends (the -R checkers persist exactly one key under local).
  if (GetParam() == DefenseKind::kLocal) {
    GTEST_SKIP() << "local counter binds one stream";
  }
  BackendFixture f(GetParam());
  EXPECT_EQ(f.backend().Persist("a", ByteView(B({1}))), 1u);
  EXPECT_EQ(f.backend().Persist("b", ByteView(B({9}))), 1u);
  EXPECT_EQ(f.backend().Persist("a", ByteView(B({2}))), 2u);
  f.Reboot();
  const OpenResult ra = f.backend().Open("a", /*verify=*/true);
  const OpenResult rb = f.backend().Open("b", /*verify=*/true);
  EXPECT_EQ(ra.version, 2u);
  EXPECT_EQ(rb.version, 1u);
  ASSERT_TRUE(rb.record.has_value());
  EXPECT_EQ(*rb.record, B({9}));
}

// --- Cost hooks: defended waits are charged as blocking anti-rollback I/O ---

TEST(DefenseBackendCostTest, QuorumPersistChargesRoundTrip) {
  DefenseCosts costs;
  costs.one_way = Ms(3);
  costs.replica_write = Ms(4);
  BackendFixture f(DefenseKind::kRollbaccine, CounterSpec::None(), costs);
  const SimDuration before = f.host.cpu_time_used();
  f.backend().Persist("ck", ByteView(B({1})));
  // 2 * one_way + peer write = 10 ms, on top of whatever sealing itself cost.
  EXPECT_GE(f.host.cpu_time_used() - before, Ms(10));
}

TEST(DefenseBackendCostTest, HealerOpenChargesCertificateLookup) {
  DefenseCosts costs;
  costs.one_way = Ms(2);
  costs.cert_op = Ms(1);
  BackendFixture f(DefenseKind::kHealer, CounterSpec::None(), costs);
  f.backend().Persist("ck", ByteView(B({1})));
  f.Reboot();
  const SimDuration before = f.host.cpu_time_used();
  (void)f.backend().Open("ck", /*verify=*/true);
  EXPECT_GE(f.host.cpu_time_used() - before, Ms(5));  // 2 * one_way + cert_op.
}

TEST(DefenseBackendCostTest, LocalPersistChargesCounterWrite) {
  BackendFixture f(DefenseKind::kLocal, CounterSpec::Custom(Ms(20), Ms(5)));
  const SimDuration before = f.host.cpu_time_used();
  f.backend().Persist("ck", ByteView(B({1})));
  EXPECT_GE(f.host.cpu_time_used() - before, Ms(20));
}

// --- DefenseFate attacks: a single attacked holder never defeats the quorum ---

TEST(DefenseFateTest, RollbaccineRepairsThroughOneErasedHolder) {
  BackendFixture f(DefenseKind::kRollbaccine, CounterSpec::None());
  f.backend().Persist("ck", ByteView(B({1})));
  f.backend().Persist("ck", ByteView(B({2})));
  // Adversary wipes holder (0 + 1) % 3's copies of node 0 AND erases the local device.
  f.service.ApplyPeerFate(/*owner=*/0, DefenseFate::kPeerErased);
  f.Reboot();
  f.device().SetRollbackMode(RollbackMode::kErase);
  const OpenResult r = f.backend().Open("ck", /*verify=*/true);
  f.device().SetRollbackMode(RollbackMode::kLatest);
  EXPECT_EQ(r.status, OpenStatus::kFresh);  // Holder 2 still has version 2.
  EXPECT_EQ(r.version, 2u);
  EXPECT_TRUE(r.repaired);
}

TEST(DefenseFateTest, RollbaccineStaleHolderCannotLowerTheFreshestCopy) {
  BackendFixture f(DefenseKind::kRollbaccine, CounterSpec::None());
  f.backend().Persist("ck", ByteView(B({1})));
  f.backend().Persist("ck", ByteView(B({2})));
  f.service.ApplyPeerFate(/*owner=*/0, DefenseFate::kPeerStale);
  f.Reboot();
  f.device().SetRollbackMode(RollbackMode::kOldest);
  const OpenResult r = f.backend().Open("ck", /*verify=*/true);
  f.device().SetRollbackMode(RollbackMode::kLatest);
  EXPECT_EQ(r.status, OpenStatus::kFresh);
  EXPECT_EQ(r.version, 2u);  // FreshestPeerCopy takes the max across holders.
}

TEST(DefenseFateTest, HealerFloorSurvivesOneStaleHolder) {
  BackendFixture f(DefenseKind::kHealer, CounterSpec::None());
  f.backend().Persist("ck", ByteView(B({1})));
  f.backend().Persist("ck", ByteView(B({2})));
  f.service.ApplyPeerFate(/*owner=*/0, DefenseFate::kPeerStale);
  f.Reboot();
  f.device().SetRollbackMode(RollbackMode::kOldest);
  const OpenResult r = f.backend().Open("ck", /*verify=*/true);
  f.device().SetRollbackMode(RollbackMode::kLatest);
  // The untouched holder still certifies version 2, so the rollback is still detected.
  EXPECT_EQ(r.status, OpenStatus::kRolledBack);
  EXPECT_EQ(r.expected_version, 2u);
}

TEST(DefenseFateTest, IntactFateIsANoOp) {
  BackendFixture f(DefenseKind::kHealer, CounterSpec::None());
  f.backend().Persist("ck", ByteView(B({1})));
  f.service.ApplyPeerFate(/*owner=*/0, DefenseFate::kIntact);
  f.Reboot();
  EXPECT_EQ(f.backend().Open("ck", /*verify=*/true).status, OpenStatus::kFresh);
}

// --- The Store facet: Get refuses what Open would not certify ---

TEST_P(DefenseBackendTest, StoreFacetRoundTrips) {
  BackendFixture f(GetParam());
  const Bytes cert = B({0xCE, 0x27});
  f.backend().store().Put("ckpt-cert", ByteView(cert));
  const std::optional<Bytes> got = f.backend().store().Get("ckpt-cert");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, cert);
}

TEST(DefenseStoreFacetTest, HealerGetRefusesRolledBackRecord) {
  BackendFixture f(DefenseKind::kHealer, CounterSpec::None());
  f.backend().store().Put("ckpt-cert", ByteView(B({1})));
  f.backend().store().Put("ckpt-cert", ByteView(B({2})));
  f.Reboot();
  f.device().SetRollbackMode(RollbackMode::kOldest);
  // A rolled-back checkpoint certificate reads as missing — the floor stays conservative
  // rather than trusting a stale cert.
  EXPECT_FALSE(f.backend().store().Get("ckpt-cert").has_value());
  f.device().SetRollbackMode(RollbackMode::kLatest);
}

TEST(DefenseStoreFacetTest, RollbaccineGetRepairsRolledBackRecord) {
  BackendFixture f(DefenseKind::kRollbaccine, CounterSpec::None());
  f.backend().store().Put("ckpt-cert", ByteView(B({1})));
  f.backend().store().Put("ckpt-cert", ByteView(B({2})));
  f.Reboot();
  f.device().SetRollbackMode(RollbackMode::kOldest);
  const std::optional<Bytes> got = f.backend().store().Get("ckpt-cert");
  f.device().SetRollbackMode(RollbackMode::kLatest);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, B({2}));
}

// --- Service bookkeeping feeding bench_defense's defense-write columns ---

TEST(DefenseServiceTest, StatsCountReplicationsAndCertifications) {
  DefenseService service(3, DefenseCosts{});
  const Bytes rec = B({1});
  service.Replicate(0, "k", 1, ByteView(rec));
  service.Replicate(0, "k", 2, ByteView(rec));
  service.Certify(1, "k", 1);
  EXPECT_EQ(service.replications(), 2u);
  EXPECT_EQ(service.certifications(), 1u);
  ASSERT_TRUE(service.FreshestPeerCopy(0, "k").has_value());
  EXPECT_EQ(service.FreshestPeerCopy(0, "k")->version, 2u);
  EXPECT_EQ(service.CertifiedFloor(1, "k"), 1u);
  EXPECT_EQ(service.CertifiedFloor(2, "k"), 0u);  // Nothing certified for node 2.
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DefenseBackendTest,
                         ::testing::Values(DefenseKind::kLocal, DefenseKind::kRollbaccine,
                                           DefenseKind::kHealer),
                         [](const ::testing::TestParamInfo<DefenseKind>& info) {
                           return std::string(persist::DefenseKindName(info.param));
                         });

}  // namespace
}  // namespace achilles
