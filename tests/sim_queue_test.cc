// Differential determinism suite for the event-queue engines (DESIGN.md §2.21).
//
// The CalendarQueue is the production engine; the HeapQueue is the simple, obviously
// correct reference. Every test here drives both engines through an identical operation
// script and requires identical observable behaviour: pop order (time, then FIFO seq),
// Step/RunUntil results, pending/peak accounting, and cancel semantics — including
// cancelling handles whose events already fired, which must be a safe no-op.
//
// The fuzz loop runs >= 50 seeds x >= 10,000 operations each, cycling adversarial time
// distributions (uniform short delays, heavy same-tick ties, far-future tails, and a mix)
// that stress the calendar's bucket adaptation, intra-bucket FIFO chains, and the
// fruitless-year direct-scan fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulation.h"

namespace achilles {
namespace {

using Firing = std::pair<SimTime, uint64_t>;  // (virtual time, schedule tag)

template <class Queue>
struct Probe {
  SimulationT<Queue>* sim;
  std::vector<Firing> fired;

  static void Fire(void* self, uint64_t tag, uint64_t) {
    auto* p = static_cast<Probe*>(self);
    p->fired.emplace_back(p->sim->Now(), tag);
  }
};

// Adversarial delay distributions, selected per seed.
SimDuration DrawDelay(Rng& rng, int mode) {
  switch (mode) {
    case 0:  // Uniform short: the steady-state protocol shape.
      return static_cast<SimDuration>(rng.UniformU64(static_cast<uint64_t>(Us(500))));
    case 1:  // Heavy ties: a handful of hot ticks exercises FIFO chains within a bucket.
      return static_cast<SimDuration>(Us(25) * static_cast<SimDuration>(rng.UniformU64(4)));
    case 2:  // Far-future tail: timeouts a year of buckets away force the direct scan.
      if (rng.UniformU64(20) == 0) {
        return Sec(1) + static_cast<SimDuration>(rng.UniformU64(static_cast<uint64_t>(Sec(5))));
      }
      return static_cast<SimDuration>(rng.UniformU64(static_cast<uint64_t>(Us(50))));
    default:  // Mixed: re-roll the mode per event.
      return DrawDelay(rng, static_cast<int>(rng.UniformU64(3)));
  }
}

// Applies one identical op script to both engines and checks lockstep equivalence.
void DifferentialFuzz(uint64_t seed, size_t num_ops) {
  SimulationT<HeapQueue> heap(seed, SimEngine::kHeap);
  SimulationT<CalendarQueue> cal(seed, SimEngine::kCalendar);
  Probe<HeapQueue> hp{&heap, {}};
  Probe<CalendarQueue> cp{&cal, {}};
  Rng script(seed * 0x9e3779b97f4a7c15ULL + 1);
  // Handles are never dropped: late cancels deliberately hit fired/recycled events.
  std::vector<EventId> heap_ids, cal_ids;
  uint64_t tag = 0;
  const int mode = static_cast<int>(seed % 4);

  for (size_t op = 0; op < num_ops; ++op) {
    const uint64_t roll = script.UniformU64(100);
    if (roll < 50) {
      const SimDuration d = DrawDelay(script, mode);
      heap_ids.push_back(heap.ScheduleRawAfter(d, &Probe<HeapQueue>::Fire, &hp, tag));
      cal_ids.push_back(cal.ScheduleRawAfter(d, &Probe<CalendarQueue>::Fire, &cp, tag));
      ++tag;
    } else if (roll < 58) {
      // Boxed fallback events must interleave with raw ones identically.
      const SimDuration d = DrawDelay(script, mode);
      const uint64_t t = tag++;
      heap_ids.push_back(
          heap.ScheduleAfter(d, [&hp, t] { hp.fired.emplace_back(hp.sim->Now(), t); }));
      cal_ids.push_back(
          cal.ScheduleAfter(d, [&cp, t] { cp.fired.emplace_back(cp.sim->Now(), t); }));
    } else if (roll < 68 && !heap_ids.empty()) {
      // Cancel a uniformly random handle — pending, fired, or already cancelled alike.
      const size_t pick = script.UniformU64(heap_ids.size());
      heap.Cancel(heap_ids[pick]);
      cal.Cancel(cal_ids[pick]);
    } else if (roll < 90) {
      ASSERT_EQ(heap.Step(), cal.Step());
    } else {
      ASSERT_EQ(heap.Now(), cal.Now());
      const SimTime t = heap.Now() + DrawDelay(script, mode);
      heap.RunUntil(t);
      cal.RunUntil(t);
      ASSERT_EQ(heap.Now(), t);
      ASSERT_EQ(cal.Now(), t);
    }
    ASSERT_EQ(heap.Now(), cal.Now()) << "seed " << seed << " op " << op;
    ASSERT_EQ(heap.pending_events(), cal.pending_events()) << "seed " << seed << " op " << op;
    ASSERT_EQ(heap.executed_events(), cal.executed_events());
  }

  heap.RunUntilIdle();
  cal.RunUntilIdle();
  ASSERT_EQ(hp.fired.size(), cp.fired.size()) << "seed " << seed;
  ASSERT_EQ(hp.fired, cp.fired) << "seed " << seed;
  ASSERT_EQ(heap.executed_events(), cal.executed_events());
  ASSERT_EQ(heap.peak_pending_events(), cal.peak_pending_events()) << "seed " << seed;
  ASSERT_EQ(heap.pending_events(), 0u);
  ASSERT_EQ(cal.pending_events(), 0u);
  // Firing times are non-decreasing; equal-time runs pop in schedule (tag) order because
  // this script never schedules two events at the same (time, tag) out of tag order.
  for (size_t i = 1; i < hp.fired.size(); ++i) {
    ASSERT_LE(hp.fired[i - 1].first, hp.fired[i].first) << "seed " << seed;
  }
}

TEST(SimQueueDifferentialTest, FuzzManySeedsManyOps) {
  // 56 seeds x 12,000 ops — covers all four distribution modes 14 times over.
  for (uint64_t seed = 1; seed <= 56; ++seed) {
    DifferentialFuzz(seed, 12'000);
    if (HasFatalFailure()) {
      return;
    }
  }
}

// Equal-time events pop strictly FIFO (by schedule seq) on both engines, even when a
// burst lands on one tick interleaved with earlier/later stragglers.
template <class Queue>
std::vector<uint64_t> TieBreakOrder() {
  SimulationT<Queue> sim(7);
  Probe<Queue> probe{&sim, {}};
  const SimTime burst = Us(100);
  for (uint64_t i = 0; i < 256; ++i) {
    sim.ScheduleRawAt(burst, &Probe<Queue>::Fire, &probe, i);
    if (i % 16 == 0) {  // Stragglers around the burst must not disturb the FIFO chain.
      sim.ScheduleRawAt(burst - Us(1), &Probe<Queue>::Fire, &probe, 10'000 + i);
      sim.ScheduleRawAt(burst + Us(1), &Probe<Queue>::Fire, &probe, 20'000 + i);
    }
  }
  sim.RunUntilIdle();
  std::vector<uint64_t> tags;
  for (const Firing& f : probe.fired) {
    tags.push_back(f.second);
  }
  return tags;
}

TEST(SimQueueDifferentialTest, EqualTimePopsAreFifoOnBothEngines) {
  const std::vector<uint64_t> heap_tags = TieBreakOrder<HeapQueue>();
  const std::vector<uint64_t> cal_tags = TieBreakOrder<CalendarQueue>();
  ASSERT_EQ(heap_tags, cal_tags);
  // Within the burst tick, tags must appear in exact schedule order.
  uint64_t expect = 0;
  for (const uint64_t tag : heap_tags) {
    if (tag < 10'000) {
      EXPECT_EQ(tag, expect);
      ++expect;
    }
  }
  EXPECT_EQ(expect, 256u);
}

template <class Queue>
void CancelOfFiredIsNoOp() {
  SimulationT<Queue> sim(3);
  Probe<Queue> probe{&sim, {}};
  const EventId first = sim.ScheduleRawAfter(Us(1), &Probe<Queue>::Fire, &probe, 1);
  sim.ScheduleRawAfter(Us(2), &Probe<Queue>::Fire, &probe, 2);
  ASSERT_TRUE(sim.Step());  // Fires tag 1; its node returns to the pool.
  const size_t pending_before = sim.pending_events();
  sim.Cancel(first);           // Already fired: generation check rejects the handle.
  sim.Cancel(kInvalidEvent);   // Never scheduled: equally a no-op.
  EXPECT_EQ(sim.pending_events(), pending_before);
  // The node slot may be recycled by a new event; the stale handle must not kill it.
  const EventId recycled = sim.ScheduleRawAfter(Us(3), &Probe<Queue>::Fire, &probe, 3);
  sim.Cancel(first);
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.RunUntilIdle();
  ASSERT_EQ(probe.fired.size(), 3u);
  EXPECT_EQ(probe.fired[1].second, 2u);
  EXPECT_EQ(probe.fired[2].second, 3u);
  sim.Cancel(recycled);  // Cancel after idle: everything fired, still a no-op.
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimQueueDifferentialTest, CancelOfFiredEventIsNoOpHeap) {
  CancelOfFiredIsNoOp<HeapQueue>();
}

TEST(SimQueueDifferentialTest, CancelOfFiredEventIsNoOpCalendar) {
  CancelOfFiredIsNoOp<CalendarQueue>();
}

template <class Queue>
void RunUntilBoundary() {
  SimulationT<Queue> sim(11);
  Probe<Queue> probe{&sim, {}};
  sim.ScheduleRawAt(Us(10), &Probe<Queue>::Fire, &probe, 1);
  sim.ScheduleRawAt(Us(20), &Probe<Queue>::Fire, &probe, 2);  // Exactly at the boundary.
  sim.ScheduleRawAt(Us(20) + 1, &Probe<Queue>::Fire, &probe, 3);
  sim.RunUntil(Us(20));
  // Events at t <= boundary fire; the clock parks exactly at the boundary.
  ASSERT_EQ(probe.fired.size(), 2u);
  EXPECT_EQ(probe.fired[1].second, 2u);
  EXPECT_EQ(sim.Now(), Us(20));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  ASSERT_EQ(probe.fired.size(), 3u);
  EXPECT_EQ(sim.Now(), Us(20) + 1);
}

TEST(SimQueueDifferentialTest, RunUntilBoundaryIsInclusiveHeap) {
  RunUntilBoundary<HeapQueue>();
}

TEST(SimQueueDifferentialTest, RunUntilBoundaryIsInclusiveCalendar) {
  RunUntilBoundary<CalendarQueue>();
}

template <class Queue>
void PendingAndPeakAccounting() {
  SimulationT<Queue> sim(5);
  Probe<Queue> probe{&sim, {}};
  std::vector<EventId> ids;
  for (uint64_t i = 0; i < 100; ++i) {
    ids.push_back(sim.ScheduleRawAfter(Us(1) + static_cast<SimDuration>(i),
                                       &Probe<Queue>::Fire, &probe, i));
  }
  EXPECT_EQ(sim.pending_events(), 100u);
  EXPECT_EQ(sim.peak_pending_events(), 100u);
  for (size_t i = 0; i < 40; ++i) {  // Cancels shrink pending but never the peak.
    sim.Cancel(ids[i * 2]);
  }
  EXPECT_EQ(sim.pending_events(), 60u);
  EXPECT_EQ(sim.peak_pending_events(), 100u);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 60u);
  EXPECT_EQ(probe.fired.size(), 60u);
  EXPECT_EQ(sim.peak_pending_events(), 100u);
  // The slab pool reports no live nodes once everything fired or was reclaimed. (The heap
  // engine reclaims cancelled nodes lazily, but RunUntilIdle drains the whole heap.)
  EXPECT_EQ(sim.pool().live(), 0u);
  EXPECT_GE(sim.pool().high_water(), 100u);
}

TEST(SimQueueDifferentialTest, PendingAndPeakAccountingHeap) {
  PendingAndPeakAccounting<HeapQueue>();
}

TEST(SimQueueDifferentialTest, PendingAndPeakAccountingCalendar) {
  PendingAndPeakAccounting<CalendarQueue>();
}

// The production DualQueue switch must behave exactly like the pure engines it wraps.
TEST(SimQueueDifferentialTest, DualQueueMatchesPureEnginesUnderFuzz) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Simulation heap_sim(seed, SimEngine::kHeap);
    Simulation cal_sim(seed, SimEngine::kCalendar);
    std::vector<Firing> heap_fired, cal_fired;
    Rng script(seed);
    for (int i = 0; i < 2'000; ++i) {
      const SimDuration d =
          static_cast<SimDuration>(script.UniformU64(static_cast<uint64_t>(Ms(5))));
      const uint64_t t = static_cast<uint64_t>(i);
      heap_sim.ScheduleAfter(d, [&heap_fired, &heap_sim, t] {
        heap_fired.emplace_back(heap_sim.Now(), t);
      });
      cal_sim.ScheduleAfter(d, [&cal_fired, &cal_sim, t] {
        cal_fired.emplace_back(cal_sim.Now(), t);
      });
      if (i % 5 == 0) {
        heap_sim.Step();
        cal_sim.Step();
      }
    }
    heap_sim.RunUntilIdle();
    cal_sim.RunUntilIdle();
    ASSERT_EQ(heap_fired, cal_fired) << "seed " << seed;
  }
}

}  // namespace
}  // namespace achilles
