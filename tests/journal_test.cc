// Flight-recorder and forensics tests (ISSUE 4): journal ring mechanics (bounded memory,
// incarnation tagging, digest determinism), forensics invariant predicates over synthetic
// journals, and end-to-end chaos properties — same seed gives a bit-identical journal
// (digest-checked, including across script replay), journaling on/off leaves the run's
// event log untouched, and the broken recovery-nonce variant yields a golden incident
// report that names the replica, the stale nonce round, and the violated invariant.
#include <gtest/gtest.h>

#include "src/chaos/runner.h"
#include "src/obs/forensics.h"
#include "src/obs/journal.h"
#include "src/obs/trace.h"

namespace achilles {
namespace {

using chaos::BrokenVariant;
using chaos::ChaosOptions;
using chaos::ChaosResult;
using obs::Journal;
using obs::JournalKind;
using obs::JournalRecord;

// --- Journal ring mechanics ---

TEST(JournalTest, DisabledJournalDropsEverything) {
  Journal journal;
  EXPECT_FALSE(journal.enabled());
  EXPECT_EQ(journal.Record(0, JournalKind::kBoot, Ms(1)), 0u);
  EXPECT_EQ(journal.recorded(), 0u);
  EXPECT_EQ(journal.live(), 0u);
  EXPECT_EQ(journal.num_nodes(), 0u);
}

TEST(JournalTest, RecordAssignsMonotonicSeqsAndIncarnations) {
  Journal journal;
  journal.set_enabled(true);
  const uint64_t s1 = journal.Record(1, JournalKind::kBoot, Ms(1));
  const uint64_t s2 = journal.Record(1, JournalKind::kViewEnter, Ms(2), s1, /*a=*/3);
  const uint64_t s3 = journal.Record(1, JournalKind::kCrash, Ms(3));
  const uint64_t s4 = journal.Record(1, JournalKind::kBoot, Ms(4));
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s3);
  EXPECT_LT(s3, s4);
  EXPECT_EQ(journal.incarnation(1), 2u);
  const std::vector<JournalRecord> events = journal.NodeEvents(1);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].incarnation, 1u);
  EXPECT_EQ(events[1].parent, s1);
  EXPECT_EQ(events[3].incarnation, 2u);
}

TEST(JournalTest, BoundedMemoryEvictsOldFlowBeforeControl) {
  Journal journal(/*control_capacity=*/4, /*flow_capacity=*/8);
  journal.set_enabled(true);
  journal.Record(0, JournalKind::kBoot, 0);
  for (int i = 0; i < 100; ++i) {
    journal.Record(0, JournalKind::kSend, Ms(i), 0, /*a=*/1, /*b=*/64, "msg");
  }
  for (int i = 0; i < 10; ++i) {
    journal.Record(0, JournalKind::kCommit, Ms(200 + i), 0, /*a=*/i + 1);
  }
  EXPECT_EQ(journal.recorded(), 111u);
  EXPECT_GT(journal.evicted(), 0u);
  EXPECT_LE(journal.live(), 12u);  // 4 control + 8 flow.
  EXPECT_EQ(journal.recorded(), journal.evicted() + journal.live());
  // The flow flood must not evict control history: the latest commits survive.
  const std::vector<JournalRecord> events = journal.NodeEvents(0);
  uint64_t max_commit_height = 0;
  size_t commits = 0;
  for (const JournalRecord& r : events) {
    if (r.kind == JournalKind::kCommit) {
      ++commits;
      max_commit_height = std::max(max_commit_height, r.a);
    }
  }
  EXPECT_EQ(commits, 4u);  // Control ring holds its capacity's worth.
  EXPECT_EQ(max_commit_height, 10u);
}

TEST(JournalTest, DigestIsDeterministicAndSensitive) {
  auto build = [](bool extra) {
    Journal journal(16, 16);
    journal.set_enabled(true);
    journal.Record(0, JournalKind::kBoot, 0);
    journal.Record(0, JournalKind::kViewEnter, Ms(1), 0, 1);
    if (extra) {
      journal.Record(0, JournalKind::kCommit, Ms(2), 0, 1);
    }
    return journal.DigestHex();
  };
  EXPECT_EQ(build(false), build(false));
  EXPECT_NE(build(false), build(true));
}

TEST(JournalTest, AnnotateTracerExportsControlEventsOnly) {
  Journal journal;
  journal.set_enabled(true);
  journal.Record(2, JournalKind::kBoot, Ms(1));
  journal.Record(2, JournalKind::kSend, Ms(2), 0, 1, 64, "vote");
  journal.Record(2, JournalKind::kCommit, Ms(3), 0, /*height=*/5);
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  journal.AnnotateTracer(&tracer);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_NE(json.find("boot"), std::string::npos);
  EXPECT_NE(json.find("commit"), std::string::npos);
  EXPECT_EQ(json.find("\"send\""), std::string::npos);  // Flow events are skipped.
}

// --- Forensics invariant predicates over synthetic journals ---

TEST(ForensicsTest, RecoveryFreshnessPredicateNamesStaleRound) {
  Journal journal;
  journal.set_enabled(true);
  journal.Record(1, JournalKind::kBoot, Ms(1));
  journal.Record(1, JournalKind::kRecoveryEnter, Ms(2));
  journal.Record(1, JournalKind::kRecoveryRound, Ms(3), 0, /*nonce=*/70);
  journal.Record(1, JournalKind::kRecoveryRound, Ms(4), 0, /*nonce=*/90);
  journal.Record(1, JournalKind::kRecoveryExit, Ms(5), 0, /*consumed=*/70, /*view=*/3);
  obs::IncidentQuery query;
  query.oracle = "freshness";
  query.node = 1;
  const obs::IncidentReport report = obs::AnalyzeIncident(journal, query);
  EXPECT_EQ(report.first_violated, "recovery-freshness");
  EXPECT_EQ(report.replica, 1u);
  EXPECT_EQ(report.consumed_nonce, 70u);
  EXPECT_EQ(report.fresh_nonce, 90u);
  EXPECT_EQ(report.stale_round_index, 1u);
  EXPECT_EQ(report.final_round_index, 2u);
  EXPECT_NE(report.text.find("STALE nonce round"), std::string::npos) << report.text;
  EXPECT_NE(report.text.find("replica 1"), std::string::npos) << report.text;
}

TEST(ForensicsTest, CommitAgreementPredicate) {
  Journal journal;
  journal.set_enabled(true);
  journal.Record(0, JournalKind::kCommit, Ms(1), 0, /*height=*/7, /*hash=*/0xaaaa);
  journal.Record(2, JournalKind::kCommit, Ms(2), 0, /*height=*/7, /*hash=*/0xbbbb);
  obs::IncidentQuery query;
  query.oracle = "agreement";
  query.height = 7;
  const obs::IncidentReport report = obs::AnalyzeIncident(journal, query);
  EXPECT_EQ(report.first_violated, "commit-agreement");
  EXPECT_NE(report.text.find("conflicts with"), std::string::npos) << report.text;
}

TEST(ForensicsTest, CounterMonotonicityPredicate) {
  Journal journal;
  journal.set_enabled(true);
  journal.Record(3, JournalKind::kCounterWrite, Ms(1), 0, /*value=*/5);
  journal.Record(3, JournalKind::kCounterWrite, Ms(2), 0, /*value=*/6);
  journal.Record(3, JournalKind::kCounterRead, Ms(3), 0, /*value=*/2);  // Regression.
  obs::IncidentQuery query;
  query.oracle = "counter";
  query.node = 3;
  const obs::IncidentReport report = obs::AnalyzeIncident(journal, query);
  EXPECT_EQ(report.first_violated, "counter-monotonicity");
}

TEST(ForensicsTest, StaleSealAcceptedPredicate) {
  Journal journal;
  journal.set_enabled(true);
  journal.Record(1, JournalKind::kBoot, Ms(1));
  // Unseal served version 2 of 5 (stale), then the replica kept doing protocol work.
  journal.Record(1, JournalKind::kUnseal, Ms(2), 0, /*served=*/2, /*latest=*/5);
  journal.Record(1, JournalKind::kViewEnter, Ms(3), 0, /*view=*/4);
  obs::IncidentQuery query;
  query.oracle = "counter";
  query.node = 1;
  const obs::IncidentReport report = obs::AnalyzeIncident(journal, query);
  EXPECT_EQ(report.first_violated, "stale-seal-accepted");
  EXPECT_NE(report.text.find("rolled back"), std::string::npos) << report.text;
}

TEST(ForensicsTest, RollbackRejectClearsStaleSeal) {
  Journal journal;
  journal.set_enabled(true);
  journal.Record(1, JournalKind::kUnseal, Ms(2), 0, /*served=*/2, /*latest=*/5);
  journal.Record(1, JournalKind::kRollbackReject, Ms(3), 0, /*sealed=*/2, /*expected=*/5);
  journal.Record(1, JournalKind::kHalt, Ms(3));
  obs::IncidentQuery query;
  query.oracle = "counter";
  query.node = 1;
  const obs::IncidentReport report = obs::AnalyzeIncident(journal, query);
  EXPECT_TRUE(report.first_violated.empty()) << report.first_violated;
}

// --- End-to-end: chaos runs with the journal on ---

TEST(ChaosJournalTest, SameSeedGivesBitIdenticalJournal) {
  ChaosOptions options;
  options.journal = true;
  const ChaosResult a = chaos::RunChaosSeed(options, 5);
  const ChaosResult b = chaos::RunChaosSeed(options, 5);
  ASSERT_FALSE(a.journal_digest_hex.empty());
  ASSERT_FALSE(a.journal_text.empty());
  EXPECT_EQ(a.journal_digest_hex, b.journal_digest_hex);
  EXPECT_EQ(a.journal_text, b.journal_text);
}

TEST(ChaosJournalTest, JournalingDoesNotPerturbTheRun) {
  ChaosOptions with;
  with.journal = true;
  ChaosOptions without;
  without.journal = false;
  const ChaosResult a = chaos::RunChaosSeed(with, 7);
  const ChaosResult b = chaos::RunChaosSeed(without, 7);
  // The simulated outcome must be bit-identical with the flight recorder on or off.
  EXPECT_EQ(a.log_digest_hex, b.log_digest_hex);
  EXPECT_EQ(a.final_height, b.final_height);
  EXPECT_TRUE(b.journal_digest_hex.empty());
}

TEST(ChaosJournalTest, ScriptReplayReproducesTheJournal) {
  ChaosOptions options;
  options.journal = true;
  const ChaosResult original = chaos::RunChaosSeed(options, 9);
  const ScriptArtifact artifact = original.Artifact();
  Protocol protocol = Protocol::kAchilles;
  ASSERT_TRUE(ProtocolFromName(artifact.protocol, &protocol));
  const ChaosResult replayed = chaos::RunChaosScript(options, artifact.seed, protocol,
                                                     artifact.f, artifact.script);
  EXPECT_EQ(replayed.log_digest_hex, original.log_digest_hex);
  EXPECT_EQ(replayed.journal_digest_hex, original.journal_digest_hex);
}

// Golden incident report for the planted recovery-nonce bug (acceptance criterion): the
// report must name the replica, the stale nonce round it consumed, and the first violated
// invariant predicate.
TEST(ChaosJournalTest, GoldenIncidentReportForBrokenRecoveryNonce) {
  ChaosOptions options;
  options.broken = BrokenVariant::kRecoveryNonce;
  options.journal = true;
  const ChaosResult result = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(result.ok) << "broken recovery-nonce variant passed the oracles";
  ASSERT_FALSE(result.incident_report.empty());
  const std::string& report = result.incident_report;
  // Names the violated invariant.
  EXPECT_NE(report.find("recovery-freshness"), std::string::npos) << report;
  // Names the victim replica (the canonical trigger script reboots replica 1).
  EXPECT_NE(report.find("replica 1"), std::string::npos) << report;
  // Names the stale nonce round that was consumed.
  EXPECT_NE(report.find("STALE nonce round"), std::string::npos) << report;
  EXPECT_NE(report.find("request round"), std::string::npos) << report;
  // The annotated Perfetto trace is exported alongside.
  EXPECT_FALSE(result.journal_trace_json.empty());
  EXPECT_NE(result.journal_trace_json.find("recovery-exit"), std::string::npos);
}

TEST(ChaosJournalTest, IncidentReportIsDeterministic) {
  ChaosOptions options;
  options.broken = BrokenVariant::kRecoveryNonce;
  options.journal = true;
  const ChaosResult a = chaos::RunChaosSeed(options, 1);
  const ChaosResult b = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(a.ok);
  EXPECT_EQ(a.incident_report, b.incident_report);  // Golden: same seed, same report.
  EXPECT_EQ(a.journal_digest_hex, b.journal_digest_hex);
}

// Golden incident report for the planted stale-read-lease bug (ISSUE 6 acceptance
// criterion): the linearizability oracle must flag the run at a fixed seed, and the report
// must name the stale read's key, the version it returned, the newer version that was
// already committed, and the replica that served it.
TEST(ChaosJournalTest, GoldenIncidentReportForBrokenStaleReadLease) {
  ChaosOptions options;
  options.broken = BrokenVariant::kStaleReadLease;
  options.journal = true;
  const ChaosResult result = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(result.ok) << "broken stale-read-lease variant passed the oracles";
  ASSERT_FALSE(result.incident_report.empty());
  const std::string& report = result.incident_report;
  // Names the oracle family and the anomaly.
  EXPECT_NE(report.find("oracle:    linearizability"), std::string::npos) << report;
  EXPECT_NE(report.find("stale read on key"), std::string::npos) << report;
  // Names the version the client was served and the newer committed one.
  EXPECT_NE(report.find("returned version"), std::string::npos) << report;
  EXPECT_NE(report.find("was already committed"), std::string::npos) << report;
  // Names the fast-path serve and the deposed leaseholder (the canonical trigger isolates
  // replica 0, BRaft's bootstrap leader).
  EXPECT_NE(report.find("lease read"), std::string::npos) << report;
  EXPECT_NE(report.find("served by replica 0"), std::string::npos) << report;
  // The recorded client history rides along as a failure artifact.
  EXPECT_FALSE(result.history_text.empty());
  EXPECT_FALSE(result.history_digest_hex.empty());
  EXPECT_NE(result.history_text.find("kv-history"), std::string::npos);
}

TEST(ChaosJournalTest, StaleReadLeaseIncidentIsDeterministic) {
  ChaosOptions options;
  options.broken = BrokenVariant::kStaleReadLease;
  options.journal = true;
  const ChaosResult a = chaos::RunChaosSeed(options, 1);
  const ChaosResult b = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(a.ok);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.incident_report, b.incident_report);
  EXPECT_EQ(a.journal_digest_hex, b.journal_digest_hex);
  EXPECT_EQ(a.history_digest_hex, b.history_digest_hex);
}

// Golden incident report for the planted stale-snapshot-accept bug (the checkpoint
// subsystem's acceptance criterion): the checkpoint oracle must flag the run at a fixed
// seed, and the report must re-establish the violation from the journal alone — naming
// the adopted height, the certified floor it fell below, and the serving replica.
TEST(ChaosJournalTest, GoldenIncidentReportForBrokenStaleSnapshotAccept) {
  ChaosOptions options;
  options.broken = BrokenVariant::kStaleSnapshotAccept;
  options.journal = true;
  const ChaosResult result = chaos::RunChaosSeed(options, 2);
  ASSERT_FALSE(result.ok) << "broken stale-snapshot-accept variant passed the oracles";
  ASSERT_FALSE(result.incident_report.empty());
  const std::string& report = result.incident_report;
  // Names the oracle family and re-establishes the invariant from the journal.
  EXPECT_NE(report.find("oracle:    checkpoint"), std::string::npos) << report;
  EXPECT_NE(report.find("stale-snapshot-adopted"), std::string::npos) << report;
  // Names the rollback: the adopted height fell below the replica's own certified floor.
  EXPECT_NE(report.find("BELOW its own certified floor"), std::string::npos) << report;
  // Names the serving peer and the skipped checks (the planted bug's signature).
  EXPECT_NE(report.find("served by replica"), std::string::npos) << report;
  EXPECT_NE(report.find("skipped its certificate/floor checks"), std::string::npos)
      << report;
  // The causal chain walks back through the state-transfer wire protocol.
  EXPECT_NE(report.find("ckpt_fetch_resp"), std::string::npos) << report;
}

TEST(ChaosJournalTest, StaleSnapshotAcceptIncidentIsDeterministic) {
  ChaosOptions options;
  options.broken = BrokenVariant::kStaleSnapshotAccept;
  options.journal = true;
  const ChaosResult a = chaos::RunChaosSeed(options, 2);
  const ChaosResult b = chaos::RunChaosSeed(options, 2);
  ASSERT_FALSE(a.ok);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.incident_report, b.incident_report);  // Golden: same seed, same report.
  EXPECT_EQ(a.journal_digest_hex, b.journal_digest_hex);
}

}  // namespace
}  // namespace achilles
