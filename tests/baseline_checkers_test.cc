// Direct unit tests for the Damysus and OneShot trusted components: equivocation guards,
// phase ordering, seal/restore semantics, and counter binding.
#include <gtest/gtest.h>

#include <memory>

#include "src/damysus/checker.h"
#include "src/oneshot/checker.h"

namespace achilles {
namespace {

constexpr uint32_t kN = 5;
constexpr uint32_t kF = 2;

class BaselineCheckerFixture : public ::testing::Test {
 protected:
  BaselineCheckerFixture() : sim_(5), suite_(SignatureScheme::kFastHmac, kN, 23) {
    TeeConfig tee;
    tee.counter = CounterSpec::Custom(Ms(20), Ms(5));
    for (uint32_t i = 0; i < kN; ++i) {
      hosts_.push_back(std::make_unique<Host>(&sim_, i));
      platforms_.push_back(std::make_unique<NodePlatform>(
          hosts_.back().get(), &suite_, CostModel::Default(), tee, 8));
      enclaves_.push_back(std::make_unique<EnclaveRuntime>(platforms_.back().get()));
    }
  }

  Simulation sim_;
  CryptoSuite suite_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<NodePlatform>> platforms_;
  std::vector<std::unique_ptr<EnclaveRuntime>> enclaves_;
};

// --- Damysus checker ---

class DamysusCheckerTest : public BaselineCheckerFixture {
 protected:
  DamysusCheckerTest() {
    for (uint32_t i = 0; i < kN; ++i) {
      checkers_.push_back(std::make_unique<DamysusChecker>(enclaves_[i].get(), kN, kF));
    }
  }

  std::vector<SignedCert> NewViews(View v) {
    std::vector<SignedCert> certs;
    for (auto& checker : checkers_) {
      auto cert = checker->TdNewView(v);
      if (cert) {
        certs.push_back(*cert);
      }
    }
    return certs;
  }

  std::vector<std::unique_ptr<DamysusChecker>> checkers_;
};

TEST_F(DamysusCheckerTest, OneProposalPerView) {
  auto certs = NewViews(1);
  auto acc = checkers_[1]->TdAccum(certs);  // Leader of view 1.
  ASSERT_TRUE(acc.has_value());
  const BlockPtr a = Block::Create(1, Block::Genesis(), {}, 0);
  const BlockPtr b = Block::Create(1, Block::Genesis(), {Transaction{1, 0, 4}}, 0);
  EXPECT_TRUE(checkers_[1]->TdPrepare(*a, *acc).has_value());
  EXPECT_FALSE(checkers_[1]->TdPrepare(*b, *acc).has_value());
}

TEST_F(DamysusCheckerTest, OneFirstPhaseVotePerView) {
  auto certs = NewViews(1);
  auto acc = checkers_[1]->TdAccum(certs);
  const BlockPtr block = Block::Create(1, Block::Genesis(), {}, 0);
  auto prep = checkers_[1]->TdPrepare(*block, *acc);
  ASSERT_TRUE(prep.has_value());
  EXPECT_TRUE(checkers_[0]->TdVote(*prep).has_value());
  EXPECT_FALSE(checkers_[0]->TdVote(*prep).has_value());  // Second vote refused.
}

TEST_F(DamysusCheckerTest, StoreRecordsPreparedBlockOnce) {
  auto certs = NewViews(1);
  auto acc = checkers_[1]->TdAccum(certs);
  const BlockPtr block = Block::Create(1, Block::Genesis(), {}, 0);
  auto prep = checkers_[1]->TdPrepare(*block, *acc);
  QuorumCert prepared;
  prepared.hash = block->hash;
  prepared.view = 1;
  for (uint32_t i = 0; i < kF + 1; ++i) {
    auto vote = checkers_[i]->TdVote(*prep);
    if (vote) {
      prepared.sigs.push_back(vote->sig);
    } else {
      // The leader's own checker refuses TdVote only if it already voted; craft quorum
      // from the others.
    }
  }
  ASSERT_GE(prepared.sigs.size(), kF + 1);
  auto store = checkers_[3]->TdStore(prepared);
  ASSERT_TRUE(store.has_value());
  EXPECT_EQ(checkers_[3]->prepv(), 1u);
  EXPECT_EQ(checkers_[3]->preph(), block->hash);
  EXPECT_FALSE(checkers_[3]->TdStore(prepared).has_value());  // voted2 set.
}

TEST_F(DamysusCheckerTest, StoreRejectsSubQuorumOrWrongDomain) {
  auto certs = NewViews(1);
  auto acc = checkers_[1]->TdAccum(certs);
  const BlockPtr block = Block::Create(1, Block::Genesis(), {}, 0);
  auto prep = checkers_[1]->TdPrepare(*block, *acc);
  QuorumCert thin;
  thin.hash = block->hash;
  thin.view = 1;
  auto vote = checkers_[0]->TdVote(*prep);
  thin.sigs.push_back(vote->sig);
  EXPECT_FALSE(checkers_[3]->TdStore(thin).has_value());  // One sig < f+1.
}

TEST_F(DamysusCheckerTest, EveryMutationWritesCounter) {
  auto certs = NewViews(1);  // One TdNewView per checker: kN writes (plus genesis seal).
  uint64_t writes = 0;
  for (auto& platform : platforms_) {
    writes += platform->counter().writes();
  }
  EXPECT_GE(writes, static_cast<uint64_t>(kN));
  auto acc = checkers_[1]->TdAccum(certs);  // Stateless: no write.
  const uint64_t before = platforms_[1]->counter().writes();
  const BlockPtr block = Block::Create(1, Block::Genesis(), {}, 0);
  checkers_[1]->TdPrepare(*block, *acc);  // Mutation: +1 write.
  EXPECT_EQ(platforms_[1]->counter().writes(), before + 1);
}

TEST_F(DamysusCheckerTest, RestoreRoundTripsSealedState) {
  auto certs = NewViews(3);
  EXPECT_EQ(checkers_[0]->vi(), 3u);
  // Fresh enclave incarnation on the same platform restores the sealed state.
  checkers_[0].reset();
  enclaves_[0] = std::make_unique<EnclaveRuntime>(platforms_[0].get());
  auto restored = DamysusChecker::Restore(enclaves_[0].get(), kN, kF);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->vi(), 3u);
  EXPECT_EQ(restored->preph(), Block::Genesis()->hash);
}

TEST_F(DamysusCheckerTest, RestoreDetectsRollback) {
  NewViews(2);
  NewViews(4);  // Two sealed versions beyond genesis.
  checkers_[0].reset();
  platforms_[0]->storage().SetRollbackMode(RollbackMode::kOldest);
  enclaves_[0] = std::make_unique<EnclaveRuntime>(platforms_[0].get());
  EXPECT_EQ(DamysusChecker::Restore(enclaves_[0].get(), kN, kF), nullptr);
}

TEST_F(DamysusCheckerTest, RestoreWithErasedStorageFails) {
  NewViews(2);
  checkers_[0].reset();
  platforms_[0]->storage().SetRollbackMode(RollbackMode::kErase);
  enclaves_[0] = std::make_unique<EnclaveRuntime>(platforms_[0].get());
  EXPECT_EQ(DamysusChecker::Restore(enclaves_[0].get(), kN, kF), nullptr);
}

// --- OneShot checker ---

class OneShotCheckerTest : public BaselineCheckerFixture {
 protected:
  OneShotCheckerTest() {
    for (uint32_t i = 0; i < kN; ++i) {
      checkers_.push_back(std::make_unique<OneShotChecker>(enclaves_[i].get(), kN, kF));
    }
  }

  // Drives a full fast-path view v committing `block`, returning the commit QC.
  QuorumCert CommitView(View v, const BlockPtr& block, const QuorumCert& justify) {
    auto prep = checkers_[LeaderOfView(v, kN)]->ToPrepareFast(*block, justify);
    EXPECT_TRUE(prep.has_value());
    QuorumCert qc;
    qc.hash = block->hash;
    qc.view = v;
    for (uint32_t i = 0; i < kN && qc.sigs.size() < kF + 1; ++i) {
      auto vote = checkers_[i]->ToStoreFast(*prep);
      if (vote) {
        qc.sigs.push_back(vote->sig);
      }
    }
    return qc;
  }

  std::vector<std::unique_ptr<OneShotChecker>> checkers_;
};

TEST_F(OneShotCheckerTest, FastPathSinglePhaseCommit) {
  // Bootstrap view 1 via the slow path machinery: gather NEW-VIEWs and accumulate.
  std::vector<SignedCert> certs;
  for (auto& checker : checkers_) {
    certs.push_back(*checker->ToNewView(1));
  }
  auto acc = checkers_[1]->ToAccum(certs);
  ASSERT_TRUE(acc.has_value());
  const BlockPtr b1 = Block::Create(1, Block::Genesis(), {}, 0);
  auto prep1 = checkers_[1]->ToPrepareSlow(*b1, *acc);
  ASSERT_TRUE(prep1.has_value());
  EXPECT_EQ(prep1->aux, 0u);  // Slow-path marker.

  // Form a commit QC via slow-path two-phase voting.
  QuorumCert prepared;
  prepared.hash = b1->hash;
  prepared.view = 1;
  for (uint32_t i = 0; i < kN && prepared.sigs.size() < kF + 1; ++i) {
    auto vote = checkers_[i]->ToVote(*prep1);
    if (vote) {
      prepared.sigs.push_back(vote->sig);
    }
  }
  QuorumCert committed;
  committed.hash = b1->hash;
  committed.view = 1;
  for (uint32_t i = 0; i < kN && committed.sigs.size() < kF + 1; ++i) {
    auto vote = checkers_[i]->ToStoreSlow(prepared);
    if (vote) {
      committed.sigs.push_back(vote->sig);
    }
  }
  ASSERT_GE(committed.sigs.size(), kF + 1);

  // Fast path at view 2: one phase only.
  const BlockPtr b2 = Block::Create(2, b1, {}, 0);
  const QuorumCert qc2 = CommitView(2, b2, committed);
  EXPECT_GE(qc2.sigs.size(), kF + 1);
  EXPECT_EQ(checkers_[2]->vi(), 2u);
}

TEST_F(OneShotCheckerTest, FastStoreRefusesSlowPathCertificates) {
  std::vector<SignedCert> certs;
  for (auto& checker : checkers_) {
    certs.push_back(*checker->ToNewView(1));
  }
  auto acc = checkers_[1]->ToAccum(certs);
  const BlockPtr b1 = Block::Create(1, Block::Genesis(), {}, 0);
  auto slow_prep = checkers_[1]->ToPrepareSlow(*b1, *acc);
  ASSERT_TRUE(slow_prep.has_value());
  // Single-phase store on a slow-path certificate would skip the prepared-QC round.
  EXPECT_FALSE(checkers_[0]->ToStoreFast(*slow_prep).has_value());
  EXPECT_TRUE(checkers_[0]->ToVote(*slow_prep).has_value());
}

TEST_F(OneShotCheckerTest, FastStoreOncePerView) {
  std::vector<SignedCert> certs;
  for (auto& checker : checkers_) {
    certs.push_back(*checker->ToNewView(1));
  }
  auto acc = checkers_[1]->ToAccum(certs);
  const BlockPtr b1 = Block::Create(1, Block::Genesis(), {}, 0);
  auto prep = checkers_[1]->ToPrepareSlow(*b1, *acc);
  QuorumCert prepared;
  prepared.hash = b1->hash;
  prepared.view = 1;
  for (uint32_t i = 0; i < kN && prepared.sigs.size() < kF + 1; ++i) {
    auto vote = checkers_[i]->ToVote(*prep);
    if (vote) {
      prepared.sigs.push_back(vote->sig);
    }
  }
  QuorumCert committed;
  committed.hash = b1->hash;
  committed.view = 1;
  for (uint32_t i = 0; i < kN && committed.sigs.size() < kF + 1; ++i) {
    auto vote = checkers_[i]->ToStoreSlow(prepared);
    if (vote) {
      committed.sigs.push_back(vote->sig);
    }
  }
  const BlockPtr b2 = Block::Create(2, b1, {}, 0);
  auto prep2 = checkers_[2]->ToPrepareFast(*b2, committed);
  ASSERT_TRUE(prep2.has_value());
  EXPECT_TRUE(checkers_[0]->ToStoreFast(*prep2).has_value());
  EXPECT_FALSE(checkers_[0]->ToStoreFast(*prep2).has_value());  // voted2 set.
}

TEST_F(OneShotCheckerTest, RestoreDetectsRollbackLikeDamysus) {
  for (auto& checker : checkers_) {
    checker->ToNewView(2);
    checker->ToNewView(5);
  }
  checkers_[0].reset();
  platforms_[0]->storage().SetRollbackMode(RollbackMode::kOldest);
  enclaves_[0] = std::make_unique<EnclaveRuntime>(platforms_[0].get());
  EXPECT_EQ(OneShotChecker::Restore(enclaves_[0].get(), kN, kF), nullptr);
}

}  // namespace
}  // namespace achilles
