#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/consensus/metrics.h"
#include "src/harness/cluster.h"
#include "src/obs/breakdown.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace achilles {
namespace {

// --- Histogram buckets ---

TEST(HistogramTest, BucketBoundaries) {
  using obs::Histogram;
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  // Bucket i >= 1 holds [2^(i-1), 2^i): both edges must land in the right bucket.
  for (size_t i = 1; i < 62; ++i) {
    const int64_t lower = Histogram::BucketLowerBound(i);
    const int64_t upper = Histogram::BucketUpperBound(i);
    EXPECT_EQ(lower, int64_t{1} << (i - 1));
    EXPECT_EQ(upper, int64_t{1} << i);
    EXPECT_EQ(Histogram::BucketIndex(lower), i) << "lower edge of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(upper - 1), i) << "last value of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(upper), i + 1) << "upper edge belongs to next bucket";
  }
}

TEST(HistogramTest, RecordAndAggregates) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  for (int64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.bucket_count(1), 1u);  // {1}
  EXPECT_EQ(h.bucket_count(2), 2u);  // {2,3}
  EXPECT_EQ(h.bucket_count(7), 37u);  // {64..100}, bucket [64, 128)
}

TEST(HistogramTest, PercentileEndpointsAndMonotonicity) {
  obs::Histogram h;
  EXPECT_EQ(h.Percentile(50), 0.0);  // Empty.
  for (int64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(-10), 1.0);   // Clamped.
  EXPECT_DOUBLE_EQ(h.Percentile(200), 1000.0);
  double prev = 0.0;
  for (double p = 0; p <= 100; p += 5) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0);
    prev = v;
  }
  // Log-bucket interpolation is approximate but must stay within one bucket width.
  EXPECT_NEAR(h.Percentile(50), 500.0, 256.0);
}

TEST(HistogramTest, PercentileBucketBoundaryEdgeCases) {
  // Single sample: every quantile is that sample, exactly — no bucket-edge bias.
  {
    obs::Histogram h;
    h.Record(100);
    EXPECT_DOUBLE_EQ(h.Percentile(0), 100.0);
    EXPECT_DOUBLE_EQ(h.Percentile(50), 100.0);
    EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  }
  // Two samples in different buckets: p0/p100 are the extremes; p50 must not jump past
  // either extreme even though the rank falls between buckets.
  {
    obs::Histogram h;
    h.Record(10);
    h.Record(1000);
    EXPECT_DOUBLE_EQ(h.Percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
    const double p50 = h.Percentile(50);
    EXPECT_GE(p50, 10.0);
    EXPECT_LE(p50, 1000.0);
  }
  // All samples identical at a power of two (a bucket's lower edge): interpolation must
  // report the value itself, not stretch across the [2^k, 2^(k+1)) range.
  {
    obs::Histogram h;
    for (int i = 0; i < 100; ++i) {
      h.Record(64);
    }
    for (double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
      EXPECT_DOUBLE_EQ(h.Percentile(p), 64.0) << "p" << p;
    }
  }
  // Samples at the last representable value of a bucket (2^k - 1): clamping to the
  // observed extremes keeps every quantile at the value.
  {
    obs::Histogram h;
    for (int i = 0; i < 10; ++i) {
      h.Record(127);
    }
    EXPECT_DOUBLE_EQ(h.Percentile(50), 127.0);
    EXPECT_DOUBLE_EQ(h.Percentile(99), 127.0);
  }
  // A lone sample in an interior bucket between crowds: its quantile lands inside that
  // bucket's observed range, never at a neighbouring bucket edge.
  {
    obs::Histogram h;
    for (int i = 0; i < 4; ++i) {
      h.Record(2);
    }
    h.Record(40);  // Alone in bucket [32, 64).
    for (int i = 0; i < 4; ++i) {
      h.Record(1000);
    }
    const double p50 = h.Percentile(50);  // Rank 4 = the lone middle sample.
    EXPECT_GE(p50, 32.0);
    EXPECT_LT(p50, 64.0);
  }
  // Zeros are representable (bucket 0 is [0, 1)): all-zero population reports 0.
  {
    obs::Histogram h;
    h.Record(0);
    h.Record(0);
    EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.Percentile(100), 0.0);
  }
}

// --- Metrics registry ---

TEST(MetricsRegistryTest, KeysAreCanonical) {
  using Labels = obs::MetricsRegistry::Labels;
  EXPECT_EQ(obs::MetricsRegistry::Key("m", {}), "m");
  EXPECT_EQ(obs::MetricsRegistry::Key("m", Labels{{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
}

TEST(MetricsRegistryTest, CreateOrGetIsStable) {
  obs::MetricsRegistry reg;
  obs::Counter* c1 = reg.GetCounter("msgs", {{"proto", "achilles"}});
  obs::Counter* c2 = reg.GetCounter("msgs", {{"proto", "achilles"}});
  EXPECT_EQ(c1, c2);
  c1->Inc(3);
  EXPECT_EQ(c2->value(), 3u);
  EXPECT_NE(reg.GetCounter("msgs", {{"proto", "raft"}}), c1);
  reg.GetGauge("depth")->Set(2.5);
  reg.GetHistogram("lat")->Record(7);
  EXPECT_EQ(reg.size(), 4u);
  reg.ResetAll();
  EXPECT_EQ(c1->value(), 0u);
  EXPECT_EQ(reg.GetGauge("depth")->value(), 0.0);
  EXPECT_EQ(reg.GetHistogram("lat")->count(), 0u);
}

TEST(MetricsRegistryTest, ToJsonIsValidJson) {
  obs::MetricsRegistry reg;
  reg.GetCounter("net.messages")->Inc(42);
  reg.GetGauge("load", {{"host", "0"}})->Set(0.75);
  reg.GetHistogram("lat")->Record(1000);
  obs::JsonWriter w;
  reg.ToJson(&w);
  auto doc = obs::ParseJson(w.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const obs::JsonValue* msgs = doc->Get("net.messages");
  ASSERT_NE(msgs, nullptr);
  EXPECT_DOUBLE_EQ(msgs->number, 42.0);
  const obs::JsonValue* lat = doc->Get("lat");
  ASSERT_NE(lat, nullptr);
  ASSERT_TRUE(lat->is_object());
  EXPECT_DOUBLE_EQ(lat->Get("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(lat->Get("mean")->number, 1000.0);
}

// --- JSON round-trip ---

TEST(JsonTest, WriterParserRoundTrip) {
  obs::JsonWriter w;
  w.BeginObject()
      .Field("name", "bench \"quoted\" \\ path\n")
      .Field("count", uint64_t{18446744073709551615ull})
      .Field("neg", int64_t{-42})
      .Field("pi", 3.14159)
      .Field("flag", true)
      .Key("null_field")
      .Null()
      .KeyBeginArray("xs");
  w.Int(1).Int(2).Int(3).EndArray();
  w.KeyBeginObject("nested").Field("k", "v").EndObject();
  w.EndObject();

  auto doc = obs::ParseJson(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("name")->string, "bench \"quoted\" \\ path\n");
  EXPECT_DOUBLE_EQ(doc->Get("neg")->number, -42.0);
  EXPECT_DOUBLE_EQ(doc->Get("pi")->number, 3.14159);
  EXPECT_TRUE(doc->Get("flag")->boolean);
  EXPECT_EQ(doc->Get("null_field")->kind, obs::JsonValue::Kind::kNull);
  ASSERT_TRUE(doc->Get("xs")->is_array());
  EXPECT_EQ(doc->Get("xs")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc->Get("xs")->array[1].number, 2.0);
  EXPECT_EQ(doc->Get("nested")->Get("k")->string, "v");
}

TEST(JsonTest, ParserRejectsMalformed) {
  EXPECT_FALSE(obs::ParseJson("{").has_value());
  EXPECT_FALSE(obs::ParseJson("{} trailing").has_value());
  EXPECT_FALSE(obs::ParseJson("{\"a\":}").has_value());
  EXPECT_FALSE(obs::ParseJson("[1,]").has_value());
}

// --- Span tracer ---

TEST(SpanTracerTest, NestingAndParentLinks) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  const uint64_t outer = tracer.Begin("handler", /*tid=*/0, Us(10));
  const uint64_t inner = tracer.Begin("verify", /*tid=*/0, Us(12), outer);
  tracer.End(inner, 0, Us(15));
  tracer.Instant("commit", /*tid=*/0, Us(16), outer, /*arg=*/7);
  tracer.End(outer, 0, Us(20));

  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, obs::SpanEvent::Kind::kBegin);
  EXPECT_NE(outer, 0u);
  EXPECT_NE(inner, outer);
  EXPECT_EQ(events[1].parent, outer);
  EXPECT_EQ(events[3].kind, obs::SpanEvent::Kind::kInstant);
  EXPECT_EQ(events[3].arg, 7u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(SpanTracerTest, DisabledTracerRecordsNothingButHandsOutIds) {
  obs::SpanTracer tracer;
  const uint64_t a = tracer.Begin("x", 0, Us(1));
  const uint64_t b = tracer.Begin("y", 0, Us(2));
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, a);
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(SpanTracerTest, RingBufferWrapsAndCountsDropped) {
  obs::SpanTracer tracer(/*capacity=*/8);
  tracer.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    tracer.Instant("tick", 0, Us(i));
  }
  EXPECT_EQ(tracer.Events().size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  EXPECT_EQ(tracer.Events().front().ts, Us(12));  // Oldest survivor.
}

TEST(SpanTracerTest, ChromeTraceExportIsValidTraceEventJson) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  const uint64_t parent = tracer.Begin("propose", /*tid=*/1, Us(100), 0, /*arg=*/5);
  const uint64_t child = tracer.Begin("vote", /*tid=*/2, Us(150), parent);
  tracer.End(child, 2, Us(180));
  tracer.Instant("commit", 1, Us(200), parent, 5);
  tracer.End(parent, 1, Us(220));

  auto doc = obs::ParseJson(tracer.ExportChromeTrace());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  size_t complete = 0, instants = 0, flow_starts = 0, flow_ends = 0;
  for (const obs::JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    // Every event carries the fields the trace_event spec requires.
    ASSERT_NE(e.Get("ph"), nullptr);
    ASSERT_NE(e.Get("ts"), nullptr);
    ASSERT_NE(e.Get("pid"), nullptr);
    ASSERT_NE(e.Get("tid"), nullptr);
    ASSERT_NE(e.Get("name"), nullptr);
    const std::string& ph = e.Get("ph")->string;
    if (ph == "X") {
      ++complete;
      ASSERT_NE(e.Get("dur"), nullptr);
      EXPECT_GE(e.Get("dur")->number, 0.0);
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "s") {
      ++flow_starts;
    } else if (ph == "f") {
      ++flow_ends;
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instants, 1u);
  // parent(tid 1) -> child(tid 2) crosses tracks: exactly one flow arrow.
  EXPECT_EQ(flow_starts, 1u);
  EXPECT_EQ(flow_ends, 1u);

  // Timestamps are microseconds: the proposal span starts at 100 us.
  bool found_propose = false;
  for (const obs::JsonValue& e : events->array) {
    if (e.Get("ph")->string == "X" && e.Get("name")->string == "propose") {
      found_propose = true;
      EXPECT_DOUBLE_EQ(e.Get("ts")->number, 100.0);
      EXPECT_DOUBLE_EQ(e.Get("dur")->number, 120.0);
    }
  }
  EXPECT_TRUE(found_propose);
}

// --- Path invariant ---

TEST(BreakdownTest, PathMaintainsInvariant) {
  obs::Path path;
  path.Restart(Ms(5));
  path.Extend(obs::Component::kCpu, Us(10));
  path.CoverUntil(obs::Component::kNetPropagation, Ms(5) + Us(60));
  path.CoverUntil(obs::Component::kCrypto, Ms(5) + Us(40));  // Behind frontier: no-op.
  int64_t parts_sum = 0;
  for (int64_t p : path.parts) {
    parts_sum += p;
  }
  EXPECT_EQ(path.origin + parts_sum, path.covered_until);
  EXPECT_EQ(path.total(), Us(60));
  EXPECT_EQ(path.parts[static_cast<size_t>(obs::Component::kCrypto)], 0);
}

TEST(BreakdownTest, OnConfirmDecomposesExactly) {
  obs::BreakdownAttributor attr;
  obs::Path path;
  path.Restart(Ms(10));
  path.Extend(obs::Component::kCpu, Ms(1));
  path.Extend(obs::Component::kNetPropagation, Ms(2));
  // Block of 2 txs submitted at 6 ms and 8 ms, confirmed at covered_until + 1 ms residual.
  const SimTime now = path.covered_until + Ms(1);
  attr.OnConfirm(path, now, /*submit_sum_ns=*/Ms(6) + Ms(8), /*tx_count=*/2);
  const obs::BreakdownMs mean = attr.MeanPerTx();
  // Mean e2e latency = ((now-6ms) + (now-8ms)) / 2 = 7 ms.
  EXPECT_NEAR(mean.TotalMs(), 7.0, 1e-9);
  EXPECT_NEAR(mean.part(obs::Component::kIdle), 3.0, 1e-9);  // (4 + 2) / 2.
  EXPECT_NEAR(mean.part(obs::Component::kNetPropagation), 2.0, 1e-9);
  EXPECT_NEAR(mean.part(obs::Component::kCpu), 2.0, 1e-9);  // 1 ms charged + 1 ms residual.
  EXPECT_EQ(mean.tx_count, 2u);
  EXPECT_EQ(mean.block_count, 1u);
}

// --- LatencyRecorder shim (edge cases the histogram migration must preserve) ---

TEST(LatencyRecorderTest, EmptyRecorderReportsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.MeanMs(), 0.0);
  EXPECT_EQ(rec.PercentileMs(0), 0.0);
  EXPECT_EQ(rec.PercentileMs(50), 0.0);
  EXPECT_EQ(rec.PercentileMs(100), 0.0);
  EXPECT_EQ(rec.MaxMs(), 0.0);
}

TEST(LatencyRecorderTest, PercentileBoundsAndClamping) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Record(Ms(i));
  }
  EXPECT_DOUBLE_EQ(rec.PercentileMs(0), 1.0);
  EXPECT_DOUBLE_EQ(rec.PercentileMs(100), 100.0);
  EXPECT_DOUBLE_EQ(rec.PercentileMs(-5), 1.0);    // Clamped to p0.
  EXPECT_DOUBLE_EQ(rec.PercentileMs(1000), 100.0);  // Clamped to p100.
  EXPECT_NEAR(rec.PercentileMs(50), 50.5, 1.0);
  EXPECT_DOUBLE_EQ(rec.MaxMs(), 100.0);
  EXPECT_EQ(rec.histogram().count(), 100u);
  rec.Reset();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.PercentileMs(50), 0.0);
}

// --- Cluster-level acceptance: breakdown sums to e2e latency; tracing is free ---

ClusterConfig SmallConfig(bool tracing) {
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 1;
  config.batch_size = 50;
  config.payload_size = 64;
  config.net = NetworkConfig::Lan();
  config.seed = 42;
  config.tracing = tracing;
  return config;
}

TEST(ObsClusterTest, BreakdownSumsToMeanE2eLatency) {
  Cluster cluster(SmallConfig(false));
  const RunStats stats = cluster.RunMeasured(Ms(200), Sec(1));
  ASSERT_TRUE(stats.safety_ok);
  ASSERT_GT(stats.breakdown.tx_count, 0u);
  ASSERT_GT(stats.e2e_latency_ms, 0.0);
  // The decomposition is exact by construction; allow only float rounding, far inside the
  // 1% acceptance bound.
  EXPECT_NEAR(stats.breakdown.TotalMs(), stats.e2e_latency_ms,
              stats.e2e_latency_ms * 0.001);
  for (size_t i = 0; i < obs::kNumComponents; ++i) {
    EXPECT_GE(stats.breakdown.parts[i], 0.0)
        << obs::ComponentName(static_cast<obs::Component>(i));
  }
  // The causal chain must attribute real work to the big three.
  EXPECT_GT(stats.breakdown.part(obs::Component::kNetPropagation), 0.0);
  EXPECT_GT(stats.breakdown.part(obs::Component::kCpu), 0.0);
  EXPECT_GT(stats.breakdown.part(obs::Component::kCrypto), 0.0);
}

TEST(ObsClusterTest, SingleBlockRunDecomposesExactly) {
  // One deterministic commit: rate-limit the client so exactly the first blocks commit,
  // then check the breakdown against the recorded e2e mean with zero-throughput tolerance.
  ClusterConfig config = SmallConfig(false);
  config.client_rate_tps = 200.0;  // ~ one small batch per measurement window.
  Cluster cluster(config);
  const RunStats stats = cluster.RunMeasured(Ms(100), Ms(500));
  ASSERT_TRUE(stats.safety_ok);
  if (stats.breakdown.tx_count > 0) {
    EXPECT_NEAR(stats.breakdown.TotalMs(), stats.e2e_latency_ms,
                std::max(1e-6, stats.e2e_latency_ms * 0.001));
  }
}

TEST(ObsClusterTest, TracingIsZeroPerturbation) {
  RunStats off, on;
  {
    Cluster cluster(SmallConfig(false));
    off = cluster.RunMeasured(Ms(200), Sec(1));
    EXPECT_TRUE(cluster.tracer().Events().empty());
  }
  {
    Cluster cluster(SmallConfig(true));
    on = cluster.RunMeasured(Ms(200), Sec(1));
    EXPECT_FALSE(cluster.tracer().Events().empty());
  }
  // Bit-identical statistics: recording spans must not change a single simulated outcome.
  EXPECT_EQ(off.throughput_tps, on.throughput_tps);
  EXPECT_EQ(off.commit_latency_ms, on.commit_latency_ms);
  EXPECT_EQ(off.commit_p50_ms, on.commit_p50_ms);
  EXPECT_EQ(off.commit_p99_ms, on.commit_p99_ms);
  EXPECT_EQ(off.e2e_latency_ms, on.e2e_latency_ms);
  EXPECT_EQ(off.e2e_p99_ms, on.e2e_p99_ms);
  EXPECT_EQ(off.committed_blocks, on.committed_blocks);
  EXPECT_EQ(off.committed_txs, on.committed_txs);
  EXPECT_EQ(off.messages, on.messages);
  EXPECT_EQ(off.bytes, on.bytes);
  EXPECT_EQ(off.counter_writes, on.counter_writes);
  for (size_t i = 0; i < obs::kNumComponents; ++i) {
    EXPECT_EQ(off.breakdown.parts[i], on.breakdown.parts[i]);
  }
}

TEST(ObsClusterTest, ClusterTraceExportsValidChromeJson) {
  Cluster cluster(SmallConfig(true));
  cluster.RunMeasured(Ms(100), Ms(300));
  auto doc = obs::ParseJson(cluster.tracer().ExportChromeTrace());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->array.size(), 10u);
  bool saw_commit = false;
  for (const obs::JsonValue& e : events->array) {
    if (e.Get("name") != nullptr && e.Get("name")->string == "commit") {
      saw_commit = true;
    }
  }
  EXPECT_TRUE(saw_commit);
}

TEST(ObsClusterTest, HostMetricsAreRegistered) {
  Cluster cluster(SmallConfig(false));
  cluster.RunMeasured(Ms(100), Ms(300));
  obs::MetricsRegistry& reg = cluster.metrics();
  EXPECT_GT(reg.GetCounter("net.messages")->value(), 0u);
  EXPECT_GT(reg.GetCounter("net.bytes")->value(), 0u);
  EXPECT_GT(reg.GetHistogram("host.handler_ns")->count(), 0u);
  EXPECT_GT(reg.GetHistogram("host.queue_wait_ns")->count(), 0u);
  EXPECT_GT(reg.GetHistogram("net.nic_wait_ns")->count(), 0u);
}

}  // namespace
}  // namespace achilles
