#include <gtest/gtest.h>

#include "src/consensus/block.h"
#include "src/consensus/certificates.h"
#include "src/consensus/commit_tracker.h"
#include "src/consensus/mempool.h"
#include "src/consensus/metrics.h"
#include "src/consensus/types.h"

namespace achilles {
namespace {

std::vector<Transaction> MakeTxs(uint32_t client, uint32_t count, SimTime t = 0) {
  std::vector<Transaction> txs;
  for (uint32_t i = 0; i < count; ++i) {
    txs.push_back(Transaction{Transaction::MakeId(client, i), t, 256});
  }
  return txs;
}

// --- Blocks ---

TEST(BlockTest, GenesisIsStable) {
  const BlockPtr& g = Block::Genesis();
  EXPECT_EQ(g->height, 0u);
  EXPECT_EQ(g->view, 0u);
  EXPECT_EQ(Block::Genesis()->hash, g->hash);
}

TEST(BlockTest, CreateLinksParentAndHeights) {
  const BlockPtr b1 = Block::Create(1, Block::Genesis(), MakeTxs(1, 3), Ms(5));
  EXPECT_EQ(b1->height, 1u);
  EXPECT_EQ(b1->parent, Block::Genesis()->hash);
  EXPECT_EQ(b1->propose_time, Ms(5));
  const BlockPtr b2 = Block::Create(2, b1, MakeTxs(1, 2), Ms(6));
  EXPECT_EQ(b2->height, 2u);
  EXPECT_EQ(b2->parent, b1->hash);
}

TEST(BlockTest, HashCoversContent) {
  const BlockPtr a = Block::Create(1, Block::Genesis(), MakeTxs(1, 3), 0);
  const BlockPtr b = Block::Create(1, Block::Genesis(), MakeTxs(2, 3), 0);
  const BlockPtr c = Block::Create(2, Block::Genesis(), MakeTxs(1, 3), 0);
  EXPECT_NE(a->hash, b->hash);  // Different txs.
  EXPECT_NE(a->hash, c->hash);  // Different view.
}

TEST(BlockTest, ProposeTimeNotPartOfHash) {
  const BlockPtr a = Block::Create(1, Block::Genesis(), MakeTxs(1, 3), Ms(1));
  const BlockPtr b = Block::Create(1, Block::Genesis(), MakeTxs(1, 3), Ms(99));
  EXPECT_EQ(a->hash, b->hash);
}

TEST(BlockTest, ValidUnderDetectsForgedExecResult) {
  const BlockPtr good = Block::Create(1, Block::Genesis(), MakeTxs(1, 3), 0);
  EXPECT_TRUE(good->ValidUnder(Block::Genesis()->exec_result));

  auto forged = std::make_shared<Block>(*good);
  forged->exec_result = Sha256Digest(AsBytes("wrong"));
  EXPECT_FALSE(forged->ValidUnder(Block::Genesis()->exec_result));
}

TEST(BlockTest, WireSizeScalesWithPayload) {
  const BlockPtr small = Block::Create(1, Block::Genesis(), MakeTxs(1, 10), 0);
  const BlockPtr big = Block::Create(1, Block::Genesis(), MakeTxs(1, 400), 0);
  EXPECT_GT(big->WireSize(), small->WireSize());
  // 400 txs * (8 + 256) bytes + header.
  EXPECT_EQ(big->WireSize(), 400u * 264u + 112u);
}

// --- BlockStore ---

TEST(BlockStoreTest, AncestryAndExtends) {
  BlockStore store;
  const BlockPtr b1 = Block::Create(1, Block::Genesis(), {}, 0);
  const BlockPtr b2 = Block::Create(2, b1, {}, 0);
  const BlockPtr b3 = Block::Create(3, b2, {}, 0);
  store.Add(b1);
  store.Add(b3);  // b2 missing.
  EXPECT_FALSE(store.HasFullAncestry(b3->hash));
  store.Add(b2);
  EXPECT_TRUE(store.HasFullAncestry(b3->hash));
  EXPECT_TRUE(store.Extends(b3->hash, b1->hash));
  EXPECT_TRUE(store.Extends(b3->hash, Block::Genesis()->hash));
  EXPECT_FALSE(store.Extends(b1->hash, b3->hash));
}

TEST(BlockStoreTest, ConflictingForksDoNotExtend) {
  BlockStore store;
  const BlockPtr left = Block::Create(1, Block::Genesis(), MakeTxs(1, 1), 0);
  const BlockPtr right = Block::Create(1, Block::Genesis(), MakeTxs(2, 1), 0);
  store.Add(left);
  store.Add(right);
  EXPECT_FALSE(store.Extends(left->hash, right->hash));
  EXPECT_FALSE(store.Extends(right->hash, left->hash));
}

TEST(BlockStoreTest, PathBetweenReturnsOrderedChain) {
  BlockStore store;
  const BlockPtr b1 = Block::Create(1, Block::Genesis(), {}, 0);
  const BlockPtr b2 = Block::Create(2, b1, {}, 0);
  const BlockPtr b3 = Block::Create(3, b2, {}, 0);
  store.Add(b1);
  store.Add(b2);
  store.Add(b3);
  const auto path = store.PathBetween(b1->hash, b3->hash);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0]->hash, b2->hash);
  EXPECT_EQ(path[1]->hash, b3->hash);
  // Non-extending target yields empty path.
  const BlockPtr fork = Block::Create(1, Block::Genesis(), MakeTxs(9, 1), 0);
  store.Add(fork);
  EXPECT_TRUE(store.PathBetween(b1->hash, fork->hash).empty());
}

// --- Mempool ---

TEST(MempoolTest, FifoBatching) {
  Mempool pool;
  pool.AddBatch(MakeTxs(1, 10));
  const auto batch = pool.TakeBatch(4);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].id, Transaction::MakeId(1, 0));
  EXPECT_EQ(batch[3].id, Transaction::MakeId(1, 3));
  EXPECT_EQ(pool.pending(), 6u);
}

TEST(MempoolTest, DuplicatesDropped) {
  Mempool pool;
  pool.AddBatch(MakeTxs(1, 5));
  pool.AddBatch(MakeTxs(1, 5));  // Same ids again.
  EXPECT_EQ(pool.pending(), 5u);
}

TEST(MempoolTest, CommittedTxsNeverReenterOrLeave) {
  Mempool pool;
  const auto txs = MakeTxs(1, 5);
  pool.AddBatch(txs);
  pool.MarkCommitted({txs[0], txs[1]});
  const auto batch = pool.TakeBatch(10);
  ASSERT_EQ(batch.size(), 3u);  // Committed ones skipped.
  EXPECT_EQ(batch[0].id, txs[2].id);
  pool.AddBatch({txs[0]});  // Resubmission of committed tx.
  EXPECT_EQ(pool.pending(), 0u);
}

// --- Certificates ---

TEST(CertificatesTest, SignedCertDigestDomainSeparated) {
  const Hash256 h = Sha256Digest(AsBytes("x"));
  SignedCert cert;
  cert.hash = h;
  cert.view = 3;
  EXPECT_NE(cert.Digest("achilles/PROP"), cert.Digest("achilles/COMMIT"));
}

TEST(CertificatesTest, QuorumCertVerify) {
  CryptoSuite suite(SignatureScheme::kFastHmac, 5, 7);
  QuorumCert qc;
  qc.hash = Sha256Digest(AsBytes("block"));
  qc.view = 9;
  const Bytes digest = qc.Digest("proto/DECIDE");
  for (uint32_t i = 0; i < 3; ++i) {
    qc.sigs.push_back(suite.Sign(i, ByteView(digest.data(), digest.size())));
  }
  EXPECT_TRUE(qc.Verify(suite, "proto/DECIDE", 3));
  EXPECT_FALSE(qc.Verify(suite, "proto/DECIDE", 4));
  EXPECT_FALSE(qc.Verify(suite, "proto/OTHER", 3));  // Wrong domain.

  QuorumCert dup = qc;
  dup.sigs[2] = dup.sigs[0];
  EXPECT_FALSE(dup.Verify(suite, "proto/DECIDE", 3));  // Duplicate signer.
}

TEST(CertificatesTest, AccumulatorDigestBindsEverything) {
  AccumulatorCert a;
  a.hash = Sha256Digest(AsBytes("parent"));
  a.block_view = 4;
  a.current_view = 7;
  a.ids = {0, 1, 2};
  AccumulatorCert b = a;
  b.current_view = 8;  // Replay in a later view must change the digest.
  EXPECT_NE(a.Digest("achilles/ACC"), b.Digest("achilles/ACC"));
  AccumulatorCert c = a;
  c.ids = {0, 1, 3};
  EXPECT_NE(a.Digest("achilles/ACC"), c.Digest("achilles/ACC"));
}

// --- LatencyRecorder ---

TEST(MetricsTest, PercentilesAndMean) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Record(Ms(i));
  }
  EXPECT_NEAR(rec.MeanMs(), 50.5, 0.01);
  EXPECT_NEAR(rec.PercentileMs(50), 50.5, 1.0);
  EXPECT_NEAR(rec.PercentileMs(99), 99.0, 1.1);
  EXPECT_DOUBLE_EQ(rec.MaxMs(), 100.0);
  EXPECT_EQ(rec.count(), 100u);
}

TEST(MetricsTest, EmptyRecorderIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.MeanMs(), 0.0);
  EXPECT_EQ(rec.PercentileMs(50), 0.0);
}

// --- CommitTracker ---

TEST(CommitTrackerTest, ThroughputAndCommitLatency) {
  CommitTracker tracker(3);
  tracker.StartMeasurement(0);
  auto b1 = Block::Create(1, Block::Genesis(), MakeTxs(1, 100), Ms(10));
  tracker.OnPropose(b1);
  tracker.OnCommit(0, b1, Ms(30));
  tracker.OnCommit(1, b1, Ms(31));  // Later commits of the same block don't re-count.
  tracker.EndMeasurement(Sec(1));
  EXPECT_DOUBLE_EQ(tracker.ThroughputTps(), 100.0);
  EXPECT_EQ(tracker.commit_latency().count(), 1u);
  EXPECT_NEAR(tracker.commit_latency().MeanMs(), 20.0, 0.01);
}

TEST(CommitTrackerTest, SafetyViolationDetected) {
  CommitTracker tracker(3);
  auto a = Block::Create(1, Block::Genesis(), MakeTxs(1, 1), 0);
  auto b = Block::Create(1, Block::Genesis(), MakeTxs(2, 1), 0);
  ASSERT_NE(a->hash, b->hash);
  tracker.OnCommit(0, a, Ms(1));
  EXPECT_FALSE(tracker.safety_violated());
  tracker.OnCommit(1, b, Ms(2));  // Same height, different hash.
  EXPECT_TRUE(tracker.safety_violated());
}

TEST(CommitTrackerTest, ByzantineCommitsIgnoredByAudit) {
  CommitTracker tracker(3);
  tracker.MarkByzantine(2);
  auto a = Block::Create(1, Block::Genesis(), MakeTxs(1, 1), 0);
  auto b = Block::Create(1, Block::Genesis(), MakeTxs(2, 1), 0);
  tracker.OnCommit(0, a, Ms(1));
  tracker.OnCommit(2, b, Ms(2));  // Byzantine replica "commits" a conflicting block.
  EXPECT_FALSE(tracker.safety_violated());
}

TEST(CommitTrackerTest, EndToEndLatencyFromClientConfirm) {
  CommitTracker tracker(3);
  tracker.StartMeasurement(0);
  auto b1 = Block::Create(1, Block::Genesis(), MakeTxs(1, 2, /*t=*/Ms(5)), Ms(10));
  tracker.OnPropose(b1);
  tracker.OnClientConfirm(b1, Ms(45));
  tracker.OnClientConfirm(b1, Ms(60));  // Second reply ignored.
  tracker.EndMeasurement(Sec(1));
  EXPECT_EQ(tracker.e2e_latency().count(), 2u);  // Two txs.
  EXPECT_NEAR(tracker.e2e_latency().MeanMs(), 40.0, 0.01);
}

TEST(CommitTrackerTest, HeightsTracked) {
  CommitTracker tracker(2);
  auto b1 = Block::Create(1, Block::Genesis(), {}, 0);
  auto b2 = Block::Create(2, b1, {}, 0);
  tracker.OnCommit(0, b1, Ms(1));
  tracker.OnCommit(0, b2, Ms(2));
  tracker.OnCommit(1, b1, Ms(3));
  EXPECT_EQ(tracker.committed_height(0), 2u);
  EXPECT_EQ(tracker.committed_height(1), 1u);
  EXPECT_EQ(tracker.max_committed_height(), 2u);
  EXPECT_EQ(tracker.committed_hash_at(2), b2->hash);
}

TEST(CommitTrackerTest, MeasurementWindowFiltersEarlyCommits) {
  CommitTracker tracker(1);
  auto warmup = Block::Create(1, Block::Genesis(), MakeTxs(1, 50), 0);
  tracker.OnPropose(warmup);
  tracker.OnCommit(0, warmup, Ms(1));  // Before the window starts.
  tracker.StartMeasurement(Ms(100));
  auto measured = Block::Create(2, warmup, MakeTxs(2, 70), Ms(150));
  tracker.OnPropose(measured);
  tracker.OnCommit(0, measured, Ms(160));
  tracker.EndMeasurement(Ms(1100));
  EXPECT_DOUBLE_EQ(tracker.ThroughputTps(), 70.0);
}

TEST(LeaderScheduleTest, RoundRobin) {
  EXPECT_EQ(LeaderOfView(0, 5), 0u);
  EXPECT_EQ(LeaderOfView(7, 5), 2u);
  EXPECT_EQ(LeaderOfView(10, 5), 0u);
}

}  // namespace
}  // namespace achilles
