// Tests for the concurrent-consensus-instances extension (§6.1 future work).
#include <gtest/gtest.h>

#include "src/harness/parallel.h"

namespace achilles {
namespace {

TEST(ParallelInstancesTest, SingleInstanceMatchesClusterShape) {
  ParallelConfig config;
  config.f = 1;
  config.instances = 1;
  config.seed = 42;
  const ParallelStats stats = RunParallelAchilles(config, Ms(300), Sec(1));
  EXPECT_TRUE(stats.safety_ok);
  EXPECT_GT(stats.total_throughput_tps, 10'000.0);
  ASSERT_EQ(stats.per_instance_tps.size(), 1u);
}

TEST(ParallelInstancesTest, TwoInstancesBeatOne) {
  auto run = [](uint32_t k) {
    ParallelConfig config;
    config.f = 2;
    config.instances = k;
    config.seed = 43;
    return RunParallelAchilles(config, Ms(300), Sec(1));
  };
  const ParallelStats one = run(1);
  const ParallelStats two = run(2);
  EXPECT_TRUE(two.safety_ok);
  EXPECT_GT(two.total_throughput_tps, 1.3 * one.total_throughput_tps);
}

TEST(ParallelInstancesTest, InstancesAreLoadBalanced) {
  ParallelConfig config;
  config.f = 1;
  config.instances = 3;
  config.seed = 44;
  const ParallelStats stats = RunParallelAchilles(config, Ms(300), Sec(1));
  ASSERT_EQ(stats.per_instance_tps.size(), 3u);
  double lo = stats.per_instance_tps[0];
  double hi = stats.per_instance_tps[0];
  for (double t : stats.per_instance_tps) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GT(lo, 0.7 * hi);  // No instance starves on the shared NIC.
}

TEST(ParallelInstancesTest, SafetyAuditedPerInstance) {
  ParallelConfig config;
  config.f = 1;
  config.instances = 2;
  config.seed = 45;
  const ParallelStats stats = RunParallelAchilles(config, Ms(300), Sec(1));
  EXPECT_TRUE(stats.safety_ok);
}

TEST(ParallelInstancesTest, ScalingSaturatesAtSharedNic) {
  auto run = [](uint32_t k) {
    ParallelConfig config;
    config.f = 1;
    config.instances = k;
    config.seed = 46;
    return RunParallelAchilles(config, Ms(300), Sec(1)).total_throughput_tps;
  };
  const double k1 = run(1);
  const double k4 = run(4);
  EXPECT_GT(k4, 1.5 * k1);  // Parallelism helps...
  EXPECT_LT(k4, 4.0 * k1);  // ...but the shared NIC caps it below linear.
}

}  // namespace
}  // namespace achilles
