// Tests for the Wing–Gong linearizability checker (src/chaos/linearizability.h) and the
// replicated KV app behind the chaos harness (ISSUE 6).
//
// Part 1 exercises the checker on hand-built histories: valid concurrent interleavings
// must be accepted, and each planted anomaly class (stale read, lost update,
// non-monotonic session reads, wrong value) must be rejected with its crisp diagnosis.
// Part 2 runs the real pipeline: a reboot-weighted 200-seed honest chaos sweep with the
// KV app enabled must come back clean, and replays must be digest-stable down to the
// client-observed history. Part 3 checks the planted stale-read-lease bug is flagged.
#include "src/chaos/linearizability.h"

#include <gtest/gtest.h>

#include "src/chaos/runner.h"

namespace achilles {
namespace {

using app::KvOpKind;
using app::KvOpRecord;
using chaos::BrokenVariant;
using chaos::ChaosOptions;
using chaos::ChaosResult;
using chaos::CheckKvHistory;
using chaos::LinearizabilityVerdict;

// Hand-built-history helper. For a PUT, `value` is what the op wrote (the tx id in the
// real app); for a GET, what the read returned. `response` = -1 marks a pending op.
KvOpRecord Op(uint64_t id, uint32_t session, KvOpKind kind, uint32_t key, uint64_t value,
              uint64_t version, SimTime invoke, SimTime response) {
  KvOpRecord op;
  op.op_id = id;
  op.client = session;
  op.kind = kind;
  op.key = key;
  op.value = value;
  op.version = version;
  op.invoke = invoke;
  op.response = response;
  return op;
}

// --- Part 1: hand-built histories ---

TEST(LinearizabilityTest, EmptyHistoryLinearizes) {
  const LinearizabilityVerdict v = CheckKvHistory({});
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.checked_keys, 0u);
}

TEST(LinearizabilityTest, SequentialHistoryAccepted) {
  std::vector<KvOpRecord> h;
  h.push_back(Op(0xa1, 0, KvOpKind::kPut, 7, 0xa1, 1, Ms(0), Ms(10)));
  h.push_back(Op(0xa2, 0, KvOpKind::kGet, 7, 0xa1, 1, Ms(20), Ms(30)));
  h.push_back(Op(0xa3, 1, KvOpKind::kPut, 7, 0xa3, 2, Ms(40), Ms(50)));
  h.push_back(Op(0xa4, 1, KvOpKind::kGet, 7, 0xa3, 2, Ms(60), Ms(70)));
  const LinearizabilityVerdict v = CheckKvHistory(h);
  EXPECT_TRUE(v.ok) << v.violation;
  EXPECT_EQ(v.checked_keys, 1u);
  EXPECT_EQ(v.checked_ops, 4u);
}

TEST(LinearizabilityTest, ConcurrentReadMayObserveEitherSideOfAWrite) {
  // PUT v2 overlaps both reads; one read sees the old version, the other the new one.
  // Both observations have a witness order: r_old < PUT < r_new.
  std::vector<KvOpRecord> h;
  h.push_back(Op(0xb1, 0, KvOpKind::kPut, 3, 0xb1, 1, Ms(0), Ms(5)));
  h.push_back(Op(0xb2, 0, KvOpKind::kPut, 3, 0xb2, 2, Ms(10), Ms(30)));
  h.push_back(Op(0xb3, 1, KvOpKind::kGet, 3, 0xb1, 1, Ms(15), Ms(25)));
  h.push_back(Op(0xb4, 2, KvOpKind::kGet, 3, 0xb2, 2, Ms(15), Ms(25)));
  const LinearizabilityVerdict v = CheckKvHistory(h);
  EXPECT_TRUE(v.ok) << v.violation;
}

TEST(LinearizabilityTest, OverlappingWritesAndReadsAcrossSessionsAccepted) {
  // Two overlapping completed writes (versions pin their order) with reads scattered
  // across the overlap window observing 1 then 2 — a valid witness interleaving.
  std::vector<KvOpRecord> h;
  h.push_back(Op(0xc1, 0, KvOpKind::kPut, 4, 0xc1, 1, Ms(0), Ms(20)));
  h.push_back(Op(0xc2, 1, KvOpKind::kPut, 4, 0xc2, 2, Ms(10), Ms(30)));
  h.push_back(Op(0xc3, 2, KvOpKind::kGet, 4, 0xc1, 1, Ms(5), Ms(35)));
  h.push_back(Op(0xc4, 3, KvOpKind::kGet, 4, 0xc2, 2, Ms(5), Ms(35)));
  h.push_back(Op(0xc5, 2, KvOpKind::kGet, 4, 0xc2, 2, Ms(40), Ms(45)));
  const LinearizabilityVerdict v = CheckKvHistory(h);
  EXPECT_TRUE(v.ok) << v.violation;
}

TEST(LinearizabilityTest, PendingWriteMayApplyOrNot) {
  // A pending write (no response by the horizon) MAY have taken effect: a read observing
  // it is fine, and so is a history where it never ran.
  std::vector<KvOpRecord> with_effect;
  with_effect.push_back(Op(0xd1, 0, KvOpKind::kPut, 9, 0xd1, 0, Ms(0), -1));
  with_effect.push_back(Op(0xd2, 1, KvOpKind::kGet, 9, 0xd1, 1, Ms(10), Ms(20)));
  EXPECT_TRUE(CheckKvHistory(with_effect).ok);

  std::vector<KvOpRecord> without_effect;
  without_effect.push_back(Op(0xd1, 0, KvOpKind::kPut, 9, 0xd1, 0, Ms(0), -1));
  without_effect.push_back(Op(0xd2, 1, KvOpKind::kGet, 9, 0, 0, Ms(10), Ms(20)));
  EXPECT_TRUE(CheckKvHistory(without_effect).ok);
}

TEST(LinearizabilityTest, PendingReadsConstrainNothing) {
  std::vector<KvOpRecord> h;
  h.push_back(Op(0xe1, 0, KvOpKind::kPut, 2, 0xe1, 1, Ms(0), Ms(10)));
  h.push_back(Op(0xe2, 1, KvOpKind::kGet, 2, 12345, 99, Ms(20), -1));  // Garbage, pending.
  const LinearizabilityVerdict v = CheckKvHistory(h);
  EXPECT_TRUE(v.ok) << v.violation;
  EXPECT_EQ(v.checked_ops, 1u);  // The pending read was dropped before the search.
}

TEST(LinearizabilityTest, StaleReadRejected) {
  // Version 2 was committed (acknowledged) before the read began, yet the read returned
  // version 1 — the signature anomaly of a broken read lease.
  std::vector<KvOpRecord> h;
  h.push_back(Op(0xf1, 0, KvOpKind::kPut, 5, 0xf1, 1, Ms(0), Ms(10)));
  h.push_back(Op(0xf2, 1, KvOpKind::kPut, 5, 0xf2, 2, Ms(20), Ms(30)));
  KvOpRecord stale = Op(0xf3, 2, KvOpKind::kGet, 5, 0xf1, 1, Ms(40), Ms(50));
  stale.lease_read = true;
  stale.server = 0;
  h.push_back(stale);
  const LinearizabilityVerdict v = CheckKvHistory(h);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.violation.find("stale read on key 5"), std::string::npos) << v.violation;
  EXPECT_NE(v.violation.find("returned version 1"), std::string::npos) << v.violation;
  EXPECT_NE(v.violation.find("version 2 was already committed"), std::string::npos)
      << v.violation;
  EXPECT_NE(v.violation.find("lease read"), std::string::npos) << v.violation;
  EXPECT_EQ(v.key, 5u);
  EXPECT_EQ(v.server, 0u);
}

TEST(LinearizabilityTest, LostUpdateRejected) {
  // Two acknowledged writes claiming the same version slot: one update was lost.
  std::vector<KvOpRecord> h;
  h.push_back(Op(0x11, 0, KvOpKind::kPut, 6, 0x11, 1, Ms(0), Ms(10)));
  h.push_back(Op(0x12, 1, KvOpKind::kPut, 6, 0x12, 1, Ms(0), Ms(10)));
  const LinearizabilityVerdict v = CheckKvHistory(h);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.violation.find("lost update on key 6"), std::string::npos) << v.violation;
  EXPECT_NE(v.violation.find("both created version 1"), std::string::npos) << v.violation;
}

TEST(LinearizabilityTest, NonMonotonicSessionReadsRejected) {
  // The writer of version 2 is still pending (so the stale-read scan cannot fire), but a
  // single session observing version 2 then version 1 is a definite violation: sessions
  // are sequential, so their program order is real-time order.
  std::vector<KvOpRecord> h;
  h.push_back(Op(0x21, 0, KvOpKind::kPut, 8, 0x21, 1, Ms(0), Ms(10)));
  h.push_back(Op(0x22, 1, KvOpKind::kPut, 8, 0x22, 0, Ms(20), -1));  // Pending.
  h.push_back(Op(0x23, 2, KvOpKind::kGet, 8, 0x22, 2, Ms(30), Ms(40)));
  h.push_back(Op(0x24, 2, KvOpKind::kGet, 8, 0x21, 1, Ms(50), Ms(60)));
  const LinearizabilityVerdict v = CheckKvHistory(h);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.violation.find("non-monotonic reads on key 8"), std::string::npos)
      << v.violation;
  EXPECT_NE(v.violation.find("session 2"), std::string::npos) << v.violation;
}

TEST(LinearizabilityTest, WrongValueCaughtByFullSearch) {
  // Version numbers are consistent, so no fast scan fires; the Wing–Gong search itself
  // must notice the read returned a value nobody wrote at that version.
  std::vector<KvOpRecord> h;
  h.push_back(Op(0x31, 0, KvOpKind::kPut, 1, 0x31, 1, Ms(0), Ms(10)));
  h.push_back(Op(0x32, 1, KvOpKind::kGet, 1, 0xdead, 1, Ms(20), Ms(30)));
  const LinearizabilityVerdict v = CheckKvHistory(h);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.violation.find("no witness linearization exists for key 1"),
            std::string::npos)
      << v.violation;
}

TEST(LinearizabilityTest, RealTimePrecedenceEnforcedAcrossSessions) {
  // Read of version 0 invoked strictly after the version-1 write completed: even though
  // version 0 existed once, real-time order forbids linearizing the read before the write.
  std::vector<KvOpRecord> h;
  h.push_back(Op(0x41, 0, KvOpKind::kPut, 2, 0x41, 1, Ms(0), Ms(10)));
  h.push_back(Op(0x42, 1, KvOpKind::kGet, 2, 0, 0, Ms(20), Ms(30)));
  const LinearizabilityVerdict v = CheckKvHistory(h);
  ASSERT_FALSE(v.ok);  // Flagged by the stale-read scan (version 1 predates the read).
  EXPECT_NE(v.violation.find("stale read"), std::string::npos) << v.violation;
}

TEST(LinearizabilityTest, KeysArePartitionedIndependently) {
  // A violation on key 9 must not be masked by clean traffic on other keys, and the
  // verdict must name the offending key.
  std::vector<KvOpRecord> h;
  h.push_back(Op(0x51, 0, KvOpKind::kPut, 1, 0x51, 1, Ms(0), Ms(10)));
  h.push_back(Op(0x52, 0, KvOpKind::kGet, 1, 0x51, 1, Ms(20), Ms(30)));
  h.push_back(Op(0x53, 1, KvOpKind::kPut, 9, 0x53, 1, Ms(0), Ms(10)));
  h.push_back(Op(0x54, 2, KvOpKind::kPut, 9, 0x54, 1, Ms(0), Ms(10)));
  const LinearizabilityVerdict v = CheckKvHistory(h);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.key, 9u);
  EXPECT_NE(v.violation.find("lost update on key 9"), std::string::npos) << v.violation;
}

// --- Part 2: the real pipeline, honest runs ---

// Acceptance criterion (ISSUE 6): a reboot-weighted 200-seed honest sweep with the KV app
// enabled passes every oracle — including the linearizability oracle, which runs on every
// seed — across all ten protocols (the seed round-robins the protocol).
TEST(KvChaosSweepTest, HonestRebootWeightedSweepIsClean) {
  ChaosOptions options;
  options.app_kv = true;
  options.reboot_prob = 0.85;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const ChaosResult result = chaos::RunChaosSeed(options, seed);
    ASSERT_TRUE(result.ok) << "seed " << seed << " (" << ProtocolName(result.protocol)
                           << "): " << result.violation;
    EXPECT_FALSE(result.history_digest_hex.empty());
  }
}

TEST(KvChaosSweepTest, ReplayIsDigestStableDownToTheHistory) {
  ChaosOptions options;
  options.app_kv = true;
  options.reboot_prob = 0.85;
  for (uint64_t seed : {3u, 57u, 142u}) {
    const ChaosResult a = chaos::RunChaosSeed(options, seed);
    const ChaosResult b = chaos::RunChaosSeed(options, seed);
    ASSERT_TRUE(a.ok) << a.violation;
    EXPECT_EQ(a.log_digest_hex, b.log_digest_hex) << "seed " << seed;
    EXPECT_EQ(a.history_digest_hex, b.history_digest_hex) << "seed " << seed;
    EXPECT_EQ(a.history_text, b.history_text) << "seed " << seed;
  }
}

// --- Part 3: the planted lease bug must be caught ---

TEST(KvBrokenVariantTest, StaleReadLeaseIsFlaggedDeterministically) {
  ChaosOptions options;
  options.broken = BrokenVariant::kStaleReadLease;
  const ChaosResult result = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(result.ok) << "broken stale-read-lease variant passed the oracles";
  EXPECT_NE(result.violation.find("linearizability"), std::string::npos)
      << result.violation;
  EXPECT_NE(result.violation.find("stale read"), std::string::npos) << result.violation;
  EXPECT_NE(result.violation.find("lease read"), std::string::npos) << result.violation;
  // Deterministic: the same seed reproduces the identical violation text and history.
  const ChaosResult again = chaos::RunChaosSeed(options, 1);
  EXPECT_EQ(again.violation, result.violation);
  EXPECT_EQ(again.history_digest_hex, result.history_digest_hex);
}

// Regression (found by a checkpoint-weighted swarm run): a leaseholder proposes a PUT and
// is partitioned away before committing it; the survivors elect a new leader, commit the
// old proposal, and their applied-notifications complete the write at the client (the
// grantor-side withholding exempts holder-proposed blocks). The holder's lease is still
// live, so without the pending-put bar it would serve the pre-write version of that key —
// a client-provable stale read. The fix declines the lease fast path for keys with a
// self-proposed write in flight.
TEST(KvLeaseEdgeTest, PartitionedHolderWithAnInFlightPutMustNotServeThatKey) {
  ScriptArtifact artifact;
  ASSERT_TRUE(ScriptArtifact::FromText(
      "chaos-script v3\n"
      "protocol BRaft\n"
      "f 1\n"
      "seed 67\n"
      "event 346591047 partition 1 2 0\n"
      "heal 1400000000\n"
      "horizon 2000000000\n",
      &artifact));
  ChaosOptions options;
  options.app_kv = true;
  const ChaosResult result = chaos::RunChaosScript(options, artifact.seed, Protocol::kRaft,
                                                   artifact.f, artifact.script);
  EXPECT_TRUE(result.ok) << result.violation;
}

// The honest lease protocol must NOT trip the oracle under the exact same isolation
// choreography the broken variant uses — response withholding is what saves it.
TEST(KvBrokenVariantTest, HonestLeaseSurvivesTheSameChoreography) {
  ChaosOptions broken;
  broken.broken = BrokenVariant::kStaleReadLease;
  const ChaosResult failing = chaos::RunChaosSeed(broken, 1);
  ASSERT_FALSE(failing.ok);
  ChaosOptions honest;
  honest.app_kv = true;
  const ChaosResult passing = chaos::RunChaosScript(honest, failing.seed, failing.protocol,
                                                    failing.f, failing.script);
  EXPECT_TRUE(passing.ok) << passing.violation;
}

}  // namespace
}  // namespace achilles
