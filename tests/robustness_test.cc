// Robustness edges: fuzzed deserialization, NIC egress queueing, block-store pruning, and
// pacemaker behaviour under pathological timeouts.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/harness/cluster.h"

namespace achilles {
namespace {

// --- Serde fuzz: random bytes through every reader path must never crash or overflow ---

TEST(SerdeFuzzTest, RandomBytesNeverCrashReaders) {
  Rng rng(0xfadefade);
  for (int round = 0; round < 2000; ++round) {
    Bytes data;
    rng.Fill(data, rng.UniformU64(64));
    ByteReader r(ByteView(data.data(), data.size()));
    // Drive a random sequence of reads; all failures must be clean nullopts.
    for (int op = 0; op < 8; ++op) {
      switch (rng.UniformU64(7)) {
        case 0:
          (void)r.U8();
          break;
        case 1:
          (void)r.U16();
          break;
        case 2:
          (void)r.U32();
          break;
        case 3:
          (void)r.U64();
          break;
        case 4:
          (void)r.Blob();
          break;
        case 5:
          (void)r.Str();
          break;
        case 6:
          (void)r.Raw(rng.UniformU64(16));
          break;
      }
    }
    EXPECT_LE(r.remaining(), data.size());
  }
}

TEST(SerdeFuzzTest, TruncatedWriterOutputFailsCleanly) {
  ByteWriter w;
  w.Str("hello");
  w.U64(42);
  w.Blob(AsBytes("world"));
  const Bytes& full = w.bytes();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader r(ByteView(full.data(), cut));
    const auto s = r.Str();
    const auto v = r.U64();
    const auto b = r.Blob();
    // Whatever parsed must match the original prefix semantics; after any failure the
    // reader stays failed.
    if (!r.ok()) {
      EXPECT_TRUE(!s || !v || !b);
    }
  }
}

TEST(HexFuzzTest, FromHexToHexRoundTripsOnValidInput) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Bytes data;
    rng.Fill(data, rng.UniformU64(40));
    EXPECT_EQ(FromHex(ToHex(ByteView(data.data(), data.size()))), data);
  }
}

// --- NIC egress queueing ---

TEST(NicQueueTest, BroadcastCopiesSerializeOnSenderLink) {
  Simulation sim(1);
  NetworkConfig config;
  config.one_way_base = 0;
  config.one_way_jitter = 0;
  config.bandwidth_bps = 8e6;  // 1 MB/s: a 1 KB message takes 1 ms on the wire.
  Network net(&sim, config);
  struct Sink : IProcess {
    void OnMessage(uint32_t, const MessageRef&) override { ++count; }
    int count = 0;
  };
  struct Big : SimMessage {
    size_t WireSize() const override { return 1000; }
  };
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<SimTime> arrivals;
  for (uint32_t i = 0; i < 4; ++i) {
    hosts.push_back(std::make_unique<Host>(&sim, i));
    net.AddHost(hosts.back().get());
    hosts.back()->BindProcess(std::make_unique<Sink>());
  }
  // Host 0 broadcasts to 1..3: the 3 copies leave back-to-back at 1 ms spacing.
  for (uint32_t to = 1; to <= 3; ++to) {
    const SimTime arrival = net.Send(0, to, std::make_shared<Big>());
    arrivals.push_back(arrival);
  }
  EXPECT_NEAR(static_cast<double>(arrivals[0]), static_cast<double>(Ms(1)), 1e4);
  EXPECT_NEAR(static_cast<double>(arrivals[1]), static_cast<double>(Ms(2)), 1e4);
  EXPECT_NEAR(static_cast<double>(arrivals[2]), static_cast<double>(Ms(3)), 1e4);
}

TEST(NicQueueTest, SharedMachineNicContends) {
  Simulation sim(1);
  NetworkConfig config;
  config.one_way_base = 0;
  config.one_way_jitter = 0;
  config.bandwidth_bps = 8e6;
  Network net(&sim, config);
  struct Big : SimMessage {
    size_t WireSize() const override { return 1000; }
  };
  std::vector<std::unique_ptr<Host>> hosts;
  for (uint32_t i = 0; i < 3; ++i) {
    hosts.push_back(std::make_unique<Host>(&sim, i));
    net.AddHost(hosts.back().get());
  }
  net.SetMachine(1, 0);  // Hosts 0 and 1 share machine 0's NIC.
  const SimTime a = net.Send(0, 2, std::make_shared<Big>());
  const SimTime b = net.Send(1, 2, std::make_shared<Big>());
  EXPECT_GE(b, a + Ms(1) - Us(10));  // Second send queues behind the first.
}

// --- BlockStore pruning ---

TEST(PruneTest, PruneKeepsGenesisAndWindow) {
  BlockStore store;
  BlockPtr cur = Block::Genesis();
  std::vector<BlockPtr> chain;
  for (int i = 1; i <= 50; ++i) {
    cur = Block::Create(static_cast<View>(i), cur, {}, 0);
    store.Add(cur);
    chain.push_back(cur);
  }
  store.PruneBelow(40);
  EXPECT_TRUE(store.Has(Block::Genesis()->hash));
  EXPECT_FALSE(store.Has(chain[10]->hash));  // Height 11 < 40.
  EXPECT_TRUE(store.Has(chain[45]->hash));   // Height 46.
  // Ancestry above the prune line still walks (down to the pruned gap).
  EXPECT_TRUE(store.Extends(chain[49]->hash, chain[40]->hash));
}

// --- Pathological pacemaker settings ---

TEST(TimeoutStormTest, TinyTimeoutsStillMakeProgressViaBackoff) {
  // Base timeout far below the WAN RTT: every view initially times out; exponential
  // back-off must still reach a working timeout and commit.
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 1;
  config.batch_size = 50;
  config.payload_size = 16;
  config.net = NetworkConfig::Wan();
  config.base_timeout = Ms(5);  // RTT is 40 ms!
  config.seed = 77;
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Sec(20));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 3u);
}

TEST(TimeoutStormTest, AllProtocolsSurviveJitteryLinks) {
  // Heavy jitter (stddev = half the base delay) reorders messages aggressively.
  for (Protocol protocol : {Protocol::kAchilles, Protocol::kDamysus, Protocol::kOneShot}) {
    ClusterConfig config;
    config.protocol = protocol;
    config.f = 1;
    config.batch_size = 50;
    config.payload_size = 16;
    config.net.one_way_base = Ms(2);
    config.net.one_way_jitter = Ms(1);
    config.base_timeout = Ms(200);
    config.seed = 78;
    Cluster cluster(config);
    cluster.Start();
    cluster.sim().RunFor(Sec(3));
    EXPECT_FALSE(cluster.tracker().safety_violated())
        << ProtocolName(protocol) << ": " << cluster.tracker().violation();
    EXPECT_GT(cluster.tracker().max_committed_height(), 3u) << ProtocolName(protocol);
  }
}

}  // namespace
}  // namespace achilles
