#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/sim_time.h"
#include "src/common/u64_set.h"

namespace achilles {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  const std::string hex = ToHex(ByteView(data.data(), data.size()));
  EXPECT_EQ(hex, "0001abff10");
  EXPECT_EQ(FromHex(hex), data);
}

TEST(BytesTest, FromHexRejectsMalformed) {
  EXPECT_TRUE(FromHex("abc").empty());   // Odd length.
  EXPECT_TRUE(FromHex("zz").empty());    // Bad digit.
  EXPECT_TRUE(FromHex("").empty());      // Empty is empty.
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEqual(ByteView(a.data(), a.size()), ByteView(b.data(), b.size())));
  EXPECT_FALSE(ConstantTimeEqual(ByteView(a.data(), a.size()), ByteView(c.data(), c.size())));
  EXPECT_FALSE(ConstantTimeEqual(ByteView(a.data(), 2), ByteView(b.data(), b.size())));
}

TEST(SerdeTest, RoundTripAllTypes) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.Blob(ByteView(AsBytes("hello")));
  w.Str("world");

  ByteReader r(ByteView(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.U8().value(), 0xab);
  EXPECT_EQ(r.U16().value(), 0x1234);
  EXPECT_EQ(r.U32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.U64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64().value(), -42);
  const Bytes blob = r.Blob().value();
  EXPECT_EQ(std::string(blob.begin(), blob.end()), "hello");
  EXPECT_EQ(r.Str().value(), "world");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerdeTest, UnderflowFailsAndStaysFailed) {
  ByteWriter w;
  w.U16(7);
  ByteReader r(ByteView(w.bytes().data(), w.bytes().size()));
  EXPECT_FALSE(r.U32().has_value());
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.U8().has_value());  // Still failed even though one byte would fit.
}

TEST(SerdeTest, BlobLengthBeyondBufferFails) {
  ByteWriter w;
  w.U32(1000);  // Claims 1000 bytes follow; none do.
  ByteReader r(ByteView(w.bytes().data(), w.bytes().size()));
  EXPECT_FALSE(r.Blob().has_value());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformBoundRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
  EXPECT_EQ(rng.UniformU64(1), 0u);
  EXPECT_EQ(rng.UniformU64(0), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  double sum = 0.0;
  double sq = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Gaussian(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(123);
  double sum = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.Exponential(3.0);
  }
  EXPECT_NEAR(sum / kSamples, 3.0, 0.15);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(RngTest, FillProducesRequestedLength) {
  Rng rng(11);
  Bytes out;
  rng.Fill(out, 37);
  EXPECT_EQ(out.size(), 37u);
}

TEST(SimTimeTest, UnitConversions) {
  EXPECT_EQ(Ms(1), 1000 * Us(1));
  EXPECT_EQ(Sec(1), 1000 * Ms(1));
  EXPECT_DOUBLE_EQ(ToMs(Ms(25)), 25.0);
  EXPECT_DOUBLE_EQ(ToUs(Us(13)), 13.0);
  EXPECT_EQ(FromMs(0.5), Us(500));
}


// --- U64Set (flat open-addressing set on the mempool hot path) ---

TEST(U64SetTest, InsertContainsAndDuplicates) {
  U64Set set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));  // Second insert reports "already present".
  EXPECT_TRUE(set.Contains(42));
  EXPECT_FALSE(set.Contains(43));
  EXPECT_EQ(set.size(), 1u);
}

TEST(U64SetTest, ZeroKeyIsAFirstClassMember) {
  // Zero is the empty-slot sentinel internally; the set must still store it correctly.
  U64Set set;
  EXPECT_FALSE(set.Contains(0));
  EXPECT_TRUE(set.Insert(0));
  EXPECT_FALSE(set.Insert(0));
  EXPECT_TRUE(set.Contains(0));
  EXPECT_EQ(set.size(), 1u);
}

TEST(U64SetTest, GrowthPreservesMembershipDifferentialVsStdSet) {
  U64Set set;
  std::unordered_set<uint64_t> reference;
  Rng rng(0x5e7);
  for (int i = 0; i < 20'000; ++i) {
    // Clustered keys (ids are often sequential) plus random ones stress probe chains.
    const uint64_t key = rng.UniformU64(3) == 0 ? rng.UniformU64(1 << 12)
                                                : rng.NextU64();
    EXPECT_EQ(set.Insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const uint64_t key : reference) {
    EXPECT_TRUE(set.Contains(key));
  }
  for (int i = 0; i < 1'000; ++i) {
    const uint64_t probe = rng.NextU64();
    EXPECT_EQ(set.Contains(probe), reference.count(probe) != 0);
  }
}

TEST(U64SetTest, ReserveAvoidsRehashButChangesNothingObservable) {
  U64Set reserved;
  reserved.Reserve(10'000);
  U64Set organic;
  for (uint64_t key = 1; key <= 10'000; ++key) {
    EXPECT_TRUE(reserved.Insert(key));
    EXPECT_TRUE(organic.Insert(key));
  }
  EXPECT_EQ(reserved.size(), organic.size());
  for (uint64_t key = 1; key <= 10'000; ++key) {
    EXPECT_TRUE(reserved.Contains(key));
    EXPECT_TRUE(organic.Contains(key));
  }
}

}  // namespace
}  // namespace achilles
