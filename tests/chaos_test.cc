// Tests for the chaos harness itself (ISSUE 3): oracle units, seed determinism /
// bit-identical replay, broken-variant self-tests, delta-minimization, and artifact
// round-trips. The oracles are the product here, so they get direct unit coverage — a
// chaos harness whose checkers are wrong is worse than none.
#include <gtest/gtest.h>

#include "src/chaos/minimize.h"
#include "src/chaos/oracles.h"
#include "src/chaos/runner.h"

namespace achilles {
namespace {

using chaos::BrokenVariant;
using chaos::ChaosOptions;
using chaos::ChaosResult;
using chaos::MinimizeResult;
using chaos::OracleConfig;
using chaos::OracleSuite;

Hash256 TestHash(uint8_t tag) {
  Hash256 h{};
  h.fill(tag);
  return h;
}

// --- Oracle units ---

TEST(OracleTest, AgreementViolationDetected) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnCommit(0, 7, TestHash(0xaa), Ms(1));
  oracles.OnCommit(1, 7, TestHash(0xaa), Ms(2));  // Same block: fine.
  EXPECT_TRUE(oracles.ok());
  oracles.OnCommit(2, 7, TestHash(0xbb), Ms(3));  // Conflicting block at height 7.
  EXPECT_FALSE(oracles.ok());
  EXPECT_NE(oracles.violation().find("agreement"), std::string::npos)
      << oracles.violation();
}

TEST(OracleTest, ByzantineReplicasAreNotAudited) {
  OracleSuite oracles(OracleConfig{});
  oracles.MarkByzantine(2);
  oracles.OnCommit(0, 7, TestHash(0xaa), Ms(1));
  oracles.OnCommit(2, 7, TestHash(0xbb), Ms(2));  // Adversary-controlled: ignored.
  EXPECT_TRUE(oracles.ok());
}

TEST(OracleTest, CounterRegressionDetected) {
  OracleSuite oracles(OracleConfig{});
  InvariantSnapshot snap;
  snap.counter_value = 5;
  oracles.OnSnapshot(1, snap, Ms(1));
  EXPECT_TRUE(oracles.ok());
  snap.counter_value = 3;  // The persistent device never goes backwards.
  oracles.OnSnapshot(1, snap, Ms(2));
  EXPECT_FALSE(oracles.ok());
  EXPECT_NE(oracles.violation().find("counter"), std::string::npos);
}

TEST(OracleTest, CounterLockstepViolationDetected) {
  OracleConfig config;
  config.counter_lockstep = true;
  OracleSuite oracles(config);
  InvariantSnapshot snap;
  snap.counter_value = 9;
  snap.trusted_version = 9;
  oracles.OnSnapshot(0, snap, Ms(1));
  EXPECT_TRUE(oracles.ok());
  snap.halted = true;  // A halted -R replica legitimately lags its counter.
  snap.trusted_version = 4;
  oracles.OnSnapshot(0, snap, Ms(2));
  EXPECT_TRUE(oracles.ok());
  snap.halted = false;  // Live with version != counter: stale seal was accepted.
  oracles.OnSnapshot(0, snap, Ms(3));
  EXPECT_FALSE(oracles.ok());
  EXPECT_NE(oracles.violation().find("stale sealed state"), std::string::npos);
}

TEST(OracleTest, DurabilityViolationDetected) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnCommit(0, 4, TestHash(0xaa), Ms(1));
  InvariantSnapshot snap;
  snap.committed_height = 4;
  snap.committed_hash = TestHash(0xcc);  // Recovered prefix diverges from the audit map.
  oracles.OnSnapshot(1, snap, Ms(2));
  EXPECT_FALSE(oracles.ok());
  EXPECT_NE(oracles.violation().find("durability"), std::string::npos);
}

TEST(OracleTest, RecoveryFreshnessViolations) {
  {
    OracleSuite oracles(OracleConfig{});  // f = 1: needs >= 2 fresh replies.
    oracles.OnRecoveryComplete(1, 2, true, Ms(1));
    EXPECT_TRUE(oracles.ok());
    oracles.OnRecoveryComplete(1, 1, true, Ms(2));
    EXPECT_FALSE(oracles.ok());
    EXPECT_NE(oracles.violation().find("freshness"), std::string::npos);
  }
  {
    OracleSuite oracles(OracleConfig{});
    oracles.OnRecoveryComplete(1, 2, false, Ms(1));  // Completed on a superseded nonce.
    EXPECT_FALSE(oracles.ok());
    EXPECT_NE(oracles.violation().find("stale replay"), std::string::npos);
  }
}

TEST(OracleTest, LivenessViolationDetected) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnCommit(0, 5, TestHash(0x11), Ms(1));
  oracles.OnHeal(Ms(10));
  oracles.OnRunEnd(Ms(100));  // No honest commit after heal.
  EXPECT_FALSE(oracles.ok());
  EXPECT_NE(oracles.violation().find("liveness"), std::string::npos);
}

TEST(OracleTest, ProgressAfterHealPasses) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnCommit(0, 5, TestHash(0x11), Ms(1));
  oracles.OnHeal(Ms(10));
  oracles.OnCommit(0, 6, TestHash(0x12), Ms(50));
  oracles.OnRunEnd(Ms(100));
  EXPECT_TRUE(oracles.ok()) << oracles.violation();
  EXPECT_EQ(oracles.max_honest_height(), 6u);
}

TEST(OracleTest, StableCheckpointHashMismatchDetected) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnCommit(0, 8, TestHash(1), Ms(1));
  // A certificate naming a different block at a committed height is a forged checkpoint.
  oracles.OnStableCheckpoint(1, 8, TestHash(2), Ms(2));
  ASSERT_FALSE(oracles.ok());
  EXPECT_NE(oracles.violation().find("checkpoint"), std::string::npos);
  EXPECT_EQ(oracles.incident().oracle, "checkpoint");
}

TEST(OracleTest, AdoptBelowCommittedPrefixDetected) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnCommit(0, 10, TestHash(1), Ms(1));
  oracles.OnCheckpointAdopted(0, 8, TestHash(2), Ms(2));
  ASSERT_FALSE(oracles.ok());
  EXPECT_NE(oracles.violation().find("at or below its committed prefix"),
            std::string::npos);
}

TEST(OracleTest, AdoptBelowCertifiedFloorDetectedAcrossReboot) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnStableCheckpoint(0, 16, TestHash(1), Ms(1));
  // A clean reboot forgets the committed watermark (commit indices are volatile) but the
  // certified floor is sealed: adopting below it is a rollback by snapshot.
  oracles.OnReplicaReboot(0, /*cert_surface_attacked=*/false);
  oracles.OnCheckpointAdopted(0, 8, TestHash(2), Ms(2));
  ASSERT_FALSE(oracles.ok());
  EXPECT_NE(oracles.violation().find("below its certified floor"), std::string::npos);
}

TEST(OracleTest, AttackedCertSurfaceForgetsTheFloor) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnStableCheckpoint(0, 16, TestHash(1), Ms(1));
  // When the reboot attacked the certificate surface the restored floor legitimately
  // regresses (the modeled adversary rolled the snapshot back); no violation.
  oracles.OnReplicaReboot(0, /*cert_surface_attacked=*/true);
  oracles.OnCheckpointAdopted(0, 8, TestHash(2), Ms(2));
  EXPECT_TRUE(oracles.ok()) << oracles.violation();
}

TEST(OracleTest, AdoptAboveTheFloorRaisesIt) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnCheckpointAdopted(0, 24, TestHash(1), Ms(1));
  EXPECT_TRUE(oracles.ok()) << oracles.violation();
  // The adopt raised both watermarks: repeating it is now a regression.
  oracles.OnCheckpointAdopted(0, 24, TestHash(1), Ms(2));
  ASSERT_FALSE(oracles.ok());
}

TEST(OracleTest, FirstViolationWins) {
  OracleSuite oracles(OracleConfig{});
  oracles.OnCommit(0, 7, TestHash(0xaa), Ms(1));
  oracles.OnCommit(1, 7, TestHash(0xbb), Ms(2));
  const std::string first = oracles.violation();
  InvariantSnapshot snap;
  snap.counter_value = 9;
  oracles.OnSnapshot(0, snap, Ms(3));
  snap.counter_value = 1;
  oracles.OnSnapshot(0, snap, Ms(4));
  EXPECT_EQ(oracles.violation(), first);  // Later violations never overwrite the first.
}

// --- Seed determinism / bit-identical replay ---

TEST(ChaosRunnerTest, SameSeedIsBitIdentical) {
  ChaosOptions options;
  const ChaosResult a = chaos::RunChaosSeed(options, 5);
  const ChaosResult b = chaos::RunChaosSeed(options, 5);
  ASSERT_FALSE(a.log_digest_hex.empty());
  EXPECT_EQ(a.log_digest_hex, b.log_digest_hex);
  EXPECT_EQ(a.event_log, b.event_log);  // Not just the digest: the whole log.
  EXPECT_EQ(a.final_height, b.final_height);
  EXPECT_TRUE(a.ok) << a.violation;
}

TEST(ChaosRunnerTest, ReplayFromArtifactMatchesOriginal) {
  ChaosOptions options;
  const ChaosResult original = chaos::RunChaosSeed(options, 9);
  const ScriptArtifact artifact = original.Artifact();
  Protocol protocol = Protocol::kAchilles;
  ASSERT_TRUE(ProtocolFromName(artifact.protocol, &protocol));
  const ChaosResult replayed = chaos::RunChaosScript(options, artifact.seed, protocol,
                                                     artifact.f, artifact.script);
  EXPECT_EQ(replayed.log_digest_hex, original.log_digest_hex);
}

TEST(ChaosRunnerTest, ArtifactTextRoundTrips) {
  const ChaosResult result = chaos::RunChaosSeed(ChaosOptions{}, 12);
  const ScriptArtifact artifact = result.Artifact();
  const std::string text = artifact.ToText();
  ScriptArtifact parsed;
  ASSERT_TRUE(ScriptArtifact::FromText(text, &parsed));
  EXPECT_EQ(parsed.protocol, artifact.protocol);
  EXPECT_EQ(parsed.f, artifact.f);
  EXPECT_EQ(parsed.seed, artifact.seed);
  EXPECT_EQ(parsed.script.events.size(), artifact.script.events.size());
  EXPECT_EQ(parsed.script.byzantine, artifact.script.byzantine);
  EXPECT_EQ(parsed.script.heal_at, artifact.script.heal_at);
  EXPECT_EQ(parsed.script.horizon, artifact.script.horizon);
  EXPECT_EQ(parsed.ToText(), text);  // Canonical form is a fixed point.
}

// --- chaos-script v4: defense header + peer-quorum reboot fates ---

TEST(ChaosScriptV4Test, DefenseFateBitsEncodeAndDecode) {
  StorageFate fate;
  fate.wal = storage::WalFate::kTornTail;
  fate.sealed = SealedFate::kStale;
  fate.snapshot = checkpoint::SnapshotFate::kStale;
  fate.defense = persist::DefenseFate::kPeerErased;
  const StorageFate decoded = DecodeStorageFate(EncodeStorageFate(fate));
  EXPECT_EQ(decoded.wal, fate.wal);
  EXPECT_EQ(decoded.sealed, fate.sealed);
  EXPECT_EQ(decoded.snapshot, fate.snapshot);
  EXPECT_EQ(decoded.defense, fate.defense);
  // The all-honest fate still encodes to 0 (v1-v3 meaning compatibility).
  EXPECT_EQ(EncodeStorageFate(StorageFate{}), 0u);
}

TEST(ChaosScriptV4Test, DefenseHeaderAndPeerFateRoundTrip) {
  ScriptArtifact artifact;
  artifact.protocol = "Damysus-R";
  artifact.f = 1;
  artifact.seed = 99;
  artifact.defense = "rollbaccine";
  StorageFate fate;
  fate.sealed = SealedFate::kStale;
  fate.defense = persist::DefenseFate::kPeerStale;
  FaultEvent crash{Ms(100), FaultKind::kCrash, 2, 0, 0};
  FaultEvent reboot{Ms(300), FaultKind::kReboot, 2, 0, EncodeStorageFate(fate)};
  artifact.script.byzantine.assign(4, ByzantineMode::kNone);
  artifact.script.events = {crash, reboot};
  artifact.script.heal_at = Ms(1800);
  artifact.script.horizon = Sec(3);
  const std::string text = artifact.ToText();
  EXPECT_NE(text.find("chaos-script v4"), std::string::npos) << text;
  EXPECT_NE(text.find("defense rollbaccine"), std::string::npos) << text;
  ScriptArtifact parsed;
  ASSERT_TRUE(ScriptArtifact::FromText(text, &parsed));
  EXPECT_EQ(parsed.defense, "rollbaccine");
  ASSERT_EQ(parsed.script.events.size(), 2u);
  const StorageFate replayed = DecodeStorageFate(parsed.script.events[1].arg);
  EXPECT_EQ(replayed.sealed, SealedFate::kStale);
  EXPECT_EQ(replayed.defense, persist::DefenseFate::kPeerStale);
  EXPECT_EQ(parsed.ToText(), text);  // Canonical form is a fixed point.
}

TEST(ChaosScriptV4Test, PreV4TextsParseWithLocalDefenseDefault) {
  // v1-v3 artifacts carry no defense line; they must keep meaning exactly what they
  // meant — the local backend, peer quorum untouched.
  ScriptArtifact parsed;
  ASSERT_TRUE(ScriptArtifact::FromText(
      "chaos-script v3\nprotocol Achilles\nf 1\nseed 4\n"
      "event 100000000 reboot 1 0 257\n"
      "heal 1400000000\nhorizon 2000000000\n",
      &parsed));
  EXPECT_EQ(parsed.defense, "local");
  const StorageFate fate = DecodeStorageFate(parsed.script.events[0].arg);
  EXPECT_EQ(fate.defense, persist::DefenseFate::kIntact);
  // Re-serialization upgrades the header but preserves the fate bytes verbatim.
  EXPECT_NE(parsed.ToText().find("chaos-script v4"), std::string::npos);
  EXPECT_NE(parsed.ToText().find("event 100000000 reboot 1 0 257"), std::string::npos);
}

TEST(ChaosScriptV4Test, QuorumDefenseSweepStaysCleanAndReplaysDigestStable) {
  for (const persist::DefenseKind defense :
       {persist::DefenseKind::kRollbaccine, persist::DefenseKind::kHealer}) {
    ChaosOptions options;
    options.defense = defense;
    options.reboot_prob = 1.0;  // Weight toward the reboots that exercise peer fates.
    const ChaosResult result = chaos::RunChaosSeed(options, 3);
    ASSERT_TRUE(result.ok) << persist::DefenseKindName(defense) << ": "
                           << result.violation;
    EXPECT_EQ(result.defense, defense);
    const ScriptArtifact artifact = result.Artifact();
    EXPECT_EQ(artifact.defense, persist::DefenseKindName(defense));
    Protocol protocol = Protocol::kAchilles;
    ASSERT_TRUE(ProtocolFromName(artifact.protocol, &protocol));
    const ChaosResult replayed = chaos::RunChaosScript(options, artifact.seed, protocol,
                                                       artifact.f, artifact.script);
    EXPECT_EQ(replayed.log_digest_hex, result.log_digest_hex)
        << persist::DefenseKindName(defense);
  }
}

// --- Broken-variant self-tests: the oracles must flag the planted bugs ---

TEST(ChaosBrokenVariantTest, RecoveryNonceBypassIsFlagged) {
  ChaosOptions options;
  options.broken = BrokenVariant::kRecoveryNonce;
  const ChaosResult result = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(result.ok) << "broken recovery-nonce variant passed the oracles";
  EXPECT_NE(result.violation.find("freshness"), std::string::npos) << result.violation;
}

TEST(ChaosBrokenVariantTest, CounterCompareBypassIsFlagged) {
  ChaosOptions options;
  options.broken = BrokenVariant::kCounterCompare;
  const ChaosResult result = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(result.ok) << "broken counter-compare variant passed the oracles";
  EXPECT_NE(result.violation.find("counter"), std::string::npos) << result.violation;
}

TEST(ChaosBrokenVariantTest, StaleSnapshotAcceptIsFlagged) {
  ChaosOptions options;
  options.broken = BrokenVariant::kStaleSnapshotAccept;
  // The canonical choreography (crash, run ahead, reboot into a fetch) needs a seed whose
  // background schedule lets the victim lag past the catch-up threshold; seed 2 is the
  // first that does, and the flagging is deterministic (chaos_main's golden incident).
  const ChaosResult result = chaos::RunChaosSeed(options, 2);
  ASSERT_FALSE(result.ok) << "broken stale-snapshot-accept variant passed the oracles";
  EXPECT_NE(result.violation.find("checkpoint"), std::string::npos) << result.violation;
  EXPECT_NE(result.violation.find("stale snapshot accepted"), std::string::npos)
      << result.violation;
}

TEST(ChaosBrokenVariantTest, QuorumRestoreSkipIsFlagged) {
  ChaosOptions options;
  options.broken = BrokenVariant::kQuorumRestoreSkip;  // Forces Damysus-R + rollbaccine.
  const ChaosResult result = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(result.ok) << "broken quorum-restore-skip variant passed the oracles";
  EXPECT_EQ(result.defense, persist::DefenseKind::kRollbaccine);
  EXPECT_NE(result.violation.find("trusted version regressed"), std::string::npos)
      << result.violation;
}

TEST(ChaosBrokenVariantTest, CertFloorSkipIsFlagged) {
  ChaosOptions options;
  options.broken = BrokenVariant::kCertFloorSkip;  // Forces Damysus-R + healer.
  const ChaosResult result = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(result.ok) << "broken cert-floor-skip variant passed the oracles";
  EXPECT_EQ(result.defense, persist::DefenseKind::kHealer);
  EXPECT_NE(result.violation.find("trusted version regressed"), std::string::npos)
      << result.violation;
}

// Regression: a duplicated vote response (delivery-jitter duplication) must not be
// double-counted toward the election quorum. BRaft tallied votes with a bare counter; in
// this checkpoint-weighted swarm reproducer node 3 received node 2's grant twice, declared
// itself leader of term 2 with only 2 of 5 distinct grantors, and forked height 206 against
// the term-1 leader's committed block. Votes are now deduped per grantor.
TEST(ChaosRegressionTest, DuplicatedVoteResponseMustNotElectAMinorityLeader) {
  ScriptArtifact artifact;
  ASSERT_TRUE(ScriptArtifact::FromText(
      "chaos-script v3\nprotocol BRaft\nf 2\nseed 17\n"
      "event 428184172 jitter-on 0 0 947907\n"
      "event 430924395 stall 1 0 218665280\n"
      "event 508532317 partition 4 3 0\n"
      "event 736878833 heal-partition 0 0 0\n"
      "heal 1400000000\nhorizon 2000000000\n",
      &artifact));
  ChaosOptions options;
  options.app_kv = true;
  Protocol protocol = Protocol::kAchilles;
  ASSERT_TRUE(ProtocolFromName(artifact.protocol, &protocol));
  const ChaosResult result =
      chaos::RunChaosScript(options, artifact.seed, protocol, artifact.f, artifact.script);
  EXPECT_TRUE(result.ok) << result.violation;
}

// --- Minimization ---

TEST(ChaosMinimizeTest, ShrinksFailingScriptAndStaysFailing) {
  ChaosOptions options;
  options.broken = BrokenVariant::kCounterCompare;
  const ChaosResult failing = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(failing.ok);
  const MinimizeResult minimized = chaos::MinimizeScript(
      options, failing.seed, failing.protocol, failing.f, failing.script);
  EXPECT_TRUE(minimized.reproduced);
  EXPECT_FALSE(minimized.violation.empty());
  EXPECT_LE(minimized.minimized_events, minimized.original_events);
  EXPECT_LE(minimized.script.events.size(), failing.script.events.size());
  EXPECT_LE(minimized.minimized_byzantine, minimized.original_byzantine);
  // The minimized script is a genuine reproducer on its own.
  const ChaosResult rerun = chaos::RunChaosScript(options, failing.seed, failing.protocol,
                                                  failing.f, minimized.script);
  EXPECT_FALSE(rerun.ok);
}

TEST(ChaosMinimizeTest, DdminRoundTripsThroughTheV3ArtifactText) {
  // Regression for the v3 script format: a ddmin-minimized checkpoint reproducer must
  // survive ToText -> FromText with its snapshot fates intact and still reproduce.
  ChaosOptions options;
  options.broken = BrokenVariant::kStaleSnapshotAccept;
  const ChaosResult failing = chaos::RunChaosSeed(options, 2);
  ASSERT_FALSE(failing.ok);
  const MinimizeResult minimized = chaos::MinimizeScript(
      options, failing.seed, failing.protocol, failing.f, failing.script);
  ASSERT_TRUE(minimized.reproduced);
  ScriptArtifact artifact = failing.Artifact();
  artifact.script = minimized.script;
  const std::string text = artifact.ToText();
  ScriptArtifact parsed;
  ASSERT_TRUE(ScriptArtifact::FromText(text, &parsed));
  ASSERT_EQ(parsed.script.events.size(), minimized.script.events.size());
  for (size_t i = 0; i < parsed.script.events.size(); ++i) {
    EXPECT_EQ(parsed.script.events[i].arg, minimized.script.events[i].arg) << "event " << i;
  }
  Protocol protocol = Protocol::kAchilles;
  ASSERT_TRUE(ProtocolFromName(parsed.protocol, &protocol));
  const ChaosResult rerun =
      chaos::RunChaosScript(options, parsed.seed, protocol, parsed.f, parsed.script);
  EXPECT_FALSE(rerun.ok);
  EXPECT_NE(rerun.violation.find("checkpoint"), std::string::npos) << rerun.violation;
}

TEST(ChaosMinimizeTest, DdminPreservesTheDefenseHeader) {
  // A minimized quorum-backend reproducer must re-run under the same backend: the defense
  // line has to survive ddmin's ToText -> FromText round trip, or the replay silently
  // falls back to the local backend and the reproducer stops reproducing.
  ChaosOptions options;
  options.broken = BrokenVariant::kQuorumRestoreSkip;
  const ChaosResult failing = chaos::RunChaosSeed(options, 1);
  ASSERT_FALSE(failing.ok);
  const MinimizeResult minimized = chaos::MinimizeScript(
      options, failing.seed, failing.protocol, failing.f, failing.script);
  ASSERT_TRUE(minimized.reproduced);
  ScriptArtifact artifact = failing.Artifact();
  artifact.script = minimized.script;
  const std::string text = artifact.ToText();
  EXPECT_NE(text.find("defense rollbaccine"), std::string::npos) << text;
  ScriptArtifact parsed;
  ASSERT_TRUE(ScriptArtifact::FromText(text, &parsed));
  EXPECT_EQ(parsed.defense, "rollbaccine");
  Protocol protocol = Protocol::kAchilles;
  ASSERT_TRUE(ProtocolFromName(parsed.protocol, &protocol));
  // Replay contract (chaos_main's ReplayFile): the artifact's defense line configures the
  // rerun's backend. Without it the replay would run the local backend and diverge.
  ChaosOptions replay_options = options;
  ASSERT_TRUE(persist::DefenseKindFromName(parsed.defense, &replay_options.defense));
  const ChaosResult rerun = chaos::RunChaosScript(replay_options, parsed.seed, protocol,
                                                  parsed.f, parsed.script);
  EXPECT_FALSE(rerun.ok);
  EXPECT_NE(rerun.violation.find("trusted version regressed"), std::string::npos)
      << rerun.violation;
}

TEST(ChaosRunnerTest, CheckpointWeightedSweepStaysClean) {
  // Max checkpoint-fate weight: every sampled reboot draws a snapshot fate and lagging
  // rejoins are common. The honest protocols must absorb all of it.
  ChaosOptions options;
  options.ckpt_prob = 1.0;
  for (uint64_t seed = 30; seed < 33; ++seed) {
    const ChaosResult result = chaos::RunChaosSeed(options, seed);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
  }
}

TEST(ChaosMinimizeTest, PassingScriptReportsNotReproduced) {
  ChaosOptions options;
  const ChaosResult passing = chaos::RunChaosSeed(options, 5);
  ASSERT_TRUE(passing.ok);
  const MinimizeResult result = chaos::MinimizeScript(
      options, passing.seed, passing.protocol, passing.f, passing.script);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.script.events.size(), passing.script.events.size());  // Untouched.
}

// --- Name tables ---

TEST(ChaosNamesTest, BrokenVariantNamesRoundTrip) {
  for (const BrokenVariant variant :
       {BrokenVariant::kNone, BrokenVariant::kRecoveryNonce,
        BrokenVariant::kCounterCompare, BrokenVariant::kStaleReadLease,
        BrokenVariant::kStaleSnapshotAccept}) {
    BrokenVariant parsed = BrokenVariant::kNone;
    ASSERT_TRUE(chaos::BrokenVariantFromName(chaos::BrokenVariantName(variant), &parsed));
    EXPECT_EQ(parsed, variant);
  }
  BrokenVariant parsed = BrokenVariant::kNone;
  EXPECT_FALSE(chaos::BrokenVariantFromName("no-such-variant", &parsed));
}

}  // namespace
}  // namespace achilles
