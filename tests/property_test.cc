// Property-based suites: protocol-independent invariants checked over a parameter grid of
// (protocol, f, network, seed), plus chain-structure properties enforced through the
// commit stream.
#include <gtest/gtest.h>

#include <tuple>

#include "src/harness/cluster.h"

namespace achilles {
namespace {

enum class NetKind { kLan, kWan };

using GridParam = std::tuple<Protocol, uint32_t /*f*/, NetKind, uint64_t /*seed*/>;

ClusterConfig ConfigFor(const GridParam& param) {
  ClusterConfig config;
  config.protocol = std::get<0>(param);
  config.f = std::get<1>(param);
  config.batch_size = 50;
  config.payload_size = 32;
  if (std::get<2>(param) == NetKind::kLan) {
    config.net = NetworkConfig::Lan();
    config.base_timeout = Ms(100);
  } else {
    // Scaled-down WAN (RTT 8 ms) keeps the grid fast while preserving asynchrony.
    config.net = NetworkConfig::Wan();
    config.net.one_way_base = Ms(4);
    config.base_timeout = Ms(400);
  }
  config.seed = std::get<3>(param);
  return config;
}

SimDuration RunFor(const GridParam& param) {
  return std::get<2>(param) == NetKind::kLan ? Sec(2) : Sec(4);
}

class InvariantGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(InvariantGrid, SafetyLivenessAndChainStructure) {
  Cluster cluster(ConfigFor(GetParam()));

  // Chain-structure audit via the commit stream: per replica, committed heights are
  // strictly increasing and (absent state transfer) parent-linked.
  std::vector<Height> last_height(cluster.num_replicas(), 0);
  std::vector<Hash256> last_hash(cluster.num_replicas(), Block::Genesis()->hash);
  bool heights_monotone = true;
  bool parents_linked = true;
  cluster.tracker().SetCommitListener(
      [&](NodeId replica, const BlockPtr& block, SimTime /*now*/) {
        if (block->height <= last_height[replica]) {
          heights_monotone = false;
        }
        if (block->height == last_height[replica] + 1 &&
            block->parent != last_hash[replica]) {
          parents_linked = false;
        }
        last_height[replica] = block->height;
        last_hash[replica] = block->hash;
      });

  cluster.Start();
  cluster.sim().RunFor(RunFor(GetParam()));

  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 3u) << "liveness";
  EXPECT_TRUE(heights_monotone);
  EXPECT_TRUE(parents_linked);
  // All correct replicas converge to within a small window of the max height.
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    EXPECT_GE(cluster.tracker().committed_height(i) + 10,
              cluster.tracker().max_committed_height())
        << "replica " << i << " lagging";
  }
}

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  std::string name = ProtocolName(std::get<0>(info.param));
  std::erase(name, '-');
  name += "_f" + std::to_string(std::get<1>(info.param));
  name += std::get<2>(info.param) == NetKind::kLan ? "_lan" : "_wan";
  name += "_s" + std::to_string(std::get<3>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantGrid,
    ::testing::Combine(::testing::Values(Protocol::kAchilles, Protocol::kDamysus,
                                         Protocol::kOneShot, Protocol::kFlexiBft,
                                         Protocol::kRaft),
                       ::testing::Values(1u, 2u), ::testing::Values(NetKind::kLan, NetKind::kWan),
                       ::testing::Values(101u, 202u)),
    GridName);

// --- Determinism across the grid ---

class DeterminismGrid : public ::testing::TestWithParam<Protocol> {};

TEST_P(DeterminismGrid, IdenticalSeedsIdenticalHistories) {
  auto run = [&](uint64_t seed) {
    GridParam param{GetParam(), 1, NetKind::kLan, seed};
    Cluster cluster(ConfigFor(param));
    std::vector<Hash256> commits;
    cluster.tracker().SetCommitListener(
        [&](NodeId replica, const BlockPtr& block, SimTime now) {
          if (replica == 0) {
            commits.push_back(block->hash);
            (void)now;
          }
        });
    cluster.Start();
    cluster.sim().RunFor(Sec(1));
    return commits;
  };
  const auto a = run(77);
  const auto b = run(77);
  const auto c = run(78);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a, c);  // Different seed, different jitter, different history.
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DeterminismGrid,
                         ::testing::Values(Protocol::kAchilles, Protocol::kDamysus,
                                           Protocol::kOneShot, Protocol::kFlexiBft,
                                           Protocol::kRaft),
                         [](const auto& param_info) {
                           std::string name = ProtocolName(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

// --- Crash-churn property: random crash/reboot schedules never break safety ---

class CrashChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashChurn, AchillesSurvivesRandomCrashRebootSchedules) {
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 2;
  config.batch_size = 50;
  config.payload_size = 32;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(100);
  config.seed = GetParam();
  Cluster cluster(config);
  cluster.Start();

  Rng rng(GetParam() ^ 0xc4a5);
  // Repeatedly: run a bit, crash a random victim (at most f down at once), maybe roll back
  // its storage, reboot it later.
  std::vector<bool> down(cluster.num_replicas(), false);
  uint32_t num_down = 0;
  for (int round = 0; round < 6; ++round) {
    cluster.sim().RunFor(Ms(300 + rng.UniformU64(300)));
    if (num_down < config.f && rng.Chance(0.8)) {
      uint32_t victim = static_cast<uint32_t>(rng.UniformU64(cluster.num_replicas()));
      if (!down[victim]) {
        cluster.CrashReplica(victim);
        down[victim] = true;
        ++num_down;
        if (rng.Chance(0.5)) {
          cluster.platform(victim).storage().SetRollbackMode(
              rng.Chance(0.5) ? RollbackMode::kOldest : RollbackMode::kErase);
        }
        cluster.RebootReplica(victim);
      }
    }
    // Reboots complete within the init delay + recovery; count them back up.
    cluster.sim().RunFor(Ms(600));
    for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
      if (down[i]) {
        down[i] = false;
        --num_down;
      }
    }
  }
  cluster.sim().RunFor(Sec(2));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 50u);
  // Everyone (including all reboot survivors) converges.
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    EXPECT_GE(cluster.tracker().committed_height(i) + 20,
              cluster.tracker().max_committed_height())
        << "replica " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashChurn, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --- Partition healing ---

TEST(PartitionTest, AchillesHealsAfterPartition) {
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 1;
  config.batch_size = 50;
  config.payload_size = 32;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(100);
  config.seed = 31;
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Ms(500));
  const Height before = cluster.tracker().max_committed_height();
  // Isolate replica 0 from {1, 2}: the majority side keeps going.
  cluster.net().Partition({{0}, {1, 2}});
  cluster.sim().RunFor(Sec(1));
  const Height during = cluster.tracker().max_committed_height();
  EXPECT_GT(during, before);
  // Heal; replica 0 catches up.
  cluster.net().ClearPartition();
  cluster.sim().RunFor(Sec(2));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GE(cluster.tracker().committed_height(0) + 10,
            cluster.tracker().max_committed_height());
}

TEST(PartitionTest, MinoritySideCannotCommit) {
  ClusterConfig config;
  config.protocol = Protocol::kAchilles;
  config.f = 2;
  config.batch_size = 50;
  config.payload_size = 32;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(100);
  config.seed = 32;
  Cluster cluster(config);
  cluster.Start();
  cluster.sim().RunFor(Ms(500));
  // Split 2 vs 3 (quorum = 3): only the majority side advances.
  cluster.net().Partition({{0, 1}, {2, 3, 4}});
  const Height h0 = cluster.tracker().committed_height(0);
  cluster.sim().RunFor(Sec(2));
  EXPECT_LE(cluster.tracker().committed_height(0), h0 + 1);
  EXPECT_GT(cluster.tracker().committed_height(3), h0 + 5);
  EXPECT_FALSE(cluster.tracker().safety_violated());
}

}  // namespace
}  // namespace achilles
