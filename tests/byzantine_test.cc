// Active-adversary integration tests: f Byzantine replicas with various behaviours must
#include "src/achilles/replica.h"
// never break safety, and (except where they control leadership forever) not liveness.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "src/harness/cluster.h"
#include "src/harness/fault_script.h"

namespace achilles {
namespace {

ClusterConfig Config(Protocol protocol, uint32_t f, uint64_t seed) {
  ClusterConfig config;
  config.protocol = protocol;
  config.f = f;
  config.batch_size = 50;
  config.payload_size = 32;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(100);
  config.seed = seed;
  return config;
}

struct ByzCase {
  ByzantineMode mode;
  const char* name;
};

class ByzantineModes : public ::testing::TestWithParam<ByzCase> {};

TEST_P(ByzantineModes, AchillesToleratesFByzantine) {
  Cluster cluster(Config(Protocol::kAchilles, 2, 51));
  // Replicas 3 and 4 are Byzantine (f = 2 of n = 5).
  cluster.SetByzantine(3, GetParam().mode);
  cluster.SetByzantine(4, GetParam().mode);
  cluster.Start();
  cluster.sim().RunFor(Sec(4));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 10u) << "liveness lost";
  // The three correct replicas converge.
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_GE(cluster.tracker().committed_height(i) + 15,
              cluster.tracker().max_committed_height())
        << "replica " << i;
  }
}

TEST_P(ByzantineModes, DamysusToleratesFByzantine) {
  Cluster cluster(Config(Protocol::kDamysus, 2, 52));
  cluster.SetByzantine(1, GetParam().mode);
  cluster.SetByzantine(3, GetParam().mode);
  cluster.Start();
  cluster.sim().RunFor(Sec(4));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Modes, ByzantineModes,
                         ::testing::Values(ByzCase{ByzantineMode::kSilent, "Silent"},
                                           ByzCase{ByzantineMode::kFlaky, "Flaky"},
                                           ByzCase{ByzantineMode::kDelayer, "Delayer"},
                                           ByzCase{ByzantineMode::kDuplicator, "Duplicator"},
                                           ByzCase{ByzantineMode::kSpammer, "Spammer"},
                                           ByzCase{ByzantineMode::kStaleReplay, "StaleReplay"},
                                           ByzCase{ByzantineMode::kSelectiveSend,
                                                   "SelectiveSend"},
                                           ByzCase{ByzantineMode::kReorderBurst,
                                                   "ReorderBurst"}),
                         [](const auto& param_info) { return param_info.param.name; });

// Full protocol x ByzantineMode matrix at f = 1: every protocol must tolerate every mode
// its fault model admits (Raft is CFT, so it only faces omission/timing faults). One
// short run per combination; safety is absolute, liveness a low bar (leader slots owned
// by the Byzantine replica burn view timeouts).
class ProtocolByzantineMatrix : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolByzantineMatrix, ToleratesEveryAllowedModeAtF1) {
  const Protocol protocol = GetParam();
  for (ByzantineMode mode : AllowedByzantineModes(protocol)) {
    SCOPED_TRACE(ByzantineModeName(mode));
    Cluster cluster(Config(protocol, 1, 55));
    cluster.SetByzantine(1, mode);  // Never the initial leader (replica 0).
    cluster.Start();
    cluster.sim().RunFor(Sec(2));
    EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
    EXPECT_GT(cluster.tracker().max_committed_height(), 2u) << "liveness lost";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolByzantineMatrix,
    ::testing::Values(Protocol::kAchilles, Protocol::kAchillesC, Protocol::kDamysus,
                      Protocol::kDamysusR, Protocol::kOneShot, Protocol::kOneShotR,
                      Protocol::kFlexiBft, Protocol::kRaft, Protocol::kMinBft,
                      Protocol::kHotStuff),
    [](const auto& param_info) {
      std::string sanitized;
      for (const char c : std::string(ProtocolName(param_info.param))) {
        if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
          sanitized += c;
        }
      }
      return sanitized;
    });

TEST(ByzantineMixTest, MixedBehavioursUnderChurn) {
  Cluster cluster(Config(Protocol::kAchilles, 3, 53));  // n = 7.
  cluster.SetByzantine(2, ByzantineMode::kFlaky);
  cluster.SetByzantine(4, ByzantineMode::kSpammer);
  cluster.SetByzantine(6, ByzantineMode::kDelayer);
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  // A correct replica additionally crashes and recovers mid-run... note that with 3
  // Byzantine replicas, the crashed correct node leaves only 3 correct up — exactly f+1 =
  // 4? No: quorum is f+1 = 4, so progress pauses until it recovers; recovery itself still
  // completes because Byzantine nodes' TEEs answer recovery requests honestly (kFlaky and
  // kDelayer still deliver some).
  cluster.CrashReplica(0);
  cluster.RebootReplica(0);
  cluster.sim().RunFor(Sec(4));
  EXPECT_FALSE(cluster.tracker().safety_violated()) << cluster.tracker().violation();
  EXPECT_GT(cluster.tracker().max_committed_height(), 5u);
}

TEST(ByzantineRecoveryTest, ExcessiveFaultsStallRecoveryButNeverSafety) {
  // §6.3 boundary: with f Byzantine-silent nodes AND one correct node rebooting, only f
  // correct responders remain — fewer than the f+1 replies recovery needs. The recovering
  // node must stay in recovery (not guess from local state!) and safety must hold.
  Cluster cluster(Config(Protocol::kAchilles, 2, 54));
  cluster.SetByzantine(3, ByzantineMode::kSilent);
  cluster.SetByzantine(4, ByzantineMode::kSilent);
  cluster.Start();
  cluster.sim().RunFor(Sec(1));
  const Height before = cluster.tracker().max_committed_height();
  cluster.CrashReplica(1);
  cluster.platform(1).storage().SetRollbackMode(RollbackMode::kErase);
  cluster.RebootReplica(1);
  cluster.sim().RunFor(Sec(4));
  EXPECT_FALSE(cluster.tracker().safety_violated());
  auto* rebooted = dynamic_cast<AchillesReplica*>(cluster.replica(1));
  ASSERT_NE(rebooted, nullptr);
  EXPECT_TRUE(rebooted->recovering());  // Cannot gather f+1 replies: stays out, stays safe.
  // The two remaining correct replicas are below quorum: no progress either.
  EXPECT_LE(cluster.tracker().max_committed_height(), before + 2);
}

}  // namespace
}  // namespace achilles
