#include "src/chaos/oracles.h"

#include <algorithm>
#include <cstdio>

#include "src/common/bytes.h"
#include "src/common/check.h"

namespace achilles::chaos {
namespace {

std::string HashPrefix(const Hash256& hash) {
  return ToHex(ByteView(hash.data(), 4));
}

std::string TimeTag(SimTime now) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "T%lld ", static_cast<long long>(now));
  return buf;
}

}  // namespace

OracleSuite::OracleSuite(const OracleConfig& config) : config_(config) {
  last_counter_.assign(config_.n, 0);
  last_version_.assign(config_.n, 0);
  ckpt_floor_.assign(config_.n, 0);
  committed_high_.assign(config_.n, 0);
}

void OracleSuite::MarkByzantine(NodeId id) {
  byzantine_.insert(id);
}

void OracleSuite::Fail(SimTime now, const std::string& what, const std::string& oracle,
                       NodeId node, Height height) {
  if (violation_.empty()) {
    violation_ = TimeTag(now) + what;
    incident_ = Incident{oracle, node, height, now};
  }
}

void OracleSuite::OnCommit(NodeId id, Height height, const Hash256& hash, SimTime now) {
  if (!Honest(id) || !ok()) {
    return;
  }
  committed_high_[id] = std::max(committed_high_[id], height);
  auto [it, inserted] = committed_.emplace(height, hash);
  if (!inserted && it->second != hash) {
    Fail(now,
         "agreement: node " + std::to_string(id) + " committed " + HashPrefix(hash) +
             " at height " + std::to_string(height) + " but " + HashPrefix(it->second) +
             " was committed there first",
         "agreement", id, height);
  }
}

void OracleSuite::OnSnapshot(NodeId id, const InvariantSnapshot& snap, SimTime now) {
  if (!Honest(id) || !ok()) {
    return;
  }
  // Counter monotonicity (across reboots too: the device is persistent).
  if (snap.counter_value < last_counter_[id]) {
    Fail(now,
         "counter: node " + std::to_string(id) + " counter regressed " +
             std::to_string(last_counter_[id]) + " -> " + std::to_string(snap.counter_value),
         "counter", id);
    return;
  }
  last_counter_[id] = snap.counter_value;
  // Lockstep integrity: a live (-R) checker's trusted version tracks the counter exactly.
  // A broken Restore that accepts a stale sealed blob leaves version < counter forever.
  if (config_.counter_lockstep && !snap.halted &&
      snap.trusted_version != snap.counter_value) {
    Fail(now,
         "counter: node " + std::to_string(id) + " trusted version " +
             std::to_string(snap.trusted_version) + " != counter " +
             std::to_string(snap.counter_value) + " (stale sealed state accepted)",
         "counter", id);
    return;
  }
  // Defense-backend version monotonicity: under a quorum defense the backend binds a
  // strictly growing version to the trusted state; a snapshot whose version sits below the
  // replica's own high-water mark means a rolled-back blob was accepted on restore (the
  // quorum-restore-skip / cert-floor-skip broken backends do exactly that).
  if (config_.version_monotonic && !snap.halted) {
    if (snap.trusted_version < last_version_[id]) {
      Fail(now,
           "defense: node " + std::to_string(id) + " trusted version regressed " +
               std::to_string(last_version_[id]) + " -> " +
               std::to_string(snap.trusted_version) + " (rolled-back state accepted)",
           "defense", id);
      return;
    }
    last_version_[id] = snap.trusted_version;
  }
  // Durability: the snapshot head must match what the cluster committed at that height.
  if (snap.committed_height > 0) {
    auto it = committed_.find(snap.committed_height);
    if (it != committed_.end() && it->second != snap.committed_hash) {
      Fail(now,
           "durability: node " + std::to_string(id) + " head " +
               HashPrefix(snap.committed_hash) + " at height " +
               std::to_string(snap.committed_height) + " diverges from committed " +
               HashPrefix(it->second),
           "durability", id, snap.committed_height);
    }
  }
}

void OracleSuite::OnRecoveryComplete(NodeId id, size_t fresh_replies, bool nonce_fresh,
                                     SimTime now) {
  if (!Honest(id) || !ok()) {
    return;
  }
  if (!nonce_fresh) {
    Fail(now,
         "freshness: node " + std::to_string(id) +
             " finished recovery on replies of a superseded nonce round "
             "(stale replay accepted)",
         "freshness", id);
    return;
  }
  if (fresh_replies < static_cast<size_t>(config_.f) + 1) {
    Fail(now,
         "freshness: node " + std::to_string(id) + " finished recovery on " +
             std::to_string(fresh_replies) + " fresh replies (< f+1 = " +
             std::to_string(config_.f + 1) + "); stale replies were accepted",
         "freshness", id);
  }
}

void OracleSuite::OnHistoryVerdict(bool ok_verdict, const std::string& violation,
                                   NodeId server, SimTime now) {
  if (!ok() || ok_verdict) {
    return;
  }
  Fail(now, "linearizability: " + violation, "linearizability", server);
}

void OracleSuite::OnStableCheckpoint(NodeId id, Height height, const Hash256& block_hash,
                                     SimTime now) {
  if (!Honest(id) || !ok()) {
    return;
  }
  // Certified-prefix audit: the quorum certificate names the boundary block, which must be
  // the block the cluster committed at that height.
  const auto it = committed_.find(height);
  if (it != committed_.end() && it->second != block_hash) {
    Fail(now,
         "checkpoint: node " + std::to_string(id) + " certified " + HashPrefix(block_hash) +
             " at height " + std::to_string(height) + " but " + HashPrefix(it->second) +
             " was committed there",
         "checkpoint", id, height);
    return;
  }
  ckpt_floor_[id] = std::max(ckpt_floor_[id], height);
}

void OracleSuite::OnCheckpointAdopted(NodeId id, Height height, const Hash256& block_hash,
                                      SimTime now) {
  if (!Honest(id) || !ok()) {
    return;
  }
  if (height <= committed_high_[id]) {
    Fail(now,
         "checkpoint: node " + std::to_string(id) + " adopted a snapshot at height " +
             std::to_string(height) + " at or below its committed prefix " +
             std::to_string(committed_high_[id]) + " (stale snapshot accepted)",
         "checkpoint", id, height);
    return;
  }
  if (height < ckpt_floor_[id]) {
    Fail(now,
         "checkpoint: node " + std::to_string(id) + " adopted a snapshot at height " +
             std::to_string(height) + " below its certified floor " +
             std::to_string(ckpt_floor_[id]) + " (stale snapshot accepted)",
         "checkpoint", id, height);
    return;
  }
  const auto it = committed_.find(height);
  if (it != committed_.end() && it->second != block_hash) {
    Fail(now,
         "checkpoint: node " + std::to_string(id) + " adopted " + HashPrefix(block_hash) +
             " at height " + std::to_string(height) + " but " + HashPrefix(it->second) +
             " was committed there",
         "checkpoint", id, height);
    return;
  }
  committed_high_[id] = std::max(committed_high_[id], height);
  ckpt_floor_[id] = std::max(ckpt_floor_[id], height);
}

void OracleSuite::OnReplicaReboot(NodeId id, bool cert_surface_attacked) {
  if (id >= ckpt_floor_.size()) {
    return;
  }
  committed_high_[id] = 0;
  if (cert_surface_attacked) {
    ckpt_floor_[id] = 0;
  }
}

void OracleSuite::OnHeal(SimTime now) {
  (void)now;
  ACHILLES_CHECK(!healed_);
  healed_ = true;
  height_at_heal_ = max_honest_height();
}

void OracleSuite::OnRunEnd(SimTime now) {
  if (!ok()) {
    return;
  }
  ACHILLES_CHECK(healed_);
  const Height end = max_honest_height();
  if (end <= height_at_heal_) {
    Fail(now,
         "liveness: max honest height " + std::to_string(end) +
             " did not advance after heal (was " + std::to_string(height_at_heal_) + ")",
         "liveness", kNoNode, end);
  }
}

Height OracleSuite::max_honest_height() const {
  return committed_.empty() ? 0 : committed_.rbegin()->first;
}

}  // namespace achilles::chaos
