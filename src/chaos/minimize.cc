#include "src/chaos/minimize.h"

#include <algorithm>

namespace achilles::chaos {

MinimizeResult MinimizeScript(const ChaosOptions& options, uint64_t seed, Protocol protocol,
                              uint32_t f, const FaultScript& failing,
                              const MinimizeOptions& minimize_options) {
  MinimizeResult result;
  result.script = failing;
  result.original_events = failing.events.size();
  result.original_byzantine = failing.ByzantineCount();

  auto still_fails = [&](const FaultScript& candidate, std::string* violation) {
    if (result.runs >= minimize_options.max_runs) {
      return false;
    }
    ++result.runs;
    ChaosResult run = RunChaosScript(options, seed, protocol, f, candidate);
    if (!run.ok && violation != nullptr) {
      *violation = run.violation;
    }
    return !run.ok;
  };

  if (!still_fails(result.script, &result.violation)) {
    // Not reproducible under this (options, seed) — report the original untouched.
    result.minimized_events = result.original_events;
    result.minimized_byzantine = result.original_byzantine;
    return result;
  }
  result.reproduced = true;

  // ddmin over the event list: remove one chunk at a time, halving chunk size when no
  // removal keeps the failure alive.
  size_t granularity = 2;
  while (result.script.events.size() >= 2 && result.runs < minimize_options.max_runs) {
    const size_t total = result.script.events.size();
    granularity = std::min(granularity, total);
    const size_t chunk = (total + granularity - 1) / granularity;
    bool reduced = false;
    for (size_t start = 0; start < total && result.runs < minimize_options.max_runs;
         start += chunk) {
      FaultScript candidate = result.script;
      const auto begin = candidate.events.begin() + static_cast<ptrdiff_t>(start);
      const auto end = candidate.events.begin() +
                       static_cast<ptrdiff_t>(std::min(start + chunk, total));
      candidate.events.erase(begin, end);
      if (candidate.events.size() == total) {
        continue;
      }
      std::string violation;
      if (still_fails(candidate, &violation)) {
        result.script = candidate;
        result.violation = violation;
        reduced = true;
        break;
      }
    }
    if (reduced) {
      granularity = std::max<size_t>(2, granularity - 1);
    } else if (chunk == 1) {
      break;  // Already at single-event granularity and nothing removable.
    } else {
      granularity = std::min(granularity * 2, result.script.events.size());
    }
  }

  // Byzantine weakening: flip each assignment to honest if the failure survives.
  for (size_t i = 0;
       i < result.script.byzantine.size() && result.runs < minimize_options.max_runs; ++i) {
    if (result.script.byzantine[i] == ByzantineMode::kNone) {
      continue;
    }
    FaultScript candidate = result.script;
    candidate.byzantine[i] = ByzantineMode::kNone;
    std::string violation;
    if (still_fails(candidate, &violation)) {
      result.script = candidate;
      result.violation = violation;
    }
  }

  result.minimized_events = result.script.events.size();
  result.minimized_byzantine = result.script.ByzantineCount();
  return result;
}

}  // namespace achilles::chaos
