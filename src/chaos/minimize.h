// Delta-minimization of failing fault scripts (ddmin over the event list, then Byzantine
// weakening). Acceptance is "the rerun still violates *some* oracle" — a shrunk script
// that exposes a different violation is just as good a reproducer. Only removals are ever
// attempted, so the minimized script is never longer than the original.
#ifndef SRC_CHAOS_MINIMIZE_H_
#define SRC_CHAOS_MINIMIZE_H_

#include <string>

#include "src/chaos/runner.h"

namespace achilles::chaos {

struct MinimizeOptions {
  // Hard cap on re-executions (each is a full chaos run).
  int max_runs = 150;
};

struct MinimizeResult {
  FaultScript script;       // Minimized script (a subset of the original's events).
  std::string violation;    // Violation the minimized script still triggers.
  bool reproduced = false;  // False if the original script did not fail on re-run.
  int runs = 0;             // Re-executions spent.
  size_t original_events = 0;
  size_t minimized_events = 0;
  uint32_t original_byzantine = 0;
  uint32_t minimized_byzantine = 0;
};

// Shrinks `failing` while RunChaosScript(options, seed, protocol, f, ·) keeps failing.
MinimizeResult MinimizeScript(const ChaosOptions& options, uint64_t seed, Protocol protocol,
                              uint32_t f, const FaultScript& failing,
                              const MinimizeOptions& minimize_options = {});

}  // namespace achilles::chaos

#endif  // SRC_CHAOS_MINIMIZE_H_
