// Chaos runner: executes one seeded adversarial run end to end. A seed deterministically
// selects a protocol (or uses a fixed one), an f, and a sampled FaultScript; the runner
// builds a Cluster, installs the script, wires the OracleSuite to commit/lifecycle/network
// taps, implements the targeted stale-recovery-replay attack, and produces a deterministic
// per-run event log whose SHA-256 digest makes bit-identical replay checkable.
//
// Everything here is driven only by virtual time and the per-run PRNG, so
// RunChaosSeed(options, seed) is a pure function of its arguments: same seed, same log,
// same digest — the property the CI artifacts and the minimizer rely on.
#ifndef SRC_CHAOS_RUNNER_H_
#define SRC_CHAOS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/cluster.h"
#include "src/harness/fault_script.h"

namespace achilles::chaos {

// Which deliberately-broken protocol variant to run (oracle self-test; ISSUE 3). The
// harness must FLAG these — a broken run that passes the oracles is the failure.
enum class BrokenVariant {
  kNone,
  kRecoveryNonce,    // Achilles driver+checker skip the recovery-nonce freshness check.
  kCounterCompare,   // -R checker skips the sealed-version vs counter rollback compare.
  kStaleReadLease,   // KV lease grantors skip the client-response withholding, so a deposed
                     // leaseholder can serve stale reads (caught by the linearizability
                     // oracle, not by any replica-side audit). Forces --app kv.
  kStaleSnapshotAccept,  // Snapshot state transfer drops every safety check: responders
                         // serve their oldest retained snapshot and requesters force-install
                         // it, rolling a lagging rejoiner back below its own committed
                         // prefix (caught by the checkpoint oracle).
  kQuorumRestoreSkip,    // Rollbaccine backend restores from the local blob without
                         // consulting the peer replicas, so a rolled-back seal installs
                         // silently (caught by the defense version-monotonic oracle).
                         // Forces Damysus-R with --defense rollbaccine.
  kCertFloorSkip,        // Healer backend installs the local blob without checking the
                         // quorum's certified version floor — same silent stale install,
                         // certificate flavor. Forces Damysus-R with --defense healer.
};

const char* BrokenVariantName(BrokenVariant variant);
bool BrokenVariantFromName(std::string_view name, BrokenVariant* out);

struct ChaosOptions {
  // When true (default) the seed also picks the protocol (round-robin over all ten);
  // otherwise `protocol` is used for every seed.
  bool protocol_all = true;
  Protocol protocol = Protocol::kAchilles;
  BrokenVariant broken = BrokenVariant::kNone;
  // Rollback-defense backend (--defense). Quorum backends disable the -R counters, add
  // peer-quorum reboot fates to the sampler, and arm the defense version-monotonic
  // oracle. Overridden by the kQuorumRestoreSkip / kCertFloorSkip broken variants.
  persist::DefenseKind defense = persist::DefenseKind::kLocal;
  // Fault window end / post-heal liveness budget. The window must absorb the pacemaker's
  // accumulated exponential backoff after heal, so keep it generous.
  SimTime heal_at = Ms(1400);
  SimDuration liveness_window = Sec(12);
  // Cluster load knobs (small batches commit fast, which sharpens the liveness oracle).
  size_t batch_size = 20;
  double client_rate_tps = 500.0;
  // Probability a sampled script carries crash+reboot cycles (--reboot-weight). CI shards
  // raise it to weight schedules toward reboot-and-restore coverage.
  double reboot_prob = 0.65;
  // Weight for checkpoint-aware fates (--ckpt-weight): snapshot-surface attacks at reboot
  // and long-lag rejoins that exercise snapshot state transfer. CI's checkpoint shard
  // raises it together with reboot_prob.
  double ckpt_prob = 0.35;
  // Flight recorder + forensics. Journaling never perturbs virtual time, so the event-log
  // digest is bit-identical with it on or off; the journal digest is its own replay check.
  bool journal = false;
  // Run the replicated KV app (src/app) behind the protocol and judge the client-observed
  // history with the linearizability checker at the horizon. Implied by kStaleReadLease.
  bool app_kv = false;
  // Event-queue engine (--engine heap|calendar). Digests must be bit-identical across
  // engines; the equivalence suite sweeps both and compares.
  SimEngine engine = SimEngine::kCalendar;
};

struct ChaosResult {
  uint64_t seed = 0;
  Protocol protocol = Protocol::kAchilles;
  uint32_t f = 1;
  persist::DefenseKind defense = persist::DefenseKind::kLocal;  // Backend the run used.
  bool ok = true;
  std::string violation;            // First oracle violation (empty when ok).
  FaultScript script;               // The script that was executed.
  std::vector<std::string> event_log;
  std::string log_digest_hex;       // SHA-256 over the joined event log.
  Height final_height = 0;          // Max honest committed height at run end.
  // Filled when options.journal is set.
  std::string journal_text;         // Full flight-recorder dump (obs::Journal::ToText).
  std::string journal_digest_hex;   // SHA-256 over journal_text (replay fingerprint).
  std::string incident_report;      // Forensics report (only on violation).
  // Chrome trace_event JSON of the journal's control events as Perfetto instants (only on
  // violation; opens in Perfetto / chrome://tracing).
  std::string journal_trace_json;
  // Filled when the KV app ran (options.app_kv or kStaleReadLease).
  std::string history_text;         // Client-observed op history (app::KvHistory::ToText).
  std::string history_digest_hex;   // SHA-256 over history_text (replay fingerprint).

  std::string LogText() const;      // event_log joined with newlines.
  ScriptArtifact Artifact() const;  // Self-contained reproducer for this run.
};

// Derives (protocol, f, script) from `seed` and runs it. Under a broken variant the
// protocol is forced to the variant's target and the script is guaranteed to contain the
// triggering fault pattern, so every seed exercises the planted bug.
ChaosResult RunChaosSeed(const ChaosOptions& options, uint64_t seed);

// Runs an explicit script (replay of an artifact, minimization probes). `seed` feeds the
// cluster PRNG exactly as in RunChaosSeed.
ChaosResult RunChaosScript(const ChaosOptions& options, uint64_t seed, Protocol protocol,
                           uint32_t f, const FaultScript& script);

}  // namespace achilles::chaos

#endif  // SRC_CHAOS_RUNNER_H_
