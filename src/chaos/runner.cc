#include "src/chaos/runner.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <utility>

#include "src/achilles/messages.h"
#include "src/achilles/replica.h"
#include "src/app/kv.h"
#include "src/chaos/linearizability.h"
#include "src/chaos/oracles.h"
#include "src/common/bytes.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/crypto/sha256.h"
#include "src/obs/forensics.h"

namespace achilles::chaos {

namespace {

// Per-replica bookkeeping for the Achilles recovery-freshness oracle and the targeted
// stale-reply replay attack. Filled from the network delivery tap, which observes real
// traffic only — replies the runner itself injects are never recorded, so they can never
// count as "fresh".
struct RecoveryRecord {
  // Distinct request nonces broadcast by this node, with the first tapped arrival.
  std::vector<std::pair<SimTime, uint64_t>> requests;
  struct Reply {
    SimTime arrival;
    uint64_t nonce;
    uint32_t signer;
  };
  std::vector<Reply> replies;
  // Recorded reply messages (sender, message) for the replay attack; bounded.
  std::vector<std::pair<uint32_t, MessageRef>> stash;
  bool pending_replay = false;
  SimTime last_reported = -1;  // recovery_completed_at already audited.
};

// The nonce of the final request round on the wire at completion time: the latest tapped
// request whose first delivery precedes the completion instant. Returns false when no
// request had even been delivered yet — a completion without a delivered request can never
// have consumed fresh replies.
bool FinalRequestNonce(const RecoveryRecord& record, SimTime completed_at,
                       uint64_t* nonce) {
  for (auto it = record.requests.rbegin(); it != record.requests.rend(); ++it) {
    if (it->first <= completed_at) {
      *nonce = it->second;
      return true;
    }
  }
  return false;
}

// Distinct signers of replies carrying the final request nonce that were delivered (over
// the network) no later than the completion instant. The honest checker needs f+1 such
// replies; fewer means recovery finished on replayed stale state.
size_t CountFreshReplies(const RecoveryRecord& record, SimTime completed_at) {
  uint64_t final_nonce = 0;
  if (!FinalRequestNonce(record, completed_at, &final_nonce)) {
    return 0;
  }
  std::set<uint32_t> signers;
  for (const RecoveryRecord::Reply& reply : record.replies) {
    if (reply.nonce == final_nonce && reply.arrival <= completed_at) {
      signers.insert(reply.signer);
    }
  }
  return signers.size();
}

// Under a broken variant every seed must exercise the planted bug, so if the sampled
// script happens to lack the triggering fault pattern it is replaced by the canonical one
// (honest replicas, a single victim). This keeps "flagged within the first N seeds"
// a guarantee instead of a probability.
void EnsureBrokenTrigger(BrokenVariant broken, FaultScript* script) {
  const uint32_t n = static_cast<uint32_t>(script->byzantine.size());
  ACHILLES_CHECK(n >= 3);
  const uint32_t victim = 1;
  if (broken == BrokenVariant::kStaleReadLease) {
    // Canonical stale-read choreography: node 0 (BRaft's bootstrap leader, hence the KV
    // leaseholder) is isolated from its peers — but NOT from the KV client, so it keeps
    // answering lease reads off its frozen mirror. Directed link blocks (not a Partition,
    // which would also cut the client) sever 0<->peer in both directions; the peers elect a
    // new leader and keep committing. Honest grantors withhold client responses until the
    // promise expires; broken ones release immediately, so the client completes a newer
    // write while node 0 still serves the old version — a client-observed stale read.
    std::fill(script->byzantine.begin(), script->byzantine.end(), ByzantineMode::kNone);
    script->events.clear();
    for (uint32_t peer = 1; peer < n; ++peer) {
      script->events.push_back({Ms(700), FaultKind::kBlockLink, 0, peer, 0});
      script->events.push_back({Ms(700), FaultKind::kBlockLink, peer, 0, 0});
    }
    for (uint32_t peer = 1; peer < n; ++peer) {
      script->events.push_back({Ms(1300), FaultKind::kUnblockLink, 0, peer, 0});
      script->events.push_back({Ms(1300), FaultKind::kUnblockLink, peer, 0, 0});
    }
    return;
  }
  if (broken == BrokenVariant::kStaleSnapshotAccept) {
    // Canonical snapshot-rollback choreography: the victim runs long enough to certify a
    // stable checkpoint of its own (the floor the oracle audits against), then stays down
    // until just before heal. By rejoin time the cluster's stable frontier is several
    // intervals ahead, so the victim requests a snapshot instead of backfilling — and the
    // broken responder serves its *oldest* retained snapshot, which the broken requester
    // force-installs below its own committed prefix.
    std::fill(script->byzantine.begin(), script->byzantine.end(), ByzantineMode::kNone);
    script->events.clear();
    const uint64_t honest = EncodeStorageFate(StorageFate{});
    script->events.push_back({Ms(650), FaultKind::kCrash, victim, 0, 0});
    script->events.push_back({Ms(1300), FaultKind::kReboot, victim, 0, honest});
    return;
  }
  if (broken == BrokenVariant::kRecoveryNonce) {
    for (const FaultEvent& event : script->events) {
      if (event.kind == FaultKind::kStaleRecoveryReplay) {
        return;
      }
    }
    std::fill(script->byzantine.begin(), script->byzantine.end(), ByzantineMode::kNone);
    script->events.clear();
    const uint64_t honest = EncodeStorageFate(StorageFate{});
    script->events.push_back({Ms(300), FaultKind::kCrash, victim, 0, 0});
    script->events.push_back({Ms(420), FaultKind::kReboot, victim, 0, honest});
    script->events.push_back({Ms(900), FaultKind::kCrash, victim, 0, 0});
    script->events.push_back({Ms(901), FaultKind::kStaleRecoveryReplay, victim, 0, 0});
    script->events.push_back({Ms(905), FaultKind::kReboot, victim, 0, honest});
  } else if (broken == BrokenVariant::kCounterCompare ||
             broken == BrokenVariant::kQuorumRestoreSkip ||
             broken == BrokenVariant::kCertFloorSkip) {
    // All three skip the restore-time freshness verification (counter compare, peer
    // quorum, certified floor) — the same stale-seal reboot triggers each of them.
    for (const FaultEvent& event : script->events) {
      if (event.kind == FaultKind::kReboot &&
          DecodeStorageFate(event.arg).sealed == SealedFate::kStale) {
        return;
      }
    }
    std::fill(script->byzantine.begin(), script->byzantine.end(), ByzantineMode::kNone);
    script->events.clear();
    script->events.push_back({Ms(400), FaultKind::kCrash, victim, 0, 0});
    script->events.push_back(
        {Ms(520), FaultKind::kReboot, victim, 0,
         EncodeStorageFate({storage::WalFate::kIntact, SealedFate::kStale})});
  }
}

std::string FmtTime(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "T%lld ", static_cast<long long>(t));
  return buf;
}

}  // namespace

const char* BrokenVariantName(BrokenVariant variant) {
  switch (variant) {
    case BrokenVariant::kNone:
      return "none";
    case BrokenVariant::kRecoveryNonce:
      return "recovery-nonce";
    case BrokenVariant::kCounterCompare:
      return "counter-compare";
    case BrokenVariant::kStaleReadLease:
      return "stale-read-lease";
    case BrokenVariant::kStaleSnapshotAccept:
      return "stale-snapshot-accept";
    case BrokenVariant::kQuorumRestoreSkip:
      return "quorum-restore-skip";
    case BrokenVariant::kCertFloorSkip:
      return "cert-floor-skip";
  }
  return "?";
}

bool BrokenVariantFromName(std::string_view name, BrokenVariant* out) {
  for (int i = 0; i <= static_cast<int>(BrokenVariant::kCertFloorSkip); ++i) {
    const BrokenVariant variant = static_cast<BrokenVariant>(i);
    if (name == BrokenVariantName(variant)) {
      *out = variant;
      return true;
    }
  }
  return false;
}

std::string ChaosResult::LogText() const {
  std::string out;
  for (const std::string& line : event_log) {
    out += line;
    out += '\n';
  }
  return out;
}

ScriptArtifact ChaosResult::Artifact() const {
  ScriptArtifact artifact;
  artifact.protocol = ProtocolName(protocol);
  artifact.f = f;
  artifact.seed = seed;
  artifact.defense = persist::DefenseKindName(defense);
  artifact.script = script;
  return artifact;
}

ChaosResult RunChaosSeed(const ChaosOptions& options, uint64_t seed) {
  ChaosOptions effective = options;
  // The planted-backend variants pin the defense: the bug lives in the backend's restore
  // path, so the run must actually go through that backend.
  if (options.broken == BrokenVariant::kQuorumRestoreSkip) {
    effective.defense = persist::DefenseKind::kRollbaccine;
  } else if (options.broken == BrokenVariant::kCertFloorSkip) {
    effective.defense = persist::DefenseKind::kHealer;
  }
  Protocol protocol;
  if (options.broken == BrokenVariant::kRecoveryNonce) {
    protocol = Protocol::kAchilles;
  } else if (options.broken == BrokenVariant::kCounterCompare ||
             options.broken == BrokenVariant::kQuorumRestoreSkip ||
             options.broken == BrokenVariant::kCertFloorSkip) {
    protocol = Protocol::kDamysusR;
  } else if (options.broken == BrokenVariant::kStaleReadLease) {
    // BRaft's node 0 bootstraps as leader, so the canonical trigger knows the leaseholder.
    protocol = Protocol::kRaft;
  } else if (options.broken == BrokenVariant::kStaleSnapshotAccept) {
    // BRaft commits steadily from boot with no view-change noise, so the canonical lagging
    // rejoin reliably crosses the snapshot-transfer threshold.
    protocol = Protocol::kRaft;
  } else if (options.protocol_all) {
    protocol = static_cast<Protocol>(seed % kNumProtocols);
  } else {
    protocol = options.protocol;
  }

  Rng rng(seed ^ 0xc4a05c0ffee5eedULL);
  const uint32_t f = 1 + (rng.UniformU64(4) == 0 ? 1u : 0u);
  ScriptParams params;
  params.protocol = protocol;
  params.f = f;
  params.defense = effective.defense;
  params.heal_at = options.heal_at;
  params.liveness_window = options.liveness_window;
  params.reboot_prob = options.reboot_prob;
  params.ckpt_prob = options.ckpt_prob;
  FaultScript script = SampleFaultScript(params, rng);
  if (options.broken != BrokenVariant::kNone) {
    EnsureBrokenTrigger(options.broken, &script);
  }
  return RunChaosScript(effective, seed, protocol, f, script);
}

ChaosResult RunChaosScript(const ChaosOptions& options, uint64_t seed, Protocol protocol,
                           uint32_t f, const FaultScript& script) {
  ACHILLES_CHECK(script.heal_at > 0 && script.horizon > script.heal_at);

  ChaosResult result;
  result.seed = seed;
  result.protocol = protocol;
  result.f = f;
  result.defense = options.defense;
  result.script = script;

  ClusterConfig config;
  config.protocol = protocol;
  config.f = f;
  config.defense = options.defense;
  config.batch_size = options.batch_size;
  config.payload_size = 16;
  config.net = NetworkConfig::Lan();
  config.base_timeout = Ms(100);
  config.seed = seed;
  config.client_rate_tps = options.client_rate_tps;
  config.break_recovery_nonce = options.broken == BrokenVariant::kRecoveryNonce;
  // All three variants disable restore-time freshness verification — the counter compare
  // under the local backend, the peer-quorum consult / certified-floor check under the
  // quorum ones (Backend::Open's `verify` parameter).
  config.break_counter_compare = options.broken == BrokenVariant::kCounterCompare ||
                                 options.broken == BrokenVariant::kQuorumRestoreSkip ||
                                 options.broken == BrokenVariant::kCertFloorSkip;
  config.journaling = options.journal;
  config.engine = options.engine;
  const bool app_kv = options.app_kv || options.broken == BrokenVariant::kStaleReadLease;
  config.app_kv = app_kv;
  config.kv.break_stale_read_lease = options.broken == BrokenVariant::kStaleReadLease;
  // Checkpointing is always on under chaos: every run then audits the certified-prefix +
  // truncation + state-transfer machinery, and post-truncation reboots must still satisfy
  // the durability and (in KV runs) linearizability oracles. The short interval keeps
  // several boundaries inside even the briefest schedules.
  config.ckpt.enabled = true;
  config.ckpt.interval = 8;
  if (options.broken == BrokenVariant::kStaleSnapshotAccept) {
    config.ckpt.break_stale_snapshot_accept = true;
    config.ckpt.retain = 0;  // Unbounded retention: the oldest snapshot stays servable.
  }
  Cluster cluster(config);
  const uint32_t n = cluster.num_replicas();
  ACHILLES_CHECK(script.byzantine.size() == n);
  Simulation& sim = cluster.sim();

  const bool quorum_defended = options.defense != persist::DefenseKind::kLocal &&
                               ProtocolUsesDefenseBackend(protocol);
  OracleConfig oracle_config;
  oracle_config.n = n;
  oracle_config.f = f;
  // Under a quorum defense the -R counters are off (the backend replaces them), so the
  // counter-lockstep invariant is vacuous; the version-monotonic oracle audits the
  // backend-assigned versions instead.
  oracle_config.counter_lockstep =
      (protocol == Protocol::kDamysusR || protocol == Protocol::kOneShotR) &&
      !quorum_defended;
  oracle_config.version_monotonic = quorum_defended;
  OracleSuite oracles(oracle_config);

  auto log = [&result](SimTime t, const std::string& line) {
    result.event_log.push_back(FmtTime(t) + line);
  };

  for (uint32_t i = 0; i < n; ++i) {
    if (script.byzantine[i] != ByzantineMode::kNone) {
      oracles.MarkByzantine(i);
      log(0, "byz node=" + std::to_string(i) +
                 " mode=" + ByzantineModeName(script.byzantine[i]));
    }
  }

  // --- Oracle feeds ---
  // Add (not Set): when the KV app is on, the Cluster constructor already registered the
  // KvService's execution listener and it must keep firing.
  cluster.tracker().AddCommitListener(
      [&](NodeId id, const BlockPtr& block, SimTime now) {
        log(now, "commit node=" + std::to_string(id) +
                     " h=" + std::to_string(block->height) +
                     " hash=" + ToHex(ByteView(block->hash.data(), 4)));
        oracles.OnCommit(id, block->height, block->hash, now);
      });

  // Checkpoint taps: stable certificates and state-transfer adoptions feed the checkpoint
  // oracle (and the event log, so replays cover them in the digest).
  checkpoint::CheckpointManager* ckpt = cluster.checkpoint_manager();
  if (ckpt != nullptr) {
    ckpt->SetStableListener(
        [&](NodeId id, const checkpoint::CheckpointCert& cert, SimTime now) {
          log(now, "ckpt-stable node=" + std::to_string(id) +
                       " h=" + std::to_string(cert.height) +
                       " hash=" + ToHex(ByteView(cert.block_hash.data(), 4)));
          oracles.OnStableCheckpoint(id, cert.height, cert.block_hash, now);
        });
    ckpt->SetAdoptListener(
        [&](NodeId id, const checkpoint::CheckpointCert& cert, SimTime now) {
          log(now, "ckpt-adopt node=" + std::to_string(id) +
                       " h=" + std::to_string(cert.height) +
                       " hash=" + ToHex(ByteView(cert.block_hash.data(), 4)));
          oracles.OnCheckpointAdopted(id, cert.height, cert.block_hash, now);
        });
  }
  // Where the checkpoint certificate itself can be rolled back — sealed-surface fates on
  // TEE platforms, snapshot-record fates where the cert is host-resident — a lower floor
  // is the modeled outcome of the attack, so the oracle's floor memory must reset.
  const bool cert_in_tee = protocol != Protocol::kAchillesC &&
                           protocol != Protocol::kRaft && protocol != Protocol::kHotStuff;

  std::vector<RecoveryRecord> recovery(n);
  const bool uses_recovery = ProtocolUsesRecovery(protocol);
  if (uses_recovery) {
    cluster.net().SetDeliveryTap(
        [&](uint32_t from, uint32_t to, const MessageRef& msg, SimTime arrival) {
          if (from < n) {
            if (auto req = std::dynamic_pointer_cast<const AchRecoveryRequestMsg>(msg)) {
              RecoveryRecord& record = recovery[from];
              if (record.requests.empty() ||
                  record.requests.back().second != req->request.aux) {
                record.requests.emplace_back(arrival, req->request.aux);
              } else if (arrival < record.requests.back().first) {
                // Same nonce round, another broadcast copy: the round starts at the
                // EARLIEST delivery. Jitter reorder can make the first-tapped copy the
                // last to arrive, which would misdate the round past its own replies.
                record.requests.back().first = arrival;
              }
              return;
            }
          }
          if (to < n) {
            if (auto reply = std::dynamic_pointer_cast<const AchRecoveryReplyMsg>(msg)) {
              RecoveryRecord& record = recovery[to];
              record.replies.push_back(
                  {arrival, reply->reply.aux2, reply->reply.sig.signer});
              if (record.stash.size() < 64) {
                record.stash.emplace_back(from, msg);
              }
            }
          }
        });
  }

  // Lifecycle tap: logs boot/crash transitions and fires the pending stale-reply
  // injection right after a victim's reboot — scheduled a hair after BindProcess so the
  // new incarnation's OnStart (which arms the fresh recovery nonce) runs first, yet far
  // ahead of any genuine network reply (>= one RTT away).
  for (uint32_t i = 0; i < n; ++i) {
    cluster.net().host(i).SetLifecycleListener(
        [&](uint32_t id, const char* event) {
          log(sim.Now(), std::string(event) + " node=" + std::to_string(id));
          if (std::string_view(event) == "boot" && recovery[id].pending_replay) {
            recovery[id].pending_replay = false;
            sim.ScheduleAt(sim.Now() + Us(10), [&, id] {
              Host& host = cluster.net().host(id);
              if (!host.IsUp()) {
                return;
              }
              for (const auto& [from, msg] : recovery[id].stash) {
                host.DeliverAt(sim.Now(), from, msg);
              }
              log(sim.Now(), "stale-replay-injected node=" + std::to_string(id) +
                                 " count=" + std::to_string(recovery[id].stash.size()));
            });
          }
        });
  }

  cluster.InstallFaultScript(script, [&](const FaultEvent& event) {
    log(event.at, std::string("fault ") + FaultKindName(event.kind) +
                      " node=" + std::to_string(event.node) +
                      " peer=" + std::to_string(event.peer) +
                      " arg=" + std::to_string(event.arg));
    if (event.kind == FaultKind::kStaleRecoveryReplay && event.node < n) {
      recovery[event.node].pending_replay = true;
    }
    if (event.kind == FaultKind::kReboot && event.node < n) {
      const StorageFate fate = DecodeStorageFate(event.arg);
      // Under a quorum defense the certificate store is the backend view, so both the
      // sealed surface and the peer quorum can depress the restored floor.
      const bool cert_attacked =
          quorum_defended
              ? fate.sealed != SealedFate::kFresh ||
                    fate.defense != persist::DefenseFate::kIntact
              : (cert_in_tee ? fate.sealed != SealedFate::kFresh
                             : fate.snapshot != checkpoint::SnapshotFate::kIntact);
      oracles.OnReplicaReboot(event.node, cert_attacked);
    }
  });

  cluster.Start();

  // --- Run with periodic invariant polling ---
  auto poll = [&](SimTime t) {
    for (uint32_t i = 0; i < n; ++i) {
      ReplicaBase* replica = cluster.replica(i);
      if (replica == nullptr) {
        continue;
      }
      oracles.OnSnapshot(i, replica->Invariants(), t);
      if (uses_recovery) {
        if (auto* ach = dynamic_cast<AchillesReplica*>(replica)) {
          const SimTime done = ach->recovery_completed_at();
          if (done >= 0 && done != recovery[i].last_reported) {
            recovery[i].last_reported = done;
            const size_t fresh = CountFreshReplies(recovery[i], done);
            uint64_t expected_nonce = 0;
            const bool nonce_fresh =
                FinalRequestNonce(recovery[i], done, &expected_nonce) &&
                ach->recovery_completed_nonce() == expected_nonce;
            log(t, "recovery-complete node=" + std::to_string(i) +
                       " at=" + std::to_string(done) +
                       " fresh=" + std::to_string(fresh) +
                       " nonce_fresh=" + (nonce_fresh ? "1" : "0"));
            oracles.OnRecoveryComplete(i, fresh, nonce_fresh, t);
          }
        }
      }
    }
  };

  constexpr SimDuration kPollStep = Ms(25);
  bool healed = false;
  SimTime t = 0;
  while (t < script.horizon && oracles.ok()) {
    t = std::min<SimTime>(t + kPollStep, script.horizon);
    sim.RunUntil(t);
    if (!healed && t >= script.heal_at) {
      healed = true;
      oracles.OnHeal(t);
      log(t, "heal maxh=" + std::to_string(oracles.max_honest_height()));
    }
    poll(t);
  }
  // Judge the client-observed history before OnRunEnd: linearizability is an end-of-run
  // verdict, and OnRunEnd's liveness check only runs while the suite is still clean.
  if (app_kv) {
    const app::KvHistory history = cluster.kv_client()->HistorySnapshot();
    const LinearizabilityVerdict verdict = CheckKvHistory(history.ops);
    log(sim.Now(), "kv-check ops=" + std::to_string(verdict.checked_ops) +
                       " keys=" + std::to_string(verdict.checked_keys) +
                       " memo=" + std::to_string(verdict.memo_states) +
                       " ok=" + (verdict.ok ? "1" : "0"));
    oracles.OnHistoryVerdict(verdict.ok, verdict.violation, verdict.server, sim.Now());
    result.history_text = history.ToText();
    result.history_digest_hex = history.DigestHex();
    log(sim.Now(), "kv-history ops=" + std::to_string(history.ops.size()) +
                       " digest=" + result.history_digest_hex.substr(0, 16));
  }
  if (oracles.ok() && healed) {
    oracles.OnRunEnd(script.horizon);
  }
  log(sim.Now(), "end maxh=" + std::to_string(oracles.max_honest_height()));

  result.ok = oracles.ok();
  result.violation = oracles.violation();
  result.final_height = oracles.max_honest_height();
  if (!result.ok) {
    result.event_log.push_back("VIOLATION " + result.violation);
  }
  if (options.journal) {
    obs::Journal& journal = cluster.journal();
    if (!result.ok) {
      const Incident& incident = oracles.incident();
      // Stamp the verdict into the journal so the dump itself records why the run failed,
      // then run the forensics analyzer over it.
      journal.Record(incident.node == kNoNode ? 0 : incident.node,
                     obs::JournalKind::kOracleViolation, incident.at, /*parent=*/0,
                     incident.height, 0, result.violation);
      obs::IncidentQuery query;
      query.oracle = incident.oracle;
      query.description = result.violation;
      query.node = incident.node == kNoNode ? UINT32_MAX : incident.node;
      query.height = incident.height;
      query.at = incident.at;
      query.protocol = ProtocolName(protocol);
      query.seed = seed;
      query.exclude.assign(oracles.byzantine().begin(), oracles.byzantine().end());
      result.incident_report = obs::AnalyzeIncident(journal, query).text;
      // Perfetto view of the incident: the journal's control events as instants.
      obs::SpanTracer annotated;
      annotated.set_enabled(true);
      journal.AnnotateTracer(&annotated);
      result.journal_trace_json = annotated.ExportChromeTrace();
    }
    result.journal_text = journal.ToText();
    result.journal_digest_hex = journal.DigestHex();
  }
  const std::string joined = result.LogText();
  const Hash256 digest =
      Sha256Digest(ByteView(reinterpret_cast<const uint8_t*>(joined.data()), joined.size()));
  result.log_digest_hex = ToHex(ByteView(digest.data(), digest.size()));
  return result;
}

}  // namespace achilles::chaos
