// Wing–Gong linearizability checker for client-observed KV histories (src/app/kv.h).
//
// The question: does a witness linearization exist — a total order of the observed
// operations that (a) respects real-time precedence (op A before op B whenever A's response
// precedes B's invocation in virtual time) and (b) is a legal sequential execution of the
// versioned KV (each write creates version cur+1; each read returns exactly the current
// cell)? Replica-side oracles cannot answer this: they check agreement on the log, not what
// clients were told.
//
// Tractability at chaos scale:
//  - Partition by key. KV keys are independent registers, so a history linearizes iff each
//    per-key subhistory does (Wing & Gong's locality; Herlihy–Wing compositionality). This
//    turns one exponential search over N ops into key_space searches over ~N/key_space ops.
//  - Memoized search states. The search state after linearizing a set S of ops is fully
//    described by (S, index of the write that created the current version): versions are
//    sequential, so the current version is just the number of writes in S, and only the
//    identity of the *last* writer matters for read applicability. Distinct interleavings
//    reaching the same (done-set, last-writer) pair are merged, which collapses the
//    factorial explosion of equivalent orders of concurrent reads.
//  - Version pinning. Completed writes carry the version the log assigned them, so each is
//    applicable at exactly one point of the search — the branching that remains comes only
//    from genuinely concurrent (pending or unordered) operations, bounded by the closed-loop
//    session count.
//
// Worst-case the search is still exponential (linearizability checking is NP-complete);
// with the bounds above a chaos-scale history (thousands of ops, tens of sessions) checks
// in well under a simulated run's wall time.
//
// Pending operations (response == -1 at the horizon): pending reads impose no constraint
// and are dropped; pending writes MAY have taken effect, so the search may insert them at
// any version slot or never.
//
// Before the full search, three targeted scans produce crisp diagnoses for the failure
// modes the oracle self-tests plant (each is a definite non-linearizability proof):
//  - stale read: a completed read returned version v although a write creating v' > v was
//    completed (acknowledged to its client) before the read was invoked;
//  - lost update: two completed writes to one key claim the same version;
//  - non-monotonic session: one session's completed ops on a key observe decreasing
//    versions (sessions are sequential, so program order is real-time order).
#ifndef SRC_CHAOS_LINEARIZABILITY_H_
#define SRC_CHAOS_LINEARIZABILITY_H_

#include <string>
#include <vector>

#include "src/app/kv.h"

namespace achilles {
namespace chaos {

struct LinearizabilityVerdict {
  bool ok = true;
  std::string violation;   // Human-readable; names key, versions, and op ids.
  uint32_t key = 0;        // Key of the first violating subhistory.
  NodeId server = kNoNode; // Replica that served the offending read, when attributable.
  uint64_t checked_keys = 0;
  uint64_t checked_ops = 0;     // Completed + pending-write ops fed to the search.
  uint64_t memo_states = 0;     // Search states visited across all keys (effort gauge).
};

// Checks the full history (all keys). Deterministic: keys are checked in ascending order
// and the first violation wins.
LinearizabilityVerdict CheckKvHistory(const std::vector<app::KvOpRecord>& ops);

}  // namespace chaos
}  // namespace achilles

#endif  // SRC_CHAOS_LINEARIZABILITY_H_
