#include "src/chaos/linearizability.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <unordered_set>

namespace achilles {
namespace chaos {

namespace {

using app::KvOpKind;
using app::KvOpRecord;

std::string Describe(const KvOpRecord& op) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "op %016llx (session %u)",
                static_cast<unsigned long long>(op.op_id), op.client);
  return std::string(buf);
}

// Effective response time for precedence: pending ops never precede anything.
SimTime EffResponse(const KvOpRecord& op) {
  return op.complete() ? op.response : std::numeric_limits<SimTime>::max();
}

// Targeted scans for definite violations with crisp diagnoses. `ops` is one key's
// subhistory. Returns a non-empty message on violation and sets `server` when the offense
// is a specific replica's serve.
std::string FastScans(uint32_t key, const std::vector<const KvOpRecord*>& ops,
                      NodeId* server) {
  char buf[320];
  // Lost update: two completed writes claiming one version slot.
  std::map<uint64_t, const KvOpRecord*> writer_of_version;
  for (const KvOpRecord* op : ops) {
    if (op->kind != KvOpKind::kPut || !op->complete()) {
      continue;
    }
    auto [it, inserted] = writer_of_version.emplace(op->version, op);
    if (!inserted) {
      std::snprintf(buf, sizeof(buf),
                    "lost update on key %u: %s and %s both created version %llu", key,
                    Describe(*it->second).c_str(), Describe(*op).c_str(),
                    static_cast<unsigned long long>(op->version));
      return std::string(buf);
    }
  }
  // Stale read: a completed read returned version v although a newer write was completed
  // before the read began.
  for (const KvOpRecord* r : ops) {
    if (r->kind != KvOpKind::kGet || !r->complete()) {
      continue;
    }
    for (const KvOpRecord* w : ops) {
      if (w->kind != KvOpKind::kPut || !w->complete() || w->version <= r->version) {
        continue;
      }
      if (w->response < r->invoke) {
        std::snprintf(
            buf, sizeof(buf),
            "stale read on key %u: %s returned version %llu but version %llu was already "
            "committed (%s completed before the read began)%s served by replica %d",
            key, Describe(*r).c_str(), static_cast<unsigned long long>(r->version),
            static_cast<unsigned long long>(w->version), Describe(*w).c_str(),
            r->lease_read ? "; lease read" : ";",
            r->server == kNoNode ? -1 : static_cast<int>(r->server));
        *server = r->server;
        return std::string(buf);
      }
    }
  }
  // Non-monotonic session: a session's completed ops on this key are sequential in real
  // time, so their observed versions must never decrease.
  std::map<uint32_t, const KvOpRecord*> last_by_session;
  std::vector<const KvOpRecord*> by_invoke(ops);
  std::sort(by_invoke.begin(), by_invoke.end(),
            [](const KvOpRecord* a, const KvOpRecord* b) {
              return a->invoke != b->invoke ? a->invoke < b->invoke : a->op_id < b->op_id;
            });
  for (const KvOpRecord* op : by_invoke) {
    if (!op->complete()) {
      continue;
    }
    auto [it, inserted] = last_by_session.emplace(op->client, op);
    if (!inserted) {
      if (op->version < it->second->version) {
        std::snprintf(buf, sizeof(buf),
                      "non-monotonic reads on key %u: session %u observed version %llu "
                      "(%s) after version %llu (%s)",
                      key, op->client, static_cast<unsigned long long>(op->version),
                      Describe(*op).c_str(),
                      static_cast<unsigned long long>(it->second->version),
                      Describe(*it->second).c_str());
        *server = op->server;
        return std::string(buf);
      }
      it->second = op;
    }
  }
  return {};
}

// One key's Wing–Gong search. Ops: completed reads/writes + pending writes (pending reads
// already dropped). Returns true iff a witness linearization exists.
class KeySearch {
 public:
  explicit KeySearch(std::vector<const KvOpRecord*> ops) : ops_(std::move(ops)) {
    words_ = (ops_.size() + 63) / 64;
    done_.assign(words_, 0);
    completed_remaining_ = 0;
    for (const KvOpRecord* op : ops_) {
      if (op->complete()) {
        ++completed_remaining_;
      }
    }
  }

  bool Run() { return Explore(/*last_writer=*/-1, /*version=*/0, /*value=*/0); }
  uint64_t memo_states() const { return memo_.size(); }

 private:
  bool IsDone(size_t i) const { return (done_[i / 64] >> (i % 64)) & 1; }
  void SetDone(size_t i) { done_[i / 64] |= uint64_t{1} << (i % 64); }
  void ClearDone(size_t i) { done_[i / 64] &= ~(uint64_t{1} << (i % 64)); }

  uint64_t StateHash(int last_writer) const {
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint64_t w : done_) {
      h = (h ^ w) * 0x100000001b3ull;
      h ^= h >> 29;
    }
    h = (h ^ static_cast<uint64_t>(last_writer + 1)) * 0x100000001b3ull;
    return h;
  }

  bool Explore(int last_writer, uint64_t version, uint64_t value) {
    if (completed_remaining_ == 0) {
      return true;  // Every completed op linearized; pending writes may stay unapplied.
    }
    // Memoize on (done-set, last-writer): the pair determines (version, value), so any
    // revisit explores an identical subtree. A 64-bit FNV key risks collisions only with
    // astronomically many states; the search is bounded long before that.
    if (!memo_.insert(StateHash(last_writer)).second) {
      return false;
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (IsDone(i)) {
        continue;
      }
      const KvOpRecord& p = *ops_[i];
      // Real-time precedence: p can go next only if no other undone op finished before p
      // was invoked.
      bool minimal = true;
      for (size_t j = 0; j < ops_.size() && minimal; ++j) {
        if (j != i && !IsDone(j) && EffResponse(*ops_[j]) < p.invoke) {
          minimal = false;
        }
      }
      if (!minimal) {
        continue;
      }
      // Sequential KV applicability at state (version, value).
      if (p.kind == KvOpKind::kGet) {
        if (!p.complete() || p.version != version || p.value != value) {
          continue;  // (Pending reads were dropped before the search.)
        }
        SetDone(i);
        --completed_remaining_;
        if (Explore(last_writer, version, value)) {
          return true;
        }
        ++completed_remaining_;
        ClearDone(i);
      } else {
        // A completed write is pinned to its recorded version slot; a pending write can
        // claim the next slot anywhere (or never run).
        if (p.complete() && p.version != version + 1) {
          continue;
        }
        SetDone(i);
        if (p.complete()) {
          --completed_remaining_;
        }
        if (Explore(static_cast<int>(i), version + 1, p.value)) {
          return true;
        }
        if (p.complete()) {
          ++completed_remaining_;
        }
        ClearDone(i);
      }
    }
    return false;
  }

  std::vector<const KvOpRecord*> ops_;
  size_t words_ = 0;
  std::vector<uint64_t> done_;
  size_t completed_remaining_ = 0;
  std::unordered_set<uint64_t> memo_;
};

}  // namespace

LinearizabilityVerdict CheckKvHistory(const std::vector<KvOpRecord>& ops) {
  LinearizabilityVerdict verdict;
  std::map<uint32_t, std::vector<const KvOpRecord*>> by_key;
  for (const KvOpRecord& op : ops) {
    if (op.kind == KvOpKind::kGet && !op.complete()) {
      continue;  // Pending reads constrain nothing.
    }
    by_key[op.key].push_back(&op);
  }
  for (auto& [key, key_ops] : by_key) {
    ++verdict.checked_keys;
    verdict.checked_ops += key_ops.size();
    NodeId server = kNoNode;
    std::string fast = FastScans(key, key_ops, &server);
    if (!fast.empty()) {
      verdict.ok = false;
      verdict.violation = std::move(fast);
      verdict.key = key;
      verdict.server = server;
      return verdict;
    }
    KeySearch search(key_ops);
    const bool linearizable = search.Run();
    verdict.memo_states += search.memo_states();
    if (!linearizable) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "no witness linearization exists for key %u (%zu constrained ops)", key,
                    key_ops.size());
      verdict.ok = false;
      verdict.violation = buf;
      verdict.key = key;
      return verdict;
    }
  }
  return verdict;
}

}  // namespace chaos
}  // namespace achilles
