// Global correctness oracles for the chaos harness. One OracleSuite audits a single chaos
// run from outside the simulated machines (zero virtual cost): the runner feeds it every
// honest-relevant observation (commits, periodic invariant snapshots, Achilles recovery
// completions) and asks for a verdict at the end. The first violation wins and is kept
// verbatim; everything after it is ignored so event logs stay deterministic and minimal.
//
// Oracles (ISSUE 3):
//   agreement    — no two honest replicas commit different blocks at the same height. The
//                  height->hash map is write-once and never cleared, so it doubles as the
//                  certified-prefix durability audit: a rebooted replica whose recovered
//                  prefix diverges from what anyone committed pre-crash trips it.
//   durability   — an honest replica's snapshot head (committed_height, committed_hash)
//                  must match the audit map at that height.
//   counter      — per-replica persistent counter values never regress, and for the
//                  lockstep (-R) protocols a non-halted replica's trusted checker version
//                  always equals its counter (PersistState bumps both in the same handler,
//                  so any divergence means stale sealed state was accepted).
//   freshness    — an Achilles recovery must complete on >= f+1 replies of its *final*
//                  nonce round (replayed stale replies are not fresh; see runner.cc).
//   liveness     — the max honest committed height strictly advances between heal_at and
//                  the horizon (bounded-time progress after all faults lift).
//   checkpoint   — stable checkpoints certify exactly what the cluster committed at their
//                  boundary, and snapshot state transfer never moves an honest replica
//                  backwards: an adopted snapshot must lie above the replica's committed
//                  prefix and at or above its certified floor. The floor is tracked from
//                  stable/adopt events the runner taps (the replica's own floor member is
//                  already bumped when the tap fires) and is forgotten on reboots whose
//                  certificate surface was attacked — there a lower restored floor is the
//                  modeled (and, without a TEE seal, undetectable) outcome, not a bug.
//   linearizability — when the KV app is enabled (--app kv), the client-observed history
//                  must admit a witness linearization (src/chaos/linearizability.h). This
//                  is the only oracle judged at the application boundary: it catches stale
//                  reads served to clients that every replica-side audit is blind to.
#ifndef SRC_CHAOS_ORACLES_H_
#define SRC_CHAOS_ORACLES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/consensus/replica_base.h"

namespace achilles::chaos {

struct OracleConfig {
  uint32_t n = 3;
  uint32_t f = 1;
  // True for Damysus-R / OneShot-R: the checker persists state under a counter increment in
  // the same handler, so trusted_version == counter_value whenever the replica is not
  // halted. Plain/broken variants skip the rollback compare and violate this after a stale
  // restore — which is exactly what the oracle is for.
  bool counter_lockstep = false;
  // True when a quorum rollback-defense backend is active for this run's protocol
  // (--defense rollbaccine/healer): every defended replica's trusted version is
  // backend-assigned and must never regress across reboots. A broken backend (the
  // quorum-restore-skip / cert-floor-skip variants) accepts a rolled-back blob, whose
  // lower version then shows up in the next snapshot.
  bool version_monotonic = false;
};

// Structured form of the run's first violation, kept alongside the verbatim text so the
// forensics analyzer (src/obs/forensics.h) can seed its journal walk without re-parsing.
struct Incident {
  std::string oracle;       // Family: "agreement", "durability", "counter", "freshness",
                            // "liveness", "linearizability", "checkpoint", "defense".
  NodeId node = kNoNode;    // Replica the violation was observed on (kNoNode = global).
  Height height = 0;        // Block height involved (0 = n/a).
  SimTime at = 0;           // Virtual time of the observation.
};

class OracleSuite {
 public:
  explicit OracleSuite(const OracleConfig& config);

  // Excludes a replica from all audits (its behaviour is adversary-controlled).
  void MarkByzantine(NodeId id);

  // --- Feeds (each may record the run's first violation) ---
  void OnCommit(NodeId id, Height height, const Hash256& hash, SimTime now);
  void OnSnapshot(NodeId id, const InvariantSnapshot& snap, SimTime now);
  // `fresh_replies` = distinct-signer replies of the final request round delivered over
  // the network before completion; `nonce_fresh` = the replies the driver consumed carried
  // the final round's nonce (false means a replayed stale round was accepted).
  void OnRecoveryComplete(NodeId id, size_t fresh_replies, bool nonce_fresh, SimTime now);
  // Linearizability verdict over the recorded client history; the runner computes it once
  // at the horizon (before OnRunEnd) when the KV app is enabled.
  void OnHistoryVerdict(bool ok, const std::string& violation, NodeId server, SimTime now);
  // Checkpoint feeds (wired to CheckpointManager's stable/adopt listeners). Stable events
  // audit the certified hash against the agreement map and raise the replica's floor;
  // adopt events are the rollback check: an honest replica never installs a snapshot at or
  // below its committed prefix, nor below its certified floor.
  void OnStableCheckpoint(NodeId id, Height height, const Hash256& block_hash, SimTime now);
  void OnCheckpointAdopted(NodeId id, Height height, const Hash256& block_hash, SimTime now);
  // `id` rebooted. Its committed-prefix watermark resets — commit indices are not durable,
  // so a fresh incarnation legitimately re-commits from further back. The certified floor
  // survives (it is sealed) unless this reboot attacked the certificate surface
  // (stale/erased sealed blobs, or a snapshot-record fate where the cert is host-resident).
  void OnReplicaReboot(NodeId id, bool cert_surface_attacked);
  // Called once when the heal point is reached, then once at the horizon.
  void OnHeal(SimTime now);
  void OnRunEnd(SimTime now);

  bool ok() const { return violation_.empty(); }
  const std::string& violation() const { return violation_; }
  // Structured view of the first violation (fields zeroed while ok()).
  const Incident& incident() const { return incident_; }
  // Replicas excluded from the audits (adversary-controlled).
  const std::set<NodeId>& byzantine() const { return byzantine_; }
  // Highest height committed by any honest replica so far (from the audit map).
  Height max_honest_height() const;

 private:
  bool Honest(NodeId id) const { return byzantine_.count(id) == 0; }
  void Fail(SimTime now, const std::string& what, const std::string& oracle,
            NodeId node = kNoNode, Height height = 0);

  OracleConfig config_;
  std::set<NodeId> byzantine_;
  std::map<Height, Hash256> committed_;  // Write-once agreement + durability audit.
  std::vector<uint64_t> last_counter_;   // Per-replica high-water counter mark.
  std::vector<uint64_t> last_version_;   // Per-replica high-water trusted-version mark.
  std::vector<Height> ckpt_floor_;       // Per-replica certified checkpoint floor.
  std::vector<Height> committed_high_;   // Per-replica committed watermark, per incarnation.
  bool healed_ = false;
  Height height_at_heal_ = 0;
  std::string violation_;
  Incident incident_;
};

}  // namespace achilles::chaos

#endif  // SRC_CHAOS_ORACLES_H_
