#include "src/minbft/replica.h"

#include <algorithm>
#include <utility>

#include "src/common/serde.h"

namespace achilles {

namespace {
constexpr const char* kMetaKey = "minbft-meta";
constexpr const char* kLogWal = "minbft-log";
}  // namespace

MinBftReplica::MinBftReplica(const ReplicaContext& ctx, bool initial_launch)
    : ReplicaBase(ctx),
      initial_launch_(initial_launch),
      usig_(&enclave()),
      verifier_(ctx.params.n) {
  last_proposed_ = Block::Genesis();
  if (!initial_launch_) {
    // Stable checkpoint first: it sets the committed floor the log replay filters
    // against, and seeds the proposal chain when the whole log was compacted away.
    if (const BlockPtr snapshot = RestoreStableCheckpoint()) {
      last_proposed_ = snapshot;
    }
    RestoreDurableState();
  }
}

void MinBftReplica::RestoreDurableState() {
  Hash256 voted_hash = ZeroHash();
  if (const std::optional<Bytes> meta = HostRecords().Get(kMetaKey)) {
    ByteReader r(ByteView(meta->data(), meta->size()));
    const auto epoch = r.U64();
    const auto voted_epoch = r.U64();
    const auto hash = r.Raw(32);
    const auto usig_counter = r.U64();
    if (epoch && voted_epoch && hash && usig_counter && r.remaining() == 0) {
      epoch_ = *epoch;
      voted_epoch_ = *voted_epoch;
      std::copy(hash->begin(), hash->end(), voted_hash.begin());
      usig_.ResumeFrom(*usig_counter);
    }
  }
  // The counter device outlives the crash and is authoritative when enabled: reading it
  // back (and paying the read latency) is MinBFT's reboot path. The persisted mirror above
  // covers counter-less configurations.
  MonotonicCounter& counter = platform().counter();
  if (counter.spec().enabled()) {
    usig_.ResumeFrom(counter.ReadBlocking());
  }
  // Replay the message log so the vote we certified last incarnation is still ours.
  BlockPtr tip;
  for (const Bytes& record : Wal(kLogWal).records()) {
    const BlockPtr block = DecodeBlockRecord(ByteView(record.data(), record.size()));
    if (block == nullptr) {
      continue;  // Torn/unfinished record: everything after it is gone anyway.
    }
    logged_.insert(block->hash);  // Still durable: re-deliveries must not re-append.
    if (block->height <= last_committed_height_) {
      continue;  // Subsumed by the restored checkpoint; its vote is committed history.
    }
    store_.Add(block);
    if (block->hash == voted_hash) {
      voted_block_ = block;
    }
    if (tip == nullptr || block->height >= tip->height) {
      tip = block;  // >=: the later append wins ties across epoch changes.
    }
  }
  // The log tip, not the restored vote, seeds the proposal chain. A leader that crashed
  // after logging and broadcasting a proposal but before its own loopback PREPARE landed
  // has the proposal in the WAL while the persisted vote still names its parent;
  // re-proposing from the vote would mint a second block at an already-broadcast height.
  if (tip != nullptr) {
    last_proposed_ = tip;
  }
}

void MinBftReplica::PersistMeta() {
  ByteWriter w;
  w.U64(epoch_);
  w.U64(voted_epoch_);
  const Hash256 voted_hash = voted_block_ != nullptr ? voted_block_->hash : ZeroHash();
  w.Raw(ByteView(voted_hash.data(), voted_hash.size()));
  w.U64(usig_.counter());
  HostRecords().Put(kMetaKey, ByteView(w.bytes().data(), w.bytes().size()));
}

void MinBftReplica::AppendToLog(const BlockPtr& block) {
  if (!logged_.insert(block->hash).second) {
    return;  // Already durable (re-proposal across epochs); no second append.
  }
  const Bytes record = EncodeBlockRecord(*block);
  // Async: every call site follows with PersistMeta(), whose sync makes the appended
  // record durable in the same barrier (one disk, one fsync).
  Wal(kLogWal).Append(ByteView(record.data(), record.size()), storage::SyncMode::kAsync);
}

void MinBftReplica::OnStart() {
  JournalEvent(obs::JournalKind::kViewEnter, epoch_);
  ArmViewTimer(epoch_, 0);
  if (LeaderOfEpoch(epoch_) == id()) {
    host().SetTimer(Ms(1), [this] { TryPropose(); });
  }
}

void MinBftReplica::HandleMessage(NodeId from, const MessageRef& msg) {
  if (auto prepare = std::dynamic_pointer_cast<const MinPrepareMsg>(msg)) {
    OnPrepare(from, prepare);
  } else if (auto commit = std::dynamic_pointer_cast<const MinCommitMsg>(msg)) {
    OnCommit(from, *commit);
  } else if (auto ec = std::dynamic_pointer_cast<const MinEpochChangeMsg>(msg)) {
    OnEpochChange(from, *ec);
  }
}

void MinBftReplica::TryPropose() {
  if (LeaderOfEpoch(epoch_) != id()) {
    return;
  }
  if (proposal_outstanding_) {
    host().SetTimer(Ms(1), [this] { TryPropose(); });
    return;
  }
  std::vector<Transaction> batch = mempool_.TakeBatch(params().batch_size);
  ChargeExecute(batch.size());
  const BlockPtr block =
      Block::Create(/*view=*/epoch_, last_proposed_, std::move(batch), LocalNow());
  ChargeHashBytes(block->WireSize());
  ProposeBlock(block);
}

void MinBftReplica::ProposeBlock(const BlockPtr& block) {
  proposal_outstanding_ = true;
  last_proposed_ = block;
  store_.Add(block);
  MarkProposed(block);
  auto msg = std::make_shared<MinPrepareMsg>();
  msg->block = block;
  msg->epoch = epoch_;
  msg->ui = usig_.CreateUi(block->hash);  // Counter write #1 on the critical path.
  AppendToLog(block);
  PersistMeta();  // Message log + counter mirror hit disk before the PREPARE leaves.
  BroadcastToReplicas(msg, /*include_self=*/true);
}

void MinBftReplica::OnPrepare(NodeId from, const std::shared_ptr<const MinPrepareMsg>& msg) {
  if (msg->block == nullptr || msg->epoch != epoch_ || from != LeaderOfEpoch(epoch_)) {
    return;
  }
  if (!usig_.VerifyUi(msg->ui, msg->block->hash)) {
    return;
  }
  // Monotonic acceptance of the leader's UI stream prevents PREPARE equivocation.
  if (!verifier_.AcceptMonotonic(from, msg->ui)) {
    return;
  }
  if (!AcceptBlock(msg->block) || !EnsureAncestry(msg->block->hash, from)) {
    return;
  }
  Candidate& cand = candidates_[msg->block->hash];
  cand.block = msg->block;
  if (cand.self_committed) {
    return;
  }
  cand.self_committed = true;
  voted_block_ = msg->block;  // Latest vote supersedes; reported in epoch changes.
  voted_epoch_ = epoch_;
  consecutive_timeouts_ = 0;
  ArmViewTimer(epoch_, 0);

  auto out = std::make_shared<MinCommitMsg>();
  out->block_hash = msg->block->hash;
  out->epoch = epoch_;
  // Certify the commit with our own USIG: counter write #2 on the critical path (every
  // backup pays it). Leader-side equivocation is excluded by the leader's UI stream.
  out->ui = usig_.CreateUi(msg->block->hash);
  AppendToLog(msg->block);
  PersistMeta();  // The vote (and its UI counter) must survive a reboot.
  BroadcastToReplicas(out, /*include_self=*/true);  // All-to-all: O(n^2).
}

void MinBftReplica::OnCommit(NodeId from, const MinCommitMsg& msg) {
  if (msg.epoch != epoch_) {
    return;
  }
  Candidate& cand = candidates_[msg.block_hash];
  if (cand.committed) {
    return;
  }
  if (msg.ui.sig.signer != from || !usig_.VerifyUi(msg.ui, msg.block_hash)) {
    return;
  }
  if (!verifier_.AcceptMonotonic(from, msg.ui)) {
    return;
  }
  cand.commits.insert(from);
  CritNote(0, JournalHash(msg.block_hash));
  TryFinalize(msg.block_hash);
}

void MinBftReplica::TryFinalize(const Hash256& hash) {
  auto it = candidates_.find(hash);
  if (it == candidates_.end() || it->second.committed || it->second.block == nullptr ||
      it->second.commits.size() < quorum()) {  // f+1 of 2f+1.
    return;
  }
  if (!EnsureAncestry(hash, LeaderOfEpoch(epoch_))) {
    return;
  }
  it->second.committed = true;
  CritJoin(0, JournalHash(hash));
  const bool was_last_proposed = it->second.block == last_proposed_;
  const size_t cert_wire = it->second.commits.size() * (4 + 64);
  CommitChain(it->second.block, cert_wire);
  consecutive_timeouts_ = 0;
  ArmViewTimer(epoch_, 0);
  std::erase_if(candidates_, [this](const auto& entry) {
    return entry.second.block != nullptr &&
           entry.second.block->height + 8 < last_committed_height_;
  });
  if (LeaderOfEpoch(epoch_) == id() && was_last_proposed) {
    proposal_outstanding_ = false;
    TryPropose();
  }
}

void MinBftReplica::OnViewTimeout(View /*view*/) {
  ++consecutive_timeouts_;
  ++epoch_;
  JournalEvent(obs::JournalKind::kViewEnter, epoch_);
  PersistMeta();  // The epoch bump must survive a reboot (no replayed-epoch votes).
  proposal_outstanding_ = false;
  candidates_.clear();
  ArmViewTimer(epoch_, consecutive_timeouts_);
  auto msg = std::make_shared<MinEpochChangeMsg>();
  msg->new_epoch = epoch_;
  msg->committed_height = last_committed_height_;
  msg->committed_hash = last_committed_hash_;
  msg->committed_block = store_.Get(last_committed_hash_);
  msg->voted_epoch = voted_epoch_;
  msg->voted_block = voted_block_;
  BroadcastToReplicas(msg, /*include_self=*/true);
}

void MinBftReplica::OnEpochChange(NodeId from, const MinEpochChangeMsg& msg) {
  if (msg.new_epoch < epoch_ || LeaderOfEpoch(msg.new_epoch) != id() ||
      msg.new_epoch + 1 <= ec_done_epoch_plus1_) {
    return;
  }
  if (msg.committed_block != nullptr) {
    AcceptBlock(msg.committed_block);
  }
  if (msg.voted_block != nullptr) {
    AcceptBlock(msg.voted_block);
  }
  auto& collected = epoch_msgs_[msg.new_epoch];
  collected[from] = {msg.committed_height, msg.committed_hash, msg.voted_epoch,
                     msg.voted_block};
  if (collected.size() < quorum()) {
    return;
  }
  Height best_height = last_committed_height_;
  Hash256 best_hash = last_committed_hash_;
  // Our own state participates alongside the quorum's reports.
  uint64_t best_voted_epoch = voted_epoch_;
  BlockPtr best_voted = voted_block_;
  for (const auto& [node, info] : collected) {
    if (info.committed_height > best_height) {
      best_height = info.committed_height;
      best_hash = info.committed_hash;
    }
    if (info.voted_block != nullptr &&
        (best_voted == nullptr ||
         std::pair(info.voted_epoch, info.voted_block->height) >
             std::pair(best_voted_epoch, best_voted->height))) {
      best_voted_epoch = info.voted_epoch;
      best_voted = info.voted_block;
    }
  }
  const BlockPtr base = store_.Get(best_hash);
  if (base == nullptr) {
    return;
  }
  if (msg.new_epoch > epoch_) {
    epoch_ = msg.new_epoch;
    JournalEvent(obs::JournalKind::kViewEnter, epoch_);
    PersistMeta();  // Adopted epoch must survive a reboot.
  }
  JournalEvent(obs::JournalKind::kLeaderElected, epoch_, id());
  ec_done_epoch_plus1_ = epoch_ + 1;
  last_proposed_ = base;
  proposal_outstanding_ = false;
  candidates_.clear();
  epoch_msgs_.erase(epoch_msgs_.begin(), epoch_msgs_.upper_bound(msg.new_epoch));
  ArmViewTimer(epoch_, 0);
  if (best_voted != nullptr && best_voted->height > best_height) {
    // A vote beyond the committed prefix may back a block that already gathered a commit
    // quorum somewhere: re-propose that exact block rather than forking past it.
    ProposeBlock(best_voted);
  } else {
    TryPropose();
  }
}

void MinBftReplica::OnStableCheckpoint(const checkpoint::CheckpointCert& cert) {
  ReplicaBase::OnStableCheckpoint(cert);
  // Compact the message log: every record at or below the certified boundary is
  // committed history the checkpoint now vouches for. The scan stops at the first
  // record beyond the boundary so later out-of-order appends are never dropped.
  storage::WriteAheadLog& wal = Wal(kLogWal);
  size_t drop = 0;
  for (const Bytes& record : wal.records()) {
    const BlockPtr block = DecodeBlockRecord(ByteView(record.data(), record.size()));
    if (block != nullptr && block->height > cert.height) {
      break;
    }
    ++drop;
  }
  wal.TruncateFront(drop);
}

void MinBftReplica::OnBlocksSynced() {
  std::vector<Hash256> ready;
  for (const auto& [hash, cand] : candidates_) {
    if (!cand.committed && cand.commits.size() >= quorum()) {
      ready.push_back(hash);
    }
  }
  for (const Hash256& hash : ready) {
    TryFinalize(hash);
  }
}

}  // namespace achilles
