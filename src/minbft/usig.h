// MinBFT's USIG (Unique Sequential Identifier Generator, Veronese et al. 2013): the
// minimal trusted component — a monotonic counter bound to a signature. Every certified
// message carries the next counter value; receivers enforce gapless sequences per sender,
// which prevents equivocation *and* serializes the sender's certified messages (the
// "lack of parallelism" issue discussed in the Achilles paper §6.1).
//
// Because the counter value itself is the anti-equivocation state, MinBFT cannot defer
// rollback prevention: every CreateUi is a persistent counter write by construction.
#ifndef SRC_MINBFT_USIG_H_
#define SRC_MINBFT_USIG_H_

#include <algorithm>
#include <optional>
#include <vector>

#include "src/consensus/certificates.h"
#include "src/consensus/types.h"
#include "src/tee/enclave.h"

namespace achilles {

inline constexpr const char* kUsigDomain = "minbft/UI";

// A unique identifier: ⟨digest, counter⟩ signed by the node's TEE.
struct UniqueIdentifier {
  Hash256 digest = ZeroHash();
  uint64_t counter = 0;
  Signature sig;

  size_t WireSize() const { return 32 + 8 + sig.WireSize(); }
};

class Usig {
 public:
  explicit Usig(EnclaveRuntime* enclave) : enclave_(enclave) {}

  // Certifies `digest` with the next counter value. Writes the persistent counter.
  UniqueIdentifier CreateUi(const Hash256& digest);

  // Reboot path: fast-forwards the in-enclave mirror to the persisted counter value (the
  // device itself survives the crash). Never moves backwards, so a stale host-side record
  // cannot make the USIG reissue an identifier.
  void ResumeFrom(uint64_t counter) { counter_ = std::max(counter_, counter); }

  // Verifies a UI's signature (trusted code path; gapless-ness is checked by the receiver
  // against its per-sender expectations).
  bool VerifyUi(const UniqueIdentifier& ui, const Hash256& digest) const;

  uint64_t counter() const { return counter_; }

 private:
  EnclaveRuntime* enclave_;
  uint64_t counter_ = 0;
};

// Receiver-side bookkeeping. Strict mode accepts each sender's UIs gaplessly (MinBFT's
// original rule, which also detects message suppression); monotonic mode only requires
// strictly increasing counters — still equivocation-free (no two messages can share a
// counter) and more robust across view changes, which is what the replica uses.
class UsigVerifier {
 public:
  explicit UsigVerifier(uint32_t n) : last_seen_(n, 0) {}

  // True iff `ui` is the next expected counter from `sender` (and records it).
  bool AcceptNext(NodeId sender, const UniqueIdentifier& ui);
  // True iff `ui`'s counter is beyond everything seen from `sender` (and records it).
  bool AcceptMonotonic(NodeId sender, const UniqueIdentifier& ui);
  uint64_t last_seen(NodeId sender) const { return last_seen_[sender]; }

 private:
  std::vector<uint64_t> last_seen_;
};

}  // namespace achilles

#endif  // SRC_MINBFT_USIG_H_
