#include "src/minbft/usig.h"

namespace achilles {

namespace {
Bytes UiDigest(const Hash256& digest, uint64_t counter) {
  return CertDigest(kUsigDomain, digest, counter);
}
}  // namespace

UniqueIdentifier Usig::CreateUi(const Hash256& digest) {
  enclave_->ChargeEcall();
  UniqueIdentifier ui;
  ui.digest = digest;
  ui.counter = ++counter_;
  // The USIG counter *is* the persistent counter: rollback prevention is inseparable from
  // certification here (contrast with Achilles, which has no per-message persistence).
  MonotonicCounter& counter = enclave_->platform().counter();
  if (counter.spec().enabled()) {
    counter.IncrementBlocking();
  }
  enclave_->ChargeSign();
  const Bytes d = UiDigest(digest, ui.counter);
  ui.sig = enclave_->Sign(ByteView(d.data(), d.size()));
  return ui;
}

bool Usig::VerifyUi(const UniqueIdentifier& ui, const Hash256& digest) const {
  if (ui.digest != digest) {
    return false;
  }
  enclave_->ChargeVerify(1);
  const Bytes d = UiDigest(ui.digest, ui.counter);
  return enclave_->Verify(ui.sig, ByteView(d.data(), d.size()));
}

bool UsigVerifier::AcceptNext(NodeId sender, const UniqueIdentifier& ui) {
  if (sender >= last_seen_.size() || ui.counter != last_seen_[sender] + 1) {
    return false;
  }
  last_seen_[sender] = ui.counter;
  return true;
}

bool UsigVerifier::AcceptMonotonic(NodeId sender, const UniqueIdentifier& ui) {
  if (sender >= last_seen_.size() || ui.counter <= last_seen_[sender]) {
    return false;
  }
  last_seen_[sender] = ui.counter;
  return true;
}

}  // namespace achilles
