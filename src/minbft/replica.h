// MinBFT (Veronese et al., IEEE ToC 2013) — the classic USIG-based TEE-BFT the Achilles
// paper positions itself against (§2.2): n = 2f+1, PBFT-style PREPARE + all-to-all COMMIT
// (O(n²)), every certified message writes the persistent counter. Four steps end to end,
// but with two counter-write stalls on the critical path (leader PREPARE + backup COMMIT).
//
// Stable storage per the MinBFT paper (§IV, "message log"): every block this replica
// certifies a UI for (its own proposals and its PREPARE votes) goes to a host WAL, and the
// (epoch, voted epoch, voted hash, USIG counter) tuple goes to the record store, both
// fsynced before the certified message leaves the node. On reboot the constructor replays
// the log and resumes the USIG from max(device counter, persisted mirror), so a restarted
// replica can neither reissue a counter value nor forget a vote it already certified.
#ifndef SRC_MINBFT_REPLICA_H_
#define SRC_MINBFT_REPLICA_H_

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/consensus/replica_base.h"
#include "src/minbft/usig.h"
#include "src/sim/process.h"

namespace achilles {

struct MinPrepareMsg : SimMessage {
  const char* TraceName() const override { return "min_prepare"; }
  BlockPtr block;
  uint64_t epoch = 0;
  UniqueIdentifier ui;  // Leader's UI over the block hash.
  size_t WireSize() const override { return block->WireSize() + 8 + ui.WireSize(); }
};

struct MinCommitMsg : SimMessage {
  const char* TraceName() const override { return "min_commit"; }
  Hash256 block_hash = ZeroHash();
  uint64_t epoch = 0;
  UniqueIdentifier ui;  // Sender's UI over the (block hash, leader UI counter) pair.
  size_t WireSize() const override { return 32 + 8 + ui.WireSize(); }
};

struct MinEpochChangeMsg : SimMessage {
  const char* TraceName() const override { return "min_epoch_change"; }
  uint64_t new_epoch = 0;
  Height committed_height = 0;
  Hash256 committed_hash = ZeroHash();
  BlockPtr committed_block;
  // Highest block this replica COMMIT-voted for and the epoch of that vote. A block with a
  // commit quorum is known (voted) by at least one member of any f+1 epoch-change quorum,
  // so the new leader can re-propose it instead of forking past it (PBFT view-change rule;
  // the chaos swarm found the fork when only committed prefixes were exchanged).
  uint64_t voted_epoch = 0;
  BlockPtr voted_block;
  size_t WireSize() const override {
    return 8 + 8 + 32 + 8 + (committed_block != nullptr ? committed_block->WireSize() : 0) +
           (voted_block != nullptr ? voted_block->WireSize() : 0);
  }
};

class MinBftReplica : public ReplicaBase {
 public:
  MinBftReplica(const ReplicaContext& ctx, bool initial_launch);

  void OnStart() override;
  uint64_t epoch() const { return epoch_; }

  InvariantSnapshot Invariants() const override {
    InvariantSnapshot snap = ReplicaBase::Invariants();
    snap.view = epoch_;
    return snap;
  }

 protected:
  void HandleMessage(NodeId from, const MessageRef& msg) override;
  void OnViewTimeout(View view) override;
  void OnBlocksSynced() override;
  // Log compaction: drops the message-log prefix a stable checkpoint subsumes.
  void OnStableCheckpoint(const checkpoint::CheckpointCert& cert) override;

 private:
  void TryPropose();
  void ProposeBlock(const BlockPtr& block);
  void OnPrepare(NodeId from, const std::shared_ptr<const MinPrepareMsg>& msg);
  void OnCommit(NodeId from, const MinCommitMsg& msg);
  void OnEpochChange(NodeId from, const MinEpochChangeMsg& msg);
  void TryFinalize(const Hash256& hash);
  NodeId LeaderOfEpoch(uint64_t epoch) const { return static_cast<NodeId>(epoch % n()); }

  // Syncs (epoch, voted epoch, voted hash, USIG counter) to the host record store: must
  // precede any message whose UI counter or epoch it reflects.
  void PersistMeta();
  // Appends `block` to the durable message log with an fsync, once per block per
  // incarnation.
  void AppendToLog(const BlockPtr& block);
  void RestoreDurableState();

  bool initial_launch_;
  Usig usig_;
  UsigVerifier verifier_;
  uint64_t epoch_ = 0;
  uint32_t consecutive_timeouts_ = 0;

  BlockPtr last_proposed_;
  bool proposal_outstanding_ = false;

  struct Candidate {
    BlockPtr block;
    std::set<NodeId> commits;
    bool committed = false;
    bool self_committed = false;
  };
  std::unordered_map<Hash256, Candidate, Hash256Hasher> candidates_;
  // Blocks already in the durable message log (rebuilt from the WAL on reboot).
  std::unordered_set<Hash256, Hash256Hasher> logged_;
  struct EpochInfo {
    Height committed_height = 0;
    Hash256 committed_hash = ZeroHash();
    uint64_t voted_epoch = 0;
    BlockPtr voted_block;
  };
  std::map<uint64_t, std::map<NodeId, EpochInfo>> epoch_msgs_;

  // Our own highest commit-phase vote (survives epoch changes; reported in ECs).
  BlockPtr voted_block_;
  uint64_t voted_epoch_ = 0;
  // Epoch of the last epoch-change quorum we acted on, plus one (0 = none). Guards
  // against re-proposing twice in the same epoch when late ECs rebuild a quorum.
  uint64_t ec_done_epoch_plus1_ = 0;
};

}  // namespace achilles

#endif  // SRC_MINBFT_REPLICA_H_
