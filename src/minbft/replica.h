// MinBFT (Veronese et al., IEEE ToC 2013) — the classic USIG-based TEE-BFT the Achilles
// paper positions itself against (§2.2): n = 2f+1, PBFT-style PREPARE + all-to-all COMMIT
// (O(n²)), every certified message writes the persistent counter. Four steps end to end,
// but with two counter-write stalls on the critical path (leader PREPARE + backup COMMIT).
#ifndef SRC_MINBFT_REPLICA_H_
#define SRC_MINBFT_REPLICA_H_

#include <map>
#include <unordered_map>

#include "src/consensus/replica_base.h"
#include "src/minbft/usig.h"
#include "src/sim/process.h"

namespace achilles {

struct MinPrepareMsg : SimMessage {
  const char* TraceName() const override { return "min_prepare"; }
  BlockPtr block;
  uint64_t epoch = 0;
  UniqueIdentifier ui;  // Leader's UI over the block hash.
  size_t WireSize() const override { return block->WireSize() + 8 + ui.WireSize(); }
};

struct MinCommitMsg : SimMessage {
  const char* TraceName() const override { return "min_commit"; }
  Hash256 block_hash = ZeroHash();
  uint64_t epoch = 0;
  UniqueIdentifier ui;  // Sender's UI over the (block hash, leader UI counter) pair.
  size_t WireSize() const override { return 32 + 8 + ui.WireSize(); }
};

struct MinEpochChangeMsg : SimMessage {
  const char* TraceName() const override { return "min_epoch_change"; }
  uint64_t new_epoch = 0;
  Height committed_height = 0;
  Hash256 committed_hash = ZeroHash();
  BlockPtr committed_block;
  size_t WireSize() const override {
    return 8 + 8 + 32 + (committed_block != nullptr ? committed_block->WireSize() : 0);
  }
};

class MinBftReplica : public ReplicaBase {
 public:
  MinBftReplica(const ReplicaContext& ctx, bool initial_launch);

  void OnStart() override;
  uint64_t epoch() const { return epoch_; }

 protected:
  void HandleMessage(NodeId from, const MessageRef& msg) override;
  void OnViewTimeout(View view) override;
  void OnBlocksSynced() override;

 private:
  void TryPropose();
  void OnPrepare(NodeId from, const std::shared_ptr<const MinPrepareMsg>& msg);
  void OnCommit(NodeId from, const MinCommitMsg& msg);
  void OnEpochChange(NodeId from, const MinEpochChangeMsg& msg);
  void TryFinalize(const Hash256& hash);
  NodeId LeaderOfEpoch(uint64_t epoch) const { return static_cast<NodeId>(epoch % n()); }

  Usig usig_;
  UsigVerifier verifier_;
  uint64_t epoch_ = 0;
  uint32_t consecutive_timeouts_ = 0;

  BlockPtr last_proposed_;
  bool proposal_outstanding_ = false;

  struct Candidate {
    BlockPtr block;
    std::set<NodeId> commits;
    bool committed = false;
    bool self_committed = false;
  };
  std::unordered_map<Hash256, Candidate, Hash256Hasher> candidates_;
  std::map<uint64_t, std::map<NodeId, std::pair<Height, Hash256>>> epoch_msgs_;
};

}  // namespace achilles

#endif  // SRC_MINBFT_REPLICA_H_
