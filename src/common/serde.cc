#include "src/common/serde.h"

namespace achilles {

void ByteWriter::U8(uint8_t v) { buf_.push_back(v); }

void ByteWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

void ByteWriter::Blob(ByteView data) {
  U32(static_cast<uint32_t>(data.size()));
  Raw(data);
}

void ByteWriter::Raw(ByteView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

void ByteWriter::Str(const std::string& s) { Blob(AsBytes(s)); }

bool ByteReader::Ensure(size_t n) {
  if (!ok_ || pos_ + n > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

std::optional<uint8_t> ByteReader::U8() {
  if (!Ensure(1)) {
    return std::nullopt;
  }
  return data_[pos_++];
}

std::optional<uint16_t> ByteReader::U16() {
  if (!Ensure(2)) {
    return std::nullopt;
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::optional<uint32_t> ByteReader::U32() {
  if (!Ensure(4)) {
    return std::nullopt;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::optional<uint64_t> ByteReader::U64() {
  if (!Ensure(8)) {
    return std::nullopt;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::optional<int64_t> ByteReader::I64() {
  auto v = U64();
  if (!v) {
    return std::nullopt;
  }
  return static_cast<int64_t>(*v);
}

std::optional<Bytes> ByteReader::Blob() {
  auto n = U32();
  if (!n) {
    return std::nullopt;
  }
  return Raw(*n);
}

std::optional<Bytes> ByteReader::Raw(size_t n) {
  if (!Ensure(n)) {
    return std::nullopt;
  }
  Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
            data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::optional<std::string> ByteReader::Str() {
  auto b = Blob();
  if (!b) {
    return std::nullopt;
  }
  return std::string(b->begin(), b->end());
}

}  // namespace achilles
