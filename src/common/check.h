// Fatal assertion macros. These guard internal invariants; protocol-level validation of
// untrusted input must use explicit error returns instead.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define ACHILLES_CHECK(cond)                                                              \
  do {                                                                                    \
    if (!(cond)) {                                                                        \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #cond, __FILE__, __LINE__);     \
      std::abort();                                                                       \
    }                                                                                     \
  } while (0)

#define ACHILLES_CHECK_MSG(cond, msg)                                                     \
  do {                                                                                    \
    if (!(cond)) {                                                                        \
      std::fprintf(stderr, "CHECK failed: %s (%s) at %s:%d\n", #cond, msg, __FILE__,      \
                   __LINE__);                                                             \
      std::abort();                                                                       \
    }                                                                                     \
  } while (0)

#endif  // SRC_COMMON_CHECK_H_
