// Byte-buffer helpers shared by every module.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace achilles {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

// Lowercase hex encoding of `data`.
std::string ToHex(ByteView data);

// Parses a hex string (no 0x prefix, even length). Returns empty on malformed input.
Bytes FromHex(const std::string& hex);

// Appends `src` to `dst`.
void Append(Bytes& dst, ByteView src);

// Views a string's bytes without copying.
ByteView AsBytes(const std::string& s);

// Constant-time equality, for MAC comparisons.
bool ConstantTimeEqual(ByteView a, ByteView b);

}  // namespace achilles

#endif  // SRC_COMMON_BYTES_H_
