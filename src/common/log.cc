#include "src/common/log.h"

namespace achilles {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace achilles
