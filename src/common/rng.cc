#include "src/common/rng.h"

#include <cmath>

namespace achilles {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  if (bound <= 1) {
    return 0;
  }
  // Rejection sampling on the top of the range.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

double Rng::Gaussian(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::Chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

void Rng::Fill(Bytes& out, size_t n) {
  out.resize(n);
  size_t i = 0;
  while (i < n) {
    uint64_t v = NextU64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace achilles
