// Tiny leveled logger. Logging is off by default in benchmarks; tests can raise the level to
// trace protocol decisions.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <cstdarg>
#include <cstdio>

namespace achilles {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace achilles

#define ACH_LOG(level, ...)                                                   \
  do {                                                                        \
    if (static_cast<int>(level) >= static_cast<int>(::achilles::GetLogLevel())) { \
      ::achilles::LogMessage(level, __VA_ARGS__);                             \
    }                                                                         \
  } while (0)

#define ACH_TRACE(...) ACH_LOG(::achilles::LogLevel::kTrace, __VA_ARGS__)
#define ACH_DEBUG(...) ACH_LOG(::achilles::LogLevel::kDebug, __VA_ARGS__)
#define ACH_INFO(...) ACH_LOG(::achilles::LogLevel::kInfo, __VA_ARGS__)
#define ACH_WARN(...) ACH_LOG(::achilles::LogLevel::kWarn, __VA_ARGS__)
#define ACH_ERROR(...) ACH_LOG(::achilles::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_COMMON_LOG_H_
