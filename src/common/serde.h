// Minimal binary serialization. Fixed-width little-endian integers plus length-prefixed
// byte strings. Used both for signing digests (canonical encoding) and for wire-size
// accounting in the network simulator.
#ifndef SRC_COMMON_SERDE_H_
#define SRC_COMMON_SERDE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/bytes.h"

namespace achilles {

class ByteWriter {
 public:
  void U8(uint8_t v);
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v);
  // Length-prefixed (u32) byte string.
  void Blob(ByteView data);
  // Raw bytes, no length prefix.
  void Raw(ByteView data);
  void Str(const std::string& s);

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// Reader over a byte view. All accessors return nullopt on underflow; once a read fails the
// reader stays failed.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}

  std::optional<uint8_t> U8();
  std::optional<uint16_t> U16();
  std::optional<uint32_t> U32();
  std::optional<uint64_t> U64();
  std::optional<int64_t> I64();
  std::optional<Bytes> Blob();
  std::optional<Bytes> Raw(size_t n);
  std::optional<std::string> Str();

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Ensure(size_t n);

  ByteView data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace achilles

#endif  // SRC_COMMON_SERDE_H_
