// Flat open-addressing hash set for uint64_t keys (linear probing, power-of-two table).
// Replaces std::unordered_set on simulator hot paths (mempool id suppression): no per-node
// allocation, and growth moves raw words instead of relinking buckets, which removed the
// rehash storms that showed up in profiles of long ingestion-heavy runs.
#ifndef SRC_COMMON_U64_SET_H_
#define SRC_COMMON_U64_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace achilles {

class U64Set {
 public:
  U64Set() = default;

  // Inserts `key`; returns true when it was not already present.
  bool Insert(uint64_t key) {
    if (key == kEmpty) {
      const bool fresh = !has_empty_key_;
      has_empty_key_ = true;
      size_ += fresh ? 1 : 0;
      return fresh;
    }
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      Grow();
    }
    size_t i = Mix(key) & mask_;
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) {
        return false;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool Contains(uint64_t key) const {
    if (key == kEmpty) {
      return has_empty_key_;
    }
    if (slots_.empty()) {
      return false;
    }
    size_t i = Mix(key) & mask_;
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) {
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t n) {
    size_t cap = 16;
    while (cap * 7 < n * 8) {
      cap *= 2;
    }
    if (cap > slots_.size()) {
      Rebuild(cap);
    }
  }

 private:
  static constexpr uint64_t kEmpty = 0;  // Key 0 tracked by has_empty_key_ instead.

  // splitmix64 finalizer: spreads sequential ids across the table.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void Grow() { Rebuild(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rebuild(size_t cap) {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
    for (uint64_t key : old) {
      if (key == kEmpty) {
        continue;
      }
      size_t i = Mix(key) & mask_;
      while (slots_[i] != kEmpty) {
        i = (i + 1) & mask_;
      }
      slots_[i] = key;
    }
  }

  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  bool has_empty_key_ = false;
};

}  // namespace achilles

#endif  // SRC_COMMON_U64_SET_H_
