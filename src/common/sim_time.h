// Virtual-time units. The simulator clock counts nanoseconds in int64, giving ~292 years of
// virtual time — far beyond any experiment here.
#ifndef SRC_COMMON_SIM_TIME_H_
#define SRC_COMMON_SIM_TIME_H_

#include <cstdint>

namespace achilles {

using SimTime = int64_t;      // Absolute virtual time, nanoseconds since simulation start.
using SimDuration = int64_t;  // Virtual-time interval, nanoseconds.

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Ns(int64_t n) { return n; }
constexpr SimDuration Us(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Ms(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Sec(int64_t n) { return n * kSecond; }

constexpr double ToMs(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToUs(SimDuration d) { return static_cast<double>(d) / kMicrosecond; }
constexpr double ToSec(SimDuration d) { return static_cast<double>(d) / kSecond; }

// Converts a double in milliseconds/microseconds to a duration (rounds to nearest ns).
constexpr SimDuration FromMs(double ms) { return static_cast<SimDuration>(ms * kMillisecond); }
constexpr SimDuration FromUs(double us) { return static_cast<SimDuration>(us * kMicrosecond); }

}  // namespace achilles

#endif  // SRC_COMMON_SIM_TIME_H_
