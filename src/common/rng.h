// Deterministic random number generation. Every simulation derives all randomness from a
// single seed so adversarial schedules and performance runs are exactly reproducible.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace achilles {

// SplitMix64: used for seeding and cheap hashing of seeds.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256++ generator.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  // Uniform in [0, bound), bound > 0. Uses rejection sampling to avoid modulo bias.
  uint64_t UniformU64(uint64_t bound);
  // Uniform double in [0, 1).
  double UniformDouble();
  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);
  // Standard normal via Box-Muller; Gaussian(m, s) = m + s * N(0,1).
  double Gaussian(double mean, double stddev);
  // Bernoulli trial.
  bool Chance(double p);
  // Exponential with given mean (for Poisson arrival processes).
  double Exponential(double mean);
  // Fills `out` with random bytes.
  void Fill(Bytes& out, size_t n);
  // Derives an independent child generator (for per-node streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace achilles

#endif  // SRC_COMMON_RNG_H_
