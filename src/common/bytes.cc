#include "src/common/bytes.h"

namespace achilles {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}
}  // namespace

std::string ToHex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes FromHex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return {};
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return {};
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes& dst, ByteView src) { dst.insert(dst.end(), src.begin(), src.end()); }

ByteView AsBytes(const std::string& s) {
  return ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

bool ConstantTimeEqual(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace achilles
