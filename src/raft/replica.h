// Raft baseline (the paper benchmarks BRaft in Table 3): leader-based log replication with
// majority commit, elections with randomized timeouts, batching identical to the BFT
// protocols. No signatures, no TEE — the CFT performance ceiling the paper compares
// Achilles against. Log repair reuses the content-addressed block store + fetch protocol
// in place of nextIndex bookkeeping.
//
// Stable storage per the Raft paper (Fig. 2 "persistent state"): currentTerm and votedFor
// go to the host record store before any vote or election message leaves the node, and log
// entries go to a host WAL with an fsync before the append is acknowledged. A rebooted
// replica restores all three in its constructor, so reboots cannot un-vote or un-ack.
#ifndef SRC_RAFT_REPLICA_H_
#define SRC_RAFT_REPLICA_H_

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/consensus/replica_base.h"
#include "src/sim/process.h"

namespace achilles {

struct RaftAppendMsg : SimMessage {
  const char* TraceName() const override { return "raft_append"; }
  uint64_t term = 0;
  BlockPtr block;            // nullptr = heartbeat.
  Height commit_height = 0;  // Leader's commit index (piggybacked).
  Hash256 commit_hash = ZeroHash();
  size_t WireSize() const override {
    return 8 + 8 + 32 + (block != nullptr ? block->WireSize() : 0);
  }
};

struct RaftAckMsg : SimMessage {
  const char* TraceName() const override { return "raft_ack"; }
  uint64_t term = 0;
  Hash256 hash = ZeroHash();
  Height height = 0;
  size_t WireSize() const override { return 8 + 32 + 8; }
};

struct RaftVoteReqMsg : SimMessage {
  const char* TraceName() const override { return "raft_vote_req"; }
  uint64_t term = 0;
  uint64_t last_term = 0;    // Term of the candidate's last log entry (§5.4.1).
  Height last_height = 0;
  size_t WireSize() const override { return 8 + 8 + 8; }
};

struct RaftVoteRspMsg : SimMessage {
  const char* TraceName() const override { return "raft_vote_rsp"; }
  uint64_t term = 0;
  bool granted = false;
  size_t WireSize() const override { return 8 + 1; }
};

class RaftReplica : public ReplicaBase {
 public:
  RaftReplica(const ReplicaContext& ctx, bool initial_launch);

  void OnStart() override;

  enum class Role { kFollower, kCandidate, kLeader };
  Role role() const { return role_; }
  uint64_t term() const { return term_; }

  InvariantSnapshot Invariants() const override {
    InvariantSnapshot snap = ReplicaBase::Invariants();
    snap.view = term_;
    return snap;
  }

 protected:
  void HandleMessage(NodeId from, const MessageRef& msg) override;
  void OnViewTimeout(View view) override;
  void OnBlocksSynced() override;
  // Log compaction: drops the WAL prefix a stable checkpoint subsumes (charged as fsync).
  void OnStableCheckpoint(const checkpoint::CheckpointCert& cert) override;
  // Snapshot transfer fix-up: the log-head pointer advances past the adopted boundary.
  void OnCheckpointAdopted(const BlockPtr& block) override;

 private:
  void BecomeFollower(uint64_t term);
  void StartElection();
  void BecomeLeader();
  void TryPropose();
  void SendHeartbeats();
  void OnAppend(NodeId from, const std::shared_ptr<const RaftAppendMsg>& msg);
  void OnAck(NodeId from, const RaftAckMsg& msg);
  void OnVoteReq(NodeId from, const RaftVoteReqMsg& msg);
  void OnVoteRsp(NodeId from, const RaftVoteRspMsg& msg);
  void ArmElectionTimer();

  // Syncs (term, votedFor) to the host record store: must precede any message that makes
  // the vote or term adoption observable.
  void PersistMeta();
  // Appends `block` to the durable log with an fsync, once per block per incarnation.
  void AppendToLog(const BlockPtr& block);
  void RestoreDurableState();

  bool initial_launch_;
  Role role_ = Role::kFollower;
  uint64_t term_ = 0;
  uint64_t voted_in_term_ = 0;  // Highest term we granted a vote in.
  NodeId leader_hint_ = kNoNode;

  BlockPtr head_;  // Tail of the local log.
  bool proposal_outstanding_ = false;
  struct Pending {
    BlockPtr block;
    std::set<NodeId> acks;
  };
  std::unordered_map<Hash256, Pending, Hash256Hasher> pending_;
  // Blocks already in the durable log (rebuilt from the WAL on reboot); re-deliveries via
  // heartbeat retransmission skip the duplicate append + fsync.
  std::unordered_set<Hash256, Hash256Hasher> logged_;
  // Distinct grantors this candidacy, self included. A set, not a counter: the network may
  // duplicate a vote response, and double-counting one grantor elects a leader without a
  // real majority (a fork the chaos swarm found under duplication jitter).
  std::set<NodeId> votes_from_;
  uint64_t heartbeat_timer_ = 0;
  uint64_t election_timer_ = 0;
};

}  // namespace achilles

#endif  // SRC_RAFT_REPLICA_H_
