#include "src/raft/replica.h"

#include <algorithm>

#include "src/common/serde.h"

namespace achilles {

namespace {
constexpr const char* kMetaKey = "raft-meta";
constexpr const char* kLogWal = "raft-log";
}  // namespace

RaftReplica::RaftReplica(const ReplicaContext& ctx, bool initial_launch)
    : ReplicaBase(ctx), initial_launch_(initial_launch) {
  head_ = Block::Genesis();
  set_client_replies_enabled(false);  // Only the leader answers clients in Raft.
  if (!initial_launch_) {
    // Checkpoint first: the restored boundary becomes the committed prefix, and WAL replay
    // below skips the records the snapshot subsumes (they were truncated at checkpoint
    // time; only a not-yet-compacted tail can still carry them).
    if (const BlockPtr snapshot = RestoreStableCheckpoint()) {
      head_ = snapshot;
    }
    RestoreDurableState();
  }
}

void RaftReplica::RestoreDurableState() {
  if (const std::optional<Bytes> meta = HostRecords().Get(kMetaKey)) {
    ByteReader r(ByteView(meta->data(), meta->size()));
    const auto term = r.U64();
    const auto voted = r.U64();
    if (term && voted && r.remaining() == 0) {
      term_ = *term;
      voted_in_term_ = *voted;
    }
  }
  // Replay the log; the tail (highest (term, height)) becomes head_ again, so the election
  // restriction and re-replication behave as if the crash never happened.
  for (const Bytes& record : Wal(kLogWal).records()) {
    const BlockPtr block = DecodeBlockRecord(ByteView(record.data(), record.size()));
    if (block == nullptr) {
      continue;  // Torn/unfinished record: everything after it is gone anyway.
    }
    logged_.insert(block->hash);
    if (block->height <= last_committed_height_) {
      continue;  // Subsumed by the restored stable checkpoint (still dedup'd above).
    }
    store_.Add(block);
    if (block->view > head_->view ||
        (block->view == head_->view && block->height > head_->height)) {
      head_ = block;
    }
  }
}

void RaftReplica::OnStableCheckpoint(const checkpoint::CheckpointCert& cert) {
  ReplicaBase::OnStableCheckpoint(cert);  // Block-store compaction with catch-up slack.
  // Drop the WAL prefix the snapshot subsumes. Records are scanned in append order and the
  // scan stops at the first record above the boundary: entries logged out of height order
  // across term changes under-truncate (safe) rather than over-truncate.
  storage::WriteAheadLog& wal = Wal(kLogWal);
  size_t drop = 0;
  for (const Bytes& record : wal.records()) {
    const BlockPtr block = DecodeBlockRecord(ByteView(record.data(), record.size()));
    if (block != nullptr && block->height > cert.height) {
      break;
    }
    ++drop;
  }
  wal.TruncateFront(drop);
}

void RaftReplica::OnCheckpointAdopted(const BlockPtr& block) {
  // The adopted boundary supersedes everything the local log tail knew: propose on top of
  // it unless the tail is already further along in a no-older term.
  if (block->view > head_->view ||
      (block->view == head_->view && block->height > head_->height)) {
    head_ = block;
  }
}

void RaftReplica::PersistMeta() {
  ByteWriter w;
  w.U64(term_);
  w.U64(voted_in_term_);
  HostRecords().Put(kMetaKey, ByteView(w.bytes().data(), w.bytes().size()));
}

void RaftReplica::AppendToLog(const BlockPtr& block) {
  if (!logged_.insert(block->hash).second) {
    return;  // Already durable (heartbeat re-delivery); no second fsync.
  }
  const Bytes record = EncodeBlockRecord(*block);
  Wal(kLogWal).Append(ByteView(record.data(), record.size()), storage::SyncMode::kSync);
}

void RaftReplica::OnStart() {
  if (term_ == 0) {
    term_ = 1;
  }
  JournalEvent(obs::JournalKind::kViewEnter, term_);
  if (id() == 0 && initial_launch_) {
    // Node 0 bootstraps as the initial leader (deterministic start); elections take over on
    // any failure. A rebooted node 0 must win an election instead: another leader may have
    // been elected in its restored term while it was down.
    BecomeLeader();
  } else {
    ArmElectionTimer();
  }
}

void RaftReplica::ArmElectionTimer() {
  if (election_timer_ != 0) {
    host().CancelTimer(election_timer_);
  }
  const SimDuration base = params().base_timeout;
  const SimDuration jitter = static_cast<SimDuration>(
      host().sim().rng().UniformU64(static_cast<uint64_t>(base)));
  election_timer_ = host().SetTimer(base + jitter, [this] {
    if (role_ != Role::kLeader) {
      StartElection();
    }
  });
}

void RaftReplica::OnViewTimeout(View /*view*/) {}

void RaftReplica::StartElection() {
  role_ = Role::kCandidate;
  ++term_;
  JournalEvent(obs::JournalKind::kViewEnter, term_);
  voted_in_term_ = term_;  // Vote for self.
  votes_from_.clear();
  votes_from_.insert(id());
  PersistMeta();  // (currentTerm, votedFor=self) hit disk before the candidacy is visible.
  auto req = std::make_shared<RaftVoteReqMsg>();
  req->term = term_;
  req->last_term = head_->view;
  req->last_height = head_->height;
  BroadcastToReplicas(req, /*include_self=*/false);
  ArmElectionTimer();
}

void RaftReplica::BecomeFollower(uint64_t term) {
  role_ = Role::kFollower;
  if (term > term_) {
    term_ = term;
    JournalEvent(obs::JournalKind::kViewEnter, term_);
    PersistMeta();  // Adopted term must survive a reboot (no double vote in it).
  }
  set_client_replies_enabled(false);
  if (heartbeat_timer_ != 0) {
    host().CancelTimer(heartbeat_timer_);
    heartbeat_timer_ = 0;
  }
  ArmElectionTimer();
}

void RaftReplica::BecomeLeader() {
  role_ = Role::kLeader;
  JournalEvent(obs::JournalKind::kLeaderElected, term_, id());
  set_client_replies_enabled(true);
  if (election_timer_ != 0) {
    host().CancelTimer(election_timer_);
    election_timer_ = 0;
  }
  proposal_outstanding_ = false;
  pending_.clear();
  // A new leader never discards its own log tail (§5.4.1): acked-but-uncommitted entries
  // must be re-replicated, not overwritten — proposing on top of the newest entry we hold
  // lets CommitChain re-commit them once a descendant commits. (The chaos swarm caught the
  // fork this causes when the tail is truncated to the commit index instead.)
  const BlockPtr committed = store_.Get(last_committed_hash_);
  if (committed != nullptr && committed->height > head_->height) {
    head_ = committed;
  }
  SendHeartbeats();
  TryPropose();
}

void RaftReplica::SendHeartbeats() {
  if (role_ != Role::kLeader) {
    return;
  }
  auto hb = std::make_shared<RaftAppendMsg>();
  hb->term = term_;
  hb->commit_height = last_committed_height_;
  hb->commit_hash = last_committed_hash_;
  if (proposal_outstanding_ && !pending_.empty()) {
    // Replication is at-least-once: re-send the in-flight block with every heartbeat so a
    // dropped append or ack cannot wedge the term (acks are idempotent; AcceptBlock
    // returns true for blocks already stored).
    hb->block = pending_.begin()->second.block;
  }
  BroadcastToReplicas(hb, /*include_self=*/false);
  heartbeat_timer_ =
      host().SetTimer(params().base_timeout / 4, [this] { SendHeartbeats(); });
}

void RaftReplica::TryPropose() {
  if (role_ != Role::kLeader || proposal_outstanding_) {
    return;
  }
  std::vector<Transaction> batch = mempool_.TakeBatch(params().batch_size);
  ChargeExecute(batch.size());
  const BlockPtr block = Block::Create(/*view=*/term_, head_, std::move(batch), LocalNow());
  ChargeHashBytes(block->WireSize());
  head_ = block;
  store_.Add(block);
  MarkProposed(block);
  AppendToLog(block);  // Leader persists before replicating.
  proposal_outstanding_ = true;
  Pending& pending = pending_[block->hash];
  pending.block = block;
  pending.acks.insert(id());
  auto msg = std::make_shared<RaftAppendMsg>();
  msg->term = term_;
  msg->block = block;
  msg->commit_height = last_committed_height_;
  msg->commit_hash = last_committed_hash_;
  BroadcastToReplicas(msg, /*include_self=*/false);
}

void RaftReplica::HandleMessage(NodeId from, const MessageRef& msg) {
  if (auto append = std::dynamic_pointer_cast<const RaftAppendMsg>(msg)) {
    OnAppend(from, append);
  } else if (auto ack = std::dynamic_pointer_cast<const RaftAckMsg>(msg)) {
    OnAck(from, *ack);
  } else if (auto req = std::dynamic_pointer_cast<const RaftVoteReqMsg>(msg)) {
    OnVoteReq(from, *req);
  } else if (auto rsp = std::dynamic_pointer_cast<const RaftVoteRspMsg>(msg)) {
    OnVoteRsp(from, *rsp);
  }
}

void RaftReplica::OnAppend(NodeId from, const std::shared_ptr<const RaftAppendMsg>& msg) {
  if (msg->term < term_) {
    return;
  }
  if (msg->term > term_ || role_ == Role::kCandidate) {
    BecomeFollower(msg->term);
  }
  leader_hint_ = from;
  ArmElectionTimer();

  if (msg->block != nullptr) {
    ChargeHashBytes(msg->block->WireSize());
    if (AcceptBlock(msg->block) && EnsureAncestry(msg->block->hash, from)) {
      if (msg->block->parent == head_->hash || msg->block->height > head_->height) {
        head_ = msg->block;
      }
      AppendToLog(msg->block);  // Durable append before the ack.
      auto ack = std::make_shared<RaftAckMsg>();
      ack->term = term_;
      ack->hash = msg->block->hash;
      ack->height = msg->block->height;
      SendTo(from, ack);
    }
  }
  // Apply the leader's commit index.
  if (msg->commit_height > last_committed_height_) {
    const BlockPtr committed = store_.Get(msg->commit_hash);
    if (committed != nullptr) {
      CommitChain(committed, /*cert_wire_size=*/0);
    } else {
      RequestBlock(from, msg->commit_hash);
    }
  }
}

void RaftReplica::OnAck(NodeId from, const RaftAckMsg& msg) {
  if (role_ != Role::kLeader || msg.term != term_) {
    return;
  }
  auto it = pending_.find(msg.hash);
  if (it == pending_.end()) {
    return;
  }
  it->second.acks.insert(from);
  CritNote(0, JournalHash(msg.hash));
  if (it->second.acks.size() < quorum()) {
    return;
  }
  CritJoin(0, JournalHash(msg.hash));
  const BlockPtr block = it->second.block;
  pending_.erase(it);
  CommitChain(block, /*cert_wire_size=*/0);
  proposal_outstanding_ = false;
  TryPropose();
}

void RaftReplica::OnVoteReq(NodeId from, const RaftVoteReqMsg& msg) {
  if (msg.term <= term_ || msg.term <= voted_in_term_) {
    return;
  }
  // Election restriction (§5.4.1): grant only if the candidate's log is at least as
  // up-to-date as OUR LOG, comparing (term, height) of the log tails. Comparing against
  // the commit index instead lets a candidate that is missing acked-but-uncommitted
  // entries win and overwrite a quorum-replicated entry (a fork the chaos swarm found).
  if (msg.last_term < head_->view ||
      (msg.last_term == head_->view && msg.last_height < head_->height)) {
    // Adopt the newer term even when rejecting (§5.1): the candidate must not stay wedged
    // above a leader that never hears of its term.
    BecomeFollower(msg.term);
    return;
  }
  BecomeFollower(msg.term);
  voted_in_term_ = msg.term;
  PersistMeta();  // votedFor hits disk before the grant leaves the node.
  auto rsp = std::make_shared<RaftVoteRspMsg>();
  rsp->term = msg.term;
  rsp->granted = true;
  SendTo(from, rsp);
}

void RaftReplica::OnVoteRsp(NodeId from, const RaftVoteRspMsg& msg) {
  if (role_ != Role::kCandidate || msg.term != term_ || !msg.granted) {
    return;
  }
  votes_from_.insert(from);
  if (votes_from_.size() >= quorum()) {  // Majority of DISTINCT grantors: f+1 of 2f+1.
    BecomeLeader();
  }
}

void RaftReplica::OnBlocksSynced() {}

}  // namespace achilles
