#include "src/flexibft/replica.h"

#include <algorithm>

#include "src/common/serde.h"

namespace achilles {

namespace {
constexpr const char* kSeqKey = "flexibft-seq";
constexpr const char* kLogWal = "flexibft-log";
}  // namespace

std::optional<SignedCert> FlexiSequencer::Order(const Block& b, uint64_t seq,
                                                uint64_t epoch) {
  enclave_->ChargeEcall();
  if (epoch != epoch_ || seq != next_seq_) {
    return std::nullopt;
  }
  ++next_seq_;
  // The sequencer is the only counter-protected state in FlexiBFT: one write per block.
  MonotonicCounter& counter = enclave_->platform().counter();
  if (counter.spec().enabled()) {
    counter.IncrementBlocking();
  }
  PersistState();  // The (epoch, seq) burn hits disk before the certificate leaves.
  SignedCert cert;
  cert.hash = b.hash;
  cert.view = seq;
  cert.aux = epoch;
  enclave_->ChargeSign();
  const Bytes digest = cert.Digest(kFbOrder);
  cert.sig = enclave_->Sign(ByteView(digest.data(), digest.size()));
  return cert;
}

bool FlexiSequencer::StartEpoch(uint64_t epoch, uint64_t start_seq) {
  enclave_->ChargeEcall();
  if (epoch <= epoch_) {
    return false;
  }
  epoch_ = epoch;
  next_seq_ = start_seq;
  PersistState();  // Epoch adoption must survive a reboot (epochs only move forward).
  return true;
}

void FlexiSequencer::PersistState() {
  ByteWriter w;
  w.U64(epoch_);
  w.U64(next_seq_);
  w.U64(enclave_->platform().counter().value());
  meta_->Put(kSeqKey, ByteView(w.bytes().data(), w.bytes().size()));
}

void FlexiSequencer::Restore() {
  uint64_t persisted_counter = 0;
  if (const std::optional<Bytes> state = meta_->Get(kSeqKey)) {
    ByteReader r(ByteView(state->data(), state->size()));
    const auto epoch = r.U64();
    const auto next_seq = r.U64();
    const auto counter_at = r.U64();
    if (epoch && next_seq && counter_at && r.remaining() == 0) {
      epoch_ = *epoch;
      next_seq_ = *next_seq;
      persisted_counter = *counter_at;
    }
  }
  // The device counts every Order ever issued and survives anything the host disk can
  // suffer: a gap against the persisted mirror means orders happened after the record was
  // written, so the frontier skips past them rather than reissue a burned (epoch, seq).
  MonotonicCounter& counter = enclave_->platform().counter();
  if (counter.spec().enabled()) {
    const uint64_t device = counter.ReadBlocking();
    if (device > persisted_counter) {
      next_seq_ += device - persisted_counter;
    }
  }
}

FlexiBftReplica::FlexiBftReplica(const ReplicaContext& ctx, bool initial_launch)
    : ReplicaBase(ctx),
      initial_launch_(initial_launch),
      sequencer_(&enclave(), &HostRecords()) {
  // Backups keep no trusted state: a rebooted FlexiBFT node simply rejoins at the current
  // epoch (its quorum math tolerates rolled-back backups — the 3f+1 trade-off). Only the
  // leader-side sequencer frontier and its ordered-block log are durable.
  last_proposed_ = Block::Genesis();
  if (!initial_launch_) {
    // Stable checkpoint first: it sets the committed floor the log replay filters
    // against, and seeds the proposal chain when the whole log was compacted away.
    if (const BlockPtr snapshot = RestoreStableCheckpoint()) {
      last_proposed_ = snapshot;
    }
    RestoreDurableState();
  }
}

void FlexiBftReplica::RestoreDurableState() {
  sequencer_.Restore();
  epoch_ = sequencer_.epoch();
  // Replay the ordered-block log so a restored leader proposes on top of what it already
  // sequenced. Records at or past the sequence frontier were appended but never ordered
  // (Order() failed after the append) and are ignored.
  for (const Bytes& record : Wal(kLogWal).records()) {
    const BlockPtr block = DecodeBlockRecord(ByteView(record.data(), record.size()));
    if (block == nullptr || block->height >= sequencer_.next_seq() ||
        block->height <= last_committed_height_) {
      continue;  // Past the frontier, or subsumed by the restored checkpoint.
    }
    store_.Add(block);
    if (block->height > last_proposed_->height) {
      last_proposed_ = block;
    }
  }
}

void FlexiBftReplica::OnStart() {
  JournalEvent(obs::JournalKind::kViewEnter, epoch_);
  ArmViewTimer(epoch_, 0);
  if (LeaderOfEpoch(epoch_) == id()) {
    // Small self-kick loop: propose as soon as transactions exist.
    host().SetTimer(Ms(1), [this] { TryPropose(); });
  }
}

void FlexiBftReplica::HandleMessage(NodeId from, const MessageRef& msg) {
  if (auto propose = std::dynamic_pointer_cast<const FbProposeMsg>(msg)) {
    OnPropose(from, propose);
  } else if (auto vote = std::dynamic_pointer_cast<const FbVoteMsg>(msg)) {
    OnVote(*vote);
  } else if (auto ec = std::dynamic_pointer_cast<const FbEpochChangeMsg>(msg)) {
    OnEpochChange(from, *ec);
  }
}

void FlexiBftReplica::TryPropose() {
  if (LeaderOfEpoch(epoch_) != id()) {
    return;
  }
  if (proposal_outstanding_) {
    host().SetTimer(Ms(1), [this] { TryPropose(); });
    return;
  }
  std::vector<Transaction> batch = mempool_.TakeBatch(params().batch_size);
  ChargeExecute(batch.size());
  const BlockPtr block =
      Block::Create(/*view=*/epoch_, last_proposed_, std::move(batch), LocalNow());
  ChargeHashBytes(block->WireSize());
  // Log the block before ordering it: the sequencer's sync inside Order() makes both
  // durable in the same barrier, so the restored log can never lag the burned sequence
  // number. If Order() fails the orphan record stays below the frontier filter on replay.
  const Bytes record = EncodeBlockRecord(*block);
  Wal(kLogWal).Append(ByteView(record.data(), record.size()), storage::SyncMode::kAsync);
  const auto cert = sequencer_.Order(*block, block->height, epoch_);
  if (!cert) {
    host().SetTimer(Ms(1), [this] { TryPropose(); });
    return;
  }
  proposal_outstanding_ = true;
  last_proposed_ = block;
  store_.Add(block);
  MarkProposed(block);
  auto msg = std::make_shared<FbProposeMsg>();
  msg->block = block;
  msg->order_cert = *cert;
  BroadcastToReplicas(msg, /*include_self=*/true);
}

void FlexiBftReplica::OnPropose(NodeId from, const std::shared_ptr<const FbProposeMsg>& msg) {
  const uint64_t cert_epoch = msg->order_cert.aux;
  if (msg->block == nullptr || cert_epoch < epoch_ ||
      msg->order_cert.sig.signer != LeaderOfEpoch(cert_epoch) ||
      msg->order_cert.hash != msg->block->hash ||
      msg->order_cert.view != msg->block->height) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg->order_cert.Digest(kFbOrder);
  if (!platform().suite().Verify(msg->order_cert.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  if (cert_epoch > epoch_) {
    // Epoch fast-forward: a valid order certificate from the leader of a newer epoch is
    // proof the cluster moved on. This is how a rebooted backup — which by design keeps no
    // durable state — rejoins at the current epoch instead of timing out once per epoch.
    epoch_ = cert_epoch;
    consecutive_timeouts_ = 0;
    JournalEvent(obs::JournalKind::kViewEnter, epoch_);
    ArmViewTimer(epoch_, 0);
  }
  if (!AcceptBlock(msg->block)) {
    return;
  }
  if (!EnsureAncestry(msg->block->hash, from)) {
    return;  // Vote only for fully-available chains; leader will re-achieve quorum.
  }
  Candidate& cand = candidates_[msg->block->hash];
  cand.block = msg->block;
  if (cand.voted || msg->block->height <= last_voted_seq_) {
    return;
  }
  cand.voted = true;
  last_voted_seq_ = msg->block->height;
  consecutive_timeouts_ = 0;
  ArmViewTimer(epoch_, 0);

  SignedCert vote;
  vote.hash = msg->block->hash;
  vote.view = msg->block->height;
  vote.aux = epoch_;
  ChargeSignPlain();
  const Bytes vote_digest = vote.Digest(kFbVote);
  vote.sig = platform().suite().Sign(id(), ByteView(vote_digest.data(), vote_digest.size()));
  auto out = std::make_shared<FbVoteMsg>();
  out->vote = vote;
  BroadcastToReplicas(out, /*include_self=*/true);  // All-to-all: the O(n^2) term.
}

void FlexiBftReplica::OnVote(const FbVoteMsg& msg) {
  if (msg.vote.aux != epoch_) {
    return;
  }
  Candidate& cand = candidates_[msg.vote.hash];
  if (cand.committed) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.vote.Digest(kFbVote);
  if (!platform().suite().Verify(msg.vote.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  for (const Signature& existing : cand.votes) {
    if (existing.signer == msg.vote.sig.signer) {
      return;
    }
  }
  cand.votes.push_back(msg.vote.sig);
  CritNote(0, JournalHash(msg.vote.hash));
  TryCommit(msg.vote.hash);
}

void FlexiBftReplica::TryCommit(const Hash256& hash) {
  auto it = candidates_.find(hash);
  if (it == candidates_.end() || it->second.committed ||
      it->second.votes.size() < VoteQuorum() || it->second.block == nullptr) {
    return;
  }
  if (!EnsureAncestry(hash, LeaderOfEpoch(epoch_))) {
    return;
  }
  it->second.committed = true;
  CritJoin(0, JournalHash(hash));
  const size_t qc_wire = it->second.votes.size() * (4 + 64);
  const bool was_last_proposed = it->second.block == last_proposed_;
  CommitChain(it->second.block, qc_wire);
  consecutive_timeouts_ = 0;
  ArmViewTimer(epoch_, 0);
  // Drop finished candidates to keep long runs memory-stable.
  std::erase_if(candidates_, [this](const auto& entry) {
    return entry.second.block != nullptr &&
           entry.second.block->height + 8 < last_committed_height_;
  });
  if (LeaderOfEpoch(epoch_) == id() && was_last_proposed) {
    proposal_outstanding_ = false;
    TryPropose();
  }
}

void FlexiBftReplica::OnViewTimeout(View /*view*/) {
  // No commit progress: move to the next epoch and tell everyone our committed prefix.
  ++consecutive_timeouts_;
  ++epoch_;
  proposal_outstanding_ = false;
  candidates_.clear();
  last_voted_seq_ = last_committed_height_;
  ArmViewTimer(epoch_, consecutive_timeouts_);

  SignedCert cert;
  cert.hash = last_committed_hash_;
  cert.view = last_committed_height_;
  cert.aux = epoch_;
  ChargeSignPlain();
  const Bytes digest = cert.Digest(kFbEpoch);
  cert.sig = platform().suite().Sign(id(), ByteView(digest.data(), digest.size()));
  auto msg = std::make_shared<FbEpochChangeMsg>();
  msg->cert = cert;
  msg->committed_block = store_.Get(last_committed_hash_);
  BroadcastToReplicas(msg, /*include_self=*/true);
}

void FlexiBftReplica::OnEpochChange(NodeId /*from*/, const FbEpochChangeMsg& msg) {
  const uint64_t new_epoch = msg.cert.aux;
  if (new_epoch < epoch_ || LeaderOfEpoch(new_epoch) != id()) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.cert.Digest(kFbEpoch);
  if (!platform().suite().Verify(msg.cert.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  if (msg.committed_block != nullptr) {
    AcceptBlock(msg.committed_block);
  }
  auto& collected = epoch_msgs_[new_epoch];
  collected[msg.cert.sig.signer] = {msg.cert.view, msg.cert.hash};
  if (collected.size() < VoteQuorum()) {
    return;
  }
  // Become leader of new_epoch: resume from the highest committed block reported.
  Height best_height = last_committed_height_;
  Hash256 best_hash = last_committed_hash_;
  for (const auto& [node, hh] : collected) {
    if (hh.first > best_height) {
      best_height = hh.first;
      best_hash = hh.second;
    }
  }
  const BlockPtr base = store_.Get(best_hash);
  if (base == nullptr) {
    return;  // Need the block first; epoch messages keep arriving.
  }
  if (!sequencer_.StartEpoch(new_epoch, base->height + 1)) {
    return;
  }
  epoch_ = new_epoch;
  JournalEvent(obs::JournalKind::kViewEnter, epoch_);
  JournalEvent(obs::JournalKind::kLeaderElected, epoch_, id());
  last_proposed_ = base;
  proposal_outstanding_ = false;
  candidates_.clear();
  epoch_msgs_.erase(epoch_msgs_.begin(), epoch_msgs_.upper_bound(new_epoch));
  ArmViewTimer(epoch_, 0);
  TryPropose();
}

void FlexiBftReplica::OnStableCheckpoint(const checkpoint::CheckpointCert& cert) {
  ReplicaBase::OnStableCheckpoint(cert);
  // Compact the ordered-block log behind the certified boundary. The scan stops at the
  // first record beyond the boundary so later appends are never dropped.
  storage::WriteAheadLog& wal = Wal(kLogWal);
  size_t drop = 0;
  for (const Bytes& record : wal.records()) {
    const BlockPtr block = DecodeBlockRecord(ByteView(record.data(), record.size()));
    if (block != nullptr && block->height > cert.height) {
      break;
    }
    ++drop;
  }
  wal.TruncateFront(drop);
}

void FlexiBftReplica::OnBlocksSynced() {
  std::vector<Hash256> ready;
  for (const auto& [hash, cand] : candidates_) {
    if (!cand.committed && cand.votes.size() >= VoteQuorum()) {
      ready.push_back(hash);
    }
  }
  for (const Hash256& hash : ready) {
    TryCommit(hash);
  }
}

}  // namespace achilles
