// FlexiBFT baseline (Gupta et al., EuroSys'23): n = 3f+1, stable leader whose TEE orders
// blocks through a persistent-counter-protected sequencer (1 counter write per block,
// leader only), votes broadcast all-to-all (O(n^2) messages), commit in one vote round —
// four communication steps end to end. Backups keep no trusted state and may roll back:
// the enlarged 3f+1 quorum is what absorbs that (the tolerance-for-performance trade the
// Achilles paper breaks).
#ifndef SRC_FLEXIBFT_REPLICA_H_
#define SRC_FLEXIBFT_REPLICA_H_

#include <map>
#include <vector>

#include "src/consensus/certificates.h"
#include "src/consensus/replica_base.h"
#include "src/sim/process.h"

namespace achilles {

inline constexpr const char* kFbOrder = "flexibft/ORD";
inline constexpr const char* kFbVote = "flexibft/VOTE";
inline constexpr const char* kFbEpoch = "flexibft/EPOCH";

struct FbProposeMsg : SimMessage {
  const char* TraceName() const override { return "fb_propose"; }
  BlockPtr block;
  SignedCert order_cert;  // ⟨ORD, h, seq, epoch⟩ from the leader's TEE sequencer.
  size_t WireSize() const override { return block->WireSize() + order_cert.WireSize(); }
};

struct FbVoteMsg : SimMessage {
  const char* TraceName() const override { return "fb_vote"; }
  SignedCert vote;  // ⟨VOTE, h, seq, epoch⟩, broadcast to everyone.
  size_t WireSize() const override { return vote.WireSize(); }
};

struct FbEpochChangeMsg : SimMessage {
  const char* TraceName() const override { return "fb_epoch_change"; }
  SignedCert cert;   // ⟨EPOCH, committed_hash, committed_height, new_epoch⟩.
  BlockPtr committed_block;
  size_t WireSize() const override {
    return cert.WireSize() + (committed_block != nullptr ? committed_block->WireSize() : 0);
  }
};

// The leader-side trusted sequencer: one counter write per ordered block. Its (epoch,
// next_seq) frontier is the only FlexiBFT state that must survive a reboot: it goes to the
// host record store with an fsync inside every Order/StartEpoch, together with the counter
// device value at that instant. On reboot, any gap between the device (which counts every
// Order ever issued and cannot be lost) and the persisted mirror means orders happened
// after the record was written, and Restore() skips the sequence frontier past the gap —
// so no (epoch, seq) pair can ever be reissued for a different block, even if the host
// record is stale.
class FlexiSequencer {
 public:
  // `meta` is the host-durable persist::Store the (epoch, next_seq) frontier mirror lives
  // in (every Put is a sync put; the caller's WAL appends ride the same barrier).
  FlexiSequencer(EnclaveRuntime* enclave, persist::Store* meta)
      : enclave_(enclave), meta_(meta) {}

  // Orders `b` at `seq` within `epoch`; enforces gapless monotonic sequencing per epoch.
  std::optional<SignedCert> Order(const Block& b, uint64_t seq, uint64_t epoch);
  // Moves to a new epoch, continuing from `start_seq` (leadership hand-over).
  bool StartEpoch(uint64_t epoch, uint64_t start_seq);
  // Reboot path: reloads the persisted frontier and closes any gap against the counter
  // device. Charges one counter read when the device is enabled.
  void Restore();

  uint64_t epoch() const { return epoch_; }
  uint64_t next_seq() const { return next_seq_; }

 private:
  void PersistState();

  EnclaveRuntime* enclave_;
  persist::Store* meta_;
  uint64_t epoch_ = 0;
  uint64_t next_seq_ = 1;
};

class FlexiBftReplica : public ReplicaBase {
 public:
  FlexiBftReplica(const ReplicaContext& ctx, bool initial_launch);

  void OnStart() override;
  uint64_t epoch() const { return epoch_; }

  InvariantSnapshot Invariants() const override {
    InvariantSnapshot snap = ReplicaBase::Invariants();
    snap.view = epoch_;
    return snap;
  }

  // FlexiBFT's quorum is 2f+1 of 3f+1.
  size_t VoteQuorum() const { return 2 * static_cast<size_t>(f()) + 1; }

 protected:
  void HandleMessage(NodeId from, const MessageRef& msg) override;
  void OnViewTimeout(View view) override;
  void OnBlocksSynced() override;
  // Log compaction: drops the ordered-block log prefix a stable checkpoint subsumes.
  void OnStableCheckpoint(const checkpoint::CheckpointCert& cert) override;

 private:
  void OnPropose(NodeId from, const std::shared_ptr<const FbProposeMsg>& msg);
  void OnVote(const FbVoteMsg& msg);
  void OnEpochChange(NodeId from, const FbEpochChangeMsg& msg);
  void TryPropose();
  void TryCommit(const Hash256& hash);
  NodeId LeaderOfEpoch(uint64_t epoch) const { return static_cast<NodeId>(epoch % n()); }
  void RestoreDurableState();

  bool initial_launch_;
  FlexiSequencer sequencer_;
  uint64_t epoch_ = 0;
  uint32_t consecutive_timeouts_ = 0;

  // Leader state.
  BlockPtr last_proposed_;
  bool proposal_outstanding_ = false;

  // Voting/commit state.
  struct Candidate {
    BlockPtr block;
    std::vector<Signature> votes;
    bool committed = false;
    bool voted = false;
  };
  std::unordered_map<Hash256, Candidate, Hash256Hasher> candidates_;
  uint64_t last_voted_seq_ = 0;

  // Epoch change collection.
  std::map<uint64_t, std::map<NodeId, std::pair<Height, Hash256>>> epoch_msgs_;
  Height epoch_start_height_ = 0;
};

}  // namespace achilles

#endif  // SRC_FLEXIBFT_REPLICA_H_
