// Global experiment observer: audits safety across replicas and collects throughput and
// latency statistics. Lives outside the simulated machines (zero simulated cost).
#ifndef SRC_CONSENSUS_COMMIT_TRACKER_H_
#define SRC_CONSENSUS_COMMIT_TRACKER_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/consensus/block.h"
#include "src/consensus/metrics.h"
#include "src/obs/breakdown.h"
#include "src/obs/critpath.h"

namespace achilles {

class CommitTracker {
 public:
  explicit CommitTracker(uint32_t num_replicas);

  // Excludes a replica from the safety audit (its commits are adversary-controlled).
  void MarkByzantine(NodeId id) { byzantine_.insert(id); }

  // Application hook: invoked once per (replica, block) commit — this is how replicated
  // state machines consume the agreed sequence (see examples/replicated_kv.cc and
  // src/app/kv_service.h). SetCommitListener replaces every installed listener (legacy
  // single-consumer semantics); AddCommitListener appends, letting the chaos runner and
  // the KV app observe commits side by side.
  using CommitListener = std::function<void(NodeId, const BlockPtr&, SimTime)>;
  void SetCommitListener(CommitListener listener) {
    listeners_.clear();
    if (listener) {
      listeners_.push_back(std::move(listener));
    }
  }
  void AddCommitListener(CommitListener listener) {
    if (listener) {
      listeners_.push_back(std::move(listener));
    }
  }

  // Fires on every attributed proposal (ReplicaBase::MarkProposed), before any commit of
  // the block. The KV app uses it to pin the proposer's own in-flight writes.
  using ProposeListener = std::function<void(NodeId, const BlockPtr&)>;
  void AddProposeListener(ProposeListener listener) {
    if (listener) {
      propose_listeners_.push_back(std::move(listener));
    }
  }

  // Attribution sink for confirmed-block latency decomposition; measurement-window gating
  // happens here so attribution and the e2e recorder always agree.
  void SetBreakdown(obs::BreakdownAttributor* breakdown) { breakdown_ = breakdown; }
  // Critical-path sink: confirmed chains freeze their DAG frontier here, with the same
  // window gating and per-tx weighting as the breakdown attributor.
  void SetCritPath(obs::CritPathCollector* critpath) { critpath_ = critpath; }

  // --- Called by replicas / clients ---
  void OnPropose(const BlockPtr& block);
  // Attributed form used by ReplicaBase::MarkProposed: additionally records which replica
  // proposed the block, exposed via ProposerOf. Exact for every protocol (Raft's leader is
  // whoever won the election, not view % n, so LeaderOfView cannot substitute).
  void OnPropose(NodeId proposer, const BlockPtr& block);
  void OnCommit(NodeId replica, const BlockPtr& block, SimTime now);
  // First client-visible confirmation of a block (reply responsiveness: one valid reply).
  // `path` (optional) is the causal chain that delivered the confirming reply.
  void OnClientConfirm(const BlockPtr& block, SimTime now, const obs::Path* path = nullptr);

  // --- Measurement window ---
  void StartMeasurement(SimTime now);
  void EndMeasurement(SimTime now);
  double ThroughputTps() const;           // Committed txs per second inside the window.
  const LatencyRecorder& commit_latency() const { return commit_latency_; }
  const LatencyRecorder& e2e_latency() const { return e2e_latency_; }

  // --- Safety / liveness state ---
  bool safety_violated() const { return !violation_.empty(); }
  const std::string& violation() const { return violation_; }
  Height committed_height(NodeId replica) const;
  Height max_committed_height() const;
  uint64_t total_committed_blocks() const { return blocks_committed_; }
  uint64_t total_committed_txs() const { return txs_committed_total_; }
  // The committed hash at `height` (from the audit map); ZeroHash if none.
  Hash256 committed_hash_at(Height h) const;
  // The replica that proposed `hash` (from the attributed OnPropose); kNoProposer when the
  // block was never seen through MarkProposed (e.g. hand-built test blocks).
  static constexpr NodeId kNoProposer = ~NodeId{0};
  NodeId ProposerOf(const Hash256& hash) const;

 private:
  uint32_t num_replicas_;
  std::set<NodeId> byzantine_;

  std::unordered_map<Hash256, SimTime, Hash256Hasher> propose_times_;
  std::unordered_map<Hash256, NodeId, Hash256Hasher> proposer_of_;
  // Audit: agreed hash per height among correct replicas.
  std::map<Height, Hash256> height_to_hash_;
  // Per replica: highest committed height and set of committed hashes (for dedup).
  std::vector<Height> replica_height_;
  std::vector<std::unordered_set<Hash256, Hash256Hasher>> replica_committed_;
  // First-commit bookkeeping (global, correct replicas only).
  std::unordered_set<Hash256, Hash256Hasher> first_committed_;
  std::unordered_set<Hash256, Hash256Hasher> client_confirmed_;

  std::string violation_;
  std::vector<CommitListener> listeners_;
  std::vector<ProposeListener> propose_listeners_;
  obs::BreakdownAttributor* breakdown_ = nullptr;
  obs::CritPathCollector* critpath_ = nullptr;

  SimTime window_start_ = 0;
  SimTime window_end_ = -1;
  bool measuring_ = false;
  uint64_t txs_in_window_ = 0;
  uint64_t blocks_committed_ = 0;
  uint64_t txs_committed_total_ = 0;
  LatencyRecorder commit_latency_;
  LatencyRecorder e2e_latency_;
};

}  // namespace achilles

#endif  // SRC_CONSENSUS_COMMIT_TRACKER_H_
