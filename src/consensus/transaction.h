// Client transactions. Payload bytes are synthetic: only the size participates in wire and
// hashing cost models, so large runs stay memory-light.
#ifndef SRC_CONSENSUS_TRANSACTION_H_
#define SRC_CONSENSUS_TRANSACTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"

namespace achilles {

struct Transaction {
  uint64_t id = 0;           // (client id << 32) | sequence.
  SimTime submit_time = 0;   // Client creation time; basis of end-to-end latency.
  uint32_t payload_size = 0; // Bytes of application payload.
  // Application opcode interpreted by the replicated state machine (src/app/kv.h);
  // 0 = opaque payload (no state-machine effect). Part of the tx root, so block hashes
  // and exec digests cover it; on the wire it occupies the payload's first bytes.
  uint64_t op = 0;

  // Paper setup: each transaction carries 8 B metadata (client + transaction ids) on top of
  // the payload.
  size_t WireSize() const { return 8 + payload_size; }

  static uint64_t MakeId(uint32_t client, uint32_t seq) {
    return (static_cast<uint64_t>(client) << 32) | seq;
  }
};

size_t TotalWireSize(const std::vector<Transaction>& txs);

}  // namespace achilles

#endif  // SRC_CONSENSUS_TRANSACTION_H_
