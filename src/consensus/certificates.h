// Certificate building blocks. Every certificate in the paper is either a signed tuple
// ⟨KIND, h, v, aux...⟩_σ or a quorum of signatures over such a tuple; the concrete kinds and
// their rules live in the protocol modules, the canonical digests and containers live here.
#ifndef SRC_CONSENSUS_CERTIFICATES_H_
#define SRC_CONSENSUS_CERTIFICATES_H_

#include <string>
#include <vector>

#include "src/consensus/block.h"
#include "src/crypto/signer.h"

namespace achilles {

// Canonical digest for a signed tuple. `domain` provides protocol + message-kind
// separation (e.g. "achilles/PROP"); `aux`/`aux2` carry second views, ids, or nonces.
Bytes CertDigest(const std::string& domain, const Hash256& hash, View view, uint64_t aux = 0,
                 uint64_t aux2 = 0);

// A single-signer certificate ⟨KIND, h, v, aux, aux2⟩_σ.
struct SignedCert {
  Hash256 hash = ZeroHash();
  View view = 0;
  uint64_t aux = 0;
  uint64_t aux2 = 0;
  Signature sig;

  bool empty() const { return sig.empty(); }
  size_t WireSize() const { return 32 + 8 + 8 + 8 + sig.WireSize(); }

  Bytes Digest(const std::string& domain) const {
    return CertDigest(domain, hash, view, aux, aux2);
  }
};

// A quorum certificate ⟨KIND, h, v⟩_{σ...}: one tuple, many signers.
struct QuorumCert {
  Hash256 hash = ZeroHash();
  View view = 0;
  std::vector<Signature> sigs;

  bool empty() const { return sigs.empty(); }
  size_t WireSize() const;

  Bytes Digest(const std::string& domain) const { return CertDigest(domain, hash, view); }

  // All signatures valid over `domain`'s digest, signers distinct, at least `quorum` many.
  bool Verify(const CryptoSuite& suite, const std::string& domain, size_t quorum) const;
};

// Accumulator certificate ⟨ACC, h, v, v', ids⟩_σ. Compared to the paper we additionally bind
// the current view v' into the certificate so a stale accumulator cannot be replayed in a
// later view (Algorithm 2 checks "v == vi", which only type-checks if the accumulator's
// current view is carried; see DESIGN.md §4).
struct AccumulatorCert {
  Hash256 hash = ZeroHash();   // Hash of the selected parent block.
  View block_view = 0;         // View at which that block was produced.
  View current_view = 0;       // View the accumulator was produced for.
  std::vector<NodeId> ids;     // The f+1 contributors.
  Signature sig;

  bool empty() const { return sig.empty(); }
  size_t WireSize() const { return 32 + 8 + 8 + 4 * ids.size() + sig.WireSize(); }

  Bytes Digest(const std::string& domain) const;
};

}  // namespace achilles

#endif  // SRC_CONSENSUS_CERTIFICATES_H_
