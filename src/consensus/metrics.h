// Latency statistics per run. LatencyRecorder is a thin compatibility shim over
// obs::Histogram: recordings feed the fixed log-scale buckets (exported by the metrics
// registry / --json-out), while a raw sample vector is retained so the percentile API keeps
// the exact interpolated semantics the benches were calibrated against.
#ifndef SRC_CONSENSUS_METRICS_H_
#define SRC_CONSENSUS_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/obs/metrics.h"

namespace achilles {

class LatencyRecorder {
 public:
  void Record(SimDuration latency);
  void Reset();

  uint64_t count() const { return histogram_.count(); }
  double MeanMs() const;
  // p is clamped to [0, 100]; empty recorders report 0 for every statistic.
  double PercentileMs(double p) const;
  double MaxMs() const;

  // Bucketed view of the same samples (for registry snapshots and JSON export).
  const obs::Histogram& histogram() const { return histogram_; }

 private:
  obs::Histogram histogram_;
  mutable std::vector<SimDuration> samples_;
  mutable bool sorted_ = true;
};

}  // namespace achilles

#endif  // SRC_CONSENSUS_METRICS_H_
