// Latency statistics and per-run counters.
#ifndef SRC_CONSENSUS_METRICS_H_
#define SRC_CONSENSUS_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"

namespace achilles {

class LatencyRecorder {
 public:
  void Record(SimDuration latency);
  void Reset();

  uint64_t count() const { return samples_.size(); }
  double MeanMs() const;
  double PercentileMs(double p) const;  // p in [0, 100].
  double MaxMs() const;

 private:
  mutable std::vector<SimDuration> samples_;
  mutable bool sorted_ = true;
};

}  // namespace achilles

#endif  // SRC_CONSENSUS_METRICS_H_
