#include "src/consensus/certificates.h"

#include "src/common/serde.h"

namespace achilles {

Bytes CertDigest(const std::string& domain, const Hash256& hash, View view, uint64_t aux,
                 uint64_t aux2) {
  ByteWriter w;
  w.Str(domain);
  w.Raw(ByteView(hash.data(), hash.size()));
  w.U64(view);
  w.U64(aux);
  w.U64(aux2);
  return w.Take();
}

size_t QuorumCert::WireSize() const {
  size_t total = 32 + 8;
  for (const Signature& sig : sigs) {
    total += sig.WireSize();
  }
  return total;
}

bool QuorumCert::Verify(const CryptoSuite& suite, const std::string& domain,
                        size_t quorum) const {
  const Bytes digest = Digest(domain);
  return suite.VerifyQuorum(sigs, ByteView(digest.data(), digest.size()), quorum);
}

Bytes AccumulatorCert::Digest(const std::string& domain) const {
  ByteWriter w;
  w.Str(domain);
  w.Raw(ByteView(hash.data(), hash.size()));
  w.U64(block_view);
  w.U64(current_view);
  w.U32(static_cast<uint32_t>(ids.size()));
  for (NodeId id : ids) {
    w.U32(id);
  }
  return w.Take();
}

}  // namespace achilles
