#include "src/consensus/transaction.h"

namespace achilles {

size_t TotalWireSize(const std::vector<Transaction>& txs) {
  size_t total = 0;
  for (const Transaction& tx : txs) {
    total += tx.WireSize();
  }
  return total;
}

}  // namespace achilles
