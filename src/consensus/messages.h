// Messages shared by all protocols: client traffic and block synchronization.
#ifndef SRC_CONSENSUS_MESSAGES_H_
#define SRC_CONSENSUS_MESSAGES_H_

#include <vector>

#include "src/consensus/block.h"
#include "src/sim/process.h"

namespace achilles {

// Client -> replicas: a batch of fresh transactions.
struct ClientSubmitMsg : SimMessage {
  const char* TraceName() const override { return "client_submit"; }
  std::vector<Transaction> txs;

  size_t WireSize() const override { return 8 + TotalWireSize(txs); }
};

// Replica -> client: a committed block together with its commitment certificate (the client
// validates one reply — reply responsiveness).
struct ClientReplyMsg : SimMessage {
  const char* TraceName() const override { return "client_reply"; }
  BlockPtr block;
  size_t cert_wire_size = 0;

  size_t WireSize() const override { return block->WireSize() + cert_wire_size; }
};

// Block synchronization: pull a block (and unknown ancestors) from a peer.
struct BlockFetchRequest : SimMessage {
  const char* TraceName() const override { return "block_fetch_req"; }
  Hash256 want = ZeroHash();
  size_t WireSize() const override { return 32; }
};

struct BlockFetchResponse : SimMessage {
  const char* TraceName() const override { return "block_fetch_resp"; }
  std::vector<BlockPtr> blocks;  // Oldest first.
  size_t WireSize() const override {
    size_t total = 8;
    for (const BlockPtr& b : blocks) {
      total += b->WireSize();
    }
    return total;
  }
};

}  // namespace achilles

#endif  // SRC_CONSENSUS_MESSAGES_H_
