#include "src/consensus/metrics.h"

#include <algorithm>

namespace achilles {

void LatencyRecorder::Record(SimDuration latency) {
  histogram_.Record(latency);
  samples_.push_back(latency);
  sorted_ = false;
}

void LatencyRecorder::Reset() {
  histogram_.Reset();
  samples_.clear();
  sorted_ = true;
}

double LatencyRecorder::MeanMs() const {
  return histogram_.Mean() / kMillisecond;
}

double LatencyRecorder::PercentileMs(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  const double v = static_cast<double>(samples_[lo]) * (1.0 - frac) +
                   static_cast<double>(samples_[hi]) * frac;
  return v / kMillisecond;
}

double LatencyRecorder::MaxMs() const {
  return static_cast<double>(histogram_.max()) / kMillisecond;
}

}  // namespace achilles
