#include "src/consensus/commit_tracker.h"

#include <cstdio>

namespace achilles {

CommitTracker::CommitTracker(uint32_t num_replicas)
    : num_replicas_(num_replicas),
      replica_height_(num_replicas, 0),
      replica_committed_(num_replicas) {}

void CommitTracker::OnPropose(const BlockPtr& block) {
  propose_times_.emplace(block->hash, block->propose_time);
}

void CommitTracker::OnPropose(NodeId proposer, const BlockPtr& block) {
  proposer_of_.emplace(block->hash, proposer);
  OnPropose(block);
  for (const ProposeListener& listener : propose_listeners_) {
    listener(proposer, block);
  }
}

NodeId CommitTracker::ProposerOf(const Hash256& hash) const {
  auto it = proposer_of_.find(hash);
  return it == proposer_of_.end() ? kNoProposer : it->second;
}

void CommitTracker::OnCommit(NodeId replica, const BlockPtr& block, SimTime now) {
  if (replica >= num_replicas_ || byzantine_.count(replica) > 0) {
    return;
  }
  if (!replica_committed_[replica].insert(block->hash).second) {
    return;  // This replica already committed this block.
  }
  replica_height_[replica] = std::max(replica_height_[replica], block->height);
  for (const CommitListener& listener : listeners_) {
    listener(replica, block, now);
  }

  // Safety audit: two correct replicas must never commit different blocks at one height.
  auto [it, inserted] = height_to_hash_.emplace(block->height, block->hash);
  if (!inserted && it->second != block->hash && violation_.empty()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "safety violation at height %llu: replica %u committed %s, earlier commit was %s",
                  static_cast<unsigned long long>(block->height), replica,
                  HashAbbrev(block->hash).c_str(), HashAbbrev(it->second).c_str());
    violation_ = buf;
  }

  if (first_committed_.insert(block->hash).second) {
    ++blocks_committed_;
    txs_committed_total_ += block->txs.size();
    auto pt = propose_times_.find(block->hash);
    const bool in_window = measuring_ && (window_end_ < 0 || now <= window_end_);
    if (in_window && now >= window_start_) {
      txs_in_window_ += block->txs.size();
      if (pt != propose_times_.end()) {
        commit_latency_.Record(now - pt->second);
      }
    }
  }
}

void CommitTracker::OnClientConfirm(const BlockPtr& block, SimTime now,
                                    const obs::Path* path) {
  if (!client_confirmed_.insert(block->hash).second) {
    return;
  }
  const bool in_window = measuring_ && now >= window_start_ && (window_end_ < 0 || now <= window_end_);
  if (!in_window) {
    return;
  }
  int64_t submit_sum = 0;
  for (const Transaction& tx : block->txs) {
    e2e_latency_.Record(now - tx.submit_time);
    submit_sum += tx.submit_time;
  }
  // Attribution mirrors the e2e recorder exactly (same gating, same per-tx weighting), so
  // component means sum to the reported mean e2e latency.
  if (breakdown_ != nullptr && path != nullptr) {
    breakdown_->OnConfirm(*path, now, submit_sum, block->txs.size());
  }
  if (critpath_ != nullptr && critpath_->enabled() && path != nullptr) {
    critpath_->OnConfirm(path->activity, path->origin, block->height, now, submit_sum,
                         block->txs.size());
  }
}

void CommitTracker::StartMeasurement(SimTime now) {
  measuring_ = true;
  window_start_ = now;
  window_end_ = -1;
  txs_in_window_ = 0;
  commit_latency_.Reset();
  e2e_latency_.Reset();
  if (breakdown_ != nullptr) {
    breakdown_->Reset();
  }
  if (critpath_ != nullptr) {
    critpath_->ResetWindow();
  }
}

void CommitTracker::EndMeasurement(SimTime now) {
  window_end_ = now;
  measuring_ = false;
}

double CommitTracker::ThroughputTps() const {
  if (window_end_ <= window_start_) {
    return 0.0;
  }
  return static_cast<double>(txs_in_window_) /
         (static_cast<double>(window_end_ - window_start_) / kSecond);
}

Height CommitTracker::committed_height(NodeId replica) const {
  return replica < num_replicas_ ? replica_height_[replica] : 0;
}

Height CommitTracker::max_committed_height() const {
  Height best = 0;
  for (Height h : replica_height_) {
    best = std::max(best, h);
  }
  return best;
}

Hash256 CommitTracker::committed_hash_at(Height h) const {
  auto it = height_to_hash_.find(h);
  return it == height_to_hash_.end() ? ZeroHash() : it->second;
}

}  // namespace achilles
