#include "src/consensus/block.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/common/serde.h"

namespace achilles {

namespace {

Hash256 TxRoot(const std::vector<Transaction>& txs) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(txs.size()));
  for (const Transaction& tx : txs) {
    w.U64(tx.id);
    w.U64(tx.op);
    w.U32(tx.payload_size);
  }
  return Sha256Digest(ByteView(w.bytes().data(), w.bytes().size()));
}

Hash256 HeaderHash(View view, Height height, const Hash256& parent, const Hash256& tx_root,
                   const Hash256& exec_result) {
  ByteWriter w;
  w.Str("achilles-block");
  w.U64(view);
  w.U64(height);
  w.Raw(ByteView(parent.data(), parent.size()));
  w.Raw(ByteView(tx_root.data(), tx_root.size()));
  w.Raw(ByteView(exec_result.data(), exec_result.size()));
  return Sha256Digest(ByteView(w.bytes().data(), w.bytes().size()));
}

}  // namespace

size_t Block::WireSize() const {
  // view + height + parent + exec_result + hash + tx batch.
  return 8 + 8 + 32 + 32 + 32 + TotalWireSize(txs);
}

const BlockPtr& Block::Genesis() {
  static const BlockPtr genesis = [] {
    auto g = std::make_shared<Block>();
    g->view = 0;
    g->height = 0;
    g->parent = ZeroHash();
    g->exec_result = Sha256Digest(AsBytes("genesis-state"));
    g->hash = HeaderHash(0, 0, g->parent, TxRoot({}), g->exec_result);
    return g;
  }();
  return genesis;
}

BlockPtr Block::Create(View view, const BlockPtr& parent, std::vector<Transaction> txs,
                       SimTime propose_time) {
  ACHILLES_CHECK(parent != nullptr);
  auto b = std::make_shared<Block>();
  b->view = view;
  b->height = parent->height + 1;
  b->parent = parent->hash;
  b->txs = std::move(txs);
  const Hash256& tx_root = b->CachedTxRoot();  // Seeds the memo for later verifiers.
  b->exec_result = HashPair(parent->exec_result, tx_root);
  b->hash = HeaderHash(b->view, b->height, b->parent, tx_root, b->exec_result);
  b->propose_time = propose_time;
  return b;
}

Hash256 Block::ComputeExecResult(const Hash256& parent_exec,
                                 const std::vector<Transaction>& txs) {
  return HashPair(parent_exec, TxRoot(txs));
}

const Hash256& Block::CachedTxRoot() const {
  if (!tx_root_memo_set_) {
    tx_root_memo_ = TxRoot(txs);
    tx_root_memo_set_ = true;
  }
  return tx_root_memo_;
}

bool Block::ValidUnder(const Hash256& parent_exec) const {
  if (valid_memo_set_ && valid_memo_parent_ == parent_exec) {
    return valid_memo_ok_;
  }
  const Hash256& tx_root = CachedTxRoot();
  const bool ok = exec_result == HashPair(parent_exec, tx_root) &&
                  hash == HeaderHash(view, height, parent, tx_root, exec_result);
  valid_memo_parent_ = parent_exec;
  valid_memo_ok_ = ok;
  valid_memo_set_ = true;
  return ok;
}

Bytes EncodeBlockRecord(const Block& b) {
  ByteWriter w;
  w.U64(b.view);
  w.U64(b.height);
  w.Raw(ByteView(b.parent.data(), b.parent.size()));
  w.Raw(ByteView(b.exec_result.data(), b.exec_result.size()));
  w.Raw(ByteView(b.hash.data(), b.hash.size()));
  w.I64(b.propose_time);
  w.U32(static_cast<uint32_t>(b.txs.size()));
  for (const Transaction& tx : b.txs) {
    w.U64(tx.id);
    w.I64(tx.submit_time);
    w.U32(tx.payload_size);
    w.U64(tx.op);
  }
  return w.Take();
}

BlockPtr DecodeBlockRecord(ByteView record) {
  ByteReader r(record);
  const auto view = r.U64();
  const auto height = r.U64();
  const auto parent = r.Raw(32);
  const auto exec_result = r.Raw(32);
  const auto hash = r.Raw(32);
  const auto propose_time = r.I64();
  const auto count = r.U32();
  if (!view || !height || !parent || !exec_result || !hash || !propose_time || !count) {
    return nullptr;
  }
  auto b = std::make_shared<Block>();
  b->view = *view;
  b->height = *height;
  std::copy(parent->begin(), parent->end(), b->parent.begin());
  std::copy(exec_result->begin(), exec_result->end(), b->exec_result.begin());
  std::copy(hash->begin(), hash->end(), b->hash.begin());
  b->propose_time = *propose_time;
  b->txs.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    const auto id = r.U64();
    const auto submit_time = r.I64();
    const auto payload_size = r.U32();
    const auto op = r.U64();
    if (!id || !submit_time || !payload_size || !op) {
      return nullptr;
    }
    b->txs.push_back(Transaction{*id, *submit_time, *payload_size, *op});
  }
  if (r.remaining() != 0 ||
      b->hash !=
          HeaderHash(b->view, b->height, b->parent, b->CachedTxRoot(), b->exec_result)) {
    return nullptr;
  }
  return b;
}

BlockStore::BlockStore() { Add(Block::Genesis()); }

void BlockStore::Add(const BlockPtr& block) {
  ACHILLES_CHECK(block != nullptr);
  if (blocks_.emplace(block->hash, block).second) {
    approx_bytes_ += block->WireSize();
  }
}

BlockPtr BlockStore::Get(const Hash256& hash) const {
  auto it = blocks_.find(hash);
  return it == blocks_.end() ? nullptr : it->second;
}

bool BlockStore::HasFullAncestry(const Hash256& hash) const {
  BlockPtr cur = Get(hash);
  while (cur != nullptr) {
    if (cur->height == 0) {
      return true;
    }
    cur = Get(cur->parent);
  }
  return false;
}

bool BlockStore::Extends(const Hash256& descendant, const Hash256& ancestor) const {
  BlockPtr cur = Get(descendant);
  const BlockPtr anc = Get(ancestor);
  if (anc == nullptr) {
    return false;
  }
  while (cur != nullptr) {
    if (cur->hash == ancestor) {
      return true;
    }
    if (cur->height <= anc->height) {
      return false;
    }
    cur = Get(cur->parent);
  }
  return false;
}

void BlockStore::PruneBelow(Height keep_from) {
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->second->height != 0 && it->second->height < keep_from) {
      approx_bytes_ -= it->second->WireSize();
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<BlockPtr> BlockStore::PathBetween(const Hash256& from_exclusive,
                                              const Hash256& to) const {
  std::vector<BlockPtr> path;
  BlockPtr cur = Get(to);
  while (cur != nullptr && cur->hash != from_exclusive) {
    path.push_back(cur);
    if (cur->height == 0) {
      return {};  // Reached genesis without meeting `from_exclusive`.
    }
    cur = Get(cur->parent);
  }
  if (cur == nullptr) {
    return {};
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace achilles
