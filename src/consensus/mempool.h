// Pending-transaction pool with duplicate suppression across submissions and commits.
#ifndef SRC_CONSENSUS_MEMPOOL_H_
#define SRC_CONSENSUS_MEMPOOL_H_

#include <deque>
#include <vector>

#include "src/common/u64_set.h"
#include "src/consensus/transaction.h"

namespace achilles {

class Mempool {
 public:
  // Adds a transaction; duplicates (by id) of pending or already-committed txs are dropped.
  void Add(const Transaction& tx);
  void AddBatch(const std::vector<Transaction>& txs);

  // Removes and returns up to `max` transactions, FIFO.
  std::vector<Transaction> TakeBatch(size_t max);

  // Marks transactions as committed so re-submissions / stale proposals don't re-enter.
  void MarkCommitted(const std::vector<Transaction>& txs);

  size_t pending() const { return queue_.size(); }

 private:
  std::deque<Transaction> queue_;
  U64Set known_;      // Pending or committed ids.
  U64Set committed_;  // Committed ids.
};

}  // namespace achilles

#endif  // SRC_CONSENSUS_MEMPOOL_H_
