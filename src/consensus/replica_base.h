// Common machinery for every replica implementation: identity and quorum math, message
// sending with CPU cost accounting, the shared block store, chained commit + client replies,
// view timers (pacemaker), and block synchronization.
#ifndef SRC_CONSENSUS_REPLICA_BASE_H_
#define SRC_CONSENSUS_REPLICA_BASE_H_

#include <memory>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/consensus/commit_tracker.h"
#include "src/consensus/mempool.h"
#include "src/consensus/messages.h"
#include "src/sim/network.h"
#include "src/tee/enclave.h"

namespace achilles {

struct ProtocolParams {
  uint32_t n = 3;                       // Replica count.
  uint32_t f = 1;                       // Fault threshold.
  size_t batch_size = 400;              // Transactions per block.
  SimDuration base_timeout = Ms(500);   // Pacemaker initial view timeout.
  double timeout_multiplier = 2.0;      // Exponential back-off per consecutive timeout.
  SimDuration max_timeout = Sec(30);
  // NEW-VIEW optimization (§4.4): hand the commitment certificate straight to the next
  // leader instead of running the NEW-VIEW collection. Off only for the ablation bench.
  bool commit_fast_path = true;

  // --- Deliberately-broken variants (chaos-harness oracle self-tests ONLY) ---
  // Disables Achilles' recovery-reply nonce freshness check (checker and untrusted driver
  // alike): replies recorded during an earlier recovery round become acceptable again.
  bool break_recovery_nonce = false;
  // Disables the -R checkers' sealed-version == persistent-counter compare on restore:
  // stale sealed state is installed silently instead of crash-stopping.
  bool break_counter_compare = false;

  // Quorum used by the 2f+1 TEE protocols is f+1; FlexiBFT (3f+1) overrides with 2f+1.
  size_t quorum() const { return static_cast<size_t>(f) + 1; }
};

// Cross-protocol state digest polled by the chaos harness's oracles (src/chaos). Fields a
// protocol has no equivalent of keep their zero defaults.
struct InvariantSnapshot {
  View view = 0;                 // Trusted/pacemaker view (Raft term, MinBFT/FlexiBFT epoch).
  Height committed_height = 0;   // Committed-prefix head.
  Hash256 committed_hash{};
  uint64_t counter_value = 0;    // Persistent monotonic counter reading (0 when disabled).
  uint64_t trusted_version = 0;  // Sealed trusted-state version (0 = protocol keeps none).
  bool recovering = false;       // Achilles: recovery (Algorithm 3) still in flight.
  bool halted = false;           // -R variants: crash-stopped after detecting a rollback.
};

// Sink for application-level traffic riding on the replica's host (read requests, lease
// grants — src/app/kv_service.h). ReplicaBase::OnMessage offers every inbound message here
// first; a sink consumes the types it owns and returns false for consensus traffic. Lives
// outside the simulated machine (the per-replica state it keeps is keyed by replica id),
// so one sink serves a whole cluster.
class AppMessageSink {
 public:
  virtual ~AppMessageSink() = default;
  // `from_host` is the raw sending host id (clients included). Returns true iff consumed.
  virtual bool OnAppMessage(NodeId replica, uint32_t from_host, const MessageRef& msg) = 0;
};

struct ReplicaContext {
  NodePlatform* platform = nullptr;
  Network* net = nullptr;
  CommitTracker* tracker = nullptr;
  AppMessageSink* app = nullptr;  // Optional replicated-app message sink.
  ProtocolParams params;
  checkpoint::CheckpointOptions ckpt;  // Checkpointing/log-compaction knobs (off by default).
  std::vector<uint32_t> client_ids;  // Hosts to send ClientReplyMsg to.
  // Host id of each replica index. Empty = identity (replica i lives on host i), which is
  // the normal Cluster layout; the concurrent-instances extension offsets hosts.
  std::vector<uint32_t> replica_hosts;
};

class ReplicaBase : public IProcess {
 public:
  explicit ReplicaBase(const ReplicaContext& ctx);

  // IProcess: charges the per-message handling cost, serves block-sync and client-submit
  // traffic, then dispatches to the protocol.
  void OnMessage(uint32_t from, const MessageRef& msg) final;

  // Read-side accessors used by the harness.
  Height last_committed_height() const { return last_committed_height_; }
  const BlockStore& store() const { return store_; }
  size_t mempool_pending() const { return mempool_.pending(); }

  // Invariant digest for the chaos oracles. The base fills the committed prefix and the
  // platform counter; each protocol overrides to add its trusted view/version/fault state.
  virtual InvariantSnapshot Invariants() const;

  // --- Checkpointing / snapshot state transfer (src/checkpoint) ---
  // Highest stable-checkpoint height this incarnation can prove locally: the sealed
  // certificate read at boot, raised by every checkpoint persisted or adopted since. An
  // honest replica never accepts a snapshot below this floor.
  Height checkpoint_floor() const { return ckpt_floor_; }
  // Reboot path (protocol constructors, before any WAL replay): reads the host snapshot
  // payload and the sealed certificate, validates digest + freshness, and on success
  // installs the checkpoint as the committed prefix. A stale/erased/corrupt snapshot — or a
  // snapshot that disagrees with the sealed certificate — is rejected (journals
  // kRollbackReject) and the replica falls back to network state transfer. Returns the
  // restored block, or nullptr.
  BlockPtr RestoreStableCheckpoint();
  // Persists a freshly assembled stable checkpoint: snapshot payload host-durable, the
  // certificate TEE-sealed (host-durable outside a TEE), then OnStableCheckpoint truncates
  // logs behind it. Runs inside this replica's handler context (fsync/seal costs charged
  // here). Called by the CheckpointManager.
  void PersistStableCheckpoint(const checkpoint::CheckpointCert& cert, const BlockPtr& block);
  // Network state transfer: installs a fetched, verified snapshot as the committed prefix
  // (AdoptCheckpoint + floor bump + OnCheckpointAdopted head fix-up). `allow_regress` is
  // the deliberately-broken stale-snapshot-accept path: it force-installs a snapshot BELOW
  // the current committed prefix, which honest verification forbids.
  void AdoptStateTransfer(const BlockPtr& block, size_t cert_wire_size, bool allow_regress);

 protected:
  virtual void HandleMessage(NodeId from, const MessageRef& msg) = 0;
  // Pacemaker expiry for the view armed via ArmViewTimer.
  virtual void OnViewTimeout(View /*view*/) {}
  // A previously missing block (and its ancestors) became available.
  virtual void OnBlocksSynced() {}
  // A stable checkpoint was just persisted locally. The base truncates the in-memory block
  // store behind it (minus the catch-up slack still served to backfilling peers); protocols
  // with durable logs override to also truncate their WAL prefix (charged as fsync).
  virtual void OnStableCheckpoint(const checkpoint::CheckpointCert& cert);
  // A snapshot was adopted via state transfer; protocols that keep a log-head pointer
  // (Raft) override to advance it past the adopted block.
  virtual void OnCheckpointAdopted(const BlockPtr& /*block*/) {}
  // Where the checkpoint certificate lives: the rollback-defense backend's record facet
  // (src/storage/defense.h). Under the local backend that is the historical dispatch —
  // TEE sealing surface when the platform has one, host record store otherwise (baselines
  // without a TEE cannot detect snapshot rollback — see the README threat-model table);
  // the quorum backends add their own freshness guarantee to the certificate.
  persist::Store& CheckpointCertStore();

  // --- Host-durable persistence seam (satellite of the backend API redesign) ---
  // Protocol modules reach the per-node disk only through these two handles (plus the
  // persist::Store handles above), never through HostStableStorage directly; persistence
  // semantics stay greppable at the persist:: seam.
  storage::WriteAheadLog& Wal(const std::string& name);
  // Host-durable metadata records (persist::Durability::kHostDurable). Put is a sync put;
  // PutAsync buys the torn-tail window deliberately.
  persist::Store& HostRecords();

  NodeId id() const { return ctx_.platform->node_id(); }
  uint32_t n() const { return ctx_.params.n; }
  uint32_t f() const { return ctx_.params.f; }
  size_t quorum() const { return ctx_.params.quorum(); }
  NodeId LeaderOf(View v) const { return LeaderOfView(v, ctx_.params.n); }
  Host& host() { return ctx_.platform->host(); }
  EnclaveRuntime& enclave() { return *enclave_; }
  NodePlatform& platform() { return *ctx_.platform; }
  CommitTracker& tracker() { return *ctx_.tracker; }
  const ProtocolParams& params() const { return ctx_.params; }
  SimTime LocalNow() const { return ctx_.platform->host().LocalNow(); }

  // --- Messaging (wire cost via Network; CPU charge is the sender's handler charge) ---
  // `to` below params.n addresses a replica (translated to its host); higher values are
  // raw host ids (clients).
  void SendTo(NodeId to, MessageRef msg) {
    ctx_.net->Send(HostOf(id()), to < ctx_.params.n ? HostOf(to) : to, std::move(msg));
  }
  void BroadcastToReplicas(const MessageRef& msg, bool include_self);
  // Replica index <-> host id mapping (identity in the standard layout).
  uint32_t HostOf(NodeId replica) const {
    return ctx_.replica_hosts.empty() ? replica : ctx_.replica_hosts[replica];
  }
  NodeId ReplicaOfHost(uint32_t host) const;

  // --- Cost charging helpers ---
  void ChargeHashBytes(size_t bytes) { enclave_->ChargeHash(bytes); }
  void ChargeExecute(size_t tx_count);
  // Untrusted-side verification (outside the enclave, no TEE factor).
  void ChargeVerifyPlain(size_t count);
  // `count` signatures over one message (quorum certificate): batched cost when cheaper.
  void ChargeVerifyBatch(size_t count);
  void ChargeSignPlain();

  // --- Observability ---
  // Announces a freshly built proposal: informs the tracker and restarts the latency
  // attribution path at the block's propose time, making this block the origin of every
  // chain that flows out of the proposal (src/obs/breakdown.h). Protocols call this once
  // per block they create, right after Block::Create.
  void MarkProposed(const BlockPtr& block);
  // Emits a trace instant on this replica's track (no virtual-time cost).
  void TraceInstant(const char* name, uint64_t arg = 0);
  // Records a flight-recorder event on this replica's host track (src/obs/journal.h),
  // parented to the running handler's causal context. Zero virtual-time cost; returns the
  // journal seq (0 when journaling is off). Protocols call this at every state transition
  // (view/epoch/term change, leader change, lock update, recovery phase).
  uint64_t JournalEvent(obs::JournalKind kind, uint64_t a = 0, uint64_t b = 0,
                        std::string detail = {});
  // Compact block identity for journal payloads: the hash's first 8 bytes, big-endian.
  static uint64_t JournalHash(const Hash256& hash);
  // Critical-path quorum bookkeeping (src/obs/critpath.h). CritNote marks the running
  // handler as carrying one input of quorum instance (`tag`, `instance`) — call it right
  // after adding a vote to a quorum set. CritJoin attaches every noted input to the
  // running handler — call it where the quorum check passes, so the what-if engine knows
  // commit progress waits on the whole vote set, not just the chain that happened to
  // arrive last. Zero virtual-time cost; no-ops when collection is off.
  void CritNote(uint32_t tag, uint64_t instance);
  void CritJoin(uint32_t tag, uint64_t instance);

  // --- Chained commit (commits `block` and all uncommitted ancestors, oldest first) ---
  // Informs the tracker, marks the mempool, replies to clients with `cert_wire_size`. If
  // the chain between the committed prefix and `block` is not locally available (deep lag,
  // pruned peers), the certified block is adopted as a checkpoint instead: state transfer
  // rather than replay. Returns true iff the committed height advanced to block->height.
  bool CommitChain(const BlockPtr& block, size_t cert_wire_size);

  // Installs `block` as the committed prefix without replaying ancestors. Only valid for
  // blocks whose commitment is certified (f+1 store certificates).
  void AdoptCheckpoint(const BlockPtr& block, size_t cert_wire_size);

  // True iff every parent link from `hash` down to the committed prefix is present — the
  // paper's block-availability rule, bounded by finality (no need to reach genesis).
  bool HaveChainAboveCommitted(const Hash256& hash) const;

  // Ensures the uncommitted ancestry of `target` is present; if a link is missing, requests
  // the deepest missing ancestor from `peer` and returns false. Each fetch round makes
  // strict progress, so repeated calls converge.
  bool EnsureAncestry(const Hash256& target, NodeId peer);

  // --- Pacemaker ---
  // Arms (or re-arms) the single view timer for `view`, with exponential back-off driven by
  // `consecutive_timeouts`. OnViewTimeout(view) fires unless re-armed or cancelled.
  void ArmViewTimer(View view, uint32_t consecutive_timeouts);
  void CancelViewTimer();

  // --- Block sync ---
  // Requests `want` (and transitively its ancestors) from `from_peer`.
  void RequestBlock(NodeId from_peer, const Hash256& want);
  // Adds a validated incoming block to the store (checks hash/exec integrity).
  bool AcceptBlock(const BlockPtr& block);

  // Protocols where only the leader answers clients (Raft) can turn replies off.
  void set_client_replies_enabled(bool enabled) { client_replies_enabled_ = enabled; }

  Mempool mempool_;
  BlockStore store_;
  Height last_committed_height_ = 0;
  Hash256 last_committed_hash_;
  Height ckpt_floor_ = 0;            // See checkpoint_floor().
  Height last_persisted_ckpt_ = 0;   // Dedup guard for PersistStableCheckpoint.

 private:
  void HandleFetchRequest(NodeId from, const BlockFetchRequest& req);
  void HandleFetchResponse(const BlockFetchResponse& resp);

  ReplicaContext ctx_;
  std::unique_ptr<EnclaveRuntime> enclave_;
  uint64_t view_timer_ = 0;
  bool view_timer_armed_ = false;
  bool client_replies_enabled_ = true;
};

}  // namespace achilles

#endif  // SRC_CONSENSUS_REPLICA_BASE_H_
