#include "src/consensus/mempool.h"

namespace achilles {

void Mempool::Add(const Transaction& tx) {
  if (!known_.Insert(tx.id)) {
    return;
  }
  queue_.push_back(tx);
}

void Mempool::AddBatch(const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    Add(tx);
  }
}

std::vector<Transaction> Mempool::TakeBatch(size_t max) {
  std::vector<Transaction> batch;
  batch.reserve(std::min(max, queue_.size()));
  while (batch.size() < max && !queue_.empty()) {
    Transaction tx = queue_.front();
    queue_.pop_front();
    if (committed_.Contains(tx.id)) {
      continue;  // Committed while queued.
    }
    batch.push_back(tx);
  }
  return batch;
}

void Mempool::MarkCommitted(const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    committed_.Insert(tx.id);
    known_.Insert(tx.id);
  }
}

}  // namespace achilles
