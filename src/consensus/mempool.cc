#include "src/consensus/mempool.h"

namespace achilles {

void Mempool::Add(const Transaction& tx) {
  if (!known_.insert(tx.id).second) {
    return;
  }
  queue_.push_back(tx);
}

void Mempool::AddBatch(const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    Add(tx);
  }
}

std::vector<Transaction> Mempool::TakeBatch(size_t max) {
  std::vector<Transaction> batch;
  batch.reserve(std::min(max, queue_.size()));
  while (batch.size() < max && !queue_.empty()) {
    Transaction tx = queue_.front();
    queue_.pop_front();
    if (committed_.count(tx.id) > 0) {
      continue;  // Committed while queued.
    }
    batch.push_back(tx);
  }
  return batch;
}

void Mempool::MarkCommitted(const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    committed_.insert(tx.id);
    known_.insert(tx.id);
  }
}

}  // namespace achilles
