// Core identifier types shared by every protocol implementation.
#ifndef SRC_CONSENSUS_TYPES_H_
#define SRC_CONSENSUS_TYPES_H_

#include <cstdint>

namespace achilles {

using NodeId = uint32_t;
using View = uint64_t;
using Height = uint64_t;

constexpr NodeId kNoNode = UINT32_MAX;

// Round-robin leader schedule used by all rotating-leader protocols here.
constexpr NodeId LeaderOfView(View v, uint32_t n) { return static_cast<NodeId>(v % n); }

}  // namespace achilles

#endif  // SRC_CONSENSUS_TYPES_H_
