#include "src/consensus/replica_base.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace achilles {

ReplicaBase::ReplicaBase(const ReplicaContext& ctx)
    : ctx_(ctx), enclave_(std::make_unique<EnclaveRuntime>(ctx.platform)) {
  last_committed_hash_ = Block::Genesis()->hash;
}

InvariantSnapshot ReplicaBase::Invariants() const {
  InvariantSnapshot snap;
  snap.committed_height = last_committed_height_;
  snap.committed_hash = last_committed_hash_;
  snap.counter_value = ctx_.platform->counter().value();
  return snap;
}

NodeId ReplicaBase::ReplicaOfHost(uint32_t host) const {
  if (ctx_.replica_hosts.empty()) {
    return host;
  }
  for (NodeId r = 0; r < ctx_.replica_hosts.size(); ++r) {
    if (ctx_.replica_hosts[r] == host) {
      return r;
    }
  }
  return kNoNode;
}

void ReplicaBase::OnMessage(uint32_t from, const MessageRef& msg) {
  host().ChargeCpu(ctx_.platform->costs().per_msg_handling);

  if (auto submit = std::dynamic_pointer_cast<const ClientSubmitMsg>(msg)) {
    ChargeHashBytes(submit->WireSize());
    mempool_.AddBatch(submit->txs);
    return;
  }
  // Application traffic (KV reads, lease control) is consumed before protocol dispatch;
  // the sink ignores consensus message types.
  if (ctx_.app != nullptr && ctx_.app->OnAppMessage(id(), from, msg)) {
    return;
  }
  // Protocol handlers and block sync see replica indices, not host ids.
  const NodeId from_replica = ReplicaOfHost(from);
  if (auto req = std::dynamic_pointer_cast<const BlockFetchRequest>(msg)) {
    if (from_replica != kNoNode) {
      HandleFetchRequest(from_replica, *req);
    }
    return;
  }
  if (auto resp = std::dynamic_pointer_cast<const BlockFetchResponse>(msg)) {
    HandleFetchResponse(*resp);
    return;
  }
  if (from_replica != kNoNode) {
    HandleMessage(from_replica, msg);
  }
}

void ReplicaBase::BroadcastToReplicas(const MessageRef& msg, bool include_self) {
  for (uint32_t r = 0; r < ctx_.params.n; ++r) {
    if (!include_self && r == id()) {
      continue;
    }
    ctx_.net->Send(HostOf(id()), HostOf(r), msg);
  }
}

void ReplicaBase::ChargeExecute(size_t tx_count) {
  host().ChargeCpu(static_cast<SimDuration>(tx_count) * ctx_.platform->costs().per_tx_execute);
}

void ReplicaBase::ChargeVerifyPlain(size_t count) {
  host().ChargeCpuAs(obs::Component::kCrypto,
                     static_cast<SimDuration>(count) * ctx_.platform->costs().verify);
}

void ReplicaBase::ChargeVerifyBatch(size_t count) {
  host().ChargeCpuAs(obs::Component::kCrypto,
                     ctx_.platform->costs().BatchVerifyCost(count));
}

void ReplicaBase::ChargeSignPlain() {
  host().ChargeCpuAs(obs::Component::kCrypto, ctx_.platform->costs().sign);
}

void ReplicaBase::MarkProposed(const BlockPtr& block) {
  tracker().OnPropose(id(), block);
  host().RestartPathAt(block->propose_time);
  TraceInstant("propose", block->height);
  JournalEvent(obs::JournalKind::kPropose, block->height, block->view);
}

void ReplicaBase::TraceInstant(const char* name, uint64_t arg) {
  obs::SpanTracer* tracer = host().tracer();
  if (tracer != nullptr && tracer->enabled()) {
    tracer->Instant(name, host().id(), LocalNow(), host().current_span(), arg);
  }
}

uint64_t ReplicaBase::JournalEvent(obs::JournalKind kind, uint64_t a, uint64_t b,
                                   std::string detail) {
  return host().JournalEvent(kind, a, b, std::move(detail));
}

uint64_t ReplicaBase::JournalHash(const Hash256& hash) {
  uint64_t h = 0;
  for (size_t i = 0; i < 8; ++i) {
    h = (h << 8) | hash[i];
  }
  return h;
}

namespace {
// Quorum-instance key: replica x phase tag x instance (height or block-hash prefix).
// Replica and tag fold into the top bits so instances never collide across collectors.
uint64_t CritKey(NodeId node, uint32_t tag, uint64_t instance) {
  return (static_cast<uint64_t>(node) << 48) ^ (static_cast<uint64_t>(tag) << 40) ^
         instance;
}
}  // namespace

void ReplicaBase::CritNote(uint32_t tag, uint64_t instance) {
  obs::CritPathCollector* cp = host().critpath();
  if (cp != nullptr && cp->enabled()) {
    cp->NoteInput(CritKey(id(), tag, instance), host().current_activity(), LocalNow());
  }
}

void ReplicaBase::CritJoin(uint32_t tag, uint64_t instance) {
  obs::CritPathCollector* cp = host().critpath();
  if (cp != nullptr && cp->enabled()) {
    cp->JoinInputs(CritKey(id(), tag, instance), host().current_activity(), LocalNow());
  }
}

namespace {
// Retention below the committed prefix: enough to serve lagging peers' fetches, small
// enough to keep long runs memory-stable.
constexpr Height kPruneWindow = 128;
}  // namespace

bool ReplicaBase::CommitChain(const BlockPtr& block, size_t cert_wire_size) {
  ACHILLES_CHECK(block != nullptr);
  if (block->height <= last_committed_height_) {
    return true;  // Already covered by the committed prefix.
  }
  // Chained commit rule: committing a block commits every uncommitted ancestor first.
  const std::vector<BlockPtr> path = store_.PathBetween(last_committed_hash_, block->hash);
  if (path.empty()) {
    // The chain between the committed prefix and the certified block is unavailable
    // (recovered checkpoint or peers pruned the gap): state-transfer to the block.
    AdoptCheckpoint(block, cert_wire_size);
    return true;
  }
  for (const BlockPtr& b : path) {
    ChargeExecute(b->txs.size());
    mempool_.MarkCommitted(b->txs);
    last_committed_height_ = b->height;
    last_committed_hash_ = b->hash;
    tracker().OnCommit(id(), b, LocalNow());
    TraceInstant("commit", b->height);
    JournalEvent(obs::JournalKind::kCommit, b->height, JournalHash(b->hash));
    if (client_replies_enabled_) {
      for (uint32_t client : ctx_.client_ids) {
        auto reply = std::make_shared<ClientReplyMsg>();
        reply->block = b;
        reply->cert_wire_size = cert_wire_size;
        SendTo(client, reply);
      }
    }
  }
  if (last_committed_height_ > kPruneWindow &&
      last_committed_height_ % (kPruneWindow / 2) == 0) {
    store_.PruneBelow(last_committed_height_ - kPruneWindow);
  }
  return true;
}

void ReplicaBase::AdoptCheckpoint(const BlockPtr& block, size_t cert_wire_size) {
  ACHILLES_CHECK(block != nullptr);
  if (block->height <= last_committed_height_) {
    return;
  }
  store_.Add(block);
  mempool_.MarkCommitted(block->txs);
  last_committed_height_ = block->height;
  last_committed_hash_ = block->hash;
  tracker().OnCommit(id(), block, LocalNow());
  TraceInstant("adopt_checkpoint", block->height);
  JournalEvent(obs::JournalKind::kCheckpoint, block->height, JournalHash(block->hash));
  if (client_replies_enabled_) {
    for (uint32_t client : ctx_.client_ids) {
      auto reply = std::make_shared<ClientReplyMsg>();
      reply->block = block;
      reply->cert_wire_size = cert_wire_size;
      SendTo(client, reply);
    }
  }
}

persist::Store& ReplicaBase::CheckpointCertStore() {
  // The local backend's store() is the historical dispatch (sealed in a TEE, host record
  // store otherwise); the quorum backends route the certificate through the defended
  // Persist/Open path, so the checkpoint floor inherits their freshness guarantee.
  return enclave_->defense().store();
}

storage::WriteAheadLog& ReplicaBase::Wal(const std::string& name) {
  return ctx_.platform->host_storage().Wal(name);
}

persist::Store& ReplicaBase::HostRecords() {
  return ctx_.platform->host_storage().record_store();
}

BlockPtr ReplicaBase::RestoreStableCheckpoint() {
  if (!ctx_.ckpt.enabled) {
    return nullptr;
  }
  // The sealed certificate is the local rollback-detection floor, independent of whether
  // the (much larger) host snapshot survived.
  std::optional<checkpoint::CheckpointCert> sealed_cert;
  if (std::optional<Bytes> cert_wire = CheckpointCertStore().Get(checkpoint::kCertKey)) {
    sealed_cert =
        checkpoint::CheckpointCert::Decode(ByteView(cert_wire->data(), cert_wire->size()));
  }
  if (sealed_cert) {
    ckpt_floor_ = sealed_cert->height;
    last_persisted_ckpt_ = sealed_cert->height;
  }
  std::optional<Bytes> payload = HostRecords().Get(checkpoint::kSnapshotKey);
  if (!payload) {
    return nullptr;  // No snapshot (never checkpointed, or erased): network transfer.
  }
  checkpoint::CheckpointCert cert;
  BlockPtr block;
  if (!checkpoint::DecodeSnapshotRecord(ByteView(payload->data(), payload->size()), &cert,
                                        &block) ||
      block->hash != cert.block_hash || checkpoint::CheckpointDigest(*block) != cert.digest) {
    JournalEvent(obs::JournalKind::kRollbackReject, 0, ckpt_floor_, "ckpt/corrupt-snapshot");
    return nullptr;
  }
  // Freshness: the snapshot must match the sealed certificate exactly. A rolled-back or
  // erased certificate under a newer snapshot — or a resurrected old snapshot under an
  // intact certificate — is detected here like any other stale sealed blob.
  if (!sealed_cert || sealed_cert->height != cert.height ||
      sealed_cert->digest != cert.digest) {
    JournalEvent(obs::JournalKind::kRollbackReject, cert.height, ckpt_floor_,
                 "ckpt/stale-snapshot");
    return nullptr;
  }
  store_.Add(block);
  last_committed_height_ = block->height;
  last_committed_hash_ = block->hash;
  return block;
}

void ReplicaBase::PersistStableCheckpoint(const checkpoint::CheckpointCert& cert,
                                          const BlockPtr& block) {
  ACHILLES_CHECK(block != nullptr);
  if (!ctx_.ckpt.enabled || cert.height <= last_persisted_ckpt_) {
    return;
  }
  last_persisted_ckpt_ = cert.height;
  ckpt_floor_ = std::max(ckpt_floor_, cert.height);
  const Bytes payload = checkpoint::EncodeSnapshotRecord(cert, *block);
  ChargeHashBytes(payload.size());
  // Snapshot payload: host-durable (the record-store put is a sync put — one fsync).
  HostRecords().Put(checkpoint::kSnapshotKey, ByteView(payload.data(), payload.size()));
  // Certificate: TEE-sealed where available, so snapshot rollback is detectable on reboot.
  const Bytes cert_wire = cert.Encode();
  CheckpointCertStore().Put(checkpoint::kCertKey, ByteView(cert_wire.data(), cert_wire.size()));
  JournalEvent(obs::JournalKind::kCheckpointStable, cert.height, cert.sigs.size());
  OnStableCheckpoint(cert);
}

void ReplicaBase::OnStableCheckpoint(const checkpoint::CheckpointCert& cert) {
  // Truncate the in-memory block log behind the stable checkpoint, keeping the catch-up
  // slack: peers fewer than catchup_intervals * interval blocks behind still backfill via
  // block fetch, anything deeper goes through snapshot transfer instead.
  const Height slack =
      ctx_.ckpt.interval * static_cast<Height>(std::max<uint32_t>(1, ctx_.ckpt.catchup_intervals));
  if (cert.height > slack) {
    store_.PruneBelow(cert.height - slack);
  }
}

void ReplicaBase::AdoptStateTransfer(const BlockPtr& block, size_t cert_wire_size,
                                     bool allow_regress) {
  ACHILLES_CHECK(block != nullptr);
  if (block->height <= last_committed_height_) {
    if (!allow_regress) {
      return;
    }
    // Broken self-test path (--broken stale-snapshot-accept): install a stale snapshot OVER
    // a fresher committed prefix — the regression the honest floor/height checks forbid.
    store_.Add(block);
    last_committed_height_ = block->height;
    last_committed_hash_ = block->hash;
    JournalEvent(obs::JournalKind::kSnapshotFetch, block->height, JournalHash(block->hash),
                 "adopt-stale");
    OnCheckpointAdopted(block);
    return;
  }
  AdoptCheckpoint(block, cert_wire_size);
  ckpt_floor_ = std::max(ckpt_floor_, block->height);
  OnCheckpointAdopted(block);
}

bool ReplicaBase::HaveChainAboveCommitted(const Hash256& hash) const {
  BlockPtr cur = store_.Get(hash);
  while (cur != nullptr) {
    if (cur->height <= last_committed_height_ || cur->hash == last_committed_hash_) {
      return true;
    }
    cur = store_.Get(cur->parent);
  }
  return false;
}

bool ReplicaBase::EnsureAncestry(const Hash256& target, NodeId peer) {
  BlockPtr cur = store_.Get(target);
  if (cur == nullptr) {
    RequestBlock(peer, target);
    return false;
  }
  while (cur->height > last_committed_height_ && cur->hash != last_committed_hash_) {
    BlockPtr parent = store_.Get(cur->parent);
    if (parent == nullptr) {
      RequestBlock(peer, cur->parent);
      return false;
    }
    cur = parent;
  }
  return true;
}

void ReplicaBase::ArmViewTimer(View view, uint32_t consecutive_timeouts) {
  CancelViewTimer();
  double factor = 1.0;
  for (uint32_t i = 0; i < consecutive_timeouts && factor < 1e6; ++i) {
    factor *= ctx_.params.timeout_multiplier;
  }
  const SimDuration timeout = std::min<SimDuration>(
      ctx_.params.max_timeout,
      static_cast<SimDuration>(static_cast<double>(ctx_.params.base_timeout) * factor));
  view_timer_armed_ = true;
  view_timer_ = host().SetTimer(timeout, [this, view] {
    view_timer_armed_ = false;
    OnViewTimeout(view);
  });
}

void ReplicaBase::CancelViewTimer() {
  if (view_timer_armed_) {
    host().CancelTimer(view_timer_);
    view_timer_armed_ = false;
  }
}

void ReplicaBase::RequestBlock(NodeId from_peer, const Hash256& want) {
  auto req = std::make_shared<BlockFetchRequest>();
  req->want = want;
  SendTo(from_peer, req);
}

bool ReplicaBase::AcceptBlock(const BlockPtr& block) {
  if (block == nullptr) {
    return false;
  }
  if (store_.Has(block->hash)) {
    return true;
  }
  const BlockPtr parent = store_.Get(block->parent);
  if (parent != nullptr) {
    ChargeHashBytes(block->WireSize());
    if (!block->ValidUnder(parent->exec_result)) {
      return false;
    }
  }
  // Parent unknown: store provisionally; ancestry checks gate any use, and a later
  // ValidUnder runs when the parent arrives via sync.
  store_.Add(block);
  return true;
}

void ReplicaBase::HandleFetchRequest(NodeId from, const BlockFetchRequest& req) {
  BlockPtr cur = store_.Get(req.want);
  auto resp = std::make_shared<BlockFetchResponse>();
  // Serve the requested block plus up to a bounded window of ancestors (the requester will
  // re-request if its gap is deeper).
  constexpr size_t kMaxBlocksPerResponse = 32;
  while (cur != nullptr && resp->blocks.size() < kMaxBlocksPerResponse) {
    resp->blocks.push_back(cur);
    if (cur->height == 0) {
      break;
    }
    cur = store_.Get(cur->parent);
  }
  std::reverse(resp->blocks.begin(), resp->blocks.end());
  if (!resp->blocks.empty()) {
    SendTo(from, resp);
  }
}

void ReplicaBase::HandleFetchResponse(const BlockFetchResponse& resp) {
  bool added = false;
  for (const BlockPtr& b : resp.blocks) {
    if (!store_.Has(b->hash)) {
      added |= AcceptBlock(b);
    }
  }
  if (added) {
    OnBlocksSynced();
  }
}

}  // namespace achilles
