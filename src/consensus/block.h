// Blocks and the local block store (chain structure per §4.2 of the paper).
#ifndef SRC_CONSENSUS_BLOCK_H_
#define SRC_CONSENSUS_BLOCK_H_

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/consensus/transaction.h"
#include "src/consensus/types.h"
#include "src/crypto/sha256.h"

namespace achilles {

struct Block;
using BlockPtr = std::shared_ptr<const Block>;

struct Block {
  Block() = default;
  // Copies drop the digest memos: a copy may be mutated (e.g. a forged variant in tests),
  // and the memos are only sound while the fields they were derived from stay fixed.
  Block(const Block& other)
      : view(other.view),
        height(other.height),
        parent(other.parent),
        txs(other.txs),
        exec_result(other.exec_result),
        hash(other.hash),
        propose_time(other.propose_time) {}
  Block& operator=(const Block& other) {
    view = other.view;
    height = other.height;
    parent = other.parent;
    txs = other.txs;
    exec_result = other.exec_result;
    hash = other.hash;
    propose_time = other.propose_time;
    tx_root_memo_set_ = false;
    valid_memo_set_ = false;
    return *this;
  }

  View view = 0;
  Height height = 0;
  Hash256 parent = ZeroHash();
  std::vector<Transaction> txs;
  Hash256 exec_result = ZeroHash();  // Deterministic state-machine digest after this block.
  Hash256 hash = ZeroHash();         // H(view, height, parent, tx root, exec_result).

  // Bookkeeping (not part of the hash): when the leader proposed this block.
  SimTime propose_time = 0;

  // Header + certificate-free body size on the wire.
  size_t WireSize() const;

  // The hard-coded genesis block G (height 0, view 0).
  static const BlockPtr& Genesis();

  // createLeaf(txs, op, h_p): builds and hashes a child of `parent` at `view`.
  static BlockPtr Create(View view, const BlockPtr& parent, std::vector<Transaction> txs,
                         SimTime propose_time);

  // executeTx(txs, h_p): the execution digest a correct node must obtain for this block.
  static Hash256 ComputeExecResult(const Hash256& parent_exec,
                                   const std::vector<Transaction>& txs);

  // Recomputes the header hash; true iff it matches the stored one and exec_result is the
  // correct fold over the parent's result (block validity, §4.2).
  //
  // Hot-path memo: txs are immutable once a block is shared, so the tx-root and the
  // verdict for a given parent digest are computed once and replayed for every later
  // verifier (each of n-1 receivers validates the same block). Pure wall-clock caching —
  // the recomputation is deterministic, so digests and verdicts are bit-identical.
  bool ValidUnder(const Hash256& parent_exec) const;

  // Merkle-style root over txs, computed on first use and memoized (see ValidUnder note).
  const Hash256& CachedTxRoot() const;

 private:
  mutable Hash256 tx_root_memo_;
  mutable bool tx_root_memo_set_ = false;
  mutable Hash256 valid_memo_parent_;
  mutable bool valid_memo_set_ = false;
  mutable bool valid_memo_ok_ = false;
};

// Durable-log codec: the full block (bookkeeping fields included) as a host-WAL record.
Bytes EncodeBlockRecord(const Block& b);
// Decodes a WAL record back into a block; nullptr when it does not parse or its header
// hash does not recompute (defense in depth — the crash model never tears synced records).
BlockPtr DecodeBlockRecord(ByteView record);

struct Hash256Hasher {
  size_t operator()(const Hash256& h) const {
    size_t v;
    static_assert(sizeof(v) <= 32);
    std::memcpy(&v, h.data(), sizeof(v));
    return v;
  }
};

// Per-replica store of all received blocks, keyed by hash; genesis is always present.
class BlockStore {
 public:
  BlockStore();

  // Adds a block (idempotent). The parent need not be present yet (sync may backfill).
  void Add(const BlockPtr& block);
  BlockPtr Get(const Hash256& hash) const;
  bool Has(const Hash256& hash) const { return blocks_.count(hash) > 0; }

  // True iff every ancestor down to genesis is present.
  bool HasFullAncestry(const Hash256& hash) const;

  // True iff `descendant` extends (or equals) `ancestor` following parent links; requires
  // the chain between them to be present.
  bool Extends(const Hash256& descendant, const Hash256& ancestor) const;

  // Chain from (excluding) `from_exclusive` up to (including) `to`, oldest first. Empty if
  // the path is unknown or `to` does not extend `from_exclusive`.
  std::vector<BlockPtr> PathBetween(const Hash256& from_exclusive, const Hash256& to) const;

  size_t size() const { return blocks_.size(); }
  // Wire-size sum of every retained block: the in-memory log footprint this store
  // contributes to the `log.bytes_retained` gauge. Maintained incrementally.
  uint64_t ApproxBytes() const { return approx_bytes_; }

  // Drops blocks below `keep_from` height (genesis always retained). Committed history
  // below the retention window is not needed: catching-up nodes adopt certified
  // checkpoints instead of replaying from genesis.
  void PruneBelow(Height keep_from);

 private:
  std::unordered_map<Hash256, BlockPtr, Hash256Hasher> blocks_;
  uint64_t approx_bytes_ = 0;
};

}  // namespace achilles

#endif  // SRC_CONSENSUS_BLOCK_H_
