#include "src/harness/fault_script.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/common/check.h"

namespace achilles {

namespace {

// Fisher-Yates over 0..n-1 driven by the script RNG (distinct picks without retry loops).
std::vector<uint32_t> ShuffledIds(uint32_t n, Rng& rng) {
  std::vector<uint32_t> ids(n);
  for (uint32_t i = 0; i < n; ++i) {
    ids[i] = i;
  }
  for (uint32_t i = n; i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.UniformU64(i)]);
  }
  return ids;
}

}  // namespace

const char* SealedFateName(SealedFate fate) {
  switch (fate) {
    case SealedFate::kFresh:
      return "fresh";
    case SealedFate::kStale:
      return "stale";
    case SealedFate::kErased:
      return "erased";
  }
  return "?";
}

uint64_t EncodeStorageFate(StorageFate fate) {
  return static_cast<uint64_t>(fate.wal) | (static_cast<uint64_t>(fate.sealed) << 8) |
         (static_cast<uint64_t>(fate.snapshot) << 16) |
         (static_cast<uint64_t>(fate.defense) << 24);
}

StorageFate DecodeStorageFate(uint64_t arg) {
  StorageFate fate;
  fate.wal = static_cast<storage::WalFate>(arg & 0xff);
  fate.sealed = static_cast<SealedFate>((arg >> 8) & 0xff);
  fate.snapshot = static_cast<checkpoint::SnapshotFate>((arg >> 16) & 0xff);
  fate.defense = static_cast<persist::DefenseFate>((arg >> 24) & 0xff);
  return fate;
}

RollbackMode ToRollbackMode(SealedFate fate) {
  switch (fate) {
    case SealedFate::kFresh:
      return RollbackMode::kLatest;
    case SealedFate::kStale:
      return RollbackMode::kOldest;
    case SealedFate::kErased:
      return RollbackMode::kErase;
  }
  return RollbackMode::kLatest;
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kReboot:
      return "reboot";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHealPartition:
      return "heal-partition";
    case FaultKind::kJitterOn:
      return "jitter-on";
    case FaultKind::kJitterOff:
      return "jitter-off";
    case FaultKind::kBlockLink:
      return "block-link";
    case FaultKind::kUnblockLink:
      return "unblock-link";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kStaleRecoveryReplay:
      return "stale-recovery-replay";
  }
  return "?";
}

bool FaultKindFromName(std::string_view name, FaultKind* out) {
  for (int i = 0; i <= static_cast<int>(FaultKind::kStaleRecoveryReplay); ++i) {
    const FaultKind kind = static_cast<FaultKind>(i);
    if (name == FaultKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

uint32_t FaultScript::ByzantineCount() const {
  uint32_t count = 0;
  for (ByzantineMode mode : byzantine) {
    if (mode != ByzantineMode::kNone) {
      ++count;
    }
  }
  return count;
}

uint32_t FaultScript::CrashedCount() const {
  std::set<uint32_t> crashed;
  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::kCrash) {
      crashed.insert(event.node);
    }
  }
  return static_cast<uint32_t>(crashed.size());
}

bool ProtocolSupportsReboot(Protocol protocol) {
  // Every protocol now persists what its paper assumes is on stable storage — BRaft its
  // term/votedFor/log, MinBFT its message log + USIG mirror, HotStuff its lock/highest QC,
  // FlexiBFT its sequencer frontier (src/storage) — and the TEE protocols restore from
  // sealed storage. A crashed replica of any protocol can therefore be rebooted.
  (void)protocol;
  return true;
}

bool ProtocolUsesHostStorage(Protocol protocol) {
  switch (protocol) {
    case Protocol::kRaft:
    case Protocol::kMinBft:
    case Protocol::kHotStuff:
    case Protocol::kFlexiBft:
      return true;
    default:
      // The TEE protocols keep their durable state in sealed storage / the counter device;
      // their host disk stays empty, so crash-consistency fates would be vacuous.
      return false;
  }
}

bool ProtocolRollbackProtected(Protocol protocol) {
  switch (protocol) {
    case Protocol::kAchilles:
    case Protocol::kAchillesC:  // Same recovery protocol, components outside the TEE.
    case Protocol::kDamysusR:
    case Protocol::kOneShotR:
      return true;
    default:
      return false;
  }
}

bool ProtocolUsesRecovery(Protocol protocol) {
  return protocol == Protocol::kAchilles || protocol == Protocol::kAchillesC;
}

std::vector<ByzantineMode> AllowedByzantineModes(Protocol protocol) {
  if (protocol == Protocol::kRaft) {
    // CFT fault model: omission and timing faults only.
    return {ByzantineMode::kSilent, ByzantineMode::kFlaky, ByzantineMode::kDelayer};
  }
  return {ByzantineMode::kSilent,      ByzantineMode::kFlaky,
          ByzantineMode::kDelayer,     ByzantineMode::kDuplicator,
          ByzantineMode::kSpammer,     ByzantineMode::kStaleReplay,
          ByzantineMode::kSelectiveSend, ByzantineMode::kReorderBurst};
}

FaultScript SampleFaultScript(const ScriptParams& params, Rng& rng) {
  ACHILLES_CHECK(params.heal_at >= Ms(1200));
  const uint32_t n = ReplicasFor(params.protocol, params.f);
  FaultScript script;
  script.byzantine.assign(n, ByzantineMode::kNone);
  script.heal_at = params.heal_at;
  script.horizon = params.heal_at + params.liveness_window;

  // Fault budget: Byzantine + crashing replicas together stay within f, which keeps every
  // quorum (and Achilles' f+1 recovery repliers) reachable — the liveness oracle's
  // soundness condition.
  uint32_t budget = params.f;

  const std::vector<ByzantineMode> modes = AllowedByzantineModes(params.protocol);
  std::vector<uint32_t> order = ShuffledIds(n, rng);
  size_t next_victim = 0;
  if (!modes.empty() && budget > 0 && rng.Chance(0.55)) {
    const uint32_t count = 1 + static_cast<uint32_t>(rng.UniformU64(budget));
    for (uint32_t i = 0; i < count; ++i) {
      script.byzantine[order[next_victim++]] = modes[rng.UniformU64(modes.size())];
    }
    budget -= count;
  }

  if (budget > 0 && ProtocolSupportsReboot(params.protocol) &&
      rng.Chance(params.reboot_prob)) {
    const uint32_t count = 1 + static_cast<uint32_t>(rng.UniformU64(budget));
    bool attack_placed = false;
    // Simultaneous multi-node reboots: all victims share one crash instant and one reboot
    // instant, so recovery/restore paths of several nodes overlap (the paper's recovering
    // nodes must not count on each other as repliers).
    const bool simultaneous = count >= 2 && rng.Chance(0.3);
    const SimTime shared_crash =
        Ms(200) + static_cast<SimTime>(rng.UniformU64(params.heal_at - Ms(1100) - Ms(200)));
    const SimTime shared_reboot =
        shared_crash + Ms(80) + static_cast<SimTime>(rng.UniformU64(Ms(400)));
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t node = order[next_victim++];
      const SimTime crash_at =
          simultaneous
              ? shared_crash
              : Ms(200) + static_cast<SimTime>(
                              rng.UniformU64(params.heal_at - Ms(1100) - Ms(200)));
      // Lagging-replica rejoin (--ckpt-weight): instead of bouncing right back, the victim
      // stays down until just before heal, so the cluster's stable checkpoint frontier
      // races far ahead and rejoin exercises snapshot state transfer rather than backfill.
      const bool lagging = !simultaneous && rng.Chance(params.ckpt_prob * 0.5);
      const SimTime reboot_at =
          simultaneous
              ? shared_reboot
              : (lagging ? std::max<SimTime>(
                               crash_at + Ms(80),
                               params.heal_at - Ms(150) -
                                   static_cast<SimTime>(rng.UniformU64(Ms(250))))
                         : crash_at + Ms(80) +
                               static_cast<SimTime>(rng.UniformU64(Ms(400))));
      StorageFate fate;
      if (ProtocolUsesHostStorage(params.protocol) && rng.Chance(0.5)) {
        // Crash-consistency fault on the host disk: the unsynced suffix vanishes, or the
        // tail record tears. Stable-storage protocols fsync before externalizing state, so
        // either fate must leave agreement intact.
        fate.wal = rng.Chance(0.5) ? storage::WalFate::kLostUnsynced
                                   : storage::WalFate::kTornTail;
      }
      const bool quorum_defended = params.defense != persist::DefenseKind::kLocal &&
                                   ProtocolUsesDefenseBackend(params.protocol);
      if ((ProtocolRollbackProtected(params.protocol) || quorum_defended) &&
          rng.Chance(0.5)) {
        // Adversarial sealed storage at reboot: full rollback or a wiped blob store.
        // Achilles recovers over the network regardless; the -R checkers must detect the
        // rollback and halt; under a quorum defense backend every backend-using protocol
        // must detect it (healer) or repair from a peer copy (rollbaccine).
        fate.sealed = rng.Chance(0.5) ? SealedFate::kStale : SealedFate::kErased;
      }
      if (quorum_defended && rng.Chance(0.4)) {
        // Peer-quorum fate (v4): one holder of the victim's replicated copies /
        // freshness certificates regresses or loses them. Bounded at one holder so the
        // quorum's freshest survivor is intact — composition with fate.sealed above is
        // the interesting case (local rollback AND a degraded quorum).
        fate.defense = rng.Chance(0.5) ? persist::DefenseFate::kPeerStale
                                       : persist::DefenseFate::kPeerErased;
      }
      if (rng.Chance(params.ckpt_prob)) {
        // Adversarial checkpoint snapshot surface: a rolled-back (internally valid) old
        // snapshot, a wiped record, or flipped payload bytes. Where the certificate is
        // TEE-sealed the replica must reject the first two classes by digest/freshness;
        // where it is not, the rollback installs an older committed prefix — still safe,
        // merely slower (the undetectable-rollback baseline in the README threat model).
        const uint64_t pick = rng.UniformU64(3);
        fate.snapshot = pick == 0   ? checkpoint::SnapshotFate::kStale
                        : pick == 1 ? checkpoint::SnapshotFate::kErased
                                    : checkpoint::SnapshotFate::kCorrupt;
      }
      script.events.push_back({crash_at, FaultKind::kCrash, node, 0, 0});
      script.events.push_back(
          {reboot_at, FaultKind::kReboot, node, 0, EncodeStorageFate(fate)});
      // Targeted nonce-freshness attack (Achilles only): crash the same node a second time
      // and have the runner re-inject the first round's recorded recovery replies the
      // moment the second incarnation boots. An honest checker rejects them (nonce
      // mismatch); the break_recovery_nonce variant completes recovery on stale state.
      bool followup_placed = false;
      if (!attack_placed && ProtocolUsesRecovery(params.protocol) &&
          reboot_at + Ms(700) <= params.heal_at - Ms(350) && rng.Chance(0.35)) {
        attack_placed = true;
        followup_placed = true;
        const SimTime again = reboot_at + Ms(450) + static_cast<SimTime>(rng.UniformU64(Ms(200)));
        script.events.push_back({again, FaultKind::kCrash, node, 0, 0});
        script.events.push_back({again + Ms(1), FaultKind::kStaleRecoveryReplay, node, 0, 0});
        script.events.push_back({again + Ms(5), FaultKind::kReboot, node, 0,
                                 EncodeStorageFate(StorageFate{})});
      }
      // Mid-recovery crash: kill the fresh incarnation again while it is still restoring
      // (for Achilles, while Algorithm 3's request/reply round is in flight), then reboot
      // once more. Double restores must be idempotent.
      if (!followup_placed && rng.Chance(0.3)) {
        const SimTime again =
            reboot_at + Ms(15) + static_cast<SimTime>(rng.UniformU64(Ms(105)));
        const SimTime again_reboot =
            again + Ms(80) + static_cast<SimTime>(rng.UniformU64(Ms(220)));
        if (again_reboot <= params.heal_at - Ms(50)) {
          StorageFate refate;
          if (ProtocolUsesHostStorage(params.protocol) && rng.Chance(0.5)) {
            refate.wal = rng.Chance(0.5) ? storage::WalFate::kLostUnsynced
                                         : storage::WalFate::kTornTail;
          }
          if (rng.Chance(params.ckpt_prob * 0.5)) {
            // The second crash can land mid-state-transfer; losing the snapshot record
            // under it checks that a half-adopted transfer restarts cleanly.
            refate.snapshot = rng.Chance(0.5) ? checkpoint::SnapshotFate::kErased
                                              : checkpoint::SnapshotFate::kStale;
          }
          script.events.push_back({again, FaultKind::kCrash, node, 0, 0});
          script.events.push_back(
              {again_reboot, FaultKind::kReboot, node, 0, EncodeStorageFate(refate)});
        }
      }
    }
  }

  if (rng.Chance(0.45)) {
    const SimTime start =
        Ms(150) + static_cast<SimTime>(rng.UniformU64(params.heal_at - Ms(800)));
    const SimTime end = std::min<SimTime>(
        start + Ms(120) + static_cast<SimTime>(rng.UniformU64(Ms(480))),
        params.heal_at - Ms(100));
    if (end > start) {
      const uint32_t offset = static_cast<uint32_t>(rng.UniformU64(n));
      const uint32_t size_a = 1 + static_cast<uint32_t>(rng.UniformU64(n - 1));
      script.events.push_back({start, FaultKind::kPartition, offset, size_a, 0});
      script.events.push_back({end, FaultKind::kHealPartition, 0, 0, 0});
    }
  }

  if (rng.Chance(0.6)) {
    const SimTime start = static_cast<SimTime>(rng.UniformU64(params.heal_at / 2));
    const uint64_t extra = Us(100) + rng.UniformU64(Ms(2));
    script.events.push_back({start, FaultKind::kJitterOn, 0, 0, extra});
    script.events.push_back({params.heal_at - Ms(1), FaultKind::kJitterOff, 0, 0, 0});
  }

  if (rng.Chance(0.35)) {
    const uint32_t node = static_cast<uint32_t>(rng.UniformU64(n));
    const SimTime at =
        Ms(200) + static_cast<SimTime>(rng.UniformU64(params.heal_at - Ms(700)));
    const uint64_t dur = Ms(20) + rng.UniformU64(Ms(280));
    script.events.push_back({at, FaultKind::kStall, node, 0, dur});
  }

  std::stable_sort(script.events.begin(), script.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return script;
}

std::string ScriptArtifact::ToText() const {
  std::ostringstream out;
  out << "chaos-script v4\n";
  out << "protocol " << protocol << "\n";
  out << "f " << f << "\n";
  out << "seed " << seed << "\n";
  out << "defense " << (defense.empty() ? "local" : defense) << "\n";
  for (size_t i = 0; i < script.byzantine.size(); ++i) {
    if (script.byzantine[i] != ByzantineMode::kNone) {
      out << "byz " << i << " " << ByzantineModeName(script.byzantine[i]) << "\n";
    }
  }
  for (const FaultEvent& event : script.events) {
    out << "event " << event.at << " " << FaultKindName(event.kind) << " " << event.node
        << " " << event.peer << " " << event.arg << "\n";
  }
  out << "heal " << script.heal_at << "\n";
  out << "horizon " << script.horizon << "\n";
  return out.str();
}

bool ScriptArtifact::FromText(const std::string& text, ScriptArtifact* out) {
  *out = ScriptArtifact{};
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return false;
  }
  // v1 reboot events carried a bare RollbackMode in arg; v2 carries EncodeStorageFate()
  // without a snapshot byte (bits 16+ are zero, so it decodes as kIntact and parses
  // unchanged); v3 adds the checkpoint snapshot fate at bits 16-23; v4 adds the
  // defense-backend peer fate at bits 24-31 plus the `defense <name>` header line.
  const bool v1 = line == "chaos-script v1";
  if (!v1 && line != "chaos-script v2" && line != "chaos-script v3" &&
      line != "chaos-script v4") {
    return false;
  }
  Protocol proto;
  bool have_protocol = false;
  std::vector<std::pair<uint32_t, ByzantineMode>> byz;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "protocol") {
      fields >> out->protocol;
      if (!ProtocolFromName(out->protocol, &proto)) {
        return false;
      }
      have_protocol = true;
    } else if (key == "f") {
      fields >> out->f;
    } else if (key == "seed") {
      fields >> out->seed;
    } else if (key == "defense") {
      fields >> out->defense;
      persist::DefenseKind kind;
      if (!persist::DefenseKindFromName(out->defense, &kind)) {
        return false;
      }
    } else if (key == "byz") {
      uint32_t id = 0;
      std::string mode_name;
      fields >> id >> mode_name;
      ByzantineMode mode;
      if (!ByzantineModeFromName(mode_name, &mode)) {
        return false;
      }
      byz.emplace_back(id, mode);
    } else if (key == "event") {
      FaultEvent event;
      std::string kind_name;
      fields >> event.at >> kind_name >> event.node >> event.peer >> event.arg;
      if (fields.fail() || !FaultKindFromName(kind_name, &event.kind)) {
        return false;
      }
      if (v1 && event.kind == FaultKind::kReboot) {
        // Upgrade the overloaded RollbackMode to a per-surface fate (host WAL intact;
        // kLatest -> fresh blobs, kErase -> erased, kOldest/kPinned -> stale replay).
        StorageFate fate;
        switch (static_cast<RollbackMode>(event.arg)) {
          case RollbackMode::kLatest:
            break;
          case RollbackMode::kErase:
            fate.sealed = SealedFate::kErased;
            break;
          default:
            fate.sealed = SealedFate::kStale;
            break;
        }
        event.arg = EncodeStorageFate(fate);
      }
      out->script.events.push_back(event);
    } else if (key == "heal") {
      fields >> out->script.heal_at;
    } else if (key == "horizon") {
      fields >> out->script.horizon;
    } else {
      return false;
    }
    if (fields.fail()) {
      return false;
    }
  }
  if (!have_protocol || out->script.horizon <= 0) {
    return false;
  }
  out->script.byzantine.assign(ReplicasFor(proto, out->f), ByzantineMode::kNone);
  for (const auto& [id, mode] : byz) {
    if (id >= out->script.byzantine.size()) {
      return false;
    }
    out->script.byzantine[id] = mode;
  }
  return true;
}

// --- Cluster integration (declared in cluster.h; lives here so cluster.cc stays free of
// script types) ---

void Cluster::InstallFaultScript(const FaultScript& script,
                                 std::function<void(const FaultEvent&)> on_event) {
  ACHILLES_CHECK(!started_);
  ACHILLES_CHECK(script.byzantine.size() <= n_);
  for (uint32_t i = 0; i < script.byzantine.size(); ++i) {
    if (script.byzantine[i] != ByzantineMode::kNone) {
      SetByzantine(i, script.byzantine[i]);
    }
  }
  for (const FaultEvent& event : script.events) {
    sim_.ScheduleAt(event.at, [this, event, on_event] {
      if (on_event) {
        on_event(event);
      }
      ApplyFaultEvent(event);
    });
  }
}

void Cluster::ApplyFaultEvent(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kCrash:
      if (event.node < n_ && hosts_[event.node]->IsUp()) {
        CrashReplica(event.node);
      }
      break;
    case FaultKind::kReboot: {
      if (event.node >= n_ || hosts_[event.node]->IsUp()) {
        break;  // Minimization may have dropped the matching crash.
      }
      const StorageFate fate = DecodeStorageFate(event.arg);
      // Host-disk crash consistency is settled first: the WAL may lose its unsynced
      // suffix or tear its tail record between incarnations — but never rolls back (that
      // fault class is exclusive to the sealed-storage surface below).
      platforms_[event.node]->host_storage().ApplyCrashFate(fate.wal);
      // Then the adversarial checkpoint-snapshot surface (a host record, so it composes
      // with the crash fate above and the sealed fate below).
      if (ckpt_manager_ != nullptr) {
        ckpt_manager_->ApplySnapshotFate(event.node, fate.snapshot);
      }
      // Defense-backend peer quorum fate (v4): degrade the attacked holder's copies of
      // this owner's state BEFORE the reboot-time Open consults the quorum.
      if (defense_service_ != nullptr &&
          fate.defense != persist::DefenseFate::kIntact) {
        defense_service_->ApplyPeerFate(event.node, fate.defense);
      }
      // The adversarial OS chooses what the new enclave unseals. Local restore happens in
      // the replica constructor (inside RebootReplica), so the mode can be lifted
      // immediately afterwards: later seals of the new incarnation behave honestly.
      SealedStorage& storage = platforms_[event.node]->storage();
      storage.SetRollbackMode(ToRollbackMode(fate.sealed));
      RebootReplica(event.node);
      storage.SetRollbackMode(RollbackMode::kLatest);
      break;
    }
    case FaultKind::kPartition: {
      const uint32_t size_a = std::min(std::max<uint32_t>(event.peer, 1), n_ - 1);
      std::vector<uint32_t> group_a, group_b;
      for (uint32_t i = 0; i < n_; ++i) {
        const uint32_t id = (event.node + i) % n_;
        (i < size_a ? group_a : group_b).push_back(id);
      }
      net_.Partition({group_a, group_b});
      break;
    }
    case FaultKind::kHealPartition:
      net_.ClearPartition();
      break;
    case FaultKind::kJitterOn: {
      NetworkChaos chaos;
      chaos.extra_delay_max = static_cast<SimDuration>(event.arg);
      chaos.reorder_prob = 0.25;
      chaos.reorder_delay_max = static_cast<SimDuration>(event.arg);
      chaos.dup_prob = 0.1;
      chaos.dup_delay_max = Ms(200);
      net_.SetChaos(chaos);
      break;
    }
    case FaultKind::kJitterOff:
      net_.SetChaos(NetworkChaos{});
      break;
    case FaultKind::kBlockLink:
      net_.SetLinkBlocked(event.node, event.peer, true);
      break;
    case FaultKind::kUnblockLink:
      net_.SetLinkBlocked(event.node, event.peer, false);
      break;
    case FaultKind::kStall:
      if (event.node < n_) {
        hosts_[event.node]->InjectStall(static_cast<SimDuration>(event.arg));
      }
      break;
    case FaultKind::kStaleRecoveryReplay:
      break;  // Implemented by the chaos runner (needs its recorded reply tap).
  }
}

}  // namespace achilles
