#include "src/harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/harness/bench_report.h"

namespace achilles {
namespace {

}  // namespace

// Smoke-scale knob for CI: ACHILLES_BENCH_SCALE=<fraction> shrinks every bench's
// warmup/measure window by that factor (tools/bench_all --smoke sets it for its children).
// Floors keep the windows long enough that protocols still commit; results at reduced
// scale are for plumbing checks, not for quoting.
double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("ACHILLES_BENCH_SCALE");
    if (env == nullptr || *env == '\0') {
      return 1.0;
    }
    const double parsed = std::atof(env);
    if (parsed <= 0.0 || parsed >= 1.0) {
      return 1.0;
    }
    return parsed;
  }();
  return scale;
}

RunStats MeasureOnce(const ClusterConfig& config, SimDuration warmup, SimDuration measure) {
  const double scale = BenchScale();
  if (scale < 1.0) {
    warmup = std::max<SimDuration>(Ms(200), static_cast<SimDuration>(warmup * scale));
    measure = std::max<SimDuration>(Ms(500), static_cast<SimDuration>(measure * scale));
  }
  BenchReport& report = BenchReport::Instance();
  ClusterConfig effective = config;
  // First measured run of the process carries the trace when --trace-out was given.
  // Tracing records to memory only, so stats are unaffected (tested bit-identical).
  effective.tracing = config.tracing || report.trace_wanted();
  // --critpath-out turns on causal profiling for every run of the process; like tracing,
  // collection is memory-only and leaves virtual-time results bit-identical.
  effective.critpath = config.critpath || report.critpath_wanted();
  Cluster cluster(effective);
  const RunStats stats = cluster.RunMeasured(warmup, measure);
  if (!stats.safety_ok) {
    std::fprintf(stderr, "FATAL: safety violated during bench run (%s, f=%u): %s\n",
                 ProtocolName(config.protocol), config.f,
                 cluster.tracker().violation().c_str());
    std::abort();
  }
  report.RecordRun(effective, stats, cluster);
  return stats;
}

SimDuration DefaultWarmup(const NetworkConfig& net) {
  return net.one_way_base >= Ms(5) ? Sec(2) : Ms(500);
}

SimDuration DefaultMeasure(const NetworkConfig& net) {
  return net.one_way_base >= Ms(5) ? Sec(10) : Sec(3);
}

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print() const {
  BenchReport::Instance().RecordTable(headers_, rows_);
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < widths.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) {
      std::printf("-");
    }
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
  std::fflush(stdout);
}

}  // namespace achilles
