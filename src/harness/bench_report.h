// Machine-readable bench output. Every bench binary wraps its Main in a BenchIo, which
// runs the shared harness::FlagSet parser (src/harness/flags.h) over argv:
//
//   --defense NAME      rollback-defense backend for every cluster the bench builds
//                       (local|rollbaccine|healer; applied via persist::SetDefaultDefense)
//   --json-out[=path]   write BENCH_<name>.json (run configs, stats, latency breakdown,
//                       metric snapshots) next to the human-readable tables
//   --trace-out[=path]  run the first measured cluster with span tracing on and export it
//                       as Chrome trace_event JSON (opens in Perfetto / chrome://tracing)
//   --critpath-out[=path]  run every measured cluster with the causal critical-path
//                       profiler on and export, for the first run, the blame/slack/what-if
//                       profile JSON plus `<path>.folded` (flamegraph folded stacks) and
//                       `<path>.perfetto.json` (critical-path chains as Perfetto slices)
//
// The family is consumed from argv (argc shrinks), so a bench's own parser only sees its
// private flags. MeasureOnce feeds every measured run into the process-wide BenchReport;
// benches need no further changes beyond the three-line main() wrapper.
#ifndef SRC_HARNESS_BENCH_REPORT_H_
#define SRC_HARNESS_BENCH_REPORT_H_

#include <string>
#include <vector>

#include "src/harness/cluster.h"

namespace achilles {

class BenchReport {
 public:
  static BenchReport& Instance();

  // Called once by BenchIo before Main runs.
  void Configure(std::string bench_name, std::string json_path, std::string trace_path,
                 std::string critpath_path);

  bool json_enabled() const { return !json_path_.empty(); }
  // True until the first traced run has been exported; MeasureOnce checks this to decide
  // whether to enable tracing on the cluster it builds.
  bool trace_wanted() const { return !trace_path_.empty() && !trace_written_; }
  // Unlike tracing, --critpath-out keeps the profiler on for every run of the process so
  // each run's JSON carries its own `critpath` summary; the profile artifacts are written
  // once, from the first measured run.
  bool critpath_wanted() const { return !critpath_path_.empty(); }

  // Serializes one measured run (config + stats + metric snapshot) into the report and, if
  // a trace is still wanted and the cluster recorded one, writes it out.
  void RecordRun(const ClusterConfig& config, const RunStats& stats, Cluster& cluster);

  // Captures a printed table (TablePrinter::Print feeds every table through here), so
  // benches that drive clusters manually (recovery, parallel instances, counter devices)
  // still emit their results machine-readably.
  void RecordTable(const std::vector<std::string>& headers,
                   const std::vector<std::vector<std::string>>& rows);

  // Writes the report file when --json-out was given. Returns `rc` unchanged on success,
  // nonzero on IO failure.
  int Finish(int rc);

 private:
  std::string name_;
  std::string json_path_;
  std::string trace_path_;
  std::string critpath_path_;
  bool trace_written_ = false;
  bool critpath_written_ = false;
  std::vector<std::string> runs_;    // Pre-serialized JSON objects, one per measured run.
  std::vector<std::string> tables_;  // Pre-serialized JSON objects, one per printed table.
};

// Flag parsing + report finalization for bench main()s:
//
//   int main(int argc, char** argv) {
//     achilles::BenchIo io("fig4_saturation", &argc, argv);
//     return io.Finish(achilles::Main());
//   }
//
// Takes argc by pointer because the shared flag family is consumed in place; a bench that
// parses its remaining argv afterwards must see the compacted count. Exits (2) on a
// malformed shared flag — a bench cannot sensibly continue with half a config.
class BenchIo {
 public:
  BenchIo(const char* bench_name, int* argc, char** argv);
  int Finish(int rc) { return BenchReport::Instance().Finish(rc); }
};

}  // namespace achilles

#endif  // SRC_HARNESS_BENCH_REPORT_H_
