// Experiment cluster: wires a simulation, network, platforms, replicas of a chosen
// protocol, and a client population; provides crash/reboot fault injection and measured-run
// statistics. Every bench and integration test builds on this.
#ifndef SRC_HARNESS_CLUSTER_H_
#define SRC_HARNESS_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/app/kv_service.h"
#include "src/checkpoint/manager.h"
#include "src/client/client.h"
#include "src/client/kv_client.h"
#include "src/consensus/replica_base.h"
#include "src/harness/byzantine.h"
#include "src/obs/breakdown.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/defense.h"

namespace achilles {

enum class Protocol {
  kAchilles,   // The paper's contribution (trusted components in TEE, no counter).
  kAchillesC,  // Achilles with components outside the TEE (Table 3).
  kDamysus,    // Chained Damysus, no rollback prevention.
  kDamysusR,   // Damysus + persistent counter on every checker update.
  kOneShot,    // OneShot, no rollback prevention.
  kOneShotR,   // OneShot + persistent counter.
  kFlexiBft,   // 3f+1, leader-only counter, O(n^2) votes.
  kRaft,       // CFT baseline (Table 3).
  kMinBft,     // Classic USIG-based TEE-BFT (context; §2.2 of the paper).
  kHotStuff,   // Non-TEE 3f+1 ancestor, 8 steps (context).
};

const char* ProtocolName(Protocol protocol);
// Inverse of ProtocolName; returns false on unknown names.
bool ProtocolFromName(std::string_view name, Protocol* out);
// Number of Protocol enum values (for sweeps).
inline constexpr int kNumProtocols = 10;

// Replica count: 3f+1 for FlexiBFT, 2f+1 otherwise.
uint32_t ReplicasFor(Protocol protocol, uint32_t f);

// True when the protocol uses persistent counters by default (the -R variants; FlexiBFT
// uses one on the leader by design).
bool DefaultCounterEnabled(Protocol protocol);

// True when the protocol's trusted state persists through the pluggable rollback-defense
// seam (src/storage/defense.h): the Damysus/OneShot checker families and Achilles. MinBFT
// and FlexiBFT keep their counters regardless of --defense (the USIG/leader counter is
// protocol-intrinsic, not a swappable defense); the TEE-less baselines have no defended
// state at all.
bool ProtocolUsesDefenseBackend(Protocol protocol);

struct ClusterConfig {
  Protocol protocol = Protocol::kAchilles;
  uint32_t f = 1;
  size_t batch_size = 400;
  uint32_t payload_size = 256;
  NetworkConfig net = NetworkConfig::Lan();
  CostModel costs = CostModel::Default();
  // Counter used by counter-dependent protocols. Defaults to the paper's 20 ms write.
  CounterSpec counter = CounterSpec::PaperDefault();
  // Rollback-defense backend for the protocols on the defense seam (--defense on every
  // bench/chaos tool; src/storage/defense.h). Under a quorum defense the -R counters are
  // disabled — the backend replaces the counter's anti-rollback role — and the Cluster
  // owns a DefenseService modeling the peer disk/certificate quorum.
  persist::DefenseKind defense = persist::DefaultDefense();
  SimDuration base_timeout = Ms(500);
  bool commit_fast_path = true;  // Achilles NEW-VIEW optimization (ablation knob).
  uint64_t seed = 1;
  // Event-queue engine for the whole cluster simulation. The calendar queue is the
  // production engine; the heap engine is the reference the digest-equivalence suite
  // races it against (tests/sim_determinism_test.cc, chaos_main --engine).
  SimEngine engine = SimEngine::kCalendar;
  SignatureScheme scheme = SignatureScheme::kFastHmac;
  bool with_client = true;
  double client_rate_tps = 0.0;     // 0 = saturating client.
  size_t client_max_outstanding = 0;  // 0 = 10 * batch_size.
  TeeConfig tee;                    // Boot costs; counter/in-TEE flags derived per protocol.
  // Span tracing (src/obs/trace.h). Off by default; recording is memory-only and never
  // perturbs virtual time, so RunStats are bit-identical either way. The ring keeps the
  // last `trace_capacity` events (smaller rings keep exported traces small).
  bool tracing = false;
  size_t trace_capacity = obs::SpanTracer::kDefaultCapacity;
  // Critical-path profiling (src/obs/critpath.h). Off by default; like tracing and
  // journaling, collection is memory-only and never perturbs virtual time, so event-log,
  // journal and replay digests stay bit-identical either way.
  bool critpath = false;
  // Flight recorder (src/obs/journal.h). Off by default; like tracing, recording never
  // perturbs virtual time, so RunStats stay bit-identical either way.
  bool journaling = false;
  size_t journal_control_capacity = obs::Journal::kDefaultControlCapacity;
  size_t journal_flow_capacity = obs::Journal::kDefaultFlowCapacity;
  // Deliberately-broken protocol variants (ProtocolParams docs); chaos self-tests only.
  bool break_recovery_nonce = false;
  bool break_counter_compare = false;
  // Replicated KV application (src/app). When on, a KvService executes the agreed log
  // behind every replica (with leader read-leases) and a closed-loop KV client population
  // on host n+1 records the client-observed history for the linearizability oracle. The
  // background ClientProcess keeps running: its op=0 transactions are pure load, which
  // keeps blocks flowing even while every KV session waits on a response.
  bool app_kv = false;
  app::KvAppOptions kv;        // Lease parameters; kv.break_stale_read_lease plants the bug.
  KvClientConfig kv_client;    // Topology fields (n/f/hosts/payload) are overwritten.
  // Protocol-aware checkpointing (src/checkpoint). When ckpt.enabled, a CheckpointManager
  // certifies boundary commits, truncates WALs and block stores behind stable checkpoints,
  // and serves snapshot state transfer to lagging replicas.
  checkpoint::CheckpointOptions ckpt;
};

struct FaultScript;
struct FaultEvent;

struct RunStats {
  double throughput_tps = 0.0;
  double commit_latency_ms = 0.0;
  double commit_p50_ms = 0.0;
  double commit_p99_ms = 0.0;
  double e2e_latency_ms = 0.0;
  double e2e_p99_ms = 0.0;
  uint64_t committed_blocks = 0;
  uint64_t committed_txs = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t counter_writes = 0;
  bool safety_ok = true;
  // Mean per-tx decomposition of e2e latency; breakdown.TotalMs() == e2e_latency_ms up to
  // floating-point rounding (see src/obs/breakdown.h).
  obs::BreakdownMs breakdown;
  // Causal critical-path summary (enabled=false unless config.critpath). The on-path
  // component means reconcile with `breakdown` by construction.
  obs::CritSummary critpath;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Binds all replica processes (genesis launch) and the client.
  void Start();

  Simulation& sim() { return sim_; }
  Network& net() { return net_; }
  CommitTracker& tracker() { return tracker_; }
  const ClusterConfig& config() const { return config_; }
  uint32_t num_replicas() const { return n_; }
  uint32_t client_host_id() const { return n_; }
  // KV app accessors (null / invalid unless config.app_kv).
  uint32_t kv_client_host_id() const { return n_ + (config_.with_client ? 1 : 0); }
  app::KvService* kv_service() { return kv_service_.get(); }
  KvClientProcess* kv_client() { return kv_client_; }
  // Checkpoint coordinator (null unless config.ckpt.enabled).
  checkpoint::CheckpointManager* checkpoint_manager() { return ckpt_manager_.get(); }
  // Peer quorum behind the rollback-defense backends (null when config.defense == kLocal).
  persist::DefenseService* defense_service() { return defense_service_.get(); }
  // Checkpoint quorum for this cluster shape: the commit-certificate quorum (f+1 on the
  // 2f+1 TEE protocols, 2f+1 on the 3f+1 ones).
  size_t CheckpointQuorum() const;

  // Current incarnation of replica `id` (nullptr while crashed).
  ReplicaBase* replica(uint32_t id) { return replica_ptrs_[id]; }
  NodePlatform& platform(uint32_t id) { return *platforms_[id]; }

  // --- Fault injection ---
  // Marks replica `id` Byzantine with the given behaviour (must be called before Start).
  // Its commits are excluded from the safety audit.
  void SetByzantine(uint32_t id, ByzantineMode mode);
  void CrashReplica(uint32_t id);
  // Reboots with a fresh (recovering) incarnation after the modeled init delay.
  void RebootReplica(uint32_t id);
  // Enclave relaunch + per-peer reconnection (Table 2 "Initialization").
  SimDuration ReplicaInitDelay() const;

  // --- Scripted fault injection (src/harness/fault_script.h) ---
  // Applies the script's Byzantine assignments (must precede Start) and schedules every
  // timed fault event on the simulation. `on_event` (optional) observes each event at its
  // scheduled time, before it is applied — the chaos runner logs there and implements the
  // events (like kStaleRecoveryReplay) that need runner-held state.
  void InstallFaultScript(const FaultScript& script,
                          std::function<void(const FaultEvent&)> on_event = {});
  // Applies a single fault event now (exposed for tests; InstallFaultScript schedules it).
  void ApplyFaultEvent(const FaultEvent& event);

  // --- Measurement ---
  // Runs `warmup`, then measures for `measure` and returns aggregated statistics.
  RunStats RunMeasured(SimDuration warmup, SimDuration measure);

  // Refreshes the per-replica retention gauges (log.entries_retained, log.bytes_retained,
  // ckpt.last_stable_seq): WAL records/bytes on disk plus the in-memory block store.
  // Called at the end of RunMeasured; callable any time for finer-grained sampling.
  void RefreshFootprintGauges();

  uint64_t TotalCounterWrites() const;

  // --- Observability (src/obs) ---
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::SpanTracer& tracer() { return tracer_; }
  obs::Journal& journal() { return journal_; }
  const obs::BreakdownAttributor& breakdown() const { return breakdown_; }
  obs::CritPathCollector& critpath() { return critpath_; }

 private:
  std::unique_ptr<ReplicaBase> MakeReplica(uint32_t id, bool initial_launch);
  ReplicaContext ContextFor(uint32_t id);

  ClusterConfig config_;
  uint32_t n_;
  obs::MetricsRegistry metrics_;
  obs::SpanTracer tracer_;
  obs::Journal journal_;
  obs::BreakdownAttributor breakdown_;
  obs::CritPathCollector critpath_;
  Simulation sim_;
  Network net_;
  CryptoSuite suite_;
  CommitTracker tracker_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<NodePlatform>> platforms_;
  std::unique_ptr<persist::DefenseService> defense_service_;
  std::vector<ReplicaBase*> replica_ptrs_;
  std::vector<ByzantineMode> byzantine_;
  std::unique_ptr<app::KvService> kv_service_;
  std::unique_ptr<checkpoint::CheckpointManager> ckpt_manager_;
  KvClientProcess* kv_client_ = nullptr;
  bool started_ = false;
};

}  // namespace achilles

#endif  // SRC_HARNESS_CLUSTER_H_
