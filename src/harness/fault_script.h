// Fault scripts: the unit of adversarial scheduling for the chaos harness (src/chaos). A
// script is a per-run sampled list of timed fault events (crashes, reboots with per-surface
// storage fates — adversarial sealed blobs and/or host-disk crash-consistency faults —
// partitions, link blocks, schedule jitter, CPU stalls, a targeted stale-recovery-reply
// replay) plus per-replica Byzantine mode assignments, a heal time by
// which every fault has been lifted, and a run horizon. Scripts serialize to a small text
// format so a failing run can be stored as a CI artifact, replayed bit-identically, and
// delta-minimized.
#ifndef SRC_HARNESS_FAULT_SCRIPT_H_
#define SRC_HARNESS_FAULT_SCRIPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/harness/cluster.h"
#include "src/storage/host_storage.h"
#include "src/tee/sealed_storage.h"

namespace achilles {

// Sealed-blob fate at reboot (the TEE sealed-storage surface — the only one the threat
// model allows to roll back).
enum class SealedFate : uint8_t {
  kFresh = 0,   // Latest sealed blob served honestly.
  kStale = 1,   // An old blob replayed (rollback attack).
  kErased = 2,  // Blob store wiped.
};
const char* SealedFateName(SealedFate fate);

// Per-surface storage outcome carried by a reboot event. The surfaces have disjoint
// fault vocabularies by design: the host WAL/record store suffers only crash-consistency
// faults (torn tail, lost unsynced suffix — never rollback), sealed blobs suffer
// only adversarial replay (never torn writes; the sealing device write is atomic), the
// checkpoint snapshot record (v3) is an adversarial host surface of its own — stale /
// erased / corrupt, rollback detectable only where the certificate is TEE-sealed — and
// the defense-backend peer quorum (v4) can lose/regress the rebooting owner's replicated
// copies at one holder (stale / erased; src/storage/defense.h — bounded at one holder so
// a fresh peer always survives, matching the backends' f < n/2 storage-fault assumption).
// Encoded into FaultEvent::arg as (wal | sealed << 8 | snapshot << 16 | defense << 24);
// the all-honest fate encodes to 0, which keeps v1 scripts (arg = RollbackMode, honest =
// kLatest = 0), v2 scripts (no snapshot byte) and v3 scripts (no defense byte)
// meaning-compatible.
struct StorageFate {
  storage::WalFate wal = storage::WalFate::kIntact;
  SealedFate sealed = SealedFate::kFresh;
  checkpoint::SnapshotFate snapshot = checkpoint::SnapshotFate::kIntact;
  persist::DefenseFate defense = persist::DefenseFate::kIntact;
};
uint64_t EncodeStorageFate(StorageFate fate);
StorageFate DecodeStorageFate(uint64_t arg);
// What the adversarial OS sets the sealed-storage device to for this fate.
RollbackMode ToRollbackMode(SealedFate fate);

enum class FaultKind : uint8_t {
  kCrash,         // node: crash the replica host.
  kReboot,        // node, arg = EncodeStorageFate(): per-surface storage outcome.
  kPartition,     // node = rotation offset, peer = size of the first group.
  kHealPartition,
  kJitterOn,      // arg = extra one-way delay ceiling (ns); also enables reorder + dup.
  kJitterOff,
  kBlockLink,     // node -> peer directed link blocked.
  kUnblockLink,
  kStall,         // node, arg = CPU stall duration (ns).
  kStaleRecoveryReplay,  // node: chaos runner re-injects recorded recovery replies at the
                         // node's next boot (targeted nonce-freshness attack; no-op here).
};

const char* FaultKindName(FaultKind kind);
bool FaultKindFromName(std::string_view name, FaultKind* out);

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kCrash;
  uint32_t node = 0;  // Primary operand (crash/reboot/stall target, link source, offset).
  uint32_t peer = 0;  // Secondary operand (link target, partition group size).
  uint64_t arg = 0;   // Kind-specific payload (rollback mode, nanoseconds).
};

struct FaultScript {
  std::vector<ByzantineMode> byzantine;  // Per-replica assignment (kNone = honest).
  std::vector<FaultEvent> events;        // Sorted by `at`.
  SimTime heal_at = 0;   // All faults lifted; the liveness clock starts here.
  SimTime horizon = 0;   // Run end.

  uint32_t ByzantineCount() const;
  // Replicas that crash at least once (distinct). Samplers keep
  // ByzantineCount() + CrashedCount() <= f so the liveness oracle stays sound.
  uint32_t CrashedCount() const;
};

// Protocol capability traits consulted by the sampler (and by tests):
// whether a crashed replica can be rebooted at all in this codebase's model...
bool ProtocolSupportsReboot(Protocol protocol);
// ...whether it persists replica state on the host disk (WAL + record store), making it a
// target for torn-tail / lost-unsynced crash faults at reboot...
bool ProtocolUsesHostStorage(Protocol protocol);
// ...whether it stays safe when the rebooted enclave is served *stale* sealed state
// (Achilles recovers over the network; the -R variants detect the rollback and halt)...
bool ProtocolRollbackProtected(Protocol protocol);
// ...and whether reboot runs Achilles' networked recovery (Algorithm 3), making the node a
// target for the stale-reply replay attack.
bool ProtocolUsesRecovery(Protocol protocol);
// Byzantine modes the sampler may assign under this protocol's fault model (Raft is CFT:
// only omission/timing modes).
std::vector<ByzantineMode> AllowedByzantineModes(Protocol protocol);

struct ScriptParams {
  Protocol protocol = Protocol::kAchilles;
  uint32_t f = 1;
  // Rollback-defense backend the run is configured with (--defense). Under a quorum
  // backend the sampler adds peer-quorum fates at reboot and extends sealed-fate attacks
  // to every backend-using protocol (the backend, not the protocol, must cope). All extra
  // RNG draws are gated behind defense != kLocal so kLocal streams — and therefore replay
  // digests of every pre-v4 artifact — are unchanged.
  persist::DefenseKind defense = persist::DefenseKind::kLocal;
  SimTime heal_at = Ms(1800);
  SimDuration liveness_window = Sec(8);
  // Probability the script contains crash+reboot cycles at all (--reboot-weight). Raising
  // it weights a chaos shard toward reboot-bearing schedules.
  double reboot_prob = 0.65;
  // Probability weight for checkpoint-aware fates (--ckpt-weight): snapshot-surface
  // attacks at reboot and long-lag reboots that force snapshot state transfer instead of
  // block backfill. CI's checkpoint shard raises it.
  double ckpt_prob = 0.35;
};

// Samples a random fault script from `rng`. The sample respects the soundness constraints
// the oracles assume: at most f faulty-or-crashing replicas combined, every reboot
// completes before heal_at, stale sealed storage only against rollback-protected
// protocols, and all chaos jitter off from heal_at on.
FaultScript SampleFaultScript(const ScriptParams& params, Rng& rng);

// A self-contained failing-run reproducer: everything needed to re-run one seed.
struct ScriptArtifact {
  std::string protocol;  // ProtocolName() string.
  uint32_t f = 1;
  uint64_t seed = 0;
  // DefenseKindName() string (v4 header line; absent in v1-v3, defaulting to "local").
  std::string defense = "local";
  FaultScript script;

  std::string ToText() const;
  static bool FromText(const std::string& text, ScriptArtifact* out);
};

}  // namespace achilles

#endif  // SRC_HARNESS_FAULT_SCRIPT_H_
