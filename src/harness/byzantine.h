// Byzantine behaviour shims: wrap an honest replica process and distort its interaction
// with the network — dropping, delaying, duplicating messages, or spamming peers with
// forged traffic. The TEE integrity assumption means a Byzantine node still cannot forge
// certificates; these shims exercise everything else the threat model allows.
#ifndef SRC_HARNESS_BYZANTINE_H_
#define SRC_HARNESS_BYZANTINE_H_

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "src/consensus/messages.h"
#include "src/sim/network.h"

namespace achilles {

enum class ByzantineMode {
  kNone,
  kSilent,        // Drops every incoming message (crash-equivalent, strongest liveness attack).
  kFlaky,         // Drops a fraction of incoming messages.
  kDelayer,       // Re-delivers incoming messages after a random extra delay.
  kDuplicator,    // Processes every message twice (replay against idempotence).
  kSpammer,       // Handles traffic honestly but floods peers with forged junk.
  kStaleReplay,   // Handles traffic honestly but re-sends stashed old messages to peers
                  // (stale-vote/stale-cert replay; certificates stay valid, freshness not).
  kSelectiveSend, // Honest protocol logic, but mutes its own links to a subset of peers
                  // (equivocation-by-omission: different peers see different behaviour).
  kReorderBurst,  // Buffers incoming messages and processes them in reverse-order bursts.
};

// Number of enum values including kNone (for protocol x mode sweeps).
inline constexpr int kNumByzantineModes = 9;

const char* ByzantineModeName(ByzantineMode mode);
// Inverse of ByzantineModeName; returns false on unknown names.
bool ByzantineModeFromName(std::string_view name, ByzantineMode* out);

class ByzantineShim : public IProcess {
 public:
  ByzantineShim(std::unique_ptr<IProcess> inner, ByzantineMode mode, Host* host,
                Network* net, uint32_t num_replicas, uint64_t seed);

  void OnStart() override;
  void OnMessage(uint32_t from, const MessageRef& msg) override;

 private:
  void SpamOnce();
  void ReplayOnce();
  void FlushReorderBuffer();

  std::unique_ptr<IProcess> inner_;
  ByzantineMode mode_;
  Host* host_;
  Network* net_;
  uint32_t num_replicas_;
  Rng rng_;
  std::vector<MessageRef> stash_;  // kStaleReplay: ring of old messages to re-send.
  size_t stash_next_ = 0;
  std::vector<std::pair<uint32_t, MessageRef>> reorder_buffer_;  // kReorderBurst.
};

}  // namespace achilles

#endif  // SRC_HARNESS_BYZANTINE_H_
