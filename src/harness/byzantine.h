// Byzantine behaviour shims: wrap an honest replica process and distort its interaction
// with the network — dropping, delaying, duplicating messages, or spamming peers with
// forged traffic. The TEE integrity assumption means a Byzantine node still cannot forge
// certificates; these shims exercise everything else the threat model allows.
#ifndef SRC_HARNESS_BYZANTINE_H_
#define SRC_HARNESS_BYZANTINE_H_

#include <memory>

#include "src/consensus/messages.h"
#include "src/sim/network.h"

namespace achilles {

enum class ByzantineMode {
  kNone,
  kSilent,     // Drops every incoming message (crash-equivalent, strongest liveness attack).
  kFlaky,      // Drops a fraction of incoming messages.
  kDelayer,    // Re-delivers incoming messages after a random extra delay.
  kDuplicator, // Processes every message twice (replay against idempotence).
  kSpammer,    // Handles traffic honestly but floods peers with forged junk.
};

class ByzantineShim : public IProcess {
 public:
  ByzantineShim(std::unique_ptr<IProcess> inner, ByzantineMode mode, Host* host,
                Network* net, uint32_t num_replicas, uint64_t seed);

  void OnStart() override;
  void OnMessage(uint32_t from, const MessageRef& msg) override;

 private:
  void SpamOnce();

  std::unique_ptr<IProcess> inner_;
  ByzantineMode mode_;
  Host* host_;
  Network* net_;
  uint32_t num_replicas_;
  Rng rng_;
};

}  // namespace achilles

#endif  // SRC_HARNESS_BYZANTINE_H_
