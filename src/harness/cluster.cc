#include "src/harness/cluster.h"

#include <chrono>

#include "src/achilles/replica.h"
#include "src/common/check.h"
#include "src/damysus/replica.h"
#include "src/hotstuff/replica.h"
#include "src/minbft/replica.h"
#include "src/flexibft/replica.h"
#include "src/oneshot/replica.h"
#include "src/raft/replica.h"

namespace achilles {

const char* ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kAchilles:
      return "Achilles";
    case Protocol::kAchillesC:
      return "Achilles-C";
    case Protocol::kDamysus:
      return "Damysus";
    case Protocol::kDamysusR:
      return "Damysus-R";
    case Protocol::kOneShot:
      return "OneShot";
    case Protocol::kOneShotR:
      return "OneShot-R";
    case Protocol::kFlexiBft:
      return "FlexiBFT";
    case Protocol::kRaft:
      return "BRaft";
    case Protocol::kMinBft:
      return "MinBFT";
    case Protocol::kHotStuff:
      return "HotStuff";
  }
  return "?";
}

bool ProtocolFromName(std::string_view name, Protocol* out) {
  for (int i = 0; i < kNumProtocols; ++i) {
    const Protocol protocol = static_cast<Protocol>(i);
    if (name == ProtocolName(protocol)) {
      *out = protocol;
      return true;
    }
  }
  return false;
}

uint32_t ReplicasFor(Protocol protocol, uint32_t f) {
  const bool three_f =
      protocol == Protocol::kFlexiBft || protocol == Protocol::kHotStuff;
  return three_f ? 3 * f + 1 : 2 * f + 1;
}

bool DefaultCounterEnabled(Protocol protocol) {
  switch (protocol) {
    case Protocol::kDamysusR:
    case Protocol::kOneShotR:
    case Protocol::kFlexiBft:
    case Protocol::kMinBft:
      return true;
    default:
      return false;
  }
}

bool ProtocolUsesDefenseBackend(Protocol protocol) {
  switch (protocol) {
    case Protocol::kAchilles:
    case Protocol::kAchillesC:
    case Protocol::kDamysus:
    case Protocol::kDamysusR:
    case Protocol::kOneShot:
    case Protocol::kOneShotR:
      return true;
    default:
      return false;
  }
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      n_(ReplicasFor(config.protocol, config.f)),
      tracer_(config.trace_capacity),
      journal_(config.journal_control_capacity, config.journal_flow_capacity),
      sim_(config.seed, config.engine),
      net_(&sim_, config.net),
      suite_(config.scheme, n_, config.seed ^ 0x5eedc0deULL),
      tracker_(n_) {
  TeeConfig tee = config_.tee;
  tee.components_in_tee = config_.protocol != Protocol::kAchillesC &&
                          config_.protocol != Protocol::kRaft &&
                          config_.protocol != Protocol::kHotStuff;
  // Under a quorum defense the backend replaces the counter's anti-rollback role for the
  // protocols on the defense seam (-R keeps halting on detection, via the backend); the
  // protocol-intrinsic counters (MinBFT USIG, FlexiBFT leader) stay regardless.
  const bool defended = config_.defense != persist::DefenseKind::kLocal &&
                        ProtocolUsesDefenseBackend(config_.protocol);
  tee.counter = DefaultCounterEnabled(config_.protocol) && !defended ? config_.counter
                                                                     : CounterSpec::None();

  tracer_.set_enabled(config_.tracing);
  journal_.set_enabled(config_.journaling);
  critpath_.set_enabled(config_.critpath);
  tracker_.SetBreakdown(&breakdown_);
  tracker_.SetCritPath(&critpath_);
  net_.set_critpath(&critpath_);
  net_.AttachMetrics(&metrics_);

  if (defended) {
    persist::DefenseCosts defense_costs;
    defense_costs.one_way = config_.net.one_way_base;
    defense_costs.replica_write = config_.costs.defense_replica_write;
    defense_costs.replica_read = config_.costs.defense_replica_read;
    defense_costs.cert_op = config_.costs.defense_cert_op;
    defense_service_ = std::make_unique<persist::DefenseService>(n_, defense_costs);
  }
  for (uint32_t i = 0; i < n_; ++i) {
    hosts_.push_back(std::make_unique<Host>(&sim_, i));
    net_.AddHost(hosts_.back().get());
    platforms_.push_back(std::make_unique<NodePlatform>(hosts_.back().get(), &suite_,
                                                        config_.costs, tee, config_.seed));
    if (defended) {
      platforms_.back()->ConfigureDefense(config_.defense, defense_service_.get());
    }
  }
  replica_ptrs_.assign(n_, nullptr);
  byzantine_.assign(n_, ByzantineMode::kNone);
  if (config_.with_client) {
    hosts_.push_back(std::make_unique<Host>(&sim_, n_));
    net_.AddHost(hosts_.back().get());
  }
  if (config_.app_kv) {
    hosts_.push_back(std::make_unique<Host>(&sim_, kv_client_host_id()));
    net_.AddHost(hosts_.back().get());
    std::vector<Host*> replica_hosts;
    for (uint32_t i = 0; i < n_; ++i) {
      replica_hosts.push_back(hosts_[i].get());
    }
    kv_service_ = std::make_unique<app::KvService>(std::move(replica_hosts), &net_,
                                                   &tracker_, kv_client_host_id(),
                                                   config_.kv, &metrics_);
    tracker_.AddCommitListener([this](NodeId replica, const BlockPtr& block, SimTime now) {
      kv_service_->OnCommit(replica, block, now);
    });
    tracker_.AddProposeListener([this](NodeId proposer, const BlockPtr& block) {
      kv_service_->OnProposal(proposer, block);
    });
  }
  if (config_.ckpt.enabled) {
    std::vector<NodePlatform*> replica_platforms;
    for (uint32_t i = 0; i < n_; ++i) {
      replica_platforms.push_back(platforms_[i].get());
    }
    ckpt_manager_ = std::make_unique<checkpoint::CheckpointManager>(
        std::move(replica_platforms), &net_, &suite_, config_.costs, config_.ckpt,
        CheckpointQuorum(), &metrics_);
    ckpt_manager_->AttachReplicas(&replica_ptrs_);
    if (kv_service_ != nullptr) {
      ckpt_manager_->AttachKv(kv_service_.get());
      ckpt_manager_->SetNextSink(kv_service_.get());
    }
    // Registered after the KvService listener: boundary snapshots must see current mirrors.
    tracker_.AddCommitListener([this](NodeId replica, const BlockPtr& block, SimTime now) {
      ckpt_manager_->OnCommit(replica, block, now);
    });
  }
  for (auto& host : hosts_) {
    host->set_tracer(&tracer_);
    host->set_journal(&journal_);
    host->set_critpath(&critpath_);
    host->AttachMetrics(&metrics_);
  }
}

Cluster::~Cluster() = default;

ReplicaContext Cluster::ContextFor(uint32_t id) {
  ReplicaContext ctx;
  ctx.platform = platforms_[id].get();
  ctx.net = &net_;
  ctx.tracker = &tracker_;
  ctx.params.n = n_;
  ctx.params.f = config_.f;
  ctx.params.batch_size = config_.batch_size;
  ctx.params.base_timeout = config_.base_timeout;
  ctx.params.commit_fast_path = config_.commit_fast_path;
  ctx.params.break_recovery_nonce = config_.break_recovery_nonce;
  ctx.params.break_counter_compare = config_.break_counter_compare;
  ctx.ckpt = config_.ckpt;
  // Checkpoint traffic is consumed first; everything else chains to the KvService.
  ctx.app = ckpt_manager_ != nullptr ? static_cast<AppMessageSink*>(ckpt_manager_.get())
                                     : static_cast<AppMessageSink*>(kv_service_.get());
  if (config_.with_client) {
    ctx.client_ids = {n_};
  }
  return ctx;
}

std::unique_ptr<ReplicaBase> Cluster::MakeReplica(uint32_t id, bool initial_launch) {
  const ReplicaContext ctx = ContextFor(id);
  switch (config_.protocol) {
    case Protocol::kAchilles:
    case Protocol::kAchillesC:
      return std::make_unique<AchillesReplica>(ctx, initial_launch);
    case Protocol::kDamysus:
    case Protocol::kDamysusR:
      return std::make_unique<DamysusReplica>(ctx, initial_launch);
    case Protocol::kOneShot:
    case Protocol::kOneShotR:
      return std::make_unique<OneShotReplica>(ctx, initial_launch);
    case Protocol::kFlexiBft:
      return std::make_unique<FlexiBftReplica>(ctx, initial_launch);
    case Protocol::kRaft:
      return std::make_unique<RaftReplica>(ctx, initial_launch);
    case Protocol::kMinBft:
      return std::make_unique<MinBftReplica>(ctx, initial_launch);
    case Protocol::kHotStuff:
      return std::make_unique<HotStuffReplica>(ctx, initial_launch);
  }
  ACHILLES_CHECK_MSG(false, "unknown protocol");
  return nullptr;
}

void Cluster::SetByzantine(uint32_t id, ByzantineMode mode) {
  ACHILLES_CHECK(!started_ && id < n_);
  byzantine_[id] = mode;
  if (mode != ByzantineMode::kNone) {
    tracker_.MarkByzantine(id);
  }
}

void Cluster::Start() {
  ACHILLES_CHECK(!started_);
  started_ = true;
  for (uint32_t i = 0; i < n_; ++i) {
    auto replica = MakeReplica(i, /*initial_launch=*/true);
    replica_ptrs_[i] = replica.get();
    if (byzantine_[i] != ByzantineMode::kNone) {
      hosts_[i]->BindProcess(std::make_unique<ByzantineShim>(
          std::move(replica), byzantine_[i], hosts_[i].get(), &net_, n_,
          config_.seed ^ (0xb00b5ULL + i)));
    } else {
      hosts_[i]->BindProcess(std::move(replica));
    }
  }
  if (config_.with_client) {
    ClientConfig cc;
    cc.payload_size = config_.payload_size;
    cc.rate_tps = config_.client_rate_tps;
    cc.chunk = std::max<size_t>(1, config_.batch_size / 2);
    cc.max_outstanding = config_.client_max_outstanding != 0
                             ? config_.client_max_outstanding
                             : 10 * config_.batch_size;
    cc.num_replicas = n_;
    hosts_[n_]->BindProcess(
        std::make_unique<ClientProcess>(hosts_[n_].get(), &net_, &tracker_, cc));
  }
  if (config_.app_kv) {
    KvClientConfig kc = config_.kv_client;
    kc.num_replicas = n_;
    kc.first_replica_host = 0;
    kc.f = config_.f;
    kc.payload_size = config_.kv.payload_size;
    Host* kv_host = hosts_[config_.with_client ? n_ + 1 : n_].get();
    auto kv_client = std::make_unique<KvClientProcess>(kv_host, &net_, kc, &metrics_);
    kv_client_ = kv_client.get();
    kv_host->BindProcess(std::move(kv_client));
  }
}

void Cluster::CrashReplica(uint32_t id) {
  ACHILLES_CHECK(id < n_);
  replica_ptrs_[id] = nullptr;
  hosts_[id]->Crash();
  if (kv_service_ != nullptr) {
    kv_service_->OnReplicaCrash(id);
  }
  if (ckpt_manager_ != nullptr) {
    ckpt_manager_->OnReplicaCrash(id);
  }
}

size_t Cluster::CheckpointQuorum() const {
  const bool three_f =
      config_.protocol == Protocol::kFlexiBft || config_.protocol == Protocol::kHotStuff;
  return three_f ? 2 * static_cast<size_t>(config_.f) + 1
                 : static_cast<size_t>(config_.f) + 1;
}

SimDuration Cluster::ReplicaInitDelay() const {
  const TeeConfig& tee = platforms_[0]->tee();
  return tee.enclave_boot + static_cast<SimDuration>(n_ - 1) * tee.connect_per_peer;
}

void Cluster::RebootReplica(uint32_t id) {
  ACHILLES_CHECK(id < n_);
  auto replica = MakeReplica(id, /*initial_launch=*/false);
  replica_ptrs_[id] = replica.get();
  hosts_[id]->Reboot(std::move(replica), ReplicaInitDelay());
  if (kv_service_ != nullptr) {
    // Boot silence starts at the moment the fresh incarnation binds.
    kv_service_->OnReplicaReboot(id, sim_.Now() + ReplicaInitDelay());
  }
  if (ckpt_manager_ != nullptr) {
    ckpt_manager_->OnReplicaReboot(id);
  }
}

RunStats Cluster::RunMeasured(SimDuration warmup, SimDuration measure) {
  if (!started_) {
    Start();
  }
  sim_.RunFor(warmup);
  tracker_.StartMeasurement(sim_.Now());
  net_.ResetStats();
  const uint64_t counter_before = TotalCounterWrites();
  const uint64_t blocks_before = tracker_.total_committed_blocks();
  const uint64_t events_before = sim_.executed_events();
  const auto wall_start = std::chrono::steady_clock::now();
  sim_.RunFor(measure);
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  tracker_.EndMeasurement(sim_.Now());

  // Simulator self-profiling: how hard the event loop worked for this measured window.
  // Gauges (not part of RunStats) so every bench's --json-out picks them up for free.
  const uint64_t events = sim_.executed_events() - events_before;
  metrics_.GetGauge("sim.events_processed")->Set(static_cast<double>(events));
  // Always materialize the rate gauges (zero when the clock was too coarse to observe
  // any wall time), so every JSON export — smoke runs included — carries the same keys.
  const double safe_wall = wall_sec > 0.0 ? wall_sec : 0.0;
  metrics_.GetGauge("sim.events_per_wall_sec")
      ->Set(safe_wall > 0.0 ? static_cast<double>(events) / safe_wall : 0.0);
  metrics_.GetGauge("sim.wall_ms_per_virtual_sec")
      ->Set(measure > 0 ? safe_wall * 1e3 / (static_cast<double>(measure) / kSecond) : 0.0);
  metrics_.GetGauge("sim.peak_pending_events")
      ->Set(static_cast<double>(sim_.peak_pending_events()));
  RefreshFootprintGauges();

  // Observability truncation gauges: how much the span ring and flight recorder dropped.
  // Always exported so trend guards can watch them even on runs with tracing off.
  metrics_.GetGauge("trace.dropped_spans")->Set(static_cast<double>(tracer_.dropped()));
  metrics_.GetGauge("journal.events_recorded")->Set(static_cast<double>(journal_.recorded()));
  metrics_.GetGauge("journal.events_evicted")->Set(static_cast<double>(journal_.evicted()));

  RunStats stats;
  stats.throughput_tps = tracker_.ThroughputTps();
  stats.commit_latency_ms = tracker_.commit_latency().MeanMs();
  stats.commit_p50_ms = tracker_.commit_latency().PercentileMs(50);
  stats.commit_p99_ms = tracker_.commit_latency().PercentileMs(99);
  stats.e2e_latency_ms = tracker_.e2e_latency().MeanMs();
  stats.e2e_p99_ms = tracker_.e2e_latency().PercentileMs(99);
  stats.committed_blocks = tracker_.total_committed_blocks() - blocks_before;
  stats.committed_txs =
      static_cast<uint64_t>(stats.throughput_tps * (static_cast<double>(measure) / kSecond));
  stats.messages = net_.messages_sent();
  stats.bytes = net_.bytes_sent();
  stats.counter_writes = TotalCounterWrites() - counter_before;
  stats.safety_ok = !tracker_.safety_violated();
  stats.breakdown = breakdown_.MeanPerTx();
  if (critpath_.enabled()) {
    stats.critpath = critpath_.Summarize();
    metrics_.GetGauge("critpath.activities")
        ->Set(static_cast<double>(critpath_.activities()));
    metrics_.GetGauge("critpath.dropped_activities")
        ->Set(static_cast<double>(critpath_.dropped_activities()));
    metrics_.GetGauge("critpath.dropped_segments")
        ->Set(static_cast<double>(critpath_.dropped_segments()));
  }
  return stats;
}

void Cluster::RefreshFootprintGauges() {
  for (uint32_t i = 0; i < n_; ++i) {
    const obs::MetricsRegistry::Labels labels{{"node", std::to_string(i)}};
    const storage::HostStableStorage& disk = platforms_[i]->host_storage();
    uint64_t entries = disk.TotalWalRecords();
    uint64_t bytes = disk.TotalWalBytes();
    if (const ReplicaBase* rep = replica_ptrs_[i]) {
      entries += rep->store().size();
      bytes += rep->store().ApproxBytes();
    }
    metrics_.GetGauge("log.entries_retained", labels)->Set(static_cast<double>(entries));
    metrics_.GetGauge("log.bytes_retained", labels)->Set(static_cast<double>(bytes));
    if (ckpt_manager_ != nullptr) {
      metrics_.GetGauge("ckpt.last_stable_seq", labels)
          ->Set(static_cast<double>(ckpt_manager_->last_stable(i)));
    }
  }
}

uint64_t Cluster::TotalCounterWrites() const {
  uint64_t total = 0;
  for (const auto& platform : platforms_) {
    total += platform->counter().writes();
  }
  return total;
}

}  // namespace achilles
