// Shared CLI flag family for every bench and chaos tool. One FlagSet parses the four
// flags that cut across the whole tool fleet, so no binary grows its own divergent
// spelling of them:
//
//   --defense NAME|--defense=NAME   rollback-defense backend (local|rollbaccine|healer;
//                                   src/storage/defense.h). Applied process-wide via
//                                   persist::SetDefaultDefense, so every ClusterConfig a
//                                   bench builds afterwards picks it up with no per-bench
//                                   plumbing.
//   --json-out[=PATH]               machine-readable report (BENCH_<tool>.json default)
//   --trace-out[=PATH]              Chrome trace_event export of the first measured run
//   --critpath-out[=PATH]           causal critical-path profile export
//
// Parse extracts the family from argv in place — consumed entries are removed and *argc
// shrinks — so a tool's own parser only ever sees its private flags. Tools that have no
// use for an out-path (chaos_main, bench_trend) still accept the family: the values are
// parsed, exposed through the accessors, and simply unused.
#ifndef SRC_HARNESS_FLAGS_H_
#define SRC_HARNESS_FLAGS_H_

#include <string>

#include "src/storage/defense.h"

namespace achilles {
namespace harness {

class FlagSet {
 public:
  // `tool` names the binary for diagnostics and for the default BENCH_<tool>.* paths.
  explicit FlagSet(const char* tool);

  // Consumes the shared flag family from argv[1..*argc), compacting the survivors and
  // updating *argc. On success applies --defense via persist::SetDefaultDefense and
  // returns true; on a malformed value (e.g. --defense bogus) prints a diagnostic naming
  // the tool and returns false. Idempotent over argv: flags not in the family are left
  // untouched, in order.
  bool Parse(int* argc, char** argv);

  persist::DefenseKind defense() const { return defense_; }
  bool defense_set() const { return defense_set_; }
  const std::string& json_out() const { return json_out_; }
  const std::string& trace_out() const { return trace_out_; }
  const std::string& critpath_out() const { return critpath_out_; }

 private:
  std::string tool_;
  persist::DefenseKind defense_ = persist::DefenseKind::kLocal;
  bool defense_set_ = false;
  std::string json_out_;
  std::string trace_out_;
  std::string critpath_out_;
};

}  // namespace harness
}  // namespace achilles

#endif  // SRC_HARNESS_FLAGS_H_
