#include "src/harness/byzantine.h"

#include <algorithm>

#include "src/consensus/certificates.h"

namespace achilles {

namespace {

// Forged junk the spammer floods: a fetch request for a random hash plus an outright
// garbage "certificate" message shaped like client traffic.
MessageRef MakeJunk(Rng& rng) {
  if (rng.Chance(0.5)) {
    auto req = std::make_shared<BlockFetchRequest>();
    Bytes noise;
    rng.Fill(noise, 32);
    std::copy(noise.begin(), noise.end(), req->want.begin());
    return req;
  }
  auto submit = std::make_shared<ClientSubmitMsg>();
  submit->txs.push_back(
      Transaction{rng.NextU64(), 0, static_cast<uint32_t>(rng.UniformU64(512))});
  return submit;
}

}  // namespace

const char* ByzantineModeName(ByzantineMode mode) {
  switch (mode) {
    case ByzantineMode::kNone:
      return "none";
    case ByzantineMode::kSilent:
      return "silent";
    case ByzantineMode::kFlaky:
      return "flaky";
    case ByzantineMode::kDelayer:
      return "delayer";
    case ByzantineMode::kDuplicator:
      return "duplicator";
    case ByzantineMode::kSpammer:
      return "spammer";
    case ByzantineMode::kStaleReplay:
      return "stale-replay";
    case ByzantineMode::kSelectiveSend:
      return "selective-send";
    case ByzantineMode::kReorderBurst:
      return "reorder-burst";
  }
  return "?";
}

bool ByzantineModeFromName(std::string_view name, ByzantineMode* out) {
  for (int i = 0; i < kNumByzantineModes; ++i) {
    const ByzantineMode mode = static_cast<ByzantineMode>(i);
    if (name == ByzantineModeName(mode)) {
      *out = mode;
      return true;
    }
  }
  return false;
}

ByzantineShim::ByzantineShim(std::unique_ptr<IProcess> inner, ByzantineMode mode, Host* host,
                             Network* net, uint32_t num_replicas, uint64_t seed)
    : inner_(std::move(inner)),
      mode_(mode),
      host_(host),
      net_(net),
      num_replicas_(num_replicas),
      rng_(seed) {}

void ByzantineShim::OnStart() {
  if (mode_ != ByzantineMode::kSilent) {
    inner_->OnStart();
  }
  switch (mode_) {
    case ByzantineMode::kSpammer:
      SpamOnce();
      break;
    case ByzantineMode::kStaleReplay:
      host_->SetTimer(Ms(3), [this] { ReplayOnce(); });
      break;
    case ByzantineMode::kSelectiveSend: {
      // Mute this node's own links to roughly half its peers: the rest of the cluster sees
      // an apparently-live replica whose votes never reach some quorum collectors.
      const uint32_t mute = std::max<uint32_t>(1, (num_replicas_ - 1) / 2);
      const uint32_t rot = static_cast<uint32_t>(rng_.UniformU64(num_replicas_));
      uint32_t muted = 0;
      for (uint32_t i = 0; i < num_replicas_ && muted < mute; ++i) {
        const uint32_t peer = (rot + i) % num_replicas_;
        if (peer == host_->id()) {
          continue;
        }
        net_->SetLinkBlocked(host_->id(), peer, true);
        ++muted;
      }
      break;
    }
    case ByzantineMode::kReorderBurst:
      host_->SetTimer(Ms(8), [this] { FlushReorderBuffer(); });
      break;
    default:
      break;
  }
}

void ByzantineShim::OnMessage(uint32_t from, const MessageRef& msg) {
  switch (mode_) {
    case ByzantineMode::kNone:
      inner_->OnMessage(from, msg);
      return;
    case ByzantineMode::kSilent:
      return;
    case ByzantineMode::kFlaky:
      if (!rng_.Chance(0.4)) {
        inner_->OnMessage(from, msg);
      }
      return;
    case ByzantineMode::kDelayer: {
      const SimDuration delay = static_cast<SimDuration>(rng_.UniformU64(Ms(50)));
      host_->SetTimer(delay, [this, from, msg] { inner_->OnMessage(from, msg); });
      return;
    }
    case ByzantineMode::kDuplicator:
      inner_->OnMessage(from, msg);
      inner_->OnMessage(from, msg);
      return;
    case ByzantineMode::kSpammer:
      inner_->OnMessage(from, msg);
      return;
    case ByzantineMode::kStaleReplay:
      inner_->OnMessage(from, msg);
      // Keep a bounded ring of everything seen; ReplayOnce re-sends from it later.
      if (stash_.size() < 64) {
        stash_.push_back(msg);
      } else {
        stash_[stash_next_] = msg;
        stash_next_ = (stash_next_ + 1) % stash_.size();
      }
      return;
    case ByzantineMode::kSelectiveSend:
      inner_->OnMessage(from, msg);
      return;
    case ByzantineMode::kReorderBurst:
      reorder_buffer_.emplace_back(from, msg);
      return;
  }
}

void ByzantineShim::SpamOnce() {
  for (int i = 0; i < 4; ++i) {
    const uint32_t target = static_cast<uint32_t>(rng_.UniformU64(num_replicas_));
    net_->Send(host_->id(), target, MakeJunk(rng_));
  }
  host_->SetTimer(Ms(2), [this] { SpamOnce(); });
}

void ByzantineShim::ReplayOnce() {
  if (!stash_.empty()) {
    // Replay a stashed (possibly very old) message to a random peer. Signatures inside it
    // are still genuine, so this probes every receiver's freshness/idempotence checks.
    const MessageRef& old = stash_[rng_.UniformU64(stash_.size())];
    const uint32_t target = static_cast<uint32_t>(rng_.UniformU64(num_replicas_));
    if (target != host_->id()) {
      net_->Send(host_->id(), target, old);
    }
  }
  host_->SetTimer(Ms(3), [this] { ReplayOnce(); });
}

void ByzantineShim::FlushReorderBuffer() {
  // Deliver the burst to the inner replica in reverse arrival order.
  for (auto it = reorder_buffer_.rbegin(); it != reorder_buffer_.rend(); ++it) {
    inner_->OnMessage(it->first, it->second);
  }
  reorder_buffer_.clear();
  host_->SetTimer(Ms(8), [this] { FlushReorderBuffer(); });
}

}  // namespace achilles
