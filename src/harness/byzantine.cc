#include "src/harness/byzantine.h"

#include "src/consensus/certificates.h"

namespace achilles {

namespace {

// Forged junk the spammer floods: a fetch request for a random hash plus an outright
// garbage "certificate" message shaped like client traffic.
MessageRef MakeJunk(Rng& rng) {
  if (rng.Chance(0.5)) {
    auto req = std::make_shared<BlockFetchRequest>();
    Bytes noise;
    rng.Fill(noise, 32);
    std::copy(noise.begin(), noise.end(), req->want.begin());
    return req;
  }
  auto submit = std::make_shared<ClientSubmitMsg>();
  submit->txs.push_back(
      Transaction{rng.NextU64(), 0, static_cast<uint32_t>(rng.UniformU64(512))});
  return submit;
}

}  // namespace

ByzantineShim::ByzantineShim(std::unique_ptr<IProcess> inner, ByzantineMode mode, Host* host,
                             Network* net, uint32_t num_replicas, uint64_t seed)
    : inner_(std::move(inner)),
      mode_(mode),
      host_(host),
      net_(net),
      num_replicas_(num_replicas),
      rng_(seed) {}

void ByzantineShim::OnStart() {
  if (mode_ != ByzantineMode::kSilent) {
    inner_->OnStart();
  }
  if (mode_ == ByzantineMode::kSpammer) {
    SpamOnce();
  }
}

void ByzantineShim::OnMessage(uint32_t from, const MessageRef& msg) {
  switch (mode_) {
    case ByzantineMode::kNone:
      inner_->OnMessage(from, msg);
      return;
    case ByzantineMode::kSilent:
      return;
    case ByzantineMode::kFlaky:
      if (!rng_.Chance(0.4)) {
        inner_->OnMessage(from, msg);
      }
      return;
    case ByzantineMode::kDelayer: {
      const SimDuration delay = static_cast<SimDuration>(rng_.UniformU64(Ms(50)));
      host_->SetTimer(delay, [this, from, msg] { inner_->OnMessage(from, msg); });
      return;
    }
    case ByzantineMode::kDuplicator:
      inner_->OnMessage(from, msg);
      inner_->OnMessage(from, msg);
      return;
    case ByzantineMode::kSpammer:
      inner_->OnMessage(from, msg);
      return;
  }
}

void ByzantineShim::SpamOnce() {
  for (int i = 0; i < 4; ++i) {
    const uint32_t target = static_cast<uint32_t>(rng_.UniformU64(num_replicas_));
    net_->Send(host_->id(), target, MakeJunk(rng_));
  }
  host_->SetTimer(Ms(2), [this] { SpamOnce(); });
}

}  // namespace achilles
