// Experiment helpers shared by the bench binaries: single measured runs, saturation
// search, and aligned table printing.
#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/harness/cluster.h"

namespace achilles {

// Runs one cluster to completion of warmup+measure and returns the stats. Aborts the
// process with a diagnostic if the run violated safety (a bench must never average over a
// broken run).
RunStats MeasureOnce(const ClusterConfig& config, SimDuration warmup, SimDuration measure);

// Smoke-scale factor from ACHILLES_BENCH_SCALE in (0, 1), or 1.0 when unset. MeasureOnce
// applies it to measurement windows; microbenches (bench_sim_core) apply it to op counts.
double BenchScale();

// Default measurement windows per network profile (WAN views are ~400x longer).
SimDuration DefaultWarmup(const NetworkConfig& net);
SimDuration DefaultMeasure(const NetworkConfig& net);

// --- Table printing ---

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

  static std::string Num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace achilles

#endif  // SRC_HARNESS_EXPERIMENT_H_
