#include "src/harness/parallel.h"

#include "src/achilles/replica.h"
#include "src/common/check.h"

namespace achilles {

ParallelStats RunParallelAchilles(const ParallelConfig& config, SimDuration warmup,
                                  SimDuration measure) {
  const uint32_t n = 2 * config.f + 1;  // Machines.
  const uint32_t k = config.instances;
  ACHILLES_CHECK(k >= 1);

  Simulation sim(config.seed);
  Network net(&sim, config.net);
  // One signing identity per machine: every instance's replica on machine m signs as m.
  CryptoSuite suite(SignatureScheme::kFastHmac, n, config.seed ^ 0x9a7a11e1ULL);

  // Host layout: instance i's replica on machine m is host i*n + m; instance i's client is
  // host k*n + i. Replicas on the same machine share its NIC.
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<std::unique_ptr<NodePlatform>> platforms;
  std::vector<std::unique_ptr<CommitTracker>> trackers;
  const TeeConfig tee;

  for (uint32_t i = 0; i < k; ++i) {
    trackers.push_back(std::make_unique<CommitTracker>(n));
    for (uint32_t m = 0; m < n; ++m) {
      hosts.push_back(std::make_unique<Host>(&sim, i * n + m));
      net.AddHost(hosts.back().get());
      platforms.push_back(std::make_unique<NodePlatform>(
          hosts.back().get(), &suite, config.costs, tee, config.seed, /*node_id=*/m));
    }
  }
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t m = 0; m < n; ++m) {
      net.SetMachine(i * n + m, m);
    }
  }
  for (uint32_t i = 0; i < k; ++i) {
    hosts.push_back(std::make_unique<Host>(&sim, k * n + i));
    net.AddHost(hosts.back().get());
  }

  for (uint32_t i = 0; i < k; ++i) {
    std::vector<uint32_t> replica_hosts(n);
    for (uint32_t m = 0; m < n; ++m) {
      replica_hosts[m] = i * n + m;
    }
    for (uint32_t m = 0; m < n; ++m) {
      ReplicaContext ctx;
      ctx.platform = platforms[i * n + m].get();
      ctx.net = &net;
      ctx.tracker = trackers[i].get();
      ctx.params.n = n;
      ctx.params.f = config.f;
      ctx.params.batch_size = config.batch_size;
      ctx.params.base_timeout = config.base_timeout;
      ctx.client_ids = {k * n + i};
      ctx.replica_hosts = replica_hosts;
      hosts[i * n + m]->BindProcess(
          std::make_unique<AchillesReplica>(ctx, /*initial_launch=*/true));
    }
    // One saturating client per instance (transactions striped by construction: each
    // client only feeds its own instance).
    ClientConfig cc;
    cc.payload_size = config.payload_size;
    cc.rate_tps = 0.0;
    cc.chunk = std::max<size_t>(1, config.batch_size / 2);
    cc.max_outstanding = 10 * config.batch_size;
    cc.num_replicas = n;
    cc.first_replica_host = i * n;  // This instance's contiguous host range.
    hosts[k * n + i]->BindProcess(std::make_unique<ClientProcess>(
        hosts[k * n + i].get(), &net, trackers[i].get(), cc));
  }

  sim.RunFor(warmup);
  for (auto& tracker : trackers) {
    tracker->StartMeasurement(sim.Now());
  }
  sim.RunFor(measure);
  ParallelStats stats;
  double latency_sum = 0.0;
  for (auto& tracker : trackers) {
    tracker->EndMeasurement(sim.Now());
    const double tps = tracker->ThroughputTps();
    stats.per_instance_tps.push_back(tps);
    stats.total_throughput_tps += tps;
    latency_sum += tracker->commit_latency().MeanMs();
    stats.safety_ok = stats.safety_ok && !tracker->safety_violated();
  }
  stats.commit_latency_ms = latency_sum / static_cast<double>(k);
  return stats;
}

}  // namespace achilles
