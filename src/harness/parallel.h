// Concurrent consensus instances — the parallelization the paper leaves as future work
// (§6.1, citing RCC/Mir-BFT): k independent Achilles instances run on the same n machines
// (one replica of each instance per machine, sharing the machine's NIC), with client
// transactions striped across instances. Aggregate throughput approaches k× until the
// shared NIC saturates.
#ifndef SRC_HARNESS_PARALLEL_H_
#define SRC_HARNESS_PARALLEL_H_

#include <memory>
#include <vector>

#include "src/harness/cluster.h"

namespace achilles {

struct ParallelConfig {
  uint32_t f = 2;
  uint32_t instances = 2;  // k.
  size_t batch_size = 400;
  uint32_t payload_size = 256;
  NetworkConfig net = NetworkConfig::Lan();
  CostModel costs = CostModel::Default();
  SimDuration base_timeout = Ms(500);
  uint64_t seed = 1;
};

struct ParallelStats {
  double total_throughput_tps = 0.0;
  double commit_latency_ms = 0.0;  // Mean over all instances.
  bool safety_ok = true;
  std::vector<double> per_instance_tps;
};

// Builds the striped deployment, runs warmup + measure, and aggregates.
ParallelStats RunParallelAchilles(const ParallelConfig& config, SimDuration warmup,
                                  SimDuration measure);

}  // namespace achilles

#endif  // SRC_HARNESS_PARALLEL_H_
