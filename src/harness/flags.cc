#include "src/harness/flags.h"

#include <cstdio>
#include <cstring>

namespace achilles {
namespace harness {
namespace {

// Matches `--flag` / `--flag=value`; value-less occurrences yield an empty string (the
// caller substitutes its default).
bool MatchPathFlag(const char* arg, const char* flag, std::string* value) {
  const size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0) {
    return false;
  }
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] == '=') {
    value->assign(arg + len + 1);
    return true;
  }
  return false;
}

}  // namespace

FlagSet::FlagSet(const char* tool) : tool_(tool) {}

bool FlagSet::Parse(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--defense") == 0 ||
        std::strncmp(arg, "--defense=", 10) == 0) {
      const char* name = nullptr;
      if (arg[9] == '=') {
        name = arg + 10;
      } else if (i + 1 < *argc) {
        name = argv[++i];
      } else {
        std::fprintf(stderr, "%s: --defense needs a value (local|rollbaccine|healer)\n",
                     tool_.c_str());
        return false;
      }
      if (!persist::DefenseKindFromName(name, &defense_)) {
        std::fprintf(stderr, "%s: unknown defense '%s' (local|rollbaccine|healer)\n",
                     tool_.c_str(), name);
        return false;
      }
      defense_set_ = true;
      continue;
    }
    if (MatchPathFlag(arg, "--json-out", &value)) {
      json_out_ = value.empty() ? "BENCH_" + tool_ + ".json" : value;
      continue;
    }
    if (MatchPathFlag(arg, "--trace-out", &value)) {
      trace_out_ = value.empty() ? "BENCH_" + tool_ + ".trace.json" : value;
      continue;
    }
    if (MatchPathFlag(arg, "--critpath-out", &value)) {
      critpath_out_ = value.empty() ? "BENCH_" + tool_ + ".critpath.json" : value;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  if (defense_set_) {
    persist::SetDefaultDefense(defense_);
  }
  return true;
}

}  // namespace harness
}  // namespace achilles
