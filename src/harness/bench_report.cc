#include "src/harness/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/harness/flags.h"
#include "src/obs/json.h"

namespace achilles {
namespace {

const char* CounterKindName(CounterKind kind) {
  switch (kind) {
    case CounterKind::kNone:
      return "none";
    case CounterKind::kCustom:
      return "custom";
    default:
      return "builtin";
  }
}

void WriteConfig(obs::JsonWriter* w, const ClusterConfig& config) {
  w->BeginObject()
      .Field("protocol", ProtocolName(config.protocol))
      .Field("f", config.f)
      .Field("n", ReplicasFor(config.protocol, config.f))
      .Field("batch_size", static_cast<uint64_t>(config.batch_size))
      .Field("payload_size", config.payload_size)
      .Field("seed", config.seed)
      .Field("client_rate_tps", config.client_rate_tps)
      .Field("commit_fast_path", config.commit_fast_path)
      .Field("base_timeout_ns", config.base_timeout)
      .Field("defense", persist::DefenseKindName(config.defense));
  w->KeyBeginObject("net")
      .Field("one_way_base_ns", config.net.one_way_base)
      .Field("one_way_jitter_ns", config.net.one_way_jitter)
      .Field("bandwidth_bps", config.net.bandwidth_bps)
      .Field("drop_rate", config.net.drop_rate)
      .EndObject();
  w->KeyBeginObject("counter")
      .Field("kind", CounterKindName(config.counter.kind))
      .Field("write_latency_ns", config.counter.write_latency)
      .Field("read_latency_ns", config.counter.read_latency)
      .EndObject();
  w->EndObject();
}

void WriteStats(obs::JsonWriter* w, const RunStats& stats) {
  w->BeginObject()
      .Field("throughput_tps", stats.throughput_tps)
      .Field("commit_latency_ms", stats.commit_latency_ms)
      .Field("commit_p50_ms", stats.commit_p50_ms)
      .Field("commit_p99_ms", stats.commit_p99_ms)
      .Field("e2e_latency_ms", stats.e2e_latency_ms)
      .Field("e2e_p99_ms", stats.e2e_p99_ms)
      .Field("committed_blocks", stats.committed_blocks)
      .Field("committed_txs", stats.committed_txs)
      .Field("messages", stats.messages)
      .Field("bytes", stats.bytes)
      .Field("counter_writes", stats.counter_writes)
      .Field("safety_ok", stats.safety_ok);
  w->Key("breakdown_ms");
  stats.breakdown.ToJson(w);
  w->Key("critpath");
  stats.critpath.ToJson(*w);
  w->EndObject();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

BenchReport& BenchReport::Instance() {
  static BenchReport instance;
  return instance;
}

void BenchReport::Configure(std::string bench_name, std::string json_path,
                            std::string trace_path, std::string critpath_path) {
  name_ = std::move(bench_name);
  json_path_ = std::move(json_path);
  trace_path_ = std::move(trace_path);
  critpath_path_ = std::move(critpath_path);
  trace_written_ = false;
  critpath_written_ = false;
  runs_.clear();
  tables_.clear();
}

void BenchReport::RecordTable(const std::vector<std::string>& headers,
                              const std::vector<std::vector<std::string>>& rows) {
  if (!json_enabled()) {
    return;
  }
  obs::JsonWriter w;
  w.BeginObject().KeyBeginArray("headers");
  for (const std::string& h : headers) {
    w.String(h);
  }
  w.EndArray().KeyBeginArray("rows");
  for (const auto& row : rows) {
    w.BeginArray();
    for (const std::string& cell : row) {
      w.String(cell);
    }
    w.EndArray();
  }
  w.EndArray().EndObject();
  tables_.push_back(w.Take());
}

void BenchReport::RecordRun(const ClusterConfig& config, const RunStats& stats,
                            Cluster& cluster) {
  if (trace_wanted() && cluster.tracer().enabled()) {
    if (cluster.tracer().WriteChromeTrace(trace_path_)) {
      std::fprintf(stderr, "trace written to %s\n", trace_path_.c_str());
    } else {
      std::fprintf(stderr, "WARNING: failed to write trace to %s\n", trace_path_.c_str());
    }
    trace_written_ = true;  // One trace per process either way; don't retrace every run.
  }
  if (critpath_wanted() && !critpath_written_ && cluster.critpath().enabled()) {
    const obs::CritPathCollector& cp = cluster.critpath();
    bool ok = WriteFile(critpath_path_, cp.ProfileJson());
    ok = WriteFile(critpath_path_ + ".folded", cp.FoldedStacks()) && ok;
    ok = WriteFile(critpath_path_ + ".perfetto.json", cp.PerfettoJson(16)) && ok;
    if (ok) {
      std::fprintf(stderr, "critpath profile written to %s (+.folded, +.perfetto.json)\n",
                   critpath_path_.c_str());
    } else {
      std::fprintf(stderr, "WARNING: failed to write critpath profile to %s\n",
                   critpath_path_.c_str());
    }
    critpath_written_ = true;
  }
  if (!json_enabled()) {
    return;
  }
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("config");
  WriteConfig(&w, config);
  w.Key("stats");
  WriteStats(&w, stats);
  w.Key("metrics");
  cluster.metrics().ToJson(&w);
  w.EndObject();
  runs_.push_back(w.Take());
}

int BenchReport::Finish(int rc) {
  if (!json_enabled() || rc != 0) {
    return rc;
  }
  obs::JsonWriter w;
  w.BeginObject().Field("bench", name_).KeyBeginArray("runs");
  std::string out = w.Take();
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += runs_[i];
  }
  out += "],\"tables\":[";
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += tables_[i];
  }
  out += "]}\n";
  if (!WriteFile(json_path_, out)) {
    std::fprintf(stderr, "ERROR: failed to write %s\n", json_path_.c_str());
    return 1;
  }
  std::fprintf(stderr, "json report written to %s (%zu runs)\n", json_path_.c_str(),
               runs_.size());
  return rc;
}

BenchIo::BenchIo(const char* bench_name, int* argc, char** argv) {
  // The shared family (--defense/--json-out/--trace-out/--critpath-out) is consumed here;
  // whatever survives in argv belongs to the bench itself (e.g. fig3's --net/--sweep).
  harness::FlagSet flags(bench_name);
  if (!flags.Parse(argc, argv)) {
    std::exit(2);
  }
  BenchReport::Instance().Configure(bench_name, flags.json_out(), flags.trace_out(),
                                    flags.critpath_out());
}

}  // namespace achilles
