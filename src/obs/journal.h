// Deterministic flight recorder. A Journal is a bounded per-node ring of structured
// protocol/TEE/lifecycle/network events, recorded from hooks in src/sim, src/tee,
// src/consensus and the protocol modules. Recording is plain-memory bookkeeping with zero
// virtual-time cost, so enabling the journal changes no simulated outcome — the same
// guarantee the span tracer gives (src/obs/trace.h), and the property the chaos harness's
// bit-identical replay check relies on.
//
// Causality: every network send gets a journal sequence number which rides along the
// message's obs::Path (Path::jparent); the matching deliver event records that number as
// its parent, and everything the receiving handler records points at the deliver event.
// Walking parent links therefore reconstructs the cross-host causal chain that led to any
// recorded event — the spine of the forensics analyzer (src/obs/forensics.h).
//
// Bounded memory: each node keeps two rings. High-rate "flow" events (send/deliver/ecall,
// wal-append/fsync) evict independently from the rare "control" events (view changes, commits, recovery
// phases, seal/unseal, counter ops, lifecycle), so a long run can drop old traffic without
// losing the state-transition history forensics needs.
#ifndef SRC_OBS_JOURNAL_H_
#define SRC_OBS_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/sim_time.h"

namespace achilles {
namespace obs {

class SpanTracer;

enum class JournalKind : uint8_t {
  // Host lifecycle.
  kBoot = 0,        // Process bound (genesis or post-reboot); bumps the node's incarnation.
  kCrash,           // Host went down; volatile state lost.
  kStall,           // Injected CPU stall (a = duration ns).
  // Network (flow ring).
  kSend,            // a = destination host, b = wire size; detail = message name.
  kDeliver,         // a = source host, b = wire size; parent = the matching send.
  // TEE boundary.
  kEcall,           // One enclave transition round trip (flow ring).
  kSeal,            // a = version count after the put; detail = slot.
  kUnseal,          // a = served version (1-based; 0 = absent/forged), b = latest version.
  kCounterWrite,    // a = new counter value.
  kCounterRead,     // a = value read.
  // Host stable storage (src/storage; flow ring except kWalTruncate).
  kWalAppend,       // a = record bytes, b = records in the log after; detail = log name.
  kFsync,           // Sync barrier: a = records made durable, b = bytes made durable.
  kWalTruncate,     // Crash fate applied: a = records dropped, b = bytes dropped.
  kRollbackReject,  // Checker refused stale sealed state: a = sealed version, b = expected.
  kHalt,            // Replica crash-stopped itself (rollback detected).
  // Protocol state transitions.
  kViewEnter,       // a = new view / epoch / term.
  kLeaderElected,   // a = term/view in which this node became leader.
  kLockUpdate,      // a = locked view, b = first 8 bytes of the locked hash (big-endian).
  kPropose,         // a = block height, b = view.
  kCommit,          // a = block height, b = first 8 bytes of the block hash (big-endian).
  kCheckpoint,      // Commit via state transfer; fields as kCommit.
  // Achilles recovery (Algorithm 3).
  kRecoveryEnter,   // Recovery started for this incarnation.
  kRecoveryRound,   // New request round broadcast; a = the round's nonce.
  kRecoveryExit,    // Recovery finished; a = consumed reply nonce, b = recovered view.
  // Application-level read leases (src/app/kv_service.h).
  kLeaseGrant,      // Peer granted a read-lease promise; a = grantee, b = expiry (ns).
  kLeaseRevoke,     // Leaseholder dropped its lease (foreign-led block applied or crash).
  kLeaseServe,      // Leaseholder served a lease read; a = key, b = served version (flow).
  // Checkpointing / snapshot state transfer (src/checkpoint).
  kCheckpointStable,// Stable checkpoint certified locally; a = height, b = signers.
  kLogTruncate,     // Compaction barrier: a = records dropped, b = bytes dropped.
  kSnapshotFetch,   // State transfer: a = checkpoint height, b = peer; detail = role.
  // Oracle verdict marker stamped by the chaos runner at violation time.
  kOracleViolation, // detail = the violation text.
};

inline constexpr size_t kNumJournalKinds =
    static_cast<size_t>(JournalKind::kOracleViolation) + 1;

// Stable display name ("view-enter", "rollback-reject", ...). Static storage, so the
// strings are also usable as SpanTracer instant names.
const char* JournalKindName(JournalKind kind);

// True for the high-rate kinds kept in the flow ring (send/deliver/ecall/wal-append/fsync).
bool JournalKindIsFlow(JournalKind kind);

struct JournalRecord {
  uint64_t seq = 0;          // Global recording order (1-based; 0 = invalid).
  SimTime ts = 0;            // Virtual nanoseconds (host LocalNow at the hook).
  uint32_t node = 0;         // Host id.
  uint32_t incarnation = 0;  // Boot count of the node when recorded (1 = genesis).
  JournalKind kind = JournalKind::kBoot;
  uint64_t parent = 0;       // seq of the causal parent record; 0 = chain root.
  uint64_t a = 0;            // Kind-specific payload (see JournalKind comments).
  uint64_t b = 0;
  std::string detail;        // Kind-specific text (slot name, message name, ...).

  // Deterministic one-line rendering, e.g.
  //   #000042 t=12500000 n1/2 recovery-exit p=#000040 a=7 b=3
  std::string ToLine() const;
};

class Journal {
 public:
  static constexpr size_t kDefaultControlCapacity = 4096;  // Per node.
  static constexpr size_t kDefaultFlowCapacity = 8192;     // Per node.

  explicit Journal(size_t control_capacity = kDefaultControlCapacity,
                   size_t flow_capacity = kDefaultFlowCapacity);

  // Disabled journals drop every event and hand out seq 0, so hooks can stay in place
  // unconditionally.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Records one event and returns its seq (0 when disabled). `ts` is the recording host's
  // LocalNow; nodes are created on first use.
  uint64_t Record(uint32_t node, JournalKind kind, SimTime ts, uint64_t parent = 0,
                  uint64_t a = 0, uint64_t b = 0, std::string detail = {});

  // Boot count of `node` so far (0 before its first kBoot).
  uint32_t incarnation(uint32_t node) const;
  size_t num_nodes() const { return nodes_.size(); }

  // Surviving events of one node / of all nodes, in seq order.
  std::vector<JournalRecord> NodeEvents(uint32_t node) const;
  std::vector<JournalRecord> Events() const;

  uint64_t recorded() const { return recorded_; }  // Total events accepted.
  uint64_t evicted() const { return evicted_; }    // Events overwritten by ring bounds.
  size_t live() const;                             // Events currently retained.

  // Deterministic text dump (one ToLine per surviving event, seq order, with a header).
  std::string ToText() const;
  // SHA-256 hex of ToText(): the replay-determinism fingerprint.
  std::string DigestHex() const;

  // Exports the surviving control-ring events as instant events into `tracer` (flow events
  // are skipped: they would drown the trace that Host already records span-per-handler).
  void AnnotateTracer(SpanTracer* tracer) const;

  void Clear();

 private:
  struct NodeRings {
    std::deque<JournalRecord> control;
    std::deque<JournalRecord> flow;
    uint32_t incarnation = 0;
  };

  NodeRings& RingsFor(uint32_t node);

  bool enabled_ = false;
  size_t control_capacity_;
  size_t flow_capacity_;
  uint64_t next_seq_ = 1;
  uint64_t recorded_ = 0;
  uint64_t evicted_ = 0;
  std::vector<NodeRings> nodes_;
};

}  // namespace obs
}  // namespace achilles

#endif  // SRC_OBS_JOURNAL_H_
