// Labeled metrics registry: counters, gauges, and fixed log-scale-bucket histograms.
// Instruments record into plain memory with no effect on virtual time, so measurement can
// stay on in every bench without perturbing simulated results. Registry iteration order is
// deterministic (sorted by key) so exports are reproducible run-to-run.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sim_time.h"

namespace achilles {
namespace obs {

class JsonWriter;

class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Histogram over non-negative int64 values (typically virtual-time nanoseconds) with fixed
// base-2 log-scale buckets: bucket 0 holds value 0, bucket i>=1 holds [2^(i-1), 2^i).
// Recording is a couple of integer ops and never allocates.
class Histogram {
 public:
  // Bucket 0 (zero) + one bucket per bit position of a positive int64.
  static constexpr size_t kNumBuckets = 64;

  void Record(int64_t value);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // Approximate percentile (p in [0,100], clamped) by linear interpolation inside the
  // bucket containing the target rank. Exact for the recorded min/max endpoints.
  double Percentile(double p) const;

  uint64_t bucket_count(size_t i) const { return buckets_[i]; }
  // Inclusive lower bound of bucket i (0, then 2^(i-1)).
  static int64_t BucketLowerBound(size_t i);
  // Exclusive upper bound of bucket i.
  static int64_t BucketUpperBound(size_t i);
  // The bucket a value falls into.
  static size_t BucketIndex(int64_t value);

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Create-or-get registry keyed by "name{label=value,...}". Handles returned are stable for
// the registry's lifetime; lookups are cold-path (instruments cache the handle).
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  // Canonical key: name{k1=v1,k2=v2} with labels sorted by key.
  static std::string Key(const std::string& name, const Labels& labels);

  // Zeroes every metric (counters/gauges/histograms), keeping registrations.
  void ResetAll();

  // Serializes every metric into `w` as one JSON object keyed by metric key. Counters and
  // gauges become numbers; histograms become {count,sum,min,max,mean,p50,p99}.
  void ToJson(JsonWriter* w) const;

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace achilles

#endif  // SRC_OBS_METRICS_H_
