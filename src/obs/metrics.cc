#include "src/obs/metrics.h"

#include <bit>

#include "src/obs/json.h"

namespace achilles {
namespace obs {

size_t Histogram::BucketIndex(int64_t value) {
  if (value <= 0) {
    return 0;
  }
  return static_cast<size_t>(std::bit_width(static_cast<uint64_t>(value)));
}

int64_t Histogram::BucketLowerBound(size_t i) {
  return i == 0 ? 0 : static_cast<int64_t>(1ULL << (i - 1));
}

int64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) {
    return 1;
  }
  if (i >= kNumBuckets - 1) {
    return INT64_MAX;
  }
  return static_cast<int64_t>(1ULL << i);
}

void Histogram::Record(int64_t value) {
  if (value < 0) {
    value = 0;  // Durations are non-negative; clamp defensively.
  }
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  // The extreme ranks are the recorded extremes exactly, for every population shape.
  if (rank <= 0.0) {
    return static_cast<double>(min_);
  }
  if (rank >= static_cast<double>(count_ - 1)) {
    return static_cast<double>(max_);
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const uint64_t in_bucket = buckets_[i];
    if (rank < static_cast<double>(seen + in_bucket)) {
      // Interpolate within the bucket's value range, clamped to the observed extremes. The
      // representable range is [lo, hi] inclusive (upper bound is exclusive, hence -1). A
      // single-occupant interior bucket reports the range midpoint — not a bucket edge,
      // which would bias log-bucket quantiles by up to 2x at bucket boundaries.
      const double lo = std::max<double>(static_cast<double>(BucketLowerBound(i)),
                                         static_cast<double>(min_));
      const double hi = std::min<double>(static_cast<double>(BucketUpperBound(i)) - 1.0,
                                         static_cast<double>(max_));
      if (in_bucket == 1) {
        return (lo + hi) / 2.0;
      }
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket - 1);
      return lo + frac * (hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_);
}

std::string MetricsRegistry::Key(const std::string& name, const Labels& labels) {
  if (labels.empty()) {
    return name;
  }
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      key += ',';
    }
    key += sorted[i].first + "=" + sorted[i].second;
  }
  key += '}';
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const Labels& labels) {
  auto& slot = counters_[Key(name, labels)];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  auto& slot = gauges_[Key(name, labels)];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, const Labels& labels) {
  auto& slot = histograms_[Key(name, labels)];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  for (auto& [key, c] : counters_) {
    c->Reset();
  }
  for (auto& [key, g] : gauges_) {
    g->Reset();
  }
  for (auto& [key, h] : histograms_) {
    h->Reset();
  }
}

void MetricsRegistry::ToJson(JsonWriter* w) const {
  w->BeginObject();
  for (const auto& [key, c] : counters_) {
    w->Field(key, c->value());
  }
  for (const auto& [key, g] : gauges_) {
    w->Field(key, g->value());
  }
  for (const auto& [key, h] : histograms_) {
    w->KeyBeginObject(key)
        .Field("count", h->count())
        .Field("sum", h->sum())
        .Field("min", h->min())
        .Field("max", h->max())
        .Field("mean", h->Mean())
        .Field("p50", h->Percentile(50))
        .Field("p99", h->Percentile(99))
        .EndObject();
  }
  w->EndObject();
}

}  // namespace obs
}  // namespace achilles
