// Incident forensics over a flight-recorder journal (src/obs/journal.h). When a chaos
// oracle fires, the analyzer walks the journals backwards from the violating evidence and
// produces a human-readable report: the causal chain of events that led to the violation,
// the divergence point between incarnations of a rebooted replica, and which invariant
// predicate first went false. Pure function of (journal, query) — deterministic, so golden
// reports are testable.
#ifndef SRC_OBS_FORENSICS_H_
#define SRC_OBS_FORENSICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/journal.h"

namespace achilles {
namespace obs {

// What the caller (the chaos runner) knows about the violation. `oracle` is the oracle
// family name: "agreement", "durability", "counter", "freshness", or "liveness".
struct IncidentQuery {
  std::string oracle;
  std::string description;      // The oracle's verbatim violation text.
  uint32_t node = UINT32_MAX;   // Primary offending replica, when the oracle names one.
  uint64_t height = 0;          // Conflicting height (agreement/durability).
  SimTime at = 0;               // Violation time (0 = unknown).
  std::string protocol;
  uint64_t seed = 0;
  std::vector<uint32_t> exclude;  // Byzantine nodes: ignored by the invariant re-check.
};

struct IncidentReport {
  std::string text;             // The full rendered report.

  // Structured findings (what the golden tests pin down):
  uint32_t replica = UINT32_MAX;     // The replica the evidence points at.
  uint64_t evidence_seq = 0;         // Journal seq of the violating evidence event.
  std::string first_violated;        // Name of the first invariant predicate gone false.
  uint64_t first_violated_seq = 0;   // Where it went false (0 = none re-established).
  uint64_t divergence_seq = 0;       // Divergence point between incarnations (0 = none).
  std::vector<uint64_t> causal_chain;  // Evidence-first parent walk (journal seqs).
  // Freshness details: the nonce the recovery consumed vs the latest round's nonce.
  uint64_t consumed_nonce = 0;
  uint64_t fresh_nonce = 0;
  uint64_t stale_round_index = 0;    // 1-based request-round index the stale nonce came from.
  uint64_t final_round_index = 0;    // 1-based index of the latest round before completion.
};

// Re-checks the journal against generic invariant predicates and assembles the report.
// Predicates (first violation by journal order wins):
//   counter-monotonicity   — per-node counter write/read values never regress.
//   commit-agreement       — height -> block-hash prefix is write-once across honest nodes.
//   recovery-freshness     — a recovery exit consumes the nonce of its *latest* request
//                            round (Algorithm 3's freshness rule).
//   stale-seal-accepted    — an unseal served a stale version and the same incarnation went
//                            on with protocol work without a rollback-reject/halt.
IncidentReport AnalyzeIncident(const Journal& journal, const IncidentQuery& query);

}  // namespace obs
}  // namespace achilles

#endif  // SRC_OBS_FORENSICS_H_
