// Latency-breakdown attribution. A Path rides along every causal chain in the simulation
// (handler -> message -> handler ...), splitting the virtual time since its origin into
// labeled components. The invariant `origin + sum(parts) == covered_until` is maintained at
// every step, so when a chain reaches a client confirmation the parts decompose the
// confirmation latency *exactly* — attribution sums to measured latency by construction,
// not by calibration.
//
// Protocol replicas restart the path at block proposal; the gap between a transaction's
// submit time and the path origin (mempool wait, views spent on ancestors) is booked as
// kIdle, keeping the per-transaction decomposition exact regardless of chaining.
#ifndef SRC_OBS_BREAKDOWN_H_
#define SRC_OBS_BREAKDOWN_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/common/sim_time.h"

namespace achilles {
namespace obs {

class JsonWriter;

// Where a slice of virtual time went. kCpu covers CPU service *and* queueing behind the
// single-core host run-to-completion model (execution, deserialization, waiting for the
// CPU); crypto, ECALL transitions, counter I/O and stable-storage fsync are split out
// because they are the paper's cost terms.
enum class Component : uint8_t {
  kNetPropagation = 0,   // Link propagation delay (incl. loopback pipes).
  kNicSerialization,     // Egress NIC queueing + wire serialization.
  kCpu,                  // CPU service + run-queue wait (non-crypto work).
  kEcall,                // Enclave transition round trips.
  kCrypto,               // Sign/verify/hash/seal, in or out of the enclave.
  kCounter,              // Trusted monotonic counter reads/writes.
  kFsync,                // Host stable-storage sync barriers (WAL/record-store fsync).
  kIdle,                 // Timer waits, mempool/batching wait before proposal.
};

inline constexpr size_t kNumComponents = 8;
const char* ComponentName(Component c);

struct Path {
  SimTime origin = 0;         // Virtual time attribution started.
  SimTime covered_until = 0;  // origin + sum(parts); the invariant frontier.
  std::array<int64_t, kNumComponents> parts{};
  uint64_t span = 0;     // Trace span id of the current context (for parent links).
  uint64_t jparent = 0;  // Flight-recorder seq of the causal parent (src/obs/journal.h).
  uint32_t activity = 0;  // Critical-path activity carrying this chain (src/obs/critpath.h).

  void Restart(SimTime now, uint64_t span_id = 0) {
    origin = now;
    covered_until = now;
    parts.fill(0);
    span = span_id;
    jparent = 0;
    activity = 0;
  }

  void Extend(Component c, SimDuration d) {
    parts[static_cast<size_t>(c)] += d;
    covered_until += d;
  }

  // Books [covered_until, t) as `c`; no-op if t is not ahead of the frontier.
  void CoverUntil(Component c, SimTime t) {
    if (t > covered_until) {
      Extend(c, t - covered_until);
    }
  }

  SimDuration total() const { return covered_until - origin; }
};

// Mean per-transaction decomposition in milliseconds (the unit RunStats reports).
struct BreakdownMs {
  std::array<double, kNumComponents> parts{};
  uint64_t tx_count = 0;
  uint64_t block_count = 0;

  double part(Component c) const { return parts[static_cast<size_t>(c)]; }
  double TotalMs() const;
  void ToJson(JsonWriter* w) const;
};

// Accumulates confirmed-block paths during a measurement window. One instance per cluster,
// fed by the client's confirmation handler through CommitTracker.
class BreakdownAttributor {
 public:
  // `path` is the chain that delivered the first reply for a block whose transactions were
  // submitted at `submit_sum_ns / tx_count` on average; `now` is the confirmation time
  // (== path.covered_until when the client charged its handling cost through the path).
  void OnConfirm(const Path& path, SimTime now, int64_t submit_sum_ns, uint64_t tx_count);

  void Reset();

  BreakdownMs MeanPerTx() const;
  uint64_t tx_count() const { return tx_count_; }

 private:
  std::array<int64_t, kNumComponents> sums_{};  // Per-component ns, weighted per tx.
  uint64_t tx_count_ = 0;
  uint64_t block_count_ = 0;
};

}  // namespace obs
}  // namespace achilles

#endif  // SRC_OBS_BREAKDOWN_H_
