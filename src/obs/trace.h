// Virtual-time span tracer. Records begin/end/instant events with parent links into a
// preallocated ring buffer (no allocation, no virtual-time cost on the hot path), and
// exports Chrome trace_event JSON that Perfetto / chrome://tracing open directly.
//
// Timestamps are *virtual* nanoseconds: because the simulator's clock is discrete, tracing
// cannot perturb what it measures — enabling or disabling the tracer changes no simulated
// outcome, only whether the events are remembered.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"

namespace achilles {
namespace obs {

// One ring-buffer slot. `name` must point at storage outliving the tracer (string
// literals in practice); this keeps recording allocation-free.
struct SpanEvent {
  enum class Kind : uint8_t { kBegin, kEnd, kInstant };

  Kind kind = Kind::kInstant;
  uint32_t tid = 0;       // Track id (host id in cluster runs).
  const char* name = "";  // Static string.
  uint64_t id = 0;        // Span id (Begin/End pairing).
  uint64_t parent = 0;    // Span id of the causal parent; 0 = none.
  uint64_t arg = 0;       // Free-form payload (block height, view, ...), exported as args.v.
  SimTime ts = 0;         // Virtual nanoseconds.
};

class SpanTracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit SpanTracer(size_t capacity = kDefaultCapacity);

  // Disabled tracers drop every event (Begin still hands out ids so parent links stay
  // coherent if re-enabled mid-run).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Records a span opening at `now`; returns its id (always nonzero).
  uint64_t Begin(const char* name, uint32_t tid, SimTime now, uint64_t parent = 0,
                 uint64_t arg = 0);
  void End(uint64_t id, uint32_t tid, SimTime now);
  void Instant(const char* name, uint32_t tid, SimTime now, uint64_t parent = 0,
               uint64_t arg = 0);

  void Clear();

  // Events in chronological (recording) order, oldest surviving first.
  std::vector<SpanEvent> Events() const;
  uint64_t dropped() const { return dropped_; }  // Events overwritten by ring wrap.

  // Chrome trace_event JSON (the {"traceEvents":[...]} envelope). Begin/End pairs that
  // both survive in the ring become complete ("X") events; unpaired ends are dropped,
  // unpaired begins are emitted with zero duration. Cross-track parent links additionally
  // emit flow ("s"/"f") arrows so Perfetto draws the causality.
  std::string ExportChromeTrace() const;
  // Writes ExportChromeTrace() to `path`; false on IO failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  void Push(const SpanEvent& e);

  bool enabled_ = false;
  std::vector<SpanEvent> ring_;
  size_t head_ = 0;      // Next write position.
  size_t size_ = 0;      // Occupied slots.
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace achilles

#endif  // SRC_OBS_TRACE_H_
