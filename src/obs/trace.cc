#include "src/obs/trace.h"

#include <cstdio>
#include <unordered_map>

#include "src/obs/json.h"

namespace achilles {
namespace obs {

SpanTracer::SpanTracer(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void SpanTracer::Push(const SpanEvent& e) {
  if (size_ == ring_.size()) {
    ++dropped_;  // Overwriting the oldest slot.
  } else {
    ++size_;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
}

uint64_t SpanTracer::Begin(const char* name, uint32_t tid, SimTime now, uint64_t parent,
                           uint64_t arg) {
  const uint64_t id = next_id_++;
  if (!enabled_) {
    return id;
  }
  Push(SpanEvent{SpanEvent::Kind::kBegin, tid, name, id, parent, arg, now});
  return id;
}

void SpanTracer::End(uint64_t id, uint32_t tid, SimTime now) {
  if (!enabled_ || id == 0) {
    return;
  }
  Push(SpanEvent{SpanEvent::Kind::kEnd, tid, "", id, 0, 0, now});
}

void SpanTracer::Instant(const char* name, uint32_t tid, SimTime now, uint64_t parent,
                         uint64_t arg) {
  if (!enabled_) {
    return;
  }
  Push(SpanEvent{SpanEvent::Kind::kInstant, tid, name, 0, parent, arg, now});
}

void SpanTracer::Clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::vector<SpanEvent> SpanTracer::Events() const {
  std::vector<SpanEvent> out;
  out.reserve(size_);
  const size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

double ToTraceUs(SimTime ns) { return static_cast<double>(ns) / 1000.0; }

struct SpanRecord {
  SpanEvent begin;
  SimTime end_ts = -1;  // -1 = no matching end survived.
};

}  // namespace

std::string SpanTracer::ExportChromeTrace() const {
  const std::vector<SpanEvent> events = Events();

  // Pair Begin/End by span id; remember each span's begin for flow arrows.
  std::vector<SpanRecord> spans;
  std::unordered_map<uint64_t, size_t> open;  // span id -> index in `spans`.
  std::vector<SpanEvent> instants;
  for (const SpanEvent& e : events) {
    switch (e.kind) {
      case SpanEvent::Kind::kBegin:
        open[e.id] = spans.size();
        spans.push_back(SpanRecord{e, -1});
        break;
      case SpanEvent::Kind::kEnd: {
        auto it = open.find(e.id);
        if (it != open.end()) {
          spans[it->second].end_ts = e.ts;
        }
        break;  // Ends whose begin was overwritten are dropped.
      }
      case SpanEvent::Kind::kInstant:
        instants.push_back(e);
        break;
    }
  }

  JsonWriter w;
  w.BeginObject().KeyBeginArray("traceEvents");
  auto common = [&w](const char* name, uint32_t tid, SimTime ts) {
    w.BeginObject()
        .Field("name", name)
        .Field("pid", static_cast<uint64_t>(0))
        .Field("tid", static_cast<uint64_t>(tid))
        .Field("ts", ToTraceUs(ts));
  };
  for (const SpanRecord& s : spans) {
    const SimTime end = s.end_ts >= s.begin.ts ? s.end_ts : s.begin.ts;
    common(s.begin.name, s.begin.tid, s.begin.ts);
    w.Field("ph", "X")
        .Field("dur", ToTraceUs(end - s.begin.ts))
        .KeyBeginObject("args")
        .Field("span", s.begin.id)
        .Field("parent", s.begin.parent)
        .Field("v", s.begin.arg)
        .EndObject()
        .EndObject();
    // Flow arrow from the parent span's track when the parent lives elsewhere.
    if (s.begin.parent != 0) {
      auto pit = open.find(s.begin.parent);
      if (pit != open.end() && spans[pit->second].begin.tid != s.begin.tid) {
        const SpanRecord& p = spans[pit->second];
        common("flow", p.begin.tid, s.begin.ts >= p.begin.ts ? p.begin.ts : s.begin.ts);
        w.Field("ph", "s").Field("id", s.begin.id).EndObject();
        common("flow", s.begin.tid, s.begin.ts);
        w.Field("ph", "f").Field("bp", "e").Field("id", s.begin.id).EndObject();
      }
    }
  }
  for (const SpanEvent& e : instants) {
    common(e.name, e.tid, e.ts);
    w.Field("ph", "i")
        .Field("s", "t")
        .KeyBeginObject("args")
        .Field("parent", e.parent)
        .Field("v", e.arg)
        .EndObject()
        .EndObject();
  }
  w.EndArray().Field("displayTimeUnit", "ms").EndObject();
  return w.Take();
}

bool SpanTracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ExportChromeTrace();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace obs
}  // namespace achilles
