#include "src/obs/forensics.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace achilles {
namespace obs {
namespace {

bool IsProtocolProgress(JournalKind kind) {
  return kind == JournalKind::kViewEnter || kind == JournalKind::kPropose ||
         kind == JournalKind::kCommit || kind == JournalKind::kCheckpoint ||
         kind == JournalKind::kRecoveryExit;
}

// A stale unseal: storage served an older version than the latest one it holds.
bool IsStaleUnseal(const JournalRecord& r) {
  return r.kind == JournalKind::kUnseal && r.a != 0 && r.a < r.b;
}

// A snapshot adoption: the journal-side face of checkpoint state transfer installing a
// certified boundary state (honest "adopt", or the broken variant's unchecked/stale ones).
bool IsSnapshotAdopt(const JournalRecord& r) {
  return r.kind == JournalKind::kSnapshotFetch && r.detail.rfind("adopt", 0) == 0;
}

struct InvariantHit {
  std::string name;
  uint64_t seq = 0;
  std::string what;
};

// Re-establishes the generic invariants over the merged journal; returns the first (by
// seq) predicate violation, if any. Excluded (Byzantine) nodes are skipped entirely.
std::vector<InvariantHit> CheckInvariants(const std::vector<JournalRecord>& events,
                                          const std::set<uint32_t>& exclude) {
  std::vector<InvariantHit> hits;
  std::unordered_map<uint32_t, uint64_t> last_counter;       // node -> high-water value.
  std::map<uint64_t, uint64_t> committed;                    // height -> hash prefix.
  std::unordered_map<uint32_t, uint64_t> last_round_nonce;   // node -> latest request nonce.
  std::unordered_map<uint32_t, bool> has_round;              // node -> any round seen.
  std::unordered_map<uint32_t, uint64_t> pending_stale;      // node -> stale unseal seq.
  std::unordered_map<uint32_t, uint64_t> ckpt_floor;         // node -> certified floor.
  std::unordered_map<uint32_t, uint64_t> commit_high;        // node -> per-incarnation max.
  auto hit = [&hits](const std::string& name, uint64_t seq, std::string what) {
    hits.push_back({name, seq, std::move(what)});
  };
  for (const JournalRecord& r : events) {
    if (exclude.count(r.node) > 0) {
      continue;
    }
    switch (r.kind) {
      case JournalKind::kCounterWrite:
      case JournalKind::kCounterRead: {
        uint64_t& last = last_counter[r.node];
        if (r.a < last) {
          hit("counter-monotonicity", r.seq,
              "node " + std::to_string(r.node) + " counter regressed " +
                  std::to_string(last) + " -> " + std::to_string(r.a));
        }
        last = std::max(last, r.a);
        break;
      }
      case JournalKind::kCheckpointStable: {
        uint64_t& floor = ckpt_floor[r.node];
        floor = std::max(floor, r.a);
        break;
      }
      case JournalKind::kSnapshotFetch: {
        if (!IsSnapshotAdopt(r)) {
          break;
        }
        // The checkpoint rollback invariant: an adopted snapshot must lie above the
        // incarnation's committed watermark and at or above the certified floor. The floor
        // persists across reboots here — a run whose cert surface was attacked legitimately
        // regresses it, but such runs reach this analyzer only via some other incident.
        if (r.a <= commit_high[r.node] || r.a < ckpt_floor[r.node]) {
          hit("stale-snapshot-adopted", r.seq,
              "node " + std::to_string(r.node) + " installed a snapshot at height " +
                  std::to_string(r.a) + " behind its committed prefix (" +
                  std::to_string(commit_high[r.node]) + ") or certified floor (" +
                  std::to_string(ckpt_floor[r.node]) + ")");
        }
        uint64_t& high = commit_high[r.node];
        high = std::max(high, r.a);
        break;
      }
      case JournalKind::kBoot:
        // Commit indices are volatile: a fresh incarnation re-commits from further back.
        commit_high.erase(r.node);
        break;
      case JournalKind::kCommit:
      case JournalKind::kCheckpoint: {
        uint64_t& high = commit_high[r.node];
        high = std::max(high, r.a);
        auto [it, inserted] = committed.emplace(r.a, r.b);
        if (!inserted && it->second != r.b) {
          hit("commit-agreement", r.seq,
              "node " + std::to_string(r.node) + " committed a different block at height " +
                  std::to_string(r.a));
        }
        if (pending_stale.count(r.node) > 0) {
          hit("stale-seal-accepted", r.seq,
              "node " + std::to_string(r.node) +
                  " continued protocol work after unseal #" +
                  std::to_string(pending_stale[r.node]) +
                  " served a stale version without a rollback-reject");
          pending_stale.erase(r.node);
        }
        break;
      }
      case JournalKind::kRecoveryRound:
        last_round_nonce[r.node] = r.a;
        has_round[r.node] = true;
        break;
      case JournalKind::kRecoveryExit:
        if (has_round[r.node] && last_round_nonce[r.node] != r.a) {
          hit("recovery-freshness", r.seq,
              "node " + std::to_string(r.node) + " exited recovery consuming nonce " +
                  std::to_string(r.a) + " but its latest request round carried nonce " +
                  std::to_string(last_round_nonce[r.node]));
        }
        if (pending_stale.count(r.node) > 0) {
          hit("stale-seal-accepted", r.seq,
              "node " + std::to_string(r.node) + " finished recovery after unseal #" +
                  std::to_string(pending_stale[r.node]) + " served a stale version");
          pending_stale.erase(r.node);
        }
        break;
      case JournalKind::kUnseal:
        if (IsStaleUnseal(r)) {
          pending_stale.emplace(r.node, r.seq);
        }
        break;
      case JournalKind::kRollbackReject:
      case JournalKind::kHalt:
      case JournalKind::kCrash:
        // The stale blob was caught (or the incarnation died): not accepted.
        pending_stale.erase(r.node);
        break;
      case JournalKind::kViewEnter:
      case JournalKind::kPropose:
        if (pending_stale.count(r.node) > 0) {
          hit("stale-seal-accepted", r.seq,
              "node " + std::to_string(r.node) +
                  " continued protocol work after unseal #" +
                  std::to_string(pending_stale[r.node]) +
                  " served a stale version without a rollback-reject");
          pending_stale.erase(r.node);
        }
        break;
      default:
        break;
    }
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const InvariantHit& x, const InvariantHit& y) { return x.seq < y.seq; });
  return hits;
}

// The violating-evidence event for the query's oracle family. Returns nullptr when the
// journal holds nothing usable (e.g. pure liveness stalls).
const JournalRecord* FindEvidence(const std::vector<JournalRecord>& events,
                                  const IncidentQuery& query,
                                  const std::vector<InvariantHit>& hits) {
  const JournalRecord* best = nullptr;
  auto latest_of = [&](auto&& pred) {
    const JournalRecord* found = nullptr;
    for (const JournalRecord& r : events) {
      if (query.at > 0 && r.ts > query.at) {
        continue;
      }
      if (pred(r)) {
        found = &r;  // Events are seq-ordered; keep the latest.
      }
    }
    return found;
  };
  if (query.oracle == "freshness") {
    best = latest_of([&](const JournalRecord& r) {
      return r.kind == JournalKind::kRecoveryExit &&
             (query.node == UINT32_MAX || r.node == query.node);
    });
  } else if (query.oracle == "agreement" || query.oracle == "durability") {
    best = latest_of([&](const JournalRecord& r) {
      return (r.kind == JournalKind::kCommit || r.kind == JournalKind::kCheckpoint) &&
             (query.node == UINT32_MAX || r.node == query.node) &&
             (query.height == 0 || r.a == query.height);
    });
  } else if (query.oracle == "counter") {
    best = latest_of([&](const JournalRecord& r) {
      return (IsStaleUnseal(r) || r.kind == JournalKind::kRollbackReject) &&
             (query.node == UINT32_MAX || r.node == query.node);
    });
  } else if (query.oracle == "checkpoint") {
    // The rollback reached the replica through a snapshot adoption; the latest adopt on
    // the victim is the journal-side face of the violation.
    best = latest_of([&](const JournalRecord& r) {
      return IsSnapshotAdopt(r) && (query.node == UINT32_MAX || r.node == query.node);
    });
  } else if (query.oracle == "linearizability") {
    // The stale value reached the client through a lease-served read; the latest
    // kLeaseServe on the serving replica is the journal-side face of the violation.
    best = latest_of([&](const JournalRecord& r) {
      return r.kind == JournalKind::kLeaseServe &&
             (query.node == UINT32_MAX || r.node == query.node);
    });
  } else if (query.oracle == "liveness") {
    // Nothing "violates" in a stall; the interesting event is the last commit anywhere —
    // the tip of the last dependency chain that advanced the frontier. The parent walk
    // from it is the stalled chain the bounded-liveness clock ran out on.
    best = latest_of([&](const JournalRecord& r) {
      return r.kind == JournalKind::kCommit || r.kind == JournalKind::kCheckpoint;
    });
  }
  if (best == nullptr && !hits.empty()) {
    for (const JournalRecord& r : events) {
      if (r.seq == hits.front().seq) {
        best = &r;
        break;
      }
    }
  }
  if (best == nullptr && !events.empty()) {
    best = latest_of([&](const JournalRecord& r) {
      return query.node == UINT32_MAX || r.node == query.node;
    });
    if (best == nullptr) {
      best = &events.back();
    }
  }
  return best;
}

std::string FmtNode(uint32_t node) { return "replica " + std::to_string(node); }

}  // namespace

IncidentReport AnalyzeIncident(const Journal& journal, const IncidentQuery& query) {
  IncidentReport report;
  const std::vector<JournalRecord> events = journal.Events();
  std::unordered_map<uint64_t, const JournalRecord*> by_seq;
  by_seq.reserve(events.size());
  for (const JournalRecord& r : events) {
    by_seq.emplace(r.seq, &r);
  }
  const std::set<uint32_t> exclude(query.exclude.begin(), query.exclude.end());

  std::string text = "=== INCIDENT REPORT ===\n";
  text += "oracle:    " + (query.oracle.empty() ? std::string("(unknown)") : query.oracle) +
          "\n";
  if (!query.description.empty()) {
    text += "violation: " + query.description + "\n";
  }
  if (!query.protocol.empty()) {
    text += "protocol:  " + query.protocol + "  seed=" + std::to_string(query.seed) + "\n";
  }
  text += "journal:   " + std::to_string(events.size()) + " surviving events (" +
          std::to_string(journal.recorded()) + " recorded, " +
          std::to_string(journal.evicted()) + " evicted)\n";

  // --- Invariant re-check ---
  const std::vector<InvariantHit> hits = CheckInvariants(events, exclude);
  if (!hits.empty()) {
    report.first_violated = hits.front().name;
    report.first_violated_seq = hits.front().seq;
    text += "\n--- first violated invariant ---\n";
    text += hits.front().name + " at #" + std::to_string(hits.front().seq) + ": " +
            hits.front().what + "\n";
    for (size_t i = 1; i < hits.size() && i < 4; ++i) {
      text += "(then " + hits[i].name + " at #" + std::to_string(hits[i].seq) + ")\n";
    }
  } else {
    text += "\n--- first violated invariant ---\n";
    text += "(no journal-level predicate re-established the violation; see the oracle "
            "text above)\n";
  }

  // --- Violating evidence ---
  const JournalRecord* evidence = FindEvidence(events, query, hits);
  text += "\n--- violating evidence ---\n";
  if (evidence == nullptr) {
    text += "(journal is empty)\n";
    report.text = text;
    return report;
  }
  report.replica = evidence->node;
  report.evidence_seq = evidence->seq;
  text += evidence->ToLine() + "\n";

  // Freshness narrative: name the consumed nonce round vs the latest round.
  if (evidence->kind == JournalKind::kRecoveryExit) {
    report.consumed_nonce = evidence->a;
    uint64_t round_index = 0;
    uint64_t consumed_index = 0;
    uint64_t latest_nonce = 0;
    SimTime consumed_ts = 0;
    for (const JournalRecord& r : events) {
      if (r.node != evidence->node || r.kind != JournalKind::kRecoveryRound ||
          r.seq > evidence->seq) {
        continue;
      }
      ++round_index;
      latest_nonce = r.a;
      report.final_round_index = round_index;
      if (r.a == evidence->a) {
        consumed_index = round_index;
        consumed_ts = r.ts;
      }
    }
    report.fresh_nonce = latest_nonce;
    report.stale_round_index = consumed_index;
    if (latest_nonce != evidence->a) {
      text += FmtNode(evidence->node) + " completed recovery consuming the nonce of ";
      if (consumed_index != 0) {
        text += "request round " + std::to_string(consumed_index) + " (nonce " +
                std::to_string(evidence->a) + ", issued t=" + std::to_string(consumed_ts) +
                ")";
      } else {
        text += "a round this journal no longer holds (nonce " +
                std::to_string(evidence->a) + ")";
      }
      text += ",\nwhile the latest request round was round " +
              std::to_string(report.final_round_index) + " (nonce " +
              std::to_string(latest_nonce) + "): a STALE nonce round was consumed.\n";
    } else {
      text += FmtNode(evidence->node) + " completed recovery on its latest nonce round (" +
              std::to_string(report.final_round_index) + ").\n";
    }
  }
  if (evidence->kind == JournalKind::kCommit || evidence->kind == JournalKind::kCheckpoint) {
    // Show the earlier conflicting commit, if one survives.
    for (const JournalRecord& r : events) {
      if ((r.kind == JournalKind::kCommit || r.kind == JournalKind::kCheckpoint) &&
          r.a == evidence->a && r.b != evidence->b && exclude.count(r.node) == 0 &&
          r.seq < evidence->seq) {
        text += "conflicts with " + r.ToLine() + "\n";
        break;
      }
    }
  }
  // Linearizability narrative: tie the lease-served read back to the replica's lease life.
  if (evidence->kind == JournalKind::kLeaseServe) {
    text += FmtNode(evidence->node) + " served a lease read of key " +
            std::to_string(evidence->a) + " at version " + std::to_string(evidence->b) +
            " off its local mirror";
    const JournalRecord* last_grant = nullptr;
    const JournalRecord* last_revoke = nullptr;
    for (const JournalRecord& r : events) {
      if (r.seq > evidence->seq) {
        break;
      }
      if (r.kind == JournalKind::kLeaseGrant && r.a == evidence->node) {
        last_grant = &r;
      }
      if (r.kind == JournalKind::kLeaseRevoke && r.node == evidence->node) {
        last_revoke = &r;
      }
    }
    if (last_grant != nullptr) {
      text += ";\nits most recent lease promise (" + last_grant->ToLine() + ")";
      if (last_revoke != nullptr && last_revoke->seq > last_grant->seq) {
        text += "\nhad already been dropped locally (" + last_revoke->ToLine() + ")";
      }
    }
    text += ".\n";
  }
  // Checkpoint narrative: name the adopted height against the replica's own certified
  // floor and the serving peer.
  if (IsSnapshotAdopt(*evidence)) {
    uint64_t floor = 0;
    const JournalRecord* serve = nullptr;
    for (const JournalRecord& r : events) {
      if (r.seq > evidence->seq) {
        break;
      }
      if (r.kind == JournalKind::kCheckpointStable && r.node == evidence->node) {
        floor = std::max(floor, r.a);
      }
      if (r.kind == JournalKind::kSnapshotFetch && r.detail == "serve" &&
          r.a == evidence->a) {
        serve = &r;
      }
    }
    text += FmtNode(evidence->node) + " installed a snapshot at height " +
            std::to_string(evidence->a);
    if (floor > evidence->a) {
      text += ", " + std::to_string(floor - evidence->a) +
              " height(s) BELOW its own certified floor " + std::to_string(floor);
    }
    if (serve != nullptr) {
      text += ";\nserved by " + FmtNode(serve->node) + " (" + serve->ToLine() + ")";
    }
    if (evidence->detail == "adopt-unchecked" || evidence->detail == "adopt-stale") {
      text += ";\nthe transfer path skipped its certificate/floor checks (" +
              evidence->detail + ")";
    }
    text += ".\n";
  }
  if (IsStaleUnseal(*evidence)) {
    text += FmtNode(evidence->node) + " was served sealed-state version " +
            std::to_string(evidence->a) + " of " + std::to_string(evidence->b) +
            " (rolled back " + std::to_string(evidence->b - evidence->a) +
            " version(s))\n";
  }

  // Liveness narrative: where every replica last made progress. The commit frontier
  // stopped at the evidence commit; whoever's last event trails it is where the stalled
  // dependency sits.
  if (query.oracle == "liveness") {
    struct Progress {
      uint64_t last_commit_h = 0;
      SimTime last_commit_ts = -1;
      uint64_t last_view = 0;
      SimTime last_ts = -1;
    };
    std::map<uint32_t, Progress> progress;
    for (const JournalRecord& r : events) {
      Progress& p = progress[r.node];
      p.last_ts = r.ts;
      if (r.kind == JournalKind::kCommit || r.kind == JournalKind::kCheckpoint) {
        p.last_commit_h = r.a;
        p.last_commit_ts = r.ts;
      } else if (r.kind == JournalKind::kViewEnter) {
        p.last_view = r.a;
      }
    }
    text += "\n--- last progress per replica ---\n";
    for (const auto& [node, p] : progress) {
      text += FmtNode(node) + ": ";
      if (p.last_commit_ts >= 0) {
        text += "last commit h=" + std::to_string(p.last_commit_h) + " at t=" +
                std::to_string(p.last_commit_ts);
      } else {
        text += "never committed";
      }
      text += ", last view " + std::to_string(p.last_view) + ", last event t=" +
              std::to_string(p.last_ts);
      if (exclude.count(node) != 0) {
        text += " (byzantine; excluded)";
      }
      text += "\n";
    }
    text += "no commit extended the frontier after t=" + std::to_string(evidence->ts) +
            "; the chain below is the stalled dependency chain feeding that last "
            "commit.\n";
  }

  // --- Causal chain: parent walk from the evidence ---
  text += query.oracle == "liveness"
              ? "\n--- stalled dependency chain (last progress first) ---\n"
              : "\n--- causal chain (evidence first) ---\n";
  const JournalRecord* cursor = evidence;
  size_t steps = 0;
  while (cursor != nullptr && steps < 20) {
    report.causal_chain.push_back(cursor->seq);
    text += (steps == 0 ? "  " : "  <- ") + cursor->ToLine() + "\n";
    ++steps;
    if (cursor->parent == 0) {
      break;
    }
    auto it = by_seq.find(cursor->parent);
    if (it == by_seq.end()) {
      text += "  <- #" + std::to_string(cursor->parent) + " (evicted from the journal)\n";
      break;
    }
    cursor = it->second;
  }

  // --- Incarnation divergence for the focus replica ---
  const uint32_t focus = query.node != UINT32_MAX ? query.node : evidence->node;
  const uint32_t incarnations = journal.incarnation(focus);
  if (incarnations >= 2) {
    text += "\n--- incarnation history (" + FmtNode(focus) + ") ---\n";
    struct IncSummary {
      SimTime boot_ts = -1;
      uint64_t last_view = 0;
      uint64_t max_commit_height = 0;
      uint64_t max_commit_hash = 0;
      uint64_t exits = 0;
    };
    std::map<uint32_t, IncSummary> incs;
    for (const JournalRecord& r : events) {
      if (r.node != focus) {
        continue;
      }
      IncSummary& s = incs[r.incarnation];
      switch (r.kind) {
        case JournalKind::kBoot:
          s.boot_ts = r.ts;
          break;
        case JournalKind::kViewEnter:
          s.last_view = std::max(s.last_view, r.a);
          break;
        case JournalKind::kCommit:
        case JournalKind::kCheckpoint:
          if (r.a >= s.max_commit_height) {
            s.max_commit_height = r.a;
            s.max_commit_hash = r.b;
          }
          break;
        case JournalKind::kRecoveryExit:
          ++s.exits;
          break;
        default:
          break;
      }
    }
    for (const auto& [inc, s] : incs) {
      text += "incarnation " + std::to_string(inc) + ": boot t=" +
              (s.boot_ts >= 0 ? std::to_string(s.boot_ts) : std::string("?")) +
              " last_view=" + std::to_string(s.last_view) +
              " max_commit_h=" + std::to_string(s.max_commit_height) +
              " recovery_exits=" + std::to_string(s.exits) + "\n";
    }
    // Divergence point: the first event in the last incarnation that contradicts what the
    // previous incarnations established — a stale unseal, a stale-nonce recovery exit, or
    // a commit that rewrites an earlier incarnation's height.
    const uint32_t last_inc = incs.rbegin()->first;
    uint64_t prev_max_height = 0;
    uint64_t prev_max_hash = 0;
    for (const auto& [inc, s] : incs) {
      if (inc < last_inc && s.max_commit_height >= prev_max_height) {
        prev_max_height = s.max_commit_height;
        prev_max_hash = s.max_commit_hash;
      }
    }
    const JournalRecord* divergence = nullptr;
    uint64_t last_round_nonce = 0;
    bool saw_round = false;
    for (const JournalRecord& r : events) {
      if (r.node != focus || r.incarnation != last_inc) {
        continue;
      }
      if (r.kind == JournalKind::kRecoveryRound) {
        last_round_nonce = r.a;
        saw_round = true;
      }
      if (IsStaleUnseal(r) ||
          (r.kind == JournalKind::kRecoveryExit && saw_round && r.a != last_round_nonce) ||
          ((r.kind == JournalKind::kCommit || r.kind == JournalKind::kCheckpoint) &&
           r.a == prev_max_height && prev_max_height > 0 && r.b != prev_max_hash)) {
        divergence = &r;
        break;
      }
    }
    if (divergence != nullptr) {
      report.divergence_seq = divergence->seq;
      text += "divergence point (incarnation " + std::to_string(last_inc) +
              " vs its past): " + divergence->ToLine() + "\n";
    } else {
      text += "(no divergence between incarnations visible in the surviving journal)\n";
    }
  }

  text += "=======================\n";
  report.text = text;
  return report;
}

}  // namespace obs
}  // namespace achilles
