#include "src/obs/critpath.h"

#include <algorithm>
#include <cstdio>

#include "src/crypto/sha256.h"
#include "src/obs/json.h"

namespace achilles {
namespace obs {

namespace {
constexpr double kMsPerNs = 1.0 / 1e6;

size_t CompIdx(Component c) { return static_cast<size_t>(c); }

void AppendNum(std::string* out, long long v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%lld", v);
  out->append(buf, static_cast<size_t>(n));
}
}  // namespace

CritScales CritScalesOnes() {
  CritScales s;
  s.fill(1.0);
  return s;
}

// --- Recording -------------------------------------------------------------------------

uint32_t CritPathCollector::NewActivity(Kind kind, uint32_t node, const char* name) {
  if (activities_.size() > options_.max_activities) {
    ++dropped_activities_;
    return 0;
  }
  Activity a;
  a.kind = kind;
  a.node = node;
  a.name = name;
  activities_.push_back(a);
  ++used_activities_;
  return static_cast<uint32_t>(activities_.size() - 1);
}

void CritPathCollector::PushSegment(uint32_t activity, Component c, int64_t dur, bool wait,
                                    bool open) {
  if (activity == 0 || dur <= 0) {
    return;
  }
  if (segments_.size() > options_.max_segments) {
    ++dropped_segments_;
    return;
  }
  Segment s;
  s.dur = dur;
  s.comp = c;
  s.wait = wait;
  segments_.push_back(s);
  ++used_segments_;
  const uint32_t id = static_cast<uint32_t>(segments_.size() - 1);
  Activity& a = activities_[activity];
  if (a.seg_tail != 0) {
    segments_[a.seg_tail].next = id;
  } else {
    a.seg_head = id;
  }
  a.seg_tail = id;
  a.open_seg = open ? id : 0;
}

void CritPathCollector::Seal(uint32_t activity) {
  if (activity != 0) {
    activities_[activity].open_seg = 0;
  }
}

const CritPathCollector::Activity* CritPathCollector::Get(uint32_t id) const {
  return id != 0 && id < activities_.size() ? &activities_[id] : nullptr;
}

uint32_t CritPathCollector::BeginOrigin(uint32_t node, SimTime origin, SimTime local_now) {
  const uint32_t id = NewActivity(Kind::kOrigin, node, "propose");
  if (id == 0) {
    return 0;
  }
  Activity& a = activities_[id];
  a.start = origin;
  a.ready = origin;
  // The handler time already spent past the proposal point (building the block) mirrors
  // RestartPathAt's CoverUntil(kCpu, LocalNow()).
  PushSegment(id, Component::kCpu, local_now - origin, /*wait=*/false, /*open=*/true);
  last_cpu_[node] = id;
  return id;
}

uint32_t CritPathCollector::BeginHandler(uint32_t node, const char* name, uint32_t trigger,
                                         SimTime ready, SimTime start) {
  const uint32_t id = NewActivity(Kind::kHandler, node, name);
  if (id == 0) {
    return 0;
  }
  Activity& a = activities_[id];
  a.start = start;
  a.ready = ready;
  a.trigger = trigger;
  if (trigger != 0) {
    a.branch_seg = activities_[trigger].seg_tail;
    Seal(trigger);
  }
  auto it = last_cpu_.find(node);
  a.res_pred = it != last_cpu_.end() ? it->second : 0;
  last_cpu_[node] = id;
  // Run-queue wait, booked kCpu exactly like the Path's CoverUntil(kCpu, start).
  PushSegment(id, Component::kCpu, start - ready, /*wait=*/true, /*open=*/false);
  return id;
}

uint32_t CritPathCollector::BeginTransit(uint32_t from, uint32_t to, const char* name,
                                         uint32_t trigger, SimTime dep, SimTime tx_start,
                                         SimTime tx_end, SimTime arrival, uint32_t nic,
                                         bool holds_nic) {
  const uint32_t id = NewActivity(Kind::kTransit, from, name);
  if (id == 0) {
    return 0;
  }
  Activity& a = activities_[id];
  a.peer = to;
  a.start = tx_start;
  a.ready = dep;
  a.trigger = trigger;
  a.holds_nic = holds_nic;
  if (trigger != 0) {
    a.branch_seg = activities_[trigger].seg_tail;
    Seal(trigger);
  }
  if (holds_nic) {
    auto it = last_nic_.find(nic);
    a.res_pred = it != last_nic_.end() ? it->second : 0;
    last_nic_[nic] = id;
  }
  // Mirror the Path's CoverUntil clamping: each phase only books time past the sender's
  // causal frontier `dep`, so per-commit segment sums equal path parts exactly.
  PushSegment(id, Component::kNicSerialization, std::min(tx_start, tx_end) - dep,
              /*wait=*/true, /*open=*/false);
  PushSegment(id, Component::kNicSerialization, tx_end - std::max(dep, tx_start),
              /*wait=*/false, /*open=*/false);
  PushSegment(id, Component::kNetPropagation, arrival - std::max(dep, tx_end),
              /*wait=*/false, /*open=*/false);
  Seal(id);
  return id;
}

void CritPathCollector::AddService(uint32_t activity, Component c, SimDuration d) {
  if (activity == 0 || activity >= activities_.size() || d <= 0) {
    return;
  }
  Activity& a = activities_[activity];
  if (a.open_seg != 0 && segments_[a.open_seg].comp == c) {
    segments_[a.open_seg].dur += d;
    return;
  }
  PushSegment(activity, c, d, /*wait=*/false, /*open=*/true);
}

void CritPathCollector::NoteInput(uint64_t key, uint32_t activity, SimTime at) {
  if (activity == 0 || activity >= activities_.size()) {
    return;
  }
  if (pending_joins_.size() > options_.max_pending_joins) {
    pending_joins_.clear();  // Deterministic bound on never-joined keys (stale views).
  }
  JoinRecord rec;
  rec.activity = activity;
  rec.branch_seg = activities_[activity].seg_tail;
  rec.at = at;
  Seal(activity);
  uint32_t& head = pending_joins_[key];
  rec.next = head;
  joins_.push_back(rec);
  head = static_cast<uint32_t>(joins_.size() - 1);
}

void CritPathCollector::JoinInputs(uint64_t key, uint32_t joiner, SimTime at) {
  auto it = pending_joins_.find(key);
  if (it == pending_joins_.end()) {
    return;
  }
  const uint32_t head = it->second;
  pending_joins_.erase(it);
  if (joiner == 0 || joiner >= activities_.size()) {
    return;
  }
  Activity& j = activities_[joiner];
  // Append the noted list (already reverse-chronological) to the joiner and fold slack:
  // how much earlier than the join each input arrived on this replica's CPU.
  uint32_t tail = head;
  while (true) {
    const JoinRecord& rec = joins_[tail];
    if (rec.activity != joiner) {
      const Activity& in = activities_[rec.activity];
      std::string cell = "n";
      AppendNum(&cell, in.node);
      cell += ';';
      cell += in.name;
      SlackCell& s = slack_[cell];
      const int64_t slack = at - rec.at;
      s.total_ns += slack;
      s.max_ns = std::max(s.max_ns, slack);
      ++s.joins;
    }
    if (rec.next == 0) {
      break;
    }
    tail = rec.next;
  }
  joins_[tail].next = j.join_head;
  j.join_head = head;
}

void CritPathCollector::OnConfirm(uint32_t activity, SimTime origin, uint64_t height,
                                  SimTime confirm, int64_t submit_sum_ns,
                                  uint64_t tx_count) {
  Commit c;
  c.activity = activity < activities_.size() ? activity : 0;
  c.tail_seg = c.activity != 0 ? activities_[c.activity].seg_tail : 0;
  c.origin = origin;
  c.confirm = confirm;
  c.height = height;
  c.submit_sum_ns = submit_sum_ns;
  c.tx_count = tx_count;
  Seal(c.activity);
  commits_.push_back(c);
}

void CritPathCollector::OnHostCrash(uint32_t node) { last_cpu_.erase(node); }

void CritPathCollector::ResetWindow() {
  commits_.clear();
  slack_.clear();
}

// --- Chain walking ---------------------------------------------------------------------

template <typename Fn>
void CritPathCollector::WalkChain(const Commit& commit, Fn&& fn) const {
  uint32_t cur = commit.activity;
  uint32_t bound = commit.tail_seg;
  while (cur != 0) {
    fn(cur, bound);
    const Activity& a = activities_[cur];
    cur = a.trigger;
    bound = a.branch_seg;
  }
}

// --- What-if engine --------------------------------------------------------------------

SimTime CritPathCollector::Frontier(const std::vector<SimTime>& start_s, uint32_t activity,
                                    uint32_t bound, const CritScales& scales) const {
  const Activity& a = activities_[activity];
  double sum = 0;
  for (uint32_t s = a.seg_head; s != 0 && s <= bound; s = segments_[s].next) {
    const Segment& seg = segments_[s];
    if (!seg.wait) {
      sum += scales[CompIdx(seg.comp)] * static_cast<double>(seg.dur);
    }
  }
  return start_s[activity] + static_cast<SimTime>(sum);
}

void CritPathCollector::Evaluate(const CritScales& scales, std::vector<SimTime>* start_s,
                                 std::vector<SimTime>* release) const {
  const size_t n = activities_.size();
  start_s->assign(n, 0);
  release->assign(n, 0);
  // Activity creation order is topological: trigger, join-input and resource edges all
  // point at earlier ids (they were live when the edge was recorded).
  for (uint32_t id = 1; id < n; ++id) {
    const Activity& a = activities_[id];
    SimTime ready;
    switch (a.kind) {
      case Kind::kOrigin:
        // Proposal points are pinned: what-if predicts origin->confirm, not pacing.
        (*start_s)[id] = a.start;
        break;
      case Kind::kHandler: {
        ready = a.trigger != 0 ? Frontier(*start_s, a.trigger, a.branch_seg, scales)
                               : a.ready;
        for (uint32_t jr = a.join_head; jr != 0; jr = joins_[jr].next) {
          const JoinRecord& rec = joins_[jr];
          if (rec.activity != id && rec.activity < id) {
            ready = std::max(ready, Frontier(*start_s, rec.activity, rec.branch_seg, scales));
          }
        }
        SimTime start = ready;
        // The release clamp explains recorded run-queue waits. An activity that started
        // right at its readiness found a free core in the recording, so its clamp is
        // non-binding at scale 1 and is dropped entirely: counterfactually shifted work
        // is assumed to find a free core too, instead of inheriting the recorded FIFO
        // order against time-pinned activities (timers, paced clients).
        if (a.res_pred != 0 && a.start > a.ready) {
          start = std::max(start, (*release)[a.res_pred]);
        }
        (*start_s)[id] = start;
        break;
      }
      case Kind::kTransit: {
        ready = a.trigger != 0 ? Frontier(*start_s, a.trigger, a.branch_seg, scales)
                               : a.ready;
        SimTime start = ready;
        // Same rule for the NIC: clamp only when the recorded send actually queued.
        if (a.holds_nic && a.res_pred != 0 && a.start > a.ready) {
          start = std::max(start, (*release)[a.res_pred]);
        }
        (*start_s)[id] = start;
        break;
      }
    }
    // Release: CPU horizon for handlers/origins, NIC-free for transits (service segments
    // only — for transits only the NIC serialization occupies the shared resource).
    double service = 0;
    for (uint32_t s = a.seg_head; s != 0; s = segments_[s].next) {
      const Segment& seg = segments_[s];
      if (seg.wait) {
        continue;
      }
      if (a.kind == Kind::kTransit && seg.comp != Component::kNicSerialization) {
        continue;
      }
      service += scales[CompIdx(seg.comp)] * static_cast<double>(seg.dur);
    }
    (*release)[id] = (*start_s)[id] + static_cast<SimTime>(service);
  }
}

double CritPathCollector::WhatIfMeanMs(const CritScales& scales) const {
  std::vector<SimTime> start_s;
  std::vector<SimTime> release;
  Evaluate(scales, &start_s, &release);
  double weighted_ns = 0;
  double txs = 0;
  for (const Commit& c : commits_) {
    if (c.activity == 0 || c.tx_count == 0) {
      continue;
    }
    const SimTime predicted = Frontier(start_s, c.activity, c.tail_seg, scales);
    weighted_ns += static_cast<double>(predicted - c.origin) * static_cast<double>(c.tx_count);
    txs += static_cast<double>(c.tx_count);
  }
  return txs > 0 ? weighted_ns / txs * kMsPerNs : 0.0;
}

// --- Aggregation -----------------------------------------------------------------------

CritSummary CritPathCollector::Summarize() const {
  CritSummary out;
  out.enabled = enabled_;
  out.activities = used_activities_;
  out.segments = used_segments_;
  out.dropped_activities = dropped_activities_;
  out.dropped_segments = dropped_segments_;
  std::array<double, kNumComponents> sums{};
  double wait_sum = 0;
  double total_ns = 0;
  double txs = 0;
  for (const Commit& c : commits_) {
    if (c.activity == 0) {
      ++out.truncated;
      continue;
    }
    std::array<int64_t, kNumComponents> parts{};
    int64_t wait_ns = 0;
    bool anchored = true;
    WalkChain(c, [&](uint32_t id, uint32_t bound) {
      const Activity& a = activities_[id];
      for (uint32_t s = a.seg_head; s != 0 && s <= bound; s = segments_[s].next) {
        parts[CompIdx(segments_[s].comp)] += segments_[s].dur;
        if (segments_[s].wait) {
          wait_ns += segments_[s].dur;
        }
      }
      if (a.trigger == 0) {
        anchored = a.kind == Kind::kOrigin;
      }
    });
    ++out.commits;
    if (!anchored) {
      ++out.unanchored;
    }
    const double w = static_cast<double>(c.tx_count);
    for (size_t i = 0; i < kNumComponents; ++i) {
      sums[i] += static_cast<double>(parts[i]) * w;
    }
    wait_sum += static_cast<double>(wait_ns) * w;
    total_ns += static_cast<double>(c.confirm - c.origin) * w;
    txs += w;
  }
  if (txs > 0) {
    out.mean_ms = total_ns / txs * kMsPerNs;
    for (size_t i = 0; i < kNumComponents; ++i) {
      out.crit_ms[i] = sums[i] / txs * kMsPerNs;
    }
    out.wait_ms = wait_sum / txs * kMsPerNs;
  }
  // Canned what-if scenarios (mean per-tx commit latency under scaled costs).
  CritScales scales = CritScalesOnes();
  out.baseline_ms = WhatIfMeanMs(scales);
  scales[CompIdx(Component::kFsync)] = 0.0;
  out.zero_fsync_ms = WhatIfMeanMs(scales);
  scales = CritScalesOnes();
  scales[CompIdx(Component::kEcall)] = 0.0;
  out.zero_ecall_ms = WhatIfMeanMs(scales);
  scales = CritScalesOnes();
  scales[CompIdx(Component::kCrypto)] = 0.0;
  out.zero_crypto_ms = WhatIfMeanMs(scales);
  scales = CritScalesOnes();
  scales[CompIdx(Component::kCrypto)] = 2.0;
  out.double_crypto_ms = WhatIfMeanMs(scales);
  scales = CritScalesOnes();
  scales[CompIdx(Component::kNetPropagation)] = 0.0;
  scales[CompIdx(Component::kNicSerialization)] = 0.0;
  out.zero_net_ms = WhatIfMeanMs(scales);
  out.digest_hex = DigestHex();
  return out;
}

std::vector<CritBlameEntry> CritPathCollector::BlameProfile() const {
  // Key: where \x1f phase \x1f component-index (+8 for waits).
  std::unordered_map<std::string, CritBlameEntry> cells;
  for (const Commit& c : commits_) {
    if (c.activity == 0) {
      continue;
    }
    WalkChain(c, [&](uint32_t id, uint32_t bound) {
      const Activity& a = activities_[id];
      for (uint32_t s = a.seg_head; s != 0 && s <= bound; s = segments_[s].next) {
        const Segment& seg = segments_[s];
        std::string key = "n";
        AppendNum(&key, a.node);
        if (a.kind == Kind::kTransit) {
          key += "->n";
          AppendNum(&key, a.peer);
        }
        key += '\x1f';
        key += a.name;
        key += '\x1f';
        AppendNum(&key, static_cast<long long>(CompIdx(seg.comp)) + (seg.wait ? 8 : 0));
        CritBlameEntry& cell = cells[key];
        if (cell.hits == 0) {
          const size_t cut1 = key.find('\x1f');
          const size_t cut2 = key.find('\x1f', cut1 + 1);
          cell.where = key.substr(0, cut1);
          cell.phase = key.substr(cut1 + 1, cut2 - cut1 - 1);
          cell.component = seg.comp;
          cell.wait = seg.wait;
        }
        cell.ns += seg.dur;
        ++cell.hits;
      }
    });
  }
  std::vector<CritBlameEntry> out;
  out.reserve(cells.size());
  for (auto& [key, cell] : cells) {
    out.push_back(std::move(cell));
  }
  std::sort(out.begin(), out.end(), [](const CritBlameEntry& a, const CritBlameEntry& b) {
    if (a.ns != b.ns) return a.ns > b.ns;
    if (a.where != b.where) return a.where < b.where;
    if (a.phase != b.phase) return a.phase < b.phase;
    return CompIdx(a.component) + (a.wait ? 8 : 0) < CompIdx(b.component) + (b.wait ? 8 : 0);
  });
  return out;
}

std::vector<CritSlackEntry> CritPathCollector::SlackProfile() const {
  std::vector<CritSlackEntry> out;
  out.reserve(slack_.size());
  for (const auto& [key, cell] : slack_) {
    CritSlackEntry e;
    const size_t cut = key.find(';');
    e.where = key.substr(0, cut);
    e.phase = key.substr(cut + 1);
    e.total_ns = cell.total_ns;
    e.max_ns = cell.max_ns;
    e.joins = cell.joins;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const CritSlackEntry& a, const CritSlackEntry& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    if (a.where != b.where) return a.where < b.where;
    return a.phase < b.phase;
  });
  return out;
}

std::string CritPathCollector::DigestHex() const {
  // Canonical dump: per commit (in confirmation order), the confirm-first chain with each
  // activity's kind, endpoints, recorded times and bounded segment list. No pool indexes,
  // so the digest only depends on the executed schedule — identical across engines and
  // replays by the simulator's own determinism guarantee.
  std::string text;
  text.reserve(commits_.size() * 256);
  for (const Commit& c : commits_) {
    text += "commit h=";
    AppendNum(&text, static_cast<long long>(c.height));
    text += " o=";
    AppendNum(&text, c.origin);
    text += " c=";
    AppendNum(&text, c.confirm);
    text += " tx=";
    AppendNum(&text, static_cast<long long>(c.tx_count));
    text += '\n';
    if (c.activity == 0) {
      text += " truncated\n";
      continue;
    }
    WalkChain(c, [&](uint32_t id, uint32_t bound) {
      const Activity& a = activities_[id];
      text += ' ';
      text += a.kind == Kind::kOrigin ? 'O' : (a.kind == Kind::kHandler ? 'H' : 'T');
      text += " n";
      AppendNum(&text, a.node);
      if (a.kind == Kind::kTransit) {
        text += "->n";
        AppendNum(&text, a.peer);
      }
      text += ' ';
      text += a.name;
      text += " r=";
      AppendNum(&text, a.ready);
      text += " s=";
      AppendNum(&text, a.start);
      for (uint32_t s = a.seg_head; s != 0 && s <= bound; s = segments_[s].next) {
        text += ' ';
        text += ComponentName(segments_[s].comp);
        if (segments_[s].wait) {
          text += "(w)";
        }
        text += ':';
        AppendNum(&text, segments_[s].dur);
      }
      text += '\n';
    });
  }
  const Hash256 digest = Sha256Digest(
      ByteView(reinterpret_cast<const uint8_t*>(text.data()), text.size()));
  return HashToHex(digest);
}

// --- Exports ---------------------------------------------------------------------------

void CritSummary::ToJson(JsonWriter& w) const {
  w.BeginObject();
  w.Field("enabled", enabled);
  w.Field("commits", commits);
  w.Field("truncated", truncated);
  w.Field("unanchored", unanchored);
  w.Field("activities", activities);
  w.Field("segments", segments);
  w.Field("dropped_activities", dropped_activities);
  w.Field("dropped_segments", dropped_segments);
  w.Field("mean_ms", mean_ms);
  w.Field("wait_ms", wait_ms);
  w.KeyBeginObject("crit_ms");
  for (size_t i = 0; i < kNumComponents; ++i) {
    w.Field(ComponentName(static_cast<Component>(i)), crit_ms[i]);
  }
  w.EndObject();
  w.KeyBeginObject("what_if_ms");
  w.Field("baseline", baseline_ms);
  w.Field("zero_fsync", zero_fsync_ms);
  w.Field("zero_ecall", zero_ecall_ms);
  w.Field("zero_crypto", zero_crypto_ms);
  w.Field("double_crypto", double_crypto_ms);
  w.Field("zero_net", zero_net_ms);
  w.EndObject();
  w.Field("digest", digest_hex);
  w.EndObject();
}

std::string CritPathCollector::ProfileJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("summary");
  Summarize().ToJson(w);
  w.KeyBeginArray("blame");
  for (const CritBlameEntry& e : BlameProfile()) {
    w.BeginObject();
    w.Field("where", e.where);
    w.Field("phase", e.phase);
    w.Field("component", ComponentName(e.component));
    w.Field("wait", e.wait);
    w.Field("ns", static_cast<uint64_t>(e.ns));
    w.Field("hits", e.hits);
    w.EndObject();
  }
  w.EndArray();
  w.KeyBeginArray("slack");
  for (const CritSlackEntry& e : SlackProfile()) {
    w.BeginObject();
    w.Field("where", e.where);
    w.Field("phase", e.phase);
    w.Field("total_ns", static_cast<uint64_t>(e.total_ns));
    w.Field("max_ns", static_cast<uint64_t>(e.max_ns));
    w.Field("joins", e.joins);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

std::string CritPathCollector::FoldedStacks() const {
  std::string out;
  for (const CritBlameEntry& e : BlameProfile()) {
    out += e.where;
    out += ';';
    out += e.phase;
    out += ';';
    out += ComponentName(e.component);
    if (e.wait) {
      out += ";wait";
    }
    out += ' ';
    AppendNum(&out, e.ns);
    out += '\n';
  }
  return out;
}

std::string CritPathCollector::PerfettoJson(size_t max_commits) const {
  // Slowest commits first: the interesting chains are the tail, not the median.
  std::vector<const Commit*> picked;
  picked.reserve(commits_.size());
  for (const Commit& c : commits_) {
    if (c.activity != 0) {
      picked.push_back(&c);
    }
  }
  std::sort(picked.begin(), picked.end(), [](const Commit* a, const Commit* b) {
    const SimTime la = a->confirm - a->origin;
    const SimTime lb = b->confirm - b->origin;
    if (la != lb) return la > lb;
    return a->height < b->height;
  });
  if (picked.size() > max_commits) {
    picked.resize(max_commits);
  }
  JsonWriter w;
  w.BeginObject().KeyBeginArray("traceEvents");
  uint32_t pid = 0;
  for (const Commit* c : picked) {
    ++pid;
    std::string pname = "commit h=";
    AppendNum(&pname, static_cast<long long>(c->height));
    w.BeginObject()
        .Field("ph", "M")
        .Field("name", "process_name")
        .Field("pid", pid)
        .Field("tid", static_cast<uint32_t>(0));
    w.KeyBeginObject("args").Field("name", pname).EndObject();
    w.EndObject();
    WalkChain(*c, [&](uint32_t id, uint32_t bound) {
      const Activity& a = activities_[id];
      int64_t span_ns = 0;
      std::array<int64_t, kNumComponents> parts{};
      int64_t wait_ns = 0;
      for (uint32_t s = a.seg_head; s != 0 && s <= bound; s = segments_[s].next) {
        span_ns += segments_[s].dur;
        parts[CompIdx(segments_[s].comp)] += segments_[s].dur;
        if (segments_[s].wait) {
          wait_ns += segments_[s].dur;
        }
      }
      std::string lane = "n";
      AppendNum(&lane, a.node);
      if (a.kind == Kind::kTransit) {
        lane += "->n";
        AppendNum(&lane, a.peer);
      }
      // Lanes: hosts on their own tid, links on 100 + sender (metadata names them).
      const uint32_t tid =
          a.kind == Kind::kTransit ? 100 + a.node * 32 + a.peer : a.node;
      w.BeginObject()
          .Field("ph", "M")
          .Field("name", "thread_name")
          .Field("pid", pid)
          .Field("tid", tid);
      w.KeyBeginObject("args").Field("name", lane).EndObject();
      w.EndObject();
      w.BeginObject()
          .Field("ph", "X")
          .Field("cat", "critpath")
          .Field("name", a.name)
          .Field("pid", pid)
          .Field("tid", tid)
          .Field("ts", static_cast<double>(a.ready) / 1e3)
          .Field("dur", static_cast<double>(span_ns) / 1e3);
      w.KeyBeginObject("args");
      w.Field("wait_us", static_cast<double>(wait_ns) / 1e3);
      for (size_t i = 0; i < kNumComponents; ++i) {
        if (parts[i] != 0) {
          w.Field(ComponentName(static_cast<Component>(i)),
                  static_cast<double>(parts[i]) / 1e3);
        }
      }
      w.EndObject();
      w.EndObject();
    });
  }
  w.EndArray().EndObject();
  return w.Take();
}

}  // namespace obs
}  // namespace achilles
