// Causal commit critical-path profiler (ISSUE 9). Records, for every causal chain the
// simulator executes, a compact activity DAG: handlers (CPU service on a host), transits
// (NIC serialization + propagation on a link) and proposal origins, connected by trigger
// edges (the chain a Path rides along), quorum-join edges (protocols note each vote and
// join them where the quorum completes) and resource edges (the previous holder of the
// same CPU / egress NIC). When a chain reaches client confirmation the recorded trigger
// chain IS the commit's critical path, and each activity's segments reproduce the Path's
// per-component parts exactly — so critical-path blame reconciles with the PR 1 breakdown
// identity by construction.
//
// On top of the recorded DAG sits a COZ-style what-if engine: re-evaluate every activity's
// start/release under scaled per-component costs (zero fsync, 2x crypto, ...) respecting
// trigger, join and resource dependencies, without re-running the simulation. At scale 1.0
// the evaluation reproduces recorded confirmation times exactly (self-check carried in
// every summary as `baseline_ms`).
//
// Like the journal, collection is zero-virtual-cost: hooks only append to memory pools,
// never touch virtual time or the RNG, so event-log / journal / replay digests are
// bit-identical with the profiler on or off.
#ifndef SRC_OBS_CRITPATH_H_
#define SRC_OBS_CRITPATH_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/obs/breakdown.h"

namespace achilles {
namespace obs {

class JsonWriter;

// Per-component what-if scale factors (1.0 = as recorded, 0.0 = free).
using CritScales = std::array<double, kNumComponents>;
CritScales CritScalesOnes();

// One aggregated blame cell: component x phase x replica/link, summed over the on-path
// segments of every complete commit in the window.
struct CritBlameEntry {
  std::string where;   // "n3" (host) or "n0->n2" (link).
  std::string phase;   // Handler/message trace name ("vote", "prepare", "timer", ...).
  Component component = Component::kCpu;
  bool wait = false;   // Queueing (run-queue / NIC backlog) rather than service.
  int64_t ns = 0;      // Total on-path nanoseconds, weighted once per commit.
  uint64_t hits = 0;   // Number of on-path segments aggregated.
};

// Off-critical-path slack: how much earlier than needed a quorum input arrived. One entry
// per (input replica, input phase), aggregated over every join in the window.
struct CritSlackEntry {
  std::string where;   // "n3": the replica whose input carried the slack.
  std::string phase;
  int64_t total_ns = 0;
  int64_t max_ns = 0;
  uint64_t joins = 0;
};

// Windowed summary carried in RunStats and every bench JSON.
struct CritSummary {
  bool enabled = false;
  uint64_t commits = 0;             // Commits with a complete recorded critical path.
  uint64_t truncated = 0;           // Commit chains that hit a dropped activity.
  uint64_t unanchored = 0;          // Complete chains whose root is not a proposal origin.
  uint64_t activities = 0;          // Pool usage (whole run, not just the window).
  uint64_t segments = 0;
  uint64_t dropped_activities = 0;  // Pool-cap overflow counters.
  uint64_t dropped_segments = 0;
  double mean_ms = 0;               // Mean per-tx origin->confirm latency over commits.
  // On-path per-component means (ms per tx, breakdown-identical weighting). Sums to
  // mean_ms exactly for complete chains.
  std::array<double, kNumComponents> crit_ms{};
  double wait_ms = 0;               // Portion of mean_ms spent queueing rather than in service.
  // What-if predictions: mean per-tx commit latency under canned cost scenarios.
  double baseline_ms = 0;           // All scales 1.0 — must equal mean_ms (self-check).
  double zero_fsync_ms = 0;
  double zero_ecall_ms = 0;
  double zero_crypto_ms = 0;
  double double_crypto_ms = 0;
  double zero_net_ms = 0;           // Propagation and NIC serialization both free.
  std::string digest_hex;           // SHA-256 over the canonical per-commit chain dump.

  void ToJson(JsonWriter& w) const;
};

// The collector. One instance per cluster; hooks are cheap appends guarded by enabled().
class CritPathCollector {
 public:
  enum class Kind : uint8_t { kOrigin = 0, kHandler = 1, kTransit = 2 };

  struct Options {
    // Caps, not reservations: pools grow on demand. Overflow returns activity id 0 (a
    // recognized null) and bumps the dropped counters; affected commits count as
    // truncated instead of corrupting the profile.
    uint32_t max_activities = 2u << 20;
    uint32_t max_segments = 8u << 20;
    // Pending quorum-join keys that were noted but never joined (stale views, late votes)
    // are discarded wholesale past this bound, keeping memory deterministic.
    size_t max_pending_joins = 1u << 16;
  };

  CritPathCollector() = default;
  explicit CritPathCollector(const Options& options) : options_(options) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // --- Recording hooks (called by Host / Network / CommitTracker) ---------------------

  // A proposal origin: the handler re-anchored its path at `origin` (RestartPathAt).
  // Books the already-spent handler time [origin, local_now) as a kCpu service segment
  // and takes over the host's CPU-resource chain. Returns the new activity id.
  uint32_t BeginOrigin(uint32_t node, SimTime origin, SimTime local_now);

  // A handler dispatch: `ready` is the path frontier at dequeue (message arrival, or the
  // dispatch time for timer/start work), `start` the CPU grab. Records the run-queue wait
  // [ready, start) as a kCpu wait segment, links `trigger` (the delivering transit, 0 for
  // fresh chains) and the previous CPU holder on `node`.
  uint32_t BeginHandler(uint32_t node, const char* name, uint32_t trigger, SimTime ready,
                        SimTime start);

  // A network transit from->to. `dep` is the sender path frontier at Send (causal
  // departure), [tx_start, tx_end) the NIC serialization window, `arrival` the delivery
  // time. Segments mirror the Path's CoverUntil clamping exactly: NIC wait
  // [dep, tx_start), NIC service until tx_end, propagation until arrival — each clamped
  // to start no earlier than `dep`. `holds_nic` links the egress-NIC resource chain on
  // machine `nic` (false for loopback and chaos duplicates).
  uint32_t BeginTransit(uint32_t from, uint32_t to, const char* name, uint32_t trigger,
                        SimTime dep, SimTime tx_start, SimTime tx_end, SimTime arrival,
                        uint32_t nic, bool holds_nic);

  // A charge inside the running handler (mirrors Path::Extend): merges into the open
  // service segment when the component matches.
  void AddService(uint32_t activity, Component c, SimDuration d);

  // Quorum bookkeeping, called via ReplicaBase::CritNote / CritJoin. `key` identifies the
  // quorum instance (replica x phase x height/hash); NoteInput marks the running handler
  // as carrying one input (sealing its frontier), JoinInputs attaches every noted input
  // to the handler that completed the quorum and records their slack.
  void NoteInput(uint64_t key, uint32_t activity, SimTime at);
  void JoinInputs(uint64_t key, uint32_t joiner, SimTime at);

  // The chain reached client confirmation: freeze its frontier as a commit record.
  void OnConfirm(uint32_t activity, SimTime origin, uint64_t height, SimTime confirm,
                 int64_t submit_sum_ns, uint64_t tx_count);

  // A host crashed: sever its CPU-resource chain (the reboot resets cpu_free_at).
  void OnHostCrash(uint32_t node);

  // Start of a measurement window: drop previously recorded commits and aggregates.
  // Activity pools persist (in-flight chains keep their ids valid).
  void ResetWindow();

  // --- Analysis ----------------------------------------------------------------------

  CritSummary Summarize() const;

  // Mean per-tx origin->confirm latency (ms) re-evaluated over the recorded DAG under
  // per-component scale factors. Scale 1.0 everywhere reproduces recorded times exactly.
  double WhatIfMeanMs(const CritScales& scales) const;

  // Blame profile / slack for the current window (complete commits only), sorted by
  // descending nanoseconds.
  std::vector<CritBlameEntry> BlameProfile() const;
  std::vector<CritSlackEntry> SlackProfile() const;

  // SHA-256 over the canonical dump of every commit's critical path (times, components,
  // durations — no pool indexes), the replay/engine-equivalence fingerprint.
  std::string DigestHex() const;

  // Full profile artifact: summary + blame + slack + per-scenario predictions.
  std::string ProfileJson() const;
  // Folded stacks ("<where>;<phase>;<component>[;wait] <ns>") for flamegraph tooling.
  std::string FoldedStacks() const;
  // Chrome trace_event JSON annotating the `max_commits` slowest commits' critical
  // paths: one process per commit, one thread lane per host/link, every on-path activity
  // a duration slice carrying its per-component costs as args. Opens in Perfetto
  // alongside the span trace (--trace-out) for side-by-side causal reading.
  std::string PerfettoJson(size_t max_commits) const;

  uint64_t activities() const { return used_activities_; }
  uint64_t segments() const { return used_segments_; }
  uint64_t dropped_activities() const { return dropped_activities_; }
  uint64_t dropped_segments() const { return dropped_segments_; }
  uint64_t commits() const { return commits_.size(); }

 private:
  struct Segment {
    int64_t dur = 0;
    uint32_t next = 0;      // Next segment of the same activity (0 = end).
    Component comp = Component::kCpu;
    bool wait = false;      // Queueing: excluded from service frontiers, never scaled.
  };

  struct Activity {
    SimTime start = 0;       // Recorded service start (post-wait).
    SimTime ready = 0;       // Recorded readiness (arrival / causal departure frontier).
    uint32_t trigger = 0;    // Causal trigger activity (0 = chain root).
    uint32_t branch_seg = 0; // Trigger's last segment causally before this activity.
    uint32_t res_pred = 0;   // Previous holder of the same CPU (handlers) / NIC (transits).
    uint32_t seg_head = 0;
    uint32_t seg_tail = 0;
    uint32_t open_seg = 0;   // Mergeable tail service segment (0 = sealed).
    uint32_t join_head = 0;  // Quorum inputs joined at this handler (JoinRecord list).
    const char* name = "";   // Static trace/phase name.
    uint32_t node = 0;       // Host (handlers/origins) or sender (transits).
    uint32_t peer = 0;       // Receiver (transits only).
    Kind kind = Kind::kHandler;
    bool holds_nic = false;
  };

  struct JoinRecord {
    uint32_t activity = 0;   // The input's handler.
    uint32_t branch_seg = 0; // Its frontier when noted.
    SimTime at = 0;          // Note time (for slack).
    uint32_t next = 0;
  };

  struct Commit {
    uint32_t activity = 0;   // Confirming handler.
    uint32_t tail_seg = 0;   // Its frontier at confirmation.
    SimTime origin = 0;
    SimTime confirm = 0;
    uint64_t height = 0;
    int64_t submit_sum_ns = 0;
    uint64_t tx_count = 0;
  };

  uint32_t NewActivity(Kind kind, uint32_t node, const char* name);
  // Appends a segment to `activity`; `open` marks it mergeable by later AddService calls.
  void PushSegment(uint32_t activity, Component c, int64_t dur, bool wait, bool open);
  void Seal(uint32_t activity);
  const Activity* Get(uint32_t id) const;

  // Walks a commit's trigger chain root-ward, confirm-first: `fn(activity_id, seg_bound)`.
  // A chain is complete iff commit.activity != 0; a chain broken mid-way by a dropped
  // activity surfaces as a non-origin root (counted unanchored).
  template <typename Fn>
  void WalkChain(const Commit& commit, Fn&& fn) const;

  // What-if engine internals: start-of-service and resource-release per activity.
  void Evaluate(const CritScales& scales, std::vector<SimTime>* start_s,
                std::vector<SimTime>* release) const;
  SimTime Frontier(const std::vector<SimTime>& start_s, uint32_t activity,
                   uint32_t bound, const CritScales& scales) const;

  Options options_;
  bool enabled_ = false;

  std::vector<Activity> activities_{Activity{}};  // 1-based; slot 0 = null.
  std::vector<Segment> segments_{Segment{}};
  std::vector<JoinRecord> joins_{JoinRecord{}};
  uint64_t used_activities_ = 0;
  uint64_t used_segments_ = 0;
  uint64_t dropped_activities_ = 0;
  uint64_t dropped_segments_ = 0;

  std::unordered_map<uint32_t, uint32_t> last_cpu_;  // node -> last CPU-holding activity.
  std::unordered_map<uint32_t, uint32_t> last_nic_;  // machine -> last NIC transit.
  // Quorum instance key -> head of the pending JoinRecord list.
  std::unordered_map<uint64_t, uint32_t> pending_joins_;

  std::vector<Commit> commits_;
  // Slack aggregation (join-time, windowed): key = (node << 1 | wait-ish) folded with the
  // phase pointer; values accumulate into CritSlackEntry.
  struct SlackCell {
    int64_t total_ns = 0;
    int64_t max_ns = 0;
    uint64_t joins = 0;
  };
  std::unordered_map<std::string, SlackCell> slack_;
};

}  // namespace obs
}  // namespace achilles

#endif  // SRC_OBS_CRITPATH_H_
