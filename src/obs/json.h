// Minimal JSON support for the observability subsystem: a streaming writer (metric
// snapshots, bench reports, Chrome traces) and a small recursive-descent parser used by
// tests to round-trip what the writer emits. No external dependencies.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace achilles {
namespace obs {

// Streaming writer producing compact JSON. Scopes (objects/arrays) are managed manually:
// the caller opens/closes them in order; commas are inserted automatically.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object members (must be inside an object).
  JsonWriter& Key(const std::string& key);
  JsonWriter& KeyBeginObject(const std::string& key) { return Key(key).BeginObject(); }
  JsonWriter& KeyBeginArray(const std::string& key) { return Key(key).BeginArray(); }

  // Values (as array elements, or after Key inside an object).
  JsonWriter& String(const std::string& v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Uint(uint64_t v);
  JsonWriter& Double(double v);  // Emitted with round-trippable precision.
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  // Convenience: Key + value in one call.
  JsonWriter& Field(const std::string& key, const std::string& v) { return Key(key).String(v); }
  JsonWriter& Field(const std::string& key, const char* v) { return Key(key).String(v); }
  JsonWriter& Field(const std::string& key, int64_t v) { return Key(key).Int(v); }
  JsonWriter& Field(const std::string& key, uint64_t v) { return Key(key).Uint(v); }
  JsonWriter& Field(const std::string& key, uint32_t v) { return Key(key).Uint(v); }
  JsonWriter& Field(const std::string& key, double v) { return Key(key).Double(v); }
  JsonWriter& Field(const std::string& key, bool v) { return Key(key).Bool(v); }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

  static std::string Escape(const std::string& s);

 private:
  void Separate();  // Emits a comma if the current scope already has an element.

  std::string out_;
  std::vector<bool> has_element_;  // Per open scope.
  bool pending_key_ = false;
};

// Parsed JSON value. Numbers are kept as doubles (sufficient for round-trip tests).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;
};

// Parses a complete JSON document. Returns nullopt on any syntax error or trailing junk.
std::optional<JsonValue> ParseJson(const std::string& text);

}  // namespace obs
}  // namespace achilles

#endif  // SRC_OBS_JSON_H_
