#include "src/obs/journal.h"

#include <algorithm>
#include <cstdio>

#include "src/crypto/sha256.h"
#include "src/obs/trace.h"

namespace achilles {
namespace obs {

const char* JournalKindName(JournalKind kind) {
  switch (kind) {
    case JournalKind::kBoot:
      return "boot";
    case JournalKind::kCrash:
      return "crash";
    case JournalKind::kStall:
      return "stall";
    case JournalKind::kSend:
      return "send";
    case JournalKind::kDeliver:
      return "deliver";
    case JournalKind::kEcall:
      return "ecall";
    case JournalKind::kSeal:
      return "seal";
    case JournalKind::kUnseal:
      return "unseal";
    case JournalKind::kCounterWrite:
      return "counter-write";
    case JournalKind::kCounterRead:
      return "counter-read";
    case JournalKind::kWalAppend:
      return "wal-append";
    case JournalKind::kFsync:
      return "fsync";
    case JournalKind::kWalTruncate:
      return "wal-truncate";
    case JournalKind::kRollbackReject:
      return "rollback-reject";
    case JournalKind::kHalt:
      return "halt";
    case JournalKind::kViewEnter:
      return "view-enter";
    case JournalKind::kLeaderElected:
      return "leader-elected";
    case JournalKind::kLockUpdate:
      return "lock-update";
    case JournalKind::kPropose:
      return "propose";
    case JournalKind::kCommit:
      return "commit";
    case JournalKind::kCheckpoint:
      return "checkpoint";
    case JournalKind::kRecoveryEnter:
      return "recovery-enter";
    case JournalKind::kRecoveryRound:
      return "recovery-round";
    case JournalKind::kRecoveryExit:
      return "recovery-exit";
    case JournalKind::kLeaseGrant:
      return "lease-grant";
    case JournalKind::kLeaseRevoke:
      return "lease-revoke";
    case JournalKind::kLeaseServe:
      return "lease-serve";
    case JournalKind::kCheckpointStable:
      return "checkpoint-stable";
    case JournalKind::kLogTruncate:
      return "log-truncate";
    case JournalKind::kSnapshotFetch:
      return "snapshot-fetch";
    case JournalKind::kOracleViolation:
      return "oracle-violation";
  }
  return "?";
}

bool JournalKindIsFlow(JournalKind kind) {
  return kind == JournalKind::kSend || kind == JournalKind::kDeliver ||
         kind == JournalKind::kEcall || kind == JournalKind::kWalAppend ||
         kind == JournalKind::kFsync || kind == JournalKind::kLeaseServe;
}

std::string JournalRecord::ToLine() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "#%06llu t=%lld n%u/%u %s p=#%06llu a=%llu b=%llu",
                static_cast<unsigned long long>(seq), static_cast<long long>(ts), node,
                incarnation, JournalKindName(kind),
                static_cast<unsigned long long>(parent), static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  std::string line(buf);
  if (!detail.empty()) {
    line += ' ';
    line += detail;
  }
  return line;
}

Journal::Journal(size_t control_capacity, size_t flow_capacity)
    : control_capacity_(std::max<size_t>(1, control_capacity)),
      flow_capacity_(std::max<size_t>(1, flow_capacity)) {}

Journal::NodeRings& Journal::RingsFor(uint32_t node) {
  if (node >= nodes_.size()) {
    nodes_.resize(node + 1);
  }
  return nodes_[node];
}

uint64_t Journal::Record(uint32_t node, JournalKind kind, SimTime ts, uint64_t parent,
                         uint64_t a, uint64_t b, std::string detail) {
  if (!enabled_) {
    return 0;
  }
  NodeRings& rings = RingsFor(node);
  if (kind == JournalKind::kBoot) {
    ++rings.incarnation;
  }
  JournalRecord record;
  record.seq = next_seq_++;
  record.ts = ts;
  record.node = node;
  record.incarnation = rings.incarnation;
  record.kind = kind;
  record.parent = parent;
  record.a = a;
  record.b = b;
  record.detail = std::move(detail);
  std::deque<JournalRecord>& ring = JournalKindIsFlow(kind) ? rings.flow : rings.control;
  const size_t capacity = JournalKindIsFlow(kind) ? flow_capacity_ : control_capacity_;
  if (ring.size() >= capacity) {
    ring.pop_front();
    ++evicted_;
  }
  const uint64_t seq = record.seq;
  ring.push_back(std::move(record));
  ++recorded_;
  return seq;
}

uint32_t Journal::incarnation(uint32_t node) const {
  return node < nodes_.size() ? nodes_[node].incarnation : 0;
}

std::vector<JournalRecord> Journal::NodeEvents(uint32_t node) const {
  std::vector<JournalRecord> out;
  if (node >= nodes_.size()) {
    return out;
  }
  const NodeRings& rings = nodes_[node];
  out.reserve(rings.control.size() + rings.flow.size());
  out.insert(out.end(), rings.control.begin(), rings.control.end());
  out.insert(out.end(), rings.flow.begin(), rings.flow.end());
  std::sort(out.begin(), out.end(),
            [](const JournalRecord& x, const JournalRecord& y) { return x.seq < y.seq; });
  return out;
}

std::vector<JournalRecord> Journal::Events() const {
  std::vector<JournalRecord> out;
  out.reserve(live());
  for (const NodeRings& rings : nodes_) {
    out.insert(out.end(), rings.control.begin(), rings.control.end());
    out.insert(out.end(), rings.flow.begin(), rings.flow.end());
  }
  std::sort(out.begin(), out.end(),
            [](const JournalRecord& x, const JournalRecord& y) { return x.seq < y.seq; });
  return out;
}

size_t Journal::live() const {
  size_t total = 0;
  for (const NodeRings& rings : nodes_) {
    total += rings.control.size() + rings.flow.size();
  }
  return total;
}

std::string Journal::ToText() const {
  const std::vector<JournalRecord> events = Events();
  std::string out = "journal nodes=" + std::to_string(nodes_.size()) +
                    " recorded=" + std::to_string(recorded_) +
                    " evicted=" + std::to_string(evicted_) + "\n";
  for (const JournalRecord& record : events) {
    out += record.ToLine();
    out += '\n';
  }
  return out;
}

std::string Journal::DigestHex() const {
  const std::string text = ToText();
  const Hash256 digest =
      Sha256Digest(ByteView(reinterpret_cast<const uint8_t*>(text.data()), text.size()));
  return HashToHex(digest);
}

void Journal::AnnotateTracer(SpanTracer* tracer) const {
  if (tracer == nullptr || !tracer->enabled()) {
    return;
  }
  for (const JournalRecord& record : Events()) {
    if (JournalKindIsFlow(record.kind)) {
      continue;
    }
    tracer->Instant(JournalKindName(record.kind), record.node, record.ts, /*parent=*/0,
                    /*arg=*/record.a);
  }
}

void Journal::Clear() {
  nodes_.clear();
  next_seq_ = 1;
  recorded_ = 0;
  evicted_ = 0;
}

}  // namespace obs
}  // namespace achilles
