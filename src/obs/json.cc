#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace achilles {
namespace obs {

// --- Writer ---

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Value follows its key; the comma was emitted before the key.
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      out_ += ',';
    }
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  Separate();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  Separate();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t v) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  Separate();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN.
    return *this;
  }
  char buf[40];
  // %.17g round-trips any double; prefer the shorter %.15g when it is lossless.
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  return *this;
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- Parser ---

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> Run() {
    auto v = ParseValue();
    if (!v) {
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      return std::nullopt;  // Trailing junk.
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(const char* lit) {
    const size_t len = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) {
      return std::nullopt;
    }
    JsonValue v;
    const char c = s_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      auto str = ParseString();
      if (!str) {
        return std::nullopt;
      }
      v.kind = JsonValue::Kind::kString;
      v.string = std::move(*str);
      return v;
    }
    if (Literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (Literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (Literal("null")) {
      return v;
    }
    return ParseNumber();
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return std::nullopt;
    }
    const std::string num = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      return std::nullopt;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) {
      return std::nullopt;
    }
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) {
        return std::nullopt;
      }
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            return std::nullopt;
          }
          const unsigned long code = std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Basic-plane only; encode as UTF-8 (control chars we emit are < 0x80).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // Unterminated.
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) {
      return std::nullopt;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) {
      return v;
    }
    while (true) {
      SkipWs();
      auto key = ParseString();
      if (!key || !Consume(':')) {
        return std::nullopt;
      }
      auto val = ParseValue();
      if (!val) {
        return std::nullopt;
      }
      v.object.emplace(std::move(*key), std::move(*val));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return v;
      }
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) {
      return std::nullopt;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) {
      return v;
    }
    while (true) {
      auto val = ParseValue();
      if (!val) {
        return std::nullopt;
      }
      v.array.push_back(std::move(*val));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return v;
      }
      return std::nullopt;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(const std::string& text) { return Parser(text).Run(); }

}  // namespace obs
}  // namespace achilles
