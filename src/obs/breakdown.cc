#include "src/obs/breakdown.h"

#include "src/obs/json.h"

namespace achilles {
namespace obs {

const char* ComponentName(Component c) {
  switch (c) {
    case Component::kNetPropagation:
      return "net_propagation";
    case Component::kNicSerialization:
      return "nic_serialization";
    case Component::kCpu:
      return "cpu";
    case Component::kEcall:
      return "ecall";
    case Component::kCrypto:
      return "crypto";
    case Component::kCounter:
      return "counter";
    case Component::kFsync:
      return "fsync";
    case Component::kIdle:
      return "idle";
  }
  return "?";
}

double BreakdownMs::TotalMs() const {
  double total = 0.0;
  for (double p : parts) {
    total += p;
  }
  return total;
}

void BreakdownMs::ToJson(JsonWriter* w) const {
  w->BeginObject();
  for (size_t i = 0; i < kNumComponents; ++i) {
    w->Field(std::string(ComponentName(static_cast<Component>(i))) + "_ms", parts[i]);
  }
  w->Field("total_ms", TotalMs());
  w->Field("tx_count", tx_count);
  w->Field("block_count", block_count);
  w->EndObject();
}

void BreakdownAttributor::OnConfirm(const Path& path, SimTime now, int64_t submit_sum_ns,
                                    uint64_t tx_count) {
  if (tx_count == 0) {
    return;
  }
  // Each of the block's transactions experienced the same post-origin path; only the
  // pre-origin wait (submit -> path origin) differs per transaction. Decomposition per tx:
  //   confirm - submit = (origin - submit)        [idle: mempool/batch/chaining wait]
  //                    + sum(path.parts)          [the measured causal chain]
  //                    + (now - covered_until)    [residual; zero when fully covered]
  for (size_t i = 0; i < kNumComponents; ++i) {
    sums_[i] += path.parts[i] * static_cast<int64_t>(tx_count);
  }
  const int64_t idle_ns =
      path.origin * static_cast<int64_t>(tx_count) - submit_sum_ns;
  sums_[static_cast<size_t>(Component::kIdle)] += idle_ns;
  if (now > path.covered_until) {
    sums_[static_cast<size_t>(Component::kCpu)] +=
        (now - path.covered_until) * static_cast<int64_t>(tx_count);
  }
  tx_count_ += tx_count;
  ++block_count_;
}

void BreakdownAttributor::Reset() {
  sums_.fill(0);
  tx_count_ = 0;
  block_count_ = 0;
}

BreakdownMs BreakdownAttributor::MeanPerTx() const {
  BreakdownMs out;
  out.tx_count = tx_count_;
  out.block_count = block_count_;
  if (tx_count_ == 0) {
    return out;
  }
  for (size_t i = 0; i < kNumComponents; ++i) {
    out.parts[i] = static_cast<double>(sums_[i]) / static_cast<double>(tx_count_) / kMillisecond;
  }
  return out;
}

}  // namespace obs
}  // namespace achilles
