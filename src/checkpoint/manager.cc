#include "src/checkpoint/manager.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace achilles {
namespace checkpoint {

const char* SnapshotFateName(SnapshotFate fate) {
  switch (fate) {
    case SnapshotFate::kIntact:
      return "intact";
    case SnapshotFate::kStale:
      return "stale";
    case SnapshotFate::kErased:
      return "erased";
    case SnapshotFate::kCorrupt:
      return "corrupt";
  }
  return "?";
}

CheckpointManager::CheckpointManager(std::vector<NodePlatform*> platforms, Network* net,
                                     const CryptoSuite* suite, const CostModel& costs,
                                     const CheckpointOptions& opts, size_t quorum,
                                     obs::MetricsRegistry* metrics)
    : platforms_(std::move(platforms)),
      net_(net),
      suite_(suite),
      costs_(costs),
      opts_(opts),
      quorum_(quorum),
      metrics_(metrics) {
  ACHILLES_CHECK(opts_.interval > 0);
  per_replica_.resize(platforms_.size());
  if (metrics_ != nullptr) {
    stable_total_ = metrics_->GetCounter("ckpt.stable_total");
    votes_total_ = metrics_->GetCounter("ckpt.votes_total");
    serves_total_ = metrics_->GetCounter("ckpt.snapshot_serves");
    adopts_total_ = metrics_->GetCounter("ckpt.snapshot_adopts");
  }
}

Height CheckpointManager::latest_stable() const {
  Height best = 0;
  for (const PerReplica& pr : per_replica_) {
    best = std::max(best, pr.last_stable);
  }
  return best;
}

void CheckpointManager::Broadcast(NodeId from, const MessageRef& msg) {
  for (uint32_t j = 0; j < n(); ++j) {
    if (j != from) {
      net_->Send(HostAt(from)->id(), HostAt(j)->id(), msg);
    }
  }
}

void CheckpointManager::SetStableGauge(NodeId replica, Height height) {
  if (metrics_ != nullptr) {
    metrics_->GetGauge("ckpt.last_stable_seq", {{"node", std::to_string(replica)}})
        ->Set(static_cast<double>(height));
  }
}

void CheckpointManager::PruneRetained() {
  while (opts_.retain > 0 && retained_.size() > opts_.retain) {
    retained_.erase(retained_.begin());
  }
}

void CheckpointManager::StageForRetention(const BlockPtr& block) {
  if (IsBoundary(block->height)) {
    RetainedSnapshot& slot = retained_[block->height];
    if (slot.block == nullptr) {
      slot.block = block;
    }
    PruneRetained();
  }
  if (kv_ == nullptr) {
    return;
  }
  if (block->height > frontier_.height()) {
    stage_.emplace(block->height, block);
  }
  while (true) {
    auto it = stage_.find(frontier_.height() + 1);
    if (it == stage_.end() || !frontier_.CanApply(it->second)) {
      break;
    }
    frontier_.ApplyBlock(it->second);
    stage_.erase(it);
    if (IsBoundary(frontier_.height())) {
      auto rit = retained_.find(frontier_.height());
      if (rit != retained_.end() && rit->second.state == nullptr) {
        rit->second.state = std::make_shared<app::KvState>(frontier_);
      }
    }
  }
  // Blocks at or below the frontier were either folded or superseded.
  stage_.erase(stage_.begin(), stage_.upper_bound(frontier_.height()));
}

void CheckpointManager::OnCommit(NodeId replica, const BlockPtr& block, SimTime now) {
  if (!opts_.enabled || replica >= n()) {
    return;
  }
  StageForRetention(block);
  const Height h = block->height;
  if (!IsBoundary(h)) {
    return;
  }
  PerReplica& pr = per_replica_[replica];
  PendingBoundary& p = pr.pending[h];
  p.block = block;
  p.digest = CheckpointDigest(*block);
  if (h > pr.last_voted) {
    pr.last_voted = h;
    // Sign the checkpoint vote inside the committing replica's handler context.
    CheckpointCert proto;
    proto.height = h;
    proto.block_hash = block->hash;
    proto.digest = p.digest;
    const Bytes msg = proto.SigningDigest();
    HostAt(replica)->ChargeCpuAs(obs::Component::kCrypto, costs_.sign);
    Signature sig = suite_->Sign(replica, ByteView(msg.data(), msg.size()));
    p.votes[replica] = {p.digest, sig};
    ++votes_cast_;
    if (votes_total_ != nullptr) {
      votes_total_->Inc();
    }
    auto vote = std::make_shared<CkptVoteMsg>();
    vote->height = h;
    vote->block_hash = block->hash;
    vote->digest = p.digest;
    vote->sig = std::move(sig);
    Broadcast(replica, vote);
  }
  TryAssemble(replica, h, now);
}

void CheckpointManager::TryAssemble(NodeId replica, Height height, SimTime now) {
  PerReplica& pr = per_replica_[replica];
  if (height <= pr.last_stable) {
    return;
  }
  auto it = pr.pending.find(height);
  if (it == pr.pending.end() || it->second.block == nullptr) {
    return;  // Votes without a local commit: stability waits for the replica itself.
  }
  PendingBoundary& p = it->second;
  CheckpointCert cert;
  cert.height = height;
  cert.block_hash = p.block->hash;
  cert.digest = p.digest;
  for (const auto& [signer, vote] : p.votes) {
    if (vote.first == p.digest) {
      cert.sigs.push_back(vote.second);
    }
  }
  if (cert.sigs.size() < quorum_) {
    return;
  }
  const BlockPtr block = p.block;
  pr.last_stable = height;
  pr.stable_cert = cert;
  ++checkpoints_assembled_;
  if (stable_total_ != nullptr) {
    stable_total_->Inc();
  }
  RetainedSnapshot& slot = retained_[height];
  if (slot.block == nullptr) {
    slot.block = block;
  }
  if (slot.cert.empty()) {
    slot.cert = cert;
  }
  PruneRetained();
  pr.pending.erase(pr.pending.begin(), pr.pending.upper_bound(height));
  // Persist + truncate inside this replica's handler context, then tell the cluster.
  if (ReplicaBase* rep = ReplicaAt(replica)) {
    rep->PersistStableCheckpoint(cert, block);
  }
  if (kv_ != nullptr) {
    // Compact the shared agreed log with the same slack the block stores keep.
    const Height slack =
        opts_.interval * std::max<Height>(1, opts_.catchup_intervals);
    if (height > slack) {
      kv_->PruneBelow(height - slack);
    }
  }
  SetStableGauge(replica, height);
  auto ann = std::make_shared<CkptAnnounceMsg>();
  ann->cert = cert;
  Broadcast(replica, ann);
  if (stable_listener_) {
    stable_listener_(replica, cert, now);
  }
}

bool CheckpointManager::OnAppMessage(NodeId replica, uint32_t from_host,
                                     const MessageRef& msg) {
  if (auto* vote = dynamic_cast<const CkptVoteMsg*>(msg.get())) {
    HandleVote(replica, *vote, HostAt(replica)->LocalNow());
    return true;
  }
  if (auto* ann = dynamic_cast<const CkptAnnounceMsg*>(msg.get())) {
    HandleAnnounce(replica, from_host, *ann);
    return true;
  }
  if (auto* req = dynamic_cast<const SnapshotFetchRequestMsg*>(msg.get())) {
    HandleFetchRequest(replica, from_host, *req);
    return true;
  }
  if (auto* resp = dynamic_cast<const SnapshotFetchResponseMsg*>(msg.get())) {
    HandleFetchResponse(replica, from_host, *resp);
    return true;
  }
  return next_ != nullptr && next_->OnAppMessage(replica, from_host, msg);
}

void CheckpointManager::HandleVote(NodeId replica, const CkptVoteMsg& vote, SimTime now) {
  if (!opts_.enabled || vote.sig.signer >= n() || vote.sig.signer == replica) {
    return;
  }
  PerReplica& pr = per_replica_[replica];
  if (vote.height <= pr.last_stable) {
    return;  // Already stable here; the vote is stale.
  }
  CheckpointCert proto;
  proto.height = vote.height;
  proto.block_hash = vote.block_hash;
  proto.digest = vote.digest;
  const Bytes msg = proto.SigningDigest();
  HostAt(replica)->ChargeCpuAs(obs::Component::kCrypto, costs_.verify);
  if (!suite_->Verify(vote.sig, ByteView(msg.data(), msg.size()))) {
    return;
  }
  PendingBoundary& p = pr.pending[vote.height];
  p.votes.emplace(vote.sig.signer, std::make_pair(vote.digest, vote.sig));
  TryAssemble(replica, vote.height, now);
}

void CheckpointManager::HandleAnnounce(NodeId replica, uint32_t from_host,
                                       const CkptAnnounceMsg& ann) {
  ReplicaBase* rep = ReplicaAt(replica);
  if (!opts_.enabled || rep == nullptr) {
    return;
  }
  PerReplica& pr = per_replica_[replica];
  const Height committed = rep->last_committed_height();
  const Height lag = static_cast<Height>(opts_.catchup_intervals) * opts_.interval;
  if (ann.cert.height < committed + lag || ann.cert.height <= pr.last_fetch_req) {
    return;  // Close enough to backfill blocks, or a fetch is already outstanding.
  }
  pr.last_fetch_req = ann.cert.height;
  HostAt(replica)->JournalEvent(obs::JournalKind::kSnapshotFetch, ann.cert.height,
                                from_host, "request");
  auto req = std::make_shared<SnapshotFetchRequestMsg>();
  req->requester = replica;
  req->have = committed;
  net_->Send(HostAt(replica)->id(), from_host, req);
}

void CheckpointManager::HandleFetchRequest(NodeId replica, uint32_t from_host,
                                           const SnapshotFetchRequestMsg& req) {
  if (!opts_.enabled) {
    return;
  }
  PerReplica& pr = per_replica_[replica];
  const RetainedSnapshot* serve = nullptr;
  Height serve_height = 0;
  if (opts_.break_stale_snapshot_accept) {
    // BROKEN: serve the oldest retained snapshot, ignoring what the requester has — with
    // retention unbounded this resurrects arbitrarily old state.
    for (const auto& [h, slot] : retained_) {
      if (!slot.cert.empty() && slot.block != nullptr) {
        serve = &slot;
        serve_height = h;
        break;
      }
    }
  } else {
    if (pr.last_stable == 0) {
      return;  // Nothing stable here yet.
    }
    for (auto it = retained_.rbegin(); it != retained_.rend(); ++it) {
      if (!it->second.cert.empty() && it->second.block != nullptr &&
          it->first > req.have) {
        serve = &it->second;
        serve_height = it->first;
        break;
      }
    }
  }
  if (serve == nullptr) {
    return;
  }
  ++snapshot_serves_;
  if (serves_total_ != nullptr) {
    serves_total_->Inc();
  }
  auto resp = std::make_shared<SnapshotFetchResponseMsg>();
  resp->cert = serve->cert;
  resp->block = serve->block;
  resp->kv_state = serve->state;
  resp->app_bytes = serve->state != nullptr ? serve->state->num_keys() * 24 : 0;
  // Reading + packaging the snapshot is hash-rate work on the responder.
  HostAt(replica)->ChargeCpuAs(obs::Component::kCrypto, costs_.HashCost(resp->WireSize()));
  HostAt(replica)->JournalEvent(obs::JournalKind::kSnapshotFetch, serve_height, from_host,
                                "serve");
  net_->Send(HostAt(replica)->id(), from_host, resp);
}

void CheckpointManager::HandleFetchResponse(NodeId replica, uint32_t from_host,
                                            const SnapshotFetchResponseMsg& resp) {
  ReplicaBase* rep = ReplicaAt(replica);
  if (!opts_.enabled || rep == nullptr || resp.block == nullptr) {
    return;
  }
  Host* host = HostAt(replica);
  const bool broken = opts_.break_stale_snapshot_accept;
  if (!broken) {
    host->ChargeCpuAs(obs::Component::kCrypto,
                      costs_.verify * static_cast<SimDuration>(resp.cert.sigs.size()) +
                          costs_.HashCost(resp.block->WireSize()));
    if (!resp.cert.Verify(*suite_, quorum_) ||
        resp.cert.block_hash != resp.block->hash ||
        resp.cert.height != resp.block->height ||
        resp.cert.digest != CheckpointDigest(*resp.block)) {
      host->JournalEvent(obs::JournalKind::kRollbackReject, resp.cert.height, from_host,
                         "ckpt/bad-snapshot-response");
      return;
    }
    if (resp.cert.height <= rep->last_committed_height() ||
        resp.cert.height < rep->checkpoint_floor()) {
      return;  // Stale relative to local progress or below the rollback floor.
    }
  }
  ++snapshot_adopts_;
  if (adopts_total_ != nullptr) {
    adopts_total_->Inc();
  }
  host->JournalEvent(obs::JournalKind::kSnapshotFetch, resp.cert.height, from_host,
                     broken ? "adopt-unchecked" : "adopt");
  // The oracle tap fires BEFORE installation: adoption is judged against the replica's
  // pre-adopt committed prefix (installing the snapshot itself commits the boundary block
  // through the tracker, which would otherwise race the audit).
  if (adopt_listener_) {
    adopt_listener_(replica, resp.cert, host->LocalNow());
  }
  if (kv_ != nullptr && resp.kv_state != nullptr) {
    kv_->InstallMirror(replica, *resp.kv_state, host->LocalNow());
  }
  rep->AdoptStateTransfer(resp.block, resp.cert.WireSize(), /*allow_regress=*/broken);
  rep->PersistStableCheckpoint(resp.cert, resp.block);
  PerReplica& pr = per_replica_[replica];
  if (resp.cert.height > pr.last_stable) {
    pr.last_stable = resp.cert.height;
    pr.stable_cert = resp.cert;
  }
  SetStableGauge(replica, pr.last_stable);
}

void CheckpointManager::OnReplicaCrash(NodeId replica) {
  if (replica >= per_replica_.size()) {
    return;
  }
  // Vote collections live in process RAM; they die with the incarnation.
  per_replica_[replica].pending.clear();
}

void CheckpointManager::OnReplicaReboot(NodeId replica) {
  if (replica >= per_replica_.size()) {
    return;
  }
  // Allow the fresh incarnation to fetch again from scratch.
  per_replica_[replica].last_fetch_req = 0;
}

void CheckpointManager::ApplySnapshotFate(NodeId id, SnapshotFate fate) {
  if (fate == SnapshotFate::kIntact || id >= n()) {
    return;
  }
  storage::RecordStore& recs = platforms_[id]->host_storage().records();
  // Outside a TEE the certificate shares the (rollback-prone) host disk; the fate rewrites
  // both records consistently, which is exactly why such platforms cannot detect it.
  const bool cert_on_host = !platforms_[id]->tee().components_in_tee;
  const auto rewrite = [&recs](const char* key, const Bytes& value) {
    // Async put: visible to the next incarnation without charging the (dead) process.
    recs.Put(key, ByteView(value.data(), value.size()), storage::SyncMode::kAsync);
  };
  switch (fate) {
    case SnapshotFate::kIntact:
      return;
    case SnapshotFate::kErased:
      rewrite(kSnapshotKey, {});
      if (cert_on_host) {
        rewrite(kCertKey, {});
      }
      return;
    case SnapshotFate::kCorrupt: {
      auto cur = recs.Get(kSnapshotKey);
      if (cur.has_value() && !cur->empty()) {
        Bytes mangled = *cur;
        mangled[mangled.size() / 2] ^= 0x5a;
        rewrite(kSnapshotKey, mangled);
      } else {
        rewrite(kSnapshotKey, {});
      }
      return;
    }
    case SnapshotFate::kStale: {
      const RetainedSnapshot* oldest = nullptr;
      for (const auto& [h, slot] : retained_) {
        if (!slot.cert.empty() && slot.block != nullptr) {
          oldest = &slot;
          break;
        }
      }
      if (oldest == nullptr) {
        // No older snapshot exists to roll back to; erasure is the closest attack.
        rewrite(kSnapshotKey, {});
        if (cert_on_host) {
          rewrite(kCertKey, {});
        }
        return;
      }
      rewrite(kSnapshotKey, EncodeSnapshotRecord(oldest->cert, *oldest->block));
      if (cert_on_host) {
        rewrite(kCertKey, oldest->cert.Encode());
      }
      return;
    }
  }
}

}  // namespace checkpoint
}  // namespace achilles
