// Cluster-wide checkpoint coordinator: periodic stable checkpoints, log compaction
// triggers, and snapshot-based state transfer for lagging or rebooted replicas.
//
// One CheckpointManager serves a whole cluster, like KvService and CommitTracker: it lives
// outside the simulated machines but every effect it produces (signatures, verifies,
// broadcasts, journal events) happens inside some replica host's handler context, so
// virtual-time behavior is exactly as if each replica ran its own checkpoint module.
//
// Protocol (protocol-agnostic — driven entirely off CommitTracker commits):
//  1. Vote. When a replica commits boundary height H (H % interval == 0) it signs
//     CheckpointDigest(block) under the "ckpt/STABLE" domain and broadcasts a CkptVoteMsg.
//     Byzantine replicas never reach this path (the tracker drops their commits), so in a
//     2f+1 cluster the f+1 checkpoint quorum is always reachable from honest voters alone.
//  2. Assemble. A replica holding quorum matching votes AND its own commit at H assembles a
//     CheckpointCert, persists it via ReplicaBase::PersistStableCheckpoint (snapshot
//     payload host-durable, certificate TEE-sealed; WAL + block-store truncation follows),
//     and broadcasts a CkptAnnounceMsg.
//  3. State transfer. A replica that receives an announce for a checkpoint at least
//     `catchup_intervals` intervals ahead of its own committed prefix requests the snapshot
//     instead of backfilling blocks one by one. The responder ships {cert, boundary block,
//     KV state}; the requester verifies the quorum certificate, the digest, and its own
//     rollback floor before installing (AdoptStateTransfer + mirror install + persist).
//
// The deliberately-broken variant (--broken stale-snapshot-accept): responders serve their
// oldest retained snapshot and requesters skip every check, force-installing state that can
// lie BELOW what they already committed — a rollback by snapshot. The checkpoint oracle
// (src/chaos/oracles.h) must flag the resulting floor regression.
#ifndef SRC_CHECKPOINT_MANAGER_H_
#define SRC_CHECKPOINT_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/app/kv_service.h"
#include "src/checkpoint/checkpoint.h"
#include "src/consensus/replica_base.h"
#include "src/obs/metrics.h"
#include "src/sim/network.h"
#include "src/tee/platform.h"

namespace achilles {
namespace checkpoint {

// What the host snapshot surface looks like when a node comes back up — the checkpoint
// analogue of storage::WalFate, carried per reboot event by the chaos fault scripts.
// Unlike WAL crash fates these model an *adversarial* host disk: a stale snapshot is a
// rollback, detected only where the certificate lives on a TEE sealing surface.
enum class SnapshotFate : uint8_t {
  kIntact = 0,   // Snapshot payload survives as written.
  kStale = 1,    // Replaced by an older, internally-valid snapshot (rollback).
  kErased = 2,   // Snapshot record gone entirely.
  kCorrupt = 3,  // Payload bytes flipped (fails digest validation).
};

const char* SnapshotFateName(SnapshotFate fate);

// --- Wire messages (replica <-> replica, riding the app-message sink) ---

struct CkptVoteMsg : SimMessage {
  const char* TraceName() const override { return "ckpt_vote"; }
  Height height = 0;
  Hash256 block_hash = ZeroHash();
  Hash256 digest = ZeroHash();
  Signature sig;
  size_t WireSize() const override { return 8 + 32 + 32 + sig.WireSize(); }
};

struct CkptAnnounceMsg : SimMessage {
  const char* TraceName() const override { return "ckpt_announce"; }
  CheckpointCert cert;
  size_t WireSize() const override { return cert.WireSize(); }
};

struct SnapshotFetchRequestMsg : SimMessage {
  const char* TraceName() const override { return "ckpt_fetch_req"; }
  NodeId requester = kNoNode;
  Height have = 0;  // Requester's committed prefix; responders serve only above it.
  size_t WireSize() const override { return 12; }
};

struct SnapshotFetchResponseMsg : SimMessage {
  const char* TraceName() const override { return "ckpt_fetch_resp"; }
  CheckpointCert cert;
  BlockPtr block;                                 // The certified boundary block.
  std::shared_ptr<const app::KvState> kv_state;   // Null outside --app kv runs.
  size_t app_bytes = 0;                           // Serialized KV payload estimate.
  size_t WireSize() const override {
    return cert.WireSize() + (block ? block->WireSize() : 0) + app_bytes;
  }
};

class CheckpointManager : public AppMessageSink {
 public:
  CheckpointManager(std::vector<NodePlatform*> platforms, Network* net,
                    const CryptoSuite* suite, const CostModel& costs,
                    const CheckpointOptions& opts, size_t quorum,
                    obs::MetricsRegistry* metrics);

  // Current replica incarnations (indexed by replica id, nullptr while crashed). The
  // vector identity must be stable; entries may change across reboots.
  void AttachReplicas(const std::vector<ReplicaBase*>* replicas) { replicas_ = replicas; }
  // KV app, when the cluster runs one: snapshots then carry the materialized state and
  // fetch-accept installs the mirror.
  void AttachKv(app::KvService* kv) { kv_ = kv; }
  // Sink chaining: non-checkpoint app traffic is offered to `next` (the KvService).
  void SetNextSink(AppMessageSink* next) { next_ = next; }

  // Wire this into the tracker with AddCommitListener AFTER the KvService's listener (the
  // KV mirror must be current when a boundary snapshot is captured). Runs inside the
  // committing replica's handler context.
  void OnCommit(NodeId replica, const BlockPtr& block, SimTime now);

  // AppMessageSink: consumes Ckpt*/Snapshot* traffic, forwards the rest to the next sink.
  bool OnAppMessage(NodeId replica, uint32_t from_host, const MessageRef& msg) override;

  // Lifecycle notifications from the Cluster. Vote collections are volatile (lost with the
  // process); the manager's per-replica stable bookkeeping mirrors what the replica itself
  // re-derives from its sealed certificate on reboot.
  void OnReplicaCrash(NodeId replica);
  void OnReplicaReboot(NodeId replica);

  // Chaos back-door: reshape replica `id`'s on-disk snapshot surface while the node is
  // down (called between ApplyCrashFate and reboot). kStale installs the oldest retained
  // snapshot — a real, internally-valid old state. Where the certificate lives on the host
  // disk too (non-TEE platforms), the fate hits both records consistently: that is exactly
  // the undetectable-rollback baseline the README threat-model table documents.
  void ApplySnapshotFate(NodeId id, SnapshotFate fate);

  // Oracle taps: fired inside the acting replica's handler context.
  using CheckpointListener = std::function<void(NodeId, const CheckpointCert&, SimTime)>;
  void SetStableListener(CheckpointListener cb) { stable_listener_ = std::move(cb); }
  void SetAdoptListener(CheckpointListener cb) { adopt_listener_ = std::move(cb); }

  // --- Read-side accessors (benches, oracles, gauges) ---
  Height last_stable(NodeId replica) const { return per_replica_[replica].last_stable; }
  Height latest_stable() const;
  uint64_t checkpoints_assembled() const { return checkpoints_assembled_; }
  uint64_t votes_cast() const { return votes_cast_; }
  uint64_t snapshot_serves() const { return snapshot_serves_; }
  uint64_t snapshot_adopts() const { return snapshot_adopts_; }
  const CheckpointOptions& options() const { return opts_; }

 private:
  // One boundary awaiting stability at one replica.
  struct PendingBoundary {
    Hash256 digest = ZeroHash();      // Local digest; meaningful once `block` is set.
    BlockPtr block;                   // Non-null once this replica committed the boundary.
    // Received votes: claimed digest + signature per signer (claims are checked against
    // the local digest at assembly time, so a lying vote can never enter a cert).
    std::map<NodeId, std::pair<Hash256, Signature>> votes;
  };

  struct PerReplica {
    std::map<Height, PendingBoundary> pending;
    Height last_voted = 0;
    Height last_stable = 0;       // Highest cert assembled or adopted by this replica.
    CheckpointCert stable_cert;
    Height last_fetch_req = 0;    // Fetch rate limit: one request per announced height.
  };

  // Cluster-shared snapshot retention (state is deterministic, so one copy serves all
  // responders). `state` materializes when the first-commit frontier crosses the boundary;
  // `cert` when any replica assembles one.
  struct RetainedSnapshot {
    BlockPtr block;
    CheckpointCert cert;
    std::shared_ptr<const app::KvState> state;
  };

  uint32_t n() const { return static_cast<uint32_t>(platforms_.size()); }
  ReplicaBase* ReplicaAt(NodeId id) const {
    return replicas_ != nullptr && id < replicas_->size() ? (*replicas_)[id] : nullptr;
  }
  Host* HostAt(NodeId id) const { return &platforms_[id]->host(); }
  bool IsBoundary(Height h) const {
    return opts_.interval > 0 && h > 0 && h % opts_.interval == 0;
  }
  void Broadcast(NodeId from, const MessageRef& msg);
  // Folds first-committed blocks into the retention frontier; captures boundary blocks and
  // (in KV runs) boundary KV states into retained_.
  void StageForRetention(const BlockPtr& block);
  void PruneRetained();
  void TryAssemble(NodeId replica, Height height, SimTime now);
  void HandleVote(NodeId replica, const CkptVoteMsg& vote, SimTime now);
  void HandleAnnounce(NodeId replica, uint32_t from_host, const CkptAnnounceMsg& ann);
  void HandleFetchRequest(NodeId replica, uint32_t from_host,
                          const SnapshotFetchRequestMsg& req);
  void HandleFetchResponse(NodeId replica, uint32_t from_host,
                           const SnapshotFetchResponseMsg& resp);
  void SetStableGauge(NodeId replica, Height height);

  std::vector<NodePlatform*> platforms_;
  Network* net_;
  const CryptoSuite* suite_;
  CostModel costs_;
  CheckpointOptions opts_;
  size_t quorum_;
  obs::MetricsRegistry* metrics_;
  const std::vector<ReplicaBase*>* replicas_ = nullptr;
  app::KvService* kv_ = nullptr;
  AppMessageSink* next_ = nullptr;

  std::vector<PerReplica> per_replica_;
  std::map<Height, RetainedSnapshot> retained_;
  // First-commit fold of the agreed log, used to capture boundary KV states exactly at
  // their height (mirrors may already be ahead when a vote-completing message arrives).
  app::KvState frontier_;
  std::map<Height, BlockPtr> stage_;  // First-committed blocks not yet folded.

  CheckpointListener stable_listener_;
  CheckpointListener adopt_listener_;

  uint64_t checkpoints_assembled_ = 0;
  uint64_t votes_cast_ = 0;
  uint64_t snapshot_serves_ = 0;
  uint64_t snapshot_adopts_ = 0;
  obs::Counter* stable_total_ = nullptr;
  obs::Counter* votes_total_ = nullptr;
  obs::Counter* serves_total_ = nullptr;
  obs::Counter* adopts_total_ = nullptr;
};

}  // namespace checkpoint
}  // namespace achilles

#endif  // SRC_CHECKPOINT_MANAGER_H_
