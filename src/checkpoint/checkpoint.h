// Checkpoint primitives: quorum-certified digests over the committed state-machine prefix.
//
// A checkpoint at boundary height H binds (H, block hash, exec_result) into a digest that
// every replica reaching H can recompute; a quorum of signatures over that digest is a
// *stable checkpoint certificate* — proof that the certified prefix up to H is durable at a
// quorum and that any snapshot claiming to be H can be validated offline. Per surface the
// persistence classes differ deliberately (the PR 5 threat-model split):
//   - the snapshot payload (cert + boundary block) is host-durable: big, crash-consistent,
//     but the host disk has no rollback adversary to detect;
//   - the certificate alone is TEE-sealed (host-durable outside a TEE): tiny, and on reboot
//     its height is the local rollback-detection floor — a stale or erased snapshot under a
//     fresher sealed certificate is rejected exactly like any other rolled-back sealed blob.
// The CheckpointManager (src/checkpoint/manager.h) drives voting, assembly, truncation and
// snapshot-based state transfer; this header is the dependency-light part ReplicaBase needs.
#ifndef SRC_CHECKPOINT_CHECKPOINT_H_
#define SRC_CHECKPOINT_CHECKPOINT_H_

#include <optional>
#include <vector>

#include "src/consensus/block.h"
#include "src/crypto/signer.h"

namespace achilles {
namespace checkpoint {

// Signing domain for checkpoint votes (see src/consensus/certificates.h conventions).
inline constexpr const char* kCkptDomain = "ckpt/STABLE";
// Host record-store key of the snapshot payload (cert + boundary block).
inline constexpr const char* kSnapshotKey = "ckpt/snapshot";
// Sealed-store (or host record-store, outside a TEE) key of the certificate alone.
inline constexpr const char* kCertKey = "ckpt/cert";

struct CheckpointOptions {
  bool enabled = false;
  Height interval = 64;          // C: a checkpoint boundary every C committed heights.
  uint32_t catchup_intervals = 2;// Snapshot-transfer (not backfill) when >= this many
                                 // intervals behind the announced stable frontier.
  uint32_t retain = 4;           // Boundary snapshots kept servable for laggards
                                 // (0 = unbounded; only the broken self-test uses that).
  // Oracle self-test ONLY (--broken stale-snapshot-accept): responders serve their oldest
  // retained snapshot and requesters skip the quorum/digest/floor checks, silently
  // installing rolled-back state — the checkpoint oracle must flag it.
  bool break_stale_snapshot_accept = false;
};

// The digest every correct replica derives at boundary H: H(height, block hash,
// exec_result). exec_result already folds the whole transaction history (and therefore the
// KV state machine: mirrors are a pure function of the committed log), so no separate app
// hash is needed.
Hash256 CheckpointDigest(const Block& block);

// Quorum-certified stable checkpoint.
struct CheckpointCert {
  Height height = 0;
  Hash256 block_hash = ZeroHash();
  Hash256 digest = ZeroHash();
  std::vector<Signature> sigs;  // Distinct signers, >= the cluster's checkpoint quorum.

  bool empty() const { return sigs.empty(); }
  size_t WireSize() const;

  // Canonical message each signer signs (domain-separated, binds height + digest).
  Bytes SigningDigest() const;
  // All signatures valid, signers distinct, at least `quorum` of them, and the digest is
  // consistent with (height, block_hash) as far as the cert alone can tell.
  bool Verify(const CryptoSuite& suite, size_t quorum) const;

  Bytes Encode() const;
  static std::optional<CheckpointCert> Decode(ByteView wire);
};

// Host snapshot payload codec: {certificate, boundary block}.
Bytes EncodeSnapshotRecord(const CheckpointCert& cert, const Block& block);
bool DecodeSnapshotRecord(ByteView record, CheckpointCert* cert, BlockPtr* block);

}  // namespace checkpoint
}  // namespace achilles

#endif  // SRC_CHECKPOINT_CHECKPOINT_H_
