#include "src/checkpoint/checkpoint.h"

#include <algorithm>
#include <set>

#include "src/common/serde.h"
#include "src/consensus/certificates.h"

namespace achilles {
namespace checkpoint {

Hash256 CheckpointDigest(const Block& block) {
  ByteWriter w;
  w.Str("achilles-ckpt");
  w.U64(block.height);
  w.Raw(ByteView(block.hash.data(), block.hash.size()));
  w.Raw(ByteView(block.exec_result.data(), block.exec_result.size()));
  return Sha256Digest(ByteView(w.bytes().data(), w.bytes().size()));
}

size_t CheckpointCert::WireSize() const {
  size_t total = 8 + 32 + 32 + 4;
  for (const Signature& sig : sigs) {
    total += sig.WireSize();
  }
  return total;
}

Bytes CheckpointCert::SigningDigest() const {
  return CertDigest(kCkptDomain, digest, /*view=*/height);
}

bool CheckpointCert::Verify(const CryptoSuite& suite, size_t quorum) const {
  const Bytes msg = SigningDigest();
  return suite.VerifyQuorum(sigs, ByteView(msg.data(), msg.size()), quorum);
}

Bytes CheckpointCert::Encode() const {
  ByteWriter w;
  w.U64(height);
  w.Raw(ByteView(block_hash.data(), block_hash.size()));
  w.Raw(ByteView(digest.data(), digest.size()));
  w.U32(static_cast<uint32_t>(sigs.size()));
  for (const Signature& sig : sigs) {
    w.U32(sig.signer);
    w.Blob(ByteView(sig.blob.data(), sig.blob.size()));
  }
  return w.Take();
}

std::optional<CheckpointCert> CheckpointCert::Decode(ByteView wire) {
  ByteReader r(wire);
  CheckpointCert cert;
  auto height = r.U64();
  auto block_hash = r.Raw(32);
  auto digest = r.Raw(32);
  auto count = r.U32();
  if (!height || !block_hash || !digest || !count) {
    return std::nullopt;
  }
  cert.height = *height;
  std::copy(block_hash->begin(), block_hash->end(), cert.block_hash.begin());
  std::copy(digest->begin(), digest->end(), cert.digest.begin());
  std::set<uint32_t> seen;
  for (uint32_t i = 0; i < *count; ++i) {
    auto signer = r.U32();
    auto blob = r.Blob();
    if (!signer || !blob || !seen.insert(*signer).second) {
      return std::nullopt;
    }
    Signature sig;
    sig.signer = *signer;
    sig.blob = std::move(*blob);
    cert.sigs.push_back(std::move(sig));
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return cert;
}

Bytes EncodeSnapshotRecord(const CheckpointCert& cert, const Block& block) {
  ByteWriter w;
  const Bytes cert_wire = cert.Encode();
  w.Blob(ByteView(cert_wire.data(), cert_wire.size()));
  const Bytes block_wire = EncodeBlockRecord(block);
  w.Blob(ByteView(block_wire.data(), block_wire.size()));
  return w.Take();
}

bool DecodeSnapshotRecord(ByteView record, CheckpointCert* cert, BlockPtr* block) {
  ByteReader r(record);
  auto cert_wire = r.Blob();
  auto block_wire = r.Blob();
  if (!cert_wire || !block_wire || !r.ok()) {
    return false;
  }
  auto decoded_cert = CheckpointCert::Decode(ByteView(cert_wire->data(), cert_wire->size()));
  if (!decoded_cert) {
    return false;
  }
  BlockPtr decoded_block = DecodeBlockRecord(ByteView(block_wire->data(), block_wire->size()));
  if (decoded_block == nullptr) {
    return false;
  }
  *cert = std::move(*decoded_cert);
  *block = std::move(decoded_block);
  return true;
}

}  // namespace checkpoint
}  // namespace achilles
