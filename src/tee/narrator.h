// Narrator-style software persistent counter (Niu et al., CCS'22), built as a real
// simulated service rather than a latency constant: a cluster of 2f+1 small TEE "state
// monitors" keeps the counter in replicated memory; an increment broadcasts to all
// monitors and completes on f+1 attested acknowledgements (two communication steps), a
// read queries a quorum without the heavy attestation. The emergent latencies land where
// Table 4 places them (LAN ≈ 9/4.5 ms, WAN dominated by the RTT) and
// `bench_table4_counters` prints them next to the configured device constants.
#ifndef SRC_TEE_NARRATOR_H_
#define SRC_TEE_NARRATOR_H_

#include <cstdint>

#include "src/sim/network.h"

namespace achilles {

struct NarratorParams {
  uint32_t num_monitors = 10;  // Narrator's evaluation uses 10 nodes.
  // In-enclave processing per increment on each monitor: state-hash chaining + attested
  // signature inside SGX (the dominant term of Narrator's LAN latency).
  SimDuration write_processing = FromMs(8.0);
  // Reads skip the chaining; monitors answer from memory with a light MAC.
  SimDuration read_processing = FromMs(4.0);
};

struct NarratorResult {
  double write_ms = 0.0;  // Mean latency of an increment.
  double read_ms = 0.0;   // Mean latency of a quorum read.
  uint64_t increments = 0;
};

// Runs a Narrator cluster in its own simulation and measures `ops` increments and reads
// issued back-to-back by one client enclave.
NarratorResult MeasureNarrator(const NetworkConfig& net, const NarratorParams& params,
                               int ops, uint64_t seed);

}  // namespace achilles

#endif  // SRC_TEE_NARRATOR_H_
