#include "src/tee/enclave.h"

#include <cstring>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/crypto/hmac.h"
#include "src/tee/defense_backends.h"

namespace achilles {

namespace {
constexpr size_t kTagSize = 32;
}

EnclaveRuntime::EnclaveRuntime(NodePlatform* platform) : platform_(platform) {
  // Nonce stream seeded from the sealing key and the (untrusted but unique) boot time; the
  // adversary cannot predict it without the device key.
  const Hash256& sk = platform_->sealing_key();
  uint64_t seed = 0;
  std::memcpy(&seed, sk.data(), sizeof(seed));
  nonce_state_ = seed ^ static_cast<uint64_t>(platform_->host().sim().Now()) ^
                 (static_cast<uint64_t>(platform_->node_id()) << 48);
  defense_ = MakeDefenseBackend(this);
}

void EnclaveRuntime::ChargeEcall() {
  if (in_tee()) {
    platform_->host().ChargeCpuAs(obs::Component::kEcall, platform_->costs().ecall_round_trip);
    ++ecalls_;
    platform_->host().JournalEvent(obs::JournalKind::kEcall, ecalls_);
  }
}

void EnclaveRuntime::ChargeSign() {
  const CostModel& costs = platform_->costs();
  const double factor = in_tee() ? costs.enclave_crypto_factor : 1.0;
  platform_->host().ChargeCpuAs(
      obs::Component::kCrypto,
      static_cast<SimDuration>(static_cast<double>(costs.sign) * factor));
}

void EnclaveRuntime::ChargeVerify(size_t count) {
  const CostModel& costs = platform_->costs();
  const double factor = in_tee() ? costs.enclave_crypto_factor : 1.0;
  platform_->host().ChargeCpuAs(
      obs::Component::kCrypto,
      static_cast<SimDuration>(static_cast<double>(costs.verify) * factor *
                               static_cast<double>(count)));
}

void EnclaveRuntime::ChargeVerifyBatch(size_t count) {
  const CostModel& costs = platform_->costs();
  const double factor = in_tee() ? costs.enclave_crypto_factor : 1.0;
  platform_->host().ChargeCpuAs(
      obs::Component::kCrypto,
      static_cast<SimDuration>(static_cast<double>(costs.BatchVerifyCost(count)) * factor));
}

void EnclaveRuntime::ChargeHash(size_t bytes) {
  platform_->host().ChargeCpuAs(obs::Component::kCrypto, platform_->costs().HashCost(bytes));
}

Signature EnclaveRuntime::Sign(ByteView digest) {
  return platform_->suite().Sign(platform_->node_id(), digest);
}

bool EnclaveRuntime::Verify(const Signature& sig, ByteView digest) const {
  return platform_->suite().Verify(sig, digest);
}

Bytes EnclaveRuntime::Keystream(uint64_t iv, size_t len) const {
  Bytes stream;
  stream.reserve(len + 32);
  uint64_t block = 0;
  while (stream.size() < len) {
    ByteWriter w;
    w.U64(iv);
    w.U64(block++);
    const Hash256 chunk =
        DeriveKey(ByteView(platform_->sealing_key().data(), 32), "seal-stream",
                  ByteView(w.bytes().data(), w.bytes().size()));
    stream.insert(stream.end(), chunk.begin(), chunk.end());
  }
  stream.resize(len);
  return stream;
}

void SealedStore::Put(const std::string& key, ByteView record) {
  enclave_->DoSeal(key, record);
}

std::optional<Bytes> SealedStore::Get(const std::string& key) {
  return enclave_->DoUnseal(key);
}

bool CounterStore::available() const {
  return enclave_->platform_->counter().spec().enabled();
}

void CounterStore::Put(const std::string& key, ByteView record) {
  (void)key;
  (void)record;  // Counters hold no records; writes to this facet are dropped.
}

std::optional<Bytes> CounterStore::Get(const std::string& key) {
  (void)key;
  return std::nullopt;
}

uint64_t CounterStore::Increment() {
  return available() ? enclave_->platform_->counter().IncrementBlocking() : 0;
}

uint64_t CounterStore::Read() {
  return available() ? enclave_->platform_->counter().ReadBlocking() : 0;
}

void EnclaveRuntime::DoSeal(const std::string& slot, ByteView plaintext) {
  platform_->host().ChargeCpuAs(obs::Component::kCrypto, platform_->costs().seal_op);
  ChargeHash(plaintext.size());
  const uint64_t iv = ++seal_iv_ ^ (nonce_state_ << 16);
  const Bytes stream = Keystream(iv, plaintext.size());
  Bytes cipher(plaintext.size());
  for (size_t i = 0; i < plaintext.size(); ++i) {
    cipher[i] = plaintext[i] ^ stream[i];
  }
  ByteWriter mac_input;
  mac_input.Str(slot);
  mac_input.U64(iv);
  mac_input.Blob(ByteView(cipher.data(), cipher.size()));
  const Hash256 tag = HmacSha256(ByteView(platform_->sealing_key().data(), 32),
                                 ByteView(mac_input.bytes().data(), mac_input.bytes().size()));

  ByteWriter blob;
  blob.U64(iv);
  blob.Blob(ByteView(cipher.data(), cipher.size()));
  blob.Raw(ByteView(tag.data(), tag.size()));
  platform_->storage().Put(slot, blob.Take());
  platform_->host().JournalEvent(obs::JournalKind::kSeal,
                                 platform_->storage().NumVersions(slot), plaintext.size(),
                                 slot);
}

std::optional<Bytes> EnclaveRuntime::DoUnseal(const std::string& slot) {
  platform_->host().ChargeCpuAs(obs::Component::kCrypto, platform_->costs().seal_op);
  size_t served_version = 0;
  const std::optional<Bytes> blob = platform_->storage().Get(slot, &served_version);
  // Journal the served blob version against the newest one the OS holds: a served version
  // below the latest IS the rollback attack, visible here before any checker logic runs.
  platform_->host().JournalEvent(obs::JournalKind::kUnseal, served_version,
                                 platform_->storage().NumVersions(slot), slot);
  if (!blob) {
    return std::nullopt;
  }
  ByteReader r(ByteView(blob->data(), blob->size()));
  const auto iv = r.U64();
  const auto cipher = r.Blob();
  const auto tag = r.Raw(kTagSize);
  if (!iv || !cipher || !tag || r.remaining() != 0) {
    return std::nullopt;
  }
  ByteWriter mac_input;
  mac_input.Str(slot);
  mac_input.U64(*iv);
  mac_input.Blob(ByteView(cipher->data(), cipher->size()));
  const Hash256 expected =
      HmacSha256(ByteView(platform_->sealing_key().data(), 32),
                 ByteView(mac_input.bytes().data(), mac_input.bytes().size()));
  if (!ConstantTimeEqual(ByteView(tag->data(), tag->size()),
                         ByteView(expected.data(), expected.size()))) {
    return std::nullopt;
  }
  ChargeHash(cipher->size());
  const Bytes stream = Keystream(*iv, cipher->size());
  Bytes plain(cipher->size());
  for (size_t i = 0; i < cipher->size(); ++i) {
    plain[i] = (*cipher)[i] ^ stream[i];
  }
  return plain;
}

uint64_t EnclaveRuntime::FreshNonce() { return SplitMix64(nonce_state_); }

}  // namespace achilles
