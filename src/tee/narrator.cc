#include "src/tee/narrator.h"

#include <memory>
#include <vector>

namespace achilles {

namespace {

struct NarratorMsg : SimMessage {
  enum class Kind : uint8_t { kIncrement, kIncrementAck, kRead, kReadAck };
  Kind kind = Kind::kIncrement;
  uint64_t op_id = 0;
  uint64_t value = 0;
  size_t WireSize() const override { return 1 + 8 + 8 + 64; }  // Plus attestation tag.
};

// One state monitor: applies increments to its in-memory counter and acknowledges.
class MonitorProcess : public IProcess {
 public:
  MonitorProcess(Host* host, Network* net, const NarratorParams& params)
      : host_(host), net_(net), params_(params) {}

  void OnMessage(uint32_t from, const MessageRef& msg) override {
    auto m = std::dynamic_pointer_cast<const NarratorMsg>(msg);
    if (m == nullptr) {
      return;
    }
    auto reply = std::make_shared<NarratorMsg>();
    reply->op_id = m->op_id;
    if (m->kind == NarratorMsg::Kind::kIncrement) {
      host_->ChargeCpu(params_.write_processing);
      reply->kind = NarratorMsg::Kind::kIncrementAck;
      reply->value = ++counter_;
    } else if (m->kind == NarratorMsg::Kind::kRead) {
      host_->ChargeCpu(params_.read_processing);
      reply->kind = NarratorMsg::Kind::kReadAck;
      reply->value = counter_;
    } else {
      return;
    }
    net_->Send(host_->id(), from, reply);
  }

 private:
  Host* host_;
  Network* net_;
  NarratorParams params_;
  uint64_t counter_ = 0;
};

// The client enclave: issues increments and reads back-to-back, completing each op on a
// quorum of acknowledgements.
class NarratorClient : public IProcess {
 public:
  NarratorClient(Host* host, Network* net, const NarratorParams& params, int ops)
      : host_(host), net_(net), params_(params), remaining_ops_(ops) {}

  void OnStart() override { IssueNext(); }

  void OnMessage(uint32_t /*from*/, const MessageRef& msg) override {
    auto m = std::dynamic_pointer_cast<const NarratorMsg>(msg);
    if (m == nullptr || m->op_id != current_op_ || done_) {
      return;
    }
    if (++acks_ < Quorum()) {
      return;
    }
    const SimDuration latency = host_->LocalNow() - op_start_;
    if (reading_) {
      read_total_ += latency;
      ++reads_done_;
    } else {
      write_total_ += latency;
      ++writes_done_;
    }
    if (!reading_) {
      reading_ = true;  // Follow each increment with a read.
      Issue(NarratorMsg::Kind::kRead);
    } else {
      reading_ = false;
      --remaining_ops_;
      IssueNext();
    }
  }

  double MeanWriteMs() const {
    return writes_done_ == 0 ? 0.0 : ToMs(write_total_) / static_cast<double>(writes_done_);
  }
  double MeanReadMs() const {
    return reads_done_ == 0 ? 0.0 : ToMs(read_total_) / static_cast<double>(reads_done_);
  }
  uint64_t writes_done() const { return writes_done_; }

 private:
  size_t Quorum() const { return params_.num_monitors / 2 + 1; }

  void IssueNext() {
    if (remaining_ops_ <= 0) {
      done_ = true;
      return;
    }
    Issue(NarratorMsg::Kind::kIncrement);
  }

  void Issue(NarratorMsg::Kind kind) {
    ++current_op_;
    acks_ = 0;
    op_start_ = host_->LocalNow();
    auto msg = std::make_shared<NarratorMsg>();
    msg->kind = kind;
    msg->op_id = current_op_;
    for (uint32_t m = 1; m <= params_.num_monitors; ++m) {
      net_->Send(host_->id(), m, msg);
    }
  }

  Host* host_;
  Network* net_;
  NarratorParams params_;
  int remaining_ops_;
  uint64_t current_op_ = 0;
  size_t acks_ = 0;
  bool reading_ = false;
  bool done_ = false;
  SimTime op_start_ = 0;
  SimDuration write_total_ = 0;
  SimDuration read_total_ = 0;
  uint64_t writes_done_ = 0;
  uint64_t reads_done_ = 0;
};

}  // namespace

NarratorResult MeasureNarrator(const NetworkConfig& net, const NarratorParams& params,
                               int ops, uint64_t seed) {
  Simulation sim(seed);
  Network network(&sim, net);
  std::vector<std::unique_ptr<Host>> hosts;
  // Host 0: client; hosts 1..num_monitors: monitors.
  hosts.push_back(std::make_unique<Host>(&sim, 0));
  network.AddHost(hosts.back().get());
  for (uint32_t m = 1; m <= params.num_monitors; ++m) {
    hosts.push_back(std::make_unique<Host>(&sim, m));
    network.AddHost(hosts.back().get());
    hosts.back()->BindProcess(
        std::make_unique<MonitorProcess>(hosts.back().get(), &network, params));
  }
  auto client = std::make_unique<NarratorClient>(hosts[0].get(), &network, params, ops);
  NarratorClient* client_ptr = client.get();
  hosts[0]->BindProcess(std::move(client));
  sim.RunUntilIdle(/*max_events=*/10'000'000);

  NarratorResult result;
  result.write_ms = client_ptr->MeanWriteMs();
  result.read_ms = client_ptr->MeanReadMs();
  result.increments = client_ptr->writes_done();
  return result;
}

}  // namespace achilles
