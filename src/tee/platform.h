// Per-node persistent environment. Survives process crashes (it models the machine and its
// devices), while enclaves and replicas are re-created per incarnation.
#ifndef SRC_TEE_PLATFORM_H_
#define SRC_TEE_PLATFORM_H_

#include <memory>

#include "src/crypto/signer.h"
#include "src/sim/host.h"
#include "src/storage/defense.h"
#include "src/storage/host_storage.h"
#include "src/tee/cost_model.h"
#include "src/tee/monotonic_counter.h"
#include "src/tee/sealed_storage.h"

namespace achilles {

struct TeeConfig {
  // When false, "trusted" components run outside the enclave: ECALL cost and the in-enclave
  // crypto factor vanish, but so do integrity guarantees. This is Achilles-C (Table 3).
  bool components_in_tee = true;
  CounterSpec counter = CounterSpec::None();
  // Enclave (re)launch cost on boot, part of Table 2's "Initialization" row.
  SimDuration enclave_boot = Ms(10);
  // Connection re-establishment cost per peer on boot (the rest of initialization).
  SimDuration connect_per_peer = FromUs(120.0);
};

class NodePlatform {
 public:
  // `node_id` is the node's protocol identity (signing key index). It defaults to the host
  // id; the concurrent-instances extension runs several hosts per machine identity.
  NodePlatform(Host* host, CryptoSuite* suite, const CostModel& costs, const TeeConfig& tee,
               uint64_t seed, uint32_t node_id = UINT32_MAX);

  Host& host() { return *host_; }
  CryptoSuite& suite() { return *suite_; }
  const CostModel& costs() const { return costs_; }
  const TeeConfig& tee() const { return tee_; }
  SealedStorage& storage() { return storage_; }
  MonotonicCounter& counter() { return counter_; }
  // Host disk (WALs + record store); like the sealed-storage device it outlives the
  // process, but its crash faults are truncation, never rollback.
  storage::HostStableStorage& host_storage() { return host_storage_; }

  uint32_t node_id() const { return node_id_; }

  // Device sealing key (fused into the CPU; adversary never learns it).
  const Hash256& sealing_key() const { return sealing_key_; }

  // --- Rollback-defense backend selection (src/storage/defense.h) ---
  // The Cluster configures every replica platform before any enclave is built; quorum
  // kinds need the cluster-owned DefenseService. Defaults to kLocal with no service —
  // the historical sealed+counter behavior.
  void ConfigureDefense(persist::DefenseKind kind, persist::DefenseService* service) {
    defense_kind_ = kind;
    defense_service_ = service;
  }
  persist::DefenseKind defense_kind() const { return defense_kind_; }
  persist::DefenseService* defense_service() { return defense_service_; }

 private:
  Host* host_;
  CryptoSuite* suite_;
  uint32_t node_id_;
  CostModel costs_;
  TeeConfig tee_;
  SealedStorage storage_;
  MonotonicCounter counter_;
  storage::HostStableStorage host_storage_;
  Hash256 sealing_key_;
  persist::DefenseKind defense_kind_ = persist::DefenseKind::kLocal;
  persist::DefenseService* defense_service_ = nullptr;
};

}  // namespace achilles

#endif  // SRC_TEE_PLATFORM_H_
