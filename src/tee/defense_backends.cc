#include "src/tee/defense_backends.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"
#include "src/common/serde.h"
#include "src/tee/enclave.h"

namespace achilles {
namespace {

using persist::Backend;
using persist::BackendCaps;
using persist::DefenseKind;
using persist::DefenseService;
using persist::FreshnessClass;
using persist::OpenResult;
using persist::OpenStatus;

// Seals `record` with an 8-byte version trailer appended (the shape every backend shares;
// see the header comment) and returns the plaintext written.
void SealVersioned(EnclaveRuntime* enclave, const std::string& key, ByteView record,
                   uint64_t version) {
  ByteWriter w;
  w.Raw(record);
  w.U64(version);
  enclave->sealed_store().Put(key, ByteView(w.bytes().data(), w.bytes().size()));
}

// Splits an unsealed blob back into (record, version). False when the blob is too short
// to carry the trailer (forged or foreign).
bool SplitVersioned(const Bytes& blob, Bytes* record, uint64_t* version) {
  if (blob.size() < 8) {
    return false;
  }
  ByteReader r(ByteView(blob.data(), blob.size()));
  const auto rec = r.Raw(blob.size() - 8);
  const auto v = r.U64();
  if (!rec || !v || r.remaining() != 0) {
    return false;
  }
  record->assign(rec->begin(), rec->end());
  *version = *v;
  return true;
}

// persist::Store facet over a quorum backend: Put buys a defended Persist, Get refuses
// anything Open cannot certify fresh (a rolled-back checkpoint certificate reads as
// missing, which keeps the checkpoint floor conservative). The counter facet is inert —
// quorum backends replace the counter's anti-rollback role outright.
class BackendStoreView final : public persist::Store {
 public:
  explicit BackendStoreView(Backend* backend) : backend_(backend) {}

  persist::Durability durability() const override {
    return persist::Durability::kTeeSealed;
  }
  void Put(const std::string& key, ByteView record) override {
    backend_->Persist(key, record);
  }
  std::optional<Bytes> Get(const std::string& key) override {
    OpenResult r = backend_->Open(key, /*verify=*/true);
    if (r.status != OpenStatus::kFresh || !r.record) {
      return std::nullopt;
    }
    return std::move(r.record);
  }

 private:
  Backend* backend_;
};

// --- local: sealed blob + monotonic-counter compare (the historical defense) ---
class LocalCounterBackend final : public Backend {
 public:
  explicit LocalCounterBackend(EnclaveRuntime* enclave) : enclave_(enclave) {}

  BackendCaps caps() const override {
    BackendCaps caps;
    caps.kind = DefenseKind::kLocal;
    const bool counter = enclave_->counter_store().available();
    caps.rollback_detection = counter;
    caps.freshness = counter ? FreshnessClass::kDetect : FreshnessClass::kNone;
    return caps;
  }

  uint64_t Persist(const std::string& key, ByteView record) override {
    const uint64_t version = ++last_version_[key];
    // Store-then-increment (§2.1): bind the new version, then bump the counter (a no-op
    // without a device). This write is the 20-97 ms stall on the -R critical path.
    enclave_->counter_store().Increment();
    SealVersioned(enclave_, key, record, version);
    return version;
  }

  OpenResult Open(const std::string& key, bool verify) override {
    OpenResult result;
    const std::optional<Bytes> blob = enclave_->sealed_store().Get(key);
    Bytes record;
    uint64_t version = 0;
    if (!blob || !SplitVersioned(*blob, &record, &version)) {
      return result;  // kEmpty: nothing sealed (or forged blob).
    }
    result.record = std::move(record);
    result.version = version;
    persist::Store& counter = enclave_->counter_store();
    if (verify && counter.available()) {
      // Rollback detection: the sealed version must match the counter exactly. A stale
      // blob (version < counter) means the OS rolled the state back.
      result.expected_version = counter.Read();
      if (version != result.expected_version) {
        result.status = OpenStatus::kRolledBack;
        last_version_[key] = std::max(version, result.expected_version);
        return result;
      }
    }
    result.status = OpenStatus::kFresh;
    last_version_[key] = version;
    return result;
  }

  persist::Store& store() override {
    // The historical checkpoint-certificate dispatch, unchanged: TEE platforms seal the
    // raw record (no version trailer, no counter write), TEE-less baselines use the host
    // record store and cannot detect rollback (see the README threat-model table).
    return enclave_->in_tee()
               ? enclave_->sealed_store()
               : enclave_->platform().host_storage().record_store();
  }

 private:
  EnclaveRuntime* enclave_;
  std::map<std::string, uint64_t> last_version_;
};

// Shared machinery of the two quorum backends: versioned local seal + a blocking charge
// (as obs::Component::kCounter) for the peer round trip.
class QuorumBackendBase : public Backend {
 public:
  QuorumBackendBase(EnclaveRuntime* enclave, DefenseService* service)
      : enclave_(enclave), service_(service), view_(this) {
    ACHILLES_CHECK(service_ != nullptr);
  }

  persist::Store& store() override { return view_; }

 protected:
  uint32_t self() const { return enclave_->platform().node_id(); }
  void ChargeQuorumWait(SimDuration peer_op) {
    enclave_->platform().host().ChargeCpuAs(
        obs::Component::kCounter, 2 * service_->costs().one_way + peer_op);
  }
  // Local sealed read, split into (record, version); false = nothing usable sealed.
  bool OpenLocal(const std::string& key, Bytes* record, uint64_t* version) {
    const std::optional<Bytes> blob = enclave_->sealed_store().Get(key);
    return blob && SplitVersioned(*blob, record, version);
  }

  EnclaveRuntime* enclave_;
  DefenseService* service_;
  std::map<std::string, uint64_t> last_version_;

 private:
  BackendStoreView view_;
};

// --- rollbaccine: quorum-replicated sealed storage (detection AND repair) ---
class RollbaccineBackend final : public QuorumBackendBase {
 public:
  using QuorumBackendBase::QuorumBackendBase;

  BackendCaps caps() const override {
    BackendCaps caps;
    caps.kind = DefenseKind::kRollbaccine;
    caps.rollback_detection = true;
    caps.rollback_prevention = true;
    caps.freshness = FreshnessClass::kRecover;
    caps.quorum_dependent = true;
    return caps;
  }

  uint64_t Persist(const std::string& key, ByteView record) override {
    const uint64_t version = ++last_version_[key];
    SealVersioned(enclave_, key, record, version);
    // The write is acked only once the peer disk replicas hold the copy: one round trip
    // plus the peer-side durable write, charged as blocking anti-rollback I/O.
    service_->Replicate(self(), key, version, record);
    ChargeQuorumWait(service_->costs().replica_write);
    return version;
  }

  OpenResult Open(const std::string& key, bool verify) override {
    OpenResult result;
    Bytes local_record;
    uint64_t local_version = 0;
    const bool have_local = OpenLocal(key, &local_record, &local_version);
    if (!verify) {
      // Broken variant (quorum-restore-skip): trust the local blob without consulting the
      // herd — exactly the stale install replication exists to prevent.
      if (have_local) {
        result.status = OpenStatus::kFresh;
        result.record = std::move(local_record);
        result.version = local_version;
        last_version_[key] = local_version;
      }
      return result;
    }
    ChargeQuorumWait(service_->costs().replica_read);
    const std::optional<DefenseService::Copy> peer = service_->FreshestPeerCopy(self(), key);
    const uint64_t peer_version = peer ? peer->version : 0;
    result.expected_version = std::max(local_version, peer_version);
    if (!have_local && !peer) {
      return result;  // kEmpty.
    }
    // Herd immunity: recovery installs the freshest surviving copy, so a rolled-back (or
    // erased) local blob is repaired rather than fatal.
    result.status = OpenStatus::kFresh;
    if (peer_version > local_version) {
      result.record = peer->record;
      result.version = peer_version;
      result.repaired = true;  // Local blob was stale or erased; the herd had better.
    } else {
      result.record = std::move(local_record);
      result.version = local_version;
    }
    last_version_[key] = result.expected_version;
    return result;
  }
};

// --- healer: quorum freshness certificates (detection, no repair) ---
class HealerBackend final : public QuorumBackendBase {
 public:
  using QuorumBackendBase::QuorumBackendBase;

  BackendCaps caps() const override {
    BackendCaps caps;
    caps.kind = DefenseKind::kHealer;
    caps.rollback_detection = true;
    caps.freshness = FreshnessClass::kDetect;
    caps.quorum_dependent = true;
    return caps;
  }

  uint64_t Persist(const std::string& key, ByteView record) override {
    const uint64_t version = ++last_version_[key];
    SealVersioned(enclave_, key, record, version);
    // Peers countersign the version floor (certificates only — the record itself stays
    // local, which is why this backend can detect but never repair).
    service_->Certify(self(), key, version);
    ChargeQuorumWait(service_->costs().cert_op);
    return version;
  }

  OpenResult Open(const std::string& key, bool verify) override {
    OpenResult result;
    Bytes local_record;
    uint64_t local_version = 0;
    const bool have_local = OpenLocal(key, &local_record, &local_version);
    if (!verify) {
      // Broken variant (cert-floor-skip): install the local blob without checking the
      // certified floor — the silent stale install the certificates exist to catch.
      if (have_local) {
        result.status = OpenStatus::kFresh;
        result.record = std::move(local_record);
        result.version = local_version;
        last_version_[key] = local_version;
      }
      return result;
    }
    ChargeQuorumWait(service_->costs().cert_op);
    const uint64_t floor = service_->CertifiedFloor(self(), key);
    result.expected_version = floor;
    last_version_[key] = std::max(local_version, floor);
    if (!have_local) {
      // Erased local blob under a non-zero floor is a detected rollback (the record is
      // gone for good — no repair); no floor and no blob is a genuine first boot.
      result.status = floor > 0 ? OpenStatus::kRolledBack : OpenStatus::kEmpty;
      return result;
    }
    result.record = std::move(local_record);
    result.version = local_version;
    result.status = local_version < floor ? OpenStatus::kRolledBack : OpenStatus::kFresh;
    return result;
  }
};

}  // namespace

std::unique_ptr<persist::Backend> MakeDefenseBackend(EnclaveRuntime* enclave) {
  NodePlatform& platform = enclave->platform();
  switch (platform.defense_kind()) {
    case DefenseKind::kLocal:
      return std::make_unique<LocalCounterBackend>(enclave);
    case DefenseKind::kRollbaccine:
      return std::make_unique<RollbaccineBackend>(enclave, platform.defense_service());
    case DefenseKind::kHealer:
      return std::make_unique<HealerBackend>(enclave, platform.defense_service());
  }
  ACHILLES_CHECK_MSG(false, "unknown defense kind");
  return nullptr;
}

}  // namespace achilles
