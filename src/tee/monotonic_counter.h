// Trusted persistent monotonic counters — the rollback-prevention primitive whose cost
// Achilles removes from the critical path. Latencies follow Table 4 of the paper.
#ifndef SRC_TEE_MONOTONIC_COUNTER_H_
#define SRC_TEE_MONOTONIC_COUNTER_H_

#include <cstdint>

#include "src/sim/host.h"

namespace achilles {

enum class CounterKind {
  kNone,         // Protocol performs no rollback prevention (Achilles, plain Damysus).
  kTpm,          // TPM counter: ~97 ms write / ~35 ms read.
  kSgx,          // (Deprecated) SGX counter: ~160 ms write / ~61 ms read.
  kNarratorLan,  // Software counter, distributed TEEs over LAN: ~9 ms / ~4.5 ms.
  kNarratorWan,  // Same over WAN: ~45 ms / ~25 ms.
  kCustom,       // Caller-provided latencies (Fig. 5 sweep; 20 ms is the paper's default).
};

struct CounterSpec {
  CounterKind kind = CounterKind::kNone;
  SimDuration write_latency = 0;
  SimDuration read_latency = 0;

  static CounterSpec None() { return CounterSpec{}; }
  static CounterSpec For(CounterKind kind);
  static CounterSpec Custom(SimDuration write, SimDuration read) {
    return CounterSpec{CounterKind::kCustom, write, read};
  }
  // The paper's experiments fix counter write latency at 20 ms (read 5 ms).
  static CounterSpec PaperDefault() { return Custom(Ms(20), Ms(5)); }

  bool enabled() const { return kind != CounterKind::kNone; }
};

// The counter device itself is trusted and survives crashes; only the *latency* of talking
// to it is modeled. Increment/Read block the calling node's CPU for the device latency.
class MonotonicCounter {
 public:
  MonotonicCounter(Host* host, CounterSpec spec) : host_(host), spec_(spec) {}

  // Increments and returns the new value, charging the write latency.
  uint64_t IncrementBlocking();
  // Returns the current value, charging the read latency.
  uint64_t ReadBlocking();

  // Free accessors for tests/metrics (no latency).
  uint64_t value() const { return value_; }
  uint64_t writes() const { return writes_; }
  uint64_t reads() const { return reads_; }
  const CounterSpec& spec() const { return spec_; }
  void ResetStats() { writes_ = 0; reads_ = 0; }

 private:
  Host* host_;
  CounterSpec spec_;
  uint64_t value_ = 0;
  uint64_t writes_ = 0;
  uint64_t reads_ = 0;
};

}  // namespace achilles

#endif  // SRC_TEE_MONOTONIC_COUNTER_H_
