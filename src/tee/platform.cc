#include "src/tee/platform.h"

#include "src/crypto/hmac.h"

namespace achilles {

NodePlatform::NodePlatform(Host* host, CryptoSuite* suite, const CostModel& costs,
                           const TeeConfig& tee, uint64_t seed, uint32_t node_id)
    : host_(host),
      suite_(suite),
      node_id_(node_id == UINT32_MAX ? host->id() : node_id),
      costs_(costs),
      tee_(tee),
      counter_(host, tee.counter),
      host_storage_(host, costs.log_fsync) {
  Bytes ctx(12);
  const uint32_t id = host->id();
  for (int i = 0; i < 8; ++i) {
    ctx[static_cast<size_t>(i)] = static_cast<uint8_t>(seed >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    ctx[static_cast<size_t>(8 + i)] = static_cast<uint8_t>(id >> (8 * i));
  }
  sealing_key_ = DeriveKey(AsBytes("device-fuse"), "sealing-key", ByteView(ctx.data(), ctx.size()));
}

}  // namespace achilles
