#include "src/tee/monotonic_counter.h"

namespace achilles {

CounterSpec CounterSpec::For(CounterKind kind) {
  switch (kind) {
    case CounterKind::kNone:
      return None();
    case CounterKind::kTpm:
      return CounterSpec{kind, Ms(97), Ms(35)};
    case CounterKind::kSgx:
      return CounterSpec{kind, Ms(160), Ms(61)};
    case CounterKind::kNarratorLan:
      return CounterSpec{kind, FromMs(9.0), FromMs(4.5)};
    case CounterKind::kNarratorWan:
      return CounterSpec{kind, Ms(45), Ms(25)};
    case CounterKind::kCustom:
      return PaperDefault();
  }
  return None();
}

uint64_t MonotonicCounter::IncrementBlocking() {
  if (spec_.enabled()) {
    host_->ChargeCpuAs(obs::Component::kCounter, spec_.write_latency);
  }
  ++writes_;
  ++value_;
  host_->JournalEvent(obs::JournalKind::kCounterWrite, value_);
  return value_;
}

uint64_t MonotonicCounter::ReadBlocking() {
  if (spec_.enabled()) {
    host_->ChargeCpuAs(obs::Component::kCounter, spec_.read_latency);
  }
  ++reads_;
  host_->JournalEvent(obs::JournalKind::kCounterRead, value_);
  return value_;
}

}  // namespace achilles
