// Untrusted persistent storage, version-keeping, adversary-controllable. SGX's seal/unseal
// protects confidentiality and integrity of each blob but NOT freshness: after a reboot the
// OS (here: the adversary) may serve any previously stored version — the rollback attack.
#ifndef SRC_TEE_SEALED_STORAGE_H_
#define SRC_TEE_SEALED_STORAGE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"

namespace achilles {

// What the (possibly adversarial) OS serves when an enclave asks for a sealed blob.
enum class RollbackMode {
  kLatest,   // Honest OS: freshest version.
  kOldest,   // Serve the very first version ever stored (full rollback/reset).
  kPinned,   // Serve the version pinned via PinServedVersion.
  kErase,    // Pretend nothing was ever stored.
};

class SealedStorage {
 public:
  SealedStorage() = default;

  // Stores a new version of `key` (history retained — the adversary can replay any of it).
  void Put(const std::string& key, Bytes blob);

  // Returns the blob the OS chooses to serve, per the rollback mode. `served_version`
  // (optional) reports which version was handed out, 1-based (0 = nothing served) — the
  // flight recorder uses it to make rollbacks visible (served < NumVersions = stale).
  std::optional<Bytes> Get(const std::string& key, size_t* served_version = nullptr) const;

  // --- Adversary controls ---
  void SetRollbackMode(RollbackMode mode) { mode_ = mode; }
  RollbackMode rollback_mode() const { return mode_; }
  void PinServedVersion(const std::string& key, size_t version);

  size_t NumVersions(const std::string& key) const;
  uint64_t puts() const { return puts_; }
  uint64_t gets() const { return gets_; }

 private:
  std::map<std::string, std::vector<Bytes>> versions_;
  std::map<std::string, size_t> pinned_;
  RollbackMode mode_ = RollbackMode::kLatest;
  uint64_t puts_ = 0;
  mutable uint64_t gets_ = 0;
};

}  // namespace achilles

#endif  // SRC_TEE_SEALED_STORAGE_H_
