#include "src/tee/sealed_storage.h"

namespace achilles {

void SealedStorage::Put(const std::string& key, Bytes blob) {
  versions_[key].push_back(std::move(blob));
  ++puts_;
}

std::optional<Bytes> SealedStorage::Get(const std::string& key,
                                        size_t* served_version) const {
  ++gets_;
  if (served_version != nullptr) {
    *served_version = 0;
  }
  auto it = versions_.find(key);
  if (it == versions_.end() || it->second.empty()) {
    return std::nullopt;
  }
  const std::vector<Bytes>& history = it->second;
  auto serve = [&](size_t idx) -> std::optional<Bytes> {
    if (served_version != nullptr) {
      *served_version = idx + 1;
    }
    return history[idx];
  };
  switch (mode_) {
    case RollbackMode::kLatest:
      return serve(history.size() - 1);
    case RollbackMode::kOldest:
      return serve(0);
    case RollbackMode::kPinned: {
      auto pin = pinned_.find(key);
      const size_t idx = pin == pinned_.end() ? history.size() - 1
                                              : std::min(pin->second, history.size() - 1);
      return serve(idx);
    }
    case RollbackMode::kErase:
      return std::nullopt;
  }
  return std::nullopt;
}

void SealedStorage::PinServedVersion(const std::string& key, size_t version) {
  pinned_[key] = version;
}

size_t SealedStorage::NumVersions(const std::string& key) const {
  auto it = versions_.find(key);
  return it == versions_.end() ? 0 : it->second.size();
}

}  // namespace achilles
