// Simulated SGX enclave runtime. One instance per process incarnation: its in-memory state
// dies with the process (crash == enclave teardown), while sealed blobs live in the
// platform's untrusted storage. Provides cost accounting for the ECALL boundary and
// authenticated sealing whose only weakness is freshness — exactly SGX's rollback surface.
#ifndef SRC_TEE_ENCLAVE_H_
#define SRC_TEE_ENCLAVE_H_

#include <memory>
#include <optional>
#include <string>

#include "src/storage/defense.h"
#include "src/storage/persist.h"
#include "src/tee/platform.h"

namespace achilles {

class EnclaveRuntime;

// persist::Store view over the enclave's sealing surface (encrypt-then-MAC under the device
// key). Durability class kTeeSealed: survives crashes, but the OS serves whatever version
// it likes — rollback/erasure is this surface's adversary, freshness is NOT guaranteed.
class SealedStore final : public persist::Store {
 public:
  explicit SealedStore(EnclaveRuntime* enclave) : enclave_(enclave) {}

  persist::Durability durability() const override {
    return persist::Durability::kTeeSealed;
  }
  void Put(const std::string& key, ByteView record) override;
  std::optional<Bytes> Get(const std::string& key) override;

 private:
  EnclaveRuntime* enclave_;
};

// persist::Store view over the platform's trusted monotonic counter. Durability class
// kTeeCounter: crash-surviving and rollback-free, but it holds a single number — the
// record facet is inert (Put drops, Get returns nullopt); use Increment/Read.
class CounterStore final : public persist::Store {
 public:
  explicit CounterStore(EnclaveRuntime* enclave) : enclave_(enclave) {}

  persist::Durability durability() const override {
    return persist::Durability::kTeeCounter;
  }
  bool available() const override;
  void Put(const std::string& key, ByteView record) override;
  std::optional<Bytes> Get(const std::string& key) override;
  uint64_t Increment() override;  // Blocking device write (charges write latency).
  uint64_t Read() override;       // Blocking device read (charges read latency).

 private:
  EnclaveRuntime* enclave_;
};

class EnclaveRuntime {
 public:
  explicit EnclaveRuntime(NodePlatform* platform);

  NodePlatform& platform() { return *platform_; }
  bool in_tee() const { return platform_->tee().components_in_tee; }

  // --- Cost accounting (charged to the host CPU) ---
  void ChargeEcall();               // One enclave transition round trip (no-op outside TEE).
  void ChargeSign();                // One signature, scaled by the in-enclave factor.
  void ChargeVerify(size_t count);  // `count` verifications, scaled likewise.
  // `count` signatures over ONE message (a quorum certificate): batched cost when the
  // batch check is cheaper (CostModel::BatchVerifyCost), scaled by the enclave factor.
  void ChargeVerifyBatch(size_t count);
  void ChargeHash(size_t bytes);

  // --- Signing with the node's key (the private key never leaves the enclave) ---
  Signature Sign(ByteView digest);
  bool Verify(const Signature& sig, ByteView digest) const;

  // --- Unified persistence handles (src/storage/persist.h) ---
  // The two TEE-backed durability classes this enclave can buy. The host-durable class
  // lives on the platform (platform().host_storage().record_store()); volatile is a plain
  // persist::VolatileStore member wherever state is deliberately not persisted.
  persist::Store& sealed_store() { return sealed_store_; }
  persist::Store& counter_store() { return counter_store_; }

  // The rollback-defense backend this enclave's trusted state persists through
  // (src/storage/defense.h; built per the platform's configured DefenseKind). The
  // Damysus/OneShot/Achilles checkers and the checkpoint certificate floor run over this
  // seam — not over sealed_store()/counter_store() directly — so competing defenses are
  // swappable per run (--defense).
  persist::Backend& defense() { return *defense_; }

  // Deterministic per-enclave nonce source (models RDRAND inside the enclave).
  uint64_t FreshNonce();

  // Stats.
  uint64_t ecalls() const { return ecalls_; }

 private:
  friend class SealedStore;
  friend class CounterStore;

  void DoSeal(const std::string& slot, ByteView plaintext);
  std::optional<Bytes> DoUnseal(const std::string& slot);
  Bytes Keystream(uint64_t iv, size_t len) const;

  NodePlatform* platform_;
  SealedStore sealed_store_{this};
  CounterStore counter_store_{this};
  std::unique_ptr<persist::Backend> defense_;
  uint64_t seal_iv_ = 0;
  uint64_t nonce_state_;
  uint64_t ecalls_ = 0;
};

}  // namespace achilles

#endif  // SRC_TEE_ENCLAVE_H_
