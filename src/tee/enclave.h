// Simulated SGX enclave runtime. One instance per process incarnation: its in-memory state
// dies with the process (crash == enclave teardown), while sealed blobs live in the
// platform's untrusted storage. Provides cost accounting for the ECALL boundary and
// authenticated sealing whose only weakness is freshness — exactly SGX's rollback surface.
#ifndef SRC_TEE_ENCLAVE_H_
#define SRC_TEE_ENCLAVE_H_

#include <optional>
#include <string>

#include "src/tee/platform.h"

namespace achilles {

class EnclaveRuntime {
 public:
  explicit EnclaveRuntime(NodePlatform* platform);

  NodePlatform& platform() { return *platform_; }
  bool in_tee() const { return platform_->tee().components_in_tee; }

  // --- Cost accounting (charged to the host CPU) ---
  void ChargeEcall();               // One enclave transition round trip (no-op outside TEE).
  void ChargeSign();                // One signature, scaled by the in-enclave factor.
  void ChargeVerify(size_t count);  // `count` verifications, scaled likewise.
  void ChargeHash(size_t bytes);

  // --- Signing with the node's key (the private key never leaves the enclave) ---
  Signature Sign(ByteView digest);
  bool Verify(const Signature& sig, ByteView digest) const;

  // --- Sealing (encrypt-then-MAC under the device sealing key) ---
  // Stores a new version of `slot`; adversary may later serve any old version but cannot
  // forge or read contents.
  void Seal(const std::string& slot, ByteView plaintext);
  // Returns the plaintext of whatever version the OS serves, or nullopt if absent/forged.
  std::optional<Bytes> Unseal(const std::string& slot);

  // Deterministic per-enclave nonce source (models RDRAND inside the enclave).
  uint64_t FreshNonce();

  // Stats.
  uint64_t ecalls() const { return ecalls_; }

 private:
  Bytes Keystream(uint64_t iv, size_t len) const;

  NodePlatform* platform_;
  uint64_t seal_iv_ = 0;
  uint64_t nonce_state_;
  uint64_t ecalls_ = 0;
};

}  // namespace achilles

#endif  // SRC_TEE_ENCLAVE_H_
