// The three persist::Backend implementations (src/storage/defense.h) an enclave can run
// its rollback-defended state over. One backend instance per EnclaveRuntime incarnation;
// the crash-surviving peer state of the quorum backends lives in the cluster-owned
// persist::DefenseService the platform is configured with (NodePlatform::ConfigureDefense).
//
// All three write the same wire shape — the caller's record with an 8-byte version
// trailer, sealed under the device key — so the sealed blobs of the local backend are
// byte-identical to what the Damysus/OneShot checkers historically produced, and the
// chaos replay digests of --defense local runs match pre-backend builds exactly.
#ifndef SRC_TEE_DEFENSE_BACKENDS_H_
#define SRC_TEE_DEFENSE_BACKENDS_H_

#include <memory>

#include "src/storage/defense.h"

namespace achilles {

class EnclaveRuntime;

// Builds the backend for the platform's configured DefenseKind. Quorum kinds require a
// DefenseService on the platform (the Cluster installs one when --defense != local).
std::unique_ptr<persist::Backend> MakeDefenseBackend(EnclaveRuntime* enclave);

}  // namespace achilles

#endif  // SRC_TEE_DEFENSE_BACKENDS_H_
