// CPU cost model charged to simulated hosts. Defaults approximate the paper's testbed
// (8 vCPU cloud instances, OpenSSL ECDSA-P256). `bench_table4_counters` re-measures this
// repo's own crypto so the model can be recalibrated; see EXPERIMENTS.md.
#ifndef SRC_TEE_COST_MODEL_H_
#define SRC_TEE_COST_MODEL_H_

#include <algorithm>

#include "src/common/sim_time.h"

namespace achilles {

struct CostModel {
  SimDuration sign = Us(25);            // One signature creation.
  SimDuration verify = Us(50);          // One signature verification.
  // Batched verification of k signatures over one message (quorum certificates) costs
  // verify_batch_fixed + k * verify_batch_per_sig: the shared double-chain of the
  // multi-scalar multiply amortizes the fixed elliptic-curve work across the batch
  // (SchnorrBatchVerify; recalibrated by bench_table4_counters).
  SimDuration verify_batch_fixed = Us(55);
  SimDuration verify_batch_per_sig = Us(14);
  double hash_ns_per_byte = 3.0;        // SHA-256 streaming cost.
  SimDuration hash_fixed = Ns(500);     // Per-hash fixed cost.
  SimDuration ecall_round_trip = Us(20); // Enclave transition in+out (incl. paging).
  double enclave_crypto_factor = 2.5;   // Crypto slowdown inside the enclave (SGXSSL).
  SimDuration per_tx_execute = Ns(500); // Executing one transaction (echo-style op).
  SimDuration per_tx_client = Us(1);    // Client-side bookkeeping per transaction in a reply.
  SimDuration per_msg_handling = Us(3); // Deserialize + dispatch of one message.
  SimDuration seal_op = Us(15);         // Seal or unseal of a small state blob.
  // Durable log append (CFT protocols must fsync their log before acknowledging; cloud
  // block-storage latency). BFT protocols here rely on TEEs/recovery instead of fsync.
  SimDuration log_fsync = Ms(1);
  // Peer-side costs of the quorum rollback-defense backends (src/storage/defense.h); the
  // network one-way delay is added from the cluster's NetworkConfig at setup. Replica
  // write models a peer's durable disk write of a replicated sealed copy (Rollbaccine),
  // replica read the recovery-time copy lookup, cert_op a freshness-certificate
  // issue/lookup (Healer) — certificate ops are cheap, copies pay disk latency.
  SimDuration defense_replica_write = Us(150);
  SimDuration defense_replica_read = Us(60);
  SimDuration defense_cert_op = Us(30);

  static CostModel Default() { return CostModel{}; }

  // All-zero model: used by the step-counting experiment (Table 1), where latency must be a
  // pure multiple of the network one-way delay.
  static CostModel Zero() {
    CostModel m;
    m.sign = 0;
    m.verify = 0;
    m.verify_batch_fixed = 0;
    m.verify_batch_per_sig = 0;
    m.hash_ns_per_byte = 0.0;
    m.hash_fixed = 0;
    m.ecall_round_trip = 0;
    m.enclave_crypto_factor = 1.0;
    m.per_tx_execute = 0;
    m.per_tx_client = 0;
    m.per_msg_handling = 0;
    m.seal_op = 0;
    m.log_fsync = 0;
    m.defense_replica_write = 0;
    m.defense_replica_read = 0;
    m.defense_cert_op = 0;
    return m;
  }

  SimDuration HashCost(size_t bytes) const {
    return hash_fixed + static_cast<SimDuration>(hash_ns_per_byte * static_cast<double>(bytes));
  }

  // Cost of verifying `count` signatures over one message: the batched check when it is
  // cheaper, scalar verification otherwise (small counts don't amortize the fixed MSM).
  SimDuration BatchVerifyCost(size_t count) const {
    const SimDuration scalar = verify * static_cast<SimDuration>(count);
    if (count < 2) {
      return scalar;
    }
    const SimDuration batched =
        verify_batch_fixed + verify_batch_per_sig * static_cast<SimDuration>(count);
    return std::min(scalar, batched);
  }
};

}  // namespace achilles

#endif  // SRC_TEE_COST_MODEL_H_
