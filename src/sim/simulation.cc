#include "src/sim/simulation.h"

#include <algorithm>

#include "src/common/check.h"

namespace achilles {

Simulation::Simulation(uint64_t seed) : rng_(seed) {}

EventId Simulation::ScheduleAt(SimTime t, std::function<void()> fn) {
  ACHILLES_CHECK(t >= now_);
  const EventId id = next_id_++;
  heap_.push(Event{t, next_seq_++, id, std::move(fn)});
  peak_pending_ = std::max(peak_pending_, heap_.size() - cancelled_.size());
  return id;
}

EventId Simulation::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  ACHILLES_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Simulation::Cancel(EventId id) {
  if (id != kInvalidEvent) {
    cancelled_.insert(id);
  }
}

bool Simulation::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    if (cancelled_.erase(ev.id) > 0) {
      continue;
    }
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::RunUntil(SimTime t) {
  ACHILLES_CHECK(t >= now_);
  while (!heap_.empty() && heap_.top().time <= t) {
    Step();
  }
  now_ = t;
}

void Simulation::RunUntilIdle(uint64_t max_events) {
  uint64_t budget = max_events;
  while (budget-- > 0 && Step()) {
  }
}

}  // namespace achilles
