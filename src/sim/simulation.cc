#include "src/sim/simulation.h"

namespace achilles {

// The simulation core is a header template (the queue engine is a compile-time
// parameter); instantiate the three engine combinations once here so every other
// translation unit links against these.
template class SimulationT<HeapQueue>;
template class SimulationT<CalendarQueue>;
template class SimulationT<DualQueue>;

}  // namespace achilles
