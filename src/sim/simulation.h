// Deterministic discrete-event simulation core: a virtual clock and an event queue. All
// randomness flows from the simulation seed, so runs are exactly reproducible.
//
// The queue engine is a template parameter (src/sim/event_queue.h): the production alias
// `Simulation` runs on DualQueue, whose engine (calendar queue vs reference heap) is picked
// at construction — one knob flips a whole cluster or chaos run between engines for the
// digest-equivalence suite. The pure-engine instantiations SimulationT<HeapQueue> and
// SimulationT<CalendarQueue> race head-to-head in tests/sim_queue_test.cc and
// bench_sim_core.
//
// Events come in two shapes (DESIGN.md §2.21):
//   raw    a function pointer plus (obj, a, b) — the dominant fixed-shape events
//          (message delivery, timer fire, CPU drain) schedule with zero heap allocation;
//   boxed  a std::function for everything irregular (test lambdas, reboot closures).
// Event nodes are slab-pooled and recycled; an EventId handle is {node, generation}, so
// Cancel is O(1) and cancelling an already-fired id is a safe no-op.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"

namespace achilles {

// Cancel handle. Default-constructed (== kInvalidEvent) handles and handles to events
// that already fired or were cancelled are ignored by Cancel — the generation check
// rejects recycled nodes.
struct EventId {
  EventNode* node = nullptr;
  uint64_t gen = 0;

  bool valid() const { return node != nullptr; }
  friend bool operator==(const EventId& a, const EventId& b) {
    return a.node == b.node && a.gen == b.gen;
  }
  friend bool operator!=(const EventId& a, const EventId& b) { return !(a == b); }
};

inline constexpr EventId kInvalidEvent{};

template <class Queue>
class SimulationT {
 public:
  explicit SimulationT(uint64_t seed, SimEngine engine = SimEngine::kCalendar)
      : queue_(engine), rng_(seed) {}

  SimulationT(const SimulationT&) = delete;
  SimulationT& operator=(const SimulationT&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute virtual time `t` (>= Now). Returns a handle for Cancel.
  EventId ScheduleAt(SimTime t, std::function<void()> fn) {
    EventNode* n = NewNode(t);
    n->boxed = new std::function<void()>(std::move(fn));
    ++boxed_events_;
    queue_.Push(n);
    return EventId{n, n->gen};
  }
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    ACHILLES_CHECK(delay >= 0);
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Allocation-free scheduling for fixed-shape events: fires fn(obj, a, b).
  EventId ScheduleRawAt(SimTime t, RawEventFn fn, void* obj, uint64_t a = 0,
                        uint64_t b = 0) {
    EventNode* n = NewNode(t);
    n->raw = fn;
    n->obj = obj;
    n->a = a;
    n->b = b;
    queue_.Push(n);
    return EventId{n, n->gen};
  }
  EventId ScheduleRawAfter(SimDuration delay, RawEventFn fn, void* obj, uint64_t a = 0,
                           uint64_t b = 0) {
    ACHILLES_CHECK(delay >= 0);
    return ScheduleRawAt(now_ + delay, fn, obj, a, b);
  }

  // Cancels a pending event in O(1). Cancelling an already-fired or invalid id is a no-op.
  void Cancel(EventId id) {
    if (id.node == nullptr || id.node->gen != id.gen) {
      return;  // Never scheduled, already fired, or node recycled since.
    }
    --live_;
    queue_.Remove(id.node, pool_);  // Frees now (calendar) or marks for later (heap).
  }

  // Runs the earliest pending event. Returns false when the queue is empty.
  bool Step() {
    EventNode* n = queue_.PopEarliest(pool_);
    if (n == nullptr) {
      return false;
    }
    now_ = n->time;
    ++executed_;
    --live_;
    // Move the callback out and recycle the node *before* invoking: the callback may
    // schedule new events and legitimately reuse this very slot.
    if (n->boxed != nullptr) {
      std::unique_ptr<std::function<void()>> fn(n->boxed);
      n->boxed = nullptr;
      pool_.Free(n);
      (*fn)();
    } else {
      const RawEventFn fn = n->raw;
      void* obj = n->obj;
      const uint64_t a = n->a;
      const uint64_t b = n->b;
      pool_.Free(n);
      fn(obj, a, b);
    }
    return true;
  }

  // Runs all events with time <= t; the clock finishes at exactly t.
  void RunUntil(SimTime t) {
    ACHILLES_CHECK(t >= now_);
    while (true) {
      const EventNode* next = queue_.PeekEarliest(pool_);
      if (next == nullptr || next->time > t) {
        break;
      }
      Step();
    }
    now_ = t;
  }
  void RunFor(SimDuration d) { RunUntil(Now() + d); }

  // Runs until no events remain. `max_events` guards against runaway schedules.
  void RunUntilIdle(uint64_t max_events = UINT64_MAX) {
    uint64_t budget = max_events;
    while (budget-- > 0 && Step()) {
    }
  }

  Rng& rng() { return rng_; }
  size_t pending_events() const { return live_; }
  uint64_t executed_events() const { return executed_; }
  // High-water mark of pending_events() over the run (simulator self-profiling).
  size_t peak_pending_events() const { return peak_pending_; }

  // --- Self-profiling for bench_sim_core ---
  // Events that needed a heap-allocated std::function (the boxed fallback).
  uint64_t boxed_events() const { return boxed_events_; }
  const EventPool& pool() const { return pool_; }
  const Queue& queue() const { return queue_; }

 private:
  EventNode* NewNode(SimTime t) {
    ACHILLES_CHECK(t >= now_);
    EventNode* n = pool_.Alloc();
    n->time = t;
    n->seq = next_seq_++;
    ++live_;
    peak_pending_ = std::max(peak_pending_, live_);
    return n;
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  size_t peak_pending_ = 0;
  uint64_t boxed_events_ = 0;
  Queue queue_;
  EventPool pool_;
  Rng rng_;
};

extern template class SimulationT<HeapQueue>;
extern template class SimulationT<CalendarQueue>;
extern template class SimulationT<DualQueue>;

// The production simulation: engine selected at construction (calendar by default).
using Simulation = SimulationT<DualQueue>;

}  // namespace achilles

#endif  // SRC_SIM_SIMULATION_H_
