// Deterministic discrete-event simulation core: a virtual clock and an event queue. All
// randomness flows from the simulation seed, so runs are exactly reproducible.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace achilles {

using EventId = uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  explicit Simulation(uint64_t seed);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute virtual time `t` (>= Now). Returns a handle for Cancel.
  EventId ScheduleAt(SimTime t, std::function<void()> fn);
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or invalid id is a no-op.
  void Cancel(EventId id);

  // Runs the earliest pending event. Returns false when the queue is empty.
  bool Step();

  // Runs all events with time <= t; the clock finishes at exactly t.
  void RunUntil(SimTime t);
  void RunFor(SimDuration d) { RunUntil(Now() + d); }

  // Runs until no events remain. `max_events` guards against runaway schedules.
  void RunUntilIdle(uint64_t max_events = UINT64_MAX);

  Rng& rng() { return rng_; }
  size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  uint64_t executed_events() const { return executed_; }
  // High-water mark of pending_events() over the run (simulator self-profiling; cancelled
  // entries still occupy heap slots until popped, so this tracks real memory pressure).
  size_t peak_pending_events() const { return peak_pending_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for equal times.
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  size_t peak_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  Rng rng_;
};

}  // namespace achilles

#endif  // SRC_SIM_SIMULATION_H_
